(* The benchmark harness.

   Part 1 regenerates every figure/claim of the paper (experiments E1-E9
   of DESIGN.md §3) and prints paper-vs-measured tables — the paper is a
   theory paper, so its "tables and figures" are counterexamples,
   derivations and protocol obligations rather than performance numbers.

   Part 2 runs Bechamel micro/macro benchmarks of every engine built for
   the reproduction (P1-P6): BDD operations, SI fixpoints, the knowledge
   transformer, the exhaustive KBP solver, the fair leads-to decision
   procedure, and concrete simulation throughput.

   Besides the pretty tables, the harness emits a machine-readable
   [BENCH_RESULTS.json] (benchmark name → ns/run, the scaling-sweep
   timings with exact state-space counts, and the cumulative engine
   counters) so the performance trajectory is tracked across PRs — the
   [gate] executable next door diffs it against [BENCH_BASELINE.json].

   All elapsed times are taken on the OS monotonic clock ([Kpt_obs.now_ns],
   the clock Bechamel samples); never mix [Sys.time]/[Unix.gettimeofday]
   back in.

   [--quick] runs one tiny instance of each P1-P6 benchmark exactly once
   (no statistics, no experiments, no JSON) as an engine smoke test; the
   [bench-smoke] dune alias wires it into [dune runtest].  [--bench-only]
   runs just the Bechamel suite and writes the JSON (the CI gate job). *)

open Bechamel
open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_protocols

(* ---- benchmark bodies ---------------------------------------------------- *)
(* Each definition is a [name, setup] pair where [setup ()] performs the
   one-off construction and returns the closure to be measured, so the same
   bodies feed both the Bechamel suite and the --quick smoke run. *)

let def_bdd_ops () =
  fun () ->
    let m = Bdd.create () in
    let acc = ref (Bdd.tru m) in
    for i = 0 to 10 do
      acc := Bdd.and_ m !acc (Bdd.or_ m (Bdd.var m i) (Bdd.nvar m (i + 1)))
    done;
    ignore (Bdd.exists m [ 0; 2; 4; 6 ] !acc)

let def_bitvec () =
  fun () ->
    let m = Bdd.create () in
    let a = Bitvec.of_bits (Array.init 8 (fun k -> Bdd.var m k)) in
    let b = Bitvec.of_bits (Array.init 8 (fun k -> Bdd.var m (8 + k))) in
    ignore (Bitvec.lt m (Bitvec.add m a b) (Bitvec.const m ~width:9 300))

let bubble n maxv =
  let sp = Space.create () in
  let arr = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:maxv) in
  let stmts =
    List.init (n - 1) (fun i ->
        Stmt.make
          ~name:(Printf.sprintf "swap%d" i)
          ~guard:Expr.(var arr.(i) >>> var arr.(i + 1))
          [ (arr.(i), Expr.var arr.(i + 1)); (arr.(i + 1), Expr.var arr.(i)) ])
  in
  (sp, Program.make sp ~name:"bsort" ~init:Expr.tru stmts)

let def_si size () =
  fun () ->
    let _, prog = bubble size 3 in
    ignore (Program.si prog)

(* The budget-overhead pair: the identical SI workload with and without
   a (generous, never-tripping) armed budget.  The only difference is
   the checkpoint polls inside [Program.sst] and [Bdd.fresh_node], so
   the P8 ratio measures the robustness layer's tax; the gate pins it
   below 5% within the same run (machine-independent, unlike the
   baseline diff). *)
let generous_budget =
  Budget.limits
    ~timeout_ns:(Budget.timeout_of_seconds 3600.0)
    ~fuel:max_int ~max_nodes:max_int ()

let def_si_budgeted size () =
  fun () ->
    Engine.with_budget generous_budget (fun () ->
        let _, prog = bubble size 3 in
        ignore (Program.si prog))

let def_knowledge () =
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let _ = Program.si st.Seqtrans.sprog in
  fun () -> ignore (Seqtrans.real_kr st ~k:0 ~alpha:1)

let def_common_knowledge () =
  let sp = Space.create () in
  let a = Space.bool_var sp "a" in
  let b = Space.bool_var sp "b" in
  let c = Space.bool_var sp "c" in
  let g =
    [ Process.make "A" [ a; b ]; Process.make "B" [ b; c ]; Process.make "C" [ c; a ] ]
  in
  let m = Space.manager sp in
  let si = Bdd.or_ m (Bdd.var m (List.hd (Space.current_bits a))) (Bdd.tru m) in
  let p = Bdd.and_ m (Expr.compile_bool sp (Expr.var a)) (Expr.compile_bool sp (Expr.var b)) in
  fun () -> ignore (Knowledge.common_knowledge sp ~si g p)

let def_kbp_solver () =
  fun () ->
    let sp = Space.create () in
    let x = Space.bool_var sp "x" in
    let y = Space.bool_var sp "y" in
    let z = Space.bool_var sp "z" in
    let p0 = Process.make "P0" [ y ] in
    let p1 = Process.make "P1" [ z ] in
    let s0 =
      Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ]
    in
    let s1 =
      Kbp.kstmt ~name:"s1"
        ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
        [ (z, Expr.tru) ]
    in
    let kbp =
      Kbp.make sp ~name:"fig2" ~init:Expr.(not_ (var y)) ~processes:[ p0; p1 ] [ s0; s1 ]
    in
    ignore (Kbp.solutions kbp)

let def_leadsto () =
  let ab = Seqtrans.abstract_kbp { Seqtrans.n = 2; a = 2 } in
  let _ = Program.si ab.Seqtrans.aprog in
  fun () -> ignore (Seqtrans.a_spec_liveness_holds ab ~k:0)

let def_simulation ~steps () =
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let rng = Stdlib.Random.State.make [| 3 |] in
  let init = Kpt_runs.Exec.random_init st.Seqtrans.sprog rng in
  fun () ->
    ignore
      (Kpt_runs.Exec.run st.Seqtrans.sprog ~scheduler:(Kpt_runs.Exec.Random_fair 5) ~steps
         ~init)

let def_proof_replay () =
  let ab = Seqtrans.abstract_kbp { Seqtrans.n = 2; a = 2 } in
  let _ = Program.si ab.Seqtrans.aprog in
  fun () -> ignore (Seqtrans_proofs.replay_abstract ab)

(* The `kpt check` batch corpus: every example spec when the benchmark
   runs from the repository root (the CI layout), else a synthetic
   stand-in so the scenario never silently disappears.  Each file is a
   full front-to-back pipeline run (lint + elaborate + solve + stats);
   files are independent, which is exactly the shape [Kpt_par] exists
   for, so jobs=1 vs jobs=4 below measures the pool's speedup on
   multi-core hosts (on a single-core host the two coincide — the gate
   baseline must be taken on the same class of machine as the run). *)
let check_corpus =
  lazy
    (let dir = "examples/specs" in
     let read path =
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     in
     if Sys.file_exists dir && Sys.is_directory dir then
       Sys.readdir dir |> Array.to_list
       |> List.filter (fun f -> Filename.check_suffix f ".unity")
       |> List.sort compare
       |> List.map (fun n -> (Filename.concat dir n, read (Filename.concat dir n)))
     else
       (* not run from the repo root: a small synthetic corpus instead *)
       List.init 8 (fun i ->
           ( Printf.sprintf "synthetic%d.unity" i,
             "program flip\n" ^ "var a, b : bool\n" ^ "processes P = { a, b }\n"
             ^ "init ~a /\\ ~b\n" ^ "assign\n" ^ "  set: a := true if ~a\n"
             ^ "| ack: b := true if a /\\ ~b\n" )))

let def_check_batch ~jobs () =
  let corpus = Lazy.force check_corpus in
  fun () -> ignore (Kpt_analysis.Check.reports ~jobs corpus)

(* The [kpt lint] corpus, syntactic tier against the full semantic tier
   (KPT1xx under the default analysis budget): the pair prices what the
   budgeted SI/wcyl passes add on top of the free structural checks. *)
let def_lint_batch ~semantic () =
  let corpus = Lazy.force check_corpus in
  fun () ->
    List.iter
      (fun (file, src) ->
        ignore
          (if semantic then Kpt_analysis.Lint.lint_source_semantic ~file src
           else Kpt_analysis.Lint.lint_source ~file src))
      corpus

(* The serve-daemon triple (P11): the same `kpt check` request priced
   three ways.  Cold is a full process spawn of the real binary (what a
   user without a daemon pays — parse the CLI, build the engine, run,
   exit); warm is the daemon's handler on a long-lived process with the
   cache disabled (the request still runs end to end, but the process,
   allocator and code are hot); cached is the handler with the cache
   primed (a content-hash lookup plus a string ship).  The gate pins
   cached < warm < cold within the same run — the whole point of the
   daemon, stated as an invariant rather than a baseline number. *)
let serve_request () =
  let corpus = Lazy.force check_corpus in
  let file =
    match
      List.find_opt (fun (p, _) -> Filename.basename p = "transmit.unity") corpus
    with
    | Some f -> f
    | None -> List.hd corpus
  in
  {
    Kpt_serve.Protocol.id = 0;
    cmd = Kpt_serve.Protocol.Check;
    files = [ file ];
    opts = { Kpt_analysis.Driver.default_options with quiet = true };
  }

(* the built binary, when the bench runs where it can see one *)
let kpt_exe =
  lazy
    (List.find_opt Sys.file_exists
       [
         "_build/default/bin/kpt.exe";
         Filename.concat (Filename.dirname Sys.executable_name) "../bin/kpt.exe";
       ])

let def_serve_cold () =
  let exe = Option.get (Lazy.force kpt_exe) in
  let file, _ = List.hd (serve_request ()).Kpt_serve.Protocol.files in
  let cmd = Filename.quote_command exe [ "check"; file; "-q"; "--reorder=off" ] in
  fun () -> ignore (Sys.command cmd)

let def_serve_warm () =
  let handler = Kpt_serve.Handler.create ~cache_size:0 in
  let req = serve_request () in
  fun () -> ignore (Kpt_serve.Handler.handle handler req)

let def_serve_cached () =
  let handler = Kpt_serve.Handler.create ~cache_size:8 in
  let req = serve_request () in
  ignore (Kpt_serve.Handler.handle handler req);
  fun () -> ignore (Kpt_serve.Handler.handle handler req)

(* cold only exists where the binary and the on-disk spec do: the repo
   root (the CI layout).  Elsewhere the warm/cached pair still runs on
   the synthetic corpus, and the gate reports the cold row as missing. *)
let serve_cold_defs =
  match Lazy.force kpt_exe with
  | Some _ when Sys.file_exists "examples/specs/transmit.unity" ->
      [ ("P11 serve: cold process, check transmit", def_serve_cold) ]
  | _ -> []

let benchmark_defs =
  [
    ("P1 bdd: n-queens-style conjunctions (12 vars)", def_bdd_ops);
    ("P1 bitvec: 8-bit symbolic adder + comparison", def_bitvec);
    ("P2 SI fixpoint: bubble sort n=4", def_si 4);
    ("P2 SI fixpoint: bubble sort n=5", def_si 5);
    ("P3 K_i on the standard protocol (n=2,|A|=2)", def_knowledge);
    ("P3 common knowledge fixpoint (3 agents)", def_common_knowledge);
    ("P4 exhaustive KBP solver on Figure 2 (256 candidates)", def_kbp_solver);
    ("P5 fair leads-to on the abstract KBP (n=2,|A|=2)", def_leadsto);
    ("P6 concrete simulation: 1000 steps of the standard protocol", def_simulation ~steps:1000);
    ("P6 full kernel replay of the Figure-3 proof", def_proof_replay);
    ("P7 kpt check batch: examples corpus, jobs=1", def_check_batch ~jobs:1);
    ("P7 kpt check batch: examples corpus, jobs=4", def_check_batch ~jobs:4);
    ("P8 budget overhead: SI fixpoint n=4, unbudgeted", def_si 4);
    ("P8 budget overhead: SI fixpoint n=4, budget armed", def_si_budgeted 4);
    ("P9 lint batch: examples corpus, syntactic tier", def_lint_batch ~semantic:false);
    ("P9 lint batch: examples corpus, semantic tier", def_lint_batch ~semantic:true);
  ]
  @ serve_cold_defs
  @ [
      ("P11 serve: warm request, check transmit", def_serve_warm);
      ("P11 serve: cached request, check transmit", def_serve_cached);
    ]

(* ---- machine-readable results -------------------------------------------- *)

(* Elapsed-time measurement on the OS monotonic clock — the same clock
   Bechamel samples.  [Sys.time] (CPU time) undercounts anything that
   blocks and [Unix.gettimeofday] (wall time) is subject to adjustment;
   neither belongs in a benchmark. *)
let time f =
  let t0 = Kpt_obs.now_ns () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (Kpt_obs.now_ns ()) t0) /. 1e9)

let bench_ns : (string * float) list ref = ref []

(* filled by the P12 serve-concurrency sweep below; lands as its own
   JSON section for the gate's same-run invariants *)
type serve_conc = {
  sc_cores : int;
  sc_requests : int;
  sc_seq_s : float;
  sc_jobs4_s : float;
  sc_chaos_s : float;
  sc_injections : int;
  sc_identical : bool;
}

let serve_conc : serve_conc option ref = ref None

let scaling_rows : (string * int * int * Bigcount.t * int * float * float) list ref =
  ref []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n  \"benchmarks_ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns) ->
      pf "    \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = List.length !bench_ns - 1 then "" else ","))
    (List.rev !bench_ns);
  pf "  },\n  \"scaling_standard_protocol\": [\n";
  let rows = List.rev !scaling_rows in
  List.iteri
    (fun i (family, n, a, total, reach, t_si, t_safe) ->
      pf
        "    { \"family\": \"%s\", \"n\": %d, \"a\": %d, \"state_space\": %s, \
         \"reachable\": %d, \"si_s\": %.4f, \"safety_s\": %.4f }%s\n"
        (json_escape family) n a (Bigcount.to_string total) reach t_si t_safe
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ],\n";
  (match !serve_conc with
  | None -> ()
  | Some s ->
      pf
        "  \"serve_concurrency\": { \"cores\": %d, \"requests\": %d, \"seq_s\": %.4f, \
         \"jobs4_s\": %.4f, \"chaos_s\": %.4f, \"speedup\": %.3f, \
         \"chaos_injections\": %d, \"bytes_identical\": %b },\n"
        s.sc_cores s.sc_requests s.sc_seq_s s.sc_jobs4_s s.sc_chaos_s
        (if s.sc_jobs4_s > 0.0 then s.sc_seq_s /. s.sc_jobs4_s else 0.0)
        s.sc_injections s.sc_identical);
  (* cumulative engine counters over the whole run, so CI can watch the
     work profile (cache hit rates, fixpoint depths) alongside the times *)
  pf "  \"counters\": {\n";
  let cs = Kpt_obs.counters () in
  List.iteri
    (fun i (name, v) ->
      pf "    \"%s\": %d%s\n" (json_escape name) v
        (if i = List.length cs - 1 then "" else ","))
    cs;
  pf "  }\n}\n";
  close_out oc;
  Format.printf "@.Machine-readable results written to %s@." path

(* ---- benchmark runners --------------------------------------------------- *)

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  Format.printf "@.══ Performance benchmarks (P1-P6) ══@.";
  List.iter
    (fun (name, setup) ->
      let test = Test.make ~name (Staged.stage (setup ())) in
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one ols instance raw with
          | ols_result -> (
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] ->
                  bench_ns := (name, est) :: !bench_ns;
                  Format.printf "  %-60s %12.1f ns/run@." name est
              | _ -> Format.printf "  %-60s (no estimate)@." name)
          | exception _ -> Format.printf "  %-60s (failed)@." name)
        results)
    benchmark_defs

let quick_defs =
  [
    ("P1 bdd: n-queens-style conjunctions (12 vars)", def_bdd_ops);
    ("P1 bitvec: 8-bit symbolic adder + comparison", def_bitvec);
    ("P2 SI fixpoint: bubble sort n=3", def_si 3);
    ("P3 K_i on the standard protocol (n=2,|A|=2)", def_knowledge);
    ("P3 common knowledge fixpoint (3 agents)", def_common_knowledge);
    ("P4 exhaustive KBP solver on Figure 2 (256 candidates)", def_kbp_solver);
    ("P5 fair leads-to on the abstract KBP (n=2,|A|=2)", def_leadsto);
    ("P6 concrete simulation: 100 steps of the standard protocol", def_simulation ~steps:100);
    ("P7 kpt check batch: examples corpus, jobs=2", def_check_batch ~jobs:2);
    ("P8 budget overhead: SI fixpoint n=3, budget armed", def_si_budgeted 3);
    ("P9 lint batch: examples corpus, semantic tier", def_lint_batch ~semantic:true);
    ("P11 serve: warm request, check transmit", def_serve_warm);
    ("P11 serve: cached request, check transmit", def_serve_cached);
  ]

(* One tiny run of each engine; a crash or hang here is a tier-1 failure. *)
let run_quick () =
  Format.printf "══ bench-smoke: one tiny instance of each P1-P6 benchmark ══@.";
  List.iter
    (fun (name, setup) ->
      let (), dt =
        time (fun () ->
            let fn = setup () in
            fn ())
      in
      Format.printf "  %-62s ok (%.3fs)@." name dt)
    quick_defs;
  Format.printf "bench-smoke: all engines ran.@."

(* ---- Part 3: scaling sweeps and ablations -------------------------------- *)

let scaling_sweep () =
  Format.printf "@.══ Scaling: the standard protocol across (n, |A|) ══@.";
  Format.printf "  %-10s %12s %12s %14s %14s@." "(n,|A|)" "state space" "reachable"
    "SI time (s)" "safety (s)";
  List.iter
    (fun (n, a) ->
      let st = Seqtrans.standard ~lossy:true { Seqtrans.n = n; a } in
      let sp = st.Seqtrans.sspace in
      let total = Space.state_count_exact sp in
      let si, t_si = time (fun () -> Program.si st.Seqtrans.sprog) in
      let reach = Space.count_states_of sp si in
      let ok, t_safe = time (fun () -> Program.invariant st.Seqtrans.sprog (Seqtrans.spec_safety st)) in
      scaling_rows := ("seqtrans", n, a, total, reach, t_si, t_safe) :: !scaling_rows;
      Format.printf "  (%d,%d)      %12s %12d %14.3f %14.3f   safety=%b@." n a
        (Bigcount.to_string total) reach t_si t_safe ok)
    [ (2, 2); (2, 3); (3, 2) ]

let ring_sweep () =
  Format.printf "@.══ Scaling: token rings n = 3..10 (auto-reorder) ══@.";
  Format.printf "  %-10s %12s %12s %14s %14s@." "n" "state space" "reachable" "SI time (s)"
    "mutex (s)";
  List.iter
    (fun n ->
      let eng = Engine.create () in
      Engine.set_reorder_mode eng (Some Engine.Reorder_auto);
      Engine.use eng (fun () ->
          let r = Ring.token_ring ~n in
          let sp = r.Ring.rspace in
          let total = Space.state_count_exact sp in
          let si, t_si = time (fun () -> Program.si r.Ring.rprog) in
          let reach = Space.count_states_of sp si in
          let ok, t_safe =
            time (fun () -> Program.invariant r.Ring.rprog (Ring.mutex_ok r))
          in
          scaling_rows := ("token_ring", n, 2, total, reach, t_si, t_safe) :: !scaling_rows;
          Format.printf "  %-10d %12s %12d %14.3f %14.3f   mutex=%b@." n
            (Bigcount.to_string total) reach t_si t_safe ok))
    [ 3; 4; 5; 6; 7; 8; 9; 10 ]

let window_sweep () =
  Format.printf "@.══ Scaling: sliding window pipelining (n = 4, duplicating channel) ══@.";
  Format.printf "  %-8s %18s@." "window" "mean steps to done";
  List.iter
    (fun w ->
      let t = Window.make ~lossy:false ~window:w { Seqtrans.n = 4; a = 2 } in
      let total = ref 0 in
      for seed = 1 to 10 do
        total := !total + Window.simulate_steps ~seed t
      done;
      Format.printf "  %-8d %18.1f@." w (float_of_int !total /. 10.))
    [ 1; 2; 3; 4 ]

let ablation_solver () =
  Format.printf "@.══ Ablation: exhaustive vs chaotic-iteration KBP solving ══@.";
  let build strong =
    let sp = Space.create () in
    let x = Space.bool_var sp "x" in
    let y = Space.bool_var sp "y" in
    let z = Space.bool_var sp "z" in
    let p0 = Process.make "P0" [ y ] in
    let p1 = Process.make "P1" [ z ] in
    let init = if strong then Expr.(not_ (var y) &&& var x) else Expr.(not_ (var y)) in
    Kbp.make sp ~name:"fig2" ~init ~processes:[ p0; p1 ]
      [
        Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ];
        Kbp.kstmt ~name:"s1"
          ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
          [ (z, Expr.tru) ];
      ]
  in
  List.iter
    (fun strong ->
      let kbp = build strong in
      let sols, t_ex = time (fun () -> Kbp.solutions kbp) in
      let it, t_it = time (fun () -> Kbp.iterate kbp) in
      let it_desc =
        match it with
        | Kbp.Converged { steps; _ } -> Printf.sprintf "converged in %d Ĝ-steps" steps
        | Kbp.Diverged { orbit; _ } ->
            Printf.sprintf "cycled (period %d)" (List.length orbit)
        | Kbp.Budget_exhausted { reason; _ } ->
            Printf.sprintf "budget exhausted (%s)" (Budget.reason_to_string reason)
      in
      Format.printf "  figure2%s: exhaustive %d solution(s) in %.4fs; iteration %s in %.4fs@."
        (if strong then "-strong" else "") (List.length sols) t_ex it_desc t_it;
      Format.printf "    → iteration is the cheap semi-decision; enumeration is the complete one.@.")
    [ false; true ]

(* Wall-clock speedup of the [kpt check] batch across pool sizes.  The
   per-task work is identical (fresh engine each task, deterministic
   output), so any ratio > 1 is pure parallelism; expect ~min(jobs,
   cores, files) on a quiet multi-core host and ~1.0 on a single core. *)
let check_speedup () =
  Format.printf "@.══ Parallel speedup: kpt check over the examples corpus ══@.";
  let corpus = Lazy.force check_corpus in
  Format.printf "  %d file(s); host reports %d core(s)@." (List.length corpus)
    (Domain.recommended_domain_count ());
  let t1 = ref 0.0 in
  List.iter
    (fun jobs ->
      let _, t = time (fun () -> Kpt_analysis.Check.reports ~jobs corpus) in
      if jobs = 1 then t1 := t;
      Format.printf "  jobs=%-2d  %8.3fs   speedup ×%.2f@." jobs t
        (if t > 0.0 then !t1 /. t else 0.0))
    [ 1; 2; 4 ]

(* Cone-of-influence slicing on the monitored ring (P10): the audit log
   lies outside the cone of the mutual-exclusion property, so the sliced
   SI fixpoint never touches its bits.  The final SI BDDs are NOT
   comparable by size — the full run saturates the log over all values
   (making SI log-independent) while the slice freezes it at its initial
   value — so the reduction is measured as fixpoint WORK: total BDD
   nodes allocated to compute SI, each side on a fresh manager.  Both
   totals land in the counters section of BENCH_RESULTS.json, where the
   gate pins sliced < full (a same-run comparison, machine-independent,
   so it never needs a baseline refresh). *)
let slice_ablation () =
  Format.printf "@.══ Ablation: cone-of-influence slicing on the monitored ring (n=8) ══@.";
  let work ~slice =
    let r = Ring.monitored ~n:8 in
    let prog = r.Ring.rprog in
    let prog, dropped =
      if slice then
        let prog', info = Kpt_analysis.Slice.program ~wrt:[ Ring.mutex_ok r ] prog in
        (prog', List.length info.Kpt_analysis.Slice.dropped)
      else (prog, 0)
    in
    let si, t = time (fun () -> Program.si prog) in
    let nodes = (Bdd.stats (Space.manager r.Ring.rspace)).Bdd.nodes_created in
    (Space.count_states_of r.Ring.rspace si, dropped, nodes, t)
  in
  let full_states, _, full_nodes, t_full = work ~slice:false in
  let sliced_states, dropped, sliced_nodes, t_sliced = work ~slice:true in
  Kpt_obs.record_max (Kpt_obs.counter "slice.bench.nodes_created.full") full_nodes;
  Kpt_obs.record_max (Kpt_obs.counter "slice.bench.nodes_created.sliced") sliced_nodes;
  Format.printf "  full run  : SI over %7d state(s) in %.3fs, %8d node(s) allocated@."
    full_states t_full full_nodes;
  Format.printf
    "  sliced    : SI over %7d state(s) in %.3fs, %8d node(s) allocated (%d statement(s) \
     dropped)@."
    sliced_states t_sliced sliced_nodes dropped;
  Format.printf "  → identical verdict on the property, ×%.2f the allocation work avoided@."
    (float_of_int full_nodes /. float_of_int (max 1 sliced_nodes))

(* The serve-concurrency triple (P12): the same request stream served by
   a jobs=1 daemon to one client, by a jobs=4 daemon to four concurrent
   clients, and by a jobs=4 daemon to four clients while a chaos
   injector slams the same socket with truncated frames, garbage lines
   and instant disconnects.  Real daemon domains over a real Unix
   socket, result cache off so every request computes.  Three invariants
   land in BENCH_RESULTS.json for the gate: the served bytes are
   identical across all three legs (per request, against the sequential
   leg), the chaos leg completes with its well-behaved clients unharmed,
   and on a ≥4-core host the 4-worker leg is ≥2× the sequential one
   (single-core hosts record the ratio but skip the floor — there is no
   parallelism to buy there). *)
let serve_concurrency_sweep () =
  Format.printf "@.══ P12 serve concurrency: --serve-jobs under concurrent clients ══@.";
  let corpus = Lazy.force check_corpus in
  let n_requests = 40 in
  let reqs =
    List.init n_requests (fun i ->
        {
          Kpt_serve.Protocol.id = i + 1;
          cmd = Kpt_serve.Protocol.Check;
          files = [ List.nth corpus (i mod List.length corpus) ];
          opts = { Kpt_analysis.Driver.default_options with quiet = true };
        })
  in
  let with_daemon ~tag ~jobs f =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "kpt-bench-%d-%s.sock" (Unix.getpid ()) tag)
    in
    if Sys.file_exists path then Sys.remove path;
    let cfg = Kpt_serve.Server.config ~jobs ~socket_path:path ~cache_size:0 () in
    let d = Domain.spawn (fun () -> Kpt_serve.Server.run ~announce:false cfg) in
    let rec wait n =
      if n = 0 then failwith "bench daemon never bound its socket"
      else
        match Kpt_serve.Client.connect ~socket:path with
        | Ok c -> Kpt_serve.Client.close c
        | Error _ ->
            Unix.sleepf 0.02;
            wait (n - 1)
    in
    wait 250;
    let r = f path in
    ignore
      (Kpt_serve.Client.roundtrip ~socket:path
         {
           Kpt_serve.Protocol.id = 0;
           cmd = Kpt_serve.Protocol.Shutdown;
           files = [];
           opts = Kpt_analysis.Driver.default_options;
         });
    ignore (Domain.join d);
    r
  in
  let fetch path req =
    match Kpt_serve.Client.roundtrip ~socket:path req with
    | Ok (Kpt_serve.Protocol.Result { exit_code; out; _ }) -> (exit_code, out)
    | Ok _ -> (-1, "unexpected frame")
    | Error msg -> (-1, "transport: " ^ msg)
  in
  (* deal request i to client (i mod clients); reassemble in id order so
     the legs compare like for like *)
  let run_clients path clients =
    List.init clients (fun c ->
        let mine = List.filteri (fun i _ -> i mod clients = c) reqs in
        Domain.spawn (fun () ->
            List.map (fun r -> (r.Kpt_serve.Protocol.id, fetch path r)) mine))
    |> List.concat_map Domain.join
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let seq_replies, seq_s =
    with_daemon ~tag:"seq" ~jobs:1 (fun path -> time (fun () -> run_clients path 1))
  in
  let par_replies, jobs4_s =
    with_daemon ~tag:"par" ~jobs:4 (fun path -> time (fun () -> run_clients path 4))
  in
  let (chaos_replies, injections), chaos_s =
    with_daemon ~tag:"chaos" ~jobs:4 (fun path ->
        time (fun () ->
            let injector =
              Domain.spawn (fun () ->
                  Kpt_serve.Chaos.noise ~socket:path ~seed:23L ~rounds:30)
            in
            let replies = run_clients path 4 in
            (replies, Domain.join injector)))
  in
  let identical = seq_replies = par_replies && seq_replies = chaos_replies in
  let cores = Domain.recommended_domain_count () in
  let speedup = if jobs4_s > 0.0 then seq_s /. jobs4_s else 0.0 in
  serve_conc :=
    Some
      {
        sc_cores = cores;
        sc_requests = n_requests;
        sc_seq_s = seq_s;
        sc_jobs4_s = jobs4_s;
        sc_chaos_s = chaos_s;
        sc_injections = injections;
        sc_identical = identical;
      };
  Format.printf "  %d request(s); host reports %d core(s)@." n_requests cores;
  Format.printf "  jobs=1, 1 client             %8.3fs@." seq_s;
  Format.printf "  jobs=4, 4 clients            %8.3fs   speedup ×%.2f@." jobs4_s speedup;
  Format.printf "  jobs=4, 4 clients + chaos    %8.3fs   (%d injection(s))@." chaos_s
    injections;
  Format.printf "  served bytes identical across legs: %b@." identical

let ablation_relprod () =
  Format.printf "@.══ Ablation: fused relational product vs and-then-exists ══@.";
  let m = Bdd.create () in
  (* a chained relation over 24 variables *)
  let rel =
    Bdd.conj m
      (List.init 11 (fun i -> Bdd.iff m (Bdd.var m (2 * i)) (Bdd.var m ((2 * i) + 2))))
  in
  let p = Bdd.conj m (List.init 6 (fun i -> Bdd.var m (4 * i))) in
  let vars = List.init 12 (fun i -> 2 * i) in
  let fused, t_f =
    time (fun () ->
        let r = ref (Bdd.fls m) in
        for _ = 1 to 200 do
          Bdd.clear_caches m;
          r := Bdd.and_exists m vars p rel
        done;
        !r)
  in
  let naive, t_n =
    time (fun () ->
        let r = ref (Bdd.fls m) in
        for _ = 1 to 200 do
          Bdd.clear_caches m;
          r := Bdd.exists m vars (Bdd.and_ m p rel)
        done;
        !r)
  in
  Format.printf "  fused and_exists : %.4fs   and-then-exists : %.4fs   (same result: %b)@."
    t_f t_n (Bdd.equal fused naive)

let () =
  if Array.exists (( = ) "--quick") Sys.argv then run_quick ()
  else if Array.exists (( = ) "--bench-only") Sys.argv then begin
    (* the CI bench gate wants stable timings fast: the Bechamel suite
       plus the sweeps and counters the gate pins (non-empty scaling
       curve, per-size regressions, the P10 slice work pair), no
       experiments or timing-only ablations *)
    run_benchmarks ();
    scaling_sweep ();
    ring_sweep ();
    slice_ablation ();
    serve_concurrency_sweep ();
    write_json "BENCH_RESULTS.json"
  end
  else begin
    Format.printf "════ kpt: paper experiments (E1-E9) ════@.";
    let verdicts = Kpt_experiments.Experiments.run_all Format.std_formatter in
    Format.printf "@.══ Summary ══@.";
    List.iter
      (fun (name, ok) -> Format.printf "  %-18s %s@." name (if ok then "REPRODUCED" else "MISMATCH"))
      verdicts;
    let all_ok = List.for_all snd verdicts in
    Format.printf "@.%s@."
      (if all_ok then "All paper claims reproduced." else "SOME CLAIMS DID NOT REPRODUCE!");
    run_benchmarks ();
    scaling_sweep ();
    ring_sweep ();
    check_speedup ();
    slice_ablation ();
    serve_concurrency_sweep ();
    window_sweep ();
    ablation_solver ();
    ablation_relprod ();
    write_json "BENCH_RESULTS.json";
    if not all_ok then exit 1
  end
