(* The CI performance gate.

     gate [--tolerance R] BASELINE.json CURRENT.json

   Compares the [benchmarks_ns_per_run] sections of two bench JSON files
   (as written by [bench/main.ml]) and exits non-zero when any benchmark
   is more than [R] slower than its baseline (default 0.25, i.e. +25%).
   Benchmarks present in the baseline but absent from the current run
   also fail the gate — renames must refresh the baseline, not silently
   drop coverage.

   Additionally, the P8 budget-overhead pair is checked {e within}
   CURRENT.json: the budgeted run of the identical workload must be
   under 5% slower than the unbudgeted one.  A same-run ratio is
   machine-independent, so this guard never needs a baseline refresh —
   it fails only if the budget checkpoints themselves get expensive.

   Further same-run guards ride along: the P9 lint pair (syntactic vs
   semantic tier) must be present in the current results, the P10
   slice-work counters must show the monitored ring's sliced SI fixpoint
   allocating strictly fewer BDD nodes than the full one, the P11 serve
   triple must show cached < warm < cold on the identical `kpt check`
   request, and the P12 serve-concurrency sweep must show byte-identical
   results across its legs, a surviving chaos leg, and (on ≥4-core
   hosts) a ≥2× speedup from --serve-jobs 4. *)

(* Every same-run guard reads its section through this wrapper, so an
   incomplete BENCH_RESULTS.json fails with a message naming the file
   and the section — never a bare [Failure] escaping as a backtrace. *)
let with_section ~file ~section parse src k =
  match Kpt_obs.Gate.require_section ~file ~section parse src with
  | exception Failure msg -> Error msg
  | v -> k v

let benches_section = "benchmarks_ns_per_run"

let budget_pair =
  ( "P8 budget overhead: SI fixpoint n=4, unbudgeted",
    "P8 budget overhead: SI fixpoint n=4, budget armed" )

let budget_overhead_tolerance = 0.05

(* [Ok ()] when the pair is within tolerance or absent (older results);
   [Error msg] on a blown ratio. *)
let check_budget_overhead ~file current_json =
  with_section ~file ~section:benches_section Kpt_obs.Gate.benchmarks_of_json current_json
  @@ fun benches ->
  let plain_name, budgeted_name = budget_pair in
  match (List.assoc_opt plain_name benches, List.assoc_opt budgeted_name benches) with
  | Some plain, Some budgeted when plain > 0.0 ->
      let overhead = (budgeted -. plain) /. plain in
      Format.printf "bench gate: budget overhead %.1f%% (budgeted %.1f ns vs %.1f ns, limit +%.0f%%)@."
        (100.0 *. overhead) budgeted plain (100.0 *. budget_overhead_tolerance);
      if overhead <= budget_overhead_tolerance then Ok ()
      else
        Error
          (Printf.sprintf
             "budget checkpoints cost %.1f%% on the identical workload (limit %.0f%%)"
             (100.0 *. overhead)
             (100.0 *. budget_overhead_tolerance))
  | _ ->
      Format.printf "bench gate: budget-overhead pair not present; skipping the ratio guard@.";
      Ok ()

(* The P9 lint pair is coverage the gate refuses to lose: the semantic
   tier's cost is only tracked if both sides of the pair keep landing in
   the results — a rename or a dropped registration must fail here, not
   silently shrink the suite. *)
let lint_pair =
  ( "P9 lint batch: examples corpus, syntactic tier",
    "P9 lint batch: examples corpus, semantic tier" )

let check_lint_pair ~file current_json =
  with_section ~file ~section:benches_section Kpt_obs.Gate.benchmarks_of_json current_json
  @@ fun benches ->
  let syntactic_name, semantic_name = lint_pair in
  let missing = List.filter (fun n -> not (List.mem_assoc n benches)) [ syntactic_name; semantic_name ] in
  match missing with
  | [] ->
      Format.printf "bench gate: P9 lint pair present (syntactic and semantic tiers)@.";
      Ok ()
  | ms ->
      Error
        (String.concat "; "
           (List.map
              (fun b ->
                Kpt_obs.Gate.missing_section_message ~file ~section:benches_section
                  ~benchmark:b ())
              ms))

(* The P10 slice invariant, checked {e within} CURRENT.json like the P8
   overhead ratio: computing SI on the monitored ring's mutual-exclusion
   slice must allocate strictly fewer BDD nodes than the full program —
   the whole point of the cone.  A same-run comparison of two counters
   from the identical process, so it is machine-independent and never
   needs a baseline refresh; absent counters (older results) skip. *)
let check_slice_work ~file current_json =
  with_section ~file ~section:"counters" Kpt_obs.Gate.counters_of_json current_json
  @@ fun counters ->
  match
    ( List.assoc_opt "slice.bench.nodes_created.full" counters,
      List.assoc_opt "slice.bench.nodes_created.sliced" counters )
  with
  | Some full, Some sliced when full > 0.0 ->
      Format.printf "bench gate: slice work %.0f node(s) allocated vs %.0f full (×%.2f)@."
        sliced full (full /. Float.max 1.0 sliced);
      if sliced < full then Ok ()
      else
        Error
          (Printf.sprintf
             "slicing no longer reduces fixpoint work: %.0f node(s) allocated vs %.0f full"
             sliced full)
  | _ ->
      Format.printf "bench gate: slice work counters not present; skipping the cone guard@.";
      Ok ()

(* The P11 serve triple: the identical `kpt check` request priced as a
   cold process spawn, a warm daemon request, and a cache hit.  The
   daemon only earns its keep while cached < warm < cold, so the gate
   pins the strict ordering within the current run — same-run, so
   machine-independent, never needing a baseline refresh.  All three
   rows are presence-required: the CI bench job builds the binary first,
   so a missing cold row means the registration guard broke, not an
   acceptable layout. *)
let serve_triple =
  ( "P11 serve: cold process, check transmit",
    "P11 serve: warm request, check transmit",
    "P11 serve: cached request, check transmit" )

let check_serve_triple ~file current_json =
  with_section ~file ~section:benches_section Kpt_obs.Gate.benchmarks_of_json current_json
  @@ fun benches ->
  let cold_name, warm_name, cached_name = serve_triple in
  match
    ( List.assoc_opt cold_name benches,
      List.assoc_opt warm_name benches,
      List.assoc_opt cached_name benches )
  with
  | Some cold, Some warm, Some cached ->
      Format.printf
        "bench gate: serve triple cold %.0f ns, warm %.0f ns (×%.1f), cached %.0f ns \
         (×%.1f)@."
        cold warm (cold /. Float.max 1.0 warm) cached (warm /. Float.max 1.0 cached);
      if cached < warm && warm < cold then Ok ()
      else
        Error
          (Printf.sprintf
             "the serve daemon no longer pays: cold %.0f ns, warm %.0f ns, cached %.0f \
              ns (want cached < warm < cold)"
             cold warm cached)
  | cold, warm, cached ->
      let missing =
        List.filter_map
          (fun (name, v) -> if v = None then Some name else None)
          [ (cold_name, cold); (warm_name, warm); (cached_name, cached) ]
      in
      Error
        (String.concat "; "
           (List.map
              (fun b ->
                Kpt_obs.Gate.missing_section_message ~file ~section:benches_section
                  ~benchmark:b ())
              missing))

(* The P12 serve-concurrency triple, recorded by the bench's in-process
   daemon sweep: the same 40-request stream served sequentially
   (jobs=1), by four worker domains to four concurrent clients, and by
   four workers with a chaos injector slamming the same socket.  Three
   invariants, all same-run: the served bytes are identical across the
   legs (the whole determinism contract under concurrency), the chaos
   leg completes (finite, positive wall time with injections actually
   delivered), and — only on hosts reporting ≥4 cores, because a
   single-core runner has no parallelism to sell — the 4-worker leg is
   at least 2× the sequential one.  Presence-required: a bench run that
   silently drops the sweep must fail here, not shrink coverage. *)
let serve_concurrency_floor = 2.0

let check_serve_concurrency ~file src =
  match Json.of_string src with
  | exception Json.Parse_error m ->
      Error (Printf.sprintf "%s: malformed JSON: %s" file m)
  | j -> (
      match Json.member "serve_concurrency" j with
      | None ->
          Error
            (Kpt_obs.Gate.missing_section_message ~file ~section:"serve_concurrency" ())
      | Some s -> (
          let int name = Option.bind (Json.member name s) Json.to_int in
          let flo name =
            match Json.member name s with
            | Some (Json.Float f) -> Some f
            | Some (Json.Int i) -> Some (float_of_int i)
            | _ -> None
          in
          let boolean name = Option.bind (Json.member name s) Json.to_bool in
          match
            ( int "cores", int "requests", flo "seq_s", flo "jobs4_s", flo "chaos_s",
              int "chaos_injections", boolean "bytes_identical" )
          with
          | ( Some cores, Some requests, Some seq_s, Some jobs4_s, Some chaos_s,
              Some injections, Some identical ) ->
              let speedup = if jobs4_s > 0.0 then seq_s /. jobs4_s else 0.0 in
              Format.printf
                "bench gate: serve concurrency %d request(s) on %d core(s): seq %.3fs, \
                 jobs4 %.3fs (×%.2f), chaos %.3fs (%d injection(s))@."
                requests cores seq_s jobs4_s speedup chaos_s injections;
              if requests <= 0 then
                Error (Printf.sprintf "%s: serve_concurrency served zero requests" file)
              else if not identical then
                Error
                  "served bytes diverged across the concurrency legs — determinism \
                   under --serve-jobs is broken"
              else if injections <= 0 then
                Error "the chaos leg injected nothing — the adversary never ran"
              else if not (Float.is_finite chaos_s) || chaos_s <= 0.0 then
                Error
                  (Printf.sprintf "the chaos leg recorded no wall time (%.3fs)" chaos_s)
              else if cores >= 4 && speedup < serve_concurrency_floor then
                Error
                  (Printf.sprintf
                     "--serve-jobs 4 is only ×%.2f the sequential daemon on a %d-core \
                      host (floor ×%.1f)"
                     speedup cores serve_concurrency_floor)
              else begin
                if cores < 4 then
                  Format.printf
                    "bench gate: host reports %d core(s) < 4; recording the ratio, \
                     skipping the ×%.1f floor@."
                    cores serve_concurrency_floor;
                Ok ()
              end
          | _ ->
              Error
                (Printf.sprintf
                   "%s: serve_concurrency is missing fields (want cores, requests, \
                    seq_s, jobs4_s, chaos_s, chaos_injections, bytes_identical)"
                   file)))

(* ---- the scaling-curve guards --------------------------------------------

   The scaling sweep is the deliverable the reordering work is measured
   by, so the gate refuses to pass when it silently disappears: the
   current run must carry at least [min_scaling_rows] rows.  Each row
   present in both files is also compared on SI time, with a looser
   tolerance than the Bechamel suite (single-shot timings are noisier)
   and an absolute floor so millisecond-sized instances cannot trip the
   ratio on scheduler jitter. *)

let min_scaling_rows = 6
let scaling_tolerance = 0.60
let scaling_floor_s = 0.05

let check_scaling ~file baseline_json current_json =
  match
    with_section ~file ~section:"scaling_standard_protocol" Kpt_obs.Gate.scaling_of_json
      current_json (fun rows -> Ok rows)
  with
  | Error msg -> Error [ msg ]
  | Ok current ->
  let baseline = try Kpt_obs.Gate.scaling_of_json baseline_json with Failure _ -> [] in
  let errors = ref [] in
  if List.length current < min_scaling_rows then
    errors :=
      Printf.sprintf "scaling sweep has %d row(s); the gate requires at least %d"
        (List.length current) min_scaling_rows
      :: !errors;
  List.iter
    (fun (fam, n, a, base_si) ->
      match
        List.find_opt (fun (f, n', a', _) -> f = fam && n' = n && a' = a) current
      with
      | Some (_, _, _, cur_si)
        when cur_si > scaling_floor_s
             && base_si > 0.0
             && cur_si > base_si *. (1.0 +. scaling_tolerance) ->
          errors :=
            Printf.sprintf "scaling %s(n=%d,a=%d): SI %.3fs vs %.3fs baseline (+%.0f%%)"
              fam n a cur_si base_si
              (100.0 *. ((cur_si /. base_si) -. 1.0))
            :: !errors
      | Some _ -> ()
      | None ->
          errors :=
            Printf.sprintf "scaling %s(n=%d,a=%d): in the baseline but not the current run"
              fam n a
            :: !errors)
    baseline;
  if !errors = [] then begin
    Format.printf "bench gate: scaling sweep OK (%d rows, tolerance +%.0f%%)@."
      (List.length current) (100.0 *. scaling_tolerance);
    Ok ()
  end
  else Error !errors

(* The op-cache grow-thrash fix, pinned as a work-profile invariant: a
   run that grows its op caches more than 1.5× the baseline count has
   reintroduced the clear-and-regrow cycle somewhere. *)
let check_cache_grows ~file baseline_json current_json =
  with_section ~file ~section:"counters" Kpt_obs.Gate.counters_of_json current_json
  @@ fun current_counters ->
  let counter name counters =
    match List.assoc_opt name counters with Some v -> v | None -> 0.0
  in
  let base =
    counter "bdd.op_cache.grows"
      (try Kpt_obs.Gate.counters_of_json baseline_json with Failure _ -> [])
  in
  let cur = counter "bdd.op_cache.grows" current_counters in
  if base > 0.0 && cur > (1.5 *. base) +. 4.0 then
    Error
      (Printf.sprintf "bdd.op_cache.grows = %.0f vs %.0f baseline — grow-thrash is back" cur
         base)
  else begin
    Format.printf "bench gate: op-cache grows %.0f (baseline %.0f)@." cur base;
    Ok ()
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- the corpus gate ------------------------------------------------------

   [gate --corpus CORPUS_RESULTS.json] pins the difftest deliverable:
   the aggregated corpus run must carry a non-empty comparison matrix
   with zero disagreements (pass rate 1.0).  Structural absences fail
   with the same file/section/field-naming message the bench guards
   use. *)

let check_corpus ~file src =
  match Json.of_string src with
  | exception Json.Parse_error m -> Error [ Printf.sprintf "%s: malformed JSON: %s" file m ]
  | j ->
      let errors = ref [] in
      let err e = errors := !errors @ [ e ] in
      let section name =
        match Json.member name j with
        | Some v -> Some v
        | None ->
            err (Kpt_obs.Gate.missing_section_message ~file ~section:name ());
            None
      in
      let field ~section:s name v =
        match Json.member name v with
        | Some x -> Some x
        | None ->
            err (Kpt_obs.Gate.missing_section_message ~file ~section:s ~benchmark:name ());
            None
      in
      let as_float = function
        | Json.Float f -> Some f
        | Json.Int i -> Some (float_of_int i)
        | _ -> None
      in
      (match section "corpus" with
      | None -> ()
      | Some c -> (
          match Option.bind (field ~section:"corpus" "specs" c) Json.to_int with
          | Some n when n > 0 -> ()
          | Some _ -> err (Printf.sprintf "%s: corpus.specs is zero — nothing was tested" file)
          | None -> ()));
      (match section "difftest" with
      | None -> ()
      | Some d -> (
          let comparisons = Option.bind (field ~section:"difftest" "comparisons" d) Json.to_int in
          let disagreements =
            Option.bind (field ~section:"difftest" "disagreements" d) Json.to_int
          in
          let pass_rate = Option.bind (field ~section:"difftest" "pass_rate" d) as_float in
          match (comparisons, disagreements, pass_rate) with
          | Some c, Some dis, Some pr ->
              Format.printf
                "bench gate: corpus difftest %d comparison(s), %d disagreement(s), pass \
                 rate %.4f@."
                c dis pr;
              if c <= 0 then err (Printf.sprintf "%s: zero difftest comparisons" file);
              if dis <> 0 || pr < 1.0 then
                err
                  (Printf.sprintf
                     "%s: corpus pass rate %.4f with %d disagreement(s) — the gate pins \
                      1.0"
                     file pr dis)
          | _ -> ()));
      ignore (section "outcomes");
      ignore (section "budget");
      if !errors = [] then Ok () else Error !errors

let run_corpus_gate path =
  let errors =
    match check_corpus ~file:path (read_file path) with
    | Ok () -> []
    | Error es -> es
    | exception Sys_error m -> [ m ]
  in
  match errors with
  | [] ->
      Format.printf "bench gate: corpus OK (%s)@." path;
      exit 0
  | es ->
      List.iter (Format.printf "bench gate: FAIL — %s@.") es;
      exit 1

let usage () =
  prerr_endline "usage: gate [--tolerance R] BASELINE.json CURRENT.json";
  prerr_endline "       gate --corpus CORPUS_RESULTS.json";
  exit 2

let () =
  let tolerance = ref 0.25 in
  let corpus = ref None in
  let files = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--tolerance" when i + 1 < Array.length Sys.argv ->
          (match float_of_string_opt Sys.argv.(i + 1) with
          | Some t when t >= 0.0 -> tolerance := t
          | _ -> usage ());
          parse (i + 2)
      | "--tolerance" -> usage ()
      | "--corpus" when i + 1 < Array.length Sys.argv ->
          corpus := Some Sys.argv.(i + 1);
          parse (i + 2)
      | "--corpus" -> usage ()
      | a ->
          files := a :: !files;
          parse (i + 1)
  in
  parse 1;
  (match (!corpus, !files) with
  | Some path, [] -> run_corpus_gate path
  | Some _, _ -> usage ()
  | None, _ -> ());
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
      let baseline_json = read_file baseline_path in
      let current_json = read_file current_path in
      (* fail with a file-naming message before the comparison if either
         side lacks its benchmarks section *)
      (match
         ( with_section ~file:baseline_path ~section:benches_section
             Kpt_obs.Gate.benchmarks_of_json baseline_json (fun _ -> Ok ()),
           with_section ~file:current_path ~section:benches_section
             Kpt_obs.Gate.benchmarks_of_json current_json (fun _ -> Ok ()) )
       with
      | Ok (), Ok () -> ()
      | Error msg, _ | _, Error msg ->
          Format.eprintf "bench gate: error: %s@." msg;
          exit 2);
      match
        Kpt_obs.Gate.check ~tolerance:!tolerance ~baseline:baseline_json current_json
      with
      | report ->
          Format.printf "bench gate: %s vs %s (tolerance +%.0f%%)@." current_path
            baseline_path (100.0 *. !tolerance);
          Format.printf "%a@." Kpt_obs.Gate.pp_report report;
          let overhead =
            match check_budget_overhead ~file:current_path current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          let scaling =
            match check_scaling ~file:current_path baseline_json current_json with
            | Ok () -> true
            | Error msgs ->
                List.iter (Format.printf "bench gate: FAIL — %s@.") msgs;
                false
          in
          let lint_pair_ok =
            match check_lint_pair ~file:current_path current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          let slice_ok =
            match check_slice_work ~file:current_path current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          let cache =
            match check_cache_grows ~file:current_path baseline_json current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          let serve_ok =
            match check_serve_triple ~file:current_path current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          let serve_conc_ok =
            match check_serve_concurrency ~file:current_path current_json with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          if
            report.Kpt_obs.Gate.regressions = []
            && report.Kpt_obs.Gate.missing = []
            && overhead && scaling && cache && lint_pair_ok && slice_ok && serve_ok
            && serve_conc_ok
          then begin
            Format.printf "bench gate: OK (%d benchmarks within tolerance)@."
              (List.length report.Kpt_obs.Gate.verdicts);
            exit 0
          end
          else begin
            Format.printf
              "bench gate: FAIL (%d regression(s), %d missing) — investigate, or refresh \
               BENCH_BASELINE.json if the slowdown is intended@."
              (List.length report.Kpt_obs.Gate.regressions)
              (List.length report.Kpt_obs.Gate.missing);
            exit 1
          end
      | exception Failure msg ->
          Format.eprintf "bench gate: error: %s@." msg;
          exit 2)
  | _ -> usage ()
