(* The CI performance gate.

     gate [--tolerance R] BASELINE.json CURRENT.json

   Compares the [benchmarks_ns_per_run] sections of two bench JSON files
   (as written by [bench/main.ml]) and exits non-zero when any benchmark
   is more than [R] slower than its baseline (default 0.25, i.e. +25%).
   Benchmarks present in the baseline but absent from the current run
   also fail the gate — renames must refresh the baseline, not silently
   drop coverage.

   Additionally, the P8 budget-overhead pair is checked {e within}
   CURRENT.json: the budgeted run of the identical workload must be
   under 5% slower than the unbudgeted one.  A same-run ratio is
   machine-independent, so this guard never needs a baseline refresh —
   it fails only if the budget checkpoints themselves get expensive. *)

let budget_pair =
  ( "P8 budget overhead: SI fixpoint n=4, unbudgeted",
    "P8 budget overhead: SI fixpoint n=4, budget armed" )

let budget_overhead_tolerance = 0.05

(* [Ok ()] when the pair is within tolerance or absent (older results);
   [Error msg] on a blown ratio. *)
let check_budget_overhead current_json =
  let benches = Kpt_obs.Gate.benchmarks_of_json current_json in
  let plain_name, budgeted_name = budget_pair in
  match (List.assoc_opt plain_name benches, List.assoc_opt budgeted_name benches) with
  | Some plain, Some budgeted when plain > 0.0 ->
      let overhead = (budgeted -. plain) /. plain in
      Format.printf "bench gate: budget overhead %.1f%% (budgeted %.1f ns vs %.1f ns, limit +%.0f%%)@."
        (100.0 *. overhead) budgeted plain (100.0 *. budget_overhead_tolerance);
      if overhead <= budget_overhead_tolerance then Ok ()
      else
        Error
          (Printf.sprintf
             "budget checkpoints cost %.1f%% on the identical workload (limit %.0f%%)"
             (100.0 *. overhead)
             (100.0 *. budget_overhead_tolerance))
  | _ ->
      Format.printf "bench gate: budget-overhead pair not present; skipping the ratio guard@.";
      Ok ()

let usage () =
  prerr_endline "usage: gate [--tolerance R] BASELINE.json CURRENT.json";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let tolerance = ref 0.25 in
  let files = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--tolerance" when i + 1 < Array.length Sys.argv ->
          (match float_of_string_opt Sys.argv.(i + 1) with
          | Some t when t >= 0.0 -> tolerance := t
          | _ -> usage ());
          parse (i + 2)
      | "--tolerance" -> usage ()
      | a ->
          files := a :: !files;
          parse (i + 1)
  in
  parse 1;
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
      match
        Kpt_obs.Gate.check ~tolerance:!tolerance ~baseline:(read_file baseline_path)
          (read_file current_path)
      with
      | report ->
          Format.printf "bench gate: %s vs %s (tolerance +%.0f%%)@." current_path
            baseline_path (100.0 *. !tolerance);
          Format.printf "%a@." Kpt_obs.Gate.pp_report report;
          let overhead =
            match check_budget_overhead (read_file current_path) with
            | Ok () -> true
            | Error msg ->
                Format.printf "bench gate: FAIL — %s@." msg;
                false
          in
          if
            report.Kpt_obs.Gate.regressions = []
            && report.Kpt_obs.Gate.missing = []
            && overhead
          then begin
            Format.printf "bench gate: OK (%d benchmarks within tolerance)@."
              (List.length report.Kpt_obs.Gate.verdicts);
            exit 0
          end
          else begin
            Format.printf
              "bench gate: FAIL (%d regression(s), %d missing) — investigate, or refresh \
               BENCH_BASELINE.json if the slowdown is intended@."
              (List.length report.Kpt_obs.Gate.regressions)
              (List.length report.Kpt_obs.Gate.missing);
            exit 1
          end
      | exception Failure msg ->
          Format.eprintf "bench gate: error: %s@." msg;
          exit 2)
  | _ -> usage ()
