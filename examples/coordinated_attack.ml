(* The coordinated attack problem — why common knowledge matters.
   Run with:  dune exec examples/coordinated_attack.exe

   Two generals must attack together; messengers can be lost.  The classic
   impossibility (discussed at length in [HM90], which the paper builds
   on): no finite number of acknowledgements ever produces COMMON
   knowledge of the attack order, so a protocol whose guard is
   C_{A,B}(order delivered) never attacks.

   We model a four-deep acknowledgement chain over a lossy channel:
     d1 = B received the order          (A → B)
     d2 = A received B's ack            (B → A)
     d3 = B received A's ack-ack        (A → B)
     d4 = A received B's ack-ack-ack    (B → A)
   Each may forever fail to arrive; each arrives only after the previous.
   General A sees {d2, d4}; B sees {d1, d3}.

   We compute the everyone-knows tower E, E², E³ … and the common
   knowledge fixpoint C with the genuine transformers and watch the tower
   die exactly at the depth of the available evidence. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

let () =
  let sp = Space.create () in
  let d = Array.init 4 (fun k -> Space.bool_var sp (Printf.sprintf "d%d" (k + 1))) in
  let a = Process.make "A" [ d.(1); d.(3) ] in
  let b = Process.make "B" [ d.(0); d.(2) ] in
  let open Expr in
  let deliver k =
    let guard = if k = 0 then tru else var d.(k - 1) in
    Stmt.make ~name:(Printf.sprintf "deliver%d" (k + 1)) ~guard [ (d.(k), tru) ]
  in
  (* a no-op models the messenger being lost this round *)
  let lose = Stmt.make ~name:"lose" [ (d.(0), var d.(0)) ] in
  let prog =
    Program.make sp ~name:"coordinated_attack"
      ~init:(conj (List.init 4 (fun k -> not_ (var d.(k)))))
      ~processes:[ a; b ]
      (List.init 4 deliver @ [ lose ])
  in
  Format.printf "%a@.@." Program.pp prog;

  let m = Space.manager sp in
  let si = Program.si prog in
  let order_received = Expr.compile_bool sp (var d.(0)) in
  let group = [ a; b ] in
  let e p = Knowledge.everyone_knows sp ~si group p in

  (* the state with the deepest possible evidence *)
  let full = Space.pred_of_state sp [| 1; 1; 1; 1 |] in
  let holds_at_full p = Bdd.implies m (Bdd.and_ m si full) p in

  Format.printf "At the deepest reachable state (all four messages delivered):@.";
  let rec tower k p =
    if k > 5 then ()
    else begin
      Format.printf "  E^%d(order received) holds : %b@." k (holds_at_full p);
      tower (k + 1) (e p)
    end
  in
  tower 0 order_received;

  let c = Knowledge.common_knowledge sp ~si group order_received in
  Format.printf "@.C_{A,B}(order received) at that state : %b@." (holds_at_full c);
  Format.printf "C_{A,B}(order received) anywhere       : %b@."
    (not (Bdd.is_false (Pred.normalize sp (Bdd.and_ m si c))));
  Format.printf
    "@.→ every finite acknowledgement chain leaves the last messenger in doubt:@.";
  Format.printf "  common knowledge — hence a coordinated attack — is unattainable.@.@.";

  (* And as a knowledge-based protocol: guards demanding common knowledge
     never fire, so the attack statements are dead in every solution. *)
  let attack_a = Space.bool_var sp "attack_a" in
  let attack_b = Space.bool_var sp "attack_b" in
  let kbp =
    Kbp.make sp ~name:"generals"
      ~init:(conj (List.init 4 (fun k -> not_ (var d.(k))) @ [ not_ (var attack_a); not_ (var attack_b) ]))
      ~processes:[ Process.make "A" [ d.(1); d.(3); attack_a ]; Process.make "B" [ d.(0); d.(2); attack_b ] ]
      ([
         Kbp.kstmt ~name:"attackA"
           ~guard:(Kform.ck [ "A"; "B" ] (Kform.base (var d.(0))))
           [ (attack_a, tru) ];
         Kbp.kstmt ~name:"attackB"
           ~guard:(Kform.ck [ "A"; "B" ] (Kform.base (var d.(0))))
           [ (attack_b, tru) ];
       ]
      @ List.map
          (fun s -> Kbp.kstmt ~name:(Stmt.name s ^ "'") ~guard:(Kform.base tru) s.Stmt.assigns)
          []
      @ List.init 4 (fun k ->
            let guard = if k = 0 then Kform.base tru else Kform.base (var d.(k - 1)) in
            Kbp.kstmt ~name:(Printf.sprintf "dlv%d" (k + 1)) ~guard [ (d.(k), tru) ]))
  in
  (match Kbp.iterate kbp with
  | Kbp.Converged { si = si'; _ } ->
      let never_attack =
        Bdd.implies m si'
          (Expr.compile_bool sp (not_ (var attack_a) &&& not_ (var attack_b)))
      in
      Format.printf "KBP with guard C_{A,B}(d1): solution found; attack never happens : %b@."
        never_attack
  | _ -> Format.printf "KBP iteration cycled (unexpected here)@.")
