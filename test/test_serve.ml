(* The serve daemon, end to end over a real Unix socket.

   The load-bearing properties pinned here:
   - a served answer — text and JSON — is byte-identical to the direct
     driver's, cold, warm, and from the cache, over the whole examples
     corpus;
   - the result cache is content-addressed: an edited source byte or a
     changed output-affecting option misses, while [jobs] (excluded from
     the key by the batch driver's determinism contract) hits;
   - warm engines carry no stale per-request state: a fuel-starved
     request exits 3 (and is not cached), and the very next request on
     the same daemon succeeds with the same bytes a fresh process would
     produce;
   - a malformed line gets a structured error frame and the connection
     survives for the next request;
   - [--trace] streams event frames over the wire before the result, and
     a cache hit streams none;
   - shutdown removes the socket; a stale socket file is reclaimed on
     startup; a live one refuses a second daemon; concurrent clients see
     the same bytes as sequential ones. *)

module Server = Kpt_serve.Server
module Client = Kpt_serve.Client
module Protocol = Kpt_serve.Protocol
module Driver = Kpt_analysis.Driver

(* ---- corpus (same shape as test_par) ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare
  |> List.map (fun n -> ("examples/specs/" ^ n, read_file ("../examples/specs/" ^ n)))

let mk_req ?(id = 1) ?(opts = Driver.default_options) cmd files =
  { Protocol.id; cmd; files; opts }

(* [Protocol.response] carries inline records; flatten the final frame
   into a plain one the assertions can pass around. *)
type reply = {
  exit_code : int;
  cached : bool;
  out : string;
  err : string;
  daemon : (string * int) list;
}

let result_exn = function
  | Ok (Protocol.Result { exit_code; cached; out; err; daemon; _ }) ->
      { exit_code; cached; out; err; daemon }
  | Ok (Protocol.Error_frame { message; _ }) ->
      Alcotest.failf "unexpected error frame: %s" message
  | Ok (Protocol.Event _) -> Alcotest.fail "event frame leaked past read_response"
  | Error msg -> Alcotest.failf "transport error: %s" msg

let check_outcome name (direct : Driver.outcome) (r : reply) ~cached =
  Alcotest.(check int) (name ^ ": exit code") direct.Driver.code r.exit_code;
  Alcotest.(check string) (name ^ ": stdout bytes") direct.Driver.out r.out;
  Alcotest.(check string) (name ^ ": stderr bytes") direct.Driver.err r.err;
  Alcotest.(check bool) (name ^ ": cached flag") cached r.cached

(* ---- running a daemon inside the test process -------------------------------- *)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kpt-test-%d-%s.sock" (Unix.getpid ()) tag)

let wait_for_socket path =
  let rec loop n =
    if n = 0 then Alcotest.failf "daemon never bound %s" path
    else
      match Client.connect ~socket:path with
      | Ok c -> Client.close c
      | Error _ ->
          Unix.sleepf 0.02;
          loop (n - 1)
  in
  loop 250

(* Spawn the daemon on its own domain, run [f socket], then shut it down
   through the wire and join.  The join doubles as the exit-code check:
   a clean shutdown must return 0 and remove the socket file. *)
let with_server ~tag ?(cache_size = 8) f =
  let socket = socket_path tag in
  if Sys.file_exists socket then Sys.remove socket;
  let daemon =
    Domain.spawn (fun () ->
        Server.run ~announce:false { Server.socket_path = socket; cache_size })
  in
  wait_for_socket socket;
  let result = try Ok (f socket) with e -> Error e in
  (match Client.roundtrip ~socket (mk_req Protocol.Shutdown []) with
  | Ok _ | Error _ -> ());
  let code = Domain.join daemon in
  Alcotest.(check int) "daemon exits 0 on shutdown" 0 code;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists socket);
  match result with Ok v -> v | Error e -> raise e

(* ---- byte identity: cold vs warm vs cached ----------------------------------- *)

let test_check_byte_identity () =
  let sources = corpus () in
  let json_opts = { Driver.default_options with Driver.json = true } in
  let direct_text = Driver.check Driver.default_options sources in
  let direct_json = Driver.check json_opts sources in
  with_server ~tag:"identity" @@ fun socket ->
  let round ?opts id =
    result_exn (Client.roundtrip ~socket (mk_req ~id ?opts Protocol.Check sources))
  in
  (* cold daemon: the first request misses the cache *)
  check_outcome "warm/1st (text)" direct_text (round 1) ~cached:false;
  (* warm daemon, identical request: served from the cache *)
  check_outcome "cached/2nd (text)" direct_text (round 2) ~cached:true;
  check_outcome "cached/3rd (text)" direct_text (round 3) ~cached:true;
  check_outcome "warm (json)" direct_json (round ~opts:json_opts 4) ~cached:false;
  check_outcome "cached (json)" direct_json (round ~opts:json_opts 5) ~cached:true

(* ---- the cache key ----------------------------------------------------------- *)

let test_cache_key_content_addressed () =
  let file = "examples/specs/transmit.unity" in
  let src = read_file "../examples/specs/transmit.unity" in
  with_server ~tag:"cachekey" @@ fun socket ->
  let send ?(opts = Driver.default_options) files =
    result_exn (Client.roundtrip ~socket (mk_req ~opts Protocol.Check files))
  in
  Alcotest.(check bool) "first request misses" false (send [ (file, src) ]).cached;
  Alcotest.(check bool) "identical request hits" true (send [ (file, src) ]).cached;
  (* one changed source byte is a different address *)
  Alcotest.(check bool) "edited source misses" false
    (send [ (file, src ^ "\n") ]).cached;
  (* an output-affecting option is part of the key *)
  Alcotest.(check bool) "changed option misses" false
    (send ~opts:{ Driver.default_options with Driver.quiet = true } [ (file, src) ])
      .cached;
  (* [jobs] is excluded: the batch driver's output is pool-size-independent *)
  Alcotest.(check bool) "jobs is not part of the key" true
    (send ~opts:{ Driver.default_options with Driver.jobs = Some 4 } [ (file, src) ])
      .cached

(* ---- warm engines carry no stale request state (the lifecycle bugfix) -------- *)

let test_budget_exhaustion_not_sticky () =
  let sources =
    [ ("examples/specs/transmit.unity", read_file "../examples/specs/transmit.unity") ]
  in
  let starved =
    {
      Driver.default_options with
      Driver.limits = Kpt_predicate.Budget.limits ~fuel:1 ();
    }
  in
  let direct_ok = Driver.check Driver.default_options sources in
  with_server ~tag:"budget" @@ fun socket ->
  let send opts =
    result_exn (Client.roundtrip ~socket (mk_req ~opts Protocol.Check sources))
  in
  let r1 = send starved in
  Alcotest.(check int) "fuel-starved request exits 3" 3 r1.exit_code;
  Alcotest.(check bool) "and is not cached (budget-dependent)" false r1.cached;
  (* the very next request on the same warm daemon: no armed budget, no
     leftover counters — the same bytes a fresh process produces *)
  let r2 = send Driver.default_options in
  Alcotest.(check int) "next request succeeds" direct_ok.Driver.code r2.exit_code;
  Alcotest.(check string) "with clean bytes" direct_ok.Driver.out r2.out;
  Alcotest.(check bool) "fresh even though a starved twin ran first" false r2.cached;
  (* exit-3 outcomes never enter the cache: repeating re-runs and re-exhausts *)
  let r3 = send starved in
  Alcotest.(check int) "starved again exits 3 again" 3 r3.exit_code;
  Alcotest.(check bool) "still uncached" false r3.cached

(* ---- protocol robustness ------------------------------------------------------ *)

let test_malformed_then_valid_on_same_connection () =
  with_server ~tag:"malformed" @@ fun socket ->
  match Client.connect ~socket with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c)
      @@ fun () ->
      Client.send_line c "this is not json";
      (match Client.read_response c with
      | Ok (Protocol.Error_frame { exit_code; message; _ }) ->
          Alcotest.(check int) "malformed line exits 2" 2 exit_code;
          Alcotest.(check bool) "and says so" true
            (String.length message >= 17
            && String.sub message 0 17 = "malformed request")
      | _ -> Alcotest.fail "expected an error frame for a malformed line");
      Client.send_line c {|{"v":1,"id":7,"cmd":"frobnicate","files":[],"opts":{}}|};
      (match Client.read_response c with
      | Ok (Protocol.Error_frame { id; exit_code; _ }) ->
          Alcotest.(check int) "bad request echoes the id" 7 id;
          Alcotest.(check int) "and exits 2" 2 exit_code
      | _ -> Alcotest.fail "expected an error frame for an unknown cmd");
      (* the connection survives both: a well-formed request still answers *)
      Client.send_request c (mk_req Protocol.Ping []);
      (match Client.read_response c with
      | Ok (Protocol.Result { out; daemon; _ }) ->
          Alcotest.(check string) "ping answers" "kpt-serve: alive\n" out;
          Alcotest.(check bool) "with daemon introspection" true
            (List.mem_assoc "cache_hits" daemon && List.mem_assoc "pool_size" daemon)
      | _ -> Alcotest.fail "expected a ping result on the same connection")

let test_trace_streams_events () =
  let sources =
    [ ("examples/specs/figure1.unity", read_file "../examples/specs/figure1.unity") ]
  in
  let opts = { Driver.default_options with Driver.trace = true } in
  with_server ~tag:"trace" @@ fun socket ->
  let events = ref [] in
  let on_event name fields = events := (name, fields) :: !events in
  let send () =
    result_exn (Client.roundtrip ~on_event ~socket (mk_req ~opts Protocol.Solve sources))
  in
  let r = send () in
  Alcotest.(check int) "solve succeeds" 0 r.exit_code;
  Alcotest.(check bool) "event frames streamed before the result" true
    (List.length !events > 0);
  (* a cache hit computes nothing, so it streams nothing *)
  events := [];
  let r2 = send () in
  Alcotest.(check bool) "second answer is cached" true r2.cached;
  Alcotest.(check int) "a cached answer streams no events" 0 (List.length !events);
  Alcotest.(check string) "but carries the same bytes" r.out r2.out

(* ---- daemon lifecycle --------------------------------------------------------- *)

let test_stale_socket_reclaimed () =
  let socket = socket_path "stale" in
  if Sys.file_exists socket then Sys.remove socket;
  (* a socket file with no listener behind it: bound and abandoned,
     exactly what a SIGKILLed daemon leaves behind *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX socket);
  Unix.close dead;
  Alcotest.(check bool) "the stale file exists" true (Sys.file_exists socket);
  let daemon =
    Domain.spawn (fun () ->
        Server.run ~announce:false { Server.socket_path = socket; cache_size = 4 })
  in
  wait_for_socket socket;
  let r = result_exn (Client.roundtrip ~socket (mk_req Protocol.Ping [])) in
  Alcotest.(check string) "daemon reclaimed the stale socket" "kpt-serve: alive\n" r.out;
  ignore (Client.roundtrip ~socket (mk_req Protocol.Shutdown []));
  Alcotest.(check int) "and shuts down cleanly" 0 (Domain.join daemon);
  Alcotest.(check bool) "removing the socket" false (Sys.file_exists socket)

let test_second_daemon_refused () =
  with_server ~tag:"refuse" @@ fun socket ->
  (* the socket is live: a second daemon must refuse to steal it *)
  Alcotest.(check int) "second daemon on a live socket exits 1" 1
    (Server.run ~announce:false { Server.socket_path = socket; cache_size = 4 });
  Alcotest.(check bool) "and leaves the live socket alone" true (Sys.file_exists socket)

let test_concurrent_clients_match_sequential () =
  let sources = corpus () in
  let opts = { Driver.default_options with Driver.jobs = Some 4 } in
  let direct = Driver.check opts sources in
  with_server ~tag:"concurrent" @@ fun socket ->
  let fetch () =
    match Client.roundtrip ~socket (mk_req ~opts Protocol.Check sources) with
    | Ok (Protocol.Result { out; exit_code; _ }) -> (exit_code, out)
    | Ok _ -> (-1, "unexpected frame")
    | Error msg -> (-1, msg)
  in
  (* two clients racing on connect: the daemon serves them in accept
     order; both must get the direct command's bytes *)
  let a = Domain.spawn fetch in
  let b = Domain.spawn fetch in
  let ra = Domain.join a in
  let rb = Domain.join b in
  List.iter
    (fun (name, (code, out)) ->
      Alcotest.(check int) (name ^ ": exit code") direct.Driver.code code;
      Alcotest.(check string) (name ^ ": bytes") direct.Driver.out out)
    [ ("client A", ra); ("client B", rb) ]

let suite =
  [
    Alcotest.test_case "served check is byte-identical (cold/warm/cached)" `Quick
      test_check_byte_identity;
    Alcotest.test_case "cache key is content-addressed" `Quick
      test_cache_key_content_addressed;
    Alcotest.test_case "budget exhaustion is not sticky across requests" `Quick
      test_budget_exhaustion_not_sticky;
    Alcotest.test_case "malformed request then valid on one connection" `Quick
      test_malformed_then_valid_on_same_connection;
    Alcotest.test_case "--trace streams events over the wire" `Quick
      test_trace_streams_events;
    Alcotest.test_case "stale socket is reclaimed" `Quick test_stale_socket_reclaimed;
    Alcotest.test_case "second daemon on a live socket is refused" `Quick
      test_second_daemon_refused;
    Alcotest.test_case "concurrent clients match sequential" `Quick
      test_concurrent_clients_match_sequential;
  ]
