(* The serve daemon, end to end over a real Unix socket.

   The load-bearing properties pinned here:
   - a served answer — text and JSON — is byte-identical to the direct
     driver's, cold, warm, and from the cache, over the whole examples
     corpus;
   - the result cache is content-addressed: an edited source byte or a
     changed output-affecting option misses, while [jobs] (excluded from
     the key by the batch driver's determinism contract) hits;
   - warm engines carry no stale per-request state: a fuel-starved
     request exits 3 (and is not cached), and the very next request on
     the same daemon succeeds with the same bytes a fresh process would
     produce;
   - a malformed line gets a structured error frame and the connection
     survives for the next request;
   - [--trace] streams event frames over the wire before the result, and
     a cache hit streams none;
   - shutdown removes the socket; a stale socket file is reclaimed on
     startup; a live one refuses a second daemon; concurrent clients see
     the same bytes as sequential ones;
   - under overload the daemon sheds with the structured [overloaded]
     frame (exit 75); a slow-loris client is cut at the absolute
     deadline with the [timeout] frame (exit 4); a doctored protocol
     version gets the [version_mismatch] frame naming both versions; a
     client vanishing mid-request leaves the daemon serving; [write_all]
     survives short writes byte-for-byte; the retry schedule is bounded,
     deterministic under a pinned seed, and resends only what never
     demonstrably ran; the ping health fields are pinned by a golden
     file; and a mini chaos sweep against a real spawned daemon holds
     every invariant. *)

module Server = Kpt_serve.Server
module Client = Kpt_serve.Client
module Protocol = Kpt_serve.Protocol
module Driver = Kpt_analysis.Driver

(* ---- corpus (same shape as test_par) ---------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare
  |> List.map (fun n -> ("examples/specs/" ^ n, read_file ("../examples/specs/" ^ n)))

let mk_req ?(id = 1) ?(opts = Driver.default_options) cmd files =
  { Protocol.id; cmd; files; opts }

(* [Protocol.response] carries inline records; flatten the final frame
   into a plain one the assertions can pass around. *)
type reply = {
  exit_code : int;
  cached : bool;
  out : string;
  err : string;
  daemon : (string * int) list;
}

let result_exn = function
  | Ok (Protocol.Result { exit_code; cached; out; err; daemon; _ }) ->
      { exit_code; cached; out; err; daemon }
  | Ok (Protocol.Error_frame { message; _ }) ->
      Alcotest.failf "unexpected error frame: %s" message
  | Ok (Protocol.Event _) -> Alcotest.fail "event frame leaked past read_response"
  | Error msg -> Alcotest.failf "transport error: %s" msg

let check_outcome name (direct : Driver.outcome) (r : reply) ~cached =
  Alcotest.(check int) (name ^ ": exit code") direct.Driver.code r.exit_code;
  Alcotest.(check string) (name ^ ": stdout bytes") direct.Driver.out r.out;
  Alcotest.(check string) (name ^ ": stderr bytes") direct.Driver.err r.err;
  Alcotest.(check bool) (name ^ ": cached flag") cached r.cached

(* ---- running a daemon inside the test process -------------------------------- *)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kpt-test-%d-%s.sock" (Unix.getpid ()) tag)

let wait_for_socket path =
  let rec loop n =
    if n = 0 then Alcotest.failf "daemon never bound %s" path
    else
      match Client.connect ~socket:path with
      | Ok c -> Client.close c
      | Error _ ->
          Unix.sleepf 0.02;
          loop (n - 1)
  in
  loop 250

(* Spawn the daemon on its own domain, run [f socket], then shut it down
   through the wire and join.  The join doubles as the exit-code check:
   a clean shutdown must return 0 and remove the socket file. *)
let with_server ~tag ?(cache_size = 8) ?(jobs = 1) ?(queue = 64) ?request_timeout f =
  let socket = socket_path tag in
  if Sys.file_exists socket then Sys.remove socket;
  let cfg =
    Server.config ~jobs ~queue_capacity:queue ?request_timeout ~socket_path:socket
      ~cache_size ()
  in
  let daemon = Domain.spawn (fun () -> Server.run ~announce:false cfg) in
  wait_for_socket socket;
  let result = try Ok (f socket) with e -> Error e in
  (* the shutdown request itself can be shed if a test left the daemon
     saturated for a moment (e.g. the overload scenario), so retry until
     the daemon actually acknowledges with a result frame *)
  let rec shutdown_daemon n =
    match Client.roundtrip ~socket (mk_req Protocol.Shutdown []) with
    | Ok (Protocol.Result _) -> ()
    | (Ok _ | Error _) when n > 0 ->
        Unix.sleepf 0.1;
        shutdown_daemon (n - 1)
    | Ok _ | Error _ -> ()
  in
  shutdown_daemon 50;
  let code = Domain.join daemon in
  Alcotest.(check int) "daemon exits 0 on shutdown" 0 code;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists socket);
  match result with Ok v -> v | Error e -> raise e

(* ---- byte identity: cold vs warm vs cached ----------------------------------- *)

let test_check_byte_identity () =
  let sources = corpus () in
  let json_opts = { Driver.default_options with Driver.json = true } in
  let direct_text = Driver.check Driver.default_options sources in
  let direct_json = Driver.check json_opts sources in
  with_server ~tag:"identity" @@ fun socket ->
  let round ?opts id =
    result_exn (Client.roundtrip ~socket (mk_req ~id ?opts Protocol.Check sources))
  in
  (* cold daemon: the first request misses the cache *)
  check_outcome "warm/1st (text)" direct_text (round 1) ~cached:false;
  (* warm daemon, identical request: served from the cache *)
  check_outcome "cached/2nd (text)" direct_text (round 2) ~cached:true;
  check_outcome "cached/3rd (text)" direct_text (round 3) ~cached:true;
  check_outcome "warm (json)" direct_json (round ~opts:json_opts 4) ~cached:false;
  check_outcome "cached (json)" direct_json (round ~opts:json_opts 5) ~cached:true

(* ---- the cache key ----------------------------------------------------------- *)

let test_cache_key_content_addressed () =
  let file = "examples/specs/transmit.unity" in
  let src = read_file "../examples/specs/transmit.unity" in
  with_server ~tag:"cachekey" @@ fun socket ->
  let send ?(opts = Driver.default_options) files =
    result_exn (Client.roundtrip ~socket (mk_req ~opts Protocol.Check files))
  in
  Alcotest.(check bool) "first request misses" false (send [ (file, src) ]).cached;
  Alcotest.(check bool) "identical request hits" true (send [ (file, src) ]).cached;
  (* one changed source byte is a different address *)
  Alcotest.(check bool) "edited source misses" false
    (send [ (file, src ^ "\n") ]).cached;
  (* an output-affecting option is part of the key *)
  Alcotest.(check bool) "changed option misses" false
    (send ~opts:{ Driver.default_options with Driver.quiet = true } [ (file, src) ])
      .cached;
  (* [jobs] is excluded: the batch driver's output is pool-size-independent *)
  Alcotest.(check bool) "jobs is not part of the key" true
    (send ~opts:{ Driver.default_options with Driver.jobs = Some 4 } [ (file, src) ])
      .cached

(* ---- warm engines carry no stale request state (the lifecycle bugfix) -------- *)

let test_budget_exhaustion_not_sticky () =
  let sources =
    [ ("examples/specs/transmit.unity", read_file "../examples/specs/transmit.unity") ]
  in
  let starved =
    {
      Driver.default_options with
      Driver.limits = Kpt_predicate.Budget.limits ~fuel:1 ();
    }
  in
  let direct_ok = Driver.check Driver.default_options sources in
  with_server ~tag:"budget" @@ fun socket ->
  let send opts =
    result_exn (Client.roundtrip ~socket (mk_req ~opts Protocol.Check sources))
  in
  let r1 = send starved in
  Alcotest.(check int) "fuel-starved request exits 3" 3 r1.exit_code;
  Alcotest.(check bool) "and is not cached (budget-dependent)" false r1.cached;
  (* the very next request on the same warm daemon: no armed budget, no
     leftover counters — the same bytes a fresh process produces *)
  let r2 = send Driver.default_options in
  Alcotest.(check int) "next request succeeds" direct_ok.Driver.code r2.exit_code;
  Alcotest.(check string) "with clean bytes" direct_ok.Driver.out r2.out;
  Alcotest.(check bool) "fresh even though a starved twin ran first" false r2.cached;
  (* exit-3 outcomes never enter the cache: repeating re-runs and re-exhausts *)
  let r3 = send starved in
  Alcotest.(check int) "starved again exits 3 again" 3 r3.exit_code;
  Alcotest.(check bool) "still uncached" false r3.cached

(* ---- protocol robustness ------------------------------------------------------ *)

let test_malformed_then_valid_on_same_connection () =
  with_server ~tag:"malformed" @@ fun socket ->
  match Client.connect ~socket with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c)
      @@ fun () ->
      Client.send_line c "this is not json";
      (match Client.read_response c with
      | Ok (Protocol.Error_frame { exit_code; message; _ }) ->
          Alcotest.(check int) "malformed line exits 2" 2 exit_code;
          Alcotest.(check bool) "and says so" true
            (String.length message >= 17
            && String.sub message 0 17 = "malformed request")
      | _ -> Alcotest.fail "expected an error frame for a malformed line");
      Client.send_line c {|{"v":1,"id":7,"cmd":"frobnicate","files":[],"opts":{}}|};
      (match Client.read_response c with
      | Ok (Protocol.Error_frame { id; exit_code; _ }) ->
          Alcotest.(check int) "bad request echoes the id" 7 id;
          Alcotest.(check int) "and exits 2" 2 exit_code
      | _ -> Alcotest.fail "expected an error frame for an unknown cmd");
      (* the connection survives both: a well-formed request still answers *)
      Client.send_request c (mk_req Protocol.Ping []);
      (match Client.read_response c with
      | Ok (Protocol.Result { out; daemon; _ }) ->
          Alcotest.(check string) "ping answers" "kpt-serve: alive\n" out;
          Alcotest.(check bool) "with daemon introspection" true
            (List.mem_assoc "cache_hits" daemon && List.mem_assoc "pool_size" daemon)
      | _ -> Alcotest.fail "expected a ping result on the same connection")

let test_trace_streams_events () =
  let sources =
    [ ("examples/specs/figure1.unity", read_file "../examples/specs/figure1.unity") ]
  in
  let opts = { Driver.default_options with Driver.trace = true } in
  with_server ~tag:"trace" @@ fun socket ->
  let events = ref [] in
  let on_event name fields = events := (name, fields) :: !events in
  let send () =
    result_exn (Client.roundtrip ~on_event ~socket (mk_req ~opts Protocol.Solve sources))
  in
  let r = send () in
  Alcotest.(check int) "solve succeeds" 0 r.exit_code;
  Alcotest.(check bool) "event frames streamed before the result" true
    (List.length !events > 0);
  (* a cache hit computes nothing, so it streams nothing *)
  events := [];
  let r2 = send () in
  Alcotest.(check bool) "second answer is cached" true r2.cached;
  Alcotest.(check int) "a cached answer streams no events" 0 (List.length !events);
  Alcotest.(check string) "but carries the same bytes" r.out r2.out

(* ---- daemon lifecycle --------------------------------------------------------- *)

let test_stale_socket_reclaimed () =
  let socket = socket_path "stale" in
  if Sys.file_exists socket then Sys.remove socket;
  (* a socket file with no listener behind it: bound and abandoned,
     exactly what a SIGKILLed daemon leaves behind *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX socket);
  Unix.close dead;
  Alcotest.(check bool) "the stale file exists" true (Sys.file_exists socket);
  let daemon =
    Domain.spawn (fun () ->
        Server.run ~announce:false
          (Server.config ~socket_path:socket ~cache_size:4 ()))
  in
  wait_for_socket socket;
  let r = result_exn (Client.roundtrip ~socket (mk_req Protocol.Ping [])) in
  Alcotest.(check string) "daemon reclaimed the stale socket" "kpt-serve: alive\n" r.out;
  ignore (Client.roundtrip ~socket (mk_req Protocol.Shutdown []));
  Alcotest.(check int) "and shuts down cleanly" 0 (Domain.join daemon);
  Alcotest.(check bool) "removing the socket" false (Sys.file_exists socket)

let test_second_daemon_refused () =
  with_server ~tag:"refuse" @@ fun socket ->
  (* the socket is live: a second daemon must refuse to steal it *)
  Alcotest.(check int) "second daemon on a live socket exits 1" 1
    (Server.run ~announce:false (Server.config ~socket_path:socket ~cache_size:4 ()));
  Alcotest.(check bool) "and leaves the live socket alone" true (Sys.file_exists socket)

let test_concurrent_clients_match_sequential () =
  let sources = corpus () in
  let opts = { Driver.default_options with Driver.jobs = Some 4 } in
  let direct = Driver.check opts sources in
  with_server ~tag:"concurrent" @@ fun socket ->
  let fetch () =
    match Client.roundtrip ~socket (mk_req ~opts Protocol.Check sources) with
    | Ok (Protocol.Result { out; exit_code; _ }) -> (exit_code, out)
    | Ok _ -> (-1, "unexpected frame")
    | Error msg -> (-1, msg)
  in
  (* two clients racing on connect: the daemon serves them in accept
     order; both must get the direct command's bytes *)
  let a = Domain.spawn fetch in
  let b = Domain.spawn fetch in
  let ra = Domain.join a in
  let rb = Domain.join b in
  List.iter
    (fun (name, (code, out)) ->
      Alcotest.(check int) (name ^ ": exit code") direct.Driver.code code;
      Alcotest.(check string) (name ^ ": bytes") direct.Driver.out out)
    [ ("client A", ra); ("client B", rb) ]

(* ---- overload shedding -------------------------------------------------------- *)

(* raw sockets, for adversarial clients the [Client] module rightly
   refuses to be *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

(* every read is select-guarded: an adversarial-client test that blocks
   forever on a frame the daemon never owes it wedges the whole suite *)
let recv_frame ~timeout fd =
  match Unix.select [ fd ] [] [] timeout with
  | [ _ ], _, _ -> (
      let ic = Unix.in_channel_of_descr fd in
      match Protocol.response_of_json (Json.of_string (input_line ic)) with
      | Ok frame -> Some frame
      | Error msg -> Alcotest.failf "undecodable frame: %s" msg)
  | _ -> None

let raw_frame_exn fd =
  match recv_frame ~timeout:10.0 fd with
  | Some frame -> frame
  | None -> Alcotest.fail "no frame within 10s"

let test_overload_sheds_with_structured_frame () =
  (* one worker, a queue of one: a silent connection holds the worker
     (its read blocks — no deadline is armed), another parks in the
     queue, and the next must be shed at accept with the structured
     frame.  Which connection ends up parked depends on how quickly the
     worker dequeues the first, so probe with fresh connections until
     one is shed instead of assuming the third one is. *)
  with_server ~tag:"shed" ~jobs:1 ~queue:1 @@ fun socket ->
  let opened = ref [] in
  let connect () =
    let fd = raw_connect socket in
    opened := fd :: !opened;
    fd
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !opened)
  @@ fun () ->
  let _holder = connect () in
  Unix.sleepf 0.2 (* let the worker pop the holder off the queue *);
  let rec shed_frame n =
    if n = 0 then Alcotest.fail "no probe connection was ever shed"
    else
      let fd = connect () in
      match recv_frame ~timeout:2.0 fd with
      | Some frame -> frame
      | None -> shed_frame (n - 1) (* parked in the queue; leave it there *)
  in
  match shed_frame 4 with
  | Protocol.Error_frame { exit_code; kind; message; _ } as frame ->
      Alcotest.(check int) "shed exits 75 (EX_TEMPFAIL)" Protocol.exit_overloaded
        exit_code;
      Alcotest.(check bool) "with the overloaded kind" true
        (kind = Protocol.Overloaded);
      Alcotest.(check bool) "naming the condition" true
        (String.length message >= 10 && String.sub message 0 10 = "overloaded");
      (* the shed frame is the one reply a client may retry after *)
      Alcotest.(check bool) "and it is the retryable reply" true
        (Client.retryable_response frame)
  | _ -> Alcotest.fail "expected the overloaded error frame"

(* ---- the I/O deadline --------------------------------------------------------- *)

let test_slow_loris_disconnected () =
  with_server ~tag:"loris" ~request_timeout:0.3 @@ fun socket ->
  let fd = raw_connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* drip bytes slower than any per-read timer would notice: the
     deadline is absolute, so the drip must still be cut *)
  for _ = 1 to 4 do
    ignore (Unix.write_substring fd "{" 0 1);
    Unix.sleepf 0.1
  done;
  (match raw_frame_exn fd with
  | Protocol.Error_frame { exit_code; kind; _ } ->
      Alcotest.(check int) "deadline exits 4" Protocol.exit_io_timeout exit_code;
      Alcotest.(check bool) "with the timeout kind" true (kind = Protocol.Timeout)
  | _ -> Alcotest.fail "expected the deadline error frame");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "cut near the 0.3s deadline (%.2fs elapsed)" elapsed)
    true
    (elapsed < 3.0);
  (* the cut is a disconnect, not a lingering half-open connection *)
  Alcotest.(check bool) "connection is closed after the frame" true
    (match Unix.select [ fd ] [] [] 10.0 with
    | [ _ ], _, _ -> (
        match Unix.read fd (Bytes.create 1) 0 1 with
        | 0 -> true (* EOF *)
        | _ -> false
        | exception Unix.Unix_error _ -> true)
    | _ -> false)

(* ---- protocol version skew ---------------------------------------------------- *)

let test_version_mismatch_is_structured () =
  with_server ~tag:"version" @@ fun socket ->
  match Client.connect ~socket with
  | Error msg -> Alcotest.failf "connect: %s" msg
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c)
      @@ fun () ->
      Client.send_line c {|{"v":99,"id":5,"cmd":"ping","files":[],"opts":{}}|};
      (match Client.read_response c with
      | Ok (Protocol.Error_frame { id; exit_code; kind; message }) ->
          Alcotest.(check int) "echoes the id" 5 id;
          Alcotest.(check int) "exits 2" 2 exit_code;
          Alcotest.(check bool) "with the version_mismatch kind" true
            (kind = Protocol.Version_mismatch);
          let contains needle =
            let n = String.length needle and h = String.length message in
            let rec go i = i + n <= h && (String.sub message i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "naming the client's version" true (contains "v99");
          Alcotest.(check bool) "and the daemon's" true
            (contains (Printf.sprintf "v%d" Protocol.version))
      | _ -> Alcotest.fail "expected a version_mismatch error frame");
      (* skew on one request does not poison the connection *)
      Client.send_request c (mk_req Protocol.Ping []);
      (match Client.read_response c with
      | Ok (Protocol.Result { out; _ }) ->
          Alcotest.(check string) "same connection still answers" "kpt-serve: alive\n"
            out
      | _ -> Alcotest.fail "expected a ping result after the mismatch")

(* ---- a client vanishing mid-request ------------------------------------------- *)

let test_mid_request_disconnect_recovers () =
  let sources =
    [ ("examples/specs/transmit.unity", read_file "../examples/specs/transmit.unity") ]
  in
  with_server ~tag:"vanish" ~jobs:1 @@ fun socket ->
  (* ship a complete request, then vanish before the reply: the single
     worker meets EPIPE mid-reply and must recycle, not die *)
  let fd = raw_connect socket in
  let line = Json.to_string (Protocol.request_to_json (mk_req Protocol.Check sources)) in
  Protocol.write_line fd line;
  Unix.close fd;
  (* the only worker is (or was) busy with the orphan; this answer
     proves it came back for the next connection *)
  let r = result_exn (Client.roundtrip ~socket (mk_req Protocol.Ping [])) in
  Alcotest.(check string) "daemon serves after the disconnect" "kpt-serve: alive\n"
    r.out

(* ---- short writes ------------------------------------------------------------- *)

let test_write_all_survives_short_writes () =
  (* a payload far beyond any socket buffer, a writer squeezed into a
     tiny SO_SNDBUF, and a reader that drains slowly: write_all must
     take many short writes to get it through, byte-for-byte *)
  let payload = String.init 1_000_000 (fun i -> Char.chr (i mod 251)) in
  let rfd, wfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int wfd Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let writer =
    Domain.spawn (fun () ->
        Protocol.write_all wfd payload;
        Unix.close wfd)
  in
  let buf = Bytes.create 8192 in
  let received = Buffer.create (String.length payload) in
  let rec drain () =
    match Unix.read rfd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes received buf 0 n;
        (* stay slower than the writer so its buffer keeps filling *)
        if Buffer.length received mod 3 = 0 then Unix.sleepf 0.0005;
        drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  Domain.join writer;
  Unix.close rfd;
  Alcotest.(check int) "every byte arrived" (String.length payload)
    (Buffer.length received);
  Alcotest.(check bool) "in order" true (Buffer.contents received = payload)

(* ---- request-level parallelism ------------------------------------------------ *)

let test_jobs4_concurrent_byte_identity () =
  let specs =
    match corpus () with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | _ -> Alcotest.fail "corpus too small"
  in
  let direct =
    List.map (fun s -> Driver.check Driver.default_options [ s ]) specs
  in
  with_server ~tag:"jobs4" ~jobs:4 @@ fun socket ->
  (* four distinct requests in flight at once, one per worker domain:
     each must come back with exactly the direct driver's bytes *)
  let fetchers =
    List.map
      (fun s ->
        Domain.spawn (fun () ->
            Client.roundtrip ~socket (mk_req Protocol.Check [ s ])))
      specs
  in
  List.iteri
    (fun i (d : Driver.outcome) ->
      let r = result_exn (Domain.join (List.nth fetchers i)) in
      let name = Printf.sprintf "spec %d" i in
      Alcotest.(check int) (name ^ ": exit code") d.Driver.code r.exit_code;
      Alcotest.(check string) (name ^ ": bytes") d.Driver.out r.out)
    direct

(* ---- the retry schedule ------------------------------------------------------- *)

let test_jitter_bounded_and_deterministic () =
  let base = 0.05 in
  List.iter
    (fun prev ->
      let rng = Kpt_gen.Rng.make 42L in
      for _ = 1 to 50 do
        let s = Client.decorrelated_jitter rng ~base ~prev in
        let hi = Float.min 5.0 (Float.max base (3. *. prev)) in
        Alcotest.(check bool)
          (Printf.sprintf "%.3f within [%.3f, %.3f] (prev %.3f)" s base hi prev)
          true
          (s >= base -. 1e-9 && s <= hi +. 1e-9)
      done)
    [ 0.0; 0.05; 0.2; 1.0; 10.0 ];
  (* one seed, one schedule: the replay contract behind KPT_RETRY_SEED *)
  let walk seed =
    let rng = Kpt_gen.Rng.make seed in
    let rec go prev n acc =
      if n = 0 then List.rev acc
      else
        let s = Client.decorrelated_jitter rng ~base ~prev in
        go s (n - 1) (s :: acc)
    in
    go base 10 []
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" (walk 7L) (walk 7L);
  Alcotest.(check bool) "different seed, different schedule" true
    (walk 7L <> walk 8L)

let test_retryable_is_only_the_shed () =
  let err kind =
    Protocol.Error_frame { id = 0; exit_code = 1; kind; message = "m" }
  in
  Alcotest.(check bool) "overloaded retries" true
    (Client.retryable_response (err Protocol.Overloaded));
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        ("never resent: " ^ Protocol.error_kind_to_string kind)
        false
        (Client.retryable_response (err kind)))
    [ Protocol.Generic; Protocol.Timeout; Protocol.Version_mismatch;
      Protocol.Interrupted ];
  Alcotest.(check bool) "a result is final" false
    (Client.retryable_response
       (Protocol.Result
          { id = 0; exit_code = 0; cached = false; out = ""; err = ""; daemon = [] }))

let test_retry_reaches_a_late_daemon () =
  (* the daemon binds 0.4s after the client starts knocking: with a
     retry budget the client must get through; without one it must not *)
  let socket = socket_path "lateretry" in
  if Sys.file_exists socket then Sys.remove socket;
  Unix.putenv "KPT_RETRY_SEED" "7";
  Fun.protect ~finally:(fun () -> Unix.putenv "KPT_RETRY_SEED" "")
  @@ fun () ->
  Alcotest.(check int) "no retries, no daemon: exits 2" 2
    (Client.run_cli ~socket ~serve_auto:false ~retries:0 ~backoff:0.01
       (mk_req Protocol.Ping []));
  let daemon =
    Domain.spawn (fun () ->
        Unix.sleepf 0.4;
        Server.run ~announce:false (Server.config ~socket_path:socket ~cache_size:4 ()))
  in
  let code =
    Client.run_cli ~socket ~serve_auto:false ~retries:8 ~backoff:0.15
      (mk_req Protocol.Ping [])
  in
  Alcotest.(check int) "retries carry the ping through" 0 code;
  ignore (Client.roundtrip ~socket (mk_req Protocol.Shutdown []));
  Alcotest.(check int) "daemon exits 0" 0 (Domain.join daemon)

(* ---- ping health fields ------------------------------------------------------- *)

let test_ping_health_golden () =
  let sources =
    [ ("examples/specs/transmit.unity", read_file "../examples/specs/transmit.unity") ]
  in
  with_server ~tag:"health" ~jobs:2 ~queue:8 @@ fun socket ->
  ignore (result_exn (Client.roundtrip ~socket (mk_req Protocol.Check sources)));
  let r = result_exn (Client.roundtrip ~socket (mk_req Protocol.Ping []))
  in
  (* wall-clock and machine-shape fields carry no pinnable value *)
  let volatile = [ "uptime_s"; "in_flight"; "pool_size" ] in
  let rendered =
    String.concat ""
      (List.map
         (fun (k, v) ->
           Printf.sprintf "%s %s\n" k
             (if List.mem k volatile then "-" else string_of_int v))
         r.daemon)
  in
  Alcotest.(check string) "health fields match the golden file"
    (read_file "golden/ping_health.txt") rendered

(* ---- a mini chaos sweep ------------------------------------------------------- *)

let test_chaos_mini_sweep () =
  let dir = Filename.temp_file "kpt-chaos-corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let specs =
    match corpus () with a :: b :: _ -> [ a; b ] | _ -> Alcotest.fail "corpus too small"
  in
  List.iteri
    (fun i (_, src) ->
      let oc = open_out_bin (Filename.concat dir (Printf.sprintf "spec%02d.unity" i)) in
      output_string oc src;
      close_out oc)
    specs;
  let null =
    Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
  in
  let code =
    Kpt_serve.Chaos.run null
      {
        Kpt_serve.Chaos.exe = "../bin/kpt.exe";
        dir;
        specs = 2;
        seed = 11L;
        socket = socket_path "chaosmini";
        jobs = 2;
        queue = 4;
        request_timeout = 0.5;
        faults =
          [
            Kpt_serve.Chaos.Truncate; Kpt_serve.Chaos.Garbage;
            Kpt_serve.Chaos.Partial_write; Kpt_serve.Chaos.Disconnect;
          ];
      }
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  Alcotest.(check int) "chaos sweep holds every invariant" 0 code

let suite =
  [
    Alcotest.test_case "served check is byte-identical (cold/warm/cached)" `Quick
      test_check_byte_identity;
    Alcotest.test_case "cache key is content-addressed" `Quick
      test_cache_key_content_addressed;
    Alcotest.test_case "budget exhaustion is not sticky across requests" `Quick
      test_budget_exhaustion_not_sticky;
    Alcotest.test_case "malformed request then valid on one connection" `Quick
      test_malformed_then_valid_on_same_connection;
    Alcotest.test_case "--trace streams events over the wire" `Quick
      test_trace_streams_events;
    Alcotest.test_case "stale socket is reclaimed" `Quick test_stale_socket_reclaimed;
    Alcotest.test_case "second daemon on a live socket is refused" `Quick
      test_second_daemon_refused;
    Alcotest.test_case "concurrent clients match sequential" `Quick
      test_concurrent_clients_match_sequential;
    Alcotest.test_case "overload sheds with the structured frame (exit 75)" `Quick
      test_overload_sheds_with_structured_frame;
    Alcotest.test_case "slow-loris is cut at the absolute deadline (exit 4)" `Quick
      test_slow_loris_disconnected;
    Alcotest.test_case "protocol version skew is a structured error" `Quick
      test_version_mismatch_is_structured;
    Alcotest.test_case "mid-request disconnect leaves the daemon serving" `Quick
      test_mid_request_disconnect_recovers;
    Alcotest.test_case "write_all survives short writes byte-for-byte" `Quick
      test_write_all_survives_short_writes;
    Alcotest.test_case "--serve-jobs 4 serves concurrent requests byte-identically"
      `Quick test_jobs4_concurrent_byte_identity;
    Alcotest.test_case "retry jitter is bounded and seed-deterministic" `Quick
      test_jitter_bounded_and_deterministic;
    Alcotest.test_case "only the overloaded shed is retryable" `Quick
      test_retryable_is_only_the_shed;
    Alcotest.test_case "retries reach a late-binding daemon" `Quick
      test_retry_reaches_a_late_daemon;
    Alcotest.test_case "ping health fields are pinned (golden)" `Quick
      test_ping_health_golden;
    Alcotest.test_case "mini chaos sweep against a spawned daemon" `Slow
      test_chaos_mini_sweep;
  ]
