(* Cone-of-influence slicing as a model reduction, and the read/write
   analysis granularity it rests on:

   - [kpt check --slice] is byte-identical to the unsliced run (text and
     JSON) over the spec corpus: the conservative property-less slice is
     the identity on every bundled spec;
   - token_ring_8 is fully connected — its cone keeps all 16 statements
     (pinned, so nobody "optimises" the ring expecting a reduction);
   - the monitored ring is the reduction vehicle: slicing with respect
     to the mutual-exclusion property drops every monitor statement,
     preserves the verdict, and shrinks the SI's BDD;
   - [Rw] edge cases: guard-only reads, self-assignments, and knowledge
     guards reading across the process partition;
   - the slice constructors reject empty and foreign statement lists. *)

module Slice = Kpt_analysis.Slice
module Check = Kpt_analysis.Check
module Rw = Kpt_analysis.Rw
module V = Rw.V
module Space = Kpt_predicate.Space
module Bdd = Kpt_predicate.Bdd
module Expr = Kpt_unity.Expr
module Stmt = Kpt_unity.Stmt
module Program = Kpt_unity.Program
module Process = Kpt_unity.Process
module Kbp = Kpt_core.Kbp
module Kform = Kpt_core.Kform
module Ring = Kpt_protocols.Ring

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare
  |> List.map (fun n -> ("examples/specs/" ^ n, read_file ("../examples/specs/" ^ n)))

let load path =
  Kpt_syntax.Elaborate.program
    (Kpt_syntax.Parser.program_of_string (read_file path))

let to_string render reports =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  render ppf reports;
  Format.pp_print_flush ppf ();
  Buffer.contents b

(* ---- the corpus pin: sliced solve is byte-identical --------------------------- *)

let test_check_slice_identical () =
  let sources = corpus () in
  let plain = Check.reports ~jobs:2 sources in
  let sliced = Check.reports ~jobs:2 ~slice:true sources in
  Alcotest.(check string) "check --slice text is byte-identical"
    (to_string Check.render_text plain)
    (to_string Check.render_text sliced);
  Alcotest.(check string) "check --slice JSON is byte-identical"
    (to_string Check.render_json plain)
    (to_string Check.render_json sliced)

let test_token_ring_8_fully_connected () =
  (* the done-counter guards [done < 8] make every rest statement read
     the variable every other rest statement writes: the cone of any
     seed that touches the ring is everything, and the slice keeps all
     16 statements.  Pinned so the bench vehicle stays Ring.monitored. *)
  let _, kbp = load "../examples/specs/token_ring_8.unity" in
  let sliced, info = Slice.kbp kbp in
  Alcotest.(check bool) "property-less slice is the identity" true
    (Slice.is_identity info);
  Alcotest.(check int) "all 16 statements kept" 16 (List.length info.Slice.kept);
  Alcotest.(check bool) "the identity slice returns the protocol itself" true
    (sliced == kbp)

let test_ring_mon_surface_identity () =
  (* init constrains the log, so the conservative seed contains it and
     the property-less slice keeps the monitors *)
  let _, kbp = load "../examples/analysis/ring_mon.unity" in
  let _, info = Slice.kbp kbp in
  Alcotest.(check bool) "property-less slice of ring_mon is the identity" true
    (Slice.is_identity info)

(* ---- the monitored ring: a real reduction ------------------------------------- *)

let test_monitored_ring_reduction () =
  let r = Ring.monitored ~n:6 in
  let prog = r.Ring.rprog in
  let sp = r.Ring.rspace in
  let p = Ring.mutex_ok r in
  let sliced, info = Slice.program ~wrt:[ p ] prog in
  Alcotest.(check int) "the six monitors are dropped" 6
    (List.length info.Slice.dropped);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is a monitor") true
        (String.length n >= 7 && String.sub n 0 7 = "monitor"))
    info.Slice.dropped;
  Alcotest.(check int) "the ring proper is kept" 12 (List.length info.Slice.kept);
  Alcotest.(check bool) "mutex invariant on the full program" true
    (Program.invariant prog p);
  Alcotest.(check bool) "mutex invariant on the slice" true
    (Program.invariant sliced p);
  let log_idx = Space.idx (List.nth (Space.vars sp) (List.length (Space.vars sp) - 1)) in
  Alcotest.(check bool) "the log is outside the cone" false
    (V.mem log_idx info.Slice.cone)

(* The reduction itself is about the work of the fixpoint, not the final
   SI's size (the full run saturates the log over all values, so its SI
   is log-independent, while the slice freezes log = 0 — slightly MORE
   nodes in the final predicate).  What the slice avoids is threading
   the log through every frontier image: total node allocation across
   the solve must drop.  Each side gets its own fresh manager. *)
let test_monitored_ring_fewer_nodes () =
  let allocated ~slice =
    let r = Ring.monitored ~n:8 in
    let prog = r.Ring.rprog in
    let prog =
      if slice then fst (Slice.program ~wrt:[ Ring.mutex_ok r ] prog) else prog
    in
    ignore (Program.si prog);
    (Bdd.stats (Space.manager r.Ring.rspace)).Bdd.nodes_created
  in
  let full = allocated ~slice:false in
  let sliced = allocated ~slice:true in
  Alcotest.(check bool)
    (Printf.sprintf "sliced solve allocates fewer BDD nodes (%d < %d)" sliced full)
    true (sliced < full)

let test_deadcode_slice () =
  (* ghost writes only flag, which no x-property can observe *)
  let _, kbp = load "../examples/analysis/deadcode.unity" in
  let sp = Kbp.space kbp in
  let x = List.find (fun v -> Space.name v = "x") (Space.vars sp) in
  let wrt = Expr.compile_bool sp Expr.(var x === nat 0) in
  let _, info = Slice.kbp ~wrt:[ wrt ] kbp in
  Alcotest.(check (list string)) "ghost is dropped" [ "ghost" ] info.Slice.dropped;
  Alcotest.(check (list string)) "step and never are kept" [ "step"; "never" ]
    info.Slice.kept

(* ---- Rw granularity edge cases ------------------------------------------------ *)

let test_rw_guard_only_read () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let s = Stmt.make ~name:"s" ~guard:Expr.(var x) [ (y, Expr.tru) ] in
  Alcotest.(check bool) "guard-only variables count as reads" true
    (V.mem (Space.idx x) (Rw.stmt_reads sp s));
  Alcotest.(check bool) "but not as writes" false
    (V.mem (Space.idx x) (Rw.stmt_writes s));
  let prog =
    Program.make sp ~name:"g" ~init:Expr.(not_ (var x) &&& not_ (var y)) [ s ]
  in
  Alcotest.(check bool) "the cone of y pulls in the guard variable" true
    (V.mem (Space.idx x) (Rw.program_cone prog (Rw.of_vars [ y ])))

let test_rw_self_assignment () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let s = Stmt.make ~name:"s" ~guard:Expr.(var y) [ (x, Expr.var x) ] in
  Alcotest.(check bool) "x := x writes x" true (V.mem (Space.idx x) (Rw.stmt_writes s));
  Alcotest.(check bool) "and reads it" true (V.mem (Space.idx x) (Rw.stmt_reads sp s));
  (* the self-assignment keeps the statement inside x's cone, so its
     guard variable joins the cone as well *)
  let prog =
    Program.make sp ~name:"sa" ~init:Expr.(not_ (var x) &&& not_ (var y)) [ s ]
  in
  let cone = Rw.program_cone prog (Rw.of_vars [ x ]) in
  Alcotest.(check bool) "cone of x contains y" true (V.mem (Space.idx y) cone)

let test_rw_kguard_across_partition () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let p0 = Process.make "P0" [ x ] in
  let p1 = Process.make "P1" [ y ] in
  (* the K-body reads y across the partition boundary: Rw must see the
     read even though y is not one of P0's variables *)
  let g = Kform.(k "P0" (base (Expr.var y)) &&. base (Expr.var x)) in
  Alcotest.(check bool) "kform_reads crosses the partition" true
    (V.mem (Space.idx y) (Rw.kform_reads g));
  Alcotest.(check bool) "and keeps the standard conjunct" true
    (V.mem (Space.idx x) (Rw.kform_reads g));
  let kbp =
    Kbp.make sp ~name:"xp"
      ~init:Expr.(not_ (var x) &&& not_ (var y))
      ~processes:[ p0; p1 ]
      [
        Kbp.kstmt ~name:"s0" ~guard:g [ (x, Expr.tru) ];
        Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var x)) [ (y, Expr.tru) ];
      ]
  in
  let cone = Rw.kbp_cone kbp (Rw.of_vars [ x ]) in
  Alcotest.(check bool) "the kbp cone of x contains y" true (V.mem (Space.idx y) cone);
  let _, info = Slice.kbp kbp in
  Alcotest.(check bool) "conservative slice keeps everything" true
    (Slice.is_identity info)

(* ---- constructor error paths --------------------------------------------------- *)

let test_sub_program_rejects () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let s = Stmt.make ~name:"s" [ (x, Expr.tru) ] in
  let prog = Program.make sp ~name:"p" ~init:Expr.(not_ (var x)) [ s ] in
  (try
     ignore (Program.sub_program prog []);
     Alcotest.fail "empty slice must be rejected"
   with Program.Ill_formed _ -> ());
  let foreign = Stmt.make ~name:"t" [ (x, Expr.fls) ] in
  (try
     ignore (Program.sub_program prog [ foreign ]);
     Alcotest.fail "foreign statements must be rejected"
   with Program.Ill_formed _ -> ());
  let same = Program.sub_program ~name:"q" prog (Program.statements prog) in
  Alcotest.(check string) "renamed full slice" "q" (Program.name same);
  Alcotest.(check int) "with the same statements" 1
    (List.length (Program.statements same))

let test_kbp_sub_rejects () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let kbp =
    Kbp.make sp ~name:"k" ~init:Expr.(not_ (var x)) ~processes:[]
      [ Kbp.kstmt ~name:"s" ~guard:(Kform.base Expr.tru) [ (x, Expr.tru) ] ]
  in
  (try
     ignore (Kbp.sub kbp []);
     Alcotest.fail "empty slice must be rejected"
   with Kbp.Ill_formed _ -> ());
  let foreign = Kbp.kstmt ~name:"t" ~guard:(Kform.base Expr.tru) [ (x, Expr.fls) ] in
  (try
     ignore (Kbp.sub kbp [ foreign ]);
     Alcotest.fail "foreign statements must be rejected"
   with Kbp.Ill_formed _ -> ())

let suite =
  [
    Alcotest.test_case "check --slice byte-identical over the corpus" `Quick
      test_check_slice_identical;
    Alcotest.test_case "token_ring_8 is fully connected" `Quick
      test_token_ring_8_fully_connected;
    Alcotest.test_case "ring_mon property-less slice is the identity" `Quick
      test_ring_mon_surface_identity;
    Alcotest.test_case "monitored ring: monitors sliced away" `Quick
      test_monitored_ring_reduction;
    Alcotest.test_case "monitored ring: sliced solve allocates less" `Quick
      test_monitored_ring_fewer_nodes;
    Alcotest.test_case "deadcode: ghost is outside x's cone" `Quick test_deadcode_slice;
    Alcotest.test_case "rw: guard-only reads" `Quick test_rw_guard_only_read;
    Alcotest.test_case "rw: self-assignment x := x" `Quick test_rw_self_assignment;
    Alcotest.test_case "rw: K-guard reads across the partition" `Quick
      test_rw_kguard_across_partition;
    Alcotest.test_case "sub_program rejects bad slices" `Quick test_sub_program_rejects;
    Alcotest.test_case "Kbp.sub rejects bad slices" `Quick test_kbp_sub_rejects;
  ]
