(* Dynamic variable reordering: semantic transparency, canonicity, and
   the op-cache sizing fix.

   The contract under test is strong: a reorder may change every node's
   var/low/high fields, but no handle's denotation, and hash-consing
   keeps working afterwards (building an equal function yields the
   {e same} node).  The truth-table comparisons pin the first half, the
   physical-equality rebuilds the second. *)

open Kpt_predicate
module B = Bdd
module Expr = Kpt_unity.Expr

(* The order-sensitive workhorse: ⋀ i < n : x_i = x_{n+i}.  Linear with
   the pairs interleaved, exponential (2^n internal waist) with the
   blocks separated — so building it over separated blocks and sifting
   must shrink it, and the shrink is observable via [B.size]. *)
let mirrored m n =
  B.conj m (List.init n (fun i -> B.iff m (B.var m i) (B.var m (n + i))))

let test_manual_reorder_truth_tables () =
  let st = Helpers.rng () in
  for _case = 1 to 20 do
    let m = B.create () in
    let nvars = 8 in
    let f = Helpers.random_formula st m ~nvars ~depth:5 in
    let g = Helpers.random_formula st m ~nvars ~depth:5 in
    let before_f = Helpers.truth_table f ~nvars in
    let before_g = Helpers.truth_table g ~nvars in
    B.reorder m;
    Alcotest.(check (list int)) "f unchanged by reorder" before_f (Helpers.truth_table f ~nvars);
    Alcotest.(check (list int)) "g unchanged by reorder" before_g (Helpers.truth_table g ~nvars);
    (* canonicity survives: an operation on the reordered nodes matches
       the truth-table combine *)
    let fg = B.and_ m f g in
    Alcotest.(check (list int))
      "and after reorder"
      (List.filter (fun c -> List.mem c before_g) before_f)
      (Helpers.truth_table fg ~nvars)
  done

let test_reorder_canonicity_rebuild () =
  let m = B.create () in
  let n = 7 in
  let f = mirrored m n in
  B.reorder m;
  (* rebuilding the same function node-by-node must produce the same
     physical node — hash-consing is intact in the new order *)
  let f' = mirrored m n in
  Alcotest.(check bool) "rebuild is physically equal" true (B.equal f f');
  let g = B.not_ m (B.not_ m f) in
  Alcotest.(check bool) "double negation physically equal" true (B.equal f g)

let test_reorder_shrinks_mirrored () =
  let m = B.create () in
  let n = 9 in
  let f = mirrored m n in
  let before = B.size m f in
  B.reorder m;
  let after = B.size m f in
  Alcotest.(check bool)
    (Printf.sprintf "sifting shrinks mirrored function (%d -> %d)" before after)
    true
    (after < before);
  (* the sifted order is linear in n: a few nodes per pair (pair-group
     granularity leaves some slack over the ideal interleaving) *)
  Alcotest.(check bool) "post-reorder size is linear" true (after <= 10 * n)

let test_auto_trigger () =
  let ctx = Kpt_obs.Ctx.create () in
  Kpt_obs.Ctx.use ctx (fun () ->
      let m = B.create () in
      B.set_auto_reorder m ~threshold:2000 true;
      let f = mirrored m 11 in
      (* the build crosses the threshold; the next top-level op reorders *)
      let g = B.and_ m f (B.var m 0) in
      Alcotest.(check bool) "still correct" true
        (B.eval g (fun _ -> true) && not (B.eval g (fun i -> i = 0))));
  let runs = List.assoc_opt "bdd.reorder.runs" (Kpt_obs.Ctx.counters ctx) in
  Alcotest.(check bool) "auto reorder ran" true (match runs with Some r -> r > 0 | None -> false)

let test_quantifiers_after_reorder () =
  let st = Helpers.rng () in
  for _case = 1 to 10 do
    let m = B.create () in
    let nvars = 8 in
    let f = Helpers.random_formula st m ~nvars ~depth:5 in
    let vs = [ 1; 4; 6 ] in
    let ex_before = Helpers.truth_table (B.exists m vs f) ~nvars in
    let fa_before = Helpers.truth_table (B.forall m vs f) ~nvars in
    B.reorder m;
    Alcotest.(check (list int)) "exists after reorder" ex_before
      (Helpers.truth_table (B.exists m vs f) ~nvars);
    Alcotest.(check (list int)) "forall after reorder" fa_before
      (Helpers.truth_table (B.forall m vs f) ~nvars);
    let g = Helpers.random_formula st m ~nvars ~depth:4 in
    Alcotest.(check bool) "and_exists = exists of and" true
      (B.equal (B.and_exists m vs f g) (B.exists m vs (B.and_ m f g)))
  done

let test_rename_after_reorder () =
  let m = B.create () in
  let n = 6 in
  (* interleaved current/next convention: pair (2k, 2k+1) *)
  let f =
    B.conj m (List.init n (fun k -> B.iff m (B.var m (2 * k)) (B.var m ((2 * (n - 1 - k)) + 1))))
  in
  let nvars = 2 * n in
  B.reorder m;
  let up = B.rename m (fun b -> b + 1) (B.exists m (List.init n (fun k -> (2 * k) + 1)) f) in
  let down = B.rename m (fun b -> b - 1) up in
  Alcotest.(check bool) "to_next/to_current round-trip" true
    (B.equal down (B.exists m (List.init n (fun k -> (2 * k) + 1)) f));
  ignore nvars

let test_rename_non_monotone_fallback () =
  let m = B.create () in
  (* force a real order change, then rename with a map that is monotone
     in index space but may not be in level space — the result must
     still be the substituted function *)
  let f = mirrored m 6 in
  B.reorder m;
  let g = B.and_ m (B.var m 0) (B.not_ m (B.var m 3)) in
  let swapped = B.rename m (fun v -> match v with 0 -> 3 | 3 -> 0 | v -> v) g in
  Alcotest.(check bool) "swap rename correct" true
    (B.eval swapped (fun i -> i = 3) && not (B.eval swapped (fun i -> i = 0)));
  ignore f

let test_counting_after_reorder () =
  let st = Helpers.rng () in
  for _case = 1 to 10 do
    let m = B.create () in
    let nvars = 8 in
    let f = Helpers.random_formula st m ~nvars ~depth:5 in
    let count = List.length (Helpers.truth_table f ~nvars) in
    B.reorder m;
    Alcotest.(check int) "sat_count_exact after reorder" count
      (match Bigcount.to_int (B.sat_count_exact m ~nvars f) with Some n -> n | None -> -1);
    (* iter_sat enumerates the same set *)
    let seen = ref [] in
    B.iter_sat m ~vars:(List.init nvars Fun.id) f (fun lookup ->
        let code = ref 0 in
        for i = 0 to nvars - 1 do
          if lookup i then code := !code lor (1 lsl i)
        done;
        seen := !code :: !seen);
    Alcotest.(check (list int)) "iter_sat after reorder" (Helpers.truth_table f ~nvars)
      (List.sort compare !seen);
    if not (B.is_false f) then begin
      let asg = B.any_sat m f in
      Alcotest.(check bool) "any_sat satisfies" true
        (B.eval f (fun i -> match List.assoc_opt i asg with Some b -> b | None -> false))
    end
  done

let test_space_counting_after_reorder () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:4 in
  let y = Space.nat_var sp "y" ~max:4 in
  let z = Space.bool_var sp "z" in
  ignore z;
  let p = Expr.compile_bool sp Expr.(var x === var y) in
  let n0 = Bigcount.to_int (Space.count_states_exact sp p) in
  Space.reorder sp;
  Alcotest.(check (option int)) "count stable across reorder" n0
    (Bigcount.to_int (Space.count_states_exact sp p));
  Alcotest.(check (option int)) "count = enumeration" (Some (List.length (Space.states_of sp p)))
    n0

let test_op_cache_grow_floor () =
  (* the op-cache starts at 4096 slots and can grow at most once to the
     default 16384 cap — the grow-thrash fix *)
  let ctx = Kpt_obs.Ctx.create () in
  Kpt_obs.Ctx.use ctx (fun () ->
      let st = Helpers.rng () in
      let m = B.create () in
      for _ = 1 to 30 do
        ignore (Helpers.random_formula st m ~nvars:10 ~depth:6)
      done);
  let grows =
    match List.assoc_opt "bdd.op_cache.grows" (Kpt_obs.Ctx.counters ctx) with
    | Some g -> g
    | None -> 0
  in
  Alcotest.(check bool) (Printf.sprintf "at most one grow (saw %d)" grows) true (grows <= 1)

let test_bigcount_shift_right () =
  let open Bigcount in
  Alcotest.(check string) "2^40 >> 12" (to_string (pow2 28)) (to_string (shift_right (pow2 40) 12));
  Alcotest.(check string) "12·2^9 >> 9" "12" (to_string (shift_right (shift_left (of_int 12) 9) 9));
  Alcotest.(check string) "0 >> 5" "0" (to_string (shift_right zero 5));
  Alcotest.check_raises "odd >> 1 rejected" (Invalid_argument "Bigcount.shift_right: inexact")
    (fun () -> ignore (shift_right (of_int 3) 1))

let suite =
  [
    Alcotest.test_case "manual reorder preserves truth tables" `Quick
      test_manual_reorder_truth_tables;
    Alcotest.test_case "canonicity after reorder (rebuild)" `Quick test_reorder_canonicity_rebuild;
    Alcotest.test_case "sifting shrinks the mirrored function" `Quick test_reorder_shrinks_mirrored;
    Alcotest.test_case "auto-trigger fires and is correct" `Quick test_auto_trigger;
    Alcotest.test_case "quantifiers after reorder" `Quick test_quantifiers_after_reorder;
    Alcotest.test_case "pair rename after reorder" `Quick test_rename_after_reorder;
    Alcotest.test_case "non-monotone rename fallback" `Quick test_rename_non_monotone_fallback;
    Alcotest.test_case "counting/enumeration after reorder" `Quick test_counting_after_reorder;
    Alcotest.test_case "space counting across reorder" `Quick test_space_counting_after_reorder;
    Alcotest.test_case "op-cache grows at most once" `Quick test_op_cache_grow_floor;
    Alcotest.test_case "Bigcount.shift_right exact" `Quick test_bigcount_shift_right;
  ]
