open Kpt_predicate

let m () = Bdd.create ()

let check_tt msg expected bdd ~nvars =
  Alcotest.(check (list int)) msg expected (Helpers.truth_table bdd ~nvars)

let test_constants () =
  let m = m () in
  Alcotest.(check bool) "true is true" true (Bdd.is_true (Bdd.tru m));
  Alcotest.(check bool) "false is false" true (Bdd.is_false (Bdd.fls m));
  Alcotest.(check bool) "true <> false" false (Bdd.equal (Bdd.tru m) (Bdd.fls m))

let test_var () =
  let m = m () in
  check_tt "var 0 over 2 vars" [ 1; 3 ] (Bdd.var m 0) ~nvars:2;
  check_tt "nvar 0 over 2 vars" [ 0; 2 ] (Bdd.nvar m 0) ~nvars:2;
  Alcotest.(check bool) "var canonical" true (Bdd.equal (Bdd.var m 3) (Bdd.var m 3))

let test_and_or () =
  let m = m () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  check_tt "a and b" [ 3 ] (Bdd.and_ m a b) ~nvars:2;
  check_tt "a or b" [ 1; 2; 3 ] (Bdd.or_ m a b) ~nvars:2;
  check_tt "a xor b" [ 1; 2 ] (Bdd.xor m a b) ~nvars:2;
  check_tt "a imp b" [ 0; 2; 3 ] (Bdd.imp m a b) ~nvars:2;
  check_tt "a iff b" [ 0; 3 ] (Bdd.iff m a b) ~nvars:2

let test_not_involution () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 50 do
    let p = Helpers.random_formula st m ~nvars:6 ~depth:5 in
    Alcotest.(check bool) "not not p = p" true (Bdd.equal p (Bdd.not_ m (Bdd.not_ m p)))
  done

let test_canonicity () =
  let m = m () in
  let st = Helpers.rng () in
  (* Same truth table => same node. *)
  for _ = 1 to 100 do
    let p = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let q = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let same_tt = Helpers.truth_table p ~nvars:5 = Helpers.truth_table q ~nvars:5 in
    Alcotest.(check bool) "canonicity" same_tt (Bdd.equal p q)
  done

let test_ite () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 50 do
    let c = Helpers.random_formula st m ~nvars:4 ~depth:3 in
    let a = Helpers.random_formula st m ~nvars:4 ~depth:3 in
    let b = Helpers.random_formula st m ~nvars:4 ~depth:3 in
    let direct = Bdd.ite m c a b in
    let expanded = Bdd.or_ m (Bdd.and_ m c a) (Bdd.and_ m (Bdd.not_ m c) b) in
    Alcotest.(check bool) "ite = (c∧a)∨(¬c∧b)" true (Bdd.equal direct expanded)
  done

let test_restrict () =
  let m = m () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let p = Bdd.xor m a b in
  check_tt "restrict x0:=true" [ 0; 1 ] (Bdd.restrict m p 0 true) ~nvars:2;
  check_tt "restrict x0:=false" [ 2; 3 ] (Bdd.restrict m p 0 false) ~nvars:2

let test_quantifiers () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 40 do
    let p = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let v = Random.State.int st 5 in
    let ex = Bdd.or_ m (Bdd.restrict m p v false) (Bdd.restrict m p v true) in
    let fa = Bdd.and_ m (Bdd.restrict m p v false) (Bdd.restrict m p v true) in
    Alcotest.(check bool) "exists = or of cofactors" true
      (Bdd.equal (Bdd.exists m [ v ] p) ex);
    Alcotest.(check bool) "forall = and of cofactors" true
      (Bdd.equal (Bdd.forall m [ v ] p) fa)
  done

let test_quantifier_multi () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Helpers.random_formula st m ~nvars:6 ~depth:5 in
    let vs = [ 1; 3; 4 ] in
    let seq = List.fold_left (fun acc v -> Bdd.exists m [ v ] acc) p vs in
    Alcotest.(check bool) "multi-var exists = sequential" true
      (Bdd.equal (Bdd.exists m vs p) seq);
    let seqf = List.fold_left (fun acc v -> Bdd.forall m [ v ] acc) p vs in
    Alcotest.(check bool) "multi-var forall = sequential" true
      (Bdd.equal (Bdd.forall m vs p) seqf)
  done

let test_and_exists () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 40 do
    let a = Helpers.random_formula st m ~nvars:6 ~depth:4 in
    let b = Helpers.random_formula st m ~nvars:6 ~depth:4 in
    let vs = [ 0; 2; 5 ] in
    Alcotest.(check bool) "and_exists = exists of and" true
      (Bdd.equal (Bdd.and_exists m vs a b) (Bdd.exists m vs (Bdd.and_ m a b)))
  done

let test_rename () =
  let m = m () in
  let a = Bdd.var m 0 and b = Bdd.var m 2 in
  let p = Bdd.and_ m a (Bdd.not_ m b) in
  let q = Bdd.rename m (fun v -> v + 1) p in
  check_tt "renamed" (Helpers.truth_table (Bdd.and_ m (Bdd.var m 1) (Bdd.not_ m (Bdd.var m 3))) ~nvars:4)
    q ~nvars:4

let test_rename_roundtrip () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    (* Shift onto odd positions and back: the interleaving renaming used by
       Space.to_next/to_current. *)
    let q = Bdd.rename m (fun v -> (2 * v) + 1) p in
    let r = Bdd.rename m (fun v -> (v - 1) / 2) q in
    Alcotest.(check bool) "rename roundtrip" true (Bdd.equal p r)
  done

let test_support () =
  let m = m () in
  let p = Bdd.and_ m (Bdd.var m 1) (Bdd.or_ m (Bdd.var m 4) (Bdd.nvar m 2)) in
  Alcotest.(check (list int)) "support" [ 1; 2; 4 ] (Bdd.support m p);
  Alcotest.(check bool) "depends_on 4" true (Bdd.depends_on m p 4);
  Alcotest.(check bool) "not depends_on 3" false (Bdd.depends_on m p 3);
  (* x ∨ ¬x does not depend on x *)
  let q = Bdd.or_ m (Bdd.var m 0) (Bdd.nvar m 0) in
  Alcotest.(check bool) "tautology support empty" false (Bdd.depends_on m q 0)

let test_sat_count () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 40 do
    let p = Helpers.random_formula st m ~nvars:6 ~depth:4 in
    let expected = List.length (Helpers.truth_table p ~nvars:6) in
    Alcotest.(check int) "sat_count" expected
      (int_of_float (Bdd.sat_count m ~nvars:6 p))
  done

let test_any_sat () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 40 do
    let p = Helpers.random_formula st m ~nvars:6 ~depth:4 in
    if Bdd.is_false p then
      Alcotest.check_raises "any_sat on false" Not_found (fun () ->
          ignore (Bdd.any_sat m p))
    else begin
      let partial = Bdd.any_sat m p in
      let lookup i = match List.assoc_opt i partial with Some b -> b | None -> false in
      Alcotest.(check bool) "any_sat satisfies" true (Bdd.eval p lookup)
    end
  done

let test_iter_sat () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 20 do
    let p = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let got = ref [] in
    Bdd.iter_sat m ~vars:[ 0; 1; 2; 3; 4 ] p (fun lookup ->
        let code = ref 0 in
        for i = 0 to 4 do
          if lookup i then code := !code lor (1 lsl i)
        done;
        got := !code :: !got);
    Alcotest.(check (list int)) "iter_sat enumerates truth table"
      (Helpers.truth_table p ~nvars:5)
      (List.sort compare !got)
  done

let test_implies () =
  let m = m () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Alcotest.(check bool) "a∧b ⇒ a" true (Bdd.implies m (Bdd.and_ m a b) a);
  Alcotest.(check bool) "a ⇏ a∧b" false (Bdd.implies m a (Bdd.and_ m a b))

let test_conj_disj () =
  let m = m () in
  Alcotest.(check bool) "empty conj" true (Bdd.is_true (Bdd.conj m []));
  Alcotest.(check bool) "empty disj" true (Bdd.is_false (Bdd.disj m []));
  let vs = [ Bdd.var m 0; Bdd.var m 1; Bdd.var m 2 ] in
  check_tt "conj" [ 7 ] (Bdd.conj m vs) ~nvars:3;
  check_tt "disj" [ 1; 2; 3; 4; 5; 6; 7 ] (Bdd.disj m vs) ~nvars:3

let test_size_caches () =
  let m = m () in
  let p = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check int) "size of conjunction" 2 (Bdd.size m p);
  Bdd.clear_caches m;
  (* Nodes survive a cache clear. *)
  let q = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "hash-consing survives clear_caches" true (Bdd.equal p q)

let test_gc () =
  let m = m () in
  let st = Helpers.rng () in
  (* create garbage and two roots *)
  let root1 = Helpers.random_formula st m ~nvars:6 ~depth:5 in
  let root2 = Helpers.random_formula st m ~nvars:6 ~depth:5 in
  for _ = 1 to 50 do
    ignore (Helpers.random_formula st m ~nvars:6 ~depth:5)
  done;
  let before = Bdd.live_count m in
  let tt1 = Helpers.truth_table root1 ~nvars:6 in
  Bdd.gc m ~roots:[ root1; root2 ];
  let after = Bdd.live_count m in
  Alcotest.(check bool) "gc frees nodes" true (after <= before);
  (* roots survive semantically *)
  Alcotest.(check (list int)) "root semantics preserved" tt1
    (Helpers.truth_table root1 ~nvars:6);
  (* and stay canonical: rebuilding an identical function finds the root *)
  let rebuilt = Bdd.and_ m root1 root1 in
  Alcotest.(check bool) "root still hash-consed" true (Bdd.equal rebuilt root1);
  (* fresh structure is buildable and correct after gc *)
  let fresh = Bdd.xor m (Bdd.var m 0) (Bdd.var m 5) in
  Alcotest.(check int) "fresh node count" 3 (Bdd.size m fresh)

let test_gc_empty_roots () =
  let m = m () in
  ignore (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1));
  Bdd.gc m ~roots:[];
  Alcotest.(check int) "only leaves remain" 2 (Bdd.live_count m);
  (* the manager is still usable *)
  let p = Bdd.or_ m (Bdd.var m 2) (Bdd.nvar m 3) in
  Alcotest.(check bool) "rebuild works" false (Bdd.is_false p)

(* The packed direct-mapped op-cache overwrites slots on collision; a
   2-slot manager forces collisions on essentially every operation, so any
   stale-hit bug (a lossy slot returned for the wrong operands) shows up as
   a truth-table mismatch against a comfortably-sized manager. *)
let test_opcache_collisions () =
  let tiny = Bdd.create ~cache_size:2 () in
  let big = Bdd.create () in
  let st1 = Helpers.rng () and st2 = Helpers.rng () in
  for _ = 1 to 60 do
    let p_tiny = Helpers.random_formula st1 tiny ~nvars:6 ~depth:6 in
    let p_big = Helpers.random_formula st2 big ~nvars:6 ~depth:6 in
    Alcotest.(check (list int))
      "tiny cache agrees with default cache"
      (Helpers.truth_table p_big ~nvars:6)
      (Helpers.truth_table p_tiny ~nvars:6)
  done;
  (* ite under collisions too *)
  for _ = 1 to 30 do
    let f m st =
      let c = Helpers.random_formula st m ~nvars:5 ~depth:4 in
      let a = Helpers.random_formula st m ~nvars:5 ~depth:4 in
      let b = Helpers.random_formula st m ~nvars:5 ~depth:4 in
      Helpers.truth_table (Bdd.ite m c a b) ~nvars:5
    in
    Alcotest.(check (list int)) "ite under collisions" (f big st2) (f tiny st1)
  done

let test_opcache_clear_midstream () =
  let m = Bdd.create ~cache_size:4 () in
  let st = Helpers.rng () in
  for _ = 1 to 20 do
    let p = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let q = Helpers.random_formula st m ~nvars:5 ~depth:4 in
    let before = Bdd.and_ m p q in
    Bdd.clear_caches m;
    (* clearing the lossy cache must not change results, and hash-consing
       must still find the very same node *)
    let after = Bdd.and_ m p q in
    Alcotest.(check bool) "same node after clear_caches" true (Bdd.equal before after)
  done

let test_balanced_folds () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 40 do
    let n = 1 + Random.State.int st 9 in
    let ps = List.init n (fun _ -> Helpers.random_formula st m ~nvars:6 ~depth:3) in
    let linear_and = List.fold_left (Bdd.and_ m) (Bdd.tru m) ps in
    let linear_or = List.fold_left (Bdd.or_ m) (Bdd.fls m) ps in
    Alcotest.(check bool) "conj = linear and-fold" true
      (Bdd.equal (Bdd.conj m ps) linear_and);
    Alcotest.(check bool) "disj = linear or-fold" true
      (Bdd.equal (Bdd.disj m ps) linear_or)
  done;
  Alcotest.(check bool) "empty conj" true (Bdd.is_true (Bdd.conj m []));
  Alcotest.(check bool) "empty disj" true (Bdd.is_false (Bdd.disj m []))

let test_depends_on_support () =
  let m = m () in
  let st = Helpers.rng () in
  for _ = 1 to 60 do
    let p = Helpers.random_formula st m ~nvars:6 ~depth:5 in
    let sup = Bdd.support m p in
    for v = 0 to 6 do
      Alcotest.(check bool)
        (Printf.sprintf "depends_on %d = support membership" v)
        (List.mem v sup) (Bdd.depends_on m p v)
    done
  done

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "variables" `Quick test_var;
    Alcotest.test_case "binary operators" `Quick test_and_or;
    Alcotest.test_case "negation involution" `Quick test_not_involution;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "single-var quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "multi-var quantifiers" `Quick test_quantifier_multi;
    Alcotest.test_case "relational product" `Quick test_and_exists;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "rename roundtrip" `Quick test_rename_roundtrip;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "iter_sat" `Quick test_iter_sat;
    Alcotest.test_case "implies" `Quick test_implies;
    Alcotest.test_case "conj/disj" `Quick test_conj_disj;
    Alcotest.test_case "size and caches" `Quick test_size_caches;
    Alcotest.test_case "garbage collection" `Quick test_gc;
    Alcotest.test_case "gc with no roots" `Quick test_gc_empty_roots;
    Alcotest.test_case "op-cache under forced collisions" `Quick test_opcache_collisions;
    Alcotest.test_case "op-cache clear mid-stream" `Quick test_opcache_clear_midstream;
    Alcotest.test_case "balanced conj/disj folds" `Quick test_balanced_folds;
    Alcotest.test_case "depends_on vs support" `Quick test_depends_on_support;
  ]
