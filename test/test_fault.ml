(* Fault models, resource budgets, and the resilience matrix.

   The load-bearing properties pinned here:
   - fault-model names round-trip through [of_string]/[to_string], and
     the '+'-joined primitive spelling reaches the same models;
   - [Inject.env] grants exactly the statements a model licenses — the
     historical lossy channel is byte-for-byte the deliver+drop pair;
   - figure1 [Kbp.solve] reports [Diverged] with a {e reproducible}
     witness (same orbit, same step count, run after run);
   - figure2's strengthened init flips the solution (the paper's point:
     giving P0 a priori knowledge of [x] changes what the KBP computes);
   - each budget axis (fuel, wall clock, node ceiling) surfaces as its
     own structured [Budget.reason], and [Engine.with_budget] restores
     the previous budget on exit;
   - the matrix headline: transmit survives its own §6.3 channel (loss +
     duplication + ⊥-corruption) in every safety-side property, while
     undetectable value corruption breaks safety and the K_R discharge;
   - the pool arms [task_budget] per task: a heavy task exhausts its own
     budget without touching its sibling;
   - the batch checker degrades a budget-exhausted file to a KPT041
     report and exit code 3. *)

module Model = Kpt_fault.Model
module Inject = Kpt_fault.Inject
module Matrix = Kpt_fault.Matrix
module Budget = Kpt_predicate.Budget
module Engine = Kpt_predicate.Engine
module Space = Kpt_predicate.Space
module Bdd = Kpt_predicate.Bdd
module Expr = Kpt_unity.Expr
module Stmt = Kpt_unity.Stmt
module Kbp = Kpt_core.Kbp
module Process = Kpt_unity.Process
module Kform = Kpt_core.Kform
module Channel = Kpt_protocols.Channel
module Seqtrans = Kpt_protocols.Seqtrans
module Check = Kpt_analysis.Check
module D = Kpt_analysis.Diagnostic

(* ---- fault models ----------------------------------------------------------- *)

let test_model_roundtrip () =
  List.iter
    (fun (name, m) ->
      match Model.of_string name with
      | Ok m' ->
          Alcotest.(check bool) (name ^ " round-trips") true (Model.equal m m');
          Alcotest.(check string) (name ^ " prints itself") name (Model.to_string m)
      | Error e -> Alcotest.fail e)
    Model.named;
  (match Model.of_string "dup+loss" with
  | Ok m ->
      Alcotest.(check bool) "dup+loss is the §6.3 channel" true
        (Model.equal m Model.lossy)
  | Error e -> Alcotest.fail e);
  (match Model.of_string "dup+crash" with
  | Ok m ->
      Alcotest.(check bool) "dup+crash is crash-stop" true (Model.equal m Model.crash_stop)
  | Error e -> Alcotest.fail e);
  match Model.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_string accepted \"bogus\""

let stmt_names (e : Inject.channel_env) = List.map Stmt.name e.Inject.statements

let test_inject_shapes () =
  let env model =
    let sp = Space.create () in
    let ch = Channel.declare sp ~name:"c" (Channel.nat_codec ~max:1) in
    Channel.env sp ch ~name:"c" model
  in
  Alcotest.(check (list string))
    "lossy = the historical deliver+drop pair"
    [ "env_dlv_c"; "env_drop_c" ]
    (stmt_names (env Model.lossy));
  Alcotest.(check (list string))
    "perfect channel: a consuming deliver only" [ "env_dlv_c" ]
    (stmt_names (env Model.perfect));
  Alcotest.(check (list string))
    "value corruption adds its own statement"
    [ "env_dlv_c"; "env_drop_c"; "env_corr_c" ]
    (stmt_names (env Model.value_corrupt));
  (* crash-stop: the model owns a shared up-flag; the env declares it and
     contributes the init conjunct *)
  let e = env Model.crash_stop in
  Alcotest.(check bool) "crash model owns an up flag" true (e.Inject.up <> None);
  Alcotest.(check int) "and asserts it initially" 1 (List.length e.Inject.init)

(* ---- figure 1: divergence with a reproducible witness ----------------------- *)

let build_figure1 () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ shared ] in
  let p1 = Process.make "P1" [ shared; x ] in
  Kbp.make sp ~name:"figure1"
    ~init:Expr.(not_ (var shared) &&& not_ (var x))
    ~processes:[ p0; p1 ]
    [
      Kbp.kstmt ~name:"s0"
        ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
        [ (shared, Expr.tru) ];
      Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var shared))
        [ (x, Expr.tru); (shared, Expr.fls) ];
    ]

let test_figure1_diverges () =
  let run () =
    let kbp = build_figure1 () in
    let sp = Kbp.space kbp in
    match Kbp.solve kbp with
    | Kbp.Diverged { orbit; steps } ->
        (List.map (Format.asprintf "%a" (Space.pp_pred sp)) orbit, steps)
    | Kbp.Converged _ -> Alcotest.fail "figure1 must not converge"
    | Kbp.Budget_exhausted _ -> Alcotest.fail "no budget was set"
  in
  let o1, s1 = run () in
  let o2, s2 = run () in
  Alcotest.(check int) "cycle period 2" 2 (List.length o1);
  Alcotest.(check (list string)) "the witness is reproducible" o1 o2;
  Alcotest.(check int) "at the same step count" s1 s2

(* ---- figure 2: the strengthened init flips the solution --------------------- *)

let build_figure2 ~strong =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let z = Space.bool_var sp "z" in
  let p0 = Process.make "P0" [ y ] in
  let p1 = Process.make "P1" [ z ] in
  let init = if strong then Expr.(not_ (var y) &&& var x) else Expr.(not_ (var y)) in
  let kbp =
    Kbp.make sp ~name:"figure2" ~init ~processes:[ p0; p1 ]
      [
        Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ];
        Kbp.kstmt ~name:"s1"
          ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
          [ (z, Expr.tru) ];
      ]
  in
  (kbp, x, y)

let test_figure2_flip () =
  let states_with kbp si e =
    let sp = Kbp.space kbp in
    Space.count_states_of sp (Bdd.and_ (Space.manager sp) si (Expr.compile_bool sp e))
  in
  let solve strong =
    let kbp, x, y = build_figure2 ~strong in
    match Kbp.solutions kbp with
    | [ si ] -> (kbp, x, y, si)
    | sols -> Alcotest.failf "expected one solution, got %d" (List.length sols)
  in
  (* weak init: P0 never knows x, so s0 never fires and y stays false *)
  let kbp, x, y, si = solve false in
  Alcotest.(check int) "weak: no y=true state" 0 (states_with kbp si (Expr.var y));
  Alcotest.(check bool) "weak: x=false states survive" true
    (states_with kbp si Expr.(not_ (var x)) > 0);
  (* strong init (x asserted a priori): P0 knows x everywhere, s0 fires *)
  let kbp, x, y, si = solve true in
  Alcotest.(check int) "strong: no x=false state" 0
    (states_with kbp si Expr.(not_ (var x)));
  Alcotest.(check bool) "strong: the protocol reaches y=true" true
    (states_with kbp si (Expr.var y) > 0)

(* ---- budget axes ------------------------------------------------------------ *)

let test_budget_reasons () =
  (match
     Engine.with_budget (Budget.limits ~fuel:3 ()) (fun () ->
         for _ = 1 to 10 do
           Engine.checkpoint ~fuel:1 ()
         done)
   with
  | () -> Alcotest.fail "fuel 3 must not survive 10 checkpoints"
  | exception Budget.Exhausted (Budget.Fuel_exhausted { limit }) ->
      Alcotest.(check int) "fuel reason carries the limit" 3 limit
  | exception Budget.Exhausted r ->
      Alcotest.failf "wrong reason: %s" (Budget.reason_to_string r));
  (match
     Engine.with_budget
       (Budget.limits ~timeout_ns:1L ())
       (fun () -> Engine.checkpoint ())
   with
  | () -> Alcotest.fail "a 1ns deadline must already be past"
  | exception Budget.Exhausted (Budget.Timeout _) -> ()
  | exception Budget.Exhausted r ->
      Alcotest.failf "wrong reason: %s" (Budget.reason_to_string r));
  (match
     Engine.with_budget
       (Budget.limits ~max_nodes:1000 ())
       (fun () ->
         let st = Seqtrans.standard { Seqtrans.n = 2; a = 2 } in
         ignore (Kpt_unity.Program.invariant st.Seqtrans.sprog (Seqtrans.spec_safety st)))
   with
  | () -> Alcotest.fail "checking transmit allocates far more than 1000 nodes"
  | exception Budget.Exhausted (Budget.Node_ceiling { limit; nodes }) ->
      Alcotest.(check int) "node reason carries the ceiling" 1000 limit;
      Alcotest.(check bool) "and the observed count" true (nodes > limit)
  | exception Budget.Exhausted r ->
      Alcotest.failf "wrong reason: %s" (Budget.reason_to_string r));
  match Budget.timeout_of_seconds 0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "timeout_of_seconds must reject 0"

let test_budget_restore () =
  Engine.with_budget (Budget.limits ~fuel:100 ()) (fun () ->
      (try
         Engine.with_budget (Budget.limits ~fuel:1 ()) (fun () ->
             Engine.checkpoint ~fuel:1 ();
             Engine.checkpoint ~fuel:1 ())
       with Budget.Exhausted _ -> ());
      (* the outer budget is back in force: its 100 units are intact *)
      for _ = 1 to 50 do
        Engine.checkpoint ~fuel:1 ()
      done);
  Alcotest.(check bool) "no budget left armed after with_budget" true
    (Engine.budget (Engine.current ()) = None)

(* ---- the matrix headline ---------------------------------------------------- *)

let test_matrix_headline () =
  let transmit =
    List.find
      (fun (s : Matrix.subject) -> s.Matrix.subject = "transmit")
      Kpt_analysis.Resilience.subjects
  in
  let faults = [ ("lossy", Model.lossy); ("value-corrupt", Model.value_corrupt) ] in
  let m = Matrix.run ~faults [ transmit ] in
  let v ~fault ~prop =
    match Matrix.find m ~subject:"transmit" ~fault ~prop with
    | Some c -> Matrix.verdict_to_string c.Matrix.verdict
    | None -> "missing"
  in
  Alcotest.(check string) "safety survives the §6.3 channel" "holds"
    (v ~fault:"lossy" ~prop:"safety (34)");
  Alcotest.(check string) "the K_R discharge survives ⊥-corruption" "holds"
    (v ~fault:"lossy" ~prop:"K_R discharge (61)");
  Alcotest.(check string) "value corruption breaks safety" "breaks"
    (v ~fault:"value-corrupt" ~prop:"safety (34)");
  Alcotest.(check string) "value corruption breaks the discharge" "breaks"
    (v ~fault:"value-corrupt" ~prop:"K_R discharge (61)");
  Alcotest.(check (list string))
    "broken_by names exactly the new casualties"
    [ "safety (34)"; "K_R discharge (61)" ]
    (Matrix.broken_by m ~subject:"transmit" ~fault:"value-corrupt" ~baseline:"lossy")

(* ---- per-task budgets on the pool ------------------------------------------- *)

let test_par_task_budget () =
  let results =
    Kpt_par.try_map ~jobs:2
      ~task_budget:(Budget.limits ~fuel:5 ())
      (fun heavy ->
        if heavy then
          for _ = 1 to 100 do
            Engine.checkpoint ~fuel:1 ()
          done;
        "done")
      [ true; false ]
  in
  match results with
  | [ Error (Budget.Exhausted (Budget.Fuel_exhausted _)); Ok "done" ] -> ()
  | _ -> Alcotest.fail "the heavy task alone must exhaust its own budget"

(* ---- the batch checker degrades gracefully ---------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_check_budget () =
  let src = read_file "../examples/specs/transmit.unity" in
  let sources = [ ("examples/specs/transmit.unity", src) ] in
  let budget = Budget.limits ~fuel:1 () in
  (match Check.reports ~jobs:1 ~budget sources with
  | [ r ] ->
      Alcotest.(check bool) "the report fails" true (Check.failed r);
      Alcotest.(check bool) "with a KPT041 diagnostic" true
        (List.exists (fun (d : D.t) -> d.D.code = "KPT041") r.diags);
      let b = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer b in
      Check.render_text ppf [ r ];
      Format.pp_print_flush ppf ();
      let txt = Buffer.contents b in
      let contains s =
        let n = String.length s in
        let rec go i = i + n <= String.length txt && (String.sub txt i n = s || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "the summary says so" true (contains "budget exhausted")
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  let null = Format.make_formatter (fun _ _ _ -> ()) ignore in
  Alcotest.(check int) "exit code 3, the documented resource code" 3
    (Check.run_sources ~jobs:1 ~budget ~quiet:true null sources);
  Alcotest.(check int) "unbudgeted, the same file is fine" 0
    (Check.run_sources ~jobs:1 ~quiet:true null sources)

let suite =
  [
    Alcotest.test_case "fault-model names round-trip" `Quick test_model_roundtrip;
    Alcotest.test_case "inject grants exactly the licensed statements" `Quick
      test_inject_shapes;
    Alcotest.test_case "figure1 diverges with a reproducible witness" `Quick
      test_figure1_diverges;
    Alcotest.test_case "figure2's strengthened init flips the solution" `Quick
      test_figure2_flip;
    Alcotest.test_case "each budget axis has its own reason" `Quick test_budget_reasons;
    Alcotest.test_case "with_budget restores the previous budget" `Quick
      test_budget_restore;
    Alcotest.test_case "matrix headline: §6.3 survives, value corruption breaks"
      `Slow test_matrix_headline;
    Alcotest.test_case "the pool arms budgets per task" `Quick test_par_task_budget;
    Alcotest.test_case "kpt check degrades budget exhaustion to KPT041" `Quick
      test_check_budget;
  ]
