(* The differential/metamorphic harness ([Kpt_analysis.Difftest]):
   agreement on a known-good spec with the advertised comparison count,
   detection of an envelope mismatch and of a lying extra path, greedy
   shrinking to a minimal reproducer, the verdict classifier, the
   log-log fit, and the CORPUS_RESULTS.json document shape. *)

module Difftest = Kpt_analysis.Difftest
module Gen = Kpt_gen.Gen
module Rng = Kpt_gen.Rng

let seed = 0xD1FFL

(* A three-statement program whose solve is instant: plenty of structure
   for permutation/rename/slice to chew on. *)
let source =
  "program tiny\n\
   var a, b, c : bool\n\
   init ~a /\\ ~b /\\ ~c\n\
   assign\n\
  \  s1: a := true\n\
   | s2: b := a if a\n\
   | s3: c := b if b\n"

let run ?extra_paths ?expected () =
  Difftest.run_spec ?extra_paths ?expected ~seed ~limits:Difftest.envelope_limits
    ~file:"tiny.unity" ~source ()

let test_agreement_and_count () =
  let r = run () in
  Alcotest.(check (list string)) "no disagreements" []
    (List.map (fun d -> d.Difftest.d_check) r.Difftest.r_disagreements);
  (* 2 builtin byte pairs + slice + rename + permute = 5; no envelope,
     no extra paths *)
  Alcotest.(check int) "comparison count" 5 r.Difftest.r_comparisons;
  Alcotest.(check string) "verdict class" "standard" r.Difftest.r_verdict.Difftest.klass

let test_envelope_comparison () =
  let good = Difftest.check_verdict ~limits:Difftest.envelope_limits ~file:"tiny.unity" source in
  let r = run ~expected:good () in
  Alcotest.(check int) "envelope adds one comparison" 6 r.Difftest.r_comparisons;
  Alcotest.(check int) "matching envelope is clean" 0
    (List.length r.Difftest.r_disagreements);
  let wrong = { good with Difftest.klass = "kbp_cycle"; exit_code = 1 } in
  let r = run ~expected:wrong () in
  match
    List.find_opt (fun d -> d.Difftest.d_check = "envelope") r.Difftest.r_disagreements
  with
  | None -> Alcotest.fail "wrong envelope not flagged"
  | Some d ->
      Alcotest.(check bool) "detail names both sides" true
        (String.length d.Difftest.d_detail > 0)

let test_lying_path_is_caught_and_shrunk () =
  (* a path that deliberately corrupts its stdout must produce exactly
     one byte disagreement, named after the path, with a shrunk source *)
  let liar =
    {
      Difftest.path_name = "liar";
      run =
        (fun ~limits ~file ~source ->
          let o = Difftest.base_path.Difftest.run ~limits ~file ~source in
          { o with Kpt_analysis.Driver.out = o.Kpt_analysis.Driver.out ^ "extra\n" });
    }
  in
  let r = run ~extra_paths:[ liar ] () in
  let ds =
    List.filter
      (fun d -> d.Difftest.d_check = "path:check-j1-vs-liar")
      r.Difftest.r_disagreements
  in
  Alcotest.(check int) "exactly one disagreement, on the liar" 1 (List.length ds);
  Alcotest.(check int) "honest paths stay clean"
    (List.length r.Difftest.r_disagreements)
    (List.length ds);
  match (List.hd ds).Difftest.d_shrunk with
  | None -> Alcotest.fail "liar disagreement was not shrunk"
  | Some shrunk ->
      (* the liar lies on everything, so the shrinker bottoms out at a
         single statement *)
      let ast = Kpt_syntax.Parser.program_of_string shrunk in
      Alcotest.(check int) "shrunk to one statement" 1
        (List.length ast.Kpt_syntax.Ast.p_stmts)

let test_shrink_minimises () =
  (* badness = "mentions s2"; the minimum is the program with s2 alone *)
  let still_bad src =
    match Kpt_syntax.Parser.program_of_string src with
    | exception _ -> false
    | ast ->
        List.exists
          (fun s -> s.Kpt_syntax.Ast.s_name = Some "s2")
          ast.Kpt_syntax.Ast.p_stmts
  in
  match Difftest.shrink ~still_bad source with
  | None -> Alcotest.fail "shrink returned None on a parseable source"
  | Some shrunk ->
      let ast = Kpt_syntax.Parser.program_of_string shrunk in
      Alcotest.(check (list string)) "only the culprit statement remains" [ "s2" ]
        (List.filter_map (fun s -> s.Kpt_syntax.Ast.s_name) ast.Kpt_syntax.Ast.p_stmts);
      Alcotest.(check (option string)) "unparseable input is refused" None
        (Difftest.shrink ~still_bad "not a program")

let test_verdict_classes () =
  let v = Difftest.check_verdict ~limits:Difftest.envelope_limits ~file:"t.unity" source in
  Alcotest.(check string) "clean spec is standard" "standard" v.Difftest.klass;
  Alcotest.(check bool) "clean spec passed" false v.Difftest.failed;
  let tight = Kpt_predicate.Budget.limits ~fuel:1 () in
  let v = Difftest.check_verdict ~limits:tight ~file:"t.unity" source in
  Alcotest.(check string) "fuel 1 is exhausted" "exhausted" v.Difftest.klass;
  Alcotest.(check int) "exhausted exit code" 3 v.Difftest.exit_code;
  let v =
    Difftest.check_verdict ~limits:Difftest.envelope_limits ~file:"t.unity"
      "program broken\nvar x : bool\ninit x\nassign\n  s: y := true"
  in
  Alcotest.(check string) "undeclared variable is error class" "error" v.Difftest.klass;
  Alcotest.(check bool) "error class failed" true v.Difftest.failed

let test_loglog_slope () =
  (* ns = size^2 exactly → slope 2 *)
  let rows = [ (1, 100L); (2, 400L); (4, 1600L) ] in
  (match Difftest.loglog_slope rows with
  | None -> Alcotest.fail "slope missing on 3 distinct sizes"
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "quadratic fit (got %f)" s)
        true
        (Float.abs (s -. 2.0) < 1e-6));
  Alcotest.(check bool) "one distinct size has no slope" true
    (Option.is_none (Difftest.loglog_slope [ (3, 100L); (3, 200L) ]))

let mem k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "report is missing %S" k

let as_int k j =
  match Json.to_int (mem k j) with
  | Some n -> n
  | None -> Alcotest.failf "report field %S is not an int" k

let test_report_json_shape () =
  let r = run () in
  let obs family size =
    {
      Difftest.o_family = family;
      o_size = size;
      o_fault = "none";
      o_budget = "none";
      o_ns = Int64.of_int (100 * size * size);
      o_result = r;
    }
  in
  let j =
    Difftest.report_json ~seed:"0x1" ~paths:(Difftest.path_names ~extra_paths:[])
      [ obs "ring" 1; obs "ring" 2; obs "relay" 2 ]
  in
  (* survives serialisation *)
  let j = Json.of_string (Json.to_string j) in
  let corpus = mem "corpus" j and diff = mem "difftest" j in
  Alcotest.(check int) "corpus.specs" 3 (as_int "specs" corpus);
  Alcotest.(check int) "difftest.disagreements" 0 (as_int "disagreements" diff);
  Alcotest.(check int) "difftest.comparisons" 15 (as_int "comparisons" diff);
  Alcotest.(check int) "all six checks listed" 6
    (List.length (Option.value ~default:[] (Json.to_list (mem "paths" diff))));
  (match mem "pass_rate" diff with
  | Json.Float f -> Alcotest.(check bool) "pass rate is 1" true (f = 1.0)
  | Json.Int 1 -> ()
  | _ -> Alcotest.fail "pass_rate missing");
  Alcotest.(check int) "outcome tally" 3 (as_int "standard" (mem "outcomes" j));
  Alcotest.(check int) "no budgeted runs" 0 (as_int "budgeted_runs" (mem "budget" j));
  (* per-family fits exist for the multi-size family only *)
  let fits = Option.value ~default:[] (Json.to_list (mem "fits" j)) in
  let fams =
    List.filter_map (fun f -> Json.to_str (mem "family" f)) fits |> List.sort compare
  in
  Alcotest.(check (list string)) "fit for the multi-size family" [ "ring" ] fams

let suite =
  [
    Alcotest.test_case "all paths agree on a clean spec" `Quick test_agreement_and_count;
    Alcotest.test_case "envelope differential detects a wrong manifest" `Quick
      test_envelope_comparison;
    Alcotest.test_case "a lying path is caught and shrunk" `Quick
      test_lying_path_is_caught_and_shrunk;
    Alcotest.test_case "shrink finds the minimal reproducer" `Quick test_shrink_minimises;
    Alcotest.test_case "verdict classifier: standard / exhausted / error" `Quick
      test_verdict_classes;
    Alcotest.test_case "log-log slope fit" `Quick test_loglog_slope;
    Alcotest.test_case "CORPUS_RESULTS.json shape" `Quick test_report_json_shape;
  ]
