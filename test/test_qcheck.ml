(* Property-based suites (QCheck, registered through QCheck_alcotest).

   Generators produce *syntax* — Boolean formula trees, well-typed UNITY
   expressions, whole random programs — and properties check the semantic
   laws of the paper on the compiled objects.  Everything here complements
   the example-based suites with randomised coverage and shrinking. *)

open Kpt_predicate
open Kpt_unity

(* ---- generator: Boolean formulas over n variables ----------------------- *)

type formula =
  | FVar of int
  | FTrue
  | FFalse
  | FNot of formula
  | FAnd of formula * formula
  | FOr of formula * formula
  | FImp of formula * formula
  | FIff of formula * formula

let rec pp_formula fmt = function
  | FVar i -> Format.fprintf fmt "v%d" i
  | FTrue -> Format.fprintf fmt "T"
  | FFalse -> Format.fprintf fmt "F"
  | FNot f -> Format.fprintf fmt "¬%a" pp_formula f
  | FAnd (a, b) -> Format.fprintf fmt "(%a∧%a)" pp_formula a pp_formula b
  | FOr (a, b) -> Format.fprintf fmt "(%a∨%a)" pp_formula a pp_formula b
  | FImp (a, b) -> Format.fprintf fmt "(%a⇒%a)" pp_formula a pp_formula b
  | FIff (a, b) -> Format.fprintf fmt "(%a≡%a)" pp_formula a pp_formula b

let formula_gen ~nvars =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            if size <= 1 then
              oneof
                [ map (fun i -> FVar i) (int_bound (nvars - 1)); return FTrue; return FFalse ]
            else
              let sub = self (size / 2) in
              oneof
                [
                  map (fun f -> FNot f) (self (size - 1));
                  map2 (fun a b -> FAnd (a, b)) sub sub;
                  map2 (fun a b -> FOr (a, b)) sub sub;
                  map2 (fun a b -> FImp (a, b)) sub sub;
                  map2 (fun a b -> FIff (a, b)) sub sub;
                ])
          (min size 24)))

let rec shrink_formula f =
  let open QCheck.Iter in
  match f with
  | FVar _ | FTrue | FFalse -> empty
  | FNot a -> return a <+> (shrink_formula a >|= fun a -> FNot a)
  | FAnd (a, b) | FOr (a, b) | FImp (a, b) | FIff (a, b) ->
      return a <+> return b
      <+> (shrink_formula a >|= fun a' -> rebuild f a' b)
      <+> (shrink_formula b >|= fun b' -> rebuild f a b')

and rebuild f a b =
  match f with
  | FAnd _ -> FAnd (a, b)
  | FOr _ -> FOr (a, b)
  | FImp _ -> FImp (a, b)
  | FIff _ -> FIff (a, b)
  | _ -> assert false

let arbitrary_formula ~nvars =
  QCheck.make
    ~print:(Format.asprintf "%a" pp_formula)
    ~shrink:shrink_formula (formula_gen ~nvars)

let rec to_bdd ?(remap = fun i -> i) m = function
  | FVar i -> Bdd.var m (remap i)
  | FTrue -> Bdd.tru m
  | FFalse -> Bdd.fls m
  | FNot f -> Bdd.not_ m (to_bdd ~remap m f)
  | FAnd (a, b) -> Bdd.and_ m (to_bdd ~remap m a) (to_bdd ~remap m b)
  | FOr (a, b) -> Bdd.or_ m (to_bdd ~remap m a) (to_bdd ~remap m b)
  | FImp (a, b) -> Bdd.imp m (to_bdd ~remap m a) (to_bdd ~remap m b)
  | FIff (a, b) -> Bdd.iff m (to_bdd ~remap m a) (to_bdd ~remap m b)

let rec eval_formula env = function
  | FVar i -> env i
  | FTrue -> true
  | FFalse -> false
  | FNot f -> not (eval_formula env f)
  | FAnd (a, b) -> eval_formula env a && eval_formula env b
  | FOr (a, b) -> eval_formula env a || eval_formula env b
  | FImp (a, b) -> (not (eval_formula env a)) || eval_formula env b
  | FIff (a, b) -> eval_formula env a = eval_formula env b

let nvars = 5

(* BDD compilation is exact: agree with direct evaluation on every point *)
let prop_bdd_sound =
  QCheck.Test.make ~count:300 ~name:"bdd: compile = evaluate" (arbitrary_formula ~nvars)
    (fun f ->
      let m = Bdd.create () in
      let b = to_bdd m f in
      let ok = ref true in
      for code = 0 to (1 lsl nvars) - 1 do
        let env i = (code lsr i) land 1 = 1 in
        if Bdd.eval b env <> eval_formula env f then ok := false
      done;
      !ok)

let prop_bdd_canonical =
  QCheck.Test.make ~count:200 ~name:"bdd: semantic equality = physical equality"
    (QCheck.pair (arbitrary_formula ~nvars) (arbitrary_formula ~nvars)) (fun (f, g) ->
      let m = Bdd.create () in
      let bf = to_bdd m f and bg = to_bdd m g in
      let same_sem = ref true in
      for code = 0 to (1 lsl nvars) - 1 do
        let env i = (code lsr i) land 1 = 1 in
        if Bdd.eval bf env <> Bdd.eval bg env then same_sem := false
      done;
      Bdd.equal bf bg = !same_sem)

let prop_bdd_quantifier_duality =
  QCheck.Test.make ~count:200 ~name:"bdd: ∀ = ¬∃¬" (arbitrary_formula ~nvars) (fun f ->
      let m = Bdd.create () in
      let b = to_bdd m f in
      let vs = [ 0; 2; 4 ] in
      Bdd.equal (Bdd.forall m vs b) (Bdd.not_ m (Bdd.exists m vs (Bdd.not_ m b))))

let prop_bdd_sat_count =
  QCheck.Test.make ~count:200 ~name:"bdd: sat_count = brute force" (arbitrary_formula ~nvars)
    (fun f ->
      let m = Bdd.create () in
      let b = to_bdd m f in
      let brute = ref 0 in
      for code = 0 to (1 lsl nvars) - 1 do
        let env i = (code lsr i) land 1 = 1 in
        if Bdd.eval b env then incr brute
      done;
      int_of_float (Bdd.sat_count m ~nvars b) = !brute)

let prop_bdd_relational_product =
  QCheck.Test.make ~count:150 ~name:"bdd: and_exists = exists ∘ and"
    (QCheck.pair (arbitrary_formula ~nvars) (arbitrary_formula ~nvars)) (fun (f, g) ->
      let m = Bdd.create () in
      let bf = to_bdd m f and bg = to_bdd m g in
      let vs = [ 1; 3 ] in
      Bdd.equal (Bdd.and_exists m vs bf bg) (Bdd.exists m vs (Bdd.and_ m bf bg)))

(* ---- generator: well-typed UNITY expressions ----------------------------- *)

(* A fixed test space: two bounded nats and two booleans. *)
let expr_space () =
  let sp = Space.create () in
  let n1 = Space.nat_var sp "n1" ~max:6 in
  let n2 = Space.nat_var sp "n2" ~max:6 in
  let b1 = Space.bool_var sp "b1" in
  let b2 = Space.bool_var sp "b2" in
  (sp, n1, n2, b1, b2)

(* Expressions are generated as closed syntax trees over variable INDICES
   so they can be printed/shrunk without carrying the space around. *)
type exprsyn =
  | ENat of int
  | ENVar of bool (* which nat var *)
  | EBool of bool
  | EBVar of bool (* which bool var *)
  | EAdd of exprsyn * exprsyn
  | ESub of exprsyn * exprsyn
  | ENot of exprsyn
  | EAnd of exprsyn * exprsyn
  | EOr of exprsyn * exprsyn
  | EEq of exprsyn * exprsyn  (* nat = nat *)
  | ELt of exprsyn * exprsyn
  | EIte of exprsyn * exprsyn * exprsyn (* bool ? nat : nat *)

let rec pp_exprsyn fmt = function
  | ENat k -> Format.fprintf fmt "%d" k
  | ENVar w -> Format.fprintf fmt "n%d" (if w then 2 else 1)
  | EBool b -> Format.pp_print_bool fmt b
  | EBVar w -> Format.fprintf fmt "b%d" (if w then 2 else 1)
  | EAdd (a, b) -> Format.fprintf fmt "(%a+%a)" pp_exprsyn a pp_exprsyn b
  | ESub (a, b) -> Format.fprintf fmt "(%a∸%a)" pp_exprsyn a pp_exprsyn b
  | ENot a -> Format.fprintf fmt "¬%a" pp_exprsyn a
  | EAnd (a, b) -> Format.fprintf fmt "(%a∧%a)" pp_exprsyn a pp_exprsyn b
  | EOr (a, b) -> Format.fprintf fmt "(%a∨%a)" pp_exprsyn a pp_exprsyn b
  | EEq (a, b) -> Format.fprintf fmt "(%a=%a)" pp_exprsyn a pp_exprsyn b
  | ELt (a, b) -> Format.fprintf fmt "(%a<%a)" pp_exprsyn a pp_exprsyn b
  | EIte (c, a, b) -> Format.fprintf fmt "(%a?%a:%a)" pp_exprsyn c pp_exprsyn a pp_exprsyn b

let nat_gen, bool_gen =
  let open QCheck.Gen in
  let rec nat size =
    if size <= 1 then oneof [ map (fun k -> ENat k) (int_bound 6); map (fun w -> ENVar w) bool ]
    else
      let sub = nat (size / 2) in
      oneof
        [
          map2 (fun a b -> EAdd (a, b)) sub sub;
          map2 (fun a b -> ESub (a, b)) sub sub;
          map3 (fun c a b -> EIte (c, a, b)) (boolg (size / 2)) sub sub;
        ]
  and boolg size =
    if size <= 1 then oneof [ map (fun b -> EBool b) bool; map (fun w -> EBVar w) bool ]
    else
      let sub = boolg (size / 2) in
      let nsub = nat (size / 2) in
      oneof
        [
          map (fun a -> ENot a) (boolg (size - 1));
          map2 (fun a b -> EAnd (a, b)) sub sub;
          map2 (fun a b -> EOr (a, b)) sub sub;
          map2 (fun a b -> EEq (a, b)) nsub nsub;
          map2 (fun a b -> ELt (a, b)) nsub nsub;
        ]
  in
  (sized (fun s -> nat (min s 16)), sized (fun s -> boolg (min s 16)))

let rec to_expr ~n1 ~n2 ~b1 ~b2 = function
  | ENat k -> Expr.nat k
  | ENVar w -> Expr.var (if w then n2 else n1)
  | EBool b -> if b then Expr.tru else Expr.fls
  | EBVar w -> Expr.var (if w then b2 else b1)
  | EAdd (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a +! to_expr ~n1 ~n2 ~b1 ~b2 b)
  | ESub (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a -! to_expr ~n1 ~n2 ~b1 ~b2 b)
  | ENot a -> Expr.not_ (to_expr ~n1 ~n2 ~b1 ~b2 a)
  | EAnd (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a &&& to_expr ~n1 ~n2 ~b1 ~b2 b)
  | EOr (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a ||| to_expr ~n1 ~n2 ~b1 ~b2 b)
  | EEq (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a === to_expr ~n1 ~n2 ~b1 ~b2 b)
  | ELt (a, b) -> Expr.(to_expr ~n1 ~n2 ~b1 ~b2 a <<< to_expr ~n1 ~n2 ~b1 ~b2 b)
  | EIte (c, a, b) ->
      Expr.Ite
        (to_expr ~n1 ~n2 ~b1 ~b2 c, to_expr ~n1 ~n2 ~b1 ~b2 a, to_expr ~n1 ~n2 ~b1 ~b2 b)

let arbitrary_bool_expr = QCheck.make ~print:(Format.asprintf "%a" pp_exprsyn) bool_gen
let arbitrary_nat_expr = QCheck.make ~print:(Format.asprintf "%a" pp_exprsyn) nat_gen

let prop_expr_compile_agrees =
  QCheck.Test.make ~count:200 ~name:"expr: symbolic compile = concrete eval (bool)"
    arbitrary_bool_expr (fun syn ->
      let sp, n1, n2, b1, b2 = expr_space () in
      let e = to_expr ~n1 ~n2 ~b1 ~b2 syn in
      let symbolic = Expr.compile_bool sp e in
      let ok = ref true in
      Space.iter_states sp (fun st ->
          let c = Expr.eval_bool e (fun v -> st.(Space.idx v)) in
          if c <> Space.holds_at sp symbolic st then ok := false);
      !ok)

let prop_expr_compile_agrees_nat =
  QCheck.Test.make ~count:200 ~name:"expr: symbolic compile = concrete eval (nat)"
    arbitrary_nat_expr (fun syn ->
      let sp, n1, n2, b1, b2 = expr_space () in
      let e = to_expr ~n1 ~n2 ~b1 ~b2 syn in
      let vec = Expr.compile_int sp e in
      let m = Space.manager sp in
      let ok = ref true in
      Space.iter_states sp (fun st ->
          let c = Expr.eval e (fun v -> st.(Space.idx v)) in
          if not (Pred.holds_implies sp (Space.pred_of_state sp st) (Bitvec.eq_const m vec c))
          then ok := false);
      !ok)

let prop_expr_typing_total =
  QCheck.Test.make ~count:300 ~name:"expr: generated expressions are well-typed"
    arbitrary_bool_expr (fun syn ->
      let _, n1, n2, b1, b2 = expr_space () in
      Expr.typeof (to_expr ~n1 ~n2 ~b1 ~b2 syn) = Expr.Tbool)

(* ---- generator: random UNITY programs ------------------------------------ *)

(* All variables share the same range so variable-to-variable assignment is
   always in range; other right-hand sides are clamped with ∸ so totality
   holds by construction. *)
let program_gen =
  let open QCheck.Gen in
  let stmt_syn = pair bool_gen (list_size (int_range 1 2) (pair bool nat_gen)) in
  list_size (int_range 1 4) stmt_syn

let print_program syns =
  String.concat " | "
    (List.map
       (fun (g, assigns) ->
         Format.asprintf "%a -> %s" pp_exprsyn g
           (String.concat ","
              (List.map
                 (fun (w, rhs) ->
                   Format.asprintf "n%d:=%a" (if w then 2 else 1) pp_exprsyn rhs)
                 assigns)))
       syns)

let build_program syns =
  let sp, n1, n2, b1, b2 = expr_space () in
  let clamp rhs = Expr.(rhs -! (rhs -! nat 6)) in
  let stmts =
    List.mapi
      (fun i (gsyn, assigns) ->
        let guard = to_expr ~n1 ~n2 ~b1 ~b2 gsyn in
        (* dedupe targets: last write wins *)
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun (w, rhssyn) ->
            let v = if w then n2 else n1 in
            Hashtbl.replace tbl (Space.idx v) (v, clamp (to_expr ~n1 ~n2 ~b1 ~b2 rhssyn)))
          assigns;
        let assigns = Hashtbl.fold (fun _ a acc -> a :: acc) tbl [] in
        Stmt.make ~name:(Printf.sprintf "s%d" i) ~guard assigns)
      syns
  in
  (sp, Program.make sp ~name:"random" ~init:Expr.tru stmts)

let arbitrary_program = QCheck.make ~print:print_program program_gen

let prop_sst_closure =
  QCheck.Test.make ~count:60 ~name:"program: sst is a stable closure operator"
    (QCheck.pair arbitrary_program (arbitrary_formula ~nvars:4)) (fun (syns, fsyn) ->
      let sp, prog = build_program syns in
      let m = Space.manager sp in
      (* interpret the formula over the current bits of the space *)
      let p = to_bdd ~remap:(fun i -> 2 * i) m fsyn in
      let s = Program.sst prog p in
      Pred.holds_implies sp p s && Program.stable prog s
      && Bdd.equal (Program.sst prog s) s)

let prop_sst_monotone =
  QCheck.Test.make ~count:60 ~name:"program: sst monotone (eq. 4)"
    (QCheck.triple arbitrary_program (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4))
    (fun (syns, f, g) ->
      let sp, prog = build_program syns in
      let m = Space.manager sp in
      let p = to_bdd ~remap:(fun i -> 2 * i) m f in
      let q = Bdd.or_ m p (to_bdd ~remap:(fun i -> 2 * i) m g) in
      Pred.holds_implies sp (Program.sst prog p) (Program.sst prog q))

(* Reference full-set Kleene iteration for sst; the frontier-based
   Program.sst must return the identical canonical BDD. *)
let naive_sst prog p =
  let sp = Program.space prog in
  let m = Space.manager sp in
  let p = Pred.normalize sp p in
  let rec go x =
    let x' = Bdd.or_ m p (Bdd.or_ m x (Program.sp_pred prog x)) in
    if Bdd.equal x x' then x else go x'
  in
  go (Bdd.fls m)

let prop_frontier_sst_equals_naive =
  QCheck.Test.make ~count:60 ~name:"program: frontier sst = full-set Kleene sst"
    (QCheck.pair arbitrary_program (arbitrary_formula ~nvars:4)) (fun (syns, fsyn) ->
      let sp, prog = build_program syns in
      let m = Space.manager sp in
      let p = to_bdd ~remap:(fun i -> 2 * i) m fsyn in
      Bdd.equal (Program.sst prog p) (naive_sst prog p))

let prop_ensures_implies_leadsto =
  QCheck.Test.make ~count:40 ~name:"logic: ensures ⊆ leads-to"
    (QCheck.triple arbitrary_program (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4))
    (fun (syns, f, g) ->
      let sp, prog = build_program syns in
      let m = Space.manager sp in
      let p = to_bdd ~remap:(fun i -> 2 * i) m f in
      let q = to_bdd ~remap:(fun i -> 2 * i) m g in
      ignore sp;
      (not (Kpt_logic.Props.ensures prog p q)) || Kpt_logic.Props.leads_to prog p q)

let prop_unless_conjunction_sound =
  QCheck.Test.make ~count:40 ~name:"logic: appendix-8 conjunction is semantically sound"
    (QCheck.triple arbitrary_program (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4))
    (fun (syns, f, g) ->
      let sp, prog = build_program syns in
      let m = Space.manager sp in
      let p = to_bdd ~remap:(fun i -> 2 * i) m f in
      let p' = to_bdd ~remap:(fun i -> 2 * i) m g in
      let q = Bdd.not_ m p and q' = Bdd.not_ m p' in
      ignore sp;
      (not (Kpt_logic.Props.unless prog p q && Kpt_logic.Props.unless prog p' q'))
      || Kpt_logic.Props.unless prog (Bdd.and_ m p p') (Bdd.or_ m q q'))

(* ---- knowledge properties on random worlds -------------------------------- *)

let prop_s5_random_si =
  QCheck.Test.make ~count:80 ~name:"knowledge: S5 laws for arbitrary SI"
    (QCheck.pair (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4)) (fun (fsi, fp) ->
      let sp = Space.create () in
      let a = Space.bool_var sp "a" in
      let b = Space.bool_var sp "b" in
      let _c = Space.bool_var sp "c" in
      let _d = Space.bool_var sp "d" in
      let proc = Process.make "P" [ a; b ] in
      let m = Space.manager sp in
      let cur i = 2 * i in
      let si = to_bdd ~remap:cur m fsi and p = to_bdd ~remap:cur m fp in
      let k x = Kpt_core.Knowledge.knows sp ~si proc x in
      (* (14) *)
      Pred.holds_implies sp (k p) p
      (* (16) *)
      && Pred.equivalent sp (k p) (k (k p))
      (* (17) *)
      && Pred.equivalent sp (Bdd.not_ m (k p)) (k (Bdd.not_ m (k p)))
      (* (18) *)
      && ((not (Pred.valid sp p)) || Pred.valid sp (k p)))

let prop_k_conjunctive_random_si =
  QCheck.Test.make ~count:80 ~name:"knowledge: (21) K(p∧q) = Kp ∧ Kq for arbitrary SI"
    (QCheck.triple (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4)
       (arbitrary_formula ~nvars:4)) (fun (fsi, fp, fq) ->
      let sp = Space.create () in
      let a = Space.bool_var sp "a" in
      let b = Space.bool_var sp "b" in
      let _c = Space.bool_var sp "c" in
      let _d = Space.bool_var sp "d" in
      let proc = Process.make "P" [ a; b ] in
      let m = Space.manager sp in
      let cur i = 2 * i in
      let si = to_bdd ~remap:cur m fsi in
      let p = to_bdd ~remap:cur m fp and q = to_bdd ~remap:cur m fq in
      let k x = Kpt_core.Knowledge.knows sp ~si proc x in
      Pred.equivalent sp (k (Bdd.and_ m p q)) (Bdd.and_ m (k p) (k q)))

let prop_wcyl_galois =
  QCheck.Test.make ~count:100 ~name:"wcyl: Galois with cylinder inclusion (9)+(10)"
    (QCheck.pair (arbitrary_formula ~nvars:4) (arbitrary_formula ~nvars:4)) (fun (fp, fq) ->
      let sp = Space.create () in
      let a = Space.bool_var sp "a" in
      let b = Space.bool_var sp "b" in
      let _c = Space.bool_var sp "c" in
      let _d = Space.bool_var sp "d" in
      let m = Space.manager sp in
      let cur i = 2 * i in
      let p = to_bdd ~remap:cur m fp in
      (* q: an arbitrary cylinder on {a,b} *)
      let q = Kpt_core.Wcyl.wcyl sp [ a; b ] (to_bdd ~remap:cur m fq) in
      (* (10): q ⇒ p implies q ⇒ wcyl p; and conversely by (7) *)
      Pred.holds_implies sp q p
      = Pred.holds_implies sp q (Kpt_core.Wcyl.wcyl sp [ a; b ] p))

(* ---- random knowledge-based protocols ------------------------------------ *)

(* Random 2-boolean KBPs: two processes (each sees one variable), two
   statements with random K-guards and random boolean assignments. *)
type kguard = GSelf | GKOther | GKNotOther | GPlain of bool

let pp_kguard = function
  | GSelf -> "self"
  | GKOther -> "K(other)"
  | GKNotOther -> "K(~other)"
  | GPlain b -> Printf.sprintf "const %b" b

let kbp_gen =
  QCheck.Gen.(
    let guard = oneofl [ GSelf; GKOther; GKNotOther; GPlain true; GPlain false ] in
    (* each statement: guard × target-value *)
    pair (pair guard bool) (pair guard bool))

let print_kbp ((g0, v0), (g1, v1)) =
  Printf.sprintf "s0: a := %b if %s | s1: b := %b if %s" v0 (pp_kguard g0) v1 (pp_kguard g1)

let build_kbp ((g0, v0), (g1, v1)) =
  let open Kpt_core in
  let sp = Space.create () in
  let a = Space.bool_var sp "a" in
  let b = Space.bool_var sp "b" in
  let pa = Kpt_unity.Process.make "PA" [ a ] in
  let pb = Kpt_unity.Process.make "PB" [ b ] in
  let guard ~own ~other = function
    | GSelf -> Kform.base (Expr.var own)
    | GKOther -> Kform.k (if own == a then "PA" else "PB") (Kform.base (Expr.var other))
    | GKNotOther ->
        Kform.k (if own == a then "PA" else "PB") (Kform.knot (Kform.base (Expr.var other)))
    | GPlain v -> Kform.base (if v then Expr.tru else Expr.fls)
  in
  let s0 =
    Kbp.kstmt ~name:"s0" ~guard:(guard ~own:a ~other:b g0)
      [ (a, if v0 then Expr.tru else Expr.fls) ]
  in
  let s1 =
    Kbp.kstmt ~name:"s1" ~guard:(guard ~own:b ~other:a g1)
      [ (b, if v1 then Expr.tru else Expr.fls) ]
  in
  ( sp,
    Kbp.make sp ~name:"random_kbp"
      ~init:Expr.(not_ (var a) &&& not_ (var b))
      ~processes:[ pa; pb ] [ s0; s1 ] )

let arbitrary_kbp = QCheck.make ~print:print_kbp kbp_gen

let prop_kbp_solutions_are_fixpoints =
  QCheck.Test.make ~count:100 ~name:"kbp: every returned solution satisfies Ĝ(X) = X"
    arbitrary_kbp (fun syn ->
      let sp, kbp = build_kbp syn in
      List.for_all
        (fun x -> Bdd.equal (Kpt_core.Kbp.g_operator kbp x) (Pred.normalize sp x))
        (Kpt_core.Kbp.solutions kbp))

let prop_kbp_iterate_sound =
  QCheck.Test.make ~count:100 ~name:"kbp: a converged iteration is among the solutions"
    arbitrary_kbp (fun syn ->
      let sp, kbp = build_kbp syn in
      match Kpt_core.Kbp.iterate kbp with
      | Kpt_core.Kbp.Converged { si = x; _ } ->
          List.exists (fun y -> Pred.equivalent sp x y) (Kpt_core.Kbp.solutions kbp)
      | _ -> true)

let prop_kbp_standard_unique =
  QCheck.Test.make ~count:100 ~name:"kbp: knowledge-free KBPs have exactly one solution"
    arbitrary_kbp (fun syn ->
      let _, kbp = build_kbp syn in
      QCheck.assume (Kpt_core.Kbp.is_standard kbp);
      List.length (Kpt_core.Kbp.solutions kbp) = 1)

(* ---- surface syntax: print ∘ parse round trip ----------------------------- *)

let surface_expr_gen =
  let open QCheck.Gen in
  let mk = Kpt_syntax.Ast.mk in
  let ident = oneofl [ "alpha"; "beta"; "gamma" ] in
  let rec go size =
    if size <= 1 then
      oneof
        [
          return (mk Kpt_syntax.Ast.Etrue);
          return (mk Kpt_syntax.Ast.Efalse);
          map (fun n -> mk (Kpt_syntax.Ast.Enum n)) (int_bound 9);
          map (fun s -> mk (Kpt_syntax.Ast.Eident s)) ident;
        ]
    else
      let sub = go (size / 2) in
      oneof
        [
          map (fun a -> mk (Kpt_syntax.Ast.Enot a)) (go (size - 1));
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eand (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eor (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eimp (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eiff (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eeq (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Elt (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Eadd (a, b))) sub sub;
          map2 (fun a b -> mk (Kpt_syntax.Ast.Esub (a, b))) sub sub;
          map2 (fun i a -> mk (Kpt_syntax.Ast.Eindex (i, a))) ident sub;
          map2 (fun pname a -> mk (Kpt_syntax.Ast.Eknow (pname, a))) ident sub;
        ]
  in
  QCheck.Gen.sized (fun s -> go (min s 14))

let prop_surface_roundtrip =
  QCheck.Test.make ~count:300 ~name:"syntax: parse ∘ print = id on expressions"
    (QCheck.make
       ~print:(Format.asprintf "%a" Kpt_syntax.Ast.pp_expr)
       surface_expr_gen)
    (fun e ->
      let printed = Format.asprintf "%a" Kpt_syntax.Ast.pp_expr e in
      let reparsed = Kpt_syntax.Parser.expr_of_string printed in
      let printed2 = Format.asprintf "%a" Kpt_syntax.Ast.pp_expr reparsed in
      (* compare via printing: the AST may differ in reassociation-free
         ways only if the printer is ambiguous — it must not be *)
      printed = printed2)

let suite =
  Helpers.qtests
    [
      prop_bdd_sound;
      prop_bdd_canonical;
      prop_bdd_quantifier_duality;
      prop_bdd_sat_count;
      prop_bdd_relational_product;
      prop_expr_compile_agrees;
      prop_expr_compile_agrees_nat;
      prop_expr_typing_total;
      prop_sst_closure;
      prop_sst_monotone;
      prop_frontier_sst_equals_naive;
      prop_ensures_implies_leadsto;
      prop_unless_conjunction_sound;
      prop_s5_random_si;
      prop_k_conjunctive_random_si;
      prop_wcyl_galois;
      prop_kbp_solutions_are_fixpoints;
      prop_kbp_iterate_sound;
      prop_kbp_standard_unique;
      prop_surface_roundtrip;
    ]
