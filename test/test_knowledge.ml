open Kpt_predicate
open Kpt_unity
open Kpt_core

(* Bit-transmission program: the Sender owns bit [b] and writes it to the
   shared wire [c]; the Receiver copies [c] into [r].  Only b = true is
   ever written (the wire starts low), so "c is high" carries knowledge. *)
let bit_prog () =
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in
  let c = Space.bool_var sp "c" in
  let r = Space.bool_var sp "r" in
  let sender = Process.make "S" [ b; c ] in
  let receiver = Process.make "R" [ c; r ] in
  let write = Stmt.make ~name:"write" ~guard:(Expr.var b) [ (c, Expr.var b) ] in
  let copy = Stmt.make ~name:"copy" [ (r, Expr.var c) ] in
  let prog =
    Program.make sp ~name:"bit"
      ~init:Expr.(not_ (var c) &&& not_ (var r))
      ~processes:[ sender; receiver ] [ write; copy ]
  in
  (sp, b, c, r, prog)

let bp sp e = Expr.compile_bool sp e

let test_knowledge_value () =
  let sp, b, c, _, prog = bit_prog () in
  (* Within SI, the receiver knows b once the wire is high. *)
  let kb = Knowledge.knows_in prog "R" (bp sp (Expr.var b)) in
  let si = Program.si prog in
  let m = Space.manager sp in
  Alcotest.(check bool) "K_R b = c on reachable states" true
    (Bdd.implies m si (Bdd.iff m kb (bp sp (Expr.var c))));
  (* The sender always knows its own bit's value. *)
  let ks_b = Knowledge.knows_in prog "S" (bp sp (Expr.var b)) in
  let ks_nb = Knowledge.knows_in prog "S" (bp sp Expr.(not_ (var b))) in
  Alcotest.(check bool) "K_S b ∨ K_S ¬b everywhere reachable" true
    (Bdd.implies m si (Bdd.or_ m ks_b ks_nb));
  ignore c

let s5_program_pairs () =
  let sp, b, _, _, prog = bit_prog () in
  let st = Helpers.rng () in
  let preds = Bdd.tru (Space.manager sp) :: List.init 8 (fun _ -> Pred.random st sp) in
  (sp, b, prog, preds)

(* S5 axioms (14)–(18). *)
let test_s5 () =
  let sp, _, prog, preds = s5_program_pairs () in
  let m = Space.manager sp in
  let k = Knowledge.knows_in prog "R" in
  List.iter
    (fun p ->
      (* (14) veridicality *)
      Alcotest.(check bool) "(14) K p ⇒ p" true (Pred.holds_implies sp (k p) p);
      (* (16) positive introspection, as equality *)
      Alcotest.(check bool) "(16) K p ≡ K K p" true (Pred.equivalent sp (k p) (k (k p)));
      (* (17) negative introspection *)
      Alcotest.(check bool) "(17) ¬K p ≡ K ¬K p" true
        (Pred.equivalent sp (Bdd.not_ m (k p)) (k (Bdd.not_ m (k p))));
      (* (18) necessitation *)
      if Pred.valid sp p then
        Alcotest.(check bool) "(18) [p] ⇒ [K p]" true (Pred.valid sp (k p)))
    preds;
  (* (15) distribution over implication *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let lhs = Bdd.and_ m (k p) (k (Bdd.imp m p q)) in
          Alcotest.(check bool) "(15) K p ∧ K(p⇒q) ⇒ K q" true
            (Pred.holds_implies sp lhs (k q)))
        preds)
    preds

(* Junctivity (19)–(22). *)
let test_junctivity_19_22 () =
  let sp, _, prog, preds = s5_program_pairs () in
  let m = Space.manager sp in
  let k = Knowledge.knows_in prog "R" in
  (* (19) monotone in p *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if Pred.holds_implies sp p q then
            Alcotest.(check bool) "(19) monotone" true (Pred.holds_implies sp (k p) (k q)))
        preds)
    preds;
  (* (21) universally conjunctive — binary + empty family via tester *)
  let rng = Helpers.rng () in
  (match Junctivity.universally_conjunctive sp k rng with
  | None -> ()
  | Some w -> Alcotest.failf "(21) K should be universally conjunctive: %s" w.note);
  (* (22) not disjunctive: K_R applied to b-vs-¬b splits.  The receiver,
     at wire-low states, knows b ∨ ¬b but neither disjunct. *)
  let b = Space.find sp "b" in
  let pb = bp sp (Expr.var b) and nb = bp sp Expr.(not_ (var b)) in
  let lhs = Bdd.or_ m (k pb) (k nb) in
  let rhs = k (Bdd.or_ m pb nb) in
  Alcotest.(check bool) "(22) K not disjunctive (witness)" false (Pred.equivalent sp lhs rhs)

(* (20) anti-monotone in SI: strengthening SI weakens nothing — a smaller
   set of possible worlds can only increase knowledge. *)
let test_anti_monotone_in_si () =
  let sp, _, _, _, prog = bit_prog () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  let proc = Program.find_process prog "R" in
  for _ = 1 to 15 do
    let si1 = Bdd.or_ m (Program.si prog) (Pred.random st sp) in
    let si2 = Bdd.and_ m si1 (Pred.random st sp) in
    (* si2 ⇒ si1 *)
    let p = Pred.random st sp in
    (* On states where both definitions apply (within si2), knowledge under
       the stronger invariant is weaker-or-equal pointwise: K^{si1} p ⇒
       K^{si2} p restricted to si2. *)
    let k1 = Knowledge.knows sp ~si:si1 proc p in
    let k2 = Knowledge.knows sp ~si:si2 proc p in
    Alcotest.(check bool) "(20) anti-monotone on common worlds" true
      (Pred.holds_implies sp (Bdd.and_ m si2 k1) k2)
  done

(* (23): invariant p ≡ invariant K_i p. *)
let test_invariant_correspondence_23 () =
  let _, _, prog, preds = s5_program_pairs () in
  let k = Knowledge.knows_in prog "R" in
  List.iter
    (fun p ->
      Alcotest.(check bool) "(23) invariant p ≡ invariant K p"
        (Program.invariant prog p)
        (Program.invariant prog (k p)))
    preds

(* (24): for q depending only on i's variables,
   invariant (q ⇒ p) ≡ invariant (q ⇒ K_i p). *)
let test_invariant_correspondence_24 () =
  let sp, _, prog, preds = s5_program_pairs () in
  let m = Space.manager sp in
  let k = Knowledge.knows_in prog "R" in
  let rvars = Process.vars (Program.find_process prog "R") in
  let st = Helpers.rng () in
  List.iter
    (fun p ->
      let q = Wcyl.wcyl sp rvars (Pred.random st sp) in
      Alcotest.(check bool) "(24)"
        (Program.invariant prog (Bdd.imp m q p))
        (Program.invariant prog (Bdd.imp m q (k p))))
    preds

let test_everyone_common_distributed () =
  let sp, b, c, r, prog = bit_prog () in
  let m = Space.manager sp in
  let si = Program.si prog in
  let group = [ Program.find_process prog "S"; Program.find_process prog "R" ] in
  let st = Helpers.rng () in
  for _ = 1 to 10 do
    let p = Pred.random st sp in
    let e = Knowledge.everyone_knows sp ~si group p in
    let ck = Knowledge.common_knowledge sp ~si group p in
    let d = Knowledge.distributed_knowledge sp ~si group p in
    (* C ⇒ E ⇒ K_i ⇒ p, and K_i ⇒ D *)
    Alcotest.(check bool) "C ⇒ E" true (Pred.holds_implies sp ck e);
    Alcotest.(check bool) "E ⇒ K_R" true
      (Pred.holds_implies sp e (Knowledge.knows_in prog "R" p));
    Alcotest.(check bool) "E ⇒ p" true (Pred.holds_implies sp e p);
    Alcotest.(check bool) "K_S ⇒ D" true
      (Pred.holds_implies sp (Knowledge.knows_in prog "S" p) d);
    (* C is a fixpoint: C p ≡ E(p ∧ C p) *)
    Alcotest.(check bool) "C fixpoint" true
      (Pred.equivalent sp ck (Knowledge.everyone_knows sp ~si group (Bdd.and_ m p ck)))
  done;
  (* Distributed knowledge really pools variables: S and R jointly see
     everything, so D_G is p itself on reachable states. *)
  let p = bp sp Expr.(var b &&& not_ (var r)) in
  let d = Knowledge.distributed_knowledge sp ~si group p in
  Alcotest.(check bool) "full-view D = p inside SI" true
    (Bdd.implies m si (Bdd.iff m d p));
  ignore c

(* The optimised common_knowledge precomputes the per-process p-cylinders
   outside the gfp loop; it must return the exact BDD of the textbook
   iteration x ↦ E(p ∧ x). *)
let test_common_knowledge_naive_equiv () =
  let sp, _, _, _, prog = bit_prog () in
  let m = Space.manager sp in
  let group = [ Program.find_process prog "S"; Program.find_process prog "R" ] in
  let naive ~si p =
    let rec go x =
      let x' = Knowledge.everyone_knows sp ~si group (Bdd.and_ m p x) in
      if Bdd.equal (Pred.normalize sp x) (Pred.normalize sp x') then x' else go x'
    in
    go (Bdd.tru m)
  in
  let st = Helpers.rng () in
  let si0 = Program.si prog in
  for _ = 1 to 15 do
    let p = Pred.random st sp in
    Alcotest.(check bool) "common_knowledge = naive gfp" true
      (Bdd.equal (Knowledge.common_knowledge sp ~si:si0 group p) (naive ~si:si0 p))
  done;
  (* ... including at arbitrary (non-invariant) SI arguments *)
  for _ = 1 to 10 do
    let p = Pred.random st sp and si = Pred.random st sp in
    Alcotest.(check bool) "common_knowledge = naive gfp (random si)" true
      (Bdd.equal (Knowledge.common_knowledge sp ~si group p) (naive ~si p))
  done

let test_unreachable_convention () =
  (* Eq. 13's refinement: on unreachable states K_i p has the value p. *)
  let sp, _, _, _, prog = bit_prog () in
  let m = Space.manager sp in
  let si = Program.si prog in
  let st = Helpers.rng () in
  for _ = 1 to 15 do
    let p = Pred.random st sp in
    let k = Knowledge.knows_in prog "R" p in
    Alcotest.(check bool) "K p ≡ p outside SI" true
      (Bdd.implies m
         (Bdd.and_ m (Space.domain sp) (Bdd.not_ m si))
         (Bdd.iff m k p))
  done

let suite =
  [
    Alcotest.test_case "knowledge gained by communication" `Quick test_knowledge_value;
    Alcotest.test_case "(14)-(18) S5 axioms" `Quick test_s5;
    Alcotest.test_case "(19),(21),(22) junctivity" `Quick test_junctivity_19_22;
    Alcotest.test_case "(20) anti-monotone in SI" `Quick test_anti_monotone_in_si;
    Alcotest.test_case "(23) invariant correspondence" `Quick test_invariant_correspondence_23;
    Alcotest.test_case "(24) cylinder invariant correspondence" `Quick
      test_invariant_correspondence_24;
    Alcotest.test_case "E/C/D extensions" `Quick test_everyone_common_distributed;
    Alcotest.test_case "common knowledge = naive gfp" `Quick test_common_knowledge_naive_equiv;
    Alcotest.test_case "unreachable-state convention" `Quick test_unreachable_convention;
  ]
