(* The semantic lint tier (KPT1xx) and its driver:

   - KPT101/KPT102 fire on the crafted dead-statement spec and stay
     silent on every bundled protocol (the figures excepted: figure2's
     s0 is genuinely unreachable, which is the point of the figure);
   - KPT104 counts the stuck states of the crafted spec;
   - KPT105's local predicate for relay, substituted for the knowledge
     guards, yields the identical solve verdict (the Figure 3→4 move);
   - [kpt lint --semantic] at -j 4 is byte-identical to -j 1, text and
     JSON, over the spec corpus;
   - the JSON batch output matches the CLI-produced golden. *)

module Lint = Kpt_analysis.Lint
module Semantic = Kpt_analysis.Semantic
module D = Kpt_analysis.Diagnostic
module Space = Kpt_predicate.Space
module Bdd = Kpt_predicate.Bdd
module Kbp = Kpt_core.Kbp

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_names () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare

let corpus () =
  List.map
    (fun n -> ("examples/specs/" ^ n, read_file ("../examples/specs/" ^ n)))
    (spec_names ())

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

let semantic_diags path =
  Lint.lint_source_semantic ~file:path (read_file ("../" ^ path))

(* ---- the crafted dead-statement spec ----------------------------------------- *)

let test_deadcode_fires () =
  let ds = semantic_diags "examples/analysis/deadcode.unity" in
  let cs = codes ds in
  Alcotest.(check bool) "KPT101 fires on ghost" true (List.mem "KPT101" cs);
  Alcotest.(check bool) "KPT102 fires on never" true (List.mem "KPT102" cs);
  let find code =
    (List.find (fun (d : D.t) -> d.D.code = code) ds).D.message
  in
  Alcotest.(check bool) "KPT101 names the statement" true
    (String.length (find "KPT101") > 5 && String.sub (find "KPT101") 0 5 = "ghost");
  Alcotest.(check bool) "KPT102 names the statement" true
    (let m = find "KPT102" in
     let needle = "guard of never" in
     String.length m >= String.length needle
     && String.sub m 0 (String.length needle) = needle)

let test_deadcode_stuck_count () =
  let ds = semantic_diags "examples/analysis/deadcode.unity" in
  match List.find_opt (fun (d : D.t) -> d.D.code = "KPT104") ds with
  | None -> Alcotest.fail "expected a KPT104 finding"
  | Some d ->
      (* x = 2 ∧ ¬flag enables nothing: exactly one stuck state *)
      Alcotest.(check bool) "one stuck state, counted symbolically" true
        (String.length d.D.message > 1 && String.sub d.D.message 0 1 = "1")

(* ---- silence on the bundled protocols ----------------------------------------- *)

let test_silent_on_protocols () =
  List.iter
    (fun name ->
      if name <> "figure1.unity" && name <> "figure2.unity" then begin
        let ds = semantic_diags ("examples/specs/" ^ name) in
        List.iter
          (fun (d : D.t) ->
            if d.D.code = "KPT101" || d.D.code = "KPT102" then
              Alcotest.failf "%s: unexpected %s: %s" name d.D.code d.D.message)
          ds
      end)
    (spec_names ());
  let ds = semantic_diags "examples/analysis/ring_mon.unity" in
  Alcotest.(check (list string)) "ring_mon is semantically clean" [] (codes ds)

let test_unsat_init_is_kpt103 () =
  let src = "program contradict\nvar x : bool\ninit x /\\ ~x\nassign\n  s: x := true if ~x\n" in
  let ds = Lint.lint_source_semantic ~file:"contradict.unity" src in
  let cs = codes ds in
  Alcotest.(check bool) "KPT103 replaces the generic KPT003" true
    (List.mem "KPT103" cs && not (List.mem "KPT003" cs));
  Alcotest.(check bool) "and it is an error" true
    (List.exists (fun (d : D.t) -> d.D.code = "KPT103" && D.is_error d) ds)

(* ---- KPT105: relay's guards are locally implementable (Figure 3→4) ----------- *)

let replace ~needle ~by s =
  let nl = String.length needle and sl = String.length s in
  let rec find i =
    if i + nl > sl then None
    else if String.sub s i nl = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" needle
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + nl) (sl - i - nl)

let test_relay_local_substitution () =
  let src = read_file "../examples/specs/relay.unity" in
  let sp, kbp = Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string src) in
  let si =
    match Kbp.iterate kbp with
    | Kbp.Converged { si; _ } -> si
    | _ -> Alcotest.fail "relay must converge"
  in
  let local name =
    let s = List.find (fun (s : Kbp.kstmt) -> s.Kbp.kname = name) (Kbp.kstmts kbp) in
    match Semantic.local_guard kbp ~si s with
    | Some (pname, ell) ->
        Alcotest.(check string) (name ^ " is local to Right") "Right" pname;
        Semantic.render_local sp ~care:si ell
    | None -> Alcotest.failf "guard of %s should be locally implementable" name
  in
  let copy_local = local "copy" and report_local = local "report" in
  Alcotest.(check string) "copy's local predicate" "wire /\\ ~b" copy_local;
  Alcotest.(check string) "report's local predicate" "b /\\ ~done" report_local;
  (* substitute the local predicates for the knowledge guards: the
     protocol becomes standard, and its reachable set is the same SI *)
  let src' =
    src
    |> replace ~needle:"K[Right](a) /\\ ~b" ~by:copy_local
    |> replace ~needle:"K[Right](b) /\\ ~done" ~by:report_local
  in
  let sp', kbp' = Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string src') in
  Alcotest.(check bool) "the substituted protocol is standard" true (Kbp.is_standard kbp');
  let si' = Kpt_unity.Program.si (Kbp.to_standard_program kbp') in
  let show sp si = Format.asprintf "%a" (Space.pp_pred sp) si in
  Alcotest.(check string) "identical solve verdict (same SI, eq. 5)"
    (show sp si) (show sp' si');
  Alcotest.(check int) "same reachable-state count"
    (Space.count_states_of sp si) (Space.count_states_of sp' si')

(* ---- driver determinism and the golden ---------------------------------------- *)

let run_lint ~jobs ~json sources =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  let code = Lint.run_sources ~jobs ~semantic:true ~json ppf sources in
  Format.pp_print_flush ppf ();
  (code, Buffer.contents b)

let test_lint_jobs_differential () =
  let sources = corpus () in
  List.iter
    (fun json ->
      let c1, o1 = run_lint ~jobs:1 ~json sources in
      let c4, o4 = run_lint ~jobs:4 ~json sources in
      Alcotest.(check int)
        (Printf.sprintf "exit code at -j 4 (json=%b)" json)
        c1 c4;
      Alcotest.(check string)
        (Printf.sprintf "%s output byte-identical at -j 1 and -j 4"
           (if json then "JSON" else "text"))
        o1 o4)
    [ false; true ]

(* Regenerate with:
     dune exec bin/kpt.exe -- lint --semantic --json examples/specs/*.unity \
       --reorder=off > test/golden/lint_specs.json
   (from the repository root; --reorder=off because this test runs
   in-process under the library default, which is off — the CLI default
   is auto.  The semantic messages are reorder-independent by design, so
   the flag only pins the engine configuration, not the text.) *)
let test_lint_json_golden () =
  let expected = read_file "golden/lint_specs.json" in
  let _, got = run_lint ~jobs:2 ~json:true (corpus ()) in
  Alcotest.(check string) "kpt lint --semantic --json batch summary" expected got

(* ---- the analysis budget ------------------------------------------------------ *)

let test_budget_degrades_to_kpt100 () =
  let src = read_file "../examples/specs/token_ring_8.unity" in
  let budget = Kpt_predicate.Budget.limits ~fuel:1 () in
  let ds =
    Kpt_analysis.Semantic.analyse ~file:"token_ring_8.unity" ~budget
      (Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string src))
  in
  Alcotest.(check bool) "fuel 1 degrades to a KPT100 info, never an exception" true
    (List.exists (fun (d : D.t) -> d.D.code = "KPT100") ds);
  Alcotest.(check bool) "and nothing is an error" true
    (not (List.exists D.is_error ds))

let suite =
  [
    Alcotest.test_case "KPT101/102 fire on the dead-statement spec" `Quick
      test_deadcode_fires;
    Alcotest.test_case "KPT104 counts the stuck states" `Quick test_deadcode_stuck_count;
    Alcotest.test_case "silent on the bundled protocols" `Quick test_silent_on_protocols;
    Alcotest.test_case "unsatisfiable init is KPT103" `Quick test_unsat_init_is_kpt103;
    Alcotest.test_case "relay: local substitution preserves the verdict" `Quick
      test_relay_local_substitution;
    Alcotest.test_case "lint --semantic -j4 byte-identical to -j1" `Quick
      test_lint_jobs_differential;
    Alcotest.test_case "lint --json golden" `Quick test_lint_json_golden;
    Alcotest.test_case "budget exhaustion degrades to KPT100" `Quick
      test_budget_degrades_to_kpt100;
  ]
