open Kpt_predicate
open Kpt_unity
open Kpt_logic
open Kpt_core

(* ---- Figure 1: a knowledge-based protocol with NO solution ------------- *)

let figure1 () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ shared ] in
  let p1 = Process.make "P1" [ shared; x ] in
  let s0 =
    Kbp.kstmt ~name:"s0"
      ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
      [ (shared, Expr.tru) ]
  in
  let s1 =
    Kbp.kstmt ~name:"s1"
      ~guard:(Kform.base (Expr.var shared))
      [ (x, Expr.tru); (shared, Expr.fls) ]
  in
  let kbp =
    Kbp.make sp ~name:"figure1"
      ~init:Expr.(not_ (var shared) &&& not_ (var x))
      ~processes:[ p0; p1 ] [ s0; s1 ]
  in
  (sp, kbp)

(* ---- Figure 2: SI not monotonic in the initial condition --------------- *)

let figure2 mk_init =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let z = Space.bool_var sp "z" in
  let init = mk_init ~x ~y in
  let p0 = Process.make "P0" [ y ] in
  let p1 = Process.make "P1" [ z ] in
  let s0 =
    Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ]
  in
  let s1 =
    Kbp.kstmt ~name:"s1"
      ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
      [ (z, Expr.tru) ]
  in
  let kbp = Kbp.make sp ~name:"figure2" ~init ~processes:[ p0; p1 ] [ s0; s1 ] in
  (sp, x, y, z, kbp)

let bp sp e = Expr.compile_bool sp e

let test_make_validation () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ x ] in
  let good = Kbp.kstmt ~name:"s" ~guard:(Kform.base Expr.tru) [ (x, Expr.tru) ] in
  Alcotest.check_raises "empty statements" (Kbp.Ill_formed "kbp e: empty statement list")
    (fun () -> ignore (Kbp.make sp ~name:"e" ~init:Expr.tru ~processes:[ p0 ] []));
  let badp = Kbp.kstmt ~name:"s" ~guard:(Kform.k "NOPE" (Kform.base Expr.tru)) [ (x, Expr.tru) ] in
  Alcotest.check_raises "unknown process"
    (Kbp.Ill_formed "kbp u: statement s mentions unknown process NOPE") (fun () ->
      ignore (Kbp.make sp ~name:"u" ~init:Expr.tru ~processes:[ p0 ] [ badp ]));
  ignore good

let test_is_standard () =
  let _, kbp1 = figure1 () in
  Alcotest.(check bool) "figure1 uses knowledge" false (Kbp.is_standard kbp1)

let test_figure1_no_solution () =
  let _, kbp = figure1 () in
  let sols = Kbp.solutions kbp in
  Alcotest.(check int) "Figure 1 has NO solution" 0 (List.length sols);
  Alcotest.(check bool) "strongest_solution is None" true
    (Kbp.strongest_solution kbp = None)

let test_figure1_iteration_cycles () =
  let sp, kbp = figure1 () in
  match Kbp.iterate kbp with
  | Kbp.Converged _ -> Alcotest.fail "Figure 1 iteration should not converge"
  | Kbp.Budget_exhausted _ -> Alcotest.fail "no budget armed"
  | Kbp.Diverged { orbit; _ } ->
      Alcotest.(check int) "orbit of period 2" 2 (List.length orbit);
      (* The orbit oscillates between {00} and {00,10,01}. *)
      let sizes = List.map (Space.count_states_of sp) orbit |> List.sort compare in
      Alcotest.(check (list int)) "orbit sizes" [ 1; 3 ] sizes

let test_figure1_g_operator_hand_values () =
  let sp, kbp = figure1 () in
  let shared = Space.find sp "shared" in
  let state s v = Space.pred_of_state sp (if Space.idx shared = 0 then [| s; v |] else [| v; s |]) in
  let m = Space.manager sp in
  let s00 = state 0 0 and s10 = state 1 0 and s01 = state 0 1 in
  (* Ĝ({00}) = {00,10,01} — everything becomes reachable. *)
  let g0 = Kbp.g_operator kbp s00 in
  Alcotest.(check bool) "Ĝ({00}) = {00,10,01}" true
    (Pred.equivalent sp g0 (Bdd.disj m [ s00; s10; s01 ]));
  (* Ĝ({00,10,01}) = {00} — with that SI, P0 no longer knows ¬x at 00. *)
  let g1 = Kbp.g_operator kbp (Bdd.disj m [ s00; s10; s01 ]) in
  Alcotest.(check bool) "Ĝ({00,10,01}) = {00}" true (Pred.equivalent sp g1 s00)

let test_figure2_solution_weak_init () =
  let sp, _, y, z, kbp = figure2 (fun ~x:_ ~y -> Expr.(not_ (var y))) in
  let sols = Kbp.solutions kbp in
  Alcotest.(check int) "exactly one solution" 1 (List.length sols);
  let si = List.hd sols in
  Alcotest.(check bool) "SI = ¬y (paper's claim)" true
    (Pred.equivalent sp si (bp sp Expr.(not_ (var y))));
  (* The instantiated protocol satisfies true ↦ z. *)
  let prog = Kbp.instantiate kbp ~si in
  Alcotest.(check bool) "true ↦ z holds under init = ¬y" true
    (Props.leads_to prog (Bdd.tru (Space.manager sp)) (bp sp (Expr.var z)));
  ignore y

let test_figure2_solution_strong_init () =
  let sp, _, _, z, kbp = figure2 (fun ~x ~y -> Expr.(not_ (var y) &&& var x)) in
  let sols = Kbp.solutions kbp in
  Alcotest.(check int) "exactly one solution" 1 (List.length sols);
  let si = List.hd sols in
  Alcotest.(check bool) "SI = x (paper's claim)" true
    (Pred.equivalent sp si (bp sp (Expr.var (Space.find sp "x"))));
  (* The liveness property true ↦ z now FAILS. *)
  let prog = Kbp.instantiate kbp ~si in
  Alcotest.(check bool) "true ↦ z fails under init = ¬y ∧ x" false
    (Props.leads_to prog (Bdd.tru (Space.manager sp)) (bp sp (Expr.var z)))

let test_figure2_nonmonotonicity () =
  (* init₂ ⇒ init₁ but SI₂ ⇏ SI₁: strengthening initial conditions does
     not strengthen the strongest invariant (§4, Figure 2). *)
  let sp1, _, _, _, kbp1 = figure2 (fun ~x:_ ~y -> Expr.(not_ (var y))) in
  let sp2, _, _, _, kbp2 = figure2 (fun ~x ~y -> Expr.(not_ (var y) &&& var x)) in
  let si1 = List.hd (Kbp.solutions kbp1) in
  let si2 = List.hd (Kbp.solutions kbp2) in
  (* Interpret both predicates over their own (isomorphic) spaces via
     state sets. *)
  let states sp si = List.map Array.to_list (Space.states_of sp si) in
  let set1 = states sp1 si1 and set2 = states sp2 si2 in
  (* init₂'s states are a subset of init₁'s *)
  let init1 = states sp1 (Kbp.init kbp1) and init2 = states sp2 (Kbp.init kbp2) in
  Alcotest.(check bool) "init₂ ⇒ init₁" true
    (List.for_all (fun st -> List.mem st init1) init2);
  (* ... and yet SI₂ ⊄ SI₁ *)
  Alcotest.(check bool) "SI₂ ⇏ SI₁ (non-monotonic!)" false
    (List.for_all (fun st -> List.mem st set1) set2)

let test_figure2_iteration_converges () =
  let _, _, _, _, kbp = figure2 (fun ~x:_ ~y -> Expr.(not_ (var y))) in
  match Kbp.iterate kbp with
  | Kbp.Converged { si; _ } ->
      let sols = Kbp.solutions kbp in
      Alcotest.(check bool) "iterate finds the unique solution" true
        (Pred.equivalent (Kbp.space kbp) si (List.hd sols))
  | _ -> Alcotest.fail "figure 2 iteration should converge"

let test_standard_kbp_agrees_with_program () =
  (* A KBP with no knowledge guards has exactly one solution: the SI of
     the corresponding standard program. *)
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:2 in
  let p0 = Process.make "P0" [ x ] in
  let s =
    Kbp.kstmt ~name:"inc"
      ~guard:(Kform.base Expr.(var x <<< nat 2))
      [ (x, Expr.(var x +! nat 1)) ]
  in
  let kbp = Kbp.make sp ~name:"std" ~init:Expr.(var x === nat 0) ~processes:[ p0 ] [ s ] in
  Alcotest.(check bool) "is_standard" true (Kbp.is_standard kbp);
  let sols = Kbp.solutions kbp in
  Alcotest.(check int) "unique solution" 1 (List.length sols);
  let direct =
    Program.make sp ~name:"direct" ~init:Expr.(var x === nat 0)
      [ Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 2) [ (x, Expr.(var x +! nat 1)) ] ]
  in
  Alcotest.(check bool) "solution = standard SI" true
    (Pred.equivalent sp (List.hd sols) (Program.si direct));
  match Kbp.iterate kbp with
  | Kbp.Converged { si; _ } ->
      Alcotest.(check bool) "iterate agrees" true (Pred.equivalent sp si (Program.si direct))
  | _ -> Alcotest.fail "standard KBP must converge"

let test_instantiate_guards () =
  (* Instantiating figure 1 at SI = {00} must enable s0 at the initial
     state (P0 knows ¬x when all possible worlds satisfy ¬x). *)
  let sp, kbp = figure1 () in
  let s00 = Space.pred_of_state sp [| 0; 0 |] in
  let prog = Kbp.instantiate kbp ~si:s00 in
  let s0 = List.find (fun s -> Stmt.name s = "s0") (Program.statements prog) in
  Alcotest.(check bool) "s0 enabled at 00 under SI={00}" true
    (Space.holds_at sp (Stmt.guard_pred sp s0) [| 0; 0 |]);
  (* ... and disabled there under SI = {00,10,01}. *)
  let m = Space.manager sp in
  let si3 =
    Bdd.disj m
      [ s00; Space.pred_of_state sp [| 1; 0 |]; Space.pred_of_state sp [| 0; 1 |] ]
  in
  let prog3 = Kbp.instantiate kbp ~si:si3 in
  let s0' = List.find (fun s -> Stmt.name s = "s0") (Program.statements prog3) in
  Alcotest.(check bool) "s0 disabled at 00 under larger SI" false
    (Space.holds_at sp (Stmt.guard_pred sp s0') [| 0; 0 |])

let test_pp_smoke () =
  let _, kbp = figure1 () in
  let s = Format.asprintf "%a" Kbp.pp kbp in
  Alcotest.(check bool) "pp nonempty" true (String.length s > 40)

(* ---- equivalence of the cached Kbp internals against naive rebuilds ---- *)

(* Reference instantiation built from the public kstmt syntax with no
   shared statement caches: every statement is made from scratch. *)
let naive_instantiate kbp ~si =
  let sp = Kbp.space kbp in
  let lookup pname = List.find (fun p -> Process.name p = pname) (Kbp.processes kbp) in
  let stmts =
    List.map
      (fun (s : Kbp.kstmt) ->
        let g = Kform.compile sp ~lookup ~si s.kguard in
        Stmt.with_guard_pred (Stmt.make ~name:s.kname s.kassigns) g)
      (Kbp.kstmts kbp)
  in
  Program.make_with_init_pred sp ~name:(Kbp.name kbp) ~init:(Kbp.init kbp)
    ~processes:(Kbp.processes kbp) stmts

let naive_g kbp x = Pred.normalize (Kbp.space kbp) (Program.si (naive_instantiate kbp ~si:x))

let example_kbps () =
  [
    snd (figure1 ());
    (let _, _, _, _, k = figure2 (fun ~x:_ ~y -> Expr.(not_ (var y))) in
     k);
    (let _, _, _, _, k = figure2 (fun ~x ~y -> Expr.(not_ (var y) &&& var x)) in
     k);
  ]

let test_g_operator_naive_equiv () =
  List.iter
    (fun kbp ->
      let sp = Kbp.space kbp in
      let st = Helpers.rng () in
      for _ = 1 to 12 do
        let x = Pred.random st sp in
        let opt = try Ok (Kbp.g_operator kbp x) with Program.Ill_formed _ -> Error () in
        let ref_ = try Ok (naive_g kbp x) with Program.Ill_formed _ -> Error () in
        match (opt, ref_) with
        | Ok g1, Ok g2 ->
            Alcotest.(check bool) "Ĝ = naive Ĝ" true (Bdd.equal g1 g2)
        | Error (), Error () -> ()
        | _ -> Alcotest.fail "Ĝ and naive Ĝ disagree on instantiation failure"
      done)
    (example_kbps ())

let naive_iterate ?(max_steps = 10_000) kbp =
  let sp = Kbp.space kbp in
  let seen = Hashtbl.create 64 in
  let rec go x steps trail =
    if steps > max_steps then invalid_arg "naive_iterate";
    let x' = naive_g kbp x in
    if Bdd.equal x' x then Kbp.Converged { si = x; steps }
    else if Hashtbl.mem seen (Bdd.uid x') then
      let rec upto acc = function
        | [] -> acc
        | y :: rest -> if Bdd.equal y x' then y :: acc else upto (y :: acc) rest
      in
      Kbp.Diverged { orbit = upto [] trail; steps }
    else begin
      Hashtbl.add seen (Bdd.uid x') ();
      go x' (steps + 1) (x' :: trail)
    end
  in
  let x0 = Pred.normalize sp (Kbp.init kbp) in
  Hashtbl.add seen (Bdd.uid x0) ();
  go x0 0 [ x0 ]

let test_iterate_naive_equiv () =
  List.iter
    (fun kbp ->
      let same =
        match (Kbp.iterate kbp, naive_iterate kbp) with
        | Kbp.Converged { si = x; steps = n }, Kbp.Converged { si = y; steps = k } ->
            n = k && Bdd.equal x y
        | Kbp.Diverged { orbit = xs; _ }, Kbp.Diverged { orbit = ys; _ } ->
            List.length xs = List.length ys && List.for_all2 Bdd.equal xs ys
        | _ -> false
      in
      Alcotest.(check bool) "iterate = naive iterate" true same)
    (example_kbps ())

(* Brute-force all candidate invariants over the whole (small) space: the
   fixpoints of the naive Ĝ must be exactly Kbp.solutions. *)
let brute_solutions kbp =
  let sp = Kbp.space kbp in
  let m = Space.manager sp in
  let all = ref [] in
  Space.iter_states sp (fun st -> all := Array.copy st :: !all);
  let states = Array.of_list !all in
  let n = Array.length states in
  let found = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let x = ref (Bdd.fls m) in
    for b = 0 to n - 1 do
      if (mask lsr b) land 1 = 1 then x := Bdd.or_ m !x (Space.pred_of_state sp states.(b))
    done;
    let candidate = Pred.normalize sp !x in
    match naive_g kbp candidate with
    | gx -> if Bdd.equal gx candidate then found := candidate :: !found
    | exception Program.Ill_formed _ -> ()
  done;
  List.sort_uniq (fun a b -> compare (Bdd.uid a) (Bdd.uid b)) !found

let test_solutions_naive_equiv () =
  List.iter
    (fun kbp ->
      let sols = Kbp.solutions kbp in
      let brute = brute_solutions kbp in
      Alcotest.(check int) "same number of solutions" (List.length brute) (List.length sols);
      List.iter
        (fun s ->
          Alcotest.(check bool) "solution found by brute force" true
            (List.exists (Bdd.equal s) brute))
        sols)
    (example_kbps ())

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "is_standard" `Quick test_is_standard;
    Alcotest.test_case "FIGURE 1: no solution exists" `Quick test_figure1_no_solution;
    Alcotest.test_case "FIGURE 1: iteration cycles" `Quick test_figure1_iteration_cycles;
    Alcotest.test_case "FIGURE 1: Ĝ hand values" `Quick test_figure1_g_operator_hand_values;
    Alcotest.test_case "FIGURE 2: SI under weak init" `Quick test_figure2_solution_weak_init;
    Alcotest.test_case "FIGURE 2: SI under strong init" `Quick test_figure2_solution_strong_init;
    Alcotest.test_case "FIGURE 2: non-monotonicity" `Quick test_figure2_nonmonotonicity;
    Alcotest.test_case "FIGURE 2: iteration converges" `Quick test_figure2_iteration_converges;
    Alcotest.test_case "standard KBP = standard program" `Quick
      test_standard_kbp_agrees_with_program;
    Alcotest.test_case "instantiation of guards" `Quick test_instantiate_guards;
    Alcotest.test_case "Ĝ = naive Ĝ" `Quick test_g_operator_naive_equiv;
    Alcotest.test_case "iterate = naive iterate" `Quick test_iterate_naive_equiv;
    Alcotest.test_case "solutions = brute force" `Quick test_solutions_naive_equiv;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
