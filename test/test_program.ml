open Kpt_predicate
open Kpt_unity

(* The paper's §5 example: nondeterministic bubble sort
   ⟨ □ i : 0 ≤ i < n : x[i], x[i+1] := x[i+1], x[i] if x[i] > x[i+1] ⟩
   reaching a fixed point when the array is sorted. *)
let bubble_sort n maxv =
  let sp = Space.create () in
  let arr = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:maxv) in
  let stmts =
    List.init (n - 1) (fun i ->
        Stmt.make
          ~name:(Printf.sprintf "swap%d" i)
          ~guard:Expr.(var arr.(i) >>> var arr.(i + 1))
          [ (arr.(i), Expr.var arr.(i + 1)); (arr.(i + 1), Expr.var arr.(i)) ])
  in
  (sp, arr, stmts)

let test_make_validation () =
  let sp, _, _ = bubble_sort 3 2 in
  Alcotest.check_raises "empty statements"
    (Program.Ill_formed "program empty: empty statement list") (fun () ->
      ignore (Program.make sp ~name:"empty" ~init:Expr.tru []));
  let x0 = Space.find sp "x0" in
  let bad = Stmt.make ~name:"over" [ (x0, Expr.(var x0 +! nat 1)) ] in
  (try
     ignore (Program.make sp ~name:"p" ~init:Expr.tru [ bad ]);
     Alcotest.fail "expected totality rejection"
   with Program.Ill_formed msg ->
     Alcotest.(check bool) "totality message" true
       (String.length msg > 0 && String.sub msg 0 9 = "program p"));
  let ok = Stmt.make ~name:"noop" [ (x0, Expr.var x0) ] in
  Alcotest.check_raises "unsat init"
    (Program.Ill_formed "program q: unsatisfiable initial condition") (fun () ->
      ignore (Program.make sp ~name:"q" ~init:Expr.fls [ ok ]))

let test_bubble_sort_si () =
  let sp, arr, stmts = bubble_sort 3 2 in
  (* Start from the specific array [2; 1; 0]. *)
  let init =
    Expr.conj (List.init 3 (fun k -> Expr.(var arr.(k) === nat (2 - k))))
  in
  let prog = Program.make sp ~name:"bsort" ~init stmts in
  let si = Program.si prog in
  (* Reachable states are exactly the permutations of {0,1,2}: swapping
     preserves the multiset. *)
  let reachable = Space.states_of sp si in
  (* From [2;1;0] adjacent swaps reach every permutation of {0,1,2}. *)
  Alcotest.(check int) "all six permutations reachable" 6 (List.length reachable);
  List.iter
    (fun st ->
      let values = List.sort compare (Array.to_list (Array.sub st 0 3)) in
      Alcotest.(check (list int)) "permutation of 0,1,2" [ 0; 1; 2 ] values)
    reachable

let test_bubble_sort_fixed_point () =
  let sp, arr, stmts = bubble_sort 3 2 in
  let init = Expr.conj (List.init 3 (fun k -> Expr.(var arr.(k) === nat (2 - k)))) in
  let prog = Program.make sp ~name:"bsort" ~init stmts in
  let m = Space.manager sp in
  let fp = Program.fixed_points prog in
  (* Fixed points of the program are exactly the sorted arrays. *)
  let sorted =
    Bdd.and_ m
      (Expr.compile_bool sp Expr.(var arr.(0) <== var arr.(1)))
      (Expr.compile_bool sp Expr.(var arr.(1) <== var arr.(2)))
  in
  Alcotest.(check bool) "fixed points = sorted" true (Pred.equivalent sp fp sorted);
  (* The sorted permutation of the initial array is reachable. *)
  let target = Expr.conj (List.init 3 (fun k -> Expr.(var arr.(k) === nat k))) in
  let target_p = Expr.compile_bool sp target in
  Alcotest.(check bool) "sorted state reachable" false
    (Bdd.is_false (Bdd.and_ m (Program.si prog) target_p))

let test_sp_pred_is_union () =
  let sp, _, stmts = bubble_sort 3 2 in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru stmts in
  let st0 = Helpers.rng () in
  let m = Space.manager sp in
  for _ = 1 to 10 do
    let p = Pred.random st0 sp in
    let union =
      List.fold_left (fun acc s -> Bdd.or_ m acc (Stmt.sp sp s p)) (Bdd.fls m) stmts
    in
    Alcotest.(check bool) "SP = ∨ sp.s" true (Pred.equivalent sp (Program.sp_pred prog p) union)
  done

let test_stable () =
  let sp, arr, stmts = bubble_sort 3 2 in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru stmts in
  (* "x0 is the minimum" is stable under bubble sort once x0 ≤ x1 ∧ x0 ≤ x2. *)
  let minp =
    Expr.compile_bool sp Expr.((var arr.(0) <== var arr.(1)) &&& (var arr.(0) <== var arr.(2)))
  in
  Alcotest.(check bool) "min-at-0 stable" true (Program.stable prog minp);
  let eq0 = Expr.compile_bool sp Expr.(var arr.(0) === nat 2) in
  Alcotest.(check bool) "x0=2 not stable" false (Program.stable prog eq0)

(* sst properties (eqs. 2–4): existence/uniqueness come from the fixpoint;
   check p ⇒ sst.p, stability of sst.p, strength (sst.p is contained in any
   stable q weaker than p), and monotonicity — for standard programs. *)
let test_sst_properties () =
  let sp, _, stmts = bubble_sort 3 2 in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru stmts in
  let st0 = Helpers.rng () in
  let m = Space.manager sp in
  for _ = 1 to 15 do
    let p = Pred.random st0 sp in
    let s = Program.sst prog p in
    Alcotest.(check bool) "p ⇒ sst.p" true (Pred.holds_implies sp p s);
    Alcotest.(check bool) "sst.p stable" true (Program.stable prog s);
    (* minimality against a random stable superset *)
    let q = Bdd.or_ m p (Pred.random st0 sp) in
    let qs = Program.sst prog q in
    Alcotest.(check bool) "sst monotone (eq. 4)" true (Pred.holds_implies sp s qs)
  done

let test_si_invariant () =
  let sp, arr, stmts = bubble_sort 3 2 in
  let init = Expr.conj (List.init 3 (fun k -> Expr.(var arr.(k) === nat (2 - k)))) in
  let prog = Program.make sp ~name:"bsort" ~init stmts in
  (* multiset preservation as an invariant: the count of each value is 1 *)
  let perm =
    Expr.conj
      (List.init 3 (fun v ->
           Expr.disj
             (List.init 3 (fun k -> Expr.(var arr.(k) === nat v)))))
  in
  Alcotest.(check bool) "invariant permutation" true
    (Program.invariant prog (Expr.compile_bool sp perm));
  Alcotest.(check bool) "x0=0 not invariant" false
    (Program.invariant prog (Expr.compile_bool sp Expr.(var arr.(0) === nat 0)));
  (* init ⇒ SI and SI stable *)
  Alcotest.(check bool) "init ⇒ SI" true (Pred.holds_implies sp (Program.init prog) (Program.si prog));
  Alcotest.(check bool) "SI stable" true (Program.stable prog (Program.si prog))

(* Reference implementation of sst: the full-set Kleene iteration
   x' = p ∨ x ∨ SP.x that the frontier-based Program.sst replaced.  Both
   compute the same least fixpoint, and BDDs are canonical, so the results
   must be the identical node. *)
let naive_sst prog p =
  let sp = Program.space prog in
  let m = Space.manager sp in
  let p = Pred.normalize sp p in
  let rec go x =
    let x' = Bdd.or_ m p (Bdd.or_ m x (Program.sp_pred prog x)) in
    if Bdd.equal x x' then x else go x'
  in
  go (Bdd.fls m)

let test_frontier_sst_equals_naive () =
  let sp, _, stmts = bubble_sort 3 2 in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru stmts in
  let st0 = Helpers.rng () in
  let m = Space.manager sp in
  Alcotest.(check bool) "sst false" true
    (Bdd.equal (Program.sst prog (Bdd.fls m)) (naive_sst prog (Bdd.fls m)));
  for _ = 1 to 20 do
    let p = Pred.random st0 sp in
    Alcotest.(check bool) "frontier sst = full-set Kleene sst" true
      (Bdd.equal (Program.sst prog p) (naive_sst prog p))
  done

let test_trans_cache () =
  let sp, arr, stmts = bubble_sort 3 2 in
  (* memoised: repeated calls return the very same relation *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "trans physically cached" true (Stmt.trans sp s == Stmt.trans sp s))
    stmts;
  (* ... and agree with freshly built identical statements *)
  let fresh =
    List.init 2 (fun i ->
        Stmt.make
          ~name:(Printf.sprintf "swap%d'" i)
          ~guard:Expr.(var arr.(i) >>> var arr.(i + 1))
          [ (arr.(i), Expr.var arr.(i + 1)); (arr.(i + 1), Expr.var arr.(i)) ])
  in
  let st0 = Helpers.rng () in
  List.iter2
    (fun s f ->
      Alcotest.(check bool) "cached trans = fresh trans" true
        (Bdd.equal (Stmt.trans sp s) (Stmt.trans sp f));
      for _ = 1 to 8 do
        let p = Pred.random st0 sp in
        Alcotest.(check bool) "cached post-image = fresh post-image" true
          (Bdd.equal (Stmt.sp sp s p) (Stmt.sp sp f p))
      done)
    stmts fresh;
  (* with_guard_pred shares the assignment relation but recompiles the
     guard: the derived statement's relation must equal one built from
     scratch with the same guard *)
  let m = Space.manager sp in
  let g = Expr.compile_bool sp Expr.(var arr.(0) === nat 0) in
  List.iter2
    (fun s f ->
      let s' = Stmt.with_guard_pred s g in
      let f' = Stmt.with_guard_pred f g in
      Alcotest.(check bool) "with_guard_pred trans equal" true
        (Bdd.equal (Stmt.trans sp s') (Stmt.trans sp f'));
      (* the original statement's own relation is unaffected *)
      Alcotest.(check bool) "original trans unchanged" true
        (Bdd.equal (Stmt.trans sp s) (Stmt.trans sp f)))
    stmts fresh;
  ignore m

let test_find_process () =
  let sp, arr, stmts = bubble_sort 3 2 in
  let pr = Process.make "sorter" [ arr.(0); arr.(1) ] in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru ~processes:[ pr ] stmts in
  Alcotest.(check string) "find_process" "sorter" (Process.name (Program.find_process prog "sorter"));
  Alcotest.(check bool) "can_access" true (Process.can_access pr arr.(0));
  Alcotest.(check bool) "cannot access" false (Process.can_access pr arr.(2))

let test_pp_smoke () =
  let sp, _, stmts = bubble_sort 3 2 in
  let prog = Program.make sp ~name:"bsort" ~init:Expr.tru stmts in
  let s = Format.asprintf "%a" Program.pp prog in
  Alcotest.(check bool) "pp nonempty" true (String.length s > 20)

(* the Chandy–Misra union theorem, semantically *)
let test_union_theorem () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let y = Space.nat_var sp "y" ~max:3 in
  let f =
    Program.make sp ~name:"F" ~init:Expr.(var x === nat 0)
      [ Stmt.make ~name:"fx" ~guard:Expr.(var x <<< nat 3) [ (x, Expr.(var x +! nat 1)) ] ]
  in
  let g =
    Program.make sp ~name:"G" ~init:Expr.(var y === nat 0)
      [ Stmt.make ~name:"gy" ~guard:Expr.(var y <<< nat 3) [ (y, Expr.(var y +! nat 1)) ] ]
  in
  let fg = Program.union f g in
  Alcotest.(check int) "statements unioned" 2 (List.length (Program.statements fg));
  Alcotest.(check bool) "init conjoined" true
    (Pred.equivalent sp (Program.init fg)
       (Expr.compile_bool sp Expr.(var x === nat 0 &&& (var y === nat 0))));
  (* union theorem: unless in F∥G iff unless in F and in G — over SI of the
     union, so relativise via the union's reachable states.  We check the
     classical formulation on predicates over the union's SI. *)
  let st = Helpers.rng () in
  let m = Space.manager sp in
  for _ = 1 to 10 do
    let p = Pred.random st sp and q = Pred.random st sp in
    (* restrict attention to the union's invariant so all three checkers
       quantify over the same worlds *)
    let si = Program.si fg in
    let p = Bdd.and_ m p si and q = Bdd.and_ m q si in
    let in_union = Kpt_logic.Props.unless fg p q in
    (* Chandy–Misra state the theorem with SI-free unless; our checkers use
       each program's own SI, which is weaker for F and G, so the union
       theorem direction that is unconditionally valid semantically is:
       unless in both (w.r.t. their SIs ⊇ union SI) ⇒ unless in union. *)
    let in_f = Kpt_logic.Props.unless f p q in
    let in_g = Kpt_logic.Props.unless g p q in
    if in_f && in_g then
      Alcotest.(check bool) "unless compositional (⇐)" true in_union
  done;
  (* and a concrete instance of the interesting direction *)
  let p = Expr.compile_bool sp Expr.(var x === nat 1) in
  let q = Expr.compile_bool sp Expr.(var x === nat 2) in
  Alcotest.(check bool) "x=1 unless x=2 in F" true (Kpt_logic.Props.unless f p q);
  Alcotest.(check bool) "x=1 unless x=2 in G (x untouched)" true (Kpt_logic.Props.unless g p q);
  Alcotest.(check bool) "x=1 unless x=2 in F∥G" true (Kpt_logic.Props.unless fg p q)

let test_union_validation () =
  let sp1 = Space.create () in
  let x1 = Space.nat_var sp1 "x" ~max:1 in
  let sp2 = Space.create () in
  let x2 = Space.nat_var sp2 "x" ~max:1 in
  let f =
    Program.make sp1 ~name:"F" ~init:Expr.tru
      [ Stmt.make ~name:"s" [ (x1, Expr.var x1) ] ]
  in
  let g =
    Program.make sp2 ~name:"G" ~init:Expr.tru
      [ Stmt.make ~name:"s" [ (x2, Expr.var x2) ] ]
  in
  Alcotest.check_raises "different spaces rejected"
    (Program.Ill_formed "union: F and G live in different spaces") (fun () ->
      ignore (Program.union f g))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "bubble sort SI" `Quick test_bubble_sort_si;
    Alcotest.test_case "bubble sort fixed points" `Quick test_bubble_sort_fixed_point;
    Alcotest.test_case "SP is union of sp" `Quick test_sp_pred_is_union;
    Alcotest.test_case "stable" `Quick test_stable;
    Alcotest.test_case "sst properties (eqs. 2-4)" `Quick test_sst_properties;
    Alcotest.test_case "SI and invariants" `Quick test_si_invariant;
    Alcotest.test_case "frontier sst = naive sst" `Quick test_frontier_sst_equals_naive;
    Alcotest.test_case "transition-relation cache" `Quick test_trans_cache;
    Alcotest.test_case "processes" `Quick test_find_process;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "union theorem" `Quick test_union_theorem;
    Alcotest.test_case "union validation" `Quick test_union_validation;
  ]
