(* Seeded property-based suite: the paper's algebraic laws checked on
   randomly generated small UNITY programs, predicates and variable
   partitions.

   - S5 axioms of K_i (eqs. 14-18)
   - junctivity laws of K_i (eqs. 19-24)
   - the weakest-cylinder laws behind them (eq. 6: strengthening,
     idempotence, cylinder-hood, universal conjunctivity)

   Every random draw flows from the shared SplitMix64 PRNG
   ([Kpt_gen.Rng] — the same seed discipline the corpus generator and
   difftest use), so a failure is replayable bit-for-bit: the error
   message prints the seed and the case number, and

     KPT_PROP_SEED=<seed> KPT_PROP_CASES=<n> dune runtest

   reruns the identical sequence.  KPT_PROP_CASES scales the depth: the
   default is 200 cases per law; the `fuzz-smoke` alias runs the same
   laws with a larger budget. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

(* the hand-rolled splitmix64 that used to live here, promoted to the
   generator library and shared with the corpus pipeline *)
module Sm64 = Kpt_gen.Rng

let seed =
  match Option.map Kpt_gen.Rng.seed_of_string (Sys.getenv_opt "KPT_PROP_SEED") with
  | Some (Some s) -> s
  | _ -> 0x5EED_2026L

let cases =
  match Option.map int_of_string_opt (Sys.getenv_opt "KPT_PROP_CASES") with
  | Some (Some n) when n > 0 -> n
  | _ -> 200

let failf case fmt =
  Format.kasprintf
    (fun msg ->
      Alcotest.failf "%s@.  (case %d of %d; %s)" msg case cases
        (Helpers.replay_banner ~env_var:"KPT_PROP_SEED" ~seed
           ~extra:[ ("KPT_PROP_CASES", string_of_int cases) ]
           ()))
    fmt

let checkf case cond fmt =
  Format.kasprintf (fun msg -> if not cond then failf case "%s" msg) fmt

(* ---- random scenarios ------------------------------------------------------- *)

type scenario = {
  sp : Space.t;
  vars : Space.var list;
  prog : Program.t;
  procs : Process.t list;  (* two processes partitioning the variables *)
  rs : Random.State.t;  (* for Pred.random *)
}

(* a random Boolean expression over the declared variables *)
let rec bool_expr g sp vars depth =
  let leaf () =
    let v = List.nth vars (Sm64.int g (List.length vars)) in
    match Space.card v with
    | 2 when Space.width v = 1 && Space.value_name v 1 = "true" -> Expr.var v
    | card ->
        let k = Expr.nat (Sm64.int g card) in
        if Sm64.bool g then Expr.(var v === k) else Expr.(var v <== k)
  in
  if depth = 0 then
    match Sm64.int g 6 with 0 -> Expr.tru | 1 -> Expr.fls | _ -> leaf ()
  else
    let sub () = bool_expr g sp vars (depth - 1) in
    match Sm64.int g 5 with
    | 0 -> Expr.(sub () &&& sub ())
    | 1 -> Expr.(sub () ||| sub ())
    | 2 -> Expr.(sub () ==> sub ())
    | 3 -> Expr.not_ (sub ())
    | _ -> leaf ()

(* a range-safe right-hand side for an assignment to [v]: constants,
   the variable itself, saturating decrement, or a guarded choice of
   in-range values — never anything that could overflow the type (the
   [Program.make] totality check would reject it) *)
let rhs_expr g sp vars v =
  let card = Space.card v in
  let const () = Expr.nat (Sm64.int g card) in
  if Space.value_name v 1 = "true" && card = 2 then
    match Sm64.int g 4 with
    | 0 -> Expr.tru
    | 1 -> Expr.fls
    | 2 -> Expr.not_ (Expr.var v)
    | _ -> bool_expr g sp vars 1
  else
    match Sm64.int g 4 with
    | 0 -> const ()
    | 1 -> Expr.var v
    | 2 -> Expr.(var v -! nat 1)
    | _ -> Expr.Ite (bool_expr g sp vars 1, const (), const ())

let scenario g =
  let sp = Space.create () in
  (* Fuzz the laws under dynamic reordering: an aggressive threshold makes
     sifting fire many times within each scenario, so every law is checked
     across order changes, not just under the static order (which the rest
     of the suite already covers). *)
  Bdd.set_auto_reorder (Space.manager sp) ~threshold:500 true;
  let nvars = 2 + Sm64.int g 3 in
  let vars =
    List.init nvars (fun i ->
        let name = Printf.sprintf "v%d" i in
        if Sm64.int g 3 < 2 then Space.bool_var sp name
        else Space.nat_var sp name ~max:(1 + Sm64.int g 2))
  in
  (* partition the variables over two processes; a variable may be
     shared, and each process sees at least one variable *)
  let assign_to = List.map (fun v -> (v, Sm64.int g 3)) vars in
  let pick side =
    match List.filter_map (fun (v, s) -> if s = side || s = 2 then Some v else None) assign_to with
    | [] -> [ List.nth vars (Sm64.int g nvars) ]
    | vs -> vs
  in
  let p0 = Process.make "P0" (pick 0) in
  let p1 = Process.make "P1" (pick 1) in
  let nstmts = 1 + Sm64.int g 3 in
  let stmts =
    List.init nstmts (fun i ->
        let t = List.nth vars (Sm64.int g nvars) in
        let guard = bool_expr g sp vars 2 in
        Stmt.make ~name:(Printf.sprintf "s%d" i) ~guard [ (t, rhs_expr g sp vars t) ])
  in
  let init =
    let e = bool_expr g sp vars 2 in
    if Bdd.is_false (Pred.normalize sp (Expr.compile_bool sp e)) then Expr.tru else e
  in
  let prog = Program.make sp ~name:"rand" ~init ~processes:[ p0; p1 ] stmts in
  { sp; vars; prog; procs = [ p0; p1 ]; rs = Sm64.random_state g }

(* a valid-over-the-space but structurally nontrivial predicate, for
   exercising necessitation (18): domain ∨ p covers every type-correct
   state (so it is [Pred.valid]) without being the constant true BDD
   whenever some variable has a non-power-of-two domain *)
let valid_pred s =
  Bdd.or_ (Space.manager s.sp) (Space.domain s.sp) (Pred.random s.rs s.sp)

(* ---- the laws ---------------------------------------------------------------- *)

let with_cases f () =
  let g = Sm64.make seed in
  for case = 1 to cases do
    f case g
  done

(* S5 axioms, eqs. 14-18 *)
let test_s5 =
  with_cases @@ fun case g ->
  let s = scenario g in
  let m = Space.manager s.sp in
  let proc = if Sm64.bool g then "P0" else "P1" in
  let k = Knowledge.knows_in s.prog proc in
  let p = Pred.random s.rs s.sp and q = Pred.random s.rs s.sp in
  checkf case (Pred.holds_implies s.sp (k p) p) "(14) K %s p ⇒ p" proc;
  let lhs = Bdd.and_ m (k p) (k (Bdd.imp m p q)) in
  checkf case (Pred.holds_implies s.sp lhs (k q)) "(15) K p ∧ K(p⇒q) ⇒ K q";
  checkf case (Pred.equivalent s.sp (k p) (k (k p))) "(16) K p ≡ K K p";
  checkf case
    (Pred.equivalent s.sp (Bdd.not_ m (k p)) (k (Bdd.not_ m (k p))))
    "(17) ¬K p ≡ K ¬K p";
  let v = valid_pred s in
  checkf case (Pred.valid s.sp v && Pred.valid s.sp (k v)) "(18) [p] ⇒ [K p]"

(* junctivity of K_i, eqs. 19-22 *)
let test_junctivity =
  with_cases @@ fun case g ->
  let s = scenario g in
  let m = Space.manager s.sp in
  let proc = if Sm64.bool g then "P0" else "P1" in
  let k = Knowledge.knows_in s.prog proc in
  let p = Pred.random s.rs s.sp and q = Pred.random s.rs s.sp in
  (* (19) monotonicity, on the guaranteed pair p∧q ⇒ p *)
  checkf case
    (Pred.holds_implies s.sp (k (Bdd.and_ m p q)) (k p))
    "(19) p ⇒ q gives K p ⇒ K q";
  (* (21) universal conjunctivity: binary meet (the empty meet is (18)) *)
  checkf case
    (Pred.equivalent s.sp (Bdd.and_ m (k p) (k q)) (k (Bdd.and_ m p q)))
    "(21) K p ∧ K q ≡ K (p ∧ q)";
  (* (22) K is not disjunctive in general, but the ⇒ direction is a law *)
  checkf case
    (Pred.holds_implies s.sp (Bdd.or_ m (k p) (k q)) (k (Bdd.or_ m p q)))
    "(22⇒) K p ∨ K q ⇒ K (p ∨ q)"

(* (20) anti-monotonicity in the invariant argument *)
let test_anti_monotone =
  with_cases @@ fun case g ->
  let s = scenario g in
  let m = Space.manager s.sp in
  let proc = List.nth s.procs (Sm64.int g 2) in
  let p = Pred.random s.rs s.sp in
  let si1 = Bdd.or_ m (Program.si s.prog) (Pred.random s.rs s.sp) in
  let si2 = Bdd.and_ m si1 (Pred.random s.rs s.sp) in
  let k1 = Knowledge.knows s.sp ~si:si1 proc p in
  let k2 = Knowledge.knows s.sp ~si:si2 proc p in
  checkf case
    (Pred.holds_implies s.sp (Bdd.and_ m si2 k1) k2)
    "(20) si' ⇒ si gives (si' ∧ K^si p) ⇒ K^si' p"

(* invariant correspondences, eqs. 23-24 *)
let test_invariant_laws =
  with_cases @@ fun case g ->
  let s = scenario g in
  let m = Space.manager s.sp in
  let pname = if Sm64.bool g then "P0" else "P1" in
  let k = Knowledge.knows_in s.prog pname in
  let p = Pred.random s.rs s.sp in
  checkf case
    (Program.invariant s.prog p = Program.invariant s.prog (k p))
    "(23) invariant p ≡ invariant K p";
  let pvars = Process.vars (Program.find_process s.prog pname) in
  let q = Wcyl.wcyl s.sp pvars (Pred.random s.rs s.sp) in
  checkf case
    (Program.invariant s.prog (Bdd.imp m q p)
    = Program.invariant s.prog (Bdd.imp m q (k p)))
    "(24) invariant (q ⇒ p) ≡ invariant (q ⇒ K p) for local q"

(* the weakest cylinder, eq. 6: strengthening, idempotence, cylinder-hood,
   universal conjunctivity — on random variable subsets of random spaces *)
let test_wcyl_laws =
  with_cases @@ fun case g ->
  let s = scenario g in
  let m = Space.manager s.sp in
  let vs = List.filter (fun _ -> Sm64.bool g) s.vars in
  let p = Pred.random s.rs s.sp and q = Pred.random s.rs s.sp in
  let w = Wcyl.wcyl s.sp vs p in
  checkf case (Pred.holds_implies s.sp w p) "(6) wcyl V p ⇒ p";
  checkf case (Pred.equivalent s.sp (Wcyl.wcyl s.sp vs w) w) "wcyl idempotent";
  checkf case (Wcyl.is_cylinder s.sp vs w) "wcyl V p depends only on V";
  checkf case
    (Pred.equivalent s.sp
       (Wcyl.wcyl s.sp vs (Bdd.and_ m p q))
       (Bdd.and_ m (Wcyl.wcyl s.sp vs p) (Wcyl.wcyl s.sp vs q)))
    "(11) wcyl universally conjunctive";
  (* a predicate already cylindrical on V is a fixpoint (property 9) *)
  checkf case (Pred.equivalent s.sp (Wcyl.wcyl s.sp s.vars p) p) "wcyl over all vars = id"

let suite =
  [
    Alcotest.test_case "(14)-(18) S5 axioms on random programs" `Quick test_s5;
    Alcotest.test_case "(19),(21),(22) junctivity on random programs" `Quick test_junctivity;
    Alcotest.test_case "(20) anti-monotone in SI on random programs" `Quick test_anti_monotone;
    Alcotest.test_case "(23),(24) invariant correspondences" `Quick test_invariant_laws;
    Alcotest.test_case "(6),(9),(11) weakest-cylinder laws" `Quick test_wcyl_laws;
  ]
