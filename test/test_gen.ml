(* The corpus generator ([Kpt_gen]): the PRNG's position-addressed
   determinism, the generator's same-seed/same-corpus and prefix
   contracts, the unparser round-trip on generated programs, the
   manifest codec, and — the budget satellites — one seeded case per
   solve-outcome class (converged / diverged-orbit / budget-exhausted),
   with exhaustion pinned non-sticky across driver requests. *)

module Rng = Kpt_gen.Rng
module Gen = Kpt_gen.Gen
module Family = Kpt_gen.Family
module Mutate = Kpt_syntax.Mutate

let seed =
  match Option.map Rng.seed_of_string (Sys.getenv_opt "KPT_GEN_SEED") with
  | Some (Some s) -> s
  | _ -> 0x5EED_2026L

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let failf fmt =
  Format.kasprintf
    (fun msg ->
      Alcotest.failf "%s@.  (%s)" msg
        (Helpers.replay_banner ~env_var:"KPT_GEN_SEED" ~seed ()))
    fmt

(* a small, fast configuration the tests share *)
let small_config =
  {
    Gen.families = [ "ring"; "relay"; "antiknow"; "soup" ];
    sizes = [ 1; 2 ];
    faults = [ Gen.Fnone; Gen.Floss; Gen.Fstutter ];
    budgets = [ Gen.Bnone; Gen.Bfuel 4 ];
    count = 24;
    seed;
  }

(* ---- the PRNG --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.make 42L and b = Rng.make 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.next a) (Rng.next b)
  done;
  (* position addressing: stream [i] is independent of who else drew *)
  let direct = Rng.next (Rng.derive 42L 7) in
  let g = Rng.derive 42L 3 in
  ignore (Rng.next g);
  Alcotest.(check int64) "derive is position-addressed" direct
    (Rng.next (Rng.derive 42L 7));
  Alcotest.(check bool) "sibling streams differ" false
    (Int64.equal (Rng.next (Rng.derive 42L 0)) (Rng.next (Rng.derive 42L 1)))

let test_rng_ranges () =
  let g = Rng.make seed in
  for _ = 1 to 1000 do
    let v = Rng.int g 7 in
    if v < 0 || v >= 7 then failf "Rng.int out of range: %d" v
  done;
  let xs = List.init 20 Fun.id in
  let shuffled = Rng.shuffle g xs in
  Alcotest.(check (list int)) "shuffle is a permutation" xs (List.sort compare shuffled)

let test_seed_strings () =
  List.iter
    (fun s ->
      match Rng.seed_of_string (Rng.seed_to_string s) with
      | Some s' -> Alcotest.(check int64) "seed round-trip" s s'
      | None -> failf "seed %Ld did not round-trip" s)
    [ 0L; 1L; -1L; 0x5EED_2026L; Int64.max_int; Int64.min_int ];
  Alcotest.(check (option int64)) "decimal accepted" (Some 42L) (Rng.seed_of_string "42");
  Alcotest.(check (option int64)) "bare hex accepted" (Some 0xabL) (Rng.seed_of_string "ab");
  Alcotest.(check (option int64)) "junk rejected" None (Rng.seed_of_string "zz")

(* ---- generator determinism --------------------------------------------------- *)

let test_same_seed_same_corpus () =
  let a = Gen.generate small_config and b = Gen.generate small_config in
  List.iter2
    (fun (x : Gen.instance) (y : Gen.instance) ->
      if not (String.equal x.source y.source) then
        failf "instance %d differs across identical runs" x.id;
      Alcotest.(check string) "same filename" x.filename y.filename;
      if x.expected <> y.expected then failf "instance %d envelope differs" x.id)
    a b

let test_count_prefix_property () =
  let full = Gen.generate small_config in
  let half = Gen.generate { small_config with count = 12 } in
  List.iteri
    (fun i (h : Gen.instance) ->
      let f = List.nth full i in
      if not (String.equal h.source f.Gen.source) then
        failf "count=12 instance %d differs from count=24 prefix (position addressing broke)"
          i)
    half

let test_seeds_diverge () =
  let a = Gen.generate { small_config with count = 4 } in
  let b = Gen.generate { small_config with count = 4; seed = Int64.add seed 1L } in
  if List.for_all2 (fun (x : Gen.instance) (y : Gen.instance) -> x.source = y.source) a b
  then failf "different seeds produced an identical corpus"

(* ---- well-formedness and the unparser round-trip ----------------------------- *)

let test_generated_specs_parse_and_roundtrip () =
  List.iter
    (fun (i : Gen.instance) ->
      match Kpt_syntax.Parser.program_of_string i.source with
      | exception e ->
          failf "instance %d (%s) does not parse: %s" i.id i.filename
            (Printexc.to_string e)
      | ast ->
          (* unparse → reparse → unparse is a fixpoint: [pp_program]
             output is stable concrete syntax *)
          let src2 = Mutate.to_source ast in
          let src3 = Mutate.to_source (Kpt_syntax.Parser.program_of_string src2) in
          if not (String.equal src2 src3) then
            failf "instance %d (%s): unparser round-trip is not a fixpoint" i.id
              i.filename)
    (Gen.generate small_config)

let test_grid_applicability () =
  let points = Gen.grid small_config in
  if
    List.exists
      (fun (fam, _, fault, _) -> fam = "ring" && fault = Gen.Floss)
      points
  then failf "loss offered for the channel-free ring family";
  if
    not
      (List.exists
         (fun (fam, _, fault, _) -> fam = "relay" && fault = Gen.Floss)
         points)
  then failf "loss missing for the relay family (it has wires)"

(* ---- manifest codec ---------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let config = { small_config with count = 6 } in
  let instances = Gen.generate config in
  let j = Json.of_string (Json.to_string (Gen.manifest_json config instances)) in
  let back = Gen.instances_of_manifest j in
  List.iter2
    (fun (a : Gen.instance) (b : Gen.instance) ->
      Alcotest.(check int) "id survives" a.id b.id;
      Alcotest.(check string) "family survives" a.family b.family;
      Alcotest.(check string) "file survives" a.filename b.filename;
      if a.fault <> b.fault then failf "fault did not survive the manifest";
      if a.budget <> b.budget then failf "budget did not survive the manifest";
      if a.expected <> b.expected then failf "envelope did not survive the manifest")
    instances back;
  let config' = Gen.config_of_manifest j in
  if config' <> config then failf "config did not survive the manifest";
  (* malformation is named, not a bare failure *)
  match Gen.instances_of_manifest (Json.Obj [ ("version", Json.Int 1) ]) with
  | exception Gen.Bad_manifest m ->
      Alcotest.(check bool) "message names the field" true
        (contains ~affix:"instances" m)
  | _ -> failf "truncated manifest accepted"

(* ---- solve-outcome classes (the budget satellite) ----------------------------- *)

let build_source family ~n =
  let fam = Option.get (Family.find family) in
  Mutate.to_source (fam.Family.build ~n (Rng.derive seed 0)).Family.ast

let verdict ?limits source =
  let limits = Option.value limits ~default:Gen.envelope_limits in
  Kpt_analysis.Difftest.check_verdict ~limits ~file:"case.unity" source

let test_class_converged () =
  (* the relay KBP's Ĝ-iteration converges: a well-posed knowledge guard *)
  let v = verdict (build_source "relay" ~n:2) in
  Alcotest.(check string) "relay class" "kbp_converged" v.Kpt_analysis.Difftest.klass;
  Alcotest.(check int) "relay exit" 0 v.Kpt_analysis.Difftest.exit_code

let test_class_diverged_orbit () =
  (* Figure 1's ill-posed guard: the chaotic iteration enters an orbit *)
  let v = verdict (build_source "antiknow" ~n:1) in
  Alcotest.(check string) "antiknow class" "kbp_cycle" v.Kpt_analysis.Difftest.klass

let test_class_budget_exhausted_and_non_sticky () =
  let source = build_source "ring" ~n:4 in
  let tight = Gen.limits_of_budget (Gen.Bfuel 1) in
  let v = verdict ~limits:tight source in
  Alcotest.(check string) "fuel 1 exhausts" "exhausted" v.Kpt_analysis.Difftest.klass;
  Alcotest.(check int) "exhaustion exit code" 3 v.Kpt_analysis.Difftest.exit_code;
  Alcotest.(check bool) "KPT041 reported" true
    (List.mem "KPT041" v.Kpt_analysis.Difftest.codes);
  (* non-sticky: the very next scoped request (fresh engine, fresh arm)
     under a generous budget must converge as if the exhaustion never
     happened — in both orders *)
  let v2 = verdict source in
  Alcotest.(check string) "exhaustion is non-sticky" "standard"
    v2.Kpt_analysis.Difftest.klass;
  Alcotest.(check int) "clean exit after exhaustion" 0 v2.Kpt_analysis.Difftest.exit_code;
  let v3 = verdict ~limits:tight source in
  Alcotest.(check string) "re-exhausts deterministically" "exhausted"
    v3.Kpt_analysis.Difftest.klass;
  if v <> v3 then failf "exhausted verdict is not deterministic across requests"

let test_envelope_matches_recheck () =
  (* the gen-time envelope IS what a later check reports — the manifest
     differential difftest replays, sampled here on a few instances *)
  List.iteri
    (fun i (inst : Gen.instance) ->
      if i < 6 then
        let v =
          Kpt_analysis.Difftest.check_verdict
            ~limits:(Gen.limits_of_budget inst.budget)
            ~file:inst.filename inst.source
        in
        if v <> inst.expected then
          failf "instance %d (%s): manifest envelope %s but re-check says %s" inst.id
            inst.filename
            (Kpt_analysis.Difftest.verdict_to_string inst.expected)
            (Kpt_analysis.Difftest.verdict_to_string v))
    (Gen.generate { small_config with count = 12 })

(* ---- the replay banner (shared convention) ----------------------------------- *)

let test_replay_banner_format () =
  Alcotest.(check string) "bare banner"
    "replay with KPT_GEN_SEED=0x2a dune runtest"
    (Helpers.replay_banner ~env_var:"KPT_GEN_SEED" ~seed:42L ());
  Alcotest.(check string) "banner with extras"
    "replay with KPT_PROP_SEED=0x2a KPT_PROP_CASES=500 dune runtest"
    (Helpers.replay_banner ~env_var:"KPT_PROP_SEED" ~seed:42L
       ~extra:[ ("KPT_PROP_CASES", "500") ]
       ())

let suite =
  [
    Alcotest.test_case "rng: same seed, same stream; derive is positional" `Quick
      test_rng_determinism;
    Alcotest.test_case "rng: ranges and shuffle" `Quick test_rng_ranges;
    Alcotest.test_case "rng: seed string round-trip" `Quick test_seed_strings;
    Alcotest.test_case "gen: same seed = identical corpus" `Quick
      test_same_seed_same_corpus;
    Alcotest.test_case "gen: --count is a prefix, not a reshuffle" `Quick
      test_count_prefix_property;
    Alcotest.test_case "gen: seeds diverge" `Quick test_seeds_diverge;
    Alcotest.test_case "gen: every spec parses; unparser is a fixpoint" `Quick
      test_generated_specs_parse_and_roundtrip;
    Alcotest.test_case "gen: loss is skipped for channel-free families" `Quick
      test_grid_applicability;
    Alcotest.test_case "gen: manifest round-trip and named malformation" `Quick
      test_manifest_roundtrip;
    Alcotest.test_case "budget: relay converges (Converged class)" `Quick
      test_class_converged;
    Alcotest.test_case "budget: antiknow cycles (Diverged-orbit class)" `Quick
      test_class_diverged_orbit;
    Alcotest.test_case "budget: exhaustion class, exit 3, and non-stickiness" `Quick
      test_class_budget_exhausted_and_non_sticky;
    Alcotest.test_case "gen: manifest envelope = re-check verdict" `Quick
      test_envelope_matches_recheck;
    Alcotest.test_case "replay banner format" `Quick test_replay_banner_format;
  ]
