(* The static-analysis subsystem: diagnostics, read/write sets, and the
   lint passes — including the paper-specific checks that predict the
   Figure 1-2 pathologies from the program text alone. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_syntax
open Kpt_analysis
module D = Diagnostic

let lint = Lint.lint_source ~file:"test.unity"
let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let find code ds = List.find_opt (fun (d : D.t) -> d.D.code = code) ds
let has code ds = find code ds <> None

let check_codes msg expected ds =
  Alcotest.(check (list string)) msg expected (codes ds)

(* position of the first occurrence of [needle] in the [line]th (1-based)
   line of [src], as a (line, col) pair — so span expectations track the
   fixture text instead of hard-coding columns *)
let pos_of src ~line needle =
  let lines = String.split_on_char '\n' src in
  let text = List.nth lines (line - 1) in
  let rec go i =
    if i + String.length needle > String.length text then
      Alcotest.failf "%S not found on line %d" needle line
    else if String.sub text i (String.length needle) = needle then i + 1
    else go (i + 1)
  in
  (line, go 0)

let check_span msg src ~line needle (d : D.t) =
  let el, ec = pos_of src ~line needle in
  match d.D.span with
  | Some { Loc.line = l; col = c } ->
      Alcotest.(check (pair int int)) msg (el, ec) (l, c)
  | None -> Alcotest.failf "%s: diagnostic has no span" msg

(* ---- the paper's figures: the polarity pass must predict the pathology ---- *)

let figure1_src =
  {|program figure1
var shared, x : bool
processes
  P0 = { shared }
  P1 = { shared, x }
init ~shared /\ ~x
assign
  s0: shared := true if K[P0](~x)
| s1: x, shared := true, false if shared
|}

let figure2_src =
  {|program figure2
var x, y, z : bool
processes
  P0 = { y }
  P1 = { z }
init ~y
assign
  s0: y := true if K[P0](x)
| s1: z := true if K[P1](~y)
|}

let test_figure1_polarity () =
  let ds = lint figure1_src in
  check_codes "exactly the Figure-1 warning" [ "KPT010" ] ds;
  let d = Option.get (find "KPT010" ds) in
  Alcotest.(check bool) "warning severity" true (d.D.severity = D.Warning);
  check_span "K operator span" figure1_src ~line:8 "K[P0]" d;
  Alcotest.(check int) "clean exit without --warn-error" 0 (D.exit_code ds);
  Alcotest.(check int) "non-zero under --warn-error" 1 (D.exit_code ~warn_error:true ds)

let test_figure2_polarity () =
  let ds = lint figure2_src in
  (* s1's K[P1](~y) is the non-monotonicity trigger; z is write-only *)
  let d = Option.get (find "KPT010" ds) in
  check_span "K operator span" figure2_src ~line:9 "K[P1]" d;
  let wo = Option.get (find "KPT021" ds) in
  Alcotest.(check bool) "write-only z is Info" true (wo.D.severity = D.Info);
  check_codes "nothing else" [ "KPT021"; "KPT010" ] ds;
  Alcotest.(check int) "infos and warnings exit 0" 0 (D.exit_code ds)

let test_negative_position () =
  let src =
    {|program negk
var x, y : bool
processes
  P0 = { x }
init true
assign
  s: y := true if ~K[P0](x)
|}
  in
  let ds = lint src in
  Alcotest.(check bool) "K in negative position" true (has "KPT011" ds);
  (* x itself is not negated inside the operator *)
  Alcotest.(check bool) "no negated-fact warning" false (has "KPT010" ds)

(* ---- the shipped example specs lint exactly as documented ----------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let spec name = "../examples/specs/" ^ name

let test_examples_clean () =
  List.iter
    (fun name ->
      let ds = Lint.lint_source ~file:name (read_file (spec name)) in
      check_codes (name ^ " is clean") [] ds)
    [ "transmit.unity"; "mutex.unity" ]

let test_examples_figures () =
  List.iter
    (fun name ->
      let ds = Lint.lint_source ~file:name (read_file (spec name)) in
      Alcotest.(check bool) (name ^ " triggers KPT010") true (has "KPT010" ds);
      Alcotest.(check bool)
        (name ^ " has no errors")
        true
        (not (List.exists D.is_error ds));
      Alcotest.(check int) (name ^ " fails under --warn-error") 1
        (D.exit_code ~warn_error:true ds))
    [ "figure1.unity"; "figure2.unity" ]

(* ---- locality and interference (eq. 13) ----------------------------------- *)

let test_locality_violation () =
  let src =
    {|program loc
var x, y : bool
processes
  P0 = { x }
  P1 = { x, y }
init true
assign
  s: x := true if K[P0](y) /\ y
|}
  in
  let ds = lint src in
  let d = Option.get (find "KPT012" ds) in
  Alcotest.(check bool) "locality is an error" true (D.is_error d);
  Alcotest.(check int) "exit 1" 1 (D.exit_code ds);
  (* the same guard with the read under K is implementable: K[P0](y) is a
     predicate on P0's variables by eq. 13 *)
  let ok_src =
    {|program loc
var x, y : bool
processes
  P0 = { x }
  P1 = { x, y }
init true
assign
  s: x := true if K[P0](y) /\ x
|}
  in
  check_codes "local guard is clean" [] (lint ok_src)

let test_unknown_process () =
  let src =
    {|program unk
var x : bool
processes
  P0 = { x }
init true
assign
  s: x := true if K[Q](x)
|}
  in
  let ds = lint src in
  Alcotest.(check bool) "undeclared process in K" true (has "KPT013" ds);
  Alcotest.(check bool) "elaboration also rejects it" true (has "KPT003" ds)

let test_undeclared_process_var () =
  let src =
    {|program badproc
var x : bool
processes
  P0 = { x, ghost }
init true
assign
  s: x := true
|}
  in
  Alcotest.(check bool) "process lists undeclared variable" true
    (has "KPT014" (lint src))

let test_foreign_write_and_interference () =
  let src =
    {|program intf
var x, y, z : bool
processes
  P0 = { x, z }
  P1 = { y, z }
init true
assign
  s0: y := true if K[P0](x)
| s1: y := false if K[P1](x)
|}
  in
  let ds = lint src in
  (* s0 writes y on P0's behalf, but y is not P0's variable *)
  Alcotest.(check bool) "foreign write" true (has "KPT030" ds);
  (* y is written on behalf of both P0 and P1 *)
  Alcotest.(check bool) "interference" true (has "KPT031" ds)

(* ---- hygiene --------------------------------------------------------------- *)

let test_unused_and_write_only () =
  let src =
    {|program hyg
var x, unused, sink : bool
init x
assign
  s: sink := x
|}
  in
  let ds = lint src in
  let u = Option.get (find "KPT020" ds) in
  check_span "unused points at its declaration" src ~line:2 "unused" u;
  let wo = Option.get (find "KPT021" ds) in
  Alcotest.(check bool) "write-only is Info" true (wo.D.severity = D.Info);
  (* a variable read only by init is not unused: transmit.unity's w *)
  let init_read =
    {|program initread
var x, w : bool
init w = x
assign
  s: w := true
|}
  in
  check_codes "init counts as a read" [] (lint init_read)

let test_identity_and_duplicate () =
  let src =
    {|program dup
var x, y : bool
init x \/ y
assign
  spin: x := x
| a: y := x if x
| b: y := x if x
|}
  in
  let ds = lint src in
  Alcotest.(check bool) "identity assignment" true (has "KPT022" ds);
  let d = Option.get (find "KPT023" ds) in
  check_span "duplicate points at the later copy" src ~line:7 "b:" d

let test_constant_guards () =
  let src =
    {|program cg
var x : bool
var mode : enum(idle, busy)
init x /\ mode = idle
assign
  dead: x := false if x /\ false
| triv: x := true if true \/ x
| live: mode := busy if mode = idle
|}
  in
  let ds = lint src in
  let dead = Option.get (find "KPT024" ds) in
  Alcotest.(check bool) "false guard is a warning" true (dead.D.severity = D.Warning);
  let triv = Option.get (find "KPT025" ds) in
  Alcotest.(check bool) "true guard is an info" true (triv.D.severity = D.Info);
  check_codes "nothing else fires" [ "KPT024"; "KPT025" ] ds

let test_nat_range () =
  let src =
    {|program rng
var n : nat(2)
var m : nat(2)
init n = 0 /\ m = 0
assign
  a: n := n + 1 if n < 5
| b: m := n if 3 = m
|}
  in
  let ds = lint src in
  (match List.filter (fun (d : D.t) -> d.D.code = "KPT026") ds with
  | [ a; b ] ->
      check_span "n < 5 span" src ~line:6 "n < 5" a;
      Alcotest.(check bool) "n < 5 is always true" true
        (String.length a.D.message > 0
        && String.sub a.D.message (String.length a.D.message - 4) 4 = "true");
      Alcotest.(check bool) "3 = m is always false" true
        (String.sub b.D.message (String.length b.D.message - 5) 5 = "false")
  | other -> Alcotest.failf "expected two KPT026, got %d" (List.length other));
  (* the bound itself is in range: nat(2) ranges over 0..2 *)
  let ok =
    {|program rng2
var n : nat(2)
init n = 0
assign
  a: n := n + 1 if n < 2
| b: n := 0 if n = 2
|}
  in
  check_codes "comparisons at the bound are fine" [] (lint ok)

(* ---- syntax errors surface as diagnostics, never exceptions ---------------- *)

let test_syntax_errors_are_diagnostics () =
  let lex = lint "program p\ninit x ? y" in
  (match lex with
  | [ d ] ->
      Alcotest.(check string) "lex error code" "KPT001" d.D.code;
      Alcotest.(check bool) "positioned" true (d.D.span <> None)
  | _ -> Alcotest.fail "expected exactly one lexical diagnostic");
  let parse = lint "program p\nvar x : bool\ninit x /\\\nassign s: x := true" in
  (match parse with
  | [ d ] -> Alcotest.(check string) "parse error code" "KPT002" d.D.code
  | _ -> Alcotest.fail "expected exactly one parse diagnostic");
  let elab = lint "program p\nvar x : bool\ninit y\nassign s: x := true" in
  Alcotest.(check bool) "elaboration error code" true (has "KPT003" elab);
  Alcotest.(check int) "all exit non-zero" 1 (D.exit_code parse)

let test_rendering () =
  let ds = lint figure1_src in
  let d = Option.get (find "KPT010" ds) in
  let line = Format.asprintf "%a" D.pp d in
  let l, c = pos_of figure1_src ~line:8 "K[P0]" in
  Alcotest.(check string) "one-line rendering"
    (Printf.sprintf "test.unity:%d:%d: warning[KPT010]: %s" l c d.D.message)
    line;
  let excerpt = Format.asprintf "@[<v>%a@]" (D.pp_excerpt ~src:figure1_src) d in
  Alcotest.(check bool) "excerpt shows the source line" true
    (String.length excerpt > String.length line);
  Alcotest.(check string) "summary" "1 warning" (D.summary ds)

(* ---- read/write sets and the cone of influence ----------------------------- *)

let test_rw_and_cone () =
  let vars = Rw.S.of_list [ "a"; "b"; "c"; "d" ] in
  let p =
    Parser.program_of_string
      {|program cone
var a, b, c, d : bool
init a
assign
  s0: b := a
| s1: c := b if K[P](d)
|}
  in
  let s1 = List.nth p.Ast.p_stmts 1 in
  let rw = Rw.of_stmt ~vars s1 in
  Alcotest.(check (list string)) "writes" [ "c" ] (Rw.S.elements rw.Rw.writes);
  Alcotest.(check (list string)) "rhs reads" [ "b" ] (Rw.S.elements rw.Rw.rhs_reads);
  (match rw.Rw.kops with
  | [ k ] ->
      Alcotest.(check (list string)) "reads under K" [ "d" ]
        (Rw.S.elements k.Rw.kreads);
      Alcotest.(check bool) "not negated" true (Rw.S.is_empty k.Rw.negated_reads)
  | _ -> Alcotest.fail "expected one knowledge operator");
  let stmts =
    List.map
      (fun s ->
        let rw = Rw.of_stmt ~vars s in
        (rw.Rw.writes, Rw.all_reads rw))
      p.Ast.p_stmts
  in
  let cone = Rw.cone stmts (Rw.S.singleton "c") in
  Alcotest.(check (list string)) "cone of c" [ "a"; "b"; "c"; "d" ]
    (Rw.S.elements cone);
  Alcotest.(check (list string)) "cone of d is d alone" [ "d" ]
    (Rw.S.elements (Rw.cone stmts (Rw.S.singleton "d")))

let test_program_cone () =
  let sp = Space.create () in
  let a = Space.bool_var sp "a" in
  let b = Space.bool_var sp "b" in
  let c = Space.bool_var sp "c" in
  let prog =
    Program.make sp ~name:"cone" ~init:(Expr.var a)
      [
        Stmt.make ~name:"s0" [ (b, Expr.var a) ];
        Stmt.make ~name:"s1" ~guard:(Expr.var b) [ (c, Expr.tru) ];
      ]
  in
  let idx v = Space.idx v in
  let cone = Rw.program_cone prog (Rw.V.singleton (idx c)) in
  Alcotest.(check (list int)) "influences of c"
    (List.sort compare [ idx a; idx b; idx c ])
    (List.sort compare (Rw.V.elements cone))

(* ---- the in-memory API: KBPs and compiled programs dogfood the linter ------ *)

let build_figure1 () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ shared ] in
  let p1 = Process.make "P1" [ shared; x ] in
  Kbp.make sp ~name:"figure1"
    ~init:Expr.(not_ (var shared) &&& not_ (var x))
    ~processes:[ p0; p1 ]
    [
      Kbp.kstmt ~name:"s0"
        ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
        [ (shared, Expr.tru) ];
      Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var shared))
        [ (x, Expr.tru); (shared, Expr.fls) ];
    ]

let test_lint_kbp_figure1 () =
  let ds = Lint.lint_kbp (build_figure1 ()) in
  (match List.map (fun (d : D.t) -> d.D.code) ds with
  | [ "KPT010" ] -> ()
  | other -> Alcotest.failf "expected [KPT010], got [%s]" (String.concat "; " other));
  let d = List.hd ds in
  Alcotest.(check bool) "names the culprit" true
    (let msg = d.D.message in
     let rec contains i =
       i + 1 <= String.length msg
       && ((i + 4 <= String.length msg && String.sub msg i 4 = "s0 i") || contains (i + 1))
     in
     contains 0)

let test_lint_kbp_checks () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let p0 = Process.make "P0" [ x ] in
  let p1 = Process.make "P1" [ x; y ] in
  let kbp =
    Kbp.make sp ~name:"k" ~init:(Expr.var x) ~processes:[ p0; p1 ]
      [
        (* K[P0] under negation: negative position *)
        Kbp.kstmt ~name:"s0"
          ~guard:(Kform.knot (Kform.k "P0" (Kform.base (Expr.var x))))
          [ (x, Expr.tru) ];
        (* writes y on P0's behalf *)
        Kbp.kstmt ~name:"s1"
          ~guard:(Kform.k "P0" (Kform.base (Expr.var x)))
          [ (y, Expr.tru) ];
        (* identity assignment *)
        Kbp.kstmt ~name:"s2" ~guard:(Kform.base (Expr.var y)) [ (x, Expr.var x) ];
      ]
  in
  let ds = Lint.lint_kbp kbp in
  Alcotest.(check bool) "negative position" true (has "KPT011" ds);
  Alcotest.(check bool) "foreign write" true (has "KPT030" ds);
  Alcotest.(check bool) "identity" true (has "KPT022" ds)

let test_lint_program_hygiene () =
  let sp = Space.create () in
  let a = Space.bool_var sp "a" in
  let b = Space.bool_var sp "b" in
  let prog =
    Program.make sp ~name:"h" ~init:(Expr.var a)
      [
        Stmt.make ~name:"spin" [ (a, Expr.var a) ];
        Stmt.make ~name:"dead" ~guard:Expr.(var a &&& not_ (var a)) [ (b, Expr.tru) ];
        Stmt.make ~name:"c1" ~guard:(Expr.var a) [ (b, Expr.tru) ];
        Stmt.make ~name:"c2" ~guard:(Expr.var a) [ (b, Expr.tru) ];
      ]
  in
  let ds = Lint.lint_program prog in
  Alcotest.(check bool) "identity" true (has "KPT022" ds);
  Alcotest.(check bool) "statically false guard" true (has "KPT024" ds);
  Alcotest.(check bool) "duplicate" true (has "KPT023" ds);
  Alcotest.(check bool) "write-only b" true (has "KPT021" ds)

let test_bundled_protocols_clean () =
  let open Kpt_protocols in
  let params = { Seqtrans.n = 2; a = 2 } in
  let progs =
    [
      ("abp", (Abp.make ~lossy:true params).Abp.prog);
      ("stenning", (Stenning.make ~lossy:true params).Stenning.prog);
      ("auy", (Auy.make params).Auy.prog);
      ("window", (Window.make ~lossy:false ~window:2 params).Window.prog);
      ("seqtrans-std", (Seqtrans.standard ~lossy:false params).Seqtrans.sprog);
      ("seqtrans-kbp", (Seqtrans.abstract_kbp params).Seqtrans.aprog);
    ]
  in
  List.iter
    (fun (name, prog) ->
      let ds = Lint.lint_program prog in
      let loud = List.filter (fun (d : D.t) -> d.D.severity <> D.Info) ds in
      Alcotest.(check (list string)) (name ^ " lints clean") [] (codes loud))
    progs

(* ---- the kpt lint driver: --quiet × --warn-error ----------------------- *)

(* The 2×2 flag matrix on Figure 1 (one warning, no errors).  --quiet
   must suppress every line of output and --warn-error alone must decide
   the exit code; the two flags never interact. *)
let test_flag_matrix () =
  let contains hay needle =
    let nl = String.length needle in
    let rec go i =
      i + nl <= String.length hay && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun (warn_error, quiet) ->
      let label = Printf.sprintf "--warn-error=%b --quiet=%b" warn_error quiet in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      let code = Lint.run_sources ~warn_error ~quiet ppf [ ("figure1.unity", figure1_src) ] in
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buf in
      Alcotest.(check int)
        (label ^ ": exit code depends on --warn-error only")
        (if warn_error then 1 else 0)
        code;
      if quiet then Alcotest.(check string) (label ^ ": prints nothing") "" out
      else begin
        Alcotest.(check bool) (label ^ ": renders the finding") true (contains out "KPT010");
        Alcotest.(check bool) (label ^ ": renders the summary") true (contains out "warning")
      end)
    [ (false, false); (false, true); (true, false); (true, true) ];
  (* a clean file exits 0 and stays silent under --quiet in both modes *)
  let clean = "program ok\nvar b : bool\ninit ~b\nassign\n  s0: b := true if ~b\n" in
  List.iter
    (fun warn_error ->
      let buf = Buffer.create 16 in
      let ppf = Format.formatter_of_buffer buf in
      let code = Lint.run_sources ~warn_error ~quiet:true ppf [ ("ok.unity", clean) ] in
      Format.pp_print_flush ppf ();
      Alcotest.(check int) "clean file exits 0" 0 code;
      Alcotest.(check string) "clean file quiet output empty" "" (Buffer.contents buf))
    [ false; true ]

let suite =
  [
    Alcotest.test_case "figure 1: K of a negated fact" `Quick test_figure1_polarity;
    Alcotest.test_case "figure 2: non-monotonic trigger" `Quick test_figure2_polarity;
    Alcotest.test_case "K in negative position" `Quick test_negative_position;
    Alcotest.test_case "shipped specs: transmit/mutex clean" `Quick test_examples_clean;
    Alcotest.test_case "shipped specs: figures warn" `Quick test_examples_figures;
    Alcotest.test_case "locality (eq. 13)" `Quick test_locality_violation;
    Alcotest.test_case "unknown process in K" `Quick test_unknown_process;
    Alcotest.test_case "undeclared process variable" `Quick test_undeclared_process_var;
    Alcotest.test_case "foreign writes + interference" `Quick
      test_foreign_write_and_interference;
    Alcotest.test_case "unused / write-only variables" `Quick test_unused_and_write_only;
    Alcotest.test_case "identity + duplicate statements" `Quick
      test_identity_and_duplicate;
    Alcotest.test_case "constant guards" `Quick test_constant_guards;
    Alcotest.test_case "nat range comparisons" `Quick test_nat_range;
    Alcotest.test_case "syntax errors as diagnostics" `Quick
      test_syntax_errors_are_diagnostics;
    Alcotest.test_case "rendering and exit codes" `Quick test_rendering;
    Alcotest.test_case "read/write sets + cone" `Quick test_rw_and_cone;
    Alcotest.test_case "semantic cone" `Quick test_program_cone;
    Alcotest.test_case "lint_kbp: figure 1" `Quick test_lint_kbp_figure1;
    Alcotest.test_case "lint_kbp: polarity, locality, hygiene" `Quick
      test_lint_kbp_checks;
    Alcotest.test_case "lint_program: hygiene" `Quick test_lint_program_hygiene;
    Alcotest.test_case "bundled protocols lint clean" `Quick
      test_bundled_protocols_clean;
    Alcotest.test_case "driver: --quiet x --warn-error matrix" `Quick test_flag_matrix;
  ]
