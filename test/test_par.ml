(* The domain pool, engine contexts, and the [kpt check] batch driver.

   The load-bearing properties pinned here:
   - pool results are ordered by input index, whatever the pool size;
   - a raising task yields [Error] in its own slot only;
   - each task runs under a fresh engine (counters start at zero) and
     its metrics are merged into the caller's context after the join;
   - [kpt check -j 4] output — text and JSON — is byte-identical to
     [-j 1] over the examples corpus, and the per-file stats snapshot
     (BDD node/peak counts included) is pool-size-independent;
   - degenerate corpora behave: empty list, duplicate paths, and one
     unparsable file among good ones. *)

module Check = Kpt_analysis.Check
module Stats = Kpt_analysis.Stats
module D = Kpt_analysis.Diagnostic
module Engine = Kpt_predicate.Engine
module Space = Kpt_predicate.Space

(* ---- corpus ----------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Same file set, labels and order as `kpt check examples/specs/*.unity`
   run from the repository root (the shell glob sorts). *)
let spec_names () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare

let corpus () =
  List.map
    (fun n -> ("examples/specs/" ^ n, read_file ("../examples/specs/" ^ n)))
    (spec_names ())

let to_string render reports =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  render ppf reports;
  Format.pp_print_flush ppf ();
  Buffer.contents b

(* ---- the pool --------------------------------------------------------------- *)

let test_map_ordering () =
  let items = List.init 100 Fun.id in
  let expected = List.map (fun i -> i * i) items in
  List.iter
    (fun jobs ->
      let got = Kpt_par.map ~jobs (fun i -> i * i) items in
      Alcotest.(check (list int))
        (Printf.sprintf "input order at jobs=%d" jobs)
        expected got)
    [ 1; 4; 16; 500 (* clamped to the item count *) ]

let test_pool_spawns_once () =
  (* the P7 fix: helper domains are spawned once per process and reused —
     repeated batches at the same width must not grow the pool *)
  ignore (Kpt_par.map ~jobs:4 succ (List.init 64 Fun.id));
  let size = Kpt_par.pool_size () in
  (* width is additionally clamped to the core count, so on a small
     machine the pool may legitimately stay empty — the property under
     test is that repeated batches never grow it *)
  Alcotest.(check bool) (Printf.sprintf "pool within requested width (%d)" size) true
    (size <= 3);
  for _ = 1 to 5 do
    ignore (Kpt_par.map ~jobs:4 succ (List.init 64 Fun.id))
  done;
  Alcotest.(check int) "pool stable across batches" size (Kpt_par.pool_size ())

let test_try_map_isolates_exceptions () =
  let items = List.init 10 Fun.id in
  let results =
    Kpt_par.try_map ~jobs:4
      (fun i -> if i mod 2 = 0 then failwith (string_of_int i) else i * 10)
      items
  in
  List.iteri
    (fun i -> function
      | Ok v ->
          Alcotest.(check bool) "odd tasks succeed" true (i mod 2 = 1);
          Alcotest.(check int) "with the right value" (i * 10) v
      | Error (Failure msg) ->
          Alcotest.(check bool) "even tasks fail" true (i mod 2 = 0);
          Alcotest.(check string) "with their own exception" (string_of_int i) msg
      | Error e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
    results;
  Alcotest.check_raises "map re-raises the first failure (input order)"
    (Failure "0") (fun () ->
      ignore (Kpt_par.map ~jobs:4 (fun i -> failwith (string_of_int i)) items))

let test_task_ctx_isolation_and_merge () =
  let c = Kpt_obs.counter "test.par.work" in
  let before = Kpt_obs.value c in
  let entry_values =
    Kpt_par.map ~jobs:4
      (fun _ ->
        let v = Kpt_obs.value c in
        Kpt_obs.incr c;
        v)
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int))
    "every task starts from a zeroed metric context"
    (List.init 8 (fun _ -> 0))
    entry_values;
  Alcotest.(check int) "per-task bumps are merged into the caller after the join"
    (before + 8) (Kpt_obs.value c)

(* ---- engine scoping --------------------------------------------------------- *)

let test_engine_scoping () =
  Alcotest.(check bool) "outside any [use] the current engine is the default" true
    (Engine.is_default (Engine.current ()));
  let e = Engine.create () in
  Alcotest.(check bool) "a fresh engine is not the default" false (Engine.is_default e);
  Alcotest.(check bool) "and has a distinct id" true
    (Engine.id e <> Engine.id Engine.default);
  Engine.use e (fun () ->
      Alcotest.(check int) "inside [use] it is current" (Engine.id e)
        (Engine.id (Engine.current ()));
      let sp = Space.create () in
      Alcotest.(check int) "spaces created inside [use] belong to it" (Engine.id e)
        (Engine.id (Space.engine sp)));
  Alcotest.(check bool) "[use] restores the previous engine" true
    (Engine.is_default (Engine.current ()));
  let sp = Space.create ~engine:e () in
  Alcotest.(check int) "explicit attribution wins over the ambient engine"
    (Engine.id e)
    (Engine.id (Space.engine sp));
  Alcotest.(check bool) "default spaces belong to the default engine" true
    (Engine.is_default (Space.engine (Space.create ())))

(* ---- differential determinism ----------------------------------------------- *)

let test_check_differential () =
  let sources = corpus () in
  let r1 = Check.reports ~jobs:1 sources in
  let r4 = Check.reports ~jobs:4 sources in
  Alcotest.(check string) "text output is byte-identical at -j 1 and -j 4"
    (to_string Check.render_text r1)
    (to_string Check.render_text r4);
  Alcotest.(check string) "JSON output is byte-identical at -j 1 and -j 4"
    (to_string Check.render_json r1)
    (to_string Check.render_json r4)

let test_stats_pool_independent () =
  let sources = corpus () in
  let snapshot jobs =
    Check.reports ~jobs sources
    |> List.map (fun (r : Check.report) ->
           ( r.Check.file,
             Option.map (Stats.to_json ~timings:false) r.Check.stats ))
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  List.iter2
    (fun (f1, j1) (f4, j4) ->
      Alcotest.(check string) "same file order" f1 f4;
      Alcotest.(check (option string))
        (Printf.sprintf "%s: stats (incl. BDD node/peak counts) match" f1)
        j1 j4)
    s1 s4

(* ---- degenerate corpora ------------------------------------------------------ *)

let test_empty_corpus () =
  let b = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer b in
  let code = Check.run_sources ~jobs:2 ppf [] in
  Format.pp_print_flush ppf ();
  Alcotest.(check int) "empty corpus exits 0" 0 code;
  Alcotest.(check string) "and says so" "no files to check\n" (Buffer.contents b)

let test_duplicate_paths () =
  let file = "examples/specs/transmit.unity" in
  let src = read_file "../examples/specs/transmit.unity" in
  match Check.reports ~jobs:2 [ (file, src); (file, src) ] with
  | [ a; b ] ->
      Alcotest.(check string) "both reports carry the path" a.Check.file b.Check.file;
      Alcotest.(check (option string))
        "and identical stats"
        (Option.map (Stats.to_json ~timings:false) a.Check.stats)
        (Option.map (Stats.to_json ~timings:false) b.Check.stats)
  | rs -> Alcotest.failf "expected 2 reports, got %d" (List.length rs)

let test_bad_file_does_not_poison_siblings () =
  let good1 = ("good1.unity", read_file "../examples/specs/transmit.unity") in
  let bad = ("bad.unity", "program broken\nvar x : bool\n!!! not unity at all") in
  let good2 = ("good2.unity", read_file "../examples/specs/mutex.unity") in
  let rs = Check.reports ~jobs:2 [ good1; bad; good2 ] in
  (match rs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "first sibling is clean" false (Check.failed a);
      Alcotest.(check bool) "and solved" true (a.Check.stats <> None);
      Alcotest.(check bool) "the broken file fails" true (Check.failed b);
      Alcotest.(check bool) "without stats" true (b.Check.stats = None);
      Alcotest.(check bool) "second sibling is clean" false (Check.failed c);
      Alcotest.(check bool) "and solved" true (c.Check.stats <> None)
  | _ -> Alcotest.failf "expected 3 reports, got %d" (List.length rs));
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.(check int) "batch exit code reports the failure" 1
    (Check.run_sources ~jobs:2 ~quiet:true null [ good1; bad; good2 ])

(* ---- the pool-width contract -------------------------------------------------
   The frozen-pool bug: the pool used to spawn at the first batch's
   width and silently run every later, wider batch at it.  The contract
   now is grow-on-mismatch — and it must be testable on a single-core CI
   host, where the hardware clamp would otherwise hide any growth, hence
   the oversubscribe escape hatch. *)

let test_pool_grows_on_wider_request () =
  let sources = corpus () in
  let r1 = Check.reports ~jobs:1 sources in
  let before = Kpt_par.pool_size () in
  Unix.putenv "KPT_POOL_OVERSUBSCRIBE" "1";
  let r6 =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "KPT_POOL_OVERSUBSCRIBE" "0")
      (fun () -> Check.reports ~jobs:6 sources)
  in
  let after = Kpt_par.pool_size () in
  Alcotest.(check bool)
    (Printf.sprintf "pool grew for the wider batch (%d -> %d, want >= 5)" before after)
    true (after >= 5);
  Alcotest.(check bool) "the pool never shrinks" true (after >= before);
  Alcotest.(check string) "output is byte-identical across the growth"
    (to_string Check.render_text r1)
    (to_string Check.render_text r6);
  (* a later narrower batch leaves the grown pool alone *)
  ignore (Check.reports ~jobs:1 sources);
  Alcotest.(check int) "a narrower batch does not shrink it" after (Kpt_par.pool_size ())

(* ---- golden ------------------------------------------------------------------ *)

(* Counters prefixed "test." exist only in this test binary (interned by
   other suites); the golden is produced by the kpt executable, which
   has none.  Dropping those lines is structurally safe: "test.*" sorts
   before every counter the library itself bumps, so the final counter
   line (and its missing trailing comma) is never the one removed. *)
let strip_test_counters s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         not (String.length l > 0 && String.trim l <> "" &&
              (let t = String.trim l in
               String.length t > 6 && String.sub t 0 6 = "\"test.")))
  |> String.concat "\n"

(* Regenerate with:
     dune exec bin/kpt.exe -- check examples/specs/*.unity --json --reorder=off \
       > test/golden/check_specs.json
   (from the repository root; --reorder=off because this test runs
   in-process under the library default, which is off — the CLI default
   is auto). *)
let test_check_json_golden () =
  let expected = strip_test_counters (read_file "golden/check_specs.json") in
  let got =
    strip_test_counters (to_string Check.render_json (Check.reports ~jobs:2 (corpus ())))
  in
  Alcotest.(check string) "kpt check --json batch summary" expected got

let suite =
  [
    Alcotest.test_case "pool preserves input order" `Quick test_map_ordering;
    Alcotest.test_case "pool spawns once per process" `Quick test_pool_spawns_once;
    Alcotest.test_case "try_map isolates exceptions" `Quick
      test_try_map_isolates_exceptions;
    Alcotest.test_case "task contexts isolate and merge" `Quick
      test_task_ctx_isolation_and_merge;
    Alcotest.test_case "engine scoping" `Quick test_engine_scoping;
    Alcotest.test_case "check -j4 byte-identical to -j1" `Quick test_check_differential;
    Alcotest.test_case "stats are pool-size-independent" `Quick
      test_stats_pool_independent;
    Alcotest.test_case "empty corpus" `Quick test_empty_corpus;
    Alcotest.test_case "duplicate paths" `Quick test_duplicate_paths;
    Alcotest.test_case "bad file does not poison siblings" `Quick
      test_bad_file_does_not_poison_siblings;
    Alcotest.test_case "check --json golden" `Quick test_check_json_golden;
    (* last: grows the process-global pool past the small-width
       assertions the earlier cases make *)
    Alcotest.test_case "pool grows on a wider request" `Quick
      test_pool_grows_on_wider_request;
  ]
