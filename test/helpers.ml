(* Shared test utilities: deterministic RNG, qcheck registration, and small
   reference implementations that BDD results are checked against. *)

let rng () = Random.State.make [| 0xC0FFEE; 42 |]

(* The replay convention every seeded suite shares (proplaws, the gen
   corpus tests, difftest): a failure message ends with the exact
   environment line that reruns the identical sequence.  [extra] carries
   any further knobs ([KPT_PROP_CASES=…]) the suite wants pinned. *)
let replay_banner ?(extra = []) ~env_var ~seed () =
  let envs = (env_var, Kpt_gen.Rng.seed_to_string seed) :: extra in
  Printf.sprintf "replay with %s dune runtest"
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) envs))

let qtests cases = List.map QCheck_alcotest.to_alcotest cases

(* Brute-force truth table of a BDD over variables [0..nvars-1], as the
   list of satisfying assignments encoded as integers (bit k of the code =
   value of variable k). *)
let truth_table bdd ~nvars =
  let sats = ref [] in
  for code = (1 lsl nvars) - 1 downto 0 do
    if Kpt_predicate.Bdd.eval bdd (fun i -> (code lsr i) land 1 = 1) then
      sats := code :: !sats
  done;
  !sats

(* A random BDD built from random formulas, for property tests. *)
let rec random_formula st m ~nvars ~depth =
  let module B = Kpt_predicate.Bdd in
  if depth = 0 then
    match Random.State.int st 4 with
    | 0 -> B.tru m
    | 1 -> B.fls m
    | _ -> B.var m (Random.State.int st nvars)
  else
    let sub () = random_formula st m ~nvars ~depth:(depth - 1) in
    match Random.State.int st 6 with
    | 0 -> B.and_ m (sub ()) (sub ())
    | 1 -> B.or_ m (sub ()) (sub ())
    | 2 -> B.xor m (sub ()) (sub ())
    | 3 -> B.imp m (sub ()) (sub ())
    | 4 -> B.iff m (sub ()) (sub ())
    | _ -> B.not_ m (sub ())
