open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_syntax

let figure1_src =
  {|
-- Figure 1 of the paper: a knowledge-based protocol with no solution
program figure1
var shared, x : bool
processes
  P0 = { shared }
  P1 = { shared, x }
init ~shared /\ ~x
assign
  s0: shared := true if K[P0](~x)
| s1: x, shared := true, false if shared
|}

let counter_src =
  {|
program counter
var n : nat(5)
var mode : enum(idle, busy)
init n = 0 /\ mode = idle
assign
  work: n, mode := n + 1, busy if n < 5
| rest: mode := idle if mode = busy
|}

let test_lexer () =
  let toks = Token.tokenize "x := true if K[P](~y) -- comment\n| z" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [
        Token.IDENT "x"; Token.BECOMES; Token.KTRUE; Token.KIF; Token.KKNOW; Token.LBRACK;
        Token.IDENT "P"; Token.RBRACK; Token.LPAR; Token.NOT; Token.IDENT "y"; Token.RPAR;
        Token.BAR; Token.IDENT "z"; Token.EOF;
      ])

let test_lexer_positions () =
  let toks = Token.tokenize "a\n  bc" in
  match toks with
  | [ a; b; _eof ] ->
      Alcotest.(check (pair int int)) "a at 1,1" (1, 1) (a.Token.line, a.Token.col);
      Alcotest.(check (pair int int)) "bc at 2,3" (2, 3) (b.Token.line, b.Token.col)
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_error () =
  (try
     ignore (Token.tokenize "x # y");
     Alcotest.fail "expected a lex error"
   with Token.Lex_error (span, msg) ->
     Alcotest.(check (pair int int)) "error position" (1, 3) (span.Loc.line, span.Loc.col);
     Alcotest.(check bool) "message names the character" true
       (String.length msg > 0))

let test_parse_figure1 () =
  let p = Parser.program_of_string figure1_src in
  Alcotest.(check string) "name" "figure1" p.Ast.p_name;
  Alcotest.(check int) "two processes" 2 (List.length p.Ast.p_processes);
  Alcotest.(check int) "two statements" 2 (List.length p.Ast.p_stmts);
  let s1 = List.nth p.Ast.p_stmts 1 in
  Alcotest.(check (list string)) "multiple assignment targets" [ "x"; "shared" ]
    (List.map
       (function Ast.Tvar v -> v | Ast.Tindex (v, _) -> v ^ "[..]")
       s1.Ast.s_targets)

let test_parse_precedence () =
  let mk = Ast.mk in
  let id s = mk (Ast.Eident s) in
  (* ~a /\ b \/ c => d  parses as  ((~a /\ b) \/ c) => d *)
  let e = Parser.expr_of_string "~a /\\ b \\/ c => d" in
  Alcotest.(check bool) "boolean precedence" true
    (Ast.equal_expr e
       (mk
          (Ast.Eimp
             ( mk (Ast.Eor (mk (Ast.Eand (mk (Ast.Enot (id "a")), id "b")), id "c")),
               id "d" ))));
  (* arithmetic binds tighter than comparison *)
  let e2 = Parser.expr_of_string "n + 1 <= m - 2" in
  Alcotest.(check bool) "arithmetic precedence" true
    (Ast.equal_expr e2
       (mk
          (Ast.Ele
             ( mk (Ast.Eadd (id "n", mk (Ast.Enum 1))),
               mk (Ast.Esub (id "m", mk (Ast.Enum 2))) ))))

let test_parse_group_knowledge () =
  let e = Parser.expr_of_string "C[A, B](x = 1) /\\ E[A](y)" in
  match e.Ast.expr with
  | Ast.Eand
      ( { Ast.expr = Ast.Egroup (Ast.Gcommon, [ "A"; "B" ], _); _ },
        { Ast.expr = Ast.Egroup (Ast.Geveryone, [ "A" ], _); _ } ) -> ()
  | _ -> Alcotest.fail "group knowledge misparsed"

let test_parse_errors () =
  let bad = [ "program"; "program p init true"; "program p init true assign x :="; "1 +" ] in
  List.iter
    (fun src ->
      try
        (match String.index_opt src ' ' with
        | Some _ when String.length src > 3 && String.sub src 0 7 = "program" ->
            ignore (Parser.program_of_string src)
        | _ -> ignore (Parser.expr_of_string src));
        Alcotest.failf "expected a parse error for %S" src
      with Parser.Parse_error _ | Token.Lex_error _ -> ())
    bad

let test_roundtrip () =
  List.iter
    (fun src ->
      let p = Parser.program_of_string src in
      let printed = Format.asprintf "%a" Ast.pp_program p in
      let p2 = Parser.program_of_string printed in
      let printed2 = Format.asprintf "%a" Ast.pp_program p2 in
      Alcotest.(check string) "print ∘ parse fixpoint" printed printed2)
    [ figure1_src; counter_src ]

let test_elaborate_counter () =
  let sp, kbp = Elaborate.program (Parser.program_of_string counter_src) in
  Alcotest.(check bool) "standard program" true (Kbp.is_standard kbp);
  let prog = Kbp.to_standard_program kbp in
  (* n counts to 5 and sticks; mode returns to idle *)
  let n = Space.find sp "n" in
  let at5 = Expr.compile_bool sp Expr.(var n === nat 5) in
  Alcotest.(check bool) "n reaches 5" true
    (Kpt_logic.Props.leads_to prog (Bdd.tru (Space.manager sp)) at5);
  Alcotest.(check bool) "n ≤ 5 invariant" true
    (Program.invariant prog (Expr.compile_bool sp Expr.(var n <== nat 5)))

let test_elaborate_enum_literal () =
  let sp, kbp = Elaborate.program (Parser.program_of_string counter_src) in
  let prog = Kbp.to_standard_program kbp in
  let mode = Space.find sp "mode" in
  (* 'idle' resolved as the enum literal 0 *)
  let idle = Expr.compile_bool sp Expr.(var mode === nat 0) in
  Alcotest.(check bool) "initially idle" true
    (Pred.holds_implies sp (Program.init prog) idle)

let test_elaborate_figure1_end_to_end () =
  (* The parsed Figure 1 must reproduce E1: no solution, 2-cycle. *)
  let _, kbp = Elaborate.program (Parser.program_of_string figure1_src) in
  Alcotest.(check bool) "knowledge-based" false (Kbp.is_standard kbp);
  Alcotest.(check int) "no solutions" 0 (List.length (Kbp.solutions kbp));
  match Kbp.iterate kbp with
  | Kbp.Diverged { orbit; _ } -> Alcotest.(check int) "period 2" 2 (List.length orbit)
  | _ -> Alcotest.fail "should cycle"

let test_elaborate_errors () =
  let check_err src expected_fragment =
    try
      ignore (Elaborate.program (Parser.program_of_string src));
      Alcotest.failf "expected an elaboration error for %s" expected_fragment
    with Elaborate.Elab_error (_, msg) ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("error mentions " ^ expected_fragment) true
        (contains msg expected_fragment)
  in
  check_err "program p\nvar x : bool\ninit y\nassign s: x := true" "unknown identifier";
  check_err "program p\nvar x : bool\ninit true\nassign s: x, x := true, false if K[Q](x)"
    "unknown process";
  check_err "program p\nvar x : bool\ninit true\nassign s: x := true, false" "targets";
  check_err "program p\nvar x : bool\ninit K[P](x)\nassign s: x := true" "guards"

let test_expr_against_existing_space () =
  let sp = Space.create () in
  let _ = Space.nat_var sp "n" ~max:9 in
  let e = Elaborate.expr sp (Parser.expr_of_string "n + 3 <= 9") in
  Alcotest.(check bool) "typed bool" true (Expr.typeof e = Expr.Tbool);
  (* arrays are recovered from the element-naming convention *)
  let _ = Space.nat_var sp "a[0]" ~max:3 in
  let _ = Space.nat_var sp "a[1]" ~max:3 in
  let e2 = Elaborate.expr sp (Parser.expr_of_string "a[n - 8] = 2") in
  Alcotest.(check bool) "array expr typed" true (Expr.typeof e2 = Expr.Tbool)

let array_src =
  {|
-- a two-cell shift register: cells move toward the output
program shifty
var buf : nat(3)[2]
var out : nat(3)
var head : nat(1)
init buf[0] = 2 /\ buf[1] = 3 /\ out = 0 /\ head = 0
assign
  emit:  out, head := buf[head], head + 1 if head < 1
| last:  out := buf[head] if head = 1
| spin:  buf[head] := buf[head]
|}

let test_array_parse_roundtrip () =
  let p = Parser.program_of_string array_src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = Parser.program_of_string printed in
  Alcotest.(check string) "array roundtrip" printed (Format.asprintf "%a" Ast.pp_program p2);
  match (List.hd p.Ast.p_stmts).Ast.s_exprs with
  | [ { Ast.expr = Ast.Eindex ("buf", { Ast.expr = Ast.Eident "head"; _ }); _ }; _ ] -> ()
  | _ -> Alcotest.fail "array index misparsed"

let test_array_elaborate () =
  let sp, kbp = Elaborate.program (Parser.program_of_string array_src) in
  let prog = Kbp.to_standard_program kbp in
  (* the shift register emits buf[0] then buf[1] *)
  let out = Space.find sp "out" in
  let final = Expr.compile_bool sp Expr.(var out === nat 3) in
  Alcotest.(check bool) "out eventually = buf[1] = 3" true
    (Kpt_logic.Props.leads_to prog (Bdd.tru (Space.manager sp)) final);
  (* element naming *)
  Alcotest.(check bool) "elements declared" true
    (match Space.find sp "buf[0]" with _ -> true | exception Not_found -> false)

let test_array_write_semantics () =
  let src =
    {|
program store
var a : nat(4)[3]
var i : nat(2)
init a[0] = 0 /\ a[1] = 0 /\ a[2] = 0 /\ i = 0
assign
  w: a[i], i := 4, i + 1 if i < 2
|}
  in
  let sp, kbp = Elaborate.program (Parser.program_of_string src) in
  let prog = Kbp.to_standard_program kbp in
  (* writing through the moving index never touches a[2] *)
  let a2 = Space.find sp "a[2]" in
  Alcotest.(check bool) "a[2] stays 0" true
    (Program.invariant prog (Expr.compile_bool sp Expr.(var a2 === nat 0)));
  let a0 = Space.find sp "a[0]" in
  Alcotest.(check bool) "a[0] eventually 4" true
    (Kpt_logic.Props.leads_to prog (Bdd.tru (Space.manager sp))
       (Expr.compile_bool sp Expr.(var a0 === nat 4)))

let test_array_errors () =
  let check_err src frag =
    try
      ignore (Elaborate.program (Parser.program_of_string src));
      Alcotest.failf "expected error about %s" frag
    with Elaborate.Elab_error (_, msg) ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("mentions " ^ frag) true (contains msg frag)
  in
  check_err "program p
var a : nat(1)[2]
init true
assign s: a := 0" "without an index";
  check_err "program p
var a : nat(1)[2]
init a = 0
assign s: a[0] := 0" "without an index";
  check_err "program p
var x : nat(1)
init true
assign s: x[0] := 0" "not an array";
  check_err "program p
var a : nat(1)[2][2]
init true
assign s: a[0] := 0" "nested arrays"

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer errors" `Quick test_lexer_error;
    Alcotest.test_case "parse figure 1" `Quick test_parse_figure1;
    Alcotest.test_case "precedence" `Quick test_parse_precedence;
    Alcotest.test_case "group knowledge" `Quick test_parse_group_knowledge;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "elaborate: standard program" `Quick test_elaborate_counter;
    Alcotest.test_case "elaborate: enum literals" `Quick test_elaborate_enum_literal;
    Alcotest.test_case "elaborate: figure 1 end-to-end" `Quick
      test_elaborate_figure1_end_to_end;
    Alcotest.test_case "elaborate: errors" `Quick test_elaborate_errors;
    Alcotest.test_case "expr against existing space" `Quick test_expr_against_existing_space;
    Alcotest.test_case "arrays: parse + roundtrip" `Quick test_array_parse_roundtrip;
    Alcotest.test_case "arrays: elaboration" `Quick test_array_elaborate;
    Alcotest.test_case "arrays: write semantics" `Quick test_array_write_semantics;
    Alcotest.test_case "arrays: errors" `Quick test_array_errors;
  ]
