(* The serve daemon's result cache, pinned at its edges: LRU eviction
   order exactly at the capacity boundary, the capacity-0 disable
   switch, and the content-address invariant that [jobs] and [trace] —
   the two options that never change rendered bytes — are erased from
   the cache key (so a [-j4] client and a [-j1] client share entries,
   and a traced request cannot poison the untraced one). *)

module Cache = Kpt_serve.Cache
module Protocol = Kpt_serve.Protocol

(* ---- LRU internals ----------------------------------------------------------- *)

let test_eviction_order_at_capacity () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  (* full, nothing evicted yet *)
  Alcotest.(check int) "entries at capacity" 3 (Cache.stats c).Cache.entries;
  Alcotest.(check int) "no evictions at capacity" 0 (Cache.stats c).Cache.evictions;
  (* touch "a": it becomes most-recent, so "b" is now the LRU victim *)
  Alcotest.(check (option int)) "hit refreshes" (Some 1) (Cache.find c "a");
  Cache.add c "d" 4;
  Alcotest.(check int) "one eviction past capacity" 1 (Cache.stats c).Cache.evictions;
  Alcotest.(check (option int)) "b was the LRU victim" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survived (refreshed)" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c survived" (Some 3) (Cache.find c "c");
  Alcotest.(check (option int)) "d inserted" (Some 4) (Cache.find c "d");
  Alcotest.(check int) "entries stay at capacity" 3 (Cache.stats c).Cache.entries

let test_refresh_by_add () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* re-adding "a" refreshes its recency AND its value, without growing *)
  Cache.add c "a" 10;
  Alcotest.(check int) "no growth on refresh" 2 (Cache.stats c).Cache.entries;
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted, not the refreshed a" None (Cache.find c "b");
  Alcotest.(check (option int)) "refreshed value won" (Some 10) (Cache.find c "a")

let test_capacity_zero_disables () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "add is a no-op" None (Cache.find c "a");
  let s = Cache.stats c in
  Alcotest.(check int) "no entries" 0 s.Cache.entries;
  Alcotest.(check int) "misses still counted" 1 s.Cache.misses;
  Alcotest.(check int) "no hits" 0 s.Cache.hits;
  Alcotest.(check int) "no evictions" 0 s.Cache.evictions

(* ---- the cache-key invariant -------------------------------------------------- *)

let request ~jobs ~trace =
  {
    Protocol.id = 7;
    cmd = Protocol.Check;
    files = [ ("t.unity", "program p\nvar x : bool\ninit ~x\nassign\n  s: x := true") ];
    opts = { Kpt_analysis.Driver.default_options with jobs; trace };
  }

let test_key_ignores_jobs_and_trace () =
  let base = Protocol.cache_key (request ~jobs:None ~trace:false) in
  List.iter
    (fun (jobs, trace, what) ->
      Alcotest.(check string)
        (Printf.sprintf "%s does not split the key" what)
        base
        (Protocol.cache_key (request ~jobs ~trace)))
    [
      (Some 1, false, "-j1");
      (Some 4, false, "-j4");
      (None, true, "--trace");
      (Some 8, true, "-j8 --trace");
    ]

let test_key_splits_on_meaningful_options () =
  let base = Protocol.cache_key (request ~jobs:None ~trace:false) in
  let req = request ~jobs:None ~trace:false in
  let with_opts opts = Protocol.cache_key { req with Protocol.opts } in
  Alcotest.(check bool)
    "json changes the key" false
    (String.equal base
       (with_opts { Kpt_analysis.Driver.default_options with json = true }));
  Alcotest.(check bool)
    "slice changes the key" false
    (String.equal base
       (with_opts { Kpt_analysis.Driver.default_options with slice = true }));
  Alcotest.(check bool)
    "the source changes the key" false
    (String.equal base
       (Protocol.cache_key
          { req with Protocol.files = [ ("t.unity", "program q\nvar x : bool\ninit ~x\nassign\n  s: x := true") ] }))

let suite =
  [
    Alcotest.test_case "LRU eviction order at the capacity boundary" `Quick
      test_eviction_order_at_capacity;
    Alcotest.test_case "add refreshes recency and value" `Quick test_refresh_by_add;
    Alcotest.test_case "capacity 0 disables the cache" `Quick test_capacity_zero_disables;
    Alcotest.test_case "jobs and trace never split the cache key" `Quick
      test_key_ignores_jobs_and_trace;
    Alcotest.test_case "meaningful options do split the cache key" `Quick
      test_key_splits_on_meaningful_options;
  ]
