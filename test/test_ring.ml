(* Ring protocol families and the partitioned transition relations.

   Three pillars:
   - the token-ring family has a known closed-form reachable set (2n
     states), so the sst frontier loop through the new partitioned
     [Stmt.image] is pinned exactly at a non-trivial size;
   - on the whole examples corpus, the early-quantified [Stmt.sp]/[wp]
     must coincide with the naive monolithic relational product against
     [Stmt.trans] — before {e and} after a variable reorder;
   - the mirrored-counters instance separates reordering on from off
     under one node budget: the adversarial declaration order exhausts
     the budget, sifting completes and reproduces the agreement
     predicate exactly. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_syntax
open Kpt_protocols

(* ---- token ring ------------------------------------------------------------- *)

let test_token_ring_reachable () =
  let n = 8 in
  let r = Ring.token_ring ~n in
  let si = Program.si r.Ring.rprog in
  let count p = Bigcount.to_int (Space.count_states_exact r.Ring.rspace p) in
  Alcotest.(check (option int)) "2n reachable states" (Some (2 * n)) (count si);
  Alcotest.(check bool) "mutual exclusion is invariant" true
    (Program.invariant r.Ring.rprog (Ring.mutex_ok r));
  let m = Space.manager r.Ring.rspace in
  Alcotest.(check (option int)) "token holder busy in n states" (Some n)
    (count (Bdd.and_ m si (Ring.holder_busy r)));
  (* the ring never deadlocks: no reachable fixed point *)
  Alcotest.(check bool) "no reachable fixed point" true
    (Bdd.is_false (Bdd.and_ m si (Program.fixed_points r.Ring.rprog)))

let test_token_ring_stable_counterexample () =
  (* The §2 distinction, pinned through the partitioned sp: mutual
     exclusion is an {e invariant} of the ring (test above) but not
     {e stable} — from the unreachable state ⟨token=0, busy₁⟩, acquire0
     yields two busy stations.  What is stable is the stronger "only the
     token holder may be busy", which implies mutex. *)
  let r = Ring.token_ring ~n:4 in
  let sp = r.Ring.rspace in
  let busy0 = Expr.compile_bool sp (Expr.var r.Ring.busy.(0)) in
  Alcotest.(check bool) "busy0 not stable" false (Program.stable r.Ring.rprog busy0);
  Alcotest.(check bool) "mutex invariant yet not stable" false
    (Program.stable r.Ring.rprog (Ring.mutex_ok r));
  let holder_only =
    Expr.compile_bool sp
      (Expr.conj
         (List.init 4 (fun k ->
              Expr.(not_ (var r.Ring.busy.(k)) ||| (var r.Ring.token === nat k)))))
  in
  Alcotest.(check bool) "only-holder-busy stable" true
    (Program.stable r.Ring.rprog holder_only)

(* ---- corpus equivalence: partitioned vs monolithic ------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_names () =
  Sys.readdir "../examples/specs" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".unity")
  |> List.sort compare

(* Reference implementations: one monolithic relational product against
   the full transition relation, exactly the pre-partitioning code. *)
let naive_sp sp s p =
  let m = Space.manager sp in
  Space.to_current sp
    (Bdd.and_exists m (Space.all_current_bits sp)
       (Bdd.and_ m p (Space.domain sp))
       (Stmt.trans sp s))

let naive_wp sp s p =
  let m = Space.manager sp in
  Bdd.forall m (Space.all_next_bits sp)
    (Bdd.imp m (Stmt.trans sp s) (Space.to_next sp p))

let test_corpus_sp_wp_equivalence () =
  List.iter
    (fun name ->
      let ast = Parser.program_of_string (read_file ("../examples/specs/" ^ name)) in
      let eng = Engine.create () in
      Engine.set_reorder_mode eng (Some Engine.Reorder_auto);
      Engine.use eng (fun () ->
          let sp, kbp = Elaborate.program ast in
          if Kbp.is_standard kbp then begin
            let prog = Kbp.to_standard_program kbp in
            let m = Space.manager sp in
            let dom = Space.domain sp in
            let on_dom p = Bdd.and_ m dom p in
            let pins = [ ("init", Program.init prog); ("si", Program.si prog) ] in
            let check_stmt s =
              List.iter
                (fun (tag, p) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: sp %s @ %s" name (Stmt.name s) tag)
                    true
                    (Bdd.equal (on_dom (Stmt.sp sp s p)) (on_dom (naive_sp sp s p)));
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: wp %s @ %s" name (Stmt.name s) tag)
                    true
                    (Bdd.equal (on_dom (Stmt.wp sp s p)) (on_dom (naive_wp sp s p))))
                pins
            in
            List.iter check_stmt (Program.statements prog);
            (* now force a reorder and re-check: the cached schedules and
               relations must survive a level permutation *)
            let before = List.map (fun (tag, p) -> (tag, p, Program.sst prog p)) pins in
            Space.reorder sp;
            List.iter check_stmt (Program.statements prog);
            List.iter
              (fun (tag, p, sst_before) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: sst @ %s stable across reorder" name tag)
                  true
                  (Bdd.equal sst_before (Program.sst prog p)))
              before
          end))
    (spec_names ())

(* ---- the reordering contrast ------------------------------------------------ *)

let mirror_budget = Budget.limits ~max_nodes:800_000 ()

let test_mirror_contrast () =
  (* Same instance, same node budget.  Adversarial declaration order:
     with reordering off the sst fixpoint must blow the budget; with
     auto-sifting on it completes and equals the agreement predicate. *)
  let run mode =
    let eng = Engine.create () in
    Engine.set_reorder_mode eng (Some mode);
    Engine.use eng (fun () ->
        let mr = Ring.mirror ~n:10 ~width:2 in
        Engine.with_budget mirror_budget (fun () ->
            let si = Program.si mr.Ring.mprog in
            Bdd.equal si (Ring.agreement mr)))
  in
  (match run Engine.Reorder_off with
  | (_ : bool) -> Alcotest.fail "reorder off: expected the node budget to blow"
  | exception Budget.Exhausted (Budget.Node_ceiling _) -> ());
  match run Engine.Reorder_auto with
  | ok -> Alcotest.(check bool) "reorder auto: si = agreement" true ok
  | exception Budget.Exhausted r ->
      Alcotest.failf "reorder auto blew the budget: %s" (Budget.reason_to_string r)

let test_mirror_small_exact () =
  (* Independent of reordering: a small mirror instance has exactly
     (2^width)^n reachable states, all agreeing. *)
  let mr = Ring.mirror ~n:3 ~width:2 in
  let si = Program.si mr.Ring.mprog in
  Alcotest.(check bool) "si = agreement (small)" true (Bdd.equal si (Ring.agreement mr));
  Alcotest.(check (option int)) "4^3 reachable states" (Some 64)
    (Bigcount.to_int (Space.count_states_exact mr.Ring.mspace si))

let suite =
  [
    Alcotest.test_case "token ring: exact reachable set" `Quick test_token_ring_reachable;
    Alcotest.test_case "token ring: stability pins" `Quick test_token_ring_stable_counterexample;
    Alcotest.test_case "corpus: partitioned sp/wp = monolithic" `Slow
      test_corpus_sp_wp_equivalence;
    Alcotest.test_case "mirror: reorder on/off contrast" `Slow test_mirror_contrast;
    Alcotest.test_case "mirror: small instance exact" `Quick test_mirror_small_exact;
  ]
