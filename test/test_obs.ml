(* The observability layer: counters, spans, the event sink, the bench
   gate, exact model counting, and the [kpt stats --json] golden. *)

open Kpt_predicate
open Kpt_analysis

(* ---- counters ------------------------------------------------------------- *)

let test_counters_monotone () =
  Kpt_obs.reset ();
  let c = Kpt_obs.counter "test.obs.monotone" in
  Alcotest.(check int) "starts at zero" 0 (Kpt_obs.value c);
  Kpt_obs.incr c;
  Kpt_obs.incr c;
  Alcotest.(check int) "incr adds one" 2 (Kpt_obs.value c);
  Kpt_obs.add c 40;
  Alcotest.(check int) "add accumulates" 42 (Kpt_obs.value c);
  Kpt_obs.record_max c 17;
  Alcotest.(check int) "record_max of a smaller value is a no-op" 42 (Kpt_obs.value c);
  Kpt_obs.record_max c 99;
  Alcotest.(check int) "record_max raises to the high-water mark" 99 (Kpt_obs.value c)

let test_counters_interned () =
  Kpt_obs.reset ();
  let a = Kpt_obs.counter "test.obs.interned" in
  let b = Kpt_obs.counter "test.obs.interned" in
  Kpt_obs.incr a;
  Alcotest.(check int) "same name, same cell" 1 (Kpt_obs.value b);
  Alcotest.(check (option int))
    "snapshot sees the shared cell" (Some 1)
    (List.assoc_opt "test.obs.interned" (Kpt_obs.counters ()))

let test_counters_snapshot_sorted_and_reset () =
  Kpt_obs.reset ();
  let c = Kpt_obs.counter "test.obs.reset" in
  Kpt_obs.add c 7;
  let names = List.map fst (Kpt_obs.counters ()) in
  Alcotest.(check (list string)) "snapshot is name-sorted" (List.sort compare names) names;
  Kpt_obs.reset ();
  Alcotest.(check int) "reset zeroes the cell but keeps it registered" 0 (Kpt_obs.value c);
  Alcotest.(check bool) "still in the registry" true
    (List.mem_assoc "test.obs.reset" (Kpt_obs.counters ()))

(* The hot-path contract of the domain-safe rework: bumping a counter is
   a bounds-checked array store in the domain-local context — no
   allocation, even though the storage is now per-domain. *)
let test_incr_allocates_nothing () =
  let c = Kpt_obs.counter "test.obs.hotpath" in
  let before = Kpt_obs.value c in
  (* warm up: make sure the context's arrays already cover the slot *)
  Kpt_obs.incr c;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Kpt_obs.incr c;
    Kpt_obs.add c 2;
    Kpt_obs.record_max c i
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no words allocated on the minor heap" w0 w1;
  Alcotest.(check int) "and the bumps landed" (before + 1 + 30_000) (Kpt_obs.value c)

(* ---- metric contexts -------------------------------------------------------- *)

let test_ctx_isolation_and_merge () =
  let c = Kpt_obs.counter "test.obs.ctx" in
  let peak = Kpt_obs.counter "test.obs.ctx.peak" in
  Kpt_obs.reset ();
  Kpt_obs.add c 5;
  Kpt_obs.record_max peak 10;
  let inner = Kpt_obs.Ctx.create () in
  let v =
    Kpt_obs.Ctx.use inner (fun () ->
        Alcotest.(check int) "fresh context starts at zero" 0 (Kpt_obs.value c);
        Kpt_obs.add c 7;
        Kpt_obs.record_max peak 4;
        ignore (Kpt_obs.time "test.obs.ctx.span" (fun () -> ()));
        Kpt_obs.value c)
  in
  Alcotest.(check int) "bumps inside [use] land in the inner context" 7 v;
  Alcotest.(check int) "outer value is untouched" 5 (Kpt_obs.value c);
  Alcotest.(check (option int))
    "explicit snapshot of the inner context" (Some 7)
    (List.assoc_opt "test.obs.ctx" (Kpt_obs.Ctx.counters inner));
  Alcotest.(check bool) "inner span recorded in the inner context only" true
    (List.exists (fun (n, _, _) -> n = "test.obs.ctx.span") (Kpt_obs.Ctx.spans inner)
    && not (List.exists (fun (n, _, _) -> n = "test.obs.ctx.span") (Kpt_obs.spans ())));
  Kpt_obs.Ctx.merge ~into:(Kpt_obs.Ctx.current ()) inner;
  Alcotest.(check int) "merge sums plain counters" 12 (Kpt_obs.value c);
  Alcotest.(check int) "merge maxes high-watermark counters" 10 (Kpt_obs.value peak);
  Alcotest.(check bool) "merge imports spans" true
    (List.exists (fun (n, _, _) -> n = "test.obs.ctx.span") (Kpt_obs.spans ()))

let test_ctx_sink_is_per_context () =
  let got = ref 0 in
  let inner = Kpt_obs.Ctx.create () in
  Kpt_obs.Ctx.use inner (fun () ->
      Kpt_obs.set_sink (Some (fun _ _ -> incr got));
      if Kpt_obs.enabled () then Kpt_obs.emit "test.obs.ctx.event" []);
  Alcotest.(check bool) "sink does not leak out of the context" false (Kpt_obs.enabled ());
  if Kpt_obs.enabled () then Kpt_obs.emit "test.obs.ctx.event" [];
  Alcotest.(check int) "only the in-context emit was seen" 1 !got

(* ---- the event sink -------------------------------------------------------- *)

(* The contract every emit site relies on: with no sink installed the
   guarded pattern [if enabled () then emit …] runs without allocating,
   so tracing costs nothing when it is off. *)
let test_disabled_sink_allocates_nothing () =
  Kpt_obs.set_sink None;
  Alcotest.(check bool) "disabled" false (Kpt_obs.enabled ());
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    if Kpt_obs.enabled () then Kpt_obs.emit "test.obs.event" [ ("i", i); ("sq", i * i) ]
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "no words allocated on the minor heap" w0 w1

let test_sink_receives_events () =
  let got = ref [] in
  Kpt_obs.set_sink (Some (fun name fields -> got := (name, fields) :: !got));
  Alcotest.(check bool) "enabled" true (Kpt_obs.enabled ());
  if Kpt_obs.enabled () then Kpt_obs.emit "test.obs.event" [ ("a", 1); ("b", 2) ];
  Kpt_obs.set_sink None;
  if Kpt_obs.enabled () then Kpt_obs.emit "test.obs.unseen" [];
  Alcotest.(check int) "exactly the one event sent while enabled" 1 (List.length !got);
  let name, fields = List.hd !got in
  Alcotest.(check string) "event name" "test.obs.event" name;
  Alcotest.(check (list (pair string int))) "event fields" [ ("a", 1); ("b", 2) ] fields

let test_trace_sink_format () =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Kpt_obs.trace_sink ppf "sst.iter" [ ("iteration", 3); ("frontier_states", 12) ];
  Format.pp_print_flush ppf ();
  Alcotest.(check string) "the --trace line format"
    "trace: sst.iter iteration=3 frontier_states=12\n" (Buffer.contents buf)

(* ---- spans ----------------------------------------------------------------- *)

let test_span_nesting () =
  Kpt_obs.reset ();
  let spin () =
    (* something the clock can see without sleeping *)
    let acc = ref 0 in
    for i = 1 to 200_000 do
      acc := !acc + i
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let v =
    Kpt_obs.time "test.outer" (fun () ->
        Kpt_obs.time "test.inner" spin;
        Kpt_obs.time "test.inner" spin;
        17)
  in
  Alcotest.(check int) "time is transparent" 17 v;
  let find name =
    match List.find_opt (fun (n, _, _) -> n = name) (Kpt_obs.spans ()) with
    | Some (_, ns, calls) -> (ns, calls)
    | None -> Alcotest.failf "span %s not recorded" name
  in
  let outer_ns, outer_calls = find "test.outer" in
  let inner_ns, inner_calls = find "test.inner" in
  Alcotest.(check int) "outer called once" 1 outer_calls;
  Alcotest.(check int) "inner accumulated both calls" 2 inner_calls;
  Alcotest.(check bool) "parent total includes nested children" true (outer_ns >= inner_ns);
  Alcotest.(check bool) "totals are non-negative" true (Int64.compare inner_ns 0L >= 0)

(* ---- the bench gate --------------------------------------------------------- *)

let bench_json entries =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"benchmarks_ns_per_run\": {\n";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %.1f%s\n" name v
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string b "  },\n  \"scaling_standard_protocol\": []\n}\n";
  Buffer.contents b

let test_gate_parses_bench_json () =
  let json = bench_json [ ("P1 bdd: ops (12 vars)", 1234.5); ("P2 SI fixpoint", 99.0) ] in
  Alcotest.(check (list (pair string (float 0.0))))
    "benchmarks_of_json round-trips the section"
    [ ("P1 bdd: ops (12 vars)", 1234.5); ("P2 SI fixpoint", 99.0) ]
    (Kpt_obs.Gate.benchmarks_of_json json)

let test_gate_passes_within_tolerance () =
  let baseline = bench_json [ ("a", 100.0); ("b", 200.0) ] in
  let current = bench_json [ ("a", 120.0); ("b", 190.0) ] in
  let r = Kpt_obs.Gate.check ~baseline current in
  Alcotest.(check int) "two verdicts" 2 (List.length r.Kpt_obs.Gate.verdicts);
  Alcotest.(check int) "no regressions at +20%/−5%" 0 (List.length r.Kpt_obs.Gate.regressions);
  Alcotest.(check (list string)) "nothing missing" [] r.Kpt_obs.Gate.missing

(* The acceptance scenario: a synthetic 2× slowdown must fail the gate. *)
let test_gate_fails_on_2x_slowdown () =
  let baseline = bench_json [ ("a", 100.0); ("b", 200.0) ] in
  let current = bench_json [ ("a", 200.0); ("b", 400.0) ] in
  let r = Kpt_obs.Gate.check ~baseline current in
  Alcotest.(check int) "both benchmarks regress" 2 (List.length r.Kpt_obs.Gate.regressions);
  List.iter
    (fun v -> Alcotest.(check (float 1e-9)) "ratio is 2.0" 2.0 v.Kpt_obs.Gate.ratio)
    r.Kpt_obs.Gate.regressions;
  (* a wide-open tolerance accepts the same data *)
  let r' = Kpt_obs.Gate.check ~tolerance:1.5 ~baseline current in
  Alcotest.(check int) "tolerance 150% admits a 2x slowdown" 0
    (List.length r'.Kpt_obs.Gate.regressions)

let test_gate_detects_missing () =
  let baseline = bench_json [ ("a", 100.0); ("gone", 50.0) ] in
  let current = bench_json [ ("a", 100.0) ] in
  let r = Kpt_obs.Gate.check ~baseline current in
  Alcotest.(check (list string)) "renamed/removed benchmarks are flagged" [ "gone" ]
    r.Kpt_obs.Gate.missing;
  Alcotest.(check int) "the survivor is still judged" 1 (List.length r.Kpt_obs.Gate.verdicts)

(* ---- exact model counting ---------------------------------------------------- *)

let test_bigcount_arithmetic () =
  let open Bigcount in
  Alcotest.(check string) "2^64" "18446744073709551616" (to_string (pow2 64));
  Alcotest.(check string) "2^128" "340282366920938463463374607431768211456"
    (to_string (pow2 128));
  Alcotest.(check string) "123456789 * 987654321" "121932631112635269"
    (to_string (mul_int (of_int 123456789) 987654321));
  Alcotest.(check string) "shift_left is *2^k" (to_string (pow2 67))
    (to_string (shift_left (of_int 8) 64));
  Alcotest.(check bool) "add commutes with to_string" true
    (equal (add (pow2 64) one) (add one (pow2 64)));
  Alcotest.(check (option int)) "to_int round-trips small values" (Some 123456789)
    (to_int (of_int 123456789));
  Alcotest.(check (option int)) "to_int refuses 2^64" None (to_int (pow2 64));
  Alcotest.(check int) "compare orders by magnitude" (-1)
    (compare (pow2 64) (add (pow2 64) one))

(* brute force: evaluate the BDD on all 2^nvars assignments *)
let brute_count ~nvars p =
  let total = ref 0 in
  for a = 0 to (1 lsl nvars) - 1 do
    if Bdd.eval p (fun i -> (a lsr i) land 1 = 1) then incr total
  done;
  !total

let random_bdd m rng ~nvars =
  let rec go depth =
    if depth = 0 then
      let v = Random.State.int rng nvars in
      if Random.State.bool rng then Bdd.var m v else Bdd.nvar m v
    else
      let l = go (depth - 1) and r = go (depth - 1) in
      match Random.State.int rng 4 with
      | 0 -> Bdd.and_ m l r
      | 1 -> Bdd.or_ m l r
      | 2 -> Bdd.xor m l r
      | _ -> Bdd.imp m l r
  in
  go 5

let test_satcount_exact_vs_brute () =
  let rng = Random.State.make [| 0x5eed |] in
  let m = Bdd.create () in
  for _ = 1 to 25 do
    let nvars = 4 + Random.State.int rng 9 (* 4..12 *) in
    let p = random_bdd m rng ~nvars in
    let expected = brute_count ~nvars p in
    (match Bigcount.to_int (Bdd.sat_count_exact m ~nvars p) with
    | Some n -> Alcotest.(check int) "exact count = brute force" expected n
    | None -> Alcotest.fail "count of a <=12-var predicate overflowed int");
    Alcotest.(check (float 0.0)) "float view agrees exactly at small sizes"
      (float_of_int expected)
      (Bdd.sat_count m ~nvars p)
  done;
  (* one larger instance near the satellite's 20-var bound *)
  let nvars = 18 in
  let p = random_bdd m rng ~nvars in
  Alcotest.(check (option int)) "18-var instance"
    (Some (brute_count ~nvars p))
    (Bigcount.to_int (Bdd.sat_count_exact m ~nvars p))

(* The bug the satellite fixes: beyond 2^53 a float mantissa cannot hold
   the count, and beyond ~2^1024 it is not even finite.  The exact
   counter must stay bit-exact in both regimes. *)
let test_satcount_beyond_float_precision () =
  let m = Bdd.create () in
  (* |nvar 0| = 2^63 and the all-ones cube adds one more model, so the
     count is 2^63 + 1 — unrepresentable in a float mantissa *)
  let nvars = 64 in
  let cube = Bdd.conj m (List.init nvars (fun i -> Bdd.var m i)) in
  let p = Bdd.or_ m (Bdd.nvar m 0) cube in
  let exact = Bdd.sat_count_exact m ~nvars p in
  Alcotest.(check string) "2^63 + 1, bit-exact" "9223372036854775809"
    (Bigcount.to_string exact);
  Alcotest.(check bool) "the float view rounds it off" true
    (Bdd.sat_count m ~nvars p = 9.223372036854775808e18);
  (* 2^2000 overflows the float range entirely; the exact count is a
     603-digit number *)
  let exact_huge = Bdd.sat_count_exact m ~nvars:2000 (Bdd.tru m) in
  Alcotest.(check bool) "float overflows to infinity" true
    (Bdd.sat_count m ~nvars:2000 (Bdd.tru m) = infinity);
  Alcotest.(check int) "the exact count has 603 digits" 603
    (String.length (Bigcount.to_string exact_huge));
  Alcotest.(check bool) "and equals 2^2000" true
    (Bigcount.equal exact_huge (Bigcount.pow2 2000))

(* ---- kpt stats ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_spec path =
  Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string (read_file path))

(* Golden for [kpt stats --json examples/specs/transmit.unity]: the whole
   profile — exact state space, reachable count, sst fixpoint depth,
   op-cache hit rate, node counts and every counter — is a deterministic
   function of the input file, and this pin makes silent changes to the
   engine's work profile visible in review.  Regenerate with
     dune exec bin/kpt.exe -- stats --json --reorder=off \
       examples/specs/transmit.unity > test/golden/stats_transmit.json
   (--reorder=off because this test runs in-process under the library
   default, which is off; the CLI default is auto). *)
let test_stats_json_golden () =
  let loaded = load_spec "../examples/specs/transmit.unity" in
  let st = Stats.collect ~file:"examples/specs/transmit.unity" loaded in
  (* the counter registry is process-global, so the [test.obs.*] cells
     registered by the suites above leak into the snapshot here; drop
     those lines before comparing (they sort before "wcyl.*", so the
     trailing-comma structure is unaffected) *)
  let strip s =
    let keeps line =
      let rec has i =
        i + 7 <= String.length line && (String.sub line i 7 = "\"test.o" || has (i + 1))
      in
      not (has 0)
    in
    String.concat "\n" (List.filter keeps (String.split_on_char '\n' s))
  in
  Alcotest.(check string) "kpt stats --json matches the golden"
    (read_file "golden/stats_transmit.json")
    (strip (Stats.to_json ~timings:false st))

let test_stats_collect_shape () =
  let loaded = load_spec "../examples/specs/transmit.unity" in
  let st = Stats.collect ~file:"transmit" loaded in
  (match st.Stats.outcome with
  | Stats.Standard { reachable; si_nodes } ->
      Alcotest.(check int) "28 reachable states" 28 reachable;
      Alcotest.(check bool) "SI has nodes" true (si_nodes > 0)
  | _ -> Alcotest.fail "transmit.unity is a standard program");
  Alcotest.(check string) "exact state space" "864" (Bigcount.to_string st.Stats.state_space);
  let hr = Stats.hit_rate st in
  Alcotest.(check bool) "hit rate in (0, 1)" true (hr > 0.0 && hr < 1.0);
  Alcotest.(check bool) "peak node count recorded" true
    (List.assoc "bdd.nodes.peak" st.Stats.counters > 0);
  Alcotest.(check bool) "sst iterations recorded" true
    (List.assoc "sst.iterations" st.Stats.counters > 0);
  (* the human renderer and the JSON agree on the headline number *)
  let json = Stats.to_json ~timings:true st in
  Alcotest.(check bool) "timings included on request" true
    (let rec contains i =
       i + 10 <= String.length json && (String.sub json i 10 = "timings_ns" || contains (i + 1))
     in
     contains 0)

(* The gate's incomplete-results diagnosis (satellite of the corpus PR):
   a missing or malformed section must be reported by file, section and
   — when known — benchmark name, never as a bare parse failure. *)
let test_gate_missing_section_message () =
  Alcotest.(check string) "section-level message"
    "BENCH_RESULTS.json is incomplete — section \"counters\" is missing or malformed; \
     re-run the bench suite to regenerate it"
    (Kpt_obs.Gate.missing_section_message ~file:"BENCH_RESULTS.json" ~section:"counters"
       ());
  Alcotest.(check string) "benchmark-level message"
    "baseline.json is incomplete — benchmark \"lint.err\" is missing from section \
     \"benchmarks_ns_per_run\""
    (Kpt_obs.Gate.missing_section_message ~file:"baseline.json"
       ~section:"benchmarks_ns_per_run" ~benchmark:"lint.err" ())

let test_gate_require_section () =
  (* a parser that raises Failure is converted into the named message *)
  (match
     Kpt_obs.Gate.require_section ~file:"r.json" ~section:"scaling"
       (fun _ -> failwith "raw parse error")
       "{}"
   with
  | exception Failure m ->
      Alcotest.(check string) "failure renamed"
        (Kpt_obs.Gate.missing_section_message ~file:"r.json" ~section:"scaling" ())
        m
  | _ -> Alcotest.fail "require_section swallowed the failure");
  (* a working parser passes through untouched *)
  Alcotest.(check int) "success passes through" 42
    (Kpt_obs.Gate.require_section ~file:"r.json" ~section:"scaling"
       (fun s -> String.length s)
       (String.make 42 'x'))

let suite =
  [
    Alcotest.test_case "counters are monotone cells" `Quick test_counters_monotone;
    Alcotest.test_case "counters are interned by name" `Quick test_counters_interned;
    Alcotest.test_case "snapshot is sorted; reset keeps the registry" `Quick
      test_counters_snapshot_sorted_and_reset;
    Alcotest.test_case "counter bumps allocate nothing" `Quick test_incr_allocates_nothing;
    Alcotest.test_case "metric contexts isolate and merge" `Quick
      test_ctx_isolation_and_merge;
    Alcotest.test_case "sink is per-context" `Quick test_ctx_sink_is_per_context;
    Alcotest.test_case "disabled sink allocates nothing" `Quick
      test_disabled_sink_allocates_nothing;
    Alcotest.test_case "installed sink receives events" `Quick test_sink_receives_events;
    Alcotest.test_case "trace sink line format" `Quick test_trace_sink_format;
    Alcotest.test_case "spans nest and accumulate" `Quick test_span_nesting;
    Alcotest.test_case "gate parses bench JSON" `Quick test_gate_parses_bench_json;
    Alcotest.test_case "gate passes within tolerance" `Quick test_gate_passes_within_tolerance;
    Alcotest.test_case "gate fails a synthetic 2x slowdown" `Quick
      test_gate_fails_on_2x_slowdown;
    Alcotest.test_case "gate flags missing benchmarks" `Quick test_gate_detects_missing;
    Alcotest.test_case "bigcount arithmetic" `Quick test_bigcount_arithmetic;
    Alcotest.test_case "sat_count_exact = brute force (<=18 vars)" `Quick
      test_satcount_exact_vs_brute;
    Alcotest.test_case "sat_count_exact beyond float precision" `Quick
      test_satcount_beyond_float_precision;
    Alcotest.test_case "kpt stats --json golden (transmit.unity)" `Quick
      test_stats_json_golden;
    Alcotest.test_case "stats collect: shape and headline numbers" `Quick
      test_stats_collect_shape;
    Alcotest.test_case "gate names the missing section and benchmark" `Quick
      test_gate_missing_section_message;
    Alcotest.test_case "gate require_section converts bare failures" `Quick
      test_gate_require_section;
  ]
