(* Quickstart: the knowledge predicate transformer in five minutes.
   Run with:  dune exec examples/quickstart.exe

   We build the bit-transmission micro-protocol — a Sender owns a bit and
   writes it to a shared wire, a Receiver copies the wire — and ask the
   questions the paper is about: what does each process *know*, and how
   does knowledge relate to invariants? *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

let () =
  (* 1. Declare a state space and its variables. *)
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in (* the Sender's bit                 *)
  let c = Space.bool_var sp "c" in (* the shared wire, initially low   *)
  let r = Space.bool_var sp "r" in (* the Receiver's copy              *)

  (* 2. Processes are subsets of variables (§5). *)
  let sender = Process.make "S" [ b; c ] in
  let receiver = Process.make "R" [ c; r ] in

  (* 3. A UNITY program: guarded multiple assignments under fairness. *)
  let write = Stmt.make ~name:"write" ~guard:(Expr.var b) [ (c, Expr.var b) ] in
  let copy = Stmt.make ~name:"copy" [ (r, Expr.var c) ] in
  let prog =
    Program.make sp ~name:"bit_transmission"
      ~init:Expr.(not_ (var c) &&& not_ (var r))
      ~processes:[ sender; receiver ] [ write; copy ]
  in
  Format.printf "%a@.@." Program.pp prog;

  (* 4. The strongest invariant SI characterises the reachable states. *)
  let si = Program.si prog in
  Format.printf "SI (reachable states) = %a@.@." (Space.pp_pred sp) si;

  (* 5. Knowledge as a predicate transformer (eq. 13). *)
  let fact = Expr.compile_bool sp (Expr.var b) in
  let k_r = Knowledge.knows_in prog "R" fact in
  Format.printf "K_R(b)  = %a@." (Space.pp_pred sp) (Pred.normalize sp (Bdd.and_ (Space.manager sp) k_r si));
  Format.printf "  → the Receiver knows the bit exactly when the wire is high.@.@.";

  (* 6. The invariant correspondence (eq. 24): for q over R's variables,
        invariant (q ⇒ p)  ≡  invariant (q ⇒ K_R p). *)
  let q = Expr.compile_bool sp (Expr.var r) in
  let m = Space.manager sp in
  Format.printf "invariant (r ⇒ b)     = %b@." (Program.invariant prog (Bdd.imp m q fact));
  Format.printf "invariant (r ⇒ K_R b) = %b    (eq. 24 in action)@.@."
    (Program.invariant prog (Bdd.imp m q k_r));

  (* 7. Liveness under fairness: the Receiver eventually learns a set bit. *)
  let learns =
    Kpt_logic.Props.leads_to prog (Expr.compile_bool sp (Expr.var b)) k_r
  in
  Format.printf "b ↦ K_R(b) (the receiver eventually learns a set bit) = %b@." learns
