(* The muddy children (a.k.a. cheating husbands [MDH86]) — the classic
   knowledge-puzzle the literature the paper builds on keeps returning to.
   Run with:  dune exec examples/muddy_children.exe

   Two children; each sees the other's forehead but not its own; their
   father announces "at least one of you is muddy" (encoded in init).
   In synchronous rounds each child declares itself muddy as soon as it
   KNOWS it is.  Classic answer: with both muddy, nobody can declare in
   round 1, and that very silence lets both declare in round 2.

   We model the *rounds* explicitly (phase/round counters) and the
   *epistemic rule* with the genuine knowledge transformer: the program
   below is the standard instantiation, and we verify mechanically that
   (a) children only declare what they truly know — "declared" implies
   K_child(muddy), (b) silence is informative: after a silent first
   round each muddy child knows its state, and (c) everyone muddy
   eventually declares. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

let () =
  let sp = Space.create () in
  let ma = Space.bool_var sp "muddy_a" in
  let mb = Space.bool_var sp "muddy_b" in
  let da = Space.bool_var sp "declared_a" in
  let db = Space.bool_var sp "declared_b" in
  (* Declarations within a round are simultaneous in the classic puzzle:
     each child reacts to the declarations as of the END of the previous
     round, which we latch in da0/db0 when a round closes. *)
  let da0 = Space.bool_var sp "prev_a" in
  let db0 = Space.bool_var sp "prev_b" in
  (* phase 0: a moves; 1: b moves; 2: round ends *)
  let phase = Space.nat_var sp "phase" ~max:2 in
  let round = Space.nat_var sp "round" ~max:2 in
  let alice = Process.make "A" [ mb; da; db; da0; db0; phase; round ] in
  let bob = Process.make "B" [ ma; da; db; da0; db0; phase; round ] in
  let open Expr in
  (* The standard solution: declare if you see a clean forehead (round 1)
     or after a silent round (round 2). *)
  let silent = (var round >== nat 1) &&& not_ (var da0) &&& not_ (var db0) in
  let a_rule = not_ (var mb) ||| silent in
  let b_rule = not_ (var ma) ||| silent in
  let step_a =
    Stmt.make ~name:"a_moves"
      ~guard:(var phase === nat 0)
      [ (da, var da ||| a_rule); (phase, nat 1) ]
  in
  let step_b =
    Stmt.make ~name:"b_moves"
      ~guard:(var phase === nat 1)
      [ (db, var db ||| b_rule); (phase, nat 2) ]
  in
  let next_round =
    Stmt.make ~name:"round_ends"
      ~guard:((var phase === nat 2) &&& (var round <<< nat 2))
      [ (round, var round +! nat 1); (phase, nat 0); (da0, var da); (db0, var db) ]
  in
  (* father's announcement: at least one child is muddy *)
  let prog =
    Program.make sp ~name:"muddy_children"
      ~init:
        ((var ma ||| var mb) &&& not_ (var da) &&& not_ (var db)
        &&& not_ (var da0) &&& not_ (var db0)
        &&& (var phase === nat 0) &&& (var round === nat 0))
      ~processes:[ alice; bob ]
      [ step_a; step_b; next_round ]
  in
  Format.printf "%a@.@." Program.pp prog;

  let m = Space.manager sp in
  let bp e = Expr.compile_bool sp e in
  let k_a p = Knowledge.knows_in prog "A" p in
  let k_b p = Knowledge.knows_in prog "B" p in

  (* (a) epistemic soundness: declarations are knowledge *)
  let sound_a = Program.invariant prog (Bdd.imp m (bp (var da)) (k_a (bp (var ma)))) in
  let sound_b = Program.invariant prog (Bdd.imp m (bp (var db)) (k_b (bp (var mb)))) in
  Format.printf "declared_a ⇒ K_A(muddy_a) : %b@." sound_a;
  Format.printf "declared_b ⇒ K_B(muddy_b) : %b@.@." sound_b;

  (* (b) silence is informative: both muddy, round 1 reached, nobody has
     declared — now Alice KNOWS she is muddy, although she still cannot
     see her own forehead. *)
  let silent_round1 =
    bp (var ma &&& var mb &&& (var round >== nat 1) &&& not_ (var da) &&& not_ (var db))
  in
  let knows_after_silence =
    Bdd.implies m
      (Bdd.and_ m (Kpt_unity.Program.si prog) silent_round1)
      (k_a (bp (var ma)))
  in
  Format.printf "after a silent round, K_A(muddy_a) holds : %b@.@." knows_after_silence;

  (* …but in round 0 with both muddy, she does not know yet. *)
  let early = bp (var ma &&& var mb &&& (var round === nat 0) &&& (var phase === nat 0)) in
  let too_early =
    Bdd.is_false
      (Bdd.conj m [ Kpt_unity.Program.si prog; early; k_a (bp (var ma)) ])
  in
  Format.printf "in round 0 (both muddy) K_A(muddy_a) is false : %b@.@." too_early;

  (* (c) liveness: every muddy child eventually declares *)
  let live_a = Kpt_logic.Props.leads_to prog (bp (var ma)) (bp (var da)) in
  let live_b = Kpt_logic.Props.leads_to prog (bp (var mb)) (bp (var db)) in
  Format.printf "muddy_a ↦ declared_a : %b@." live_a;
  Format.printf "muddy_b ↦ declared_b : %b@." live_b;

  (* epistemic completeness: only truly muddy children declare *)
  let honest =
    Program.invariant prog
      (Bdd.and_ m (Bdd.imp m (bp (var da)) (bp (var ma))) (Bdd.imp m (bp (var db)) (bp (var mb))))
  in
  Format.printf "declarations are truthful : %b@." honest
