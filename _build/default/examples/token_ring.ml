(* A token ring through the knowledge lens.
   Run with:  dune exec examples/token_ring.exe

   Three processes pass a token; only the holder may enter its critical
   section.  Each process sees ONLY its own token flag and critical flag —
   so "holding the token" is exactly the knowledge that nobody else is
   critical: the token is a knowledge-carrying artifact.

   The example also shows a sharp edge of UNITY's statement-level
   fairness: with a naive "pass whenever idle" rule the scheduler can
   always offer the pass statement at the wrong moments, so the token
   need not circulate; a served-flag handshake repairs it.  Both facts
   are checked, not asserted. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

let n = 3

let build ~with_handshake =
  let sp = Space.create () in
  let has = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "has%d" i)) in
  let crit = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "crit%d" i)) in
  let served = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "served%d" i)) in
  let open Expr in
  let stmts =
    List.concat
      (List.init n (fun i ->
           let next = (i + 1) mod n in
           [
             Stmt.make
               ~name:(Printf.sprintf "enter%d" i)
               ~guard:
                 (var has.(i) &&& not_ (var crit.(i))
                 &&& if with_handshake then not_ (var served.(i)) else tru)
               [ (crit.(i), tru) ];
             Stmt.make
               ~name:(Printf.sprintf "leave%d" i)
               ~guard:(var crit.(i))
               [ (crit.(i), fls); (served.(i), tru) ];
             Stmt.make
               ~name:(Printf.sprintf "pass%d" i)
               ~guard:
                 (var has.(i) &&& not_ (var crit.(i))
                 &&& if with_handshake then var served.(i) else tru)
               [ (has.(i), fls); (has.(next), tru); (served.(i), fls) ];
           ]))
  in
  let init =
    conj
      (var has.(0)
      :: List.init (n - 1) (fun i -> not_ (var has.(i + 1)))
      @ List.init n (fun i -> not_ (var crit.(i)))
      @ List.init n (fun i -> not_ (var served.(i))))
  in
  let processes =
    List.init n (fun i ->
        Process.make (Printf.sprintf "P%d" i) [ has.(i); crit.(i); served.(i) ])
  in
  let prog =
    Program.make sp
      ~name:(if with_handshake then "token_ring" else "token_ring_naive")
      ~init ~processes stmts
  in
  (sp, has, crit, prog)

let () =
  let sp, has, crit, prog = build ~with_handshake:true in
  Format.printf "%a@.@." Program.pp prog;
  let m = Space.manager sp in
  let bp e = Expr.compile_bool sp e in
  let open Expr in
  (* safety: mutual exclusion, and exactly one token *)
  let mutex =
    conj
      (List.concat
         (List.init n (fun i ->
              List.init n (fun j ->
                  if i < j then not_ (var crit.(i) &&& var crit.(j)) else tru))))
  in
  Format.printf "mutual exclusion invariant          : %b@." (Program.invariant prog (bp mutex));
  let one_token =
    disj
      (List.init n (fun i ->
           conj
             (List.init n (fun j ->
                  if i = j then var has.(j) else not_ (var has.(j))))))
  in
  Format.printf "exactly one token invariant         : %b@.@."
    (Program.invariant prog (bp one_token));

  (* the knowledge reading: holding the token IS knowing you are alone *)
  let nobody_else i =
    conj (List.init n (fun j -> if j = i then tru else not_ (var crit.(j))))
  in
  let k0_alone = Knowledge.knows_in prog "P0" (bp (nobody_else 0)) in
  Format.printf "has₀ ⇒ K₀(no other is critical)     : %b@."
    (Program.invariant prog (Bdd.imp m (bp (var has.(0))) k0_alone));
  Format.printf "¬has₀ ∧ ¬K₀(...) somewhere reachable: %b   (without the token, no such knowledge)@.@."
    (not
       (Bdd.is_false
          (Bdd.conj m [ Program.si prog; Bdd.not_ m (bp (var has.(0))); Bdd.not_ m k0_alone ])));

  (* liveness: with the handshake the token circulates and everyone gets in *)
  List.iter
    (fun i ->
      Format.printf "true ↦ crit%d (handshake ring)       : %b@." i
        (Kpt_logic.Props.leads_to prog (Bdd.tru m) (bp (var crit.(i)))))
    (List.init n Fun.id);

  (* ... but the naive ring is NOT live under statement-level fairness *)
  let sp', has', _, naive = build ~with_handshake:false in
  let bp' e = Expr.compile_bool sp' e in
  Format.printf "@.naive ring: true ↦ has₁             : %b   (fair scheduler can starve the pass)@."
    (Kpt_logic.Props.leads_to naive (Bdd.tru (Space.manager sp')) (bp' (Expr.var has'.(1))));
  ignore has
