(* Two protocols whose correctness talk IS knowledge talk.
   Run with:  dune exec examples/knowledge_case_studies.exe

   1. Two-phase commit: the coordinator's commit guard ("every response is
      yes") is mechanically EQUAL to K_C(all votes are yes); the group
      holds the outcome distributively before a single message flows; and
      under crash failures the protocol provably blocks while staying
      safe — the classical results, each as a one-line check.

   2. Gossip: pairwise calls propagate secrets; a value register is
      exactly the knowledge of that secret; everyone eventually knows
      everything, yet "everyone knows" never deepens into common
      knowledge. *)

open Kpt_predicate
open Kpt_protocols

let () =
  Format.printf "══ Two-phase commit (2 participants) ══@.";
  let t = Commit.make ~participants:2 () in
  Format.printf "  safety (commit ⇒ unanimity, abort ⇒ some no) : %b@." (Commit.safety_holds t);
  Format.printf "  liveness (a decision is always reached)      : %b@." (Commit.decision_live t);
  Format.printf "  commit guard ≡ K_C(unanimity)                : %b@."
    (Commit.guard_is_knowledge t);
  Format.printf "  D_G(outcome) initially, nobody knows alone   : %b@."
    (Commit.distributed_but_not_individual t);
  Format.printf "  adopted commit ⇒ K_P(other votes)            : %b@."
    (Commit.adoption_teaches t ~i:0);

  Format.printf "@.── now with crash failures ([DM90]) ──@.";
  let c = Commit.make ~crashes:true ~participants:2 () in
  Format.printf "  safety survives crashes                      : %b@." (Commit.safety_holds c);
  Format.printf "  liveness survives crashes                    : %b@." (Commit.decision_live c);
  (match Commit.blocking_witness c with
  | Some st ->
      Format.printf "  blocking scenario (fair run stays undecided):@.    %a@."
        (Space.pp_state c.Commit.space) st
  | None -> Format.printf "  no blocking scenario (unexpected)@.");

  Format.printf "@.══ Gossip (3 agents) ══@.";
  let g = Gossip.make ~agents:3 in
  Format.printf "  registers only ever hold correct values      : %b@."
    (Gossip.registers_correct g);
  Format.printf "  register ≡ knowledge (v_{0,2} ⟺ K_0(s_2))    : %b@."
    (Gossip.register_is_knowledge g ~i:0 ~k:2);
  Format.printf "  learning is monotone (registers are history) : %b@."
    (Gossip.learning_monotone g);
  Format.printf "  fairness saturates everyone's knowledge      : %b@." (Gossip.everybody_learns g);
  Format.printf "  …yet E_G never deepens to E_G² or C_G        : %b@."
    (Gossip.no_common_knowledge g);
  Format.printf
    "@.→ knowledge climbs one rung per message — and the common-knowledge rung@.";
  Format.printf "  stays out of reach of any finite protocol (cf. coordinated_attack.exe).@."
