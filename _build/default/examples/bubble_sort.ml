(* The paper's §5 example of a quantified statement family:

     ⟨ □ i : 0 ≤ i < n : x[i], x[i+1] := x[i+1], x[i]  if  x[i] > x[i+1] ⟩

   "The quantified program is a nondeterministic bubble sort which reaches
   a fixed point when the array is sorted."
   Run with:  dune exec examples/bubble_sort.exe *)

open Kpt_predicate
open Kpt_unity

let () =
  let n = 4 and maxv = 3 in
  let sp = Space.create () in
  let arr = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:maxv) in
  let swaps =
    List.init (n - 1) (fun i ->
        Stmt.make
          ~name:(Printf.sprintf "swap%d" i)
          ~guard:Expr.(var arr.(i) >>> var arr.(i + 1))
          [ (arr.(i), Expr.var arr.(i + 1)); (arr.(i + 1), Expr.var arr.(i)) ])
  in
  let prog = Program.make sp ~name:"bubble_sort" ~init:Expr.tru swaps in
  Format.printf "%a@.@." Program.pp prog;

  (* Fixed points = sorted arrays, exactly (§5's remark). *)
  let sorted =
    Expr.compile_bool sp
      (Expr.conj (List.init (n - 1) (fun i -> Expr.(var arr.(i) <== var arr.(i + 1)))))
  in
  let fp = Program.fixed_points prog in
  Format.printf "fixed points = sorted arrays : %b@." (Pred.equivalent sp fp sorted);

  (* Under fairness, every array eventually becomes sorted. *)
  let m = Space.manager sp in
  Format.printf "true ↦ sorted              : %b@."
    (Kpt_logic.Props.leads_to prog (Bdd.tru m) sorted);

  (* And sortedness, once reached, is stable. *)
  Format.printf "stable sorted               : %b@." (Kpt_logic.Props.stable prog sorted);

  (* Count the sorted states among all states. *)
  Format.printf "%d of %d states are sorted (multisets with repetition).@."
    (Space.count_states_of sp sorted)
    (Space.state_count sp)
