examples/quickstart.ml: Bdd Expr Format Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity Pred Process Program Space Stmt
