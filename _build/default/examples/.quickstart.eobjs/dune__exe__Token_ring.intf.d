examples/token_ring.mli:
