examples/knowledge_case_studies.ml: Commit Format Gossip Kpt_predicate Kpt_protocols Space
