examples/token_ring.ml: Array Bdd Expr Format Fun Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Space Stmt
