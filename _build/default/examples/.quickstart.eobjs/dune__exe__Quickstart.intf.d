examples/quickstart.mli:
