examples/muddy_children.mli:
