examples/knowledge_case_studies.mli:
