examples/seq_transmission.ml: Array Bdd Exec Expr Format Kpt_logic Kpt_predicate Kpt_protocols Kpt_runs Kpt_unity List Monitor Printf Program Random Seqtrans Seqtrans_proofs Space String
