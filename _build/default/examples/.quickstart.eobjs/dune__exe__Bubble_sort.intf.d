examples/bubble_sort.mli:
