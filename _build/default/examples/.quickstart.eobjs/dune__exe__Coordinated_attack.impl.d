examples/coordinated_attack.ml: Array Bdd Expr Format Kbp Kform Knowledge Kpt_core Kpt_predicate Kpt_unity List Pred Printf Process Program Space Stmt
