examples/muddy_children.ml: Bdd Expr Format Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity Process Program Space Stmt
