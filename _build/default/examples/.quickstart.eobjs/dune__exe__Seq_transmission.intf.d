examples/seq_transmission.mli:
