examples/bubble_sort.ml: Array Bdd Expr Format Kpt_logic Kpt_predicate Kpt_unity List Pred Printf Program Space Stmt
