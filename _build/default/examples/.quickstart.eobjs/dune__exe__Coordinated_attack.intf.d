examples/coordinated_attack.mli:
