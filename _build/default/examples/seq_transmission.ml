(* The sequence transmission problem (§6) end to end.
   Run with:  dune exec examples/seq_transmission.exe

   Builds the Figure-4 standard protocol over a lossy/duplicating channel,
   model-checks the §6 obligations, replays the paper's proof in the LCF
   kernel, and then simulates a concrete fair execution, watching
   knowledge being acquired along the trace. *)

open Kpt_predicate
open Kpt_unity
open Kpt_runs
open Kpt_protocols

let () =
  let params = { Seqtrans.n = 2; a = 2 } in
  let st = Seqtrans.standard ~lossy:true params in
  let prog = st.Seqtrans.sprog in
  let sp = st.Seqtrans.sspace in
  Format.printf "== The standard protocol (Figure 4), n=2, |A|=2, lossy channel ==@.";
  Format.printf "%a@.@." Program.pp prog;

  (* model checking the §6.3 obligations *)
  Format.printf "safety (34)  invariant w ⊑ x            : %b@."
    (Program.invariant prog (Seqtrans.spec_safety st));
  Format.printf "stability (55) of the K_SK_R candidate  : %b@."
    (Seqtrans.stable55_holds st ~k:0);
  Format.printf "stability (56) of the K_R candidate     : %b@."
    (Seqtrans.stable56_holds st ~k:0 ~alpha:1);
  Format.printf "liveness (35) on the LOSSY channel      : %b  ← needs St-3/St-4!@."
    (Seqtrans.spec_liveness_holds st ~k:0);

  (* the kernel replay: liveness is conditional on the channel *)
  let thms = Seqtrans_proofs.replay_standard ~assume_channel:true st in
  Format.printf "@.== Kernel replay of the §6 proof ==@.";
  List.iter
    (fun (name, t) ->
      let assumps = Kpt_logic.Proof.assumptions t in
      Format.printf "  %-22s %s@." name
        (if assumps = [] then "proved from the text"
         else "assuming " ^ String.concat ", " assumps))
    thms;

  (* knowledge predicates: the paper's (50) is exactly K_R(x_k = α) *)
  let m = Space.manager sp in
  let si = Program.si prog in
  let cand = Seqtrans.cand_kr st ~k:0 ~alpha:1 in
  let real = Seqtrans.real_kr st ~k:0 ~alpha:1 in
  Format.printf "@.(50) ≡ K_R(x₀ = 1) on reachable states : %b@."
    (Bdd.is_true (Bdd.imp m si (Bdd.iff m cand real)));

  (* concrete simulation: watch knowledge grow along a fair run *)
  Format.printf "@.== A fair execution (duplicating-only channel) ==@.";
  let st2 = Seqtrans.standard ~lossy:false params in
  let prog2 = st2.Seqtrans.sprog in
  let sp2 = st2.Seqtrans.sspace in
  let rng = Random.State.make [| 2026 |] in
  let init = Exec.random_init prog2 rng in
  let trace = Exec.run prog2 ~scheduler:(Exec.Random_fair 7) ~steps:120 ~init in
  let fact = Seqtrans.real_kr st2 ~k:0 ~alpha:init.(Space.idx st2.Seqtrans.xs.(0)) in
  (match Monitor.eventually sp2 fact trace with
  | Some idx -> Format.printf "receiver learns x₀ after %d steps@." idx
  | None -> Format.printf "receiver did not learn x₀ in this prefix@.");
  let done_p = Expr.compile_bool sp2 Expr.(var st2.Seqtrans.j === nat 2) in
  (match Monitor.eventually sp2 done_p trace with
  | Some idx -> Format.printf "all %d elements delivered after %d steps@." params.Seqtrans.n idx
  | None -> Format.printf "transmission still in progress after 120 steps@.");
  Format.printf "statement mix: %s@."
    (String.concat ", "
       (List.map (fun (s, c) -> Printf.sprintf "%s×%d" s c) (Exec.statement_counts trace)))
