open Kpt_predicate
open Kpt_unity
open Kpt_logic
open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }

(* Build once; SI computations dominate and are cached per program. *)
let std_ok = lazy (Seqtrans.standard ~lossy:false params)
let std_lossy = lazy (Seqtrans.standard ~lossy:true params)
let kbp = lazy (Seqtrans.abstract_kbp params)

let test_params_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Seqtrans: horizon n must be ≥ 2")
    (fun () -> ignore (Seqtrans.standard { Seqtrans.n = 1; a = 2 }));
  Alcotest.check_raises "a too small"
    (Invalid_argument "Seqtrans: alphabet size a must be ≥ 2 (no a priori knowledge)")
    (fun () -> ignore (Seqtrans.standard { Seqtrans.n = 2; a = 1 }))

let test_standard_safety () =
  let st = Lazy.force std_ok in
  Alcotest.(check bool) "safety (34), duplicating channel" true
    (Program.invariant st.Seqtrans.sprog (Seqtrans.spec_safety st));
  let sl = Lazy.force std_lossy in
  Alcotest.(check bool) "safety (34), lossy channel" true
    (Program.invariant sl.Seqtrans.sprog (Seqtrans.spec_safety sl))

let test_standard_liveness () =
  let st = Lazy.force std_ok in
  Alcotest.(check bool) "liveness (35) @0" true (Seqtrans.spec_liveness_holds st ~k:0);
  Alcotest.(check bool) "liveness (35) @1" true (Seqtrans.spec_liveness_holds st ~k:1)

let test_lossy_liveness_fails () =
  (* The paper's point: the maximal lossy channel does not satisfy
     St-3/St-4, so liveness fails semantically and must be assumed. *)
  let sl = Lazy.force std_lossy in
  Alcotest.(check bool) "liveness fails on lossy channel" false
    (Seqtrans.spec_liveness_holds sl ~k:0)

let test_invariants_54_61_62 () =
  let sl = Lazy.force std_lossy in
  let prog = sl.Seqtrans.sprog in
  for k = 0 to 1 do
    Alcotest.(check bool) "(54)" true (Program.invariant prog (Seqtrans.inv54 sl ~k));
    Alcotest.(check bool) "(62)" true (Program.invariant prog (Seqtrans.inv62 sl ~k));
    for alpha = 0 to 1 do
      Alcotest.(check bool) "(61)" true
        (Program.invariant prog (Seqtrans.inv61 sl ~k ~alpha))
    done
  done

let test_stability_55_56 () =
  let sl = Lazy.force std_lossy in
  for k = 0 to 1 do
    Alcotest.(check bool) "(55) stable" true (Seqtrans.stable55_holds sl ~k);
    for alpha = 0 to 1 do
      Alcotest.(check bool) "(56) stable" true (Seqtrans.stable56_holds sl ~k ~alpha)
    done
  done

(* E4 crown check — the [HZar] Proposition 4.5 analogue: with no a priori
   information the proposed predicates (50)/(51) are exactly the knowledge
   predicates on reachable states. *)
let test_candidates_are_knowledge () =
  let sl = Lazy.force std_lossy in
  let m = Space.manager sl.Seqtrans.sspace in
  let si = Program.si sl.Seqtrans.sprog in
  for k = 0 to 1 do
    for alpha = 0 to 1 do
      let cand = Seqtrans.cand_kr sl ~k ~alpha in
      let real = Seqtrans.real_kr sl ~k ~alpha in
      Alcotest.(check bool) "(50) ⇒ K_R within SI" true
        (Bdd.implies m (Bdd.and_ m si cand) real);
      Alcotest.(check bool) "K_R ⇒ (50) within SI (weakest)" true
        (Bdd.implies m (Bdd.and_ m si real) cand)
    done;
    let candk = Seqtrans.cand_kskr sl ~k in
    let realk = Seqtrans.real_kskr sl ~k in
    Alcotest.(check bool) "(51) ⇒ K_S K_R within SI" true
      (Bdd.implies m (Bdd.and_ m si candk) realk);
    Alcotest.(check bool) "K_S K_R ⇒ (51) within SI (weakest)" true
      (Bdd.implies m (Bdd.and_ m si realk) candk)
  done

let test_abstract_semantics () =
  let ab = Lazy.force kbp in
  Alcotest.(check bool) "abstract safety" true
    (Program.invariant ab.Seqtrans.aprog (Seqtrans.a_spec_safety ab));
  Alcotest.(check bool) "abstract liveness @0" true (Seqtrans.a_spec_liveness_holds ab ~k:0);
  Alcotest.(check bool) "abstract liveness @1" true (Seqtrans.a_spec_liveness_holds ab ~k:1)

let test_abstract_knowledge_vars_sound () =
  (* The knowledge variables under-approximate truth: kR_k_α ⇒ x_k = α. *)
  let ab = Lazy.force kbp in
  let sp = ab.Seqtrans.aspace in
  let prog = ab.Seqtrans.aprog in
  for k = 0 to 1 do
    for alpha = 0 to 1 do
      let claim =
        Expr.compile_bool sp
          Expr.(var ab.Seqtrans.kr.(k).(alpha) ==> (var ab.Seqtrans.axs.(k) === nat alpha))
      in
      Alcotest.(check bool) "kR sound" true (Program.invariant prog claim)
    done
  done

(* ---- the mechanised §6.2 replay ---------------------------------------- *)

let test_replay_abstract () =
  let ab = Lazy.force kbp in
  let thms = Seqtrans_proofs.replay_abstract ab in
  Alcotest.(check bool) "replay produced theorems" true (List.length thms >= 15);
  List.iter
    (fun (name, t) ->
      Alcotest.(check (list string)) (name ^ " assumption-free") [] (Proof.assumptions t))
    thms;
  (* every assumption-free theorem must also hold semantically *)
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool) (name ^ " semantically valid") true (Proof.check t))
    thms

let test_replay_standard_no_loss () =
  let st = Lazy.force std_ok in
  let thms = Seqtrans_proofs.replay_standard ~assume_channel:false st in
  List.iter
    (fun (name, t) ->
      Alcotest.(check (list string)) (name ^ " assumption-free") [] (Proof.assumptions t))
    thms

let test_replay_standard_lossy () =
  let sl = Lazy.force std_lossy in
  let thms = Seqtrans_proofs.replay_standard ~assume_channel:true sl in
  (* safety theorems are unconditional; liveness carries St-3/St-4 *)
  List.iter
    (fun (name, t) ->
      let assumps = Proof.assumptions t in
      if String.length name >= 8 && String.sub name 0 8 = "liveness" then
        Alcotest.(check (list string)) (name ^ " assumes the channel") [ "St-3"; "St-4" ] assumps
      else Alcotest.(check (list string)) (name ^ " unconditional") [] assumps)
    thms

let test_window_invariant () =
  (* §6.4: "the values of i and j are synchronized in order to maintain
     invariant i ≤ j ≤ i+1". *)
  let sl = Lazy.force std_lossy in
  let sp = sl.Seqtrans.sspace in
  let w =
    Expr.compile_bool sp
      Expr.(
        (var sl.Seqtrans.i <== var sl.Seqtrans.j)
        &&& (var sl.Seqtrans.j <== var sl.Seqtrans.i +! nat 1))
  in
  Alcotest.(check bool) "i ≤ j ≤ i+1" true (Program.invariant sl.Seqtrans.sprog w)

let test_fixed_point_done () =
  (* Once everything is delivered and acknowledged the protocol idles:
     some fixed point with j = n is reachable. *)
  let st = Lazy.force std_ok in
  let sp = st.Seqtrans.sspace in
  let m = Space.manager sp in
  let prog = st.Seqtrans.sprog in
  let done_p = Expr.compile_bool sp Expr.(var st.Seqtrans.j === nat 2) in
  Alcotest.(check bool) "a completed state is reachable" false
    (Bdd.is_false (Bdd.and_ m (Program.si prog) done_p))

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "standard safety (34)" `Quick test_standard_safety;
    Alcotest.test_case "standard liveness (35)" `Slow test_standard_liveness;
    Alcotest.test_case "lossy liveness fails" `Slow test_lossy_liveness_fails;
    Alcotest.test_case "invariants (54),(61),(62)" `Quick test_invariants_54_61_62;
    Alcotest.test_case "stability (55),(56)" `Quick test_stability_55_56;
    Alcotest.test_case "E4: (50)/(51) = knowledge (Prop 4.5)" `Quick
      test_candidates_are_knowledge;
    Alcotest.test_case "abstract KBP semantics" `Quick test_abstract_semantics;
    Alcotest.test_case "abstract knowledge vars sound" `Quick
      test_abstract_knowledge_vars_sound;
    Alcotest.test_case "E3: replay Figure 3 proof" `Slow test_replay_abstract;
    Alcotest.test_case "E4: replay Figure 4 proof (no loss)" `Slow
      test_replay_standard_no_loss;
    Alcotest.test_case "E4: replay Figure 4 proof (lossy, assumes St-3/4)" `Quick
      test_replay_standard_lossy;
    Alcotest.test_case "window invariant i ≤ j ≤ i+1" `Quick test_window_invariant;
    Alcotest.test_case "completion reachable" `Quick test_fixed_point_done;
  ]
