open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }

let test_instantiation_breaks () =
  let v = Apriori.instantiation_breaks params ~known_value:1 in
  (* §6.4 / footnote 3: with a priori information the proposed predicate
     (50) stays sound but is no longer the weakest — the standard protocol
     no longer instantiates the KBP — yet it still meets the spec. *)
  Alcotest.(check bool) "(50) still sound" true v.Apriori.cand_implies_k;
  Alcotest.(check bool) "(50) no longer weakest" false v.Apriori.k_implies_cand;
  Alcotest.(check bool) "still safe" true v.Apriori.still_safe;
  Alcotest.(check bool) "still live" true v.Apriori.still_live

let test_both_values () =
  let v0 = Apriori.instantiation_breaks params ~known_value:0 in
  Alcotest.(check bool) "breaks for value 0 too" false v0.Apriori.k_implies_cand

let test_message_savings () =
  (* The knowledge-optimal protocol sends strictly fewer data messages:
     element 0 is never transmitted. *)
  let p = { Seqtrans.n = 4; a = 2 } in
  let wins = ref 0 in
  for seed = 1 to 10 do
    let std = Apriori.run_standard ~seed p in
    let opt = Apriori.run_optimal ~seed p in
    Alcotest.(check bool) "both complete" true
      (std.Apriori.steps_to_done < 1_000_000 && opt.Apriori.steps_to_done < 1_000_000);
    if opt.Apriori.data_transmissions < std.Apriori.data_transmissions then incr wins
  done;
  Alcotest.(check bool) "optimal sends fewer data messages (≥ 8/10 seeds)" true (!wins >= 8)

let test_average_counts () =
  let p = { Seqtrans.n = 3; a = 2 } in
  let steps_std, data_std, _ = Apriori.average_counts (fun seed -> Apriori.run_standard ~seed p) ~seeds:5 in
  let steps_opt, data_opt, _ = Apriori.average_counts (fun seed -> Apriori.run_optimal ~seed p) ~seeds:5 in
  Alcotest.(check bool) "averages positive" true (steps_std > 0. && steps_opt > 0.);
  Alcotest.(check bool) "optimal average data below standard" true (data_opt < data_std)

let test_seed_determinism () =
  let p = { Seqtrans.n = 3; a = 2 } in
  let a = Apriori.run_standard ~seed:3 p in
  let b = Apriori.run_standard ~seed:3 p in
  Alcotest.(check int) "same steps" a.Apriori.steps_to_done b.Apriori.steps_to_done;
  Alcotest.(check int) "same data tx" a.Apriori.data_transmissions b.Apriori.data_transmissions

let test_pinned_program_valid () =
  let st = Seqtrans.standard ~lossy:false params in
  let prog = Apriori.pin_x0 st 1 in
  (* Stronger init: reachable set shrinks. *)
  let open Kpt_predicate in
  let sp = st.Seqtrans.sspace in
  let full = Space.count_states_of sp (Apriori.si_of st.Seqtrans.sprog) in
  let pinned = Space.count_states_of sp (Apriori.si_of prog) in
  Alcotest.(check bool) "pinned SI smaller" true (pinned < full)

let suite =
  [
    Alcotest.test_case "E6: instantiation breaks" `Slow test_instantiation_breaks;
    Alcotest.test_case "E6: both pinned values" `Slow test_both_values;
    Alcotest.test_case "E6: message savings" `Quick test_message_savings;
    Alcotest.test_case "average counts" `Quick test_average_counts;
    Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
    Alcotest.test_case "pinned program SI" `Quick test_pinned_program_valid;
  ]
