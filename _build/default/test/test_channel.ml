open Kpt_predicate
open Kpt_unity
open Kpt_protocols

let test_nat_codec () =
  let c = Channel.nat_codec ~max:4 in
  Alcotest.(check int) "card" 6 c.Channel.card;
  Alcotest.(check int) "bot" 5 c.Channel.bot;
  for v = 0 to 4 do
    Alcotest.(check int) "enc/dec" v (List.hd (c.Channel.dec (c.Channel.enc [ v ])))
  done

let test_pair_codec () =
  let c = Channel.pair_codec ~n:3 ~a:2 in
  Alcotest.(check int) "card" 7 c.Channel.card;
  Alcotest.(check int) "bot" 6 c.Channel.bot;
  for k = 0 to 2 do
    for alpha = 0 to 1 do
      let v = c.Channel.enc [ k; alpha ] in
      Alcotest.(check (list int)) "roundtrip" [ k; alpha ] (c.Channel.dec v)
    done
  done;
  Alcotest.check_raises "out of range"
    (Invalid_argument "pair_codec.enc: out of range") (fun () ->
      ignore (c.Channel.enc [ 3; 0 ]))

let setup () =
  let sp = Space.create () in
  let codec = Channel.pair_codec ~n:2 ~a:2 in
  let ch = Channel.declare sp ~name:"c" codec in
  let reg = Channel.register sp ~name:"reg" codec in
  let k = Space.nat_var sp "k" ~max:1 in
  let v = Space.nat_var sp "v" ~max:1 in
  (sp, codec, ch, reg, k, v)

let test_transmit_receive_concrete () =
  let sp, codec, ch, reg, k, v = setup () in
  let tx = Stmt.make ~name:"tx" [ Channel.transmit ch [ Expr.var k; Expr.var v ] ] in
  let dlv = Channel.deliver_stmt ch ~name:"dlv" in
  let rx = Stmt.make ~name:"rx" [ Channel.receive ch reg ] in
  let drop = Channel.drop_stmt ch ~name:"drop" in
  (* start with everything ⊥, k=1, v=1 *)
  let st0 = Array.make (List.length (Space.vars sp)) 0 in
  st0.(Space.idx ch.Channel.slot) <- codec.Channel.bot;
  st0.(Space.idx ch.Channel.avail) <- codec.Channel.bot;
  st0.(Space.idx reg) <- codec.Channel.bot;
  st0.(Space.idx k) <- 1;
  st0.(Space.idx v) <- 1;
  let st1 = Stmt.exec sp tx st0 in
  Alcotest.(check int) "transmit encodes (1,1)" (codec.Channel.enc [ 1; 1 ])
    st1.(Space.idx ch.Channel.slot);
  Alcotest.(check int) "avail untouched by transmit" codec.Channel.bot
    st1.(Space.idx ch.Channel.avail);
  let st2 = Stmt.exec sp dlv st1 in
  Alcotest.(check int) "deliver copies slot" st1.(Space.idx ch.Channel.slot)
    st2.(Space.idx ch.Channel.avail);
  let st3 = Stmt.exec sp rx st2 in
  Alcotest.(check int) "receive copies avail" st2.(Space.idx ch.Channel.avail)
    st3.(Space.idx reg);
  (* duplication: receive again without redelivery gets the same message *)
  let st4 = Stmt.exec sp rx st3 in
  Alcotest.(check int) "duplicate receive" st3.(Space.idx reg) st4.(Space.idx reg);
  (* loss: drop then receive yields ⊥ *)
  let st5 = Stmt.exec sp rx (Stmt.exec sp drop st4) in
  Alcotest.(check int) "dropped message reads ⊥" codec.Channel.bot st5.(Space.idx reg)

let test_capacity_one_is_st2 () =
  (* St-2 by construction: whatever the register holds (≠ ⊥) was
     transmitted at some point.  Explore all reachable states of a tiny
     closed system and check the register only ever holds the messages
     the sender could send. *)
  let sp, codec, ch, reg, k, v = setup () in
  let tx = Stmt.make ~name:"tx" [ Channel.transmit ch [ Expr.var k; Expr.var v ] ] in
  let dlv = Channel.deliver_stmt ch ~name:"dlv" in
  let rx = Stmt.make ~name:"rx" [ Channel.receive ch reg ] in
  let drop = Channel.drop_stmt ch ~name:"drop" in
  let init =
    Expr.(
      conj
        [
          var ch.Channel.slot === nat codec.Channel.bot;
          var ch.Channel.avail === nat codec.Channel.bot;
          var reg === nat codec.Channel.bot;
          var k === nat 0;
          var v === nat 1;
        ])
  in
  let prog = Program.make sp ~name:"st2" ~init [ tx; dlv; rx; drop ] in
  (* the only transmittable message is (0,1); the register is (0,1) or ⊥ *)
  let ok =
    Expr.compile_bool sp
      Expr.(
        (var reg === nat (codec.Channel.enc [ 0; 1 ]))
        ||| (var reg === nat codec.Channel.bot))
  in
  Alcotest.(check bool) "St-2 by construction" true (Program.invariant prog ok)

let test_mul_const () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  for c = 0 to 4 do
    let e = Channel.mul_const c (Expr.var x) in
    for vx = 0 to 3 do
      Alcotest.(check int) "mul_const" (c * vx) (Expr.eval e (fun _ -> vx))
    done
  done

let test_transmit_arity () =
  let _, _, ch, _, k, _ = setup () in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Channel.transmit: arity mismatch")
    (fun () -> ignore (Channel.transmit ch [ Expr.var k ]))

let suite =
  [
    Alcotest.test_case "nat codec" `Quick test_nat_codec;
    Alcotest.test_case "pair codec" `Quick test_pair_codec;
    Alcotest.test_case "transmit/deliver/receive/drop" `Quick test_transmit_receive_concrete;
    Alcotest.test_case "St-2 by construction" `Quick test_capacity_one_is_st2;
    Alcotest.test_case "mul_const" `Quick test_mul_const;
    Alcotest.test_case "transmit arity" `Quick test_transmit_arity;
  ]
