open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_protocols

(* A process that overwrites its only evidence: o observes s's secret into
   its register r, then may clear r.  K_O(secret) is learnt by observe and
   forgotten by clear — the textbook no-perfect-recall situation. *)
let observer () =
  let sp = Space.create () in
  let secret = Space.bool_var sp "secret" in
  let r = Space.nat_var sp "r" ~max:2 in
  (* r: 0 = no obs, 1 = saw false, 2 = saw true *)
  let o = Process.make "O" [ r ] in
  let s = Process.make "S" [ secret ] in
  let observe =
    Stmt.make ~name:"observe" [ (r, Expr.(Ite (var secret, nat 2, nat 1))) ]
  in
  let clear = Stmt.make ~name:"clear" [ (r, Expr.nat 0) ] in
  let prog =
    Program.make sp ~name:"observer" ~init:Expr.(var r === nat 0)
      ~processes:[ o; s ] [ observe; clear ]
  in
  (sp, secret, r, prog)

let test_learning_and_forgetting () =
  let sp, secret, _, prog = observer () in
  let fact = Expr.compile_bool sp (Expr.var secret) in
  Alcotest.(check (list string)) "observe teaches" [ "observe" ]
    (Kflow.learning_statements prog "O" fact);
  Alcotest.(check (list string)) "clear makes forget" [ "clear" ]
    (Kflow.forgetting_statements prog "O" fact);
  Alcotest.(check bool) "knowledge not stable" false (Kflow.knowledge_stable prog "O" fact);
  (* the learning states are exactly: secret true, not yet observed-true *)
  let l = Kflow.learns prog "O" fact (List.hd (Program.statements prog)) in
  Space.iter_states sp (fun st ->
      if Space.holds_at sp (Program.si prog) st then
        let expected = st.(0) = 1 && st.(1) <> 2 in
        Alcotest.(check bool) "learning set pointwise" expected (Space.holds_at sp l st))

let test_owner_never_forgets_itself () =
  (* The secret's owner always knows its own variable; nothing can change
     that (its view contains the fact itself). *)
  let sp, secret, _, prog = observer () in
  let fact = Expr.compile_bool sp (Expr.var secret) in
  Alcotest.(check bool) "S never forgets its own secret" true
    (Kflow.knowledge_stable prog "S" fact);
  Alcotest.(check (list string)) "and never needs to learn it" []
    (Kflow.learning_statements prog "S" fact)

(* The Figure-4 experiment.  Two findings, both mechanical:

   (a) Although z is overwritten by every receive, the sender NEVER forgets
       K_S(j ≥ k): the guards only let a receive happen when the pending
       ack is spent (z = i+1 disables snd_tx; once it advances, i ≥ k
       carries the knowledge).  This is the deeper reason stability (55)
       can hold at all — the protocol text encodes its own recall.

   (b) Knowledge about the OTHER side's counter is forgotten by one's own
       progress: at j = 0 the receiver knows i = 0 (the window invariant
       pins it), and destroys that knowledge by delivering — its new view
       admits both i = 0 and i = 1. *)
let test_standard_protocol_recall () =
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let sp = st.Seqtrans.sspace in
  let prog = st.Seqtrans.sprog in
  (* (a) sender recall, despite the lossy channel *)
  for k = 1 to 2 do
    let j_ge_k = Expr.compile_bool sp Expr.(var st.Seqtrans.j >== nat k) in
    Alcotest.(check bool)
      (Printf.sprintf "K_S(j ≥ %d) is never forgotten" k)
      true
      (Kflow.knowledge_stable prog "Sender" j_ge_k)
  done;
  (* the receiver's knowledge of data values is permanent (w is history) *)
  for k = 0 to 1 do
    for alpha = 0 to 1 do
      let fact = Expr.compile_bool sp Expr.(var st.Seqtrans.xs.(k) === nat alpha) in
      Alcotest.(check bool)
        (Printf.sprintf "K_R(x_%d = %d) never forgotten" k alpha)
        true
        (Kflow.knowledge_stable prog "Receiver" fact)
    done
  done;
  (* (b) but the receiver forgets K_R(i = 0) by moving on *)
  let i0 = Expr.compile_bool sp Expr.(var st.Seqtrans.i === nat 0) in
  Alcotest.(check bool) "K_R(i = 0) is forgettable" false
    (Kflow.knowledge_stable prog "Receiver" i0);
  let forgetters = Kflow.forgetting_statements prog "Receiver" i0 in
  Alcotest.(check bool) "forgotten by the receiver's own delivery" true
    (forgetters <> []
    && List.for_all
         (fun s -> s = "rcv_write0" || s = "rcv_write1" || s = "rcv_ack")
         forgetters)

let test_history_variable_restores_recall () =
  (* Add a history latch to the observer: once set it is never cleared, so
     knowledge through it is permanent — §3's recipe. *)
  let sp = Space.create () in
  let secret = Space.bool_var sp "secret" in
  let r = Space.nat_var sp "r" ~max:2 in
  let hist = Space.nat_var sp "hist" ~max:2 in
  let o = Process.make "O" [ r; hist ] in
  let observe =
    Stmt.make ~name:"observe"
      [
        (r, Expr.(Ite (var secret, nat 2, nat 1)));
        (hist, Expr.(Ite (var hist === nat 0, Ite (var secret, nat 2, nat 1), var hist)));
      ]
  in
  let clear = Stmt.make ~name:"clear" [ (r, Expr.nat 0) ] in
  let prog =
    Program.make sp ~name:"observer_hist"
      ~init:Expr.((var r === nat 0) &&& (var hist === nat 0))
      ~processes:[ o; Process.make "S" [ secret ] ]
      [ observe; clear ]
  in
  let fact = Expr.compile_bool sp (Expr.var secret) in
  Alcotest.(check bool) "with a history variable, recall is perfect" true
    (Kflow.knowledge_stable prog "O" fact);
  Alcotest.(check (list string)) "still learnt by observing" [ "observe" ]
    (Kflow.learning_statements prog "O" fact)

let suite =
  [
    Alcotest.test_case "learning and forgetting" `Quick test_learning_and_forgetting;
    Alcotest.test_case "owners never forget" `Quick test_owner_never_forgets_itself;
    Alcotest.test_case "Figure 4: recall analysis" `Quick test_standard_protocol_recall;
    Alcotest.test_case "history variables restore recall" `Quick
      test_history_variable_restores_recall;
  ]
