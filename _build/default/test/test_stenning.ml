open Kpt_unity
open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }
let stn_ok = lazy (Stenning.make ~lossy:false params)
let stn_lossy = lazy (Stenning.make ~lossy:true params)

let test_safety () =
  let t = Lazy.force stn_ok in
  Alcotest.(check bool) "Stenning safety (34)" true
    (Program.invariant t.Stenning.prog (Stenning.safety t));
  let tl = Lazy.force stn_lossy in
  Alcotest.(check bool) "Stenning safety under loss" true
    (Program.invariant tl.Stenning.prog (Stenning.safety tl))

let test_liveness () =
  let t = Lazy.force stn_ok in
  Alcotest.(check bool) "live @0" true (Stenning.liveness_holds t ~k:0);
  Alcotest.(check bool) "live @1" true (Stenning.liveness_holds t ~k:1)

let test_lossy_liveness_fails () =
  let tl = Lazy.force stn_lossy in
  Alcotest.(check bool) "liveness fails on lossy channel" false
    (Stenning.liveness_holds tl ~k:0)

let test_ack_meaning () =
  (* Stenning's ack names a delivered index: z = k (≠ ⊥) ⇒ j > k. *)
  let t = Lazy.force stn_lossy in
  let sp = t.Stenning.space in
  let { Seqtrans.n; _ } = t.Stenning.params in
  let claim =
    Expr.compile_bool sp
      (Expr.conj
         (List.init n (fun k ->
              Expr.((var t.Stenning.z === nat k) ==> (var t.Stenning.j >>> nat k)))))
  in
  Alcotest.(check bool) "ack names delivered index" true
    (Program.invariant t.Stenning.prog claim)

let test_window_invariant () =
  let t = Lazy.force stn_lossy in
  let sp = t.Stenning.space in
  let w =
    Expr.compile_bool sp
      Expr.(
        (var t.Stenning.i <== var t.Stenning.j)
        &&& (var t.Stenning.j <== var t.Stenning.i +! nat 1))
  in
  Alcotest.(check bool) "i ≤ j ≤ i+1" true (Program.invariant t.Stenning.prog w)

let suite =
  [
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "lossy liveness fails" `Slow test_lossy_liveness_fails;
    Alcotest.test_case "ack meaning" `Quick test_ack_meaning;
    Alcotest.test_case "window invariant" `Quick test_window_invariant;
  ]
