open Kpt_predicate

let make_space () =
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in
  let n = Space.nat_var sp "n" ~max:4 in
  let e = Space.enum_var sp "color" ~values:[| "red"; "green"; "blue" |] in
  (sp, b, n, e)

let test_declare () =
  let sp, b, n, e = make_space () in
  Alcotest.(check int) "three vars" 3 (List.length (Space.vars sp));
  Alcotest.(check string) "name" "n" (Space.name n);
  Alcotest.(check int) "bool card" 2 (Space.card b);
  Alcotest.(check int) "nat card" 5 (Space.card n);
  Alcotest.(check int) "enum card" 3 (Space.card e);
  Alcotest.(check int) "bool width" 1 (Space.width b);
  Alcotest.(check int) "nat width" 3 (Space.width n);
  Alcotest.(check int) "enum width" 2 (Space.width e);
  Alcotest.(check string) "enum value name" "green" (Space.value_name e 1);
  Alcotest.(check bool) "find" true (Space.idx (Space.find sp "color") = Space.idx e)

let test_duplicate () =
  let sp, _, _, _ = make_space () in
  Alcotest.check_raises "duplicate name" (Invalid_argument "Space: duplicate variable \"b\"")
    (fun () -> ignore (Space.bool_var sp "b"))

let test_bits_disjoint () =
  let sp, b, n, e = make_space () in
  let all = Space.all_current_bits sp @ Space.all_next_bits sp in
  Alcotest.(check int) "no bit shared" (List.length all) (List.length (List.sort_uniq compare all));
  List.iter
    (fun v ->
      List.iter (fun bit -> Alcotest.(check int) "current bits even" 0 (bit land 1)) (Space.current_bits v);
      List.iter (fun bit -> Alcotest.(check int) "next bits odd" 1 (bit land 1)) (Space.next_bits v))
    [ b; n; e ]

let test_state_count_iter () =
  let sp, _, _, _ = make_space () in
  Alcotest.(check int) "state_count" 30 (Space.state_count sp);
  let count = ref 0 in
  Space.iter_states sp (fun _ -> incr count);
  Alcotest.(check int) "iter_states covers all" 30 !count

let test_singleton () =
  let sp, _, _, _ = make_space () in
  let st = [| 1; 3; 2 |] in
  let p = Space.pred_of_state sp st in
  Alcotest.(check int) "singleton has one state" 1 (Space.count_states_of sp p);
  Alcotest.(check bool) "holds at itself" true (Space.holds_at sp p st);
  Alcotest.(check bool) "not at another" false (Space.holds_at sp p [| 0; 3; 2 |])

let test_domain () =
  let sp, _, n, e = make_space () in
  let m = Space.manager sp in
  let d = Space.domain sp in
  (* Junk point: n = 7 (out of 0..4) must violate the domain. *)
  let junk = Bdd.and_ m d (Bitvec.eq_const m (Space.cur_vec sp n) 7) in
  Alcotest.(check bool) "out-of-range nat excluded" true (Bdd.is_false junk);
  let junk2 = Bdd.and_ m d (Bitvec.eq_const m (Space.cur_vec sp e) 3) in
  Alcotest.(check bool) "out-of-range enum excluded" true (Bdd.is_false junk2);
  Alcotest.(check int) "domain has state_count states"
    (Space.state_count sp)
    (int_of_float
       (Bdd.sat_count m ~nvars:(2 * (1 + 3 + 2)) d /. float_of_int (1 lsl (1 + 3 + 2))))

let test_to_next_roundtrip () =
  let sp, _, n, _ = make_space () in
  let m = Space.manager sp in
  let p = Bitvec.eq_const m (Space.cur_vec sp n) 3 in
  let q = Space.to_next sp p in
  Alcotest.(check bool) "to_next changes predicate" false (Bdd.equal p q);
  Alcotest.(check bool) "roundtrip" true (Bdd.equal p (Space.to_current sp q));
  Alcotest.(check bool) "next_vec agrees" true
    (Bdd.equal q (Bitvec.eq_const m (Space.next_vec sp n) 3))

let test_states_of () =
  let sp, b, n, _ = make_space () in
  let m = Space.manager sp in
  let p =
    Bdd.and_ m
      (Bitvec.eq_const m (Space.cur_vec sp b) 1)
      (Bitvec.ge m (Space.cur_vec sp n) (Bitvec.const m ~width:3 3))
  in
  (* b=true, n∈{3,4}, color∈{0,1,2} → 6 states *)
  let sts = Space.states_of sp p in
  Alcotest.(check int) "states_of size" 6 (List.length sts);
  List.iter
    (fun st ->
      Alcotest.(check int) "b true" 1 st.(Space.idx b);
      Alcotest.(check bool) "n >= 3" true (st.(Space.idx n) >= 3))
    sts

let test_pp () =
  let sp, _, _, _ = make_space () in
  let st = [| 1; 2; 0 |] in
  let s = Format.asprintf "%a" (Space.pp_state sp) st in
  Alcotest.(check string) "pp_state" "⟨b=true n=2 color=red⟩" s

let suite =
  [
    Alcotest.test_case "declare" `Quick test_declare;
    Alcotest.test_case "duplicate name" `Quick test_duplicate;
    Alcotest.test_case "bit allocation" `Quick test_bits_disjoint;
    Alcotest.test_case "state_count/iter" `Quick test_state_count_iter;
    Alcotest.test_case "singleton predicates" `Quick test_singleton;
    Alcotest.test_case "domain constraint" `Quick test_domain;
    Alcotest.test_case "to_next roundtrip" `Quick test_to_next_roundtrip;
    Alcotest.test_case "states_of" `Quick test_states_of;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
