open Kpt_predicate
open Kpt_unity
open Kpt_logic

let counter () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let b = Space.bool_var sp "noise" in
  let inc = Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 3) [ (x, Expr.(var x +! nat 1)) ] in
  let noise = Stmt.make ~name:"noise" [ (b, Expr.(not_ (var b))) ] in
  let prog =
    Program.make sp ~name:"counter" ~init:Expr.(var x === nat 0 &&& not_ (var b)) [ inc; noise ]
  in
  (sp, x, prog)

let toggles () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let tx = Stmt.make ~name:"tx" [ (x, Expr.(not_ (var x))) ] in
  let ty = Stmt.make ~name:"ty" [ (y, Expr.(not_ (var y))) ] in
  let prog =
    Program.make sp ~name:"toggles" ~init:Expr.(not_ (var x) &&& not_ (var y)) [ tx; ty ]
  in
  (sp, x, y, prog)

let bp sp e = Expr.compile_bool sp e

let test_pre () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  let p = Ctl.pre prog (at 2) in
  (* predecessors of x=2: x=1 (inc) and x=2 itself (noise, or skipped inc) *)
  Space.iter_states sp (fun st ->
      let xv = st.(Space.idx x) in
      Alcotest.(check bool) "pre pointwise" (xv = 1 || xv = 2) (Space.holds_at sp p st))

let test_ef_is_forward_reach_dual () =
  (* EF init over the REVERSED direction matches SI: x ∈ SI iff init can
     reach x, iff x ∈ EF⁻¹… here instead check: SI ⊆ EF(fixed points) in
     the counter (everything can finish), and EF(x=3) = everything. *)
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  Alcotest.(check bool) "EF(x=3) covers the space" true (Pred.valid sp (Ctl.ef prog (at 3)));
  (* EF(x=0) only contains x=0 states: the counter never decreases *)
  let ef0 = Ctl.ef prog (at 0) in
  Space.iter_states sp (fun st ->
      Alcotest.(check bool) "EF(x=0) pointwise" (st.(Space.idx x) = 0)
        (Space.holds_at sp ef0 st))

let test_ag_invariant_correspondence () =
  let sp, x, prog = counter () in
  let st0 = Helpers.rng () in
  for _ = 1 to 15 do
    let p = Pred.random st0 sp in
    let lhs = Program.invariant prog p in
    let rhs = Pred.holds_implies sp (Program.init prog) (Ctl.ag prog p) in
    Alcotest.(check bool) "invariant p ⟺ init ⇒ AG p" lhs rhs
  done;
  ignore x

let test_af_fair_leadsto_correspondence () =
  let sp, _, prog = counter () in
  let m = Space.manager sp in
  let st0 = Helpers.rng () in
  for _ = 1 to 10 do
    let p = Pred.random st0 sp and q = Pred.random st0 sp in
    let lhs = Props.leads_to prog p q in
    let rhs =
      Bdd.implies m (Bdd.conj m [ Program.si prog; p ]) (Ctl.af_fair prog q)
    in
    Alcotest.(check bool) "p ↦ q ⟺ SI ∧ p ⇒ AF_fair q" lhs rhs
  done

let test_eg_fair () =
  let sp, x, y, prog = toggles () in
  (* a fair run can stay in ¬(x∧y) forever *)
  let not_both = bp sp Expr.(not_ (var x &&& var y)) in
  let eg = Ctl.eg_fair prog not_both in
  Alcotest.(check int) "three states can stay" 3 (Space.count_states_of sp eg);
  (* but nothing can stay in x∧y forever (first toggle leaves it) *)
  let both = bp sp Expr.(var x &&& var y) in
  Alcotest.(check int) "no state can stay in x∧y" 0
    (Space.count_states_of sp (Ctl.eg_fair prog both));
  ignore y

let test_duality () =
  let sp, _, prog = counter () in
  let m = Space.manager sp in
  let st0 = Helpers.rng () in
  for _ = 1 to 10 do
    let q = Pred.random st0 sp in
    (* AG q = ¬EF ¬q on the domain *)
    let lhs = Ctl.ag prog q in
    let rhs = Bdd.and_ m (Space.domain sp) (Bdd.not_ m (Ctl.ef prog (Bdd.not_ m q))) in
    Alcotest.(check bool) "AG/EF duality" true (Pred.equivalent sp lhs rhs);
    (* AF_fair q and EG_fair ¬q partition the reachable states *)
    let af = Ctl.af_fair prog q and eg = Ctl.eg_fair prog (Bdd.not_ m q) in
    Alcotest.(check bool) "AF/EG partition SI" true
      (Pred.equivalent sp (Bdd.or_ m af eg) (Program.si prog)
      && Bdd.is_false (Bdd.and_ m af eg))
  done

let suite =
  [
    Alcotest.test_case "preimage" `Quick test_pre;
    Alcotest.test_case "EF" `Quick test_ef_is_forward_reach_dual;
    Alcotest.test_case "AG ⟺ invariant" `Quick test_ag_invariant_correspondence;
    Alcotest.test_case "AF_fair ⟺ leads-to" `Quick test_af_fair_leadsto_correspondence;
    Alcotest.test_case "EG_fair" `Quick test_eg_fair;
    Alcotest.test_case "dualities" `Quick test_duality;
  ]
