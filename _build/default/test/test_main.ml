let () =
  Alcotest.run "kpt"
    [
      ("bdd", Test_bdd.suite);
      ("bitvec", Test_bitvec.suite);
      ("space", Test_space.suite);
      ("pred", Test_pred.suite);
      ("expr", Test_expr.suite);
      ("stmt", Test_stmt.suite);
      ("program", Test_program.suite);
      ("props", Test_props.suite);
      ("proof", Test_proof.suite);
      ("wcyl", Test_wcyl.suite);
      ("knowledge", Test_knowledge.suite);
      ("kform", Test_kform.suite);
      ("kbp", Test_kbp.suite);
      ("junctivity", Test_junctivity.suite);
      ("runs", Test_runs.suite);
      ("channel", Test_channel.suite);
      ("seqtrans", Test_seqtrans.suite);
      ("abp", Test_abp.suite);
      ("stenning", Test_stenning.suite);
      ("auy", Test_auy.suite);
      ("apriori", Test_apriori.suite);
      ("crossval", Test_crossval.suite);
      ("qcheck", Test_qcheck.suite);
      ("syntax", Test_syntax.suite);
      ("window", Test_window.suite);
      ("seqtrans-proofs", Test_seqtrans_proofs.suite);
      ("refine", Test_refine.suite);
      ("kflow", Test_kflow.suite);
      ("muddy", Test_muddy.suite);
      ("interpreted", Test_interpreted.suite);
      ("matrix", Test_matrix.suite);
      ("ctl", Test_ctl.suite);
      ("commit", Test_commit.suite);
      ("gossip", Test_gossip.suite);
    ]
