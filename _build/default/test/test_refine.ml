open Kpt_predicate
open Kpt_unity
open Kpt_logic
open Kpt_protocols

(* a counter over 0..max with an inc and a noise statement *)
let counter max =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max in
  let b = Space.bool_var sp "noise" in
  let inc =
    Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat max) [ (x, Expr.(var x +! nat 1)) ]
  in
  let noise = Stmt.make ~name:"noise" [ (b, Expr.(not_ (var b))) ] in
  let prog =
    Program.make sp ~name:"counter" ~init:Expr.(var x === nat 0 &&& not_ (var b)) [ inc; noise ]
  in
  (sp, x, prog)

let test_counter_min_abstraction () =
  (* 0..7 refines 0..3 by clamping: inc beyond 3 becomes a stutter *)
  let csp, _, conc = counter 7 in
  let asp, _, abs = counter 3 in
  let map = Refine.project csp asp [ ("x", fun v -> min v 3) ] in
  Alcotest.(check bool) "simulates" true (Refine.simulates ~abstract:abs ~concrete:conc ~map);
  (* transfer an abstract invariant: x ≤ 3 pulls back to reachable states
     of the concrete program (trivially all of them) *)
  let p = Expr.compile_bool asp Expr.(var (Space.find asp "x") <== nat 3) in
  Alcotest.(check bool) "invariant transfers" true
    (Refine.transfers_invariant ~abstract:abs ~concrete:conc ~map p)

let test_refinement_failure_detected () =
  (* The abstract program lacks the noise statement, so flipping noise has
     no abstract counterpart (and is not a stutter). *)
  let csp, _, conc = counter 3 in
  let asp = Space.create () in
  let ax = Space.nat_var asp "x" ~max:3 in
  let anoise = Space.bool_var asp "noise" in
  ignore anoise;
  let abs =
    Program.make asp ~name:"inc_only"
      ~init:Expr.(var ax === nat 0)
      [ Stmt.make ~name:"inc" ~guard:Expr.(var ax <<< nat 3) [ (ax, Expr.(var ax +! nat 1)) ] ]
  in
  let map = Refine.project csp asp [] in
  (match Refine.check ~abstract:abs ~concrete:conc ~map with
  | Refine.Step_escapes f ->
      Alcotest.(check string) "offender is noise" "noise" f.Refine.statement
  | Refine.Simulates -> Alcotest.fail "should not simulate"
  | Refine.Init_escapes _ -> Alcotest.fail "init should map fine")

let test_init_escape_detected () =
  let csp, _, conc = counter 3 in
  let asp = Space.create () in
  let ax = Space.nat_var asp "x" ~max:3 in
  let ab = Space.bool_var asp "noise" in
  ignore ab;
  let abs =
    Program.make asp ~name:"starts_at_one"
      ~init:Expr.(var ax === nat 1)
      [ Stmt.make ~name:"inc" ~guard:Expr.(var ax <<< nat 3) [ (ax, Expr.(var ax +! nat 1)) ] ]
  in
  let map = Refine.project csp asp [] in
  match Refine.check ~abstract:abs ~concrete:conc ~map with
  | Refine.Init_escapes _ -> ()
  | _ -> Alcotest.fail "expected an initial-state escape"

let test_bubble_threshold_abstraction () =
  (* Sorting concrete values 0..3 refines sorting their 1-bit threshold
     abstraction h(v) = (v ≥ 2): a concrete swap is an abstract swap or a
     stutter.  Data abstraction in the [San90] spirit. *)
  let build maxv =
    let sp = Space.create () in
    let arr = Array.init 3 (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:maxv) in
    let stmts =
      List.init 2 (fun i ->
          Stmt.make
            ~name:(Printf.sprintf "swap%d" i)
            ~guard:Expr.(var arr.(i) >>> var arr.(i + 1))
            [ (arr.(i), Expr.var arr.(i + 1)); (arr.(i + 1), Expr.var arr.(i)) ])
    in
    (sp, Program.make sp ~name:"bsort" ~init:Expr.tru stmts)
  in
  let csp, conc = build 3 in
  let asp, abs = build 1 in
  let h v = if v >= 2 then 1 else 0 in
  let map = Refine.project csp asp [ ("x0", h); ("x1", h); ("x2", h) ] in
  Alcotest.(check bool) "threshold abstraction simulates" true
    (Refine.simulates ~abstract:abs ~concrete:conc ~map)

let test_nonlossy_refines_lossy () =
  (* Removing the drop statements removes behaviours: the duplicating-only
     channel refines the lossy one under the identity abstraction.  (The
     converse fails.) *)
  let lossy = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let dup = Seqtrans.standard ~lossy:false { Seqtrans.n = 2; a = 2 } in
  let map = Refine.project dup.Seqtrans.sspace lossy.Seqtrans.sspace [] in
  Alcotest.(check bool) "dup-only ⊑ lossy" true
    (Refine.simulates ~abstract:lossy.Seqtrans.sprog ~concrete:dup.Seqtrans.sprog ~map);
  (* and safety (34) of the lossy program transfers down *)
  Alcotest.(check bool) "safety transfers" true
    (Refine.transfers_invariant ~abstract:lossy.Seqtrans.sprog ~concrete:dup.Seqtrans.sprog
       ~map (Seqtrans.spec_safety lossy))

let test_lossy_does_not_refine_nonlossy () =
  let lossy = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let dup = Seqtrans.standard ~lossy:false { Seqtrans.n = 2; a = 2 } in
  let map = Refine.project lossy.Seqtrans.sspace dup.Seqtrans.sspace [] in
  match Refine.check ~abstract:dup.Seqtrans.sprog ~concrete:lossy.Seqtrans.sprog ~map with
  | Refine.Step_escapes f ->
      (* the escaping statement must be one of the drops *)
      Alcotest.(check bool) "offender is a drop" true
        (f.Refine.statement = "env_drop_data" || f.Refine.statement = "env_drop_ack")
  | _ -> Alcotest.fail "loss should not be simulable without drop statements"

let test_pull_back_shape () =
  let csp, _, conc = counter 7 in
  let asp, _, abs = counter 3 in
  let map = Refine.project csp asp [ ("x", fun v -> min v 3) ] in
  (* abstract "x = 3" pulls back to concrete x ∈ {3..7} (on reachable states) *)
  let p = Expr.compile_bool asp Expr.(var (Space.find asp "x") === nat 3) in
  let back = Refine.pull_back ~abstract:abs ~concrete:conc ~map p in
  Space.iter_states csp (fun st ->
      let x = st.(Space.idx (Space.find csp "x")) in
      let expected = x >= 3 (* all concrete states are reachable here *) in
      if Space.holds_at csp (Kpt_unity.Program.si conc) st then
        Alcotest.(check bool) "pull_back pointwise" expected (Space.holds_at csp back st))

let suite =
  [
    Alcotest.test_case "counter min-abstraction" `Quick test_counter_min_abstraction;
    Alcotest.test_case "failure detection" `Quick test_refinement_failure_detected;
    Alcotest.test_case "init escape detection" `Quick test_init_escape_detected;
    Alcotest.test_case "bubble-sort threshold abstraction" `Quick
      test_bubble_threshold_abstraction;
    Alcotest.test_case "dup-only refines lossy" `Slow test_nonlossy_refines_lossy;
    Alcotest.test_case "lossy does not refine dup-only" `Quick
      test_lossy_does_not_refine_nonlossy;
    Alcotest.test_case "pull_back" `Quick test_pull_back_shape;
  ]
