open Kpt_predicate

(* A 2-variable integer-ish space echoing the paper's wcyl counterexample
   (§3): x and y range over 0..3, read "x > 0" as x >= 1. *)
let xy_space () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let y = Space.nat_var sp "y" ~max:3 in
  (sp, x, y)

let gt0 sp v =
  let m = Space.manager sp in
  Bitvec.ge m (Space.cur_vec sp v) (Bitvec.const m ~width:1 1)

let test_valid () =
  let sp, x, _ = xy_space () in
  let m = Space.manager sp in
  let tauto = Bdd.or_ m (gt0 sp x) (Bdd.not_ m (gt0 sp x)) in
  Alcotest.(check bool) "tautology valid" true (Pred.valid sp tauto);
  Alcotest.(check bool) "x>0 not valid" false (Pred.valid sp (gt0 sp x));
  (* x <= 3 is valid on the domain but not on raw bits (x is 2 bits wide,
     so raw bits admit no junk here; use x <= 2 instead which is falsifiable). *)
  let le3 = Bitvec.le m (Space.cur_vec sp x) (Bitvec.const m ~width:2 3) in
  Alcotest.(check bool) "x<=3 valid on domain" true (Pred.valid sp le3)

let test_order_equiv () =
  let sp, x, y = xy_space () in
  let m = Space.manager sp in
  let p = Bdd.and_ m (gt0 sp x) (gt0 sp y) in
  Alcotest.(check bool) "p ⇒ x>0" true (Pred.holds_implies sp p (gt0 sp x));
  Alcotest.(check bool) "x>0 ⇏ p" false (Pred.holds_implies sp (gt0 sp x) p);
  Alcotest.(check bool) "equivalent self" true (Pred.equivalent sp p p);
  Alcotest.(check bool) "not equivalent" false (Pred.equivalent sp p (gt0 sp x))

let test_normalize () =
  let sp, x, _ = xy_space () in
  let p = gt0 sp x in
  let q = Pred.normalize sp p in
  Alcotest.(check bool) "normalize idempotent" true (Bdd.equal q (Pred.normalize sp q));
  Alcotest.(check bool) "normalize preserves meaning" true (Pred.equivalent sp p q)

let test_complement_vars () =
  let sp, x, y = xy_space () in
  let comp = Pred.complement_vars sp [ x ] in
  Alcotest.(check (list string)) "complement" [ "y" ] (List.map Space.name comp);
  Alcotest.(check (list string)) "complement of all" []
    (List.map Space.name (Pred.complement_vars sp [ x; y ]));
  Alcotest.(check (list string)) "complement of none" [ "x"; "y" ]
    (List.map Space.name (Pred.complement_vars sp []))

(* The paper's counterexample to disjunctivity of wcyl (§3, eq. 12):
   over integers x and y,
     (∀y. x>0 ∧ y>0) = false,  (∀y. x>0 ∧ y≤0) = false,
   but (∀y. x>0) = x>0.  forall_vars is that quantifier. *)
let test_forall_vars_counterexample () =
  let sp, x, y = xy_space () in
  let m = Space.manager sp in
  let xp = gt0 sp x and yp = gt0 sp y in
  let fa p = Pred.forall_vars sp [ y ] p in
  Alcotest.(check bool) "∀y.(x>0∧y>0) = false" true
    (Pred.equivalent sp (fa (Bdd.and_ m xp yp)) (Bdd.fls m));
  Alcotest.(check bool) "∀y.(x>0∧y≤0) = false" true
    (Pred.equivalent sp (fa (Bdd.and_ m xp (Bdd.not_ m yp))) (Bdd.fls m));
  Alcotest.(check bool) "∀y.(x>0) = x>0" true (Pred.equivalent sp (fa xp) xp)

let test_forall_exists_duality () =
  let sp, _, y = xy_space () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    let lhs = Pred.forall_vars sp [ y ] p in
    let rhs = Bdd.not_ m (Pred.exists_vars sp [ y ] (Bdd.not_ m p)) in
    Alcotest.(check bool) "∀ = ¬∃¬ (relativised)" true (Pred.equivalent sp lhs rhs)
  done

let test_forall_strengthens () =
  let sp, _, y = xy_space () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    Alcotest.(check bool) "∀y.p ⇒ p" true
      (Pred.holds_implies sp (Pred.forall_vars sp [ y ] p) p);
    Alcotest.(check bool) "p ⇒ ∃y.p" true
      (Pred.holds_implies sp p (Pred.exists_vars sp [ y ] p))
  done

let test_depends_only_on () =
  let sp, x, y = xy_space () in
  let m = Space.manager sp in
  Alcotest.(check bool) "x>0 depends only on x" true (Pred.depends_only_on sp (gt0 sp x) [ x ]);
  Alcotest.(check bool) "x>0 does not depend only on y" false
    (Pred.depends_only_on sp (gt0 sp x) [ y ]);
  let mixed = Bdd.and_ m (gt0 sp x) (gt0 sp y) in
  Alcotest.(check bool) "x>0∧y>0 needs both" false (Pred.depends_only_on sp mixed [ x ]);
  Alcotest.(check bool) "x>0∧y>0 ok with both" true (Pred.depends_only_on sp mixed [ x; y ]);
  Alcotest.(check bool) "true depends on nothing" true (Pred.depends_only_on sp (Bdd.tru m) [])

let test_quantify_projection_is_cylinder () =
  (* ∀ȳ.p depends only on the kept variables. *)
  let sp, x, y = xy_space () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    Alcotest.(check bool) "∀y.p cylinder on x" true
      (Pred.depends_only_on sp (Pred.forall_vars sp [ y ] p) [ x ]);
    Alcotest.(check bool) "∃x.p cylinder on y" true
      (Pred.depends_only_on sp (Pred.exists_vars sp [ x ] p) [ y ])
  done

let test_random_density () =
  let sp, _, _ = xy_space () in
  let st = Helpers.rng () in
  let all = Pred.random st ~density:1.0 sp in
  Alcotest.(check bool) "density 1 = true" true (Pred.valid sp all);
  let none = Pred.random st ~density:0.0 sp in
  Alcotest.(check int) "density 0 = false" 0 (Space.count_states_of sp none)

let suite =
  [
    Alcotest.test_case "valid" `Quick test_valid;
    Alcotest.test_case "order and equivalence" `Quick test_order_equiv;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "complement_vars" `Quick test_complement_vars;
    Alcotest.test_case "paper's disjunctivity counterexample" `Quick
      test_forall_vars_counterexample;
    Alcotest.test_case "forall/exists duality" `Quick test_forall_exists_duality;
    Alcotest.test_case "forall strengthens" `Quick test_forall_strengthens;
    Alcotest.test_case "depends_only_on" `Quick test_depends_only_on;
    Alcotest.test_case "quantification yields cylinders" `Quick
      test_quantify_projection_is_cylinder;
    Alcotest.test_case "random predicate density" `Quick test_random_density;
  ]
