open Kpt_predicate
open Kpt_unity
open Kpt_protocols

let c2 = lazy (Commit.make ~participants:2 ())
let c3 = lazy (Commit.make ~participants:3 ())

let test_validation () =
  Alcotest.check_raises "bounds" (Invalid_argument "Commit.make: 2 ≤ participants ≤ 3")
    (fun () -> ignore (Commit.make ~participants:1 ()))

let test_safety () =
  Alcotest.(check bool) "2PC safety, n=2" true (Commit.safety_holds (Lazy.force c2));
  Alcotest.(check bool) "2PC safety, n=3" true (Commit.safety_holds (Lazy.force c3))

let test_liveness () =
  Alcotest.(check bool) "a decision is always reached" true
    (Commit.decision_live (Lazy.force c2))

let test_guard_is_knowledge () =
  Alcotest.(check bool) "commit guard ≡ K_C(unanimity), n=2" true
    (Commit.guard_is_knowledge (Lazy.force c2));
  Alcotest.(check bool) "commit guard ≡ K_C(unanimity), n=3" true
    (Commit.guard_is_knowledge (Lazy.force c3))

let test_distributed_knowledge_gap () =
  Alcotest.(check bool) "D_G holds initially, nobody knows individually" true
    (Commit.distributed_but_not_individual (Lazy.force c2))

let test_adoption_teaches () =
  let t = Lazy.force c2 in
  for i = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "adopted commit teaches P%d the other votes" i)
      true
      (Commit.adoption_teaches t ~i)
  done

let test_abort_knowledge_is_weaker () =
  (* adopting an ABORT does not teach the other's vote: either voter may
     have been the 'no'. *)
  let t = Lazy.force c2 in
  let sp = t.Commit.space in
  let m = Space.manager sp in
  let adopted_abort = Expr.compile_bool sp Expr.(var t.Commit.adopted.(0) === nat 2) in
  let other_vote = Expr.compile_bool sp (Expr.var t.Commit.votes.(1)) in
  let k = Kpt_core.Knowledge.knows_in t.Commit.prog (Commit.participant 0) other_vote in
  let k_not =
    Kpt_core.Knowledge.knows_in t.Commit.prog (Commit.participant 0) (Bdd.not_ m other_vote)
  in
  (* there is a reachable abort-adopted state where P0 knows neither vote
     value of P1 *)
  let ignorant =
    Bdd.conj m
      [ Program.si t.Commit.prog; adopted_abort; Bdd.not_ m k; Bdd.not_ m k_not ]
  in
  Alcotest.(check bool) "abort leaves P0 ignorant somewhere" false (Bdd.is_false ignorant)

let test_responses_monotone () =
  (* once a response is in, it never changes — 2PC's no-retraction rule *)
  let t = Lazy.force c2 in
  for i = 0 to 1 do
    let sp = t.Commit.space in
    let yes = Expr.compile_bool sp Expr.(var t.Commit.responses.(i) === nat 1) in
    Alcotest.(check bool) "yes stable" true (Kpt_logic.Props.stable t.Commit.prog yes)
  done

(* the [DM90] crash-failure axis: 2PC blocks *)
let crash2 = lazy (Commit.make ~crashes:true ~participants:2 ())

let test_crash_safety_preserved () =
  Alcotest.(check bool) "crashes cannot break safety" true
    (Commit.safety_holds (Lazy.force crash2))

let test_crash_blocks () =
  let t = Lazy.force crash2 in
  Alcotest.(check bool) "liveness fails under crashes" false (Commit.decision_live t);
  match Commit.blocking_witness t with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the classical blocking scenario"

let test_no_blocking_without_crashes () =
  Alcotest.(check bool) "crash-free 2PC never blocks" true
    (Commit.blocking_witness (Lazy.force c2) = None)

let test_crash_keeps_guard_knowledge () =
  (* the epistemic reading survives crashes: commit guard is still exactly
     the coordinator's knowledge of unanimity *)
  Alcotest.(check bool) "guard ≡ K under crashes" true
    (Commit.guard_is_knowledge (Lazy.force crash2))

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "guard = knowledge (Prop 4.5 style)" `Quick test_guard_is_knowledge;
    Alcotest.test_case "distributed-knowledge gap" `Quick test_distributed_knowledge_gap;
    Alcotest.test_case "adoption teaches votes" `Quick test_adoption_teaches;
    Alcotest.test_case "abort teaches less" `Quick test_abort_knowledge_is_weaker;
    Alcotest.test_case "responses are stable" `Quick test_responses_monotone;
    Alcotest.test_case "crashes: safety preserved" `Quick test_crash_safety_preserved;
    Alcotest.test_case "crashes: 2PC blocks" `Slow test_crash_blocks;
    Alcotest.test_case "crash-free never blocks" `Slow test_no_blocking_without_crashes;
    Alcotest.test_case "crashes: guard still = K" `Quick test_crash_keeps_guard_knowledge;
  ]
