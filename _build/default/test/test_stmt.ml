open Kpt_predicate
open Kpt_unity

(* Tiny space: x, y in 0..3 and a boolean flag. *)
let space () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let y = Space.nat_var sp "y" ~max:3 in
  let f = Space.bool_var sp "f" in
  (sp, x, y, f)

let incr_stmt x =
  (* x := x + 1 if x < 3 — the paper's §4 example shape. *)
  Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 3) [ (x, Expr.(var x +! nat 1)) ]

let test_make_validation () =
  let _, x, y, f = space () in
  (match Stmt.make ~name:"ok" [ (x, Expr.var y) ] with
  | _ -> ());
  Alcotest.check_raises "duplicate target"
    (Stmt.Ill_formed "statement dup: duplicate target x") (fun () ->
      ignore (Stmt.make ~name:"dup" [ (x, Expr.var y); (x, Expr.nat 0) ]));
  Alcotest.check_raises "sort mismatch"
    (Stmt.Ill_formed "statement bad: sort mismatch assigning to f") (fun () ->
      ignore (Stmt.make ~name:"bad" [ (f, Expr.var x) ]));
  Alcotest.check_raises "non-boolean guard"
    (Stmt.Ill_formed "statement badg: guard is not boolean") (fun () ->
      ignore (Stmt.make ~name:"badg" ~guard:(Expr.var x) [ (y, Expr.nat 0) ]))

let test_exec_guarded () =
  let sp, x, y, _ = space () in
  let s = incr_stmt x in
  let st = [| 2; 1; 0 |] in
  let st' = Stmt.exec sp s st in
  Alcotest.(check int) "x incremented" 3 st'.(Space.idx x);
  Alcotest.(check int) "y untouched" 1 st'.(Space.idx y);
  (* Guard false: skip. *)
  let st2 = Stmt.exec sp s [| 3; 1; 0 |] in
  Alcotest.(check int) "skip leaves x" 3 st2.(Space.idx x);
  (* exec does not mutate its argument *)
  Alcotest.(check int) "input untouched" 2 st.(Space.idx x)

let test_exec_simultaneous () =
  let sp, x, y, _ = space () in
  (* x, y := y, x — the classic simultaneous swap. *)
  let s = Stmt.make ~name:"swap" [ (x, Expr.var y); (y, Expr.var x) ] in
  let st' = Stmt.exec sp s [| 1; 2; 0 |] in
  Alcotest.(check int) "x gets old y" 2 st'.(Space.idx x);
  Alcotest.(check int) "y gets old x" 1 st'.(Space.idx y)

(* The transition relation must be deterministic and total on the domain,
   and agree pointwise with exec. *)
let test_trans_agrees_with_exec () =
  let sp, x, y, f = space () in
  let stmts =
    [
      incr_stmt x;
      Stmt.make ~name:"swap" [ (x, Expr.var y); (y, Expr.var x) ];
      Stmt.make ~name:"flag" ~guard:Expr.(var x === var y) [ (f, Expr.tru) ];
      Stmt.make ~name:"reset" ~guard:(Expr.var f) [ (x, Expr.nat 0); (f, Expr.fls) ];
    ]
  in
  List.iter
    (fun s ->
      Space.iter_states sp (fun st ->
          let expected = Stmt.exec sp s st in
          let image = Stmt.sp sp s (Space.pred_of_state sp st) in
          Alcotest.(check int)
            (Format.asprintf "deterministic image of %a" (Space.pp_state sp) st)
            1
            (Space.count_states_of sp image);
          Alcotest.(check bool) "image = exec" true (Space.holds_at sp image expected)))
    stmts

let test_sp_brute_force () =
  let sp, x, y, _ = space () in
  let s = Stmt.make ~name:"swap" [ (x, Expr.var y); (y, Expr.var x) ] in
  let st0 = Helpers.rng () in
  for _ = 1 to 20 do
    let p = Pred.random st0 sp in
    let symbolic = Stmt.sp sp s p in
    (* brute force: image of every p-state under exec *)
    let m = Space.manager sp in
    let brute = ref (Bdd.fls m) in
    Space.iter_states sp (fun st ->
        if Space.holds_at sp p st then
          brute := Bdd.or_ m !brute (Space.pred_of_state sp (Stmt.exec sp s st)));
    Alcotest.(check bool) "sp = brute-force image" true (Pred.equivalent sp symbolic !brute)
  done

let test_wp_galois () =
  (* [p ⇒ wp.s.q] iff [sp.s.p ⇒ q] — wp/sp adjunction for deterministic
     total statements. *)
  let sp, x, _, f = space () in
  let s = Stmt.make ~name:"t" ~guard:(Expr.var f) [ (x, Expr.nat 0) ] in
  let st0 = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st0 sp and q = Pred.random st0 sp in
    let lhs = Pred.holds_implies sp p (Stmt.wp sp s q) in
    let rhs = Pred.holds_implies sp (Stmt.sp sp s p) q in
    Alcotest.(check bool) "galois" lhs rhs
  done

let test_wp_concrete () =
  (* wp.s.q holds exactly at states whose successor satisfies q. *)
  let sp, x, y, _ = space () in
  let s = incr_stmt x in
  let st0 = Helpers.rng () in
  ignore y;
  for _ = 1 to 15 do
    let q = Pred.random st0 sp in
    let w = Stmt.wp sp s q in
    Space.iter_states sp (fun st ->
        let succ = Stmt.exec sp s st in
        Alcotest.(check bool)
          (Format.asprintf "wp at %a" (Space.pp_state sp) st)
          (Space.holds_at sp q succ) (Space.holds_at sp w st))
  done

let test_unchanged () =
  let sp, x, _, _ = space () in
  let s = incr_stmt x in
  let u = Stmt.unchanged sp s in
  Space.iter_states sp (fun st ->
      let succ = Stmt.exec sp s st in
      Alcotest.(check bool)
        (Format.asprintf "unchanged at %a" (Space.pp_state sp) st)
        (succ = st) (Space.holds_at sp u st))

let test_totality_violation () =
  let sp, x, _, _ = space () in
  (* x := x + 1 unguarded overflows at x = 3. *)
  let s = Stmt.make ~name:"over" [ (x, Expr.(var x +! nat 1)) ] in
  let bad = Stmt.totality_violation sp s in
  Alcotest.(check int) "violations are the x=3 states" 8 (Space.count_states_of sp bad);
  let s' = incr_stmt x in
  Alcotest.(check bool) "guarded version is total" true
    (Bdd.is_false (Stmt.totality_violation sp s'))

let test_exec_out_of_range () =
  let sp, x, _, _ = space () in
  let s = Stmt.make ~name:"over" [ (x, Expr.(var x +! nat 1)) ] in
  Alcotest.check_raises "exec raises at x=3"
    (Stmt.Ill_formed "statement over drives x out of range (4)") (fun () ->
      ignore (Stmt.exec sp s [| 3; 0; 0 |]))

let test_guard_pred_replacement () =
  let sp, x, _, _ = space () in
  let m = Space.manager sp in
  let s = Stmt.make ~name:"g" ~guard:Expr.fls [ (x, Expr.nat 0) ] in
  Alcotest.(check bool) "expr guard" true (Bdd.is_false (Stmt.guard_pred sp s));
  let s' = Stmt.with_guard_pred s (Bdd.tru m) in
  Alcotest.(check bool) "pred guard" true (Bdd.is_true (Stmt.guard_pred sp s'));
  let st' = Stmt.exec sp s' [| 2; 0; 0 |] in
  Alcotest.(check int) "exec honours pred guard" 0 st'.(Space.idx x)

let test_array_write () =
  let sp = Space.create () in
  let arr = Array.init 3 (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:4) in
  let i = Space.nat_var sp "i" ~max:2 in
  let s = Stmt.make ~name:"store" (Stmt.array_write arr ~index:(Expr.var i) (Expr.nat 4)) in
  Space.iter_states sp (fun st ->
      let st' = Stmt.exec sp s st in
      for k = 0 to 2 do
        let expected = if k = st.(Space.idx i) then 4 else st.(Space.idx arr.(k)) in
        Alcotest.(check int) "array_write semantics" expected st'.(Space.idx arr.(k))
      done)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "guarded exec" `Quick test_exec_guarded;
    Alcotest.test_case "simultaneous assignment" `Quick test_exec_simultaneous;
    Alcotest.test_case "trans agrees with exec" `Quick test_trans_agrees_with_exec;
    Alcotest.test_case "sp = brute-force image" `Quick test_sp_brute_force;
    Alcotest.test_case "wp/sp galois" `Quick test_wp_galois;
    Alcotest.test_case "wp pointwise" `Quick test_wp_concrete;
    Alcotest.test_case "unchanged" `Quick test_unchanged;
    Alcotest.test_case "totality violation" `Quick test_totality_violation;
    Alcotest.test_case "exec out of range" `Quick test_exec_out_of_range;
    Alcotest.test_case "predicate guards" `Quick test_guard_pred_replacement;
    Alcotest.test_case "array write" `Quick test_array_write;
  ]
