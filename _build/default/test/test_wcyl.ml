open Kpt_predicate
open Kpt_unity
open Kpt_core

(* Mixed space to exercise non-boolean domains too. *)
let space () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:2 in
  let y = Space.nat_var sp "y" ~max:2 in
  let b = Space.bool_var sp "b" in
  (sp, x, y, b)

let test_prop7_strengthens () =
  let sp, x, _, _ = space () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    Alcotest.(check bool) "[wcyl.V.p ⇒ p] (7)" true
      (Pred.holds_implies sp (Wcyl.wcyl sp [ x ] p) p)
  done

let test_prop8_monotone () =
  let sp, x, y, b = space () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    let q = Bdd.or_ m p (Pred.random st sp) in
    (* monotone in the predicate *)
    Alcotest.(check bool) "monotone in p (8)" true
      (Pred.holds_implies sp (Wcyl.wcyl sp [ x; b ] p) (Wcyl.wcyl sp [ x; b ] q));
    (* monotone in the variable set: V ⊆ V' gives wcyl.V.p ⇒ wcyl.V'.p *)
    Alcotest.(check bool) "monotone in V (8)" true
      (Pred.holds_implies sp (Wcyl.wcyl sp [ x ] p) (Wcyl.wcyl sp [ x; y ] p))
  done

let test_prop9_fixpoint_on_cylinders () =
  let sp, x, y, b = space () in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    (* Make a predicate depending only on {x, b} by cylindrifying. *)
    let c = Wcyl.wcyl sp [ x; b ] p in
    Alcotest.(check bool) "cylinder recognised" true (Wcyl.is_cylinder sp [ x; b ] c);
    Alcotest.(check bool) "p ≡ wcyl.V.p on cylinders (9)" true
      (Pred.equivalent sp c (Wcyl.wcyl sp [ x; b ] c))
  done;
  ignore y

let test_prop10_weakest () =
  let sp, x, y, b = space () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  for _ = 1 to 30 do
    let p = Pred.random st sp in
    (* q: a random cylinder on V that implies p *)
    let q = Bdd.and_ m (Wcyl.wcyl sp [ x; b ] (Pred.random st sp)) (Wcyl.wcyl sp [ x; b ] p) in
    if Pred.holds_implies sp q p then
      Alcotest.(check bool) "q ⇒ wcyl.V.p (10)" true
        (Pred.holds_implies sp q (Wcyl.wcyl sp [ x; b ] p))
  done;
  ignore y

let test_prop11_universally_conjunctive () =
  let sp, x, _, b = space () in
  let rng = Helpers.rng () in
  match Junctivity.universally_conjunctive sp (Wcyl.wcyl sp [ x; b ]) rng with
  | None -> ()
  | Some w -> Alcotest.failf "wcyl should be universally conjunctive (11): %s" w.note

let test_prop12_not_disjunctive () =
  (* The paper's own counterexample (§3): state space of two integers,
     wcyl.x.(x>0 ∧ y>0) = false, wcyl.x.(x>0 ∧ y≤0) = false, but
     wcyl.x.(x>0) = x>0. *)
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let y = Space.nat_var sp "y" ~max:3 in
  let m = Space.manager sp in
  let gt0 v = Expr.compile_bool sp Expr.(var v >>> nat 0) in
  let f = Wcyl.wcyl sp [ x ] in
  let p = Bdd.and_ m (gt0 x) (gt0 y) in
  let q = Bdd.and_ m (gt0 x) (Bdd.not_ m (gt0 y)) in
  Alcotest.(check bool) "f.p = false" true (Bdd.is_false (Pred.normalize sp (f p)));
  Alcotest.(check bool) "f.q = false" true (Bdd.is_false (Pred.normalize sp (f q)));
  Alcotest.(check bool) "f.(p∨q) = x>0" true (Pred.equivalent sp (f (Bdd.or_ m p q)) (gt0 x));
  (* And the generic tester finds some witness too. *)
  let rng = Helpers.rng () in
  (match Junctivity.finitely_disjunctive sp f rng with
  | Some _ -> ()
  | None -> Alcotest.fail "tester should find a disjunctivity failure (12)")

let test_full_and_empty_variable_sets () =
  let sp, x, y, b = space () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  for _ = 1 to 10 do
    let p = Pred.random st sp in
    (* wcyl over all variables is p itself *)
    Alcotest.(check bool) "wcyl.allvars.p = p" true
      (Pred.equivalent sp (Wcyl.wcyl sp [ x; y; b ] p) p);
    (* wcyl over no variables is the universal closure: true iff [p] *)
    let w = Wcyl.wcyl sp [] p in
    if Pred.valid sp p then
      Alcotest.(check bool) "wcyl.∅.tauto = true" true (Pred.equivalent sp w (Bdd.tru m))
    else Alcotest.(check bool) "wcyl.∅.p = false" true (Bdd.is_false (Pred.normalize sp w))
  done

let test_idempotent () =
  let sp, x, _, b = space () in
  let st = Helpers.rng () in
  for _ = 1 to 20 do
    let p = Pred.random st sp in
    let f = Wcyl.wcyl sp [ x; b ] in
    Alcotest.(check bool) "wcyl idempotent" true (Pred.equivalent sp (f p) (f (f p)))
  done

let suite =
  [
    Alcotest.test_case "(7) wcyl strengthens" `Quick test_prop7_strengthens;
    Alcotest.test_case "(8) monotone in both arguments" `Quick test_prop8_monotone;
    Alcotest.test_case "(9) identity on cylinders" `Quick test_prop9_fixpoint_on_cylinders;
    Alcotest.test_case "(10) weakest cylinder below p" `Quick test_prop10_weakest;
    Alcotest.test_case "(11) universally conjunctive" `Quick test_prop11_universally_conjunctive;
    Alcotest.test_case "(12) not disjunctive — paper counterexample" `Quick
      test_prop12_not_disjunctive;
    Alcotest.test_case "degenerate variable sets" `Quick test_full_and_empty_variable_sets;
    Alcotest.test_case "idempotence" `Quick test_idempotent;
  ]
