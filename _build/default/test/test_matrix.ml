(* Larger-instance parameter matrix (all `Slow): the bounded results are
   not artifacts of n = |A| = 2, and the full experiment harness is kept
   green as a single gate. *)

open Kpt_predicate
open Kpt_unity
open Kpt_protocols

let test_standard_wider_alphabet () =
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 3 } in
  let prog = st.Seqtrans.sprog in
  Alcotest.(check bool) "safety (34), |A|=3" true
    (Program.invariant prog (Seqtrans.spec_safety st));
  Alcotest.(check bool) "(54), |A|=3" true (Program.invariant prog (Seqtrans.inv54 st ~k:1));
  (* the Prop-4.5 equality persists *)
  let m = Space.manager st.Seqtrans.sspace in
  let si = Program.si prog in
  List.iter
    (fun (k, alpha) ->
      Alcotest.(check bool)
        (Printf.sprintf "(50) ≡ K @ (%d,%d), |A|=3" k alpha)
        true
        (Bdd.is_true
           (Bdd.imp m si
              (Bdd.iff m (Seqtrans.cand_kr st ~k ~alpha) (Seqtrans.real_kr st ~k ~alpha)))))
    [ (0, 0); (0, 2); (1, 1) ]

let test_standard_longer_horizon () =
  let st = Seqtrans.standard ~lossy:false { Seqtrans.n = 3; a = 2 } in
  let prog = st.Seqtrans.sprog in
  Alcotest.(check bool) "safety (34), n=3" true
    (Program.invariant prog (Seqtrans.spec_safety st));
  Alcotest.(check bool) "liveness @1, n=3" true (Seqtrans.spec_liveness_holds st ~k:1)

let test_replay_wider_alphabet () =
  let ab = Seqtrans.abstract_kbp { Seqtrans.n = 2; a = 3 } in
  let thms = Seqtrans_proofs.replay_abstract ab in
  List.iter
    (fun (name, t) ->
      Alcotest.(check (list string)) (name ^ " assumption-free, |A|=3") []
        (Kpt_logic.Proof.assumptions t))
    thms;
  Alcotest.(check bool) "paper-style (37), |A|=3" true
    (Kpt_logic.Proof.check (Seqtrans_proofs.inv37_paper_style ab))

let test_abp_longer () =
  let t = Abp.make ~lossy:true { Seqtrans.n = 3; a = 2 } in
  Alcotest.(check bool) "ABP safety, n=3" true (Program.invariant t.Abp.prog (Abp.safety t))

let test_window_wider () =
  let t = Window.make ~lossy:false ~window:3 { Seqtrans.n = 3; a = 2 } in
  Alcotest.(check bool) "window-3 safety, n=3" true
    (Program.invariant t.Window.prog (Window.safety t));
  (* window invariant at the larger size *)
  let reach = Kpt_runs.Reachability.reachable t.Window.prog in
  Alcotest.(check bool) "in-flight bound, w=3" true
    (List.for_all (fun st -> Window.in_flight t st <= 3) reach)

let test_muddy_four () =
  let t = Muddy.make ~children:4 in
  Alcotest.(check bool) "n=4 sound" true (Muddy.epistemically_sound t);
  Alcotest.(check bool) "n=4 truthful" true (Muddy.truthful t);
  Alcotest.(check bool) "n=4 silence teaches" true (Muddy.silence_teaches t ~child:3)

let test_experiments_gate () =
  (* the whole E1-E9 harness must report REPRODUCED *)
  let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let verdicts = Kpt_experiments.Experiments.run_all null in
  List.iter (fun (name, ok) -> Alcotest.(check bool) name true ok) verdicts

let suite =
  [
    Alcotest.test_case "standard |A|=3" `Slow test_standard_wider_alphabet;
    Alcotest.test_case "standard n=3" `Slow test_standard_longer_horizon;
    Alcotest.test_case "replay |A|=3" `Slow test_replay_wider_alphabet;
    Alcotest.test_case "ABP n=3" `Slow test_abp_longer;
    Alcotest.test_case "window w=3 n=3" `Slow test_window_wider;
    Alcotest.test_case "muddy n=4" `Slow test_muddy_four;
    Alcotest.test_case "experiments E1-E9 gate" `Slow test_experiments_gate;
  ]
