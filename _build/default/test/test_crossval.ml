(* E8: cross-validation of the symbolic stack against the operational one
   on the actual protocol programs — the strongest end-to-end consistency
   check in the suite.  The explicit-state reachable set must equal the
   BDD strongest invariant, simulated traces must stay inside SI and
   respect checked invariants, and run-based view knowledge must coincide
   with the predicate transformer K. *)

open Kpt_predicate
open Kpt_unity
open Kpt_runs
open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }

let test_si_agreement_protocols () =
  let st = Seqtrans.standard ~lossy:true params in
  Alcotest.(check bool) "standard lossy: explicit = symbolic SI" true
    (Reachability.si_agrees st.Seqtrans.sprog);
  let ab = Seqtrans.abstract_kbp params in
  Alcotest.(check bool) "abstract KBP: explicit = symbolic SI" true
    (Reachability.si_agrees ab.Seqtrans.aprog);
  let abp = Abp.make ~lossy:true params in
  Alcotest.(check bool) "ABP: explicit = symbolic SI" true
    (Reachability.si_agrees abp.Abp.prog)

let test_view_knowledge_on_standard () =
  let st = Seqtrans.standard ~lossy:true params in
  let sp = st.Seqtrans.sspace in
  (* the ground facts of §6: x_k = α *)
  for k = 0 to 1 do
    for alpha = 0 to 1 do
      let fact = Expr.compile_bool sp Expr.(var st.Seqtrans.xs.(k) === nat alpha) in
      Alcotest.(check bool)
        (Printf.sprintf "K_R(x_%d = %d) = view knowledge" k alpha)
        true
        (Reachability.knowledge_agrees st.Seqtrans.sprog "Receiver" fact)
    done
  done

let test_view_knowledge_sender () =
  let st = Seqtrans.standard ~lossy:true params in
  let sp = st.Seqtrans.sspace in
  let fact = Expr.compile_bool sp Expr.(var st.Seqtrans.j >>> nat 0) in
  Alcotest.(check bool) "K_S(j > 0) = view knowledge" true
    (Reachability.knowledge_agrees st.Seqtrans.sprog "Sender" fact)

let test_traces_stay_in_si () =
  let st = Seqtrans.standard ~lossy:true params in
  let prog = st.Seqtrans.sprog in
  let sp = st.Seqtrans.sspace in
  let si = Program.si prog in
  let rng = Helpers.rng () in
  for seed = 1 to 3 do
    let init = Exec.random_init prog rng in
    let t = Exec.run prog ~scheduler:(Exec.Random_fair seed) ~steps:300 ~init in
    Alcotest.(check (option int)) "trace within SI" None (Monitor.first_violation sp si t);
    Alcotest.(check (option int)) "trace satisfies (34)" None
      (Monitor.first_violation sp (Seqtrans.spec_safety st) t)
  done

let test_trace_progress_matches_liveness () =
  (* On the duplicating-only channel liveness holds, so long fair traces
     complete the transmission. *)
  let st = Seqtrans.standard ~lossy:false params in
  let prog = st.Seqtrans.sprog in
  let sp = st.Seqtrans.sspace in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:(Exec.Random_fair 11) ~steps:600 ~init in
  let done_p = Expr.compile_bool sp Expr.(var st.Seqtrans.j === nat 2) in
  (match Monitor.eventually sp done_p t with
  | Some _ -> ()
  | None -> Alcotest.fail "fair trace should complete the transmission")

let test_candidate_tracks_real_knowledge_on_trace () =
  (* Along concrete traces, the candidate (50) and the genuine K_R(x_k=α)
     flip at exactly the same states. *)
  let st = Seqtrans.standard ~lossy:true params in
  let prog = st.Seqtrans.sprog in
  let sp = st.Seqtrans.sspace in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:(Exec.Random_fair 5) ~steps:200 ~init in
  let cand = Seqtrans.cand_kr st ~k:0 ~alpha:1 in
  let real = Seqtrans.real_kr st ~k:0 ~alpha:1 in
  List.iter
    (fun state ->
      Alcotest.(check bool) "candidate = K along trace"
        (Space.holds_at sp cand state) (Space.holds_at sp real state))
    (Exec.states t)

let suite =
  [
    Alcotest.test_case "SI: explicit = symbolic (protocols)" `Slow test_si_agreement_protocols;
    Alcotest.test_case "view knowledge: receiver facts" `Slow test_view_knowledge_on_standard;
    Alcotest.test_case "view knowledge: sender fact" `Slow test_view_knowledge_sender;
    Alcotest.test_case "traces within SI and safe" `Quick test_traces_stay_in_si;
    Alcotest.test_case "fair trace completes" `Quick test_trace_progress_matches_liveness;
    Alcotest.test_case "candidate = K along traces" `Quick
      test_candidate_tracks_real_knowledge_on_trace;
  ]
