open Kpt_predicate
open Kpt_unity
open Kpt_core

let setup () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let p0 = Process.make "P0" [ x ] in
  let p1 = Process.make "P1" [ x; y ] in
  let lookup = function
    | "P0" -> p0
    | "P1" -> p1
    | s -> Alcotest.failf "unknown process %s" s
  in
  (sp, x, y, p0, p1, lookup)

let test_is_standard () =
  let _, x, _, _, _, _ = setup () in
  let open Kform in
  Alcotest.(check bool) "base standard" true (is_standard (base (Expr.var x)));
  Alcotest.(check bool) "boolean combo standard" true
    (is_standard (base (Expr.var x) &&. knot (base Expr.tru)));
  Alcotest.(check bool) "K not standard" false (is_standard (k "P0" (base (Expr.var x))));
  Alcotest.(check bool) "nested K not standard" false
    (is_standard (base Expr.tru ||. k "P1" (k "P0" (base (Expr.var x)))))

let test_processes_of () =
  let _, x, _, _, _, _ = setup () in
  let open Kform in
  let f = k "P1" (k "P0" (base (Expr.var x))) &&. k "P0" (base Expr.tru) in
  Alcotest.(check (list string)) "processes_of" [ "P0"; "P1" ] (processes_of f);
  Alcotest.(check (list string)) "standard has none" [] (processes_of (base Expr.tru))

let test_compile_base_and_connectives () =
  let sp, x, y, _, _, lookup = setup () in
  let m = Space.manager sp in
  let si = Bdd.tru m in
  let cb f = Kform.compile sp ~lookup ~si f in
  let open Kform in
  Alcotest.(check bool) "base" true
    (Pred.equivalent sp (cb (base (Expr.var x))) (Expr.compile_bool sp (Expr.var x)));
  Alcotest.(check bool) "not" true
    (Pred.equivalent sp (cb (knot (base (Expr.var x))))
       (Bdd.not_ m (Expr.compile_bool sp (Expr.var x))));
  Alcotest.(check bool) "and/or/imp" true
    (Pred.equivalent sp
       (cb ((base (Expr.var x) &&. base (Expr.var y)) ||. (base (Expr.var x) ==>. base (Expr.var y))))
       (let px = Expr.compile_bool sp (Expr.var x) and py = Expr.compile_bool sp (Expr.var y) in
        Bdd.or_ m (Bdd.and_ m px py) (Bdd.imp m px py)))

let test_compile_k_matches_knowledge () =
  let sp, x, y, p0, p1, lookup = setup () in
  let st = Helpers.rng () in
  for _ = 1 to 15 do
    let si = Pred.random st sp in
    let f = Kform.k "P0" (Kform.base Expr.(var x ||| var y)) in
    let direct =
      Knowledge.knows sp ~si p0 (Expr.compile_bool sp Expr.(var x ||| var y))
    in
    Alcotest.(check bool) "K compiles via Knowledge.knows" true
      (Pred.equivalent sp (Kform.compile sp ~lookup ~si f) direct);
    (* nested: K_{P1} K_{P0} φ *)
    let nested = Kform.k "P1" (Kform.k "P0" (Kform.base (Expr.var y))) in
    let expected =
      Knowledge.knows sp ~si p1 (Knowledge.knows sp ~si p0 (Expr.compile_bool sp (Expr.var y)))
    in
    Alcotest.(check bool) "nested K" true
      (Pred.equivalent sp (Kform.compile sp ~lookup ~si nested) expected)
  done

let test_si_dependence () =
  (* The same formula denotes different predicates at different SIs —
     the essence of §4's circularity. *)
  let sp, x, y, _, _, lookup = setup () in
  let m = Space.manager sp in
  let f = Kform.k "P0" (Kform.base (Expr.var y)) in
  (* SI = everything: P0 (seeing only x) never knows y *)
  let k_all = Kform.compile sp ~lookup ~si:(Bdd.tru m) f in
  Alcotest.(check bool) "under full SI, P0 never knows y" true
    (Bdd.is_false (Pred.normalize sp k_all));
  (* SI = y: all possible worlds satisfy y, so P0 knows y everywhere in SI *)
  let si_y = Expr.compile_bool sp (Expr.var y) in
  let k_y = Kform.compile sp ~lookup ~si:si_y f in
  Alcotest.(check bool) "under SI=y, P0 knows y on SI" true
    (Bdd.implies m si_y k_y);
  ignore x

let test_pp () =
  let _, x, _, _, _, _ = setup () in
  let f = Kform.(k "P0" (knot (base (Expr.var x)))) in
  let s = Format.asprintf "%a" Kform.pp f in
  Alcotest.(check string) "pp" "K_P0¬x" s

let suite =
  [
    Alcotest.test_case "is_standard" `Quick test_is_standard;
    Alcotest.test_case "processes_of" `Quick test_processes_of;
    Alcotest.test_case "compile connectives" `Quick test_compile_base_and_connectives;
    Alcotest.test_case "compile K" `Quick test_compile_k_matches_knowledge;
    Alcotest.test_case "SI dependence" `Quick test_si_dependence;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
