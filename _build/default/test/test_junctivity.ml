open Kpt_predicate
open Kpt_unity
open Kpt_core

let space () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  (sp, x, y)

let test_monotonic_accepts () =
  let sp, x, _ = space () in
  let rng = Helpers.rng () in
  (* wcyl is monotonic (8) *)
  Alcotest.(check bool) "wcyl monotonic" true (Junctivity.monotonic sp (Wcyl.wcyl sp [ x ]) rng = None);
  (* identity is monotonic *)
  Alcotest.(check bool) "identity monotonic" true (Junctivity.monotonic sp (fun p -> p) rng = None)

let test_monotonic_rejects () =
  let sp, _, _ = space () in
  let m = Space.manager sp in
  let rng = Helpers.rng () in
  match Junctivity.monotonic sp (Bdd.not_ m) rng with
  | Some w ->
      Alcotest.(check int) "witness is a pair" 2 (List.length w.inputs);
      let p, q = match w.inputs with [ p; q ] -> (p, q) | _ -> assert false in
      Alcotest.(check bool) "witness valid: p ⇒ q" true (Pred.holds_implies sp p q);
      Alcotest.(check bool) "witness valid: ¬(f.p ⇒ f.q)" false
        (Pred.holds_implies sp (Bdd.not_ m p) (Bdd.not_ m q))
  | None -> Alcotest.fail "negation must be caught as non-monotonic"

let test_conjunctive () =
  let sp, x, _ = space () in
  let m = Space.manager sp in
  let rng = Helpers.rng () in
  Alcotest.(check bool) "wcyl universally conjunctive (11)" true
    (Junctivity.universally_conjunctive sp (Wcyl.wcyl sp [ x ]) rng = None);
  (* Existential quantification is not conjunctive: ∃x.(p ∧ q) is in
     general stronger than ∃x.p ∧ ∃x.q. *)
  ignore m;
  let f p = Pred.exists_vars sp [ x ] p in
  (match Junctivity.universally_conjunctive sp f rng with
  | Some _ -> ()
  | None -> Alcotest.fail "∃x should fail universal conjunctivity")

let test_disjunctive () =
  let sp, x, _ = space () in
  let m = Space.manager sp in
  let rng = Helpers.rng () in
  (* p ∧ c is finitely disjunctive *)
  let c = Bdd.var m (List.hd (Space.current_bits x)) in
  Alcotest.(check bool) "p ∧ c disjunctive" true
    (Junctivity.finitely_disjunctive sp (fun p -> Bdd.and_ m p c) rng = None);
  (* wcyl is not (12) *)
  (match Junctivity.finitely_disjunctive sp (Wcyl.wcyl sp [ x ]) rng with
  | Some w ->
      Alcotest.(check int) "witness pair" 2 (List.length w.inputs)
  | None -> Alcotest.fail "wcyl disjunctivity failure must be found")

let test_chain_continuity () =
  let sp, x, _ = space () in
  let m = Space.manager sp in
  let rng = Helpers.rng () in
  (* Disjunctive functions are or-continuous over chains. *)
  let c = Bdd.var m (List.hd (Space.current_bits x)) in
  Alcotest.(check bool) "p ∧ c chain-continuous" true
    (Junctivity.and_over_chain_continuous sp (fun p -> Bdd.and_ m p c) rng = None)

(* E7: the Ĝ operator of Figure 1's KBP is NOT monotonic — the root cause
   of KBP ill-posedness per §4. *)
let test_g_operator_not_monotonic () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Kpt_unity.Process.make "P0" [ shared ] in
  let p1 = Kpt_unity.Process.make "P1" [ shared; x ] in
  let s0 =
    Kbp.kstmt ~name:"s0"
      ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
      [ (shared, Expr.tru) ]
  in
  let s1 =
    Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var shared))
      [ (x, Expr.tru); (shared, Expr.fls) ]
  in
  let kbp =
    Kbp.make sp ~name:"fig1"
      ~init:Expr.(not_ (var shared) &&& not_ (var x))
      ~processes:[ p0; p1 ] [ s0; s1 ]
  in
  let rng = Helpers.rng () in
  match Junctivity.monotonic sp (Kbp.g_operator kbp) ~samples:8 rng with
  | Some _ -> ()
  | None -> Alcotest.fail "Ĝ of Figure 1 must be non-monotonic"

(* Control: the SP-based sst of a STANDARD program is monotonic (eq. 4). *)
let test_sst_monotonic_standard () =
  let sp, x, y = space () in
  let s1 = Stmt.make ~name:"s1" ~guard:(Expr.var x) [ (y, Expr.tru) ] in
  let s2 = Stmt.make ~name:"s2" [ (x, Expr.(var x ||| var y)) ] in
  let prog = Program.make sp ~name:"std" ~init:Expr.tru [ s1; s2 ] in
  let rng = Helpers.rng () in
  Alcotest.(check bool) "sst monotonic for standard programs" true
    (Junctivity.monotonic sp (Program.sst prog) ~samples:8 rng = None)

let suite =
  [
    Alcotest.test_case "monotonic accepts" `Quick test_monotonic_accepts;
    Alcotest.test_case "monotonic rejects" `Quick test_monotonic_rejects;
    Alcotest.test_case "universal conjunctivity" `Quick test_conjunctive;
    Alcotest.test_case "finite disjunctivity" `Quick test_disjunctive;
    Alcotest.test_case "chain continuity" `Quick test_chain_continuity;
    Alcotest.test_case "E7: Ĝ non-monotonic (Figure 1)" `Quick test_g_operator_not_monotonic;
    Alcotest.test_case "E7 control: sst monotonic" `Quick test_sst_monotonic_standard;
  ]
