open Kpt_predicate
open Kpt_unity
open Kpt_runs

(* the evidence-overwriting observer from test_kflow *)
let observer () =
  let sp = Space.create () in
  let secret = Space.bool_var sp "secret" in
  let r = Space.nat_var sp "r" ~max:2 in
  let o = Process.make "O" [ r ] in
  let s = Process.make "S" [ secret ] in
  let observe = Stmt.make ~name:"observe" [ (r, Expr.(Ite (var secret, nat 2, nat 1))) ] in
  let clear = Stmt.make ~name:"clear" [ (r, Expr.nat 0) ] in
  let prog =
    Program.make sp ~name:"observer" ~init:Expr.(var r === nat 0) ~processes:[ o; s ]
      [ observe; clear ]
  in
  (sp, secret, r, prog)

let bit_prog () =
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in
  let c = Space.bool_var sp "c" in
  let r = Space.bool_var sp "r" in
  let sender = Process.make "S" [ b; c ] in
  let receiver = Process.make "R" [ c; r ] in
  let write = Stmt.make ~name:"write" ~guard:(Expr.var b) [ (c, Expr.var b) ] in
  let copy = Stmt.make ~name:"copy" [ (r, Expr.var c) ] in
  let prog =
    Program.make sp ~name:"bit"
      ~init:Expr.(not_ (var c) &&& not_ (var r))
      ~processes:[ sender; receiver ] [ write; copy ]
  in
  (sp, b, prog)

let test_build_shape () =
  let _, _, _, prog = observer () in
  let sys = Interpreted.build ~depth:4 prog in
  let pts = Interpreted.points sys in
  Alcotest.(check bool) "has points" true (List.length pts > 10);
  List.iter
    (fun pt -> Alcotest.(check bool) "time within bound" true (Interpreted.time pt <= 4))
    pts;
  (* initial points are the two init states *)
  let init_pts = List.filter (fun pt -> Interpreted.time pt = 0) pts in
  Alcotest.(check int) "two initial points" 2 (List.length init_pts)

let test_state_view_matches_paper_k () =
  (* at saturation depth, run-based state-view knowledge = the paper's K *)
  let sp, _, prog = bit_prog () in
  let sys = Interpreted.build ~depth:5 prog in
  let rng = Helpers.rng () in
  for _ = 1 to 8 do
    let p = Pred.random rng sp in
    Alcotest.(check bool) "K_R agrees" true (Interpreted.state_view_matches_k sys prog "R" p);
    Alcotest.(check bool) "K_S agrees" true (Interpreted.state_view_matches_k sys prog "S" p)
  done

let test_recall_refines_state () =
  let sp, secret, _, prog = observer () in
  let sys = Interpreted.build ~depth:5 prog in
  let o = Program.find_process prog "O" in
  let fact = Expr.compile_bool sp (Expr.var secret) in
  Alcotest.(check bool) "recall ⊇ state view (observer)" true
    (Interpreted.recall_refines_state sys o fact prog);
  let sp2, b2, prog2 = bit_prog () in
  let sys2 = Interpreted.build ~depth:5 prog2 in
  let r2 = Program.find_process prog2 "R" in
  Alcotest.(check bool) "recall ⊇ state view (bit)" true
    (Interpreted.recall_refines_state sys2 r2 (Expr.compile_bool sp2 (Expr.var b2)) prog2)

let test_recall_strictly_finer () =
  (* after observe; clear the state view has forgotten but perfect recall
     has not: the §3 separation, witnessed. *)
  let sp, secret, r, prog = observer () in
  let sys = Interpreted.build ~depth:4 prog in
  let o = Program.find_process prog "O" in
  let fact = Expr.compile_bool sp (Expr.var secret) in
  match Interpreted.recall_strictly_finer_somewhere sys o fact prog with
  | Some pt ->
      let st = Interpreted.current_state pt in
      Alcotest.(check int) "witness: register cleared or stale" 0 st.(Space.idx r);
      Alcotest.(check int) "witness: secret is in fact true" 1 st.(Space.idx secret)
  | None -> Alcotest.fail "perfect recall should be strictly finer here"

let test_oblivious_view () =
  (* the oblivious view knows only what holds at every point *)
  let sp, secret, _, prog = observer () in
  let sys = Interpreted.build ~depth:3 prog in
  let o = Program.find_process prog "O" in
  let fact st = Space.holds_at sp (Expr.compile_bool sp (Expr.var secret)) st in
  let pts = Interpreted.points sys in
  List.iter
    (fun pt ->
      Alcotest.(check bool) "oblivious knows nothing contingent" false
        (Interpreted.knows_at sys ~view:Interpreted.Oblivious o fact pt))
    pts;
  (* but it does know tautologies *)
  List.iter
    (fun pt ->
      Alcotest.(check bool) "oblivious knows tautologies" true
        (Interpreted.knows_at sys ~view:Interpreted.Oblivious o (fun _ -> true) pt))
    (match pts with [] -> [] | p :: _ -> [ p ])

let suite =
  [
    Alcotest.test_case "system construction" `Quick test_build_shape;
    Alcotest.test_case "state view = paper's K at saturation" `Quick
      test_state_view_matches_paper_k;
    Alcotest.test_case "perfect recall refines the state view" `Quick test_recall_refines_state;
    Alcotest.test_case "strict separation (§3)" `Quick test_recall_strictly_finer;
    Alcotest.test_case "oblivious view" `Quick test_oblivious_view;
  ]
