open Kpt_predicate
open Kpt_unity
open Kpt_protocols

let g2 = lazy (Gossip.make ~agents:2)
let g3 = lazy (Gossip.make ~agents:3)

let test_validation () =
  Alcotest.check_raises "bounds" (Invalid_argument "Gossip.make: 2 ≤ agents ≤ 3") (fun () ->
      ignore (Gossip.make ~agents:4))

let test_registers_correct () =
  Alcotest.(check bool) "n=2" true (Gossip.registers_correct (Lazy.force g2));
  Alcotest.(check bool) "n=3" true (Gossip.registers_correct (Lazy.force g3))

let test_register_is_knowledge () =
  let g = Lazy.force g3 in
  for i = 0 to 2 do
    for k = 0 to 2 do
      Alcotest.(check bool)
        (Printf.sprintf "v_%d,%d ≡ K_%d(s_%d)" i k i k)
        true
        (Gossip.register_is_knowledge g ~i ~k)
    done
  done

let test_learning_monotone () =
  Alcotest.(check bool) "no forgetting" true (Gossip.learning_monotone (Lazy.force g3))

let test_everybody_learns () =
  Alcotest.(check bool) "n=2 saturates" true (Gossip.everybody_learns (Lazy.force g2));
  Alcotest.(check bool) "n=3 saturates" true (Gossip.everybody_learns (Lazy.force g3))

let test_no_common_knowledge () =
  Alcotest.(check bool) "E holds, E² and C fail at saturation" true
    (Gossip.no_common_knowledge (Lazy.force g3))

let test_call_semantics () =
  (* concrete check: one call between 0 and 1 merges their rows *)
  let g = Lazy.force g2 in
  let sp = g.Gossip.space in
  let prog = g.Gossip.prog in
  let rng = Helpers.rng () in
  let init = Kpt_runs.Exec.random_init prog rng in
  let call = List.hd (Program.statements prog) in
  let st' = Stmt.exec sp call init in
  for i = 0 to 1 do
    for k = 0 to 1 do
      Alcotest.(check bool) "resolved after the call" true
        (st'.(Space.idx g.Gossip.registers.(i).(k)) <> 0)
    done
  done

let test_rounds_to_saturation () =
  (* with 3 agents and fair random calls, saturation occurs and every
     trace stays register-correct *)
  let g = Lazy.force g3 in
  let prog = g.Gossip.prog in
  let sp = g.Gossip.space in
  let rng = Helpers.rng () in
  let init = Kpt_runs.Exec.random_init prog rng in
  let trace = Kpt_runs.Exec.run prog ~scheduler:(Kpt_runs.Exec.Random_fair 9) ~steps:30 ~init in
  let resolved =
    Expr.compile_bool sp
      (Expr.conj
         (List.concat
            (List.init 3 (fun i ->
                 List.init 3 (fun k -> Expr.(var g.Gossip.registers.(i).(k) <<> nat 0))))))
  in
  (match Kpt_runs.Monitor.eventually sp resolved trace with
  | Some idx -> Alcotest.(check bool) "saturated quickly" true (idx <= 30)
  | None -> Alcotest.fail "should saturate in 30 fair steps")

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "registers correct" `Quick test_registers_correct;
    Alcotest.test_case "register ≡ knowledge" `Quick test_register_is_knowledge;
    Alcotest.test_case "learning monotone" `Quick test_learning_monotone;
    Alcotest.test_case "everybody learns" `Slow test_everybody_learns;
    Alcotest.test_case "no common knowledge" `Quick test_no_common_knowledge;
    Alcotest.test_case "call semantics" `Quick test_call_semantics;
    Alcotest.test_case "simulation saturates" `Quick test_rounds_to_saturation;
  ]
