open Kpt_predicate
open Kpt_unity
open Kpt_logic

(* Counter: x in 0..3, one incrementing statement plus a no-op.  Fairness
   forces progress despite the no-op. *)
let counter () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let b = Space.bool_var sp "noise" in
  let inc = Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 3) [ (x, Expr.(var x +! nat 1)) ] in
  let noise = Stmt.make ~name:"noise" [ (b, Expr.(not_ (var b))) ] in
  let prog =
    Program.make sp ~name:"counter" ~init:Expr.(var x === nat 0 &&& not_ (var b)) [ inc; noise ]
  in
  (sp, x, prog)

(* Two independent toggles: a fair schedule can avoid x ∧ y forever. *)
let toggles () =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let tx = Stmt.make ~name:"tx" [ (x, Expr.(not_ (var x))) ] in
  let ty = Stmt.make ~name:"ty" [ (y, Expr.(not_ (var y))) ] in
  let prog =
    Program.make sp ~name:"toggles" ~init:Expr.(not_ (var x) &&& not_ (var y)) [ tx; ty ]
  in
  (sp, x, y, prog)

let bp sp e = Expr.compile_bool sp e

let test_unless () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  Alcotest.(check bool) "x=1 unless x=2" true (Props.unless prog (at 1) (at 2));
  Alcotest.(check bool) "x=1 unless x=3 fails (goes through 2)" false
    (Props.unless prog (at 1) (at 3));
  Alcotest.(check bool) "x≤2 unless x=3" true
    (Props.unless prog (bp sp Expr.(var x <== nat 2)) (at 3));
  Alcotest.(check bool) "x=3 stable" true (Props.stable prog (at 3));
  Alcotest.(check bool) "x=1 not stable" false (Props.stable prog (at 1))

let test_unless_vacuous () =
  let sp, x, prog = counter () in
  let m = Space.manager sp in
  (* p unless q holds vacuously when p unreachable; also p unless p-ish *)
  Alcotest.(check bool) "false unless anything" true (Props.unless prog (Bdd.fls m) (Bdd.fls m));
  Alcotest.(check bool) "anything unless true" true
    (Props.unless prog (bp sp Expr.(var x === nat 1)) (Bdd.tru m))

let test_ensures () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  Alcotest.(check bool) "x=1 ensures x=2" true (Props.ensures prog (at 1) (at 2));
  Alcotest.(check bool) "x=3 ensures x=0 fails" false (Props.ensures prog (at 3) (at 0));
  (* unless holds but no statement establishes q: x=1 ensures x=2 ∧ noise-free?
     q = x=2 ∧ noise=false is not established by inc alone from every x=1
     state (noise may be true), so ensures must fail. *)
  let q = bp sp Expr.(var x === nat 2 &&& not_ (var (Space.find sp "noise"))) in
  Alcotest.(check bool) "conditional q fails ensures" false (Props.ensures prog (at 1) q)

let test_invariant () =
  let sp, x, prog = counter () in
  Alcotest.(check bool) "x ≤ 3 invariant" true (Props.invariant prog (bp sp Expr.(var x <== nat 3)));
  Alcotest.(check bool) "x = 0 not invariant" false (Props.invariant prog (bp sp Expr.(var x === nat 0)))

let test_leads_to_progress () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  let m = Space.manager sp in
  Alcotest.(check bool) "x=0 ↦ x=3" true (Props.leads_to prog (at 0) (at 3));
  Alcotest.(check bool) "true ↦ x=3" true (Props.leads_to prog (Bdd.tru m) (at 3));
  Alcotest.(check bool) "x=0 ↦ x=1" true (Props.leads_to prog (at 0) (at 1));
  (* q already implied: trivial *)
  Alcotest.(check bool) "x=2 ↦ x≥1" true
    (Props.leads_to prog (at 2) (bp sp Expr.(var x >== nat 1)))

let test_leads_to_avoidable () =
  let sp, x, y, prog = toggles () in
  let m = Space.manager sp in
  let both = bp sp Expr.(var x &&& var y) in
  let either = bp sp Expr.(var x ||| var y) in
  Alcotest.(check bool) "true ↦ x∧y fails (fair avoidance)" false
    (Props.leads_to prog (Bdd.tru m) both);
  Alcotest.(check bool) "¬x∧¬y ↦ x∨y holds (first step leaves origin)" true
    (Props.leads_to prog (bp sp Expr.(not_ (var x) &&& not_ (var y))) either);
  ignore y

let test_leads_to_unreachable_antecedent () =
  let sp, x, prog = counter () in
  let m = Space.manager sp in
  (* p unreachable: holds vacuously even for q = false *)
  let unreachable = bp sp Expr.(var x >== nat 5) in
  Alcotest.(check bool) "vacuous leads-to" true (Props.leads_to prog unreachable (Bdd.fls m));
  Alcotest.(check bool) "reachable ↦ false fails" false
    (Props.leads_to prog (bp sp Expr.(var x === nat 0)) (Bdd.fls m))

let test_fair_avoid_sets () =
  let sp, x, y, prog = toggles () in
  let both = bp sp Expr.(var x &&& var y) in
  let danger = Props.fair_avoid prog both in
  (* All three ¬(x∧y) states can fairly avoid x∧y (toggle back and forth). *)
  Alcotest.(check int) "three avoiding states" 3 (Space.count_states_of sp danger);
  ignore (x, y);
  (* In the counter, nothing avoids x=3. *)
  let sp2, x2, prog2 = counter () in
  let danger2 = Props.fair_avoid prog2 (bp sp2 Expr.(var x2 === nat 3)) in
  Alcotest.(check int) "counter cannot avoid completion" 0 (Space.count_states_of sp2 danger2)

let test_holds_dispatch () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  let m = Space.manager sp in
  Alcotest.(check bool) "Invariant" true (Props.holds prog (Props.Invariant (bp sp Expr.(var x <== nat 3))));
  Alcotest.(check bool) "Stable" true (Props.holds prog (Props.Stable (at 3)));
  Alcotest.(check bool) "Unless" true (Props.holds prog (Props.Unless (at 1, at 2)));
  Alcotest.(check bool) "Ensures" true (Props.holds prog (Props.Ensures (at 1, at 2)));
  Alcotest.(check bool) "Leadsto" true (Props.holds prog (Props.Leadsto (Bdd.tru m, at 3)))

(* unless/ensures/leads-to consistency on random predicates: ensures ⊆
   leads-to; leads-to reflexive on q ⊇ p; and the UNITY implication
   p ⇒ q gives p ↦ q. *)
let test_consistency_random () =
  let sp, _, prog = counter () in
  let m = Space.manager sp in
  let st = Helpers.rng () in
  for _ = 1 to 12 do
    let p = Pred.random st sp and q = Pred.random st sp in
    if Props.ensures prog p q then
      Alcotest.(check bool) "ensures implies leads-to" true (Props.leads_to prog p q);
    Alcotest.(check bool) "p ↦ p∨q" true (Props.leads_to prog p (Bdd.or_ m p q))
  done

let test_wlt () =
  let sp, x, prog = counter () in
  let m = Space.manager sp in
  let at k = bp sp Expr.(var x === nat k) in
  let st = Helpers.rng () in
  (* characterisation: p ↦ q iff [SI ∧ p ⇒ wlt q] *)
  for _ = 1 to 10 do
    let p = Pred.random st sp and q = Pred.random st sp in
    let lhs = Props.leads_to prog p q in
    let rhs =
      Bdd.implies m (Bdd.conj m [ Kpt_unity.Program.si prog; p ]) (Props.wlt prog q)
    in
    Alcotest.(check bool) "wlt characterises leads-to" lhs rhs
  done;
  (* q ⇒ wlt q, and in the counter everything leads to x=3 *)
  Alcotest.(check bool) "q ⇒ wlt q" true (Pred.holds_implies sp (at 3) (Props.wlt prog (at 3)));
  Alcotest.(check bool) "wlt (x=3) covers SI" true
    (Bdd.implies m (Kpt_unity.Program.si prog) (Props.wlt prog (at 3)));
  (* in the toggles, wlt (x∧y) excludes the avoiding states *)
  let sp2, x2, y2, prog2 = toggles () in
  let both = bp sp2 Expr.(var x2 &&& var y2) in
  let w = Props.wlt prog2 both in
  Alcotest.(check bool) "toggles: origin cannot be forced to x∧y" false
    (Space.holds_at sp2 w [| 0; 0 |]);
  Alcotest.(check bool) "toggles: x∧y itself is in wlt" true (Space.holds_at sp2 w [| 1; 1 |])

let test_counterexamples () =
  let sp, x, prog = counter () in
  let at k = bp sp Expr.(var x === nat k) in
  (* a violated invariant yields a reachable witness *)
  (match Props.invariant_counterexample prog (at 0) with
  | Some st ->
      Alcotest.(check bool) "witness violates" false (Space.holds_at sp (at 0) st);
      Alcotest.(check bool) "witness reachable" true
        (Space.holds_at sp (Kpt_unity.Program.si prog) st)
  | None -> Alcotest.fail "expected an invariant counterexample");
  Alcotest.(check bool) "valid invariant has none" true
    (Props.invariant_counterexample prog (bp sp Expr.(var x <== nat 3)) = None);
  (* unless violation: x=1 unless x=3 breaks via inc at x=1 *)
  (match Props.unless_counterexample prog (at 1) (at 3) with
  | Some (st, name, st') ->
      Alcotest.(check string) "offending statement" "inc" name;
      Alcotest.(check int) "from x=1" 1 st.(Space.idx x);
      Alcotest.(check int) "to x=2" 2 st'.(Space.idx x)
  | None -> Alcotest.fail "expected an unless counterexample");
  Alcotest.(check bool) "valid unless has none" true
    (Props.unless_counterexample prog (at 1) (at 2) = None);
  (* leads-to: toggles can avoid x∧y from any ¬(x∧y) state *)
  let sp2, x2, y2, prog2 = toggles () in
  let both = bp sp2 Expr.(var x2 &&& var y2) in
  (match Props.leads_to_counterexample prog2 (Bdd.tru (Space.manager sp2)) both with
  | Some st ->
      Alcotest.(check bool) "witness avoids q" false (Space.holds_at sp2 both st);
      ignore y2
  | None -> Alcotest.fail "expected a leads-to counterexample");
  Alcotest.(check bool) "valid leads-to has none" true
    (Props.leads_to_counterexample prog (at 0) (at 3) = None)

let suite =
  [
    Alcotest.test_case "unless" `Quick test_unless;
    Alcotest.test_case "unless vacuous cases" `Quick test_unless_vacuous;
    Alcotest.test_case "ensures" `Quick test_ensures;
    Alcotest.test_case "invariant" `Quick test_invariant;
    Alcotest.test_case "leads-to progress" `Quick test_leads_to_progress;
    Alcotest.test_case "leads-to fair avoidance" `Quick test_leads_to_avoidable;
    Alcotest.test_case "leads-to vacuous" `Quick test_leads_to_unreachable_antecedent;
    Alcotest.test_case "fair_avoid sets" `Quick test_fair_avoid_sets;
    Alcotest.test_case "holds dispatch" `Quick test_holds_dispatch;
    Alcotest.test_case "random consistency" `Quick test_consistency_random;
    Alcotest.test_case "wlt transformer" `Quick test_wlt;
    Alcotest.test_case "counterexample extraction" `Quick test_counterexamples;
  ]
