(* Dedicated suite for the proof-replay machinery beyond what
   test_seqtrans covers: the paper-style (37) derivation, rule-violation
   robustness, and scaling to a larger horizon. *)

open Kpt_logic
open Kpt_protocols

let ab = lazy (Seqtrans.abstract_kbp { Seqtrans.n = 2; a = 2 })

let test_inv37_paper_style () =
  let ab = Lazy.force ab in
  let t = Seqtrans_proofs.inv37_paper_style ab in
  Alcotest.(check (list string)) "assumption-free" [] (Proof.assumptions t);
  Alcotest.(check bool) "semantically valid" true (Proof.check t);
  (* it concludes the same fact as the rule-32 route *)
  match Proof.judgment t with
  | Proof.Invariant p ->
      let sp = ab.Seqtrans.aspace in
      let m = Kpt_predicate.Space.manager sp in
      let direct =
        Kpt_predicate.Bdd.conj m
          (List.init 2 (fun l ->
               Kpt_predicate.Bdd.imp m (Seqtrans.a_j_gt ab l) (Seqtrans.a_krx ab ~k:l)))
      in
      Alcotest.(check bool) "same invariant as the rule-32 proof" true
        (Kpt_predicate.Pred.equivalent sp p direct)
  | _ -> Alcotest.fail "expected an invariant"

let test_inv37_larger_horizon () =
  let ab3 = Seqtrans.abstract_kbp { Seqtrans.n = 3; a = 2 } in
  let t = Seqtrans_proofs.inv37_paper_style ab3 in
  Alcotest.(check bool) "n=3 valid" true (Proof.check t)

let test_replay_scales () =
  let ab3 = Seqtrans.abstract_kbp { Seqtrans.n = 3; a = 2 } in
  let thms = Seqtrans_proofs.replay_abstract ab3 in
  Alcotest.(check bool) "n=3: ≥ 20 theorems" true (List.length thms >= 20);
  List.iter
    (fun (name, t) ->
      Alcotest.(check (list string)) (name ^ " assumption-free") [] (Proof.assumptions t))
    thms

let test_kernel_rejects_wrong_steps () =
  (* The kernel must refuse proof steps the paper's side conditions rule
     out: a bogus ensures, a weakening in the wrong direction. *)
  let ab = Lazy.force ab in
  let prog = ab.Seqtrans.aprog in
  let m = Kpt_predicate.Space.manager ab.Seqtrans.aspace in
  (try
     (* j = 0 does not ensure j = 2 (only single steps) *)
     ignore (Proof.ensures_text prog (Seqtrans.a_j_eq ab 0) (Seqtrans.a_j_eq ab 2));
     Alcotest.fail "bogus ensures accepted"
   with Proof.Rule_violation _ -> ());
  (try
     let t = Proof.stable_text prog (Seqtrans.a_kr ab ~k:0 ~alpha:0) in
     (* weakening an unless consequent with something it does not imply *)
     ignore (Proof.weaken_unless t (Kpt_predicate.Bdd.fls m) |> fun t' ->
             Proof.weaken_leadsto t' (Kpt_predicate.Bdd.fls m));
     Alcotest.fail "weaken_leadsto on an unless accepted"
   with Proof.Rule_violation _ -> ())

let test_standard_big_invariant_is_inductive () =
  (* The grand invariant used by replay_standard really is inductive: the
     rule-32 proof goes through on both channel variants. *)
  List.iter
    (fun lossy ->
      let st = Seqtrans.standard ~lossy { Seqtrans.n = 2; a = 2 } in
      let thms = Seqtrans_proofs.replay_standard ~assume_channel:lossy st in
      let big = List.assoc "big-invariant" thms in
      Alcotest.(check bool) "holds semantically" true (Proof.check big))
    [ true; false ]

let suite =
  [
    Alcotest.test_case "paper-style (37)" `Quick test_inv37_paper_style;
    Alcotest.test_case "paper-style (37) at n=3" `Slow test_inv37_larger_horizon;
    Alcotest.test_case "full replay at n=3" `Slow test_replay_scales;
    Alcotest.test_case "kernel rejects invalid steps" `Quick test_kernel_rejects_wrong_steps;
    Alcotest.test_case "grand invariant inductive" `Quick test_standard_big_invariant_is_inductive;
  ]
