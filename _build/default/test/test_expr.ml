open Kpt_predicate
open Kpt_unity

let space () =
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in
  let x = Space.nat_var sp "x" ~max:5 in
  let y = Space.nat_var sp "y" ~max:3 in
  let c = Space.enum_var sp "c" ~values:[| "lo"; "hi" |] in
  (sp, b, x, y, c)

let test_typing () =
  let _, b, x, _, c = space () in
  let open Expr in
  Alcotest.(check bool) "bool var" true (typeof (var b) = Tbool);
  Alcotest.(check bool) "nat var" true (typeof (var x) = Tnat);
  Alcotest.(check bool) "enum var is nat" true (typeof (var c) = Tnat);
  Alcotest.(check bool) "comparison" true (typeof (var x <<< nat 3) = Tbool);
  Alcotest.(check bool) "arith" true (typeof (var x +! nat 1) = Tnat);
  let is_type_error f = try ignore (typeof (f ())) ; false with Type_error _ -> true in
  Alcotest.(check bool) "bool+nat eq rejected" true (is_type_error (fun () -> var b === var x));
  Alcotest.(check bool) "not of nat rejected" true (is_type_error (fun () -> not_ (var x)));
  Alcotest.(check bool) "and of nat rejected" true (is_type_error (fun () -> var x &&& var b));
  Alcotest.(check bool) "negative nat rejected" true (is_type_error (fun () -> nat (-1)));
  Alcotest.(check bool) "ite mixed branches rejected" true
    (is_type_error (fun () -> Ite (var b, var x, var b)))

let test_enum_constant () =
  let _, _, _, _, c = space () in
  Alcotest.(check bool) "enum hi = 1" true (Expr.enum c "hi" = Expr.Cint 1);
  Alcotest.check_raises "unknown label" Not_found (fun () -> ignore (Expr.enum c "mid"))

(* Concrete eval and symbolic compile must agree on every state. *)
let test_eval_compile_agree () =
  let sp, b, x, y, c = space () in
  let open Expr in
  let exprs =
    [
      var b;
      not_ (var b);
      var b &&& (var x <<< var y);
      var b ||| (var x === nat 2);
      (var b ==> (var y <== var x));
      Iff (var b, var c === nat 1);
      var x +! var y === nat 4;
      (var x -! var y) <<< nat 2;
      Ite (var b, var x, var y) === var y;
      (var x >>> nat 0) &&& (var x <== nat 5);
      var y >== nat 2;
      var c <<> nat 0;
    ]
  in
  List.iter
    (fun e ->
      let symbolic = Expr.compile_bool sp e in
      Space.iter_states sp (fun st ->
          let concrete = Expr.eval_bool e (fun v -> st.(Space.idx v)) in
          Alcotest.(check bool)
            (Format.asprintf "agree on %a at %a" Expr.pp e (Space.pp_state sp) st)
            concrete
            (Space.holds_at sp symbolic st)))
    exprs

let test_int_compile_agree () =
  let sp, _, x, y, _ = space () in
  let open Expr in
  let exprs = [ var x; var x +! var y; var x -! var y; var x +! nat 7; Ite (var x <<< var y, var y, var x) ] in
  List.iter
    (fun e ->
      let vec = Expr.compile_int sp e in
      Space.iter_states sp (fun st ->
          let concrete = Expr.eval e (fun v -> st.(Space.idx v)) in
          (* Build the valuation of current bits from the state. *)
          let p = Space.pred_of_state sp st in
          let m = Space.manager sp in
          Alcotest.(check bool)
            (Format.asprintf "int agree on %a" Expr.pp e)
            true
            (Pred.holds_implies sp p (Bitvec.eq_const m vec concrete))))
    exprs

let test_select () =
  let sp = Space.create () in
  let arr = Array.init 3 (fun k -> Space.nat_var sp (Printf.sprintf "a%d" k) ~max:7) in
  let i = Space.nat_var sp "i" ~max:2 in
  let e = Expr.select arr (Expr.var i) in
  Space.iter_states sp (fun st ->
      let env v = st.(Space.idx v) in
      let expected = st.(Space.idx arr.(st.(Space.idx i))) in
      Alcotest.(check int) "select concrete" expected (Expr.eval e env));
  (* symbolic agreement *)
  let vec = Expr.compile_int sp e in
  let m = Space.manager sp in
  Space.iter_states sp (fun st ->
      let expected = st.(Space.idx arr.(st.(Space.idx i))) in
      Alcotest.(check bool) "select symbolic" true
        (Pred.holds_implies sp (Space.pred_of_state sp st) (Bitvec.eq_const m vec expected)))

let test_vars_of () =
  let _, b, x, y, _ = space () in
  let open Expr in
  let e = (var b &&& (var x <<< var y)) ||| (var x === nat 0) in
  Alcotest.(check (list string)) "vars_of" [ "b"; "x"; "y" ]
    (List.map Space.name (vars_of e) |> List.sort compare);
  Alcotest.(check (list string)) "vars_of const" [] (List.map Space.name (vars_of tru))

let test_conj_disj () =
  let _, b, _, _, _ = space () in
  let open Expr in
  Alcotest.(check bool) "empty conj is true" true (conj [] = tru);
  Alcotest.(check bool) "empty disj is false" true (disj [] = fls);
  Alcotest.(check bool) "singleton" true (conj [ var b ] = var b)

let test_pp () =
  let _, b, x, _, _ = space () in
  let open Expr in
  let s = Format.asprintf "%a" Expr.pp (var b ==> (var x <== nat 3)) in
  Alcotest.(check string) "pp" "b ⇒ (x ≤ 3)" s

let suite =
  [
    Alcotest.test_case "typing" `Quick test_typing;
    Alcotest.test_case "enum constants" `Quick test_enum_constant;
    Alcotest.test_case "eval/compile agree (bool)" `Quick test_eval_compile_agree;
    Alcotest.test_case "eval/compile agree (nat)" `Quick test_int_compile_agree;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "vars_of" `Quick test_vars_of;
    Alcotest.test_case "conj/disj" `Quick test_conj_disj;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
