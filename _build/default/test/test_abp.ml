open Kpt_unity
open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }
let abp_ok = lazy (Abp.make ~lossy:false params)
let abp_lossy = lazy (Abp.make ~lossy:true params)

let test_safety () =
  let t = Lazy.force abp_ok in
  Alcotest.(check bool) "ABP safety (34)" true (Program.invariant t.Abp.prog (Abp.safety t));
  let tl = Lazy.force abp_lossy in
  Alcotest.(check bool) "ABP safety under loss+duplication" true
    (Program.invariant tl.Abp.prog (Abp.safety tl))

let test_liveness () =
  let t = Lazy.force abp_ok in
  Alcotest.(check bool) "live @0" true (Abp.liveness_holds t ~k:0);
  Alcotest.(check bool) "live @1" true (Abp.liveness_holds t ~k:1)

let test_lossy_liveness_fails () =
  let tl = Lazy.force abp_lossy in
  Alcotest.(check bool) "liveness fails on lossy channel" false (Abp.liveness_holds tl ~k:0)

let test_bit_window () =
  (* The alternating bit stays in lockstep with the indices:
     sb = i mod 2 iff rb = j mod 2-style parity invariants. *)
  let t = Lazy.force abp_lossy in
  let sp = t.Abp.space in
  let parity v k = Expr.(var v === nat (k mod 2)) in
  let claim =
    Expr.compile_bool sp
      (Expr.conj
         (List.init 2 (fun k ->
              Expr.((var t.Abp.i === nat k) ==> parity t.Abp.sb k)))) in
  Alcotest.(check bool) "sender bit = i mod 2" true (Program.invariant t.Abp.prog claim);
  let claim_r =
    Expr.compile_bool sp
      (Expr.conj
         (List.init 3 (fun k ->
              Expr.((var t.Abp.j === nat k) ==> parity t.Abp.rb k)))) in
  Alcotest.(check bool) "receiver bit = j mod 2" true (Program.invariant t.Abp.prog claim_r)

let test_window_invariant () =
  let t = Lazy.force abp_lossy in
  let sp = t.Abp.space in
  let w =
    Expr.compile_bool sp
      Expr.((var t.Abp.i <== var t.Abp.j) &&& (var t.Abp.j <== var t.Abp.i +! nat 1))
  in
  Alcotest.(check bool) "i ≤ j ≤ i+1" true (Program.invariant t.Abp.prog w)

let test_knowledge_reading () =
  (* The ABP ack carrying the sender's current bit is knowledge that the
     receiver advanced: z = sb ⇒ K_S (j > i-ish).  Concretely: when the
     sender is acknowledged, the receiver has delivered element i. *)
  let t = Lazy.force abp_lossy in
  let sp = t.Abp.space in
  let claim =
    Expr.compile_bool sp Expr.((var t.Abp.z === var t.Abp.sb) ==> (var t.Abp.j >>> var t.Abp.i))
  in
  Alcotest.(check bool) "acked ⇒ delivered" true (Program.invariant t.Abp.prog claim)

let suite =
  [
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "lossy liveness fails" `Slow test_lossy_liveness_fails;
    Alcotest.test_case "bit/index lockstep" `Quick test_bit_window;
    Alcotest.test_case "window invariant" `Quick test_window_invariant;
    Alcotest.test_case "ack is knowledge" `Quick test_knowledge_reading;
  ]
