open Kpt_predicate
open Kpt_unity
open Kpt_runs

let counter () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:7 in
  let b = Space.bool_var sp "b" in
  let inc = Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 7) [ (x, Expr.(var x +! nat 1)) ] in
  let toggle = Stmt.make ~name:"toggle" [ (b, Expr.(not_ (var b))) ] in
  let prog = Program.make sp ~name:"counter" ~init:Expr.(var x === nat 0) [ inc; toggle ] in
  (sp, x, b, prog)

let test_random_init () =
  let sp, x, _, prog = counter () in
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let st = Exec.random_init prog rng in
    Alcotest.(check bool) "satisfies init" true (Space.holds_at sp (Program.init prog) st);
    Alcotest.(check int) "x starts 0" 0 st.(Space.idx x)
  done

let test_round_robin () =
  let sp, x, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:Exec.Round_robin ~steps:20 ~init in
  Alcotest.(check int) "20 steps" 20 (List.length t.Exec.steps);
  (* strict alternation: each statement ran exactly 10 times *)
  Alcotest.(check (list (pair string int))) "fair split"
    [ ("inc", 10); ("toggle", 10) ]
    (Exec.statement_counts t);
  (* x advanced by exactly the number of enabled inc executions *)
  let final = Exec.final t in
  Alcotest.(check int) "x = 7 (saturated by guard)" 7 final.(Space.idx x);
  ignore sp;
  ignore x

let test_random_fair () =
  let _, _, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:(Exec.Random_fair 42) ~steps:400 ~init in
  let counts = Exec.statement_counts t in
  List.iter
    (fun (_, c) -> Alcotest.(check bool) "each statement ran often" true (c > 100))
    counts;
  (* determinism under the same seed *)
  let t2 = Exec.run prog ~scheduler:(Exec.Random_fair 42) ~steps:400 ~init in
  Alcotest.(check (list (pair string int))) "seeded determinism"
    (Exec.statement_counts t) (Exec.statement_counts t2)

let test_weighted () =
  let _, _, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t =
    Exec.run prog ~scheduler:(Exec.Weighted ([ ("inc", 9); ("toggle", 1) ], 7)) ~steps:500 ~init
  in
  let inc = List.assoc "inc" (Exec.statement_counts t) in
  Alcotest.(check bool) "bias respected" true (inc > 350);
  (* weight 0 = a broken scheduler that starves a statement *)
  let t0 =
    Exec.run prog ~scheduler:(Exec.Weighted ([ ("inc", 0) ], 7)) ~steps:100 ~init
  in
  Alcotest.(check bool) "starved statement never runs" true
    (not (List.mem_assoc "inc" (Exec.statement_counts t0)))

let test_trace_states () =
  let _, _, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:Exec.Round_robin ~steps:5 ~init in
  Alcotest.(check int) "states = steps + 1" 6 (List.length (Exec.states t))

let test_monitor_invariant () =
  let sp, x, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:Exec.Round_robin ~steps:30 ~init in
  let le7 = Expr.compile_bool sp Expr.(var x <== nat 7) in
  Alcotest.(check (option int)) "x ≤ 7 never violated" None (Monitor.first_violation sp le7 t);
  let eq0 = Expr.compile_bool sp Expr.(var x === nat 0) in
  Alcotest.(check (option int)) "x = 0 violated at step 1" (Some 1)
    (Monitor.first_violation sp eq0 t)

let test_monitor_eventually_response () =
  let sp, x, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:Exec.Round_robin ~steps:30 ~init in
  let at k = Expr.compile_bool sp Expr.(var x === nat k) in
  (match Monitor.eventually sp (at 3) t with
  | Some idx -> Alcotest.(check bool) "x=3 reached in order" true (idx >= 3)
  | None -> Alcotest.fail "x=3 should be reached");
  let times = Monitor.response_times sp ~p:(at 0) ~q:(at 1) t in
  List.iter (fun d -> Alcotest.(check bool) "positive latency" true (d >= 1)) times;
  Alcotest.(check bool) "some obligations measured" true (times <> []);
  Alcotest.(check int) "count_where x=0" 1
    (Monitor.count_where sp (at 0) t)

let test_monitor_unless () =
  let sp, x, _, prog = counter () in
  let rng = Helpers.rng () in
  let init = Exec.random_init prog rng in
  let t = Exec.run prog ~scheduler:Exec.Round_robin ~steps:30 ~init in
  let at k = Expr.compile_bool sp Expr.(var x === nat k) in
  (* x=2 unless x=3 holds along any trace *)
  Alcotest.(check (option int)) "unless holds" None (Monitor.check_unless sp ~p:(at 2) ~q:(at 3) t);
  (* x=2 unless x=5 is violated when x goes 2 → 3 *)
  (match Monitor.check_unless sp ~p:(at 2) ~q:(at 5) t with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an unless violation")

let test_reachable_agrees_with_si () =
  let _, _, _, prog = counter () in
  Alcotest.(check bool) "explicit reach = symbolic SI" true (Reachability.si_agrees prog)

(* E8: run-based (view) knowledge coincides with the predicate-transformer
   definition, on the bit-transmission program and on random predicates. *)
let test_view_knowledge_agrees () =
  let sp = Space.create () in
  let b = Space.bool_var sp "b" in
  let c = Space.bool_var sp "c" in
  let r = Space.bool_var sp "r" in
  let sender = Process.make "S" [ b; c ] in
  let receiver = Process.make "R" [ c; r ] in
  let write = Stmt.make ~name:"write" ~guard:(Expr.var b) [ (c, Expr.var b) ] in
  let copy = Stmt.make ~name:"copy" [ (r, Expr.var c) ] in
  let prog =
    Program.make sp ~name:"bit"
      ~init:Expr.(not_ (var c) &&& not_ (var r))
      ~processes:[ sender; receiver ] [ write; copy ]
  in
  Alcotest.(check bool) "si agrees" true (Reachability.si_agrees prog);
  let rng = Helpers.rng () in
  for _ = 1 to 10 do
    let p = Pred.random rng sp in
    Alcotest.(check bool) "K_R agrees with view knowledge" true
      (Reachability.knowledge_agrees prog "R" p);
    Alcotest.(check bool) "K_S agrees with view knowledge" true
      (Reachability.knowledge_agrees prog "S" p)
  done

let suite =
  [
    Alcotest.test_case "random_init" `Quick test_random_init;
    Alcotest.test_case "round robin" `Quick test_round_robin;
    Alcotest.test_case "random fair" `Quick test_random_fair;
    Alcotest.test_case "weighted / broken scheduler" `Quick test_weighted;
    Alcotest.test_case "trace states" `Quick test_trace_states;
    Alcotest.test_case "monitor: invariants" `Quick test_monitor_invariant;
    Alcotest.test_case "monitor: eventually/response" `Quick test_monitor_eventually_response;
    Alcotest.test_case "monitor: unless" `Quick test_monitor_unless;
    Alcotest.test_case "explicit reachability = SI" `Quick test_reachable_agrees_with_si;
    Alcotest.test_case "E8: view knowledge = K (HM90)" `Quick test_view_knowledge_agrees;
  ]
