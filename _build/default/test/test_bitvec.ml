open Kpt_predicate

(* Exhaustively check symbolic arithmetic against native ints: allocate two
   symbolic operands over BDD variables and compare on every valuation. *)

let with_operands ~wa ~wb f =
  let m = Bdd.create () in
  let a = Bitvec.of_bits (Array.init wa (fun k -> Bdd.var m k)) in
  let b = Bitvec.of_bits (Array.init wb (fun k -> Bdd.var m (wa + k))) in
  let total = wa + wb in
  for code = 0 to (1 lsl total) - 1 do
    let point i = (code lsr i) land 1 = 1 in
    let va = code land ((1 lsl wa) - 1) in
    let vb = code lsr wa in
    f m a b va vb point
  done

let test_const_value () =
  let m = Bdd.create () in
  for v = 0 to 15 do
    let bv = Bitvec.const m ~width:4 v in
    Alcotest.(check int) "const roundtrip" v (Bitvec.value bv (fun _ -> false))
  done;
  Alcotest.check_raises "const overflow" (Invalid_argument "Bitvec.const: value out of range")
    (fun () -> ignore (Bitvec.const m ~width:3 8))

let test_add () =
  with_operands ~wa:3 ~wb:3 (fun m a b va vb point ->
      let sum = Bitvec.add m a b in
      Alcotest.(check int) "add" (va + vb) (Bitvec.value sum point))

let test_add_uneven_widths () =
  with_operands ~wa:4 ~wb:2 (fun m a b va vb point ->
      let sum = Bitvec.add m a b in
      Alcotest.(check int) "add uneven" (va + vb) (Bitvec.value sum point))

let test_add_mod () =
  with_operands ~wa:3 ~wb:3 (fun m a b va vb point ->
      let sum = Bitvec.add_mod m ~width:3 a b in
      Alcotest.(check int) "add_mod" ((va + vb) mod 8) (Bitvec.value sum point))

let test_succ () =
  with_operands ~wa:3 ~wb:1 (fun m a _b va _vb point ->
      Alcotest.(check int) "succ" (va + 1) (Bitvec.value (Bitvec.succ m a) point))

let test_sub_sat () =
  with_operands ~wa:3 ~wb:3 (fun m a b va vb point ->
      let d = Bitvec.sub_sat m a b in
      Alcotest.(check int) "sub_sat" (max 0 (va - vb)) (Bitvec.value d point))

let test_comparisons () =
  with_operands ~wa:3 ~wb:3 (fun m a b va vb point ->
      let chk name op rel =
        Alcotest.(check bool) name (rel va vb) (Bdd.eval (op m a b) point)
      in
      chk "eq" Bitvec.eq ( = );
      chk "lt" Bitvec.lt ( < );
      chk "le" Bitvec.le ( <= );
      chk "gt" Bitvec.gt ( > );
      chk "ge" Bitvec.ge ( >= ))

let test_comparisons_uneven () =
  with_operands ~wa:2 ~wb:4 (fun m a b va vb point ->
      Alcotest.(check bool) "lt uneven" (va < vb) (Bdd.eval (Bitvec.lt m a b) point);
      Alcotest.(check bool) "eq uneven" (va = vb) (Bdd.eval (Bitvec.eq m a b) point))

let test_eq_const () =
  with_operands ~wa:3 ~wb:1 (fun m a _b va _vb point ->
      for c = 0 to 9 do
        Alcotest.(check bool) "eq_const" (va = c) (Bdd.eval (Bitvec.eq_const m a c) point)
      done)

let test_ite () =
  with_operands ~wa:3 ~wb:3 (fun m a b va vb point ->
      let c = Bitvec.lt m a b in
      let r = Bitvec.ite m c a b in
      Alcotest.(check int) "ite picks min" (min va vb) (Bitvec.value r point))

let test_zero_extend () =
  with_operands ~wa:3 ~wb:1 (fun m a _b va _vb point ->
      let w = Bitvec.zero_extend m ~width:6 a in
      Alcotest.(check int) "zero_extend value" va (Bitvec.value w point);
      Alcotest.(check int) "zero_extend width" 6 (Bitvec.width w))

let suite =
  [
    Alcotest.test_case "const/value" `Quick test_const_value;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "add uneven widths" `Quick test_add_uneven_widths;
    Alcotest.test_case "add_mod" `Quick test_add_mod;
    Alcotest.test_case "succ" `Quick test_succ;
    Alcotest.test_case "sub_sat" `Quick test_sub_sat;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "comparisons uneven" `Quick test_comparisons_uneven;
    Alcotest.test_case "eq_const" `Quick test_eq_const;
    Alcotest.test_case "ite" `Quick test_ite;
    Alcotest.test_case "zero_extend" `Quick test_zero_extend;
  ]
