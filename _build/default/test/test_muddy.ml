open Kpt_predicate
open Kpt_unity
open Kpt_protocols

let m2 = lazy (Muddy.make ~children:2)
let m3 = lazy (Muddy.make ~children:3)

let test_validation () =
  Alcotest.check_raises "too few" (Invalid_argument "Muddy.make: 2 ≤ children ≤ 4")
    (fun () -> ignore (Muddy.make ~children:1))

let check_all name t =
  Alcotest.(check bool) (name ^ ": epistemically sound") true (Muddy.epistemically_sound t);
  Alcotest.(check bool) (name ^ ": truthful") true (Muddy.truthful t);
  Alcotest.(check bool) (name ^ ": clean stay silent") true (Muddy.clean_never_declare t);
  for c = 0 to t.Muddy.children - 1 do
    Alcotest.(check bool) (name ^ ": silence teaches") true (Muddy.silence_teaches t ~child:c);
    Alcotest.(check bool) (name ^ ": ignorance at round 0") true
      (Muddy.ignorance_before t ~child:c)
  done

let test_two_children () = check_all "n=2" (Lazy.force m2)
let test_three_children () = check_all "n=3" (Lazy.force m3)

let test_liveness () =
  Alcotest.(check bool) "n=2 muddy eventually declare" true
    (Muddy.all_muddy_eventually_declare (Lazy.force m2));
  Alcotest.(check bool) "n=3 muddy eventually declare" true
    (Muddy.all_muddy_eventually_declare (Lazy.force m3))

let test_declaration_timing () =
  (* The classic timing: with m muddy children, nobody declares before
     round m-1 (0-based), i.e. declared_i ⇒ round ≥ (number muddy) - 1. *)
  let t = Lazy.force m3 in
  let sp = t.Muddy.space in
  let mgr = Space.manager sp in
  let open Expr in
  let count =
    List.fold_left
      (fun acc i -> acc +! Ite (var t.Muddy.muddy.(i), nat 1, nat 0))
      (nat 0)
      (List.init t.Muddy.children Fun.id)
  in
  let some_declared = disj (List.init t.Muddy.children (fun i -> var t.Muddy.declared.(i))) in
  let timing = some_declared ==> (var t.Muddy.round +! nat 1 >== count) in
  Alcotest.(check bool) "no early declarations" true
    (Program.invariant t.Muddy.prog (Expr.compile_bool sp timing));
  ignore mgr

let test_everyone_declares_by_round_m () =
  (* and by the end of round m every muddy child HAS declared: once
     round > count, muddy ⇒ declared. *)
  let t = Lazy.force m3 in
  let sp = t.Muddy.space in
  let open Expr in
  let count =
    List.fold_left
      (fun acc i -> acc +! Ite (var t.Muddy.muddy.(i), nat 1, nat 0))
      (nat 0)
      (List.init t.Muddy.children Fun.id)
  in
  let claim =
    conj
      (List.init t.Muddy.children (fun i ->
           (var t.Muddy.round >>> count) ==> (var t.Muddy.muddy.(i) ==> var t.Muddy.declared.(i))))
  in
  Alcotest.(check bool) "all muddy declared after round m" true
    (Program.invariant t.Muddy.prog (Expr.compile_bool sp claim))

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "two children" `Quick test_two_children;
    Alcotest.test_case "three children" `Quick test_three_children;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "declaration timing lower bound" `Quick test_declaration_timing;
    Alcotest.test_case "declaration timing upper bound" `Quick
      test_everyone_declares_by_round_m;
  ]
