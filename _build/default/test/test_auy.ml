open Kpt_unity
open Kpt_protocols

let auy2 = lazy (Auy.make { Seqtrans.n = 2; a = 2 })
let auy4 = lazy (Auy.make { Seqtrans.n = 2; a = 4 })

let test_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Auy.make: alphabet size must be a power of two ≥ 2") (fun () ->
      ignore (Auy.make { Seqtrans.n = 2; a = 3 }))

let test_safety () =
  let t = Lazy.force auy2 in
  Alcotest.(check bool) "AUY safety, 1-bit alphabet" true
    (Program.invariant t.Auy.prog (Auy.safety t));
  let t4 = Lazy.force auy4 in
  Alcotest.(check bool) "AUY safety, 2-bit alphabet" true
    (Program.invariant t4.Auy.prog (Auy.safety t4))

let test_liveness () =
  let t = Lazy.force auy2 in
  Alcotest.(check bool) "live @0" true (Auy.liveness_holds t ~k:0);
  Alcotest.(check bool) "live @1" true (Auy.liveness_holds t ~k:1);
  let t4 = Lazy.force auy4 in
  Alcotest.(check bool) "2-bit live @0" true (Auy.liveness_holds t4 ~k:0)

let test_economy () =
  (* The AUY measure: messages per element is exactly log2 |A| — no
     sequence numbers, no acks, because the channel is synchronous. *)
  Alcotest.(check int) "1 bit per element for |A|=2" 1
    (Auy.messages_per_element (Lazy.force auy2));
  Alcotest.(check int) "2 bits per element for |A|=4" 2
    (Auy.messages_per_element (Lazy.force auy4))

let test_lockstep () =
  (* Synchrony: the sender is never more than one element ahead. *)
  let t = Lazy.force auy2 in
  let sp = t.Auy.space in
  let w =
    Expr.compile_bool sp
      Expr.((var t.Auy.j <== var t.Auy.i +! nat 1) &&& (var t.Auy.i <== var t.Auy.j +! nat 1))
  in
  Alcotest.(check bool) "|i - j| ≤ 1" true (Program.invariant t.Auy.prog w)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "message economy" `Quick test_economy;
    Alcotest.test_case "lockstep" `Quick test_lockstep;
  ]
