open Kpt_unity
open Kpt_protocols

let params = { Seqtrans.n = 2; a = 2 }
let w1 = lazy (Window.make ~lossy:false ~window:1 params)
let w2 = lazy (Window.make ~lossy:false ~window:2 params)
let w2_lossy = lazy (Window.make ~lossy:true ~window:2 params)

let test_validation () =
  Alcotest.check_raises "window ≥ 1" (Invalid_argument "Window.make: window must be ≥ 1")
    (fun () -> ignore (Window.make ~window:0 params))

let test_safety () =
  List.iter
    (fun t ->
      let t = Lazy.force t in
      Alcotest.(check bool)
        (Printf.sprintf "safety (34), window %d" t.Window.window)
        true
        (Program.invariant t.Window.prog (Window.safety t)))
    [ w1; w2; w2_lossy ]

let test_liveness () =
  List.iter
    (fun t ->
      let t = Lazy.force t in
      Alcotest.(check bool) "live @0" true (Window.liveness_holds t ~k:0);
      Alcotest.(check bool) "live @1" true (Window.liveness_holds t ~k:1))
    [ w1; w2 ]

let test_lossy_liveness_fails () =
  let t = Lazy.force w2_lossy in
  Alcotest.(check bool) "liveness fails on lossy channel" false (Window.liveness_holds t ~k:0)

let test_window_invariant () =
  (* At most [window] unacknowledged elements are ever in flight. *)
  let t = Lazy.force w2_lossy in
  let reachable = Kpt_runs.Reachability.reachable t.Window.prog in
  Alcotest.(check bool) "in_flight ≤ window" true
    (List.for_all (fun st -> Window.in_flight t st <= t.Window.window) reachable);
  (* and the bound is attained: some state has two in flight *)
  Alcotest.(check bool) "window is used" true
    (List.exists (fun st -> Window.in_flight t st = 2) reachable)

let test_cumulative_ack_knowledge () =
  (* The cumulative ack register carries the same knowledge content as in
     Figure 4: z = k (≠ ⊥) means the receiver delivered everything below
     k, so z ≤ j invariantly. *)
  let t = Lazy.force w2_lossy in
  let sp = t.Window.space in
  let { Seqtrans.n; _ } = t.Window.params in
  let claim =
    Expr.compile_bool sp
      Expr.((var t.Window.z <== nat n) ==> (var t.Window.z <== var t.Window.j))
  in
  Alcotest.(check bool) "z ≤ j (eq. 54 analogue)" true (Program.invariant t.Window.prog claim);
  (* the sender's base never passes the receiver *)
  let base =
    Expr.compile_bool sp Expr.(var t.Window.i <== var t.Window.j)
  in
  Alcotest.(check bool) "i ≤ j" true (Program.invariant t.Window.prog base)

let test_pipelining () =
  (* A wider window completes a fair random run in fewer scheduler steps
     (averaged over seeds; this is the §6-family "efficiency" axis). *)
  let p4 = { Seqtrans.n = 4; a = 2 } in
  let avg w =
    let t = Window.make ~lossy:false ~window:w p4 in
    let total = ref 0 in
    for seed = 1 to 8 do
      total := !total + Window.simulate_steps ~seed t
    done;
    !total
  in
  let s1 = avg 1 and s2 = avg 2 in
  Alcotest.(check bool)
    (Printf.sprintf "w=2 (%d) beats w=1 (%d)" s2 s1)
    true (s2 < s1)

let test_all_runs_finish () =
  let t = Lazy.force w2 in
  for seed = 1 to 5 do
    Alcotest.(check bool) "finishes" true (Window.simulate_steps ~seed t < 1_000_000)
  done

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "liveness" `Slow test_liveness;
    Alcotest.test_case "lossy liveness fails" `Slow test_lossy_liveness_fails;
    Alcotest.test_case "window invariant" `Quick test_window_invariant;
    Alcotest.test_case "cumulative-ack knowledge" `Quick test_cumulative_ack_knowledge;
    Alcotest.test_case "pipelining effect" `Quick test_pipelining;
    Alcotest.test_case "runs finish" `Quick test_all_runs_finish;
  ]
