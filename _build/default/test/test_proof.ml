open Kpt_predicate
open Kpt_unity
open Kpt_logic

let counter () =
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let inc = Stmt.make ~name:"inc" ~guard:Expr.(var x <<< nat 3) [ (x, Expr.(var x +! nat 1)) ] in
  let prog = Program.make sp ~name:"counter" ~init:Expr.(var x === nat 0) [ inc ] in
  (sp, x, prog)

let bp sp e = Expr.compile_bool sp e
let at sp x k = bp sp Expr.(var x === nat k)

let test_unless_text () =
  let sp, x, prog = counter () in
  let t = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  Alcotest.(check (list string)) "no assumptions" [] (Proof.assumptions t);
  Alcotest.(check bool) "kernel conclusion checks" true (Proof.check t);
  Alcotest.check_raises "invalid unless rejected"
    (Proof.Rule_violation "unless does not follow from the program text") (fun () ->
      ignore (Proof.unless_text prog (at sp x 1) (at sp x 3)))

let test_ensures_and_29 () =
  let sp, x, prog = counter () in
  let e = Proof.ensures_text prog (at sp x 1) (at sp x 2) in
  let l = Proof.ensures_leadsto e in
  (match Proof.judgment l with
  | Proof.Leadsto (_, _) -> ()
  | _ -> Alcotest.fail "rule 29 should give a leads-to");
  Alcotest.(check bool) "leads-to checks" true (Proof.check l)

let test_trans_and_disj () =
  let sp, x, prog = counter () in
  let step k = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x k) (at sp x (k + 1))) in
  let t02 = Proof.leadsto_trans (step 0) (step 1) in
  let t03 = Proof.leadsto_trans t02 (step 2) in
  Alcotest.(check bool) "0 ↦ 3 via transitivity" true (Proof.check t03);
  (* disjunction: x=0 ∨ x=1 ∨ x=2 ↦ x=3 *)
  let t13 = Proof.leadsto_trans (step 1) (step 2) in
  let t23 = step 2 in
  let d = Proof.leadsto_disj [ t03; t13; t23 ] in
  Alcotest.(check bool) "disjunction checks" true (Proof.check d);
  Alcotest.check_raises "mismatched consequents rejected"
    (Proof.Rule_violation "rule 31: premises have different consequents") (fun () ->
      ignore (Proof.leadsto_disj [ t03; step 0 ]))

let test_implication () =
  let sp, x, prog = counter () in
  let t = Proof.leadsto_implication prog (at sp x 2) (bp sp Expr.(var x >== nat 1)) in
  Alcotest.(check bool) "implication checks" true (Proof.check t);
  Alcotest.check_raises "false implication rejected"
    (Proof.Rule_violation "leads-to implication: the implication does not hold") (fun () ->
      ignore (Proof.leadsto_implication prog (at sp x 1) (at sp x 2)))

let test_induction () =
  let sp, x, prog = counter () in
  (* metric k: distance to completion, x = 3 - k; premise: metric k ↦
     metric < k ∨ x=3. *)
  let metric k = at sp x (3 - k) in
  let q = at sp x 3 in
  let premise k =
    if k = 0 then Proof.leadsto_implication prog (metric 0) q
    else
      Proof.weaken_leadsto
        (Proof.ensures_leadsto (Proof.ensures_text prog (at sp x (3 - k)) (at sp x (4 - k))))
        (Bdd.or_ (Space.manager sp) (metric (k - 1)) q)
  in
  let t = Proof.leadsto_induction premise ~metric ~bound:3 ~q in
  Alcotest.(check bool) "induction conclusion checks" true (Proof.check t);
  (match Proof.judgment t with
  | Proof.Leadsto (p, _) ->
      Alcotest.(check bool) "antecedent covers all x" true
        (Pred.equivalent sp p (Bdd.tru (Space.manager sp)) || Pred.valid sp p)
  | _ -> Alcotest.fail "expected leads-to")

let test_invariant_text () =
  let sp, x, prog = counter () in
  let t = Proof.invariant_text prog (bp sp Expr.(var x <== nat 3)) in
  Alcotest.(check bool) "invariant checks" true (Proof.check t);
  (* Rule 32 with a helper invariant: x=0 is preserved only where x≤0
     fails in general; use I to restrict. *)
  Alcotest.check_raises "non-invariant rejected"
    (Proof.Rule_violation "invariant rule: statement inc does not preserve the predicate")
    (fun () -> ignore (Proof.invariant_text prog (at sp x 0)))

let test_substitution () =
  let sp, x, prog = counter () in
  let inv = Proof.invariant_text prog (bp sp Expr.(var x <== nat 3)) in
  let t = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  (* Under invariant x ≤ 3, "x=1" agrees with "x=1 ∧ x≤3". *)
  let p' = bp sp Expr.(var x === nat 1 &&& (var x <== nat 3)) in
  let t' = Proof.substitution inv t (Proof.Unless (p', at sp x 2)) in
  Alcotest.(check bool) "substituted checks" true (Proof.check t');
  Alcotest.check_raises "disagreeing substitution rejected"
    (Proof.Rule_violation "substitution: predicates differ where the invariant holds")
    (fun () -> ignore (Proof.substitution inv t (Proof.Unless (at sp x 2, at sp x 2))))

let test_weakening_strengthening () =
  let sp, x, prog = counter () in
  let t = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  let w = Proof.weaken_unless t (bp sp Expr.(var x >== nat 2)) in
  Alcotest.(check bool) "weakened unless checks" true (Proof.check w);
  let l = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 1) (at sp x 2)) in
  let wl = Proof.weaken_leadsto l (bp sp Expr.(var x >== nat 2)) in
  Alcotest.(check bool) "weakened leads-to checks" true (Proof.check wl);
  let sl = Proof.strengthen_leadsto (bp sp Expr.(var x === nat 1 &&& (var x <== nat 3))) wl in
  Alcotest.(check bool) "strengthened leads-to checks" true (Proof.check sl)

let test_conjunction_cancellation () =
  let sp, x, prog = counter () in
  let a = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  let b = Proof.unless_text prog (bp sp Expr.(var x <== nat 2)) (at sp x 3) in
  let c = Proof.conj_unless_simple a b in
  Alcotest.(check bool) "simple conjunction checks" true (Proof.check c);
  let c2 = Proof.conj_unless a b in
  Alcotest.(check bool) "full conjunction checks" true (Proof.check c2);
  let u12 = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  let u23 = Proof.unless_text prog (at sp x 2) (at sp x 3) in
  let canc = Proof.cancellation u12 u23 in
  Alcotest.(check bool) "cancellation checks" true (Proof.check canc);
  let gd = Proof.general_disjunction [ u12; u23 ] in
  Alcotest.(check bool) "generalized disjunction checks" true (Proof.check gd)

let test_psp () =
  let sp, x, prog = counter () in
  let l = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 1) (at sp x 2)) in
  let u = Proof.unless_text prog (bp sp Expr.(var x <== nat 2)) (at sp x 3) in
  let t = Proof.psp l u in
  Alcotest.(check bool) "PSP checks" true (Proof.check t)

let test_stable_rules () =
  let sp, x, prog = counter () in
  let t = Proof.stable_text prog (at sp x 3) in
  Alcotest.(check bool) "stable checks" true (Proof.check t);
  (match Proof.judgment t with
  | Proof.Unless (_, q) -> Alcotest.(check bool) "stable is unless false" true (Bdd.is_false q)
  | _ -> Alcotest.fail "stable should be an unless");
  let j = Proof.stable_judgment (Space.manager sp) (at sp x 3) in
  (match j with
  | Proof.Unless (_, q) -> Alcotest.(check bool) "judgment sugar" true (Bdd.is_false q)
  | _ -> Alcotest.fail "sugar should be unless")

let test_assumptions_tracking () =
  let sp, x, prog = counter () in
  let hyp = Proof.assume prog ~name:"H1" (Proof.Leadsto (at sp x 0, at sp x 2)) in
  let conc = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 2) (at sp x 3)) in
  let t = Proof.leadsto_trans hyp conc in
  Alcotest.(check (list string)) "assumption propagates" [ "H1" ] (Proof.assumptions t);
  let hyp2 = Proof.assume prog ~name:"H2" (Proof.Unless (at sp x 0, at sp x 1)) in
  let both = Proof.psp t hyp2 in
  Alcotest.(check (list string)) "assumptions merge" [ "H1"; "H2" ] (Proof.assumptions both);
  (* An assumed hypothesis need not hold semantically. *)
  let bogus = Proof.assume prog ~name:"BOGUS" (Proof.Leadsto (at sp x 3, at sp x 0)) in
  Alcotest.(check bool) "bogus assumption fails semantic check" false (Proof.check bogus)

let test_cross_program_rejected () =
  let sp, x, prog = counter () in
  let _, x2, prog2 = counter () in
  let a = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 0) (at sp x 1)) in
  let sp2 = Program.space prog2 in
  let b = Proof.ensures_leadsto (Proof.ensures_text prog2 (at sp2 x2 1) (at sp2 x2 2)) in
  Alcotest.check_raises "different programs rejected"
    (Proof.Rule_violation "premises refer to different programs") (fun () ->
      ignore (Proof.leadsto_trans a b))

let test_pp () =
  let sp, x, prog = counter () in
  let t = Proof.unless_text prog (at sp x 1) (at sp x 2) in
  let s = Format.asprintf "%a" Proof.pp t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions unless" true (contains s "unless")

let test_derivations () =
  let sp, x, prog = counter () in
  let step k = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x k) (at sp x (k + 1))) in
  let t = Proof.leadsto_trans (step 0) (step 1) in
  Alcotest.(check string) "rule name" "transitivity (30)" (Proof.rule t);
  Alcotest.(check int) "two premises" 2 (List.length (Proof.premises t));
  Alcotest.(check int) "derivation size" 5 (Proof.derivation_size t);
  let rules = Proof.rules_used t in
  Alcotest.(check bool) "mentions rule 29" true (List.mem "↦ intro (29)" rules);
  Alcotest.(check bool) "mentions rule 28" true (List.mem "ensures (28), from text" rules);
  Alcotest.(check bool) "no unnamed rules" true (not (List.mem "?" rules));
  let out = Format.asprintf "%a" Proof.pp_derivation t in
  Alcotest.(check bool) "printer emits lines" true (String.length out > 40)

let test_psp_stable_and_completion () =
  let sp, x, prog = counter () in
  let m = Space.manager sp in
  (* psp_stable: x=1 ↦ x=2 with stable (x ≥ 1) gives x=1 ∧ x≥1 ↦ x=2 ∧ x≥1 *)
  let l = Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 1) (at sp x 2)) in
  let stbl = Proof.stable_text prog (bp sp Expr.(var x >== nat 1)) in
  let t = Proof.psp_stable l stbl in
  Alcotest.(check bool) "psp_stable checks" true (Proof.check t);
  (match Proof.judgment t with
  | Proof.Leadsto (_, q) ->
      Alcotest.(check bool) "consequent is q ∧ r" true
        (Pred.equivalent sp q (Bdd.and_ m (at sp x 2) (bp sp Expr.(var x >== nat 1))))
  | _ -> Alcotest.fail "expected leads-to");
  (* completion over a single pair: p ↦ q ∨ b with q unless b *)
  let b = at sp x 3 in
  let l1 = Proof.weaken_leadsto
      (Proof.ensures_leadsto (Proof.ensures_text prog (at sp x 1) (at sp x 2)))
      (Bdd.or_ m (at sp x 2) b) in
  let u1 = Proof.unless_text prog (at sp x 2) b in
  let c = Proof.completion [ (l1, u1) ] in
  Alcotest.(check bool) "completion checks" true (Proof.check c);
  (* two pairs with q.1 = q.2 shapes *)
  let l2 = Proof.weaken_leadsto
      (Proof.leadsto_implication prog (bp sp Expr.(var x >== nat 1)) (bp sp Expr.(var x >== nat 1)))
      (Bdd.or_ m (bp sp Expr.(var x >== nat 1)) b) in
  let u2 = Proof.unless_text prog (bp sp Expr.(var x >== nat 1)) b in
  let c2 = Proof.completion [ (l1, u1); (l2, u2) ] in
  Alcotest.(check bool) "binary completion checks" true (Proof.check c2);
  Alcotest.check_raises "mismatched b rejected"
    (Proof.Rule_violation "completion: premises disagree on b") (fun () ->
      let u_bad = Proof.unless_text prog (at sp x 2) (Bdd.tru m) in
      ignore (Proof.completion [ (l1, u1); (l1, u_bad) ]))

let suite =
  [
    Alcotest.test_case "unless from text" `Quick test_unless_text;
    Alcotest.test_case "ensures and rule 29" `Quick test_ensures_and_29;
    Alcotest.test_case "transitivity and disjunction" `Quick test_trans_and_disj;
    Alcotest.test_case "leads-to implication" `Quick test_implication;
    Alcotest.test_case "induction" `Quick test_induction;
    Alcotest.test_case "invariant rule 32" `Quick test_invariant_text;
    Alcotest.test_case "substitution" `Quick test_substitution;
    Alcotest.test_case "weakening/strengthening" `Quick test_weakening_strengthening;
    Alcotest.test_case "conjunction/cancellation/disjunction" `Quick test_conjunction_cancellation;
    Alcotest.test_case "PSP" `Quick test_psp;
    Alcotest.test_case "stable" `Quick test_stable_rules;
    Alcotest.test_case "assumption tracking" `Quick test_assumptions_tracking;
    Alcotest.test_case "cross-program safety" `Quick test_cross_program_rejected;
    Alcotest.test_case "pp" `Quick test_pp;
    Alcotest.test_case "derivation trees" `Quick test_derivations;
    Alcotest.test_case "psp_stable and completion" `Quick test_psp_stable_and_completion;
  ]
