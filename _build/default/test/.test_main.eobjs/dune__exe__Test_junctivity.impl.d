test/test_junctivity.ml: Alcotest Bdd Expr Helpers Junctivity Kbp Kform Kpt_core Kpt_predicate Kpt_unity List Pred Program Space Stmt Wcyl
