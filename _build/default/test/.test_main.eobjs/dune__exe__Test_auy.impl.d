test/test_auy.ml: Alcotest Auy Expr Kpt_protocols Kpt_unity Lazy Program Seqtrans
