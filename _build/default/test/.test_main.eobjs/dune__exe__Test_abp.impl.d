test/test_abp.ml: Abp Alcotest Expr Kpt_protocols Kpt_unity Lazy List Program Seqtrans
