test/test_matrix.ml: Abp Alcotest Bdd Format Kpt_experiments Kpt_logic Kpt_predicate Kpt_protocols Kpt_runs Kpt_unity List Muddy Printf Program Seqtrans Seqtrans_proofs Space Window
