test/test_muddy.ml: Alcotest Array Expr Fun Kpt_predicate Kpt_protocols Kpt_unity Lazy List Muddy Program Space
