test/test_proof.ml: Alcotest Bdd Expr Format Kpt_logic Kpt_predicate Kpt_unity List Pred Program Proof Space Stmt String
