test/test_kflow.ml: Alcotest Array Expr Kflow Kpt_core Kpt_predicate Kpt_protocols Kpt_unity List Printf Process Program Seqtrans Space Stmt
