test/test_crossval.ml: Abp Alcotest Array Exec Expr Helpers Kpt_predicate Kpt_protocols Kpt_runs Kpt_unity List Monitor Printf Program Reachability Seqtrans Space
