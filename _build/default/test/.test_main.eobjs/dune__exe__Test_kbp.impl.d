test/test_kbp.ml: Alcotest Array Bdd Expr Format Hashtbl Helpers Kbp Kform Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Pred Process Program Props Space Stmt String
