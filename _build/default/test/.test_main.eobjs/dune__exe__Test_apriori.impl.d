test/test_apriori.ml: Alcotest Apriori Kpt_predicate Kpt_protocols Seqtrans Space
