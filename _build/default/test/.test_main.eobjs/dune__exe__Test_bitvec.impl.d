test/test_bitvec.ml: Alcotest Array Bdd Bitvec Kpt_predicate
