test/test_seqtrans.ml: Alcotest Array Bdd Expr Kpt_logic Kpt_predicate Kpt_protocols Kpt_unity Lazy List Program Proof Seqtrans Seqtrans_proofs Space String
