test/test_ctl.ml: Alcotest Array Bdd Ctl Expr Helpers Kpt_logic Kpt_predicate Kpt_unity Pred Program Props Space Stmt
