test/test_seqtrans_proofs.ml: Alcotest Kpt_logic Kpt_predicate Kpt_protocols Lazy List Proof Seqtrans Seqtrans_proofs
