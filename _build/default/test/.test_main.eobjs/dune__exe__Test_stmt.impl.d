test/test_stmt.ml: Alcotest Array Bdd Expr Format Helpers Kpt_predicate Kpt_unity List Pred Printf Space Stmt
