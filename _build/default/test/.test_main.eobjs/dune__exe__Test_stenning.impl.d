test/test_stenning.ml: Alcotest Expr Kpt_protocols Kpt_unity Lazy List Program Seqtrans Stenning
