test/test_syntax.ml: Alcotest Ast Bdd Elaborate Expr Format Kbp Kpt_core Kpt_logic Kpt_predicate Kpt_syntax Kpt_unity List Parser Pred Program Space String Token
