test/test_gossip.ml: Alcotest Array Expr Gossip Helpers Kpt_predicate Kpt_protocols Kpt_runs Kpt_unity Lazy List Printf Program Space Stmt
