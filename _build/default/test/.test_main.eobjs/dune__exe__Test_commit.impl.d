test/test_commit.ml: Alcotest Array Bdd Commit Expr Kpt_core Kpt_logic Kpt_predicate Kpt_protocols Kpt_unity Lazy Printf Program Space
