test/test_expr.ml: Alcotest Array Bitvec Expr Format Kpt_predicate Kpt_unity List Pred Printf Space
