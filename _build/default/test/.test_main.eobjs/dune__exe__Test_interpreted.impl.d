test/test_interpreted.ml: Alcotest Array Expr Helpers Interpreted Kpt_predicate Kpt_runs Kpt_unity List Pred Process Program Space Stmt
