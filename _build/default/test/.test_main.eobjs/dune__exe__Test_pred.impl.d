test/test_pred.ml: Alcotest Bdd Bitvec Helpers Kpt_predicate List Pred Space
