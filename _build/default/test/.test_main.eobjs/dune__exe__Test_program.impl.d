test/test_program.ml: Alcotest Array Bdd Expr Format Helpers Kpt_logic Kpt_predicate Kpt_unity List Pred Printf Process Program Space Stmt String
