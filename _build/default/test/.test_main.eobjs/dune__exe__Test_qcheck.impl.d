test/test_qcheck.ml: Array Bdd Bitvec Expr Format Hashtbl Helpers Kbp Kform Kpt_core Kpt_logic Kpt_predicate Kpt_syntax Kpt_unity List Pred Printf Process Program QCheck Space Stmt String
