test/test_refine.ml: Alcotest Array Expr Kpt_logic Kpt_predicate Kpt_protocols Kpt_unity List Printf Program Refine Seqtrans Space Stmt
