test/test_space.ml: Alcotest Array Bdd Bitvec Format Kpt_predicate List Space
