test/test_knowledge.ml: Alcotest Bdd Expr Helpers Junctivity Knowledge Kpt_core Kpt_predicate Kpt_unity List Pred Process Program Space Stmt Wcyl
