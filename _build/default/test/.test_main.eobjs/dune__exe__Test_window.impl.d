test/test_window.ml: Alcotest Expr Kpt_protocols Kpt_runs Kpt_unity Lazy List Printf Program Seqtrans Window
