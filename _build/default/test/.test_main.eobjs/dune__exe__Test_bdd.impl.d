test/test_bdd.ml: Alcotest Bdd Helpers Kpt_predicate List Printf Random
