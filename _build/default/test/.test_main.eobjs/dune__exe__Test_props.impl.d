test/test_props.ml: Alcotest Array Bdd Expr Helpers Kpt_logic Kpt_predicate Kpt_unity Pred Program Props Space Stmt
