test/test_runs.ml: Alcotest Array Exec Expr Helpers Kpt_predicate Kpt_runs Kpt_unity List Monitor Pred Process Program Reachability Space Stmt
