test/test_wcyl.ml: Alcotest Bdd Expr Helpers Junctivity Kpt_core Kpt_predicate Kpt_unity Pred Space Wcyl
