test/test_channel.ml: Alcotest Array Channel Expr Kpt_predicate Kpt_protocols Kpt_unity List Program Space Stmt
