test/helpers.ml: Kpt_predicate List QCheck_alcotest Random
