test/test_kform.ml: Alcotest Bdd Expr Format Helpers Kform Knowledge Kpt_core Kpt_predicate Kpt_unity Pred Process Space
