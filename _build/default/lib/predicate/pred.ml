let man = Space.manager

let valid sp p = Bdd.implies (man sp) (Space.domain sp) p
let holds_implies sp p q = Bdd.implies (man sp) (Bdd.and_ (man sp) (Space.domain sp) p) q
let equivalent sp p q = Bdd.is_true (Bdd.imp (man sp) (Space.domain sp) (Bdd.iff (man sp) p q))
let normalize sp p = Bdd.and_ (man sp) p (Space.domain sp)

let complement_vars sp vs =
  List.filter (fun v -> not (List.exists (fun u -> Space.idx u = Space.idx v) vs)) (Space.vars sp)

(* Range constraints of just the quantified variables: quantification must
   range over type-correct values only. *)
let local_domain sp vs =
  let m = man sp in
  List.fold_left
    (fun acc v ->
      if Space.card v = 1 lsl Space.width v then acc
      else
        Bdd.and_ m acc
          (Bitvec.le m (Space.cur_vec sp v)
             (Bitvec.const m ~width:(Space.width v) (Space.card v - 1))))
    (Bdd.tru m) vs

let forall_vars sp vs p =
  let m = man sp in
  let bits = List.concat_map Space.current_bits vs in
  Bdd.forall m bits (Bdd.imp m (local_domain sp vs) p)

let exists_vars sp vs p =
  let m = man sp in
  let bits = List.concat_map Space.current_bits vs in
  Bdd.exists m bits (Bdd.and_ m (local_domain sp vs) p)

let depends_only_on sp p vs =
  let outside = complement_vars sp vs in
  equivalent sp p (exists_vars sp outside p)

let random rng ?(density = 0.5) sp =
  let m = man sp in
  let acc = ref (Bdd.fls m) in
  Space.iter_states sp (fun st ->
      if Stdlib.Random.State.float rng 1.0 < density then
        acc := Bdd.or_ m !acc (Space.pred_of_state sp st));
  !acc
