(* Hash-consed ROBDDs.  Levels: variable index, [leaf_level] for leaves.
   Canonicity invariant: no node has [low == high], and every (level, low,
   high) triple is hash-consed, so semantic equality is physical equality. *)

let leaf_level = max_int

type t = { uid : int; level : int; low : t; high : t }

type manager = {
  mutable next_uid : int;
  unique : (int * int * int, t) Hashtbl.t;
  bin_cache : (int * int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
  ite_cache : (int * int * int, t) Hashtbl.t;
  t_true : t;
  t_false : t;
}

let make_leaf uid =
  let rec n = { uid; level = leaf_level; low = n; high = n } in
  n

let create ?(unique_size = 1 lsl 14) ?(cache_size = 1 lsl 14) () =
  {
    next_uid = 2;
    unique = Hashtbl.create unique_size;
    bin_cache = Hashtbl.create cache_size;
    not_cache = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
    t_true = make_leaf 1;
    t_false = make_leaf 0;
  }

let clear_caches m =
  Hashtbl.reset m.bin_cache;
  Hashtbl.reset m.not_cache;
  Hashtbl.reset m.ite_cache

let tru m = m.t_true
let fls m = m.t_false
let uid n = n.uid
let equal a b = a == b
let is_leaf n = n.level = leaf_level
let is_true n = n.level = leaf_level && n.uid = 1
let is_false n = n.level = leaf_level && n.uid = 0

let mk m level low high =
  if low == high then low
  else
    let key = (level, low.uid, high.uid) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = { uid = m.next_uid; level; low; high } in
        m.next_uid <- m.next_uid + 1;
        Hashtbl.add m.unique key n;
        n

let var m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_false m.t_true

let nvar m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_true m.t_false

(* Binary apply.  [op] tags the cache entry; [terminal] decides leaves and
   short-circuits.  Commutative operators normalise the cache key. *)
let bin m ~op ~commutative ~terminal =
  let rec go a b =
    match terminal a b with
    | Some r -> r
    | None ->
        let key =
          if commutative && a.uid > b.uid then (op, b.uid, a.uid)
          else (op, a.uid, b.uid)
        in
        (match Hashtbl.find_opt m.bin_cache key with
        | Some r -> r
        | None ->
            let lvl = min a.level b.level in
            let a0, a1 = if a.level = lvl then (a.low, a.high) else (a, a) in
            let b0, b1 = if b.level = lvl then (b.low, b.high) else (b, b) in
            let r = mk m lvl (go a0 b0) (go a1 b1) in
            Hashtbl.add m.bin_cache key r;
            r)
  in
  go

let op_and = 0
let op_or = 1
let op_xor = 2
let op_imp = 3
let op_iff = 4
let op_relprod = 5

let and_ m a b =
  let terminal a b =
    if is_false a || is_false b then Some m.t_false
    else if is_true a then Some b
    else if is_true b then Some a
    else if a == b then Some a
    else None
  in
  bin m ~op:op_and ~commutative:true ~terminal a b

let or_ m a b =
  let terminal a b =
    if is_true a || is_true b then Some m.t_true
    else if is_false a then Some b
    else if is_false b then Some a
    else if a == b then Some a
    else None
  in
  bin m ~op:op_or ~commutative:true ~terminal a b

let rec not_ m a =
  if is_true a then m.t_false
  else if is_false a then m.t_true
  else
    match Hashtbl.find_opt m.not_cache a.uid with
    | Some r -> r
    | None ->
        let r = mk m a.level (not_ m a.low) (not_ m a.high) in
        Hashtbl.add m.not_cache a.uid r;
        Hashtbl.add m.not_cache r.uid a;
        r

let xor m a b =
  let terminal a b =
    if a == b then Some m.t_false
    else if is_false a then Some b
    else if is_false b then Some a
    else if is_true a then Some (not_ m b)
    else if is_true b then Some (not_ m a)
    else None
  in
  bin m ~op:op_xor ~commutative:true ~terminal a b

let imp m a b =
  let terminal a b =
    if is_false a || is_true b then Some m.t_true
    else if is_true a then Some b
    else if a == b then Some m.t_true
    else if is_false b then Some (not_ m a)
    else None
  in
  bin m ~op:op_imp ~commutative:false ~terminal a b

let iff m a b =
  let terminal a b =
    if a == b then Some m.t_true
    else if is_true a then Some b
    else if is_true b then Some a
    else if is_false a then Some (not_ m b)
    else if is_false b then Some (not_ m a)
    else None
  in
  bin m ~op:op_iff ~commutative:true ~terminal a b

let rec ite m c a b =
  if is_true c then a
  else if is_false c then b
  else if a == b then a
  else if is_true a && is_false b then c
  else
    let key = (c.uid, a.uid, b.uid) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let lvl = min c.level (min a.level b.level) in
        let cof n = if n.level = lvl then (n.low, n.high) else (n, n) in
        let c0, c1 = cof c and a0, a1 = cof a and b0, b1 = cof b in
        let r = mk m lvl (ite m c0 a0 b0) (ite m c1 a1 b1) in
        Hashtbl.add m.ite_cache key r;
        r

let conj m ps = List.fold_left (and_ m) (tru m) ps
let disj m ps = List.fold_left (or_ m) (fls m) ps
let implies m a b = is_true (imp m a b)

let restrict m root i polarity =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if n.level > i then n
    else if n.level = i then if polarity then n.high else n.low
    else
      match Hashtbl.find_opt memo n.uid with
      | Some r -> r
      | None ->
          let r = mk m n.level (go n.low) (go n.high) in
          Hashtbl.add memo n.uid r;
          r
  in
  go root

let rec drop_below level = function
  | v :: rest when v < level -> drop_below level rest
  | vs -> vs

(* Quantification.  The memo is keyed on the node uid only: after dropping
   variables below the node's level, the remaining variable list is a
   function of the node's level alone (the input list is sorted). *)
let quant m ~ex vars root =
  let combine = if ex then or_ m else and_ m in
  let memo = Hashtbl.create 256 in
  let rec go vs n =
    if is_leaf n then n
    else
      let vs = drop_below n.level vs in
      match vs with
      | [] -> n
      | v :: rest -> (
          match Hashtbl.find_opt memo n.uid with
          | Some r -> r
          | None ->
              let r =
                if v = n.level then combine (go rest n.low) (go rest n.high)
                else mk m n.level (go vs n.low) (go vs n.high)
              in
              Hashtbl.add memo n.uid r;
              r)
  in
  go (List.sort_uniq compare vars) root

let exists m vars root = quant m ~ex:true vars root
let forall m vars root = quant m ~ex:false vars root

let and_exists m vars a b =
  let sorted = List.sort_uniq compare vars in
  let memo = Hashtbl.create 256 in
  let rec go vs a b =
    if is_false a || is_false b then m.t_false
    else if is_true a then quant m ~ex:true vs b
    else if is_true b then quant m ~ex:true vs a
    else
      let lvl = min a.level b.level in
      let vs = drop_below lvl vs in
      match vs with
      | [] -> and_ m a b
      | v :: rest -> (
          let key =
            if a.uid > b.uid then (op_relprod, b.uid, a.uid)
            else (op_relprod, a.uid, b.uid)
          in
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let a0, a1 = if a.level = lvl then (a.low, a.high) else (a, a) in
              let b0, b1 = if b.level = lvl then (b.low, b.high) else (b, b) in
              let r =
                if v = lvl then or_ m (go rest a0 b0) (go rest a1 b1)
                else mk m lvl (go vs a0 b0) (go vs a1 b1)
              in
              Hashtbl.add memo key r;
              r)
  in
  go sorted a b

let rename m f root =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if is_leaf n then n
    else
      match Hashtbl.find_opt memo n.uid with
      | Some r -> r
      | None ->
          let r = mk m (f n.level) (go n.low) (go n.high) in
          Hashtbl.add memo n.uid r;
          r
  in
  go root

let support _m root =
  let seen = Hashtbl.create 256 in
  let levels = Hashtbl.create 64 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      Hashtbl.replace levels n.level ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.fold (fun l () acc -> l :: acc) levels [] |> List.sort compare

let depends_on m root i = List.mem i (support m root)

let size _m root =
  let seen = Hashtbl.create 256 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.length seen

let node_count m = m.next_uid

let sat_count _m ~nvars root =
  let memo = Hashtbl.create 256 in
  let lvl n = if is_leaf n then nvars else n.level in
  let rec go n =
    if is_false n then 0.0
    else if is_true n then 1.0
    else
      match Hashtbl.find_opt memo n.uid with
      | Some c -> c
      | None ->
          let weight child =
            go child *. (2.0 ** float_of_int (lvl child - n.level - 1))
          in
          let c = weight n.low +. weight n.high in
          Hashtbl.add memo n.uid c;
          c
  in
  go root *. (2.0 ** float_of_int (lvl root))

let any_sat _m root =
  if is_false root then raise Not_found;
  let rec go acc n =
    if is_leaf n then List.rev acc
    else if is_false n.low then go ((n.level, true) :: acc) n.high
    else go ((n.level, false) :: acc) n.low
  in
  go [] root

let iter_sat _m ~vars root f =
  let vars = List.sort_uniq compare vars in
  let asg = Hashtbl.create 16 in
  let lookup i = Hashtbl.find asg i in
  let rec go vs n =
    if is_false n then ()
    else
      match vs with
      | [] ->
          assert (is_true n);
          f lookup
      | v :: rest ->
          assert (n.level >= v);
          let branch b =
            Hashtbl.replace asg v b;
            let n' = if n.level = v then if b then n.high else n.low else n in
            go rest n'
          in
          branch false;
          branch true;
          Hashtbl.remove asg v
  in
  go vars root

let live_count m = Hashtbl.length m.unique + 2

let gc m ~roots =
  clear_caches m;
  let keep = Hashtbl.create (Hashtbl.length m.unique) in
  let rec mark n =
    if (not (is_leaf n)) && not (Hashtbl.mem keep n.uid) then begin
      Hashtbl.add keep n.uid n;
      mark n.low;
      mark n.high
    end
  in
  List.iter mark roots;
  Hashtbl.reset m.unique;
  Hashtbl.iter (fun _ n -> Hashtbl.add m.unique (n.level, n.low.uid, n.high.uid) n) keep

let rec eval n valuation =
  if is_true n then true
  else if is_false n then false
  else if valuation n.level then eval n.high valuation
  else eval n.low valuation

let pp _m fmt root =
  let rec go fmt n =
    if is_true n then Format.fprintf fmt "T"
    else if is_false n then Format.fprintf fmt "F"
    else Format.fprintf fmt "(v%d ? %a : %a)" n.level go n.high go n.low
  in
  go fmt root
