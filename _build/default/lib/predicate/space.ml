type typ = Tbool | Tnat of int | Tenum of string array

type var = {
  vname : string;
  vidx : int;
  vtyp : typ;
  voffset : int; (* first bit slot *)
  vwidth : int;
}

type state = int array

type t = {
  man : Bdd.manager;
  mutable decls : var list; (* reversed *)
  mutable nslots : int;
  byname : (string, var) Hashtbl.t;
}

let create () = { man = Bdd.create (); decls = []; nslots = 0; byname = Hashtbl.create 16 }
let manager sp = sp.man

let bits_for card =
  let rec go w = if 1 lsl w >= card then w else go (w + 1) in
  if card <= 1 then 1 else go 1

let declare sp name typ =
  if Hashtbl.mem sp.byname name then
    invalid_arg (Printf.sprintf "Space: duplicate variable %S" name);
  let card = match typ with Tbool -> 2 | Tnat m -> m + 1 | Tenum vs -> Array.length vs in
  if card < 1 then invalid_arg "Space: empty domain";
  let v =
    {
      vname = name;
      vidx = List.length sp.decls;
      vtyp = typ;
      voffset = sp.nslots;
      vwidth = bits_for card;
    }
  in
  sp.nslots <- sp.nslots + v.vwidth;
  sp.decls <- v :: sp.decls;
  Hashtbl.add sp.byname name v;
  v

let bool_var sp name = declare sp name Tbool

let nat_var sp name ~max =
  if max < 0 then invalid_arg "Space.nat_var: negative max";
  declare sp name (Tnat max)

let enum_var sp name ~values = declare sp name (Tenum values)
let vars sp = List.rev sp.decls
let find sp name = Hashtbl.find sp.byname name
let name v = v.vname
let idx v = v.vidx
let card v = match v.vtyp with Tbool -> 2 | Tnat m -> m + 1 | Tenum vs -> Array.length vs
let width v = v.vwidth

let value_name v k =
  match v.vtyp with
  | Tbool -> if k = 0 then "false" else "true"
  | Tnat _ -> string_of_int k
  | Tenum vs -> vs.(k)

let current_bits v = List.init v.vwidth (fun k -> 2 * (v.voffset + k))
let next_bits v = List.init v.vwidth (fun k -> (2 * (v.voffset + k)) + 1)
let all_current_bits sp = List.concat_map current_bits (vars sp)
let all_next_bits sp = List.concat_map next_bits (vars sp)

let cur_vec sp v =
  Bitvec.of_bits (Array.init v.vwidth (fun k -> Bdd.var sp.man (2 * (v.voffset + k))))

let next_vec sp v =
  Bitvec.of_bits
    (Array.init v.vwidth (fun k -> Bdd.var sp.man ((2 * (v.voffset + k)) + 1)))

let to_next sp p = Bdd.rename sp.man (fun b -> b + 1) p
let to_current sp p = Bdd.rename sp.man (fun b -> b - 1) p

let range_constraint sp vec v = Bitvec.le sp.man vec (Bitvec.const sp.man ~width:v.vwidth (card v - 1))

let domain sp =
  List.fold_left
    (fun acc v ->
      if card v = 1 lsl v.vwidth then acc
      else Bdd.and_ sp.man acc (range_constraint sp (cur_vec sp v) v))
    (Bdd.tru sp.man) (vars sp)

let domain_next sp =
  List.fold_left
    (fun acc v ->
      if card v = 1 lsl v.vwidth then acc
      else Bdd.and_ sp.man acc (range_constraint sp (next_vec sp v) v))
    (Bdd.tru sp.man) (vars sp)

let state_count sp = List.fold_left (fun acc v -> acc * card v) 1 (vars sp)

let iter_states sp f =
  let vs = Array.of_list (vars sp) in
  let n = Array.length vs in
  let st = Array.make (max n 1) 0 in
  let rec go i = if i = n then f st else
    for value = 0 to card vs.(i) - 1 do
      st.(i) <- value;
      go (i + 1)
    done
  in
  go 0

(* Valuation of current bits induced by a state. *)
let valuation sp st bit =
  assert (bit land 1 = 0);
  let slot = bit / 2 in
  let v = List.find (fun v -> v.voffset <= slot && slot < v.voffset + v.vwidth) (vars sp) in
  (st.(v.vidx) lsr (slot - v.voffset)) land 1 = 1

let holds_at sp p st = Bdd.eval p (valuation sp st)

let pred_of_state sp st =
  List.fold_left
    (fun acc v -> Bdd.and_ sp.man acc (Bitvec.eq_const sp.man (cur_vec sp v) st.(v.vidx)))
    (Bdd.tru sp.man) (vars sp)

let states_of sp p =
  let acc = ref [] in
  iter_states sp (fun st -> if holds_at sp p st then acc := Array.copy st :: !acc);
  List.rev !acc

let count_states_of sp p =
  let n = ref 0 in
  iter_states sp (fun st -> if holds_at sp p st then incr n);
  !n

let pp_state sp fmt st =
  Format.fprintf fmt "@[<h>⟨";
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%s=%s" v.vname (value_name v st.(v.vidx)))
    (vars sp);
  Format.fprintf fmt "⟩"

let pp_pred sp fmt p =
  let sts = states_of sp p in
  Format.fprintf fmt "@[<hov 2>{";
  List.iteri
    (fun i st ->
      if i > 0 then Format.fprintf fmt ",@ ";
      pp_state sp fmt st)
    sts;
  Format.fprintf fmt "}@]"
