lib/predicate/bdd.mli: Format
