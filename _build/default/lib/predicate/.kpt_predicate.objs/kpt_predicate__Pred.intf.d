lib/predicate/pred.mli: Bdd Space Stdlib
