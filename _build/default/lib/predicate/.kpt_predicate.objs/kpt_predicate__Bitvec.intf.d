lib/predicate/bitvec.mli: Bdd
