lib/predicate/space.mli: Bdd Bitvec Format
