lib/predicate/bdd.ml: Array Format Hashtbl List
