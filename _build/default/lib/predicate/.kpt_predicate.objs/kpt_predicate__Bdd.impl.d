lib/predicate/bdd.ml: Format Hashtbl List
