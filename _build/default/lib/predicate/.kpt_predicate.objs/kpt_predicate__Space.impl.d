lib/predicate/space.ml: Array Bdd Bitvec Format Hashtbl List Printf
