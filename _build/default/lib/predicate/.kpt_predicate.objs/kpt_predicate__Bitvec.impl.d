lib/predicate/bitvec.ml: Array Bdd
