lib/predicate/pred.ml: Bdd Bitvec List Space Stdlib
