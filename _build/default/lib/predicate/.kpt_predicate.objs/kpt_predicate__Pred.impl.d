lib/predicate/pred.ml: Bdd Space Stdlib
