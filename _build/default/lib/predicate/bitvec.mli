(** Symbolic unsigned bit-vectors: arrays of BDDs, least significant bit
    first.  These compile the bounded-nat arithmetic of UNITY expressions
    (counters [i], [j], [z], sequence lengths…) into predicates, so that
    guards such as [z = i + 1] become single BDDs.

    All operations are width-polymorphic: operands of different widths are
    implicitly zero-extended to the wider width.  Arithmetic is modular in
    the width of the result; the UNITY layer chooses widths large enough
    that no wrap-around is reachable. *)

type t = Bdd.t array
(** [t.(k)] is the predicate "bit [k] of the value is set". *)

val const : Bdd.manager -> width:int -> int -> t
(** Constant bit-vector.  @raise Invalid_argument if the value does not
    fit in [width] bits. *)

val of_bits : Bdd.t array -> t
(** View an array of predicates as a vector (no copy). *)

val width : t -> int

val zero_extend : Bdd.manager -> width:int -> t -> t
(** Pad with false bits up to [width] (identity if already wider). *)

val add : Bdd.manager -> t -> t -> t
(** Sum, one bit wider than the wider operand (never wraps). *)

val add_mod : Bdd.manager -> width:int -> t -> t -> t
(** Sum truncated to [width] bits (modular). *)

val sub_sat : Bdd.manager -> t -> t -> t
(** Saturating (natural) subtraction: [max 0 (a - b)] pointwise. *)

val succ : Bdd.manager -> t -> t
(** [add] with the constant one. *)

val eq : Bdd.manager -> t -> t -> Bdd.t
(** Pointwise equality predicate. *)

val eq_const : Bdd.manager -> t -> int -> Bdd.t

val lt : Bdd.manager -> t -> t -> Bdd.t
(** Unsigned strict less-than predicate. *)

val le : Bdd.manager -> t -> t -> Bdd.t
val gt : Bdd.manager -> t -> t -> Bdd.t
val ge : Bdd.manager -> t -> t -> Bdd.t

val ite : Bdd.manager -> Bdd.t -> t -> t -> t
(** Pointwise conditional. *)

val value : t -> (int -> bool) -> int
(** Evaluate to an integer at a point. *)
