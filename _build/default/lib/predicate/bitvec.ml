type t = Bdd.t array

let const m ~width v =
  if v < 0 || (width < 63 && v lsr width <> 0) then
    invalid_arg "Bitvec.const: value out of range";
  Array.init width (fun k -> if (v lsr k) land 1 = 1 then Bdd.tru m else Bdd.fls m)

let of_bits bits = bits
let width v = Array.length v

let zero_extend m ~width v =
  if Array.length v >= width then v
  else
    Array.init width (fun k -> if k < Array.length v then v.(k) else Bdd.fls m)

let bit m v k = if k < Array.length v then v.(k) else Bdd.fls m

(* Ripple-carry adder over predicates. *)
let add_width m out_width a b =
  let result = Array.make out_width (Bdd.fls m) in
  let carry = ref (Bdd.fls m) in
  for k = 0 to out_width - 1 do
    let x = bit m a k and y = bit m b k in
    let xy = Bdd.xor m x y in
    result.(k) <- Bdd.xor m xy !carry;
    carry := Bdd.or_ m (Bdd.and_ m x y) (Bdd.and_ m xy !carry)
  done;
  result

let add m a b = add_width m (1 + max (Array.length a) (Array.length b)) a b
let add_mod m ~width a b = add_width m width a b
let succ m a = add m a (const m ~width:1 1)

(* Borrow chain: borrow_{k+1} = (¬x ∧ y) ∨ (borrow_k ∧ (x ≡ y)).  The
   saturating result forces zero when the final borrow is set. *)
let sub_sat m a b =
  let w = max (Array.length a) (Array.length b) in
  let raw = Array.make w (Bdd.fls m) in
  let borrow = ref (Bdd.fls m) in
  for k = 0 to w - 1 do
    let x = bit m a k and y = bit m b k in
    let xy = Bdd.xor m x y in
    raw.(k) <- Bdd.xor m xy !borrow;
    borrow :=
      Bdd.or_ m (Bdd.and_ m (Bdd.not_ m x) y) (Bdd.and_ m !borrow (Bdd.not_ m xy))
  done;
  let underflow = !borrow in
  Array.map (fun bitk -> Bdd.and_ m bitk (Bdd.not_ m underflow)) raw

let eq m a b =
  let w = max (Array.length a) (Array.length b) in
  let acc = ref (Bdd.tru m) in
  for k = 0 to w - 1 do
    acc := Bdd.and_ m !acc (Bdd.iff m (bit m a k) (bit m b k))
  done;
  !acc

let eq_const m a v =
  let w = Array.length a in
  if v < 0 || (w < 63 && v lsr w <> 0) then Bdd.fls m
  else eq m a (const m ~width:w v)

let lt m a b =
  let w = max (Array.length a) (Array.length b) in
  (* Scan from the most significant bit down: a < b iff at the highest
     differing bit, a has 0 and b has 1. *)
  let acc = ref (Bdd.fls m) in
  for k = 0 to w - 1 do
    let x = bit m a k and y = bit m b k in
    acc := Bdd.ite m (Bdd.xor m x y) (Bdd.and_ m (Bdd.not_ m x) y) !acc
  done;
  !acc

let le m a b = Bdd.not_ m (lt m b a)
let gt m a b = lt m b a
let ge m a b = le m b a

let ite m c a b =
  let w = max (Array.length a) (Array.length b) in
  Array.init w (fun k -> Bdd.ite m c (bit m a k) (bit m b k))

let value v point =
  let acc = ref 0 in
  Array.iteri (fun k b -> if Bdd.eval b point then acc := !acc lor (1 lsl k)) v;
  !acc
