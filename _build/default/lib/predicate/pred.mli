(** Predicate calculus relativised to a state space.

    BDDs over the current bits of a {!Space.t} represent predicates, but
    variables with non-power-of-two domains leave "junk" valuations outside
    the state space.  This module provides the paper's §2 operators — the
    everywhere operator, the order [[p ⇒ q]], and typed quantification over
    sets of {e program} variables — all relativised to type-correct states,
    so they agree exactly with the semantic definitions. *)

val valid : Space.t -> Bdd.t -> bool
(** The everywhere operator [[p]]: [p] holds at every state of the space. *)

val holds_implies : Space.t -> Bdd.t -> Bdd.t -> bool
(** [[p ⇒ q]]: [q] is weaker than [p] over the space. *)

val equivalent : Space.t -> Bdd.t -> Bdd.t -> bool
(** [[p ≡ q]] over the space. *)

val normalize : Space.t -> Bdd.t -> Bdd.t
(** Canonical representative of [p]'s restriction to the space
    ([p ∧ domain]); two predicates agree on the space iff their
    normalisations are {!Bdd.equal}. *)

val complement_vars : Space.t -> Space.var list -> Space.var list
(** The paper's [V̄]: all space variables not in the given list. *)

val forall_vars : Space.t -> Space.var list -> Bdd.t -> Bdd.t
(** [(∀ vs :: p)] with [vs] ranging over type-correct values: the
    building block of the weakest cylinder (eq. 6). *)

val exists_vars : Space.t -> Space.var list -> Bdd.t -> Bdd.t
(** [(∃ vs :: p)] over type-correct values. *)

val depends_only_on : Space.t -> Bdd.t -> Space.var list -> bool
(** [p] is independent of every variable outside the list (same value at
    any two states differing only there — §3's notion). *)

val random : Stdlib.Random.State.t -> ?density:float -> Space.t -> Bdd.t
(** A uniformly random predicate: each state is included independently
    with probability [density] (default 0.5).  Enumerates the space, so
    small spaces only; used by the junctivity testers and qcheck suites. *)
