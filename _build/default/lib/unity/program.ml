open Kpt_predicate

type t = {
  space : Space.t;
  name : string;
  init : Bdd.t;
  statements : Stmt.t list;
  processes : Process.t list;
  mutable cached_si : Bdd.t option;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let validate space name init statements =
  if statements = [] then ill_formed "program %s: empty statement list" name;
  List.iter
    (fun s ->
      let bad = Stmt.totality_violation space s in
      if not (Bdd.is_false bad) then
        match Space.states_of space bad with
        | st :: _ ->
            ill_formed "program %s: statement %s is not total at %a" name (Stmt.name s)
              (Space.pp_state space) st
        | [] -> ())
    statements;
  if Bdd.is_false (Pred.normalize space init) then
    ill_formed "program %s: unsatisfiable initial condition" name

let make_with_init_pred space ~name ~init ?(processes = []) statements =
  let init = Pred.normalize space init in
  validate space name init statements;
  { space; name; init; statements; processes; cached_si = None }

let make space ~name ~init ?processes statements =
  make_with_init_pred space ~name ~init:(Expr.compile_bool space init) ?processes statements

let space p = p.space
let name p = p.name
let init p = p.init
let statements p = p.statements
let processes p = p.processes
let find_process p pname = List.find (fun pr -> Process.name pr = pname) p.processes

let sp_pred p pred =
  let m = Space.manager p.space in
  List.fold_left (fun acc s -> Bdd.or_ m acc (Stmt.sp p.space s pred)) (Bdd.fls m) p.statements

let stable p pred = Pred.holds_implies p.space (sp_pred p pred) pred

let sst p pred =
  let m = Space.manager p.space in
  let pred = Pred.normalize p.space pred in
  let rec go x =
    let x' = Bdd.or_ m pred (Bdd.or_ m x (sp_pred p x)) in
    if Bdd.equal x x' then x else go x'
  in
  go (Bdd.fls m)

let si p =
  match p.cached_si with
  | Some x -> x
  | None ->
      let x = sst p p.init in
      p.cached_si <- Some x;
      x

let invariant p pred = Pred.holds_implies p.space (si p) pred

let fixed_points p =
  let m = Space.manager p.space in
  List.fold_left
    (fun acc s -> Bdd.and_ m acc (Stmt.unchanged p.space s))
    (Space.domain p.space) p.statements

let union ?name:(uname = "") f g =
  if not (f.space == g.space) then
    ill_formed "union: %s and %s live in different spaces" f.name g.name;
  let m = Space.manager f.space in
  let name = if uname = "" then f.name ^ "∥" ^ g.name else uname in
  make_with_init_pred f.space ~name
    ~init:(Bdd.and_ m f.init g.init)
    ~processes:(f.processes @ g.processes)
    (f.statements @ g.statements)

let pp fmt p =
  Format.fprintf fmt "@[<v 2>program %s@," p.name;
  if p.processes <> [] then begin
    Format.fprintf fmt "processes ";
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
      Process.pp fmt p.processes;
    Format.fprintf fmt "@,"
  end;
  Format.fprintf fmt "assign@,";
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,⫿ ")
    Stmt.pp fmt p.statements;
  Format.fprintf fmt "@]"
