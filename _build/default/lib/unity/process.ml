open Kpt_predicate

type t = { pname : string; pvars : Space.var list }

let make pname pvars = { pname; pvars }
let name p = p.pname
let vars p = p.pvars
let can_access p v = List.exists (fun u -> Space.idx u = Space.idx v) p.pvars

let pp fmt p =
  Format.fprintf fmt "@[<h>%s = {%s}@]" p.pname
    (String.concat ", " (List.map Space.name p.pvars))
