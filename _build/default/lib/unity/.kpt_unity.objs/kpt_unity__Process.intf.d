lib/unity/process.mli: Format Kpt_predicate Space
