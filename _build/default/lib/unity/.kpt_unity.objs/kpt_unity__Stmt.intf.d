lib/unity/stmt.mli: Bdd Expr Format Kpt_predicate Space
