lib/unity/stmt.ml: Array Bdd Bitvec Expr Format Hashtbl Kpt_predicate List Space
