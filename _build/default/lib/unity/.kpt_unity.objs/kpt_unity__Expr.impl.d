lib/unity/expr.ml: Array Bdd Bitvec Format Hashtbl Kpt_predicate List Space
