lib/unity/process.ml: Format Kpt_predicate List Space String
