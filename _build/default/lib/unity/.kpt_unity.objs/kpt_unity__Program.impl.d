lib/unity/program.ml: Array Bdd Expr Format Kpt_predicate List Pred Process Space Stmt
