lib/unity/program.ml: Bdd Expr Format Kpt_predicate List Pred Process Space Stmt
