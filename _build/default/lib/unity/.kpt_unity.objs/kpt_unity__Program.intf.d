lib/unity/program.mli: Bdd Expr Format Kpt_predicate Process Space Stmt
