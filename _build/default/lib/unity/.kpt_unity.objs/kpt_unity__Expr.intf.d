lib/unity/expr.mli: Bdd Bitvec Format Kpt_predicate Space
