open Kpt_predicate

type t =
  | Cbool of bool
  | Cint of int
  | Var of Space.var
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Add of t * t
  | Subsat of t * t
  | Ite of t * t * t

type ty = Tbool | Tnat

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* Variables of width 1 whose domain came from [bool_var] have card 2 and are
   printed true/false; we type every card-2 "bool" variable as Boolean iff it
   was declared Boolean.  Space does not expose the distinction, so we adopt
   the convention: value_name 0 = "false" exactly for Booleans. *)
let var_ty v = if Space.card v = 2 && Space.value_name v 0 = "false" then Tbool else Tnat

let rec typeof = function
  | Cbool _ -> Tbool
  | Cint n ->
      if n < 0 then type_error "negative natural constant %d" n;
      Tnat
  | Var v -> var_ty v
  | Not e -> expect Tbool e "¬"
  | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b) ->
      ignore (expect Tbool a "boolean operator");
      expect Tbool b "boolean operator"
  | Eq (a, b) ->
      let ta = typeof a and tb = typeof b in
      if ta <> tb then type_error "equality between different sorts";
      Tbool
  | Lt (a, b) | Le (a, b) ->
      ignore (expect Tnat a "comparison");
      ignore (expect Tnat b "comparison");
      Tbool
  | Add (a, b) | Subsat (a, b) ->
      ignore (expect Tnat a "arithmetic");
      expect Tnat b "arithmetic"
  | Ite (c, a, b) ->
      ignore (expect Tbool c "ite condition");
      let ta = typeof a and tb = typeof b in
      if ta <> tb then type_error "ite branches of different sorts";
      ta

and expect ty e what =
  let t = typeof e in
  if t <> ty then type_error "ill-typed operand of %s" what;
  t

let tru = Cbool true
let fls = Cbool false
let nat n = Cint n
let var v = Var v

let enum v label =
  let rec find k =
    if k >= Space.card v then raise Not_found
    else if Space.value_name v k = label then Cint k
    else find (k + 1)
  in
  find 0

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Imp (a, b)
let ( === ) a b = Eq (a, b)
let not_ a = Not a
let ( <<> ) a b = Not (Eq (a, b))
let ( <<< ) a b = Lt (a, b)
let ( <== ) a b = Le (a, b)
let ( >>> ) a b = Lt (b, a)
let ( >== ) a b = Le (b, a)
let ( +! ) a b = Add (a, b)
let ( -! ) a b = Subsat (a, b)
let conj = function [] -> tru | e :: es -> List.fold_left ( &&& ) e es
let disj = function [] -> fls | e :: es -> List.fold_left ( ||| ) e es

let select arr i =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Expr.select: empty array";
  let rec chain k =
    if k = n - 1 then Var arr.(k) else Ite (Eq (i, Cint k), Var arr.(k), chain (k + 1))
  in
  chain 0

let rec eval e env =
  match e with
  | Cbool b -> if b then 1 else 0
  | Cint n -> n
  | Var v -> env v
  | Not a -> 1 - eval a env
  | And (a, b) -> if eval a env = 1 && eval b env = 1 then 1 else 0
  | Or (a, b) -> if eval a env = 1 || eval b env = 1 then 1 else 0
  | Imp (a, b) -> if eval a env = 0 || eval b env = 1 then 1 else 0
  | Iff (a, b) -> if eval a env = eval b env then 1 else 0
  | Eq (a, b) -> if eval a env = eval b env then 1 else 0
  | Lt (a, b) -> if eval a env < eval b env then 1 else 0
  | Le (a, b) -> if eval a env <= eval b env then 1 else 0
  | Add (a, b) -> eval a env + eval b env
  | Subsat (a, b) -> max 0 (eval a env - eval b env)
  | Ite (c, a, b) -> if eval c env = 1 then eval a env else eval b env

let eval_bool e env = eval e env = 1

type sym = Sbool of Bdd.t | Sint of Bitvec.t

let as_bool = function Sbool b -> b | Sint _ -> type_error "expected a boolean"
let as_int = function Sint v -> v | Sbool _ -> type_error "expected a natural"

let rec compile sp e =
  let m = Space.manager sp in
  let b x = Sbool x and i x = Sint x in
  let cb x = as_bool (compile sp x) and ci x = as_int (compile sp x) in
  match e with
  | Cbool v -> b (if v then Bdd.tru m else Bdd.fls m)
  | Cint n ->
      let rec w k = if 1 lsl k > n then k else w (k + 1) in
      i (Bitvec.const m ~width:(max 1 (w 1)) n)
  | Var v -> if var_ty v = Tbool then b (Bitvec.eq_const m (Space.cur_vec sp v) 1) else i (Space.cur_vec sp v)
  | Not a -> b (Bdd.not_ m (cb a))
  | And (a, b') -> b (Bdd.and_ m (cb a) (cb b'))
  | Or (a, b') -> b (Bdd.or_ m (cb a) (cb b'))
  | Imp (a, b') -> b (Bdd.imp m (cb a) (cb b'))
  | Iff (a, b') -> b (Bdd.iff m (cb a) (cb b'))
  | Eq (a, b') -> (
      match (compile sp a, compile sp b') with
      | Sbool x, Sbool y -> b (Bdd.iff m x y)
      | Sint x, Sint y -> b (Bitvec.eq m x y)
      | _ -> type_error "equality between different sorts")
  | Lt (a, b') -> b (Bitvec.lt m (ci a) (ci b'))
  | Le (a, b') -> b (Bitvec.le m (ci a) (ci b'))
  | Add (a, b') -> i (Bitvec.add m (ci a) (ci b'))
  | Subsat (a, b') -> i (Bitvec.sub_sat m (ci a) (ci b'))
  | Ite (c, a, b') -> (
      match (compile sp a, compile sp b') with
      | Sbool x, Sbool y -> b (Bdd.ite m (cb c) x y)
      | Sint x, Sint y -> i (Bitvec.ite m (cb c) x y)
      | _ -> type_error "ite branches of different sorts")

let compile_bool sp e = as_bool (compile sp e)
let compile_int sp e = as_int (compile sp e)

let vars_of e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Cbool _ | Cint _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen (Space.idx v)) then begin
          Hashtbl.add seen (Space.idx v) ();
          acc := v :: !acc
        end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b)
    | Eq (a, b) | Lt (a, b) | Le (a, b) | Add (a, b) | Subsat (a, b) ->
        go a;
        go b
    | Ite (c, a, b) ->
        go c;
        go a;
        go b
  in
  go e;
  List.rev !acc

let rec pp fmt = function
  | Cbool b -> Format.pp_print_bool fmt b
  | Cint n -> Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt (Space.name v)
  | Not a -> Format.fprintf fmt "¬%a" pp_atom a
  | And (a, b) -> Format.fprintf fmt "%a ∧ %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf fmt "%a ∨ %a" pp_atom a pp_atom b
  | Imp (a, b) -> Format.fprintf fmt "%a ⇒ %a" pp_atom a pp_atom b
  | Iff (a, b) -> Format.fprintf fmt "%a ≡ %a" pp_atom a pp_atom b
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_atom a pp_atom b
  | Lt (a, b) -> Format.fprintf fmt "%a < %a" pp_atom a pp_atom b
  | Le (a, b) -> Format.fprintf fmt "%a ≤ %a" pp_atom a pp_atom b
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_atom a pp_atom b
  | Subsat (a, b) -> Format.fprintf fmt "%a ∸ %a" pp_atom a pp_atom b
  | Ite (c, a, b) -> Format.fprintf fmt "if %a then %a else %a" pp_atom c pp_atom a pp_atom b

and pp_atom fmt e =
  match e with
  | Cbool _ | Cint _ | Var _ | Not _ -> pp fmt e
  | _ -> Format.fprintf fmt "(%a)" pp e
