(** Typed expressions of the UNITY programming notation (§5).

    Two sorts: Booleans and naturals (bounded-nat and enum variables share
    the natural sort; an enum value is its index).  Every expression can be
    evaluated {e concretely} (against an integer valuation of the program
    variables — used by the unbounded simulator) and compiled
    {e symbolically} (to a BDD or symbolic bit-vector over a state space —
    used by [wp]/[sp] and all the fixpoints).  Arithmetic is natural:
    subtraction saturates at zero, addition never overflows symbolically
    (widths grow). *)

open Kpt_predicate

type t =
  | Cbool of bool
  | Cint of int
  | Var of Space.var
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | Add of t * t
  | Subsat of t * t (* saturating natural subtraction *)
  | Ite of t * t * t

type ty = Tbool | Tnat

exception Type_error of string

val typeof : t -> ty
(** Sort of a well-typed expression.  @raise Type_error otherwise. *)

(** {1 Smart constructors} *)

val tru : t
val fls : t
val nat : int -> t
val var : Space.var -> t

val enum : Space.var -> string -> t
(** The constant for an enum variable's named value.
    @raise Not_found if the label is not a value of the variable. *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
(** [===] is equality at either sort; [<<>] is disequality. *)

val ( === ) : t -> t -> t
val ( <<> ) : t -> t -> t
val ( <<< ) : t -> t -> t
val ( <== ) : t -> t -> t
val ( >>> ) : t -> t -> t
val ( >== ) : t -> t -> t
val ( +! ) : t -> t -> t
val ( -! ) : t -> t -> t
val not_ : t -> t
val conj : t list -> t
val disj : t list -> t

val select : Space.var array -> t -> t
(** [select arr i]: dynamic indexing of a sequence modelled as a family of
    element variables; compiles to a conditional chain.  Out-of-range
    indices yield element 0 (callers guard the range). *)

(** {1 Evaluation} *)

val eval : t -> (Space.var -> int) -> int
(** Concrete evaluation; Booleans are 0/1. *)

val eval_bool : t -> (Space.var -> int) -> bool

type sym = Sbool of Bdd.t | Sint of Bitvec.t

val compile : Space.t -> t -> sym
(** Symbolic compilation over the space's {e current} bits. *)

val compile_bool : Space.t -> t -> Bdd.t
(** @raise Type_error if the expression is not Boolean. *)

val compile_int : Space.t -> t -> Bitvec.t
(** @raise Type_error if the expression is not a natural. *)

val vars_of : t -> Space.var list
(** Variables occurring in the expression (no duplicates). *)

val pp : Format.formatter -> t -> unit
