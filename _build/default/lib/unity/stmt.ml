open Kpt_predicate

type guard = Gexpr of Expr.t | Gpred of Bdd.t

type t = { sname : string; guard : guard; assigns : (Space.var * Expr.t) list }

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let target_ty v = if Space.card v = 2 && Space.value_name v 0 = "false" then Expr.Tbool else Expr.Tnat

let make ~name ?(guard = Expr.tru) assigns =
  (match Expr.typeof guard with
  | Expr.Tbool -> ()
  | Expr.Tnat -> ill_formed "statement %s: guard is not boolean" name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, rhs) ->
      if Hashtbl.mem seen (Space.idx v) then
        ill_formed "statement %s: duplicate target %s" name (Space.name v);
      Hashtbl.add seen (Space.idx v) ();
      if Expr.typeof rhs <> target_ty v then
        ill_formed "statement %s: sort mismatch assigning to %s" name (Space.name v))
    assigns;
  { sname = name; guard = Gexpr guard; assigns }

let with_guard_pred s p = { s with guard = Gpred p }

let array_write arr ~index rhs =
  Array.to_list
    (Array.mapi
       (fun k elem -> (elem, Expr.Ite (Expr.Eq (index, Expr.Cint k), rhs, Expr.Var elem)))
       arr)

let name s = s.sname

let guard_pred sp s =
  match s.guard with Gexpr e -> Expr.compile_bool sp e | Gpred p -> p

let assigned_vars s = List.map fst s.assigns

(* Right-hand side of v as a symbolic bit-vector (booleans become 1-bit). *)
let rhs_vec sp rhs =
  match Expr.compile sp rhs with
  | Expr.Sint vec -> vec
  | Expr.Sbool b -> Bitvec.of_bits [| b |]

let totality_violation sp s =
  let m = Space.manager sp in
  let g = guard_pred sp s in
  let bad =
    List.fold_left
      (fun acc (v, rhs) ->
        let vec = rhs_vec sp rhs in
        let bound =
          Bitvec.const m
            ~width:(max (Bitvec.width vec) (Space.width v))
            (Space.card v - 1)
        in
        let over = Bdd.not_ m (Bitvec.le m vec bound) in
        Bdd.or_ m acc over)
      (Bdd.fls m) s.assigns
  in
  Bdd.conj m [ Space.domain sp; g; bad ]

let identity sp =
  let m = Space.manager sp in
  List.fold_left
    (fun acc v -> Bdd.and_ m acc (Bitvec.eq m (Space.next_vec sp v) (Space.cur_vec sp v)))
    (Bdd.tru m) (Space.vars sp)

let trans sp s =
  let m = Space.manager sp in
  let g = guard_pred sp s in
  let assigned = assigned_vars s in
  let is_assigned v = List.exists (fun u -> Space.idx u = Space.idx v) assigned in
  let update =
    List.fold_left
      (fun acc (v, rhs) ->
        Bdd.and_ m acc (Bitvec.eq m (Space.next_vec sp v) (rhs_vec sp rhs)))
      (Bdd.tru m) s.assigns
  in
  let frame =
    List.fold_left
      (fun acc v ->
        if is_assigned v then acc
        else Bdd.and_ m acc (Bitvec.eq m (Space.next_vec sp v) (Space.cur_vec sp v)))
      (Bdd.tru m) (Space.vars sp)
  in
  Bdd.or_ m
    (Bdd.conj m [ g; update; frame ])
    (Bdd.and_ m (Bdd.not_ m g) (identity sp))

let sp_post space s p =
  let m = Space.manager space in
  let cur = Space.all_current_bits space in
  let image = Bdd.and_exists m cur (Bdd.and_ m p (Space.domain space)) (trans space s) in
  Space.to_current space image

let sp = sp_post

let wp space s p =
  let m = Space.manager space in
  let nxt = Space.all_next_bits space in
  Bdd.forall m nxt (Bdd.imp m (trans space s) (Space.to_next space p))

let unchanged space s =
  let m = Space.manager space in
  let diag = Bdd.and_ m (trans space s) (identity space) in
  Bdd.exists m (Space.all_next_bits space) diag

let exec space s st =
  let env v = st.(Space.idx v) in
  let enabled =
    match s.guard with
    | Gexpr e -> Expr.eval_bool e env
    | Gpred p -> Space.holds_at space p st
  in
  let st' = Array.copy st in
  if enabled then
    List.iter
      (fun (v, rhs) ->
        let value = Expr.eval rhs env in
        if value < 0 || value >= Space.card v then
          ill_formed "statement %s drives %s out of range (%d)" s.sname (Space.name v) value;
        st'.(Space.idx v) <- value)
      s.assigns;
  st'

let pp fmt s =
  let pp_assign fmt (v, rhs) = Format.fprintf fmt "%s := %a" (Space.name v) Expr.pp rhs in
  Format.fprintf fmt "@[<hov 2>%s:@ %a" s.sname
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∥@ ") pp_assign)
    s.assigns;
  (match s.guard with
  | Gexpr (Expr.Cbool true) -> ()
  | Gexpr e -> Format.fprintf fmt "@ if %a" Expr.pp e
  | Gpred _ -> Format.fprintf fmt "@ if ⟨predicate⟩");
  Format.fprintf fmt "@]"
