open Kpt_predicate

type guard = Gexpr of Expr.t | Gpred of Bdd.t

(* Compiled-relation caches.  Each entry is keyed on the space it was
   compiled for (physical identity) so a statement reused against another
   space recompiles transparently.

   The [shared] part holds guard-independent data (the update ∧ frame
   relation and the range-overflow set of the assignments);
   [with_guard_pred] keeps it physically shared, so re-instantiating a
   knowledge-based protocol at a new candidate invariant — same
   assignments, new guard — reuses the compiled assignment relation
   across every Ĝ-iteration. *)
type shared_cache = {
  mutable s_update_frame : (Space.t * Bdd.t) option;
  mutable s_over : (Space.t * Bdd.t) option;
}

type cache = {
  shared : shared_cache;
  mutable c_guard : (Space.t * Bdd.t) option;
  mutable c_trans : (Space.t * Bdd.t) option;
}

type t = {
  sname : string;
  guard : guard;
  assigns : (Space.var * Expr.t) list;
  cache : cache;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let target_ty v = if Space.card v = 2 && Space.value_name v 0 = "false" then Expr.Tbool else Expr.Tnat

let fresh_cache () =
  { shared = { s_update_frame = None; s_over = None }; c_guard = None; c_trans = None }

let make ~name ?(guard = Expr.tru) assigns =
  (match Expr.typeof guard with
  | Expr.Tbool -> ()
  | Expr.Tnat -> ill_formed "statement %s: guard is not boolean" name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, rhs) ->
      if Hashtbl.mem seen (Space.idx v) then
        ill_formed "statement %s: duplicate target %s" name (Space.name v);
      Hashtbl.add seen (Space.idx v) ();
      if Expr.typeof rhs <> target_ty v then
        ill_formed "statement %s: sort mismatch assigning to %s" name (Space.name v))
    assigns;
  { sname = name; guard = Gexpr guard; assigns; cache = fresh_cache () }

(* Keep the guard-independent shared cache; drop the guard-dependent
   entries of the new statement. *)
let with_guard_pred s p =
  { s with guard = Gpred p; cache = { shared = s.cache.shared; c_guard = None; c_trans = None } }

let array_write arr ~index rhs =
  Array.to_list
    (Array.mapi
       (fun k elem -> (elem, Expr.Ite (Expr.Eq (index, Expr.Cint k), rhs, Expr.Var elem)))
       arr)

let name s = s.sname

let cached slot space compute store =
  match slot with
  | Some (sp', r) when sp' == space -> r
  | _ ->
      let r = compute () in
      store (Some (space, r));
      r

let guard_pred sp s =
  match s.guard with
  | Gpred p -> p
  | Gexpr e ->
      cached s.cache.c_guard sp
        (fun () -> Expr.compile_bool sp e)
        (fun v -> s.cache.c_guard <- v)

let assigned_vars s = List.map fst s.assigns

(* Right-hand side of v as a symbolic bit-vector (booleans become 1-bit). *)
let rhs_vec sp rhs =
  match Expr.compile sp rhs with
  | Expr.Sint vec -> vec
  | Expr.Sbool b -> Bitvec.of_bits [| b |]

(* Guard-independent overflow set: states where some right-hand side falls
   outside its target's range. *)
let over_pred sp s =
  cached s.cache.shared.s_over sp
    (fun () ->
      let m = Space.manager sp in
      Bdd.disj m
        (List.map
           (fun (v, rhs) ->
             let vec = rhs_vec sp rhs in
             let bound =
               Bitvec.const m
                 ~width:(max (Bitvec.width vec) (Space.width v))
                 (Space.card v - 1)
             in
             Bdd.not_ m (Bitvec.le m vec bound))
           s.assigns))
    (fun v -> s.cache.shared.s_over <- v)

let totality_violation sp s =
  let m = Space.manager sp in
  Bdd.conj m [ Space.domain sp; guard_pred sp s; over_pred sp s ]

let identity sp = Space.identity sp

(* Guard-independent part of the transition relation: the simultaneous
   update of the assigned variables conjoined with the frame equalities of
   the untouched ones. *)
let update_frame sp s =
  cached s.cache.shared.s_update_frame sp
    (fun () ->
      let m = Space.manager sp in
      let assigned = assigned_vars s in
      let is_assigned v = List.exists (fun u -> Space.idx u = Space.idx v) assigned in
      let update =
        List.map (fun (v, rhs) -> Bitvec.eq m (Space.next_vec sp v) (rhs_vec sp rhs)) s.assigns
      in
      let frame =
        List.filter_map
          (fun v ->
            if is_assigned v then None
            else Some (Bitvec.eq m (Space.next_vec sp v) (Space.cur_vec sp v)))
          (Space.vars sp)
      in
      Bdd.conj m (update @ frame))
    (fun v -> s.cache.shared.s_update_frame <- v)

let trans sp s =
  cached s.cache.c_trans sp
    (fun () ->
      let m = Space.manager sp in
      let g = guard_pred sp s in
      Bdd.or_ m
        (Bdd.and_ m g (update_frame sp s))
        (Bdd.and_ m (Bdd.not_ m g) (identity sp)))
    (fun v -> s.cache.c_trans <- v)

let sp_post space s p =
  let m = Space.manager space in
  let cur = Space.all_current_bits space in
  let image = Bdd.and_exists m cur (Bdd.and_ m p (Space.domain space)) (trans space s) in
  Space.to_current space image

let sp = sp_post

let wp space s p =
  let m = Space.manager space in
  let nxt = Space.all_next_bits space in
  Bdd.forall m nxt (Bdd.imp m (trans space s) (Space.to_next space p))

let unchanged space s =
  let m = Space.manager space in
  let diag = Bdd.and_ m (trans space s) (identity space) in
  Bdd.exists m (Space.all_next_bits space) diag

let exec space s st =
  let env v = st.(Space.idx v) in
  let enabled =
    match s.guard with
    | Gexpr e -> Expr.eval_bool e env
    | Gpred p -> Space.holds_at space p st
  in
  let st' = Array.copy st in
  if enabled then
    List.iter
      (fun (v, rhs) ->
        let value = Expr.eval rhs env in
        if value < 0 || value >= Space.card v then
          ill_formed "statement %s drives %s out of range (%d)" s.sname (Space.name v) value;
        st'.(Space.idx v) <- value)
      s.assigns;
  st'

let pp fmt s =
  let pp_assign fmt (v, rhs) = Format.fprintf fmt "%s := %a" (Space.name v) Expr.pp rhs in
  Format.fprintf fmt "@[<hov 2>%s:@ %a" s.sname
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∥@ ") pp_assign)
    s.assigns;
  (match s.guard with
  | Gexpr (Expr.Cbool true) -> ()
  | Gexpr e -> Format.fprintf fmt "@ if %a" Expr.pp e
  | Gpred _ -> Format.fprintf fmt "@ if ⟨predicate⟩");
  Format.fprintf fmt "@]"
