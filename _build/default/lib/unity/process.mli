(** Processes (§5): "since there is no flow of control, a process is
    determined by its address space.  Thus a process in our framework is
    simply a subset of program variables." *)

open Kpt_predicate

type t

val make : string -> Space.var list -> t
(** A named process that can access exactly the given variables. *)

val name : t -> string
val vars : t -> Space.var list
val can_access : t -> Space.var -> bool
val pp : Format.formatter -> t -> unit
