(** The a-priori-knowledge experiment (§6.4).

    "Suppose the value of the first element of x is known a priori.  The
    standard protocol above would still result in the value being sent
    and acknowledged, while a standard protocol consistent with the
    knowledge-based protocol would have the receiver deliver the value
    immediately, and the sender would begin with the second element,
    thus saving one message."

    We reproduce both halves:

    - {!instantiation_breaks}: with [x₀] pinned to a constant in the
      initial condition, the proposed predicate (50) is {e no longer the
      weakest} — the genuine [K_R(x₀ = c)] is true everywhere while (50)
      is not — so the standard protocol stops being an instantiation of
      the KBP even though it still satisfies the specification (the
      paper's footnote 3 on [HZar]'s Proposition 4.5).

    - {!message_counts}: simulation of the standard protocol vs. the
      knowledge-optimal protocol (receiver starts at [j = 1] with [w₀]
      delivered; sender starts at [i = 1]): the optimal variant
      transmits strictly fewer data messages — "saving one message"
      (one per retransmission of element 0 under duplication/loss). *)

open Kpt_predicate

type verdict = {
  cand_implies_k : bool;  (** (50) ⇒ K_R(x₀ = c): still sound *)
  k_implies_cand : bool;  (** K_R(x₀ = c) ⇒ (50): weakest-ness — breaks *)
  still_safe : bool;      (** the standard protocol still meets eq. 34 *)
  still_live : bool;      (** and eq. 35 (duplicating-only channel) *)
}

val instantiation_breaks : Seqtrans.params -> known_value:int -> verdict
(** Pin [x₀ = known_value] in the standard protocol's initial condition
    and compare (50) against the genuine knowledge predicate. *)

type counts = {
  steps_to_done : int;        (** scheduler steps until [j = n] *)
  data_transmissions : int;   (** executions of [snd_tx] *)
  ack_transmissions : int;    (** executions of [rcv_ack] *)
}

val run_standard : ?seed:int -> Seqtrans.params -> counts
(** Simulate the ordinary standard protocol (random-fair scheduler,
    duplicating-only channel) on a random sequence until done. *)

val run_optimal : ?seed:int -> Seqtrans.params -> counts
(** Same, but with [x₀] common knowledge: receiver starts with element 0
    delivered and the sender starts at element 1 — the KBP-consistent
    protocol of §6.4. *)

val pin_x0 : Seqtrans.standard -> int -> Kpt_unity.Program.t
(** The standard protocol's program with [x₀] pinned in [init] (helper
    exposed for the benchmarks). *)

val average_counts : (int -> counts) -> seeds:int -> float * float * float
(** Mean (steps, data transmissions, ack transmissions) over seeds. *)

val pp_counts : Format.formatter -> counts -> unit

val si_of : Kpt_unity.Program.t -> Bdd.t
(** Convenience re-export for the benches. *)
