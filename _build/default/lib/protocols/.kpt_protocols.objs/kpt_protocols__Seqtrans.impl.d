lib/protocols/seqtrans.ml: Array Bdd Channel Expr Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Space Stmt
