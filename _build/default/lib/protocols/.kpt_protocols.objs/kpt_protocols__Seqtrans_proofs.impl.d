lib/protocols/seqtrans_proofs.ml: Array Bdd Channel Expr Kpt_logic Kpt_predicate Kpt_unity List Pred Printf Program Proof Seqtrans Space
