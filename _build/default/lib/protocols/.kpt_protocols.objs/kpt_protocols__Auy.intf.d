lib/protocols/auy.mli: Bdd Kpt_predicate Kpt_unity Program Seqtrans Space
