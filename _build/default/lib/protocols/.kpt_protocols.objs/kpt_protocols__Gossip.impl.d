lib/protocols/gossip.ml: Array Bdd Expr Fun Kflow Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Space Stmt
