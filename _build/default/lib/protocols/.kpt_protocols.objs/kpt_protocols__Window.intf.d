lib/protocols/window.mli: Bdd Channel Kpt_predicate Kpt_unity Program Seqtrans Space
