lib/protocols/apriori.ml: Array Bdd Channel Expr Format Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Program Random Seqtrans Space Stdlib Stmt
