lib/protocols/seqtrans_proofs.mli: Kpt_logic Proof Seqtrans
