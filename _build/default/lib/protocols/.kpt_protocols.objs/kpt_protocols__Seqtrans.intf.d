lib/protocols/seqtrans.mli: Bdd Channel Kpt_predicate Kpt_unity Program Space
