lib/protocols/apriori.mli: Bdd Format Kpt_predicate Kpt_unity Seqtrans
