lib/protocols/channel.ml: Expr Kpt_predicate Kpt_unity List Space Stmt
