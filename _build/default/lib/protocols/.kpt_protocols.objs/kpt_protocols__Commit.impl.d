lib/protocols/commit.ml: Array Bdd Expr Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Space Stmt
