lib/protocols/commit.mli: Bdd Kpt_predicate Kpt_unity Program Space
