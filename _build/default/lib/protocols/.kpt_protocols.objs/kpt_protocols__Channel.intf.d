lib/protocols/channel.mli: Expr Kpt_predicate Kpt_unity Space Stmt
