lib/protocols/muddy.mli: Kpt_predicate Kpt_unity Program Space
