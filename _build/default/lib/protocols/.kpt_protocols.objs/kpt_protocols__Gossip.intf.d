lib/protocols/gossip.mli: Kpt_predicate Kpt_unity Program Space
