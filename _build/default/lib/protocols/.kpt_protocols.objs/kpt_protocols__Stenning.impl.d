lib/protocols/stenning.ml: Array Channel Expr Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Seqtrans Space Stmt
