lib/protocols/auy.ml: Array Expr Fun Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Seqtrans Space Stmt
