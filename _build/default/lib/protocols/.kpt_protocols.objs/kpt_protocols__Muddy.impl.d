lib/protocols/muddy.ml: Array Bdd Expr Fun Knowledge Kpt_core Kpt_logic Kpt_predicate Kpt_unity List Printf Process Program Space Stmt
