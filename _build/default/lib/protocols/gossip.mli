(** The gossip problem — knowledge propagation by pairwise calls, the
    setting of [CM86] ("How processes learn", cited in §7).

    Each of [n] agents starts knowing only its own secret bit; a call
    between two agents merges everything both have learnt.  Learning is
    represented operationally (per-agent value registers, [unknown] /
    [false] / [true]); the epistemic content is then {e derived}, not
    assumed:

    - a register is exactly knowledge: [v_{i,k} = t ⟺ K_i(s_k)] on
      reachable states (a third Prop-4.5-style "iff" in this library);
    - learning is monotone — no statement destroys [K_i(s_k)] (registers
      are history variables in §3's sense);
    - under fairness, everybody eventually learns everything
      ([true ↦ all registers resolved]);
    - yet even total mutual learning never yields {e common} knowledge:
      an agent's view says nothing about the other rows, so
      [E_G] holds while [E_G²] — a fortiori [C_G] — fails. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  n : int;
  secrets : Space.var array;
  registers : Space.var array array;  (** [registers.(i).(k)]: agent i's copy of secret k — 0 unknown, 1 false, 2 true *)
}

val make : agents:int -> t
(** @raise Invalid_argument unless [2 ≤ agents ≤ 3]. *)

val agent : int -> string

val registers_correct : t -> bool
(** invariant: a resolved register holds the actual secret value. *)

val register_is_knowledge : t -> i:int -> k:int -> bool
(** [v_{i,k} = t ⟺ K_i(s_k)] and [v_{i,k} = f ⟺ K_i(¬s_k)] on
    reachable states. *)

val learning_monotone : t -> bool
(** No statement ever destroys [K_i(s_k)], for any [i], [k]. *)

val everybody_learns : t -> bool
(** [true ↦ (∀ i k : v_{i,k} ≠ unknown)] under fairness. *)

val no_common_knowledge : t -> bool
(** Even at fully-resolved states, [C_G(s_0 value)] fails — and already
    [E_G E_G] does. *)
