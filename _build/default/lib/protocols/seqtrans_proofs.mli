(** Mechanised replay of the paper's §6 correctness proofs in the LCF
    kernel ({!Kpt_logic.Proof}).

    The liveness derivation (eqs. 39–49) is implemented once as a
    {e parametric chain} over an abstract context: predicate families for
    [K_R(x_k = α)], [K_S K_R x_k] and [K_S(j ≥ k)] plus the premise
    theorems Kbp-1..4 and the invariants (37), (38), (46), (48).  The
    chain is then instantiated twice, exactly as the paper intends:

    - on the {e knowledge-based protocol} (Figure 3, weaker
      interpretation), where the premises are proved from the program
      text — every rule application of §6.2 is replayed: conjunction
      with the stability assumptions instead of a direct [wp] (the
      paper's own remark under (40)), PSP with Kbp-1/Kbp-2, the
      invariant correspondences (46)/(48), the induction of (47), and
      the final disjunctions; and

    - on the {e standard protocol} (Figure 4), where the candidate
      predicates (50)–(52) replace the knowledge variables, stability
      (55)–(56) is proved from the text, and the channel obligations
      St-3/St-4 are either {e assumed} (lossy channel — the theorem then
      carries those assumptions, reproducing the paper's conditional
      correctness) or discharged by the finite-state decision procedure
      (duplicating-only channel).

    Safety (eq. 34) and the knowledge-discharge invariants (54), (61),
    (62) are derived by rule 32 with explicitly constructed inductive
    strengthenings (the paper's history-variable arguments, re-expressed
    over the capacity-1 channel state). *)

open Kpt_logic

val replay_abstract : Seqtrans.abstract -> (string * Proof.thm) list
(** All named theorems of the Figure-3 derivation, assumption-free:
    ["inv-y"], ["inv-37"], ["inv-38"], ["kr-sound(14)"],
    ["kskr-sound"], ["ksj-sound"], ["safety(34)"], ["Kbp-1"], ["Kbp-2"],
    ["Kbp-3"], ["Kbp-4"], ["(40)"], …, ["liveness(35)@k"] for each
    [k < n].  @raise Proof.Rule_violation if any step fails (it must
    not). *)

val replay_standard : assume_channel:bool -> Seqtrans.standard -> (string * Proof.thm) list
(** The Figure-4 derivation.  With [assume_channel:true] the St-3/St-4
    obligations are introduced with {!Proof.assume} and every liveness
    theorem lists them; with [false] they are discharged by
    {!Proof.leadsto_model_checked} (sound only when the instance really
    satisfies them, e.g. the duplicating-only channel). *)

val inv37_paper_style : Seqtrans.abstract -> Proof.thm
(** The paper's own proof of invariant (37), step for step: "j = k unless
    j = k+1 {from text}; K_Rx_k unless false {Kbp-3}; conjunction; j = k
    unless j = k ∧ K_Rx_k {from text}; cancellation; stable P.k {conj with
    Kbp-3}; conjunction; generalized disjunction" — closed with
    {!Proof.invariant_from_stable}.  Exercises exactly the metatheorems
    the paper's margin notes name. *)
