open Kpt_predicate
open Kpt_unity
open Kpt_core

type t = {
  prog : Program.t;
  space : Space.t;
  n : int;
  secrets : Space.var array;
  registers : Space.var array array;
}

let agent i = Printf.sprintf "A%d" i

let make ~agents =
  if agents < 2 || agents > 3 then invalid_arg "Gossip.make: 2 ≤ agents ≤ 3";
  let n = agents in
  let sp = Space.create () in
  let secrets = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "s%d" i)) in
  let registers =
    Array.init n (fun i ->
        Array.init n (fun k ->
            Space.enum_var sp
              (Printf.sprintf "v%d_%d" i k)
              ~values:[| "unknown"; "no"; "yes" |]))
  in
  let open Expr in
  (* a call merges both rows: an unresolved register adopts the peer's *)
  let call i j =
    let merge a b = (* a := if a = unknown then b else a *)
      (a, Ite (var a === nat 0, var b, var a))
    in
    Stmt.make
      ~name:(Printf.sprintf "call%d%d" i j)
      (List.concat
         (List.init n (fun k ->
              [ merge registers.(i).(k) registers.(j).(k);
                merge registers.(j).(k) registers.(i).(k) ])))
  in
  let calls =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j -> if j > i then Some (call i j) else None)
             (List.init n Fun.id)))
  in
  let init =
    conj
      (List.concat
         (List.init n (fun i ->
              List.init n (fun k ->
                  if i = k then var registers.(i).(k) === Ite (var secrets.(k), nat 2, nat 1)
                  else var registers.(i).(k) === nat 0))))
  in
  let processes =
    List.init n (fun i -> Process.make (agent i) (Array.to_list registers.(i)))
  in
  let prog = Program.make sp ~name:(Printf.sprintf "gossip%d" n) ~init ~processes calls in
  { prog; space = sp; n; secrets; registers }

let bp t e = Expr.compile_bool t.space e

let registers_correct t =
  let open Expr in
  Program.invariant t.prog
    (bp t
       (conj
          (List.concat
             (List.init t.n (fun i ->
                  List.init t.n (fun k ->
                      ((var t.registers.(i).(k) === nat 2) ==> var t.secrets.(k))
                      &&& ((var t.registers.(i).(k) === nat 1) ==> not_ (var t.secrets.(k)))))))))

let register_is_knowledge t ~i ~k =
  let m = Space.manager t.space in
  let si = Program.si t.prog in
  let sk = bp t (Expr.var t.secrets.(k)) in
  let k_yes = Knowledge.knows_in t.prog (agent i) sk in
  let k_no = Knowledge.knows_in t.prog (agent i) (Bdd.not_ m sk) in
  let reg v = bp t Expr.(var t.registers.(i).(k) === nat v) in
  Bdd.is_true (Bdd.imp m si (Bdd.iff m (reg 2) k_yes))
  && Bdd.is_true (Bdd.imp m si (Bdd.iff m (reg 1) k_no))

let learning_monotone t =
  List.for_all
    (fun i ->
      List.for_all
        (fun k ->
          Kflow.knowledge_stable t.prog (agent i) (bp t (Expr.var t.secrets.(k))))
        (List.init t.n Fun.id))
    (List.init t.n Fun.id)

let all_resolved t =
  bp t
    (Expr.conj
       (List.concat
          (List.init t.n (fun i ->
               List.init t.n (fun k -> Expr.(var t.registers.(i).(k) <<> nat 0))))))

let everybody_learns t =
  Kpt_logic.Props.leads_to t.prog (Bdd.tru (Space.manager t.space)) (all_resolved t)

let no_common_knowledge t =
  let m = Space.manager t.space in
  let si = Program.si t.prog in
  let group = List.init t.n (fun i -> Program.find_process t.prog (agent i)) in
  let s0 = bp t (Expr.var t.secrets.(0)) in
  let resolved = Bdd.and_ m si (all_resolved t) in
  let e1 = Knowledge.everyone_knows t.space ~si group s0 in
  let e2 = Knowledge.everyone_knows t.space ~si group e1 in
  let c = Knowledge.common_knowledge t.space ~si group s0 in
  (* at fully-resolved states where s0 is true: everyone knows it… *)
  let s0_states = Bdd.and_ m resolved s0 in
  Bdd.implies m s0_states e1
  (* …but E² already fails everywhere there, hence C too *)
  && Bdd.is_false (Bdd.and_ m s0_states e2)
  && Bdd.is_false (Bdd.and_ m s0_states c)
