(** Two-phase commit through the knowledge lens — a second protocol case
    study in the spirit of §6: guards of a sensible standard protocol turn
    out to be {e exactly} knowledge predicates.

    A coordinator asks [n] participants to vote on a transaction; each
    responds yes/no according to its (fixed, private) vote; the
    coordinator commits iff every response is yes, aborts on any no;
    participants then adopt the decision.

    Knowledge content, all machine-checked:
    - the commit guard ("all responses are yes") is {e equal} to
      [K_C(⋀ votes)] on reachable states — the coordinator commits exactly
      when it knows unanimity (a Prop-4.5-style "iff");
    - before any message flows, the {e group} already possesses the
      outcome distributively ([D_G(⋀votes)] ≡ [⋀votes]) while no
      individual knows it — communication converts distributed knowledge
      into individual knowledge;
    - a participant that adopted a commit {e knows the other
      participants' votes} although it never saw them: the decision
      register carries that knowledge. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  n : int;
  votes : Space.var array;      (** participant votes, fixed by init *)
  responses : Space.var array;  (** 0 = none, 1 = yes, 2 = no *)
  req : Space.var;              (** the coordinator's request broadcast *)
  decision : Space.var;         (** 0 = none, 1 = commit, 2 = abort *)
  adopted : Space.var array;    (** participant copies of the decision *)
}

val make : ?crashes:bool -> participants:int -> unit -> t
(** With [crashes] (default false), every participant gets an environment
    crash statement that permanently silences it — the [DM90] crash-failure
    setting.  @raise Invalid_argument unless [2 ≤ participants ≤ 3]. *)

val coordinator : string
val participant : int -> string

val unanimity : t -> Bdd.t
(** [⋀ votes]. *)

val commit_guard : t -> Bdd.t
(** "every response is yes" — the standard protocol's guard. *)

val safety_holds : t -> bool
(** commit ⇒ unanimity, abort ⇒ some no, adopted decisions match. *)

val decision_live : t -> bool
(** [true ↦ decision ≠ none]. *)

val guard_is_knowledge : t -> bool
(** [commit_guard ≡ K_C(unanimity)] on reachable states. *)

val distributed_but_not_individual : t -> bool
(** At initial states: [D_G(unanimity) ≡ unanimity] while no process
    (coordinator or participant alone, seeing only its own vote)
    individually knows it when [n ≥ 2]. *)

val adoption_teaches : t -> i:int -> bool
(** invariant: participant [i] having adopted a commit knows every other
    participant's vote. *)

val crashed : t -> int -> Space.var
(** The crash flag of participant [i] (only on a [~crashes:true] build).
    @raise Not_found otherwise. *)

val blocking_witness : t -> Space.state option
(** The classical 2PC blocking scenario, as a state from which some fair
    execution stays undecided forever (a crashed participant that never
    voted).  [None] on crash-free builds — there liveness holds. *)
