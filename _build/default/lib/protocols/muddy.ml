open Kpt_predicate
open Kpt_unity
open Kpt_core

type t = {
  prog : Program.t;
  space : Space.t;
  children : int;
  muddy : Space.var array;
  declared : Space.var array;
  latched : Space.var array;
  phase : Space.var;
  round : Space.var;
}

let make ~children =
  if children < 2 || children > 4 then
    invalid_arg "Muddy.make: 2 ≤ children ≤ 4";
  let n = children in
  let sp = Space.create () in
  let muddy = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "muddy%d" i)) in
  let declared = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "declared%d" i)) in
  let latched = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "latched%d" i)) in
  let phase = Space.nat_var sp "phase" ~max:n in
  let round = Space.nat_var sp "round" ~max:n in
  let open Expr in
  (* the number of muddy foreheads child i can see *)
  let seen i =
    let others = List.filter (fun j -> j <> i) (List.init n Fun.id) in
    List.fold_left
      (fun acc j -> acc +! Ite (var muddy.(j), nat 1, nat 0))
      (nat 0) others
  in
  let nobody_declared_before = conj (List.init n (fun j -> not_ (var latched.(j)))) in
  (* the standard rule: declare in round r iff you can see exactly r muddy
     children and the earlier rounds were silent *)
  let rule i = (seen i === var round) &&& nobody_declared_before in
  let step i =
    Stmt.make
      ~name:(Printf.sprintf "child%d" i)
      ~guard:(var phase === nat i)
      [ (declared.(i), var declared.(i) ||| rule i); (phase, nat (i + 1)) ]
  in
  let next_round =
    Stmt.make ~name:"round_ends"
      ~guard:((var phase === nat n) &&& (var round <<< nat n))
      ([ (round, var round +! nat 1); (phase, nat 0) ]
      @ List.init n (fun j -> (latched.(j), var declared.(j))))
  in
  let init =
    conj
      (disj (List.init n (fun i -> var muddy.(i)))  (* father's announcement *)
      :: (var phase === nat 0)
      :: (var round === nat 0)
      :: List.init n (fun i -> not_ (var declared.(i)))
      @ List.init n (fun i -> not_ (var latched.(i))))
  in
  let everyone_elses i =
    List.filteri (fun j _ -> j <> i) (Array.to_list muddy)
  in
  let processes =
    List.init n (fun i ->
        Process.make
          (Printf.sprintf "C%d" i)
          (everyone_elses i @ Array.to_list declared @ Array.to_list latched
          @ [ phase; round ]))
  in
  let prog =
    Program.make sp ~name:(Printf.sprintf "muddy%d" n) ~init ~processes
      (List.init n step @ [ next_round ])
  in
  { prog; space = sp; children = n; muddy; declared; latched; phase; round }

let bp t e = Expr.compile_bool t.space e
let k t i p = Knowledge.knows_in t.prog (Printf.sprintf "C%d" i) p

let epistemically_sound t =
  let m = Space.manager t.space in
  List.for_all
    (fun i ->
      Program.invariant t.prog
        (Bdd.imp m (bp t (Expr.var t.declared.(i))) (k t i (bp t (Expr.var t.muddy.(i))))))
    (List.init t.children Fun.id)

let truthful t =
  let m = Space.manager t.space in
  List.for_all
    (fun i ->
      Program.invariant t.prog
        (Bdd.imp m (bp t (Expr.var t.declared.(i))) (bp t (Expr.var t.muddy.(i)))))
    (List.init t.children Fun.id)

let all_muddy_eventually_declare t =
  List.for_all
    (fun i ->
      Kpt_logic.Props.leads_to t.prog
        (bp t (Expr.var t.muddy.(i)))
        (bp t (Expr.var t.declared.(i))))
    (List.init t.children Fun.id)

let clean_never_declare t =
  let m = Space.manager t.space in
  List.for_all
    (fun i ->
      Program.invariant t.prog
        (Bdd.imp m
           (Bdd.not_ m (bp t (Expr.var t.muddy.(i))))
           (Bdd.not_ m (bp t (Expr.var t.declared.(i))))))
    (List.init t.children Fun.id)

let silence_teaches t ~child =
  let m = Space.manager t.space in
  let open Expr in
  let all_muddy = conj (List.init t.children (fun i -> var t.muddy.(i))) in
  let silent_late =
    all_muddy
    &&& (var t.round >== nat (t.children - 1))
    &&& conj (List.init t.children (fun i -> not_ (var t.declared.(i))))
  in
  Bdd.implies m
    (Bdd.and_ m (Program.si t.prog) (bp t silent_late))
    (k t child (bp t (var t.muddy.(child))))

let ignorance_before t ~child =
  let m = Space.manager t.space in
  let open Expr in
  let early =
    conj (List.init t.children (fun i -> var t.muddy.(i)))
    &&& (var t.round === nat 0) &&& (var t.phase === nat 0)
  in
  Bdd.is_false
    (Bdd.conj m [ Program.si t.prog; bp t early; k t child (bp t (var t.muddy.(child))) ])
