open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  bits_per_element : int;
  xs : Space.var array;
  ws : Space.var array;
  i : Space.var;
  j : Space.var;
  bit : Space.var;
  wire : Space.var;
  turn : Space.var;
  acc : Space.var;
}

let log2_exact a =
  let rec go b v = if v = a then Some b else if v > a then None else go (b + 1) (v * 2) in
  go 0 1

let make ({ Seqtrans.n; a } as params) =
  if n < 2 then invalid_arg "Auy.make: need n ≥ 2";
  let bpe =
    match log2_exact a with
    | Some b when b >= 1 -> b
    | _ -> invalid_arg "Auy.make: alphabet size must be a power of two ≥ 2"
  in
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let i = Space.nat_var sp "i" ~max:(n - 1) in
  let sbit = Space.nat_var sp "sbit" ~max:(bpe - 1) in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  let bit = Space.nat_var sp "bit" ~max:(bpe - 1) in
  let acc = Space.nat_var sp "acc" ~max:(a - 1) in
  let wire = Space.nat_var sp "wire" ~max:1 in
  let turn = Space.nat_var sp "turn" ~max:1 in
  let open Expr in
  (* bit p of the current element: a disjunction over alphabet values *)
  let bit_of_current p =
    let cur = select xs (var i) in
    let values_with_bit = List.filter (fun v -> (v lsr p) land 1 = 1) (List.init a Fun.id) in
    Ite (disj (List.map (fun v -> cur === nat v) values_with_bit), nat 1, nat 0)
  in
  let snd_stmt p =
    let advance =
      if p = bpe - 1 then
        [ (sbit, nat 0); (i, Ite (var i <<< nat (n - 1), var i +! nat 1, var i)) ]
      else [ (sbit, nat (p + 1)) ]
    in
    Stmt.make
      ~name:(Printf.sprintf "snd_bit%d" p)
      ~guard:((var turn === nat 0) &&& (var sbit === nat p))
      ([ (wire, bit_of_current p); (turn, nat 1) ] @ advance)
  in
  let contribution p = Ite (var wire === nat 1, nat (1 lsl p), nat 0) in
  let rcv_stmt p =
    if p = bpe - 1 then
      Stmt.make
        ~name:(Printf.sprintf "rcv_bit%d" p)
        ~guard:
          (conj
             [
               var turn === nat 1;
               var bit === nat p;
               var acc <<< nat (1 lsl p);
               var j <<< nat n;
             ])
        (Stmt.array_write ws ~index:(var j) (var acc +! contribution p)
        @ [ (j, var j +! nat 1); (acc, nat 0); (bit, nat 0); (turn, nat 0) ])
    else
      Stmt.make
        ~name:(Printf.sprintf "rcv_bit%d" p)
        ~guard:
          (conj
             [ var turn === nat 1; var bit === nat p; var acc <<< nat (1 lsl p) ])
        [ (acc, var acc +! contribution p); (bit, nat (p + 1)); (turn, nat 0) ]
  in
  let init =
    conj
      ([
         var i === nat 0;
         var sbit === nat 0;
         var j === nat 0;
         var bit === nat 0;
         var acc === nat 0;
         var wire === nat 0;
         var turn === nat 0;
       ]
      @ List.init n (fun k -> var ws.(k) === nat 0))
  in
  let sender = Process.make "Sender" (Array.to_list xs @ [ i; sbit ]) in
  let receiver = Process.make "Receiver" (Array.to_list ws @ [ j; bit; acc ]) in
  let prog =
    Program.make sp ~name:"auy" ~init
      ~processes:[ sender; receiver ]
      (List.init bpe snd_stmt @ List.init bpe rcv_stmt)
  in
  { prog; space = sp; params; bits_per_element = bpe; xs; ws; i; j; bit; wire; turn; acc }

let safety t =
  let { Seqtrans.n; _ } = t.params in
  Expr.compile_bool t.space
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var t.j >>> nat k) ==> (var t.ws.(k) === var t.xs.(k))))))

let liveness_holds t ~k =
  Kpt_logic.Props.leads_to t.prog
    (Expr.compile_bool t.space Expr.(var t.j === nat k))
    (Expr.compile_bool t.space Expr.(var t.j >>> nat k))

let messages_per_element t = t.bits_per_element
