open Kpt_predicate
open Kpt_unity
open Kpt_logic

(* ======================================================================== *)
(* The parametric liveness chain: eqs. (39)-(49) of §6.2, instantiable on
   the knowledge-based protocol (knowledge variables) and on the standard
   protocol (candidate predicates 50-52).                                   *)
(* ======================================================================== *)

type chain_ctx = {
  cprog : Program.t;
  cspace : Space.t;
  cn : int;
  ca : int;
  cjeq : int -> Bdd.t;
  cjgt : int -> Bdd.t;
  cieq : int -> Bdd.t;
  cigt : int -> Bdd.t;
  cyeq : int -> Bdd.t;
  ckr : int -> int -> Bdd.t;   (* K_R(x_k = α) *)
  ckrx : int -> Bdd.t;         (* K_R x_k *)
  ckskr : int -> Bdd.t;        (* K_S K_R x_k *)
  cksj : int -> Bdd.t;         (* K_S (j ≥ k) *)
  ckbp1 : int -> int -> Proof.thm;  (* Kbp-1 / St-3 as ↦ *)
  ckbp2 : int -> Proof.thm;         (* Kbp-2 / (53) as ↦ *)
  ckbp3 : int -> int -> Proof.thm;  (* Kbp-3 / (56): stable K_R(x_k=α) *)
  cinv46 : int -> Proof.thm;        (* invariant K_S(j≥k) ⇒ ⋀l<k K_SK_Rx_l *)
  cinv48 : int -> Proof.thm;        (* invariant (i>k ∨ (i=k ∧ K_SK_Rx_k)) ⇒ K_Rx_k *)
  ckskr_sound : Proof.thm;          (* invariant ⋀k (K_SK_Rx_k ⇒ K_Rx_k) *)
}

let man ctx = Space.manager ctx.cspace
let ige ctx k = Bdd.or_ (man ctx) (ctx.cigt k) (ctx.cieq k)

(* Kbp-1's antecedent: i = k ∧ y = α ∧ ¬K_S K_R x_k. *)
let ante1 ctx k alpha =
  let m = man ctx in
  Bdd.conj m [ ctx.cieq k; ctx.cyeq alpha; Bdd.not_ m (ctx.ckskr k) ]

(* Kbp-2's antecedent: j = k ∧ ¬K_R x_k. *)
let ante2 ctx k =
  let m = man ctx in
  Bdd.and_ m (ctx.cjeq k) (Bdd.not_ m (ctx.ckrx k))

(* (40): j = k ∧ K_R x_k ↦ j > k.  Per α: conjoin "j = k unless j > k"
   (text) with the stability of K_R(x_k = α) — the paper's remark under
   (40): the metatheorem route, because at the KBP level wp of the
   knowledge guard is not computable — then introduce the ensures via the
   receiver's write statement, rule 29, and disjunction over α. *)
let theorem40 ctx k =
  let m = man ctx in
  let per_alpha alpha =
    let u1 = Proof.unless_text ctx.cprog (ctx.cjeq k) (ctx.cjgt k) in
    let conj = Proof.conj_unless_simple u1 (ctx.ckbp3 k alpha) in
    Proof.ensures_leadsto (Proof.ensures_intro conj)
  in
  ignore m;
  Proof.leadsto_disj (List.init ctx.ca per_alpha)

(* (42): j = k ∧ ¬K_R x_k unless j = k ∧ K_R x_k — from text. *)
let theorem42 ctx k =
  let m = man ctx in
  Proof.unless_text ctx.cprog (ante2 ctx k) (Bdd.and_ m (ctx.cjeq k) (ctx.ckrx k))

(* (43): j = k ∧ ¬K_R x_k ↦ K_S(j ≥ k) ∨ K_R x_k — PSP on Kbp-2 and (42),
   simplify and weaken the right-hand side. *)
let theorem43 ctx k =
  let m = man ctx in
  let p = Proof.psp (ctx.ckbp2 k) (theorem42 ctx k) in
  Proof.weaken_leadsto p (Bdd.or_ m (ctx.cksj k) (ctx.ckrx k))

(* (47): (∀l < k : K_S K_R x_l) ↦ i ≥ k — induction on the sender index
   (the paper's {induction} step), each premise an ensures from the text
   via snd_adv. *)
let theorem47 ctx k =
  let m = man ctx in
  let bigb = Bdd.conj m (List.init k ctx.ckskr) in
  if k = 0 then Proof.leadsto_implication ctx.cprog bigb (ige ctx 0)
  else begin
    let metric t = Bdd.and_ m (ctx.cieq (k - 1 - t)) bigb in
    let q = ige ctx k in
    let below t = Bdd.disj m (List.init t metric) in
    let premise t =
      let mt = k - 1 - t in
      let e =
        Proof.ensures_text ctx.cprog (metric t) (Bdd.and_ m (ctx.cieq (mt + 1)) bigb)
      in
      Proof.weaken_leadsto (Proof.ensures_leadsto e) (Bdd.or_ m (below t) q)
    in
    let low = Proof.leadsto_induction premise ~metric ~bound:(k - 1) ~q in
    let high = Proof.leadsto_implication ctx.cprog (Bdd.and_ m q bigb) q in
    Proof.leadsto_disj [ low; high ]
  end

(* (44): K_S(j ≥ k) ↦ i ≥ k — leads-to implication on (46), transitivity
   with (47). *)
let theorem44 ctx k =
  let m = man ctx in
  let bigb = Bdd.conj m (List.init k ctx.ckskr) in
  let l46 = Proof.leadsto_implication ~using:(ctx.cinv46 k) ctx.cprog (ctx.cksj k) bigb in
  Proof.leadsto_trans l46 (theorem47 ctx k)

(* (49): i = k ∧ ¬K_S K_R x_k ↦ K_R x_k — unless from text, PSP with
   Kbp-1, rewrite under "K_S K_R x_k ⇒ K_R x_k" (the (14)-instance the
   paper invokes), weaken, and disjunction over α (rule 31). *)
let theorem49 ctx k =
  let m = man ctx in
  let per_alpha alpha =
    let a1 = ante1 ctx k alpha in
    let u = Proof.unless_text ctx.cprog a1 (ctx.ckskr k) in
    let p1 = Proof.psp (ctx.ckbp1 k alpha) u in
    (* p1's consequent is (K_R(x_k=α) ∨ ¬a1) ∧ a1 ∨ K_SK_Rx_k; rewrite the
       bare K_SK_Rx_k disjunct under the soundness invariant, then weaken
       to K_R x_k. *)
    let q' =
      Bdd.or_ m
        (Bdd.and_ m (ctx.ckr k alpha) a1)
        (Bdd.and_ m (ctx.ckskr k) (ctx.ckrx k))
    in
    let p2 = Proof.substitution ctx.ckskr_sound p1 (Proof.Leadsto (Bdd.and_ m a1 a1, q')) in
    Proof.weaken_leadsto p2 (ctx.ckrx k)
  in
  Proof.leadsto_disj (List.init ctx.ca per_alpha)

(* (45): i ≥ k ↦ K_R x_k — leads-to implication on (48), disjunction with
   (49). *)
let theorem45 ctx k =
  let m = man ctx in
  let lhs48 = Bdd.or_ m (ctx.cigt k) (Bdd.and_ m (ctx.cieq k) (ctx.ckskr k)) in
  let l1 = Proof.leadsto_implication ~using:(ctx.cinv48 k) ctx.cprog lhs48 (ctx.ckrx k) in
  Proof.leadsto_disj [ l1; theorem49 ctx k ]

(* (41): j = k ∧ ¬K_R x_k ↦ j = k ∧ K_R x_k — transitivity on (44),(45),
   disjunction with K_R x_k ↦ K_R x_k, transitivity with (43), PSP with
   (42). *)
let theorem41 ctx k =
  let t4445 = Proof.leadsto_trans (theorem44 ctx k) (theorem45 ctx k) in
  let refl = Proof.leadsto_implication ctx.cprog (ctx.ckrx k) (ctx.ckrx k) in
  let c = Proof.leadsto_disj [ t4445; refl ] in
  let d = Proof.leadsto_trans (theorem43 ctx k) c in
  Proof.psp d (theorem42 ctx k)

(* (39) = (35) instance: j = k ↦ j > k — (40), (41), transitivity and
   disjunction. *)
let theorem39 ctx k =
  let via_learning = Proof.leadsto_trans (theorem41 ctx k) (theorem40 ctx k) in
  Proof.leadsto_disj [ theorem40 ctx k; via_learning ]

(* ======================================================================== *)
(* Instantiation on the knowledge-based protocol (Figure 3).                *)
(* ======================================================================== *)

let replay_abstract (st : Seqtrans.abstract) =
  let open Seqtrans in
  let { n; a } = st.aparams in
  let prog = st.aprog in
  let sp = st.aspace in
  let m = Space.manager sp in
  let e ex = Expr.compile_bool sp ex in
  let kr k alpha = a_kr st ~k ~alpha in
  let krx k = a_krx st ~k in
  let kskr k = a_kskr st ~k in
  let ksj k = a_ksj st ~k in
  (* --- invariants, rule 32 --------------------------------------------- *)
  let inv_y =
    Proof.invariant_text prog
      (e (Expr.disj
            (List.init n (fun k ->
                 Expr.((var st.ai === nat k) &&& (var st.ay === var st.axs.(k)))))))
  in
  let inv37 =
    Proof.invariant_text prog
      (Bdd.conj m (List.init n (fun l -> Bdd.imp m (a_j_gt st l) (krx l))))
  in
  let inv38 =
    Proof.invariant_text prog
      (Bdd.conj m (List.init (n - 1) (fun l -> Bdd.imp m (a_i_gt st l) (kskr l))))
  in
  let kr_sound =
    Proof.invariant_text ~using:inv_y prog
      (Bdd.conj m
         (List.concat
            (List.init n (fun k ->
                 List.init a (fun alpha ->
                     Bdd.imp m (kr k alpha)
                       (e Expr.(var st.axs.(k) === nat alpha)))))))
  in
  let kskr_sound =
    Proof.invariant_text ~using:inv37 prog
      (Bdd.conj m (List.init n (fun k -> Bdd.imp m (kskr k) (krx k))))
  in
  let ksj_sound =
    Proof.invariant_text prog
      (Bdd.conj m
         (List.init (n + 1) (fun k ->
              Bdd.imp m (ksj k) (e Expr.(var st.aj >== nat k)))))
  in
  let safety =
    Proof.invariant_text ~using:kr_sound prog (a_spec_safety st)
  in
  let inv46 k =
    Proof.invariant_text prog
      (Bdd.imp m (ksj k) (Bdd.conj m (List.init k kskr)))
  in
  let inv48 k =
    let lhs = Bdd.or_ m (a_i_gt st k) (Bdd.and_ m (a_i_eq st k) (kskr k)) in
    Proof.invariant_text
      ~using:(Proof.conj_invariant [ inv37; inv38; kskr_sound ])
      prog
      (Bdd.imp m lhs (krx k))
  in
  (* --- channel / stability premises, from the text ---------------------- *)
  let kbp1 k alpha =
    let a1 =
      Bdd.conj m [ a_i_eq st k; a_y_eq st alpha; Bdd.not_ m (kskr k) ]
    in
    Proof.ensures_leadsto
      (Proof.ensures_text prog a1 (Bdd.or_ m (kr k alpha) (Bdd.not_ m a1)))
  in
  let kbp2 k =
    let a2 = Bdd.and_ m (a_j_eq st k) (Bdd.not_ m (krx k)) in
    Proof.ensures_leadsto
      (Proof.ensures_text prog a2 (Bdd.or_ m (ksj k) (Bdd.not_ m a2)))
  in
  let kbp3 k alpha = Proof.stable_text prog (kr k alpha) in
  let kbp4 k = Proof.stable_text prog (kskr k) in
  let ctx =
    {
      cprog = prog;
      cspace = sp;
      cn = n;
      ca = a;
      cjeq = a_j_eq st;
      cjgt = a_j_gt st;
      cieq = a_i_eq st;
      cigt = a_i_gt st;
      cyeq = (fun alpha -> a_y_eq st alpha);
      ckr = kr;
      ckrx = krx;
      ckskr = kskr;
      cksj = ksj;
      ckbp1 = kbp1;
      ckbp2 = kbp2;
      ckbp3 = kbp3;
      cinv46 = inv46;
      cinv48 = inv48;
      ckskr_sound = kskr_sound;
    }
  in
  [
    ("inv-y", inv_y);
    ("inv-37", inv37);
    ("inv-38", inv38);
    ("kr-sound(14)", kr_sound);
    ("kskr-sound", kskr_sound);
    ("ksj-sound", ksj_sound);
    ("safety(34)", safety);
    ("Kbp-1@0,0", kbp1 0 0);
    ("Kbp-2@0", kbp2 0);
    ("Kbp-3@0,0", kbp3 0 0);
    ("Kbp-4@0", kbp4 0);
  ]
  @ List.init n (fun k -> (Printf.sprintf "(40)@%d" k, theorem40 ctx k))
  @ List.init n (fun k -> (Printf.sprintf "(41)@%d" k, theorem41 ctx k))
  @ List.init n (fun k -> (Printf.sprintf "liveness(35)@%d" k, theorem39 ctx k))

(* ======================================================================== *)
(* Instantiation on the standard protocol (Figure 4).                       *)
(* ======================================================================== *)

let replay_standard ~assume_channel (st : Seqtrans.standard) =
  let open Seqtrans in
  let { n; a } = st.sparams in
  let prog = st.sprog in
  let sp = st.sspace in
  let m = Space.manager sp in
  let e ex = Expr.compile_bool sp ex in
  let jeq k = e Expr.(var st.j === nat k) in
  let jgt k = e Expr.(var st.j >>> nat k) in
  let ieq k = e Expr.(var st.i === nat k) in
  let igt k = e Expr.(var st.i >>> nat k) in
  let yeq alpha = e Expr.(var st.y === nat alpha) in
  let kr k alpha = cand_kr st ~k ~alpha in
  let krx k = Bdd.disj m (List.init a (fun alpha -> kr k alpha)) in
  let kskr k = cand_kskr st ~k in
  let ksj k = cand_ksj st ~k in
  (* --- the grand inductive invariant (the paper's history-variable
         arguments (54),(61),(62) re-expressed over the channel state) --- *)
  let dmsg_sound v =
    Expr.conj
      (List.concat
         (List.init n (fun k ->
              List.init a (fun alpha ->
                  Expr.(
                    (var v === nat ((k * a) + alpha))
                    ==> ((var st.xs.(k) === nat alpha) &&& (var st.i >== nat k)))))))
  in
  let ack_bound v = Expr.((var v <== nat n) ==> (var v <== var st.j)) in
  let big =
    e
      (Expr.conj
         [
           Expr.disj
             (List.init n (fun k ->
                  Expr.((var st.i === nat k) &&& (var st.y === var st.xs.(k)))));
           dmsg_sound st.data.Channel.slot;
           dmsg_sound st.data.Channel.avail;
           dmsg_sound st.zp;
           Expr.conj
             (List.init n (fun k ->
                  Expr.((var st.j >>> nat k) ==> (var st.ws.(k) === var st.xs.(k)))));
           ack_bound st.ack.Channel.slot;
           ack_bound st.ack.Channel.avail;
           ack_bound st.z;
           Expr.(var st.j <== var st.i +! nat 1);
           Expr.(var st.i <== var st.j);
         ])
  in
  let big_inv = Proof.invariant_text prog big in
  let inv54 k = Proof.weaken_invariant big_inv (inv54 st ~k) in
  let inv61 k alpha = Proof.weaken_invariant big_inv (inv61 st ~k ~alpha) in
  let inv62 k = Proof.weaken_invariant big_inv (inv62 st ~k) in
  let safety = Proof.weaken_invariant big_inv (spec_safety st) in
  let window =
    (* the §6.4 remark: invariant i ≤ j ≤ i+1 *)
    Proof.weaken_invariant big_inv
      (e Expr.((var st.i <== var st.j) &&& (var st.j <== var st.i +! nat 1)))
  in
  let kskr_sound =
    Proof.weaken_invariant big_inv
      (Bdd.conj m (List.init n (fun k -> Bdd.imp m (kskr k) (krx k))))
  in
  let inv46 k =
    Proof.weaken_invariant big_inv
      (Bdd.imp m (ksj k) (Bdd.conj m (List.init k kskr)))
  in
  let inv48 k =
    let lhs = Bdd.or_ m (igt k) (Bdd.and_ m (ieq k) (kskr k)) in
    Proof.weaken_invariant big_inv (Bdd.imp m lhs (krx k))
  in
  (* --- stability (55)-(56), from the text ------------------------------- *)
  let st55 k = Proof.stable_text prog (kskr k) in
  let st56 k alpha = Proof.stable_text prog (kr k alpha) in
  (* --- channel obligations St-3 / St-4 ----------------------------------- *)
  let kbp1 k alpha =
    let a1 = Bdd.conj m [ ieq k; yeq alpha; Bdd.not_ m (kskr k) ] in
    let q = Bdd.or_ m (kr k alpha) (Bdd.not_ m a1) in
    if assume_channel then Proof.assume prog ~name:"St-3" (Proof.Leadsto (a1, q))
    else Proof.leadsto_model_checked prog a1 q
  in
  let kbp2 k =
    let a2 = Bdd.and_ m (jeq k) (Bdd.not_ m (krx k)) in
    let q = Bdd.or_ m (ksj k) (Bdd.not_ m a2) in
    if assume_channel then Proof.assume prog ~name:"St-4" (Proof.Leadsto (a2, q))
    else Proof.leadsto_model_checked prog a2 q
  in
  let ctx =
    {
      cprog = prog;
      cspace = sp;
      cn = n;
      ca = a;
      cjeq = jeq;
      cjgt = jgt;
      cieq = ieq;
      cigt = igt;
      cyeq = yeq;
      ckr = kr;
      ckrx = krx;
      ckskr = kskr;
      cksj = ksj;
      ckbp1 = kbp1;
      ckbp2 = kbp2;
      ckbp3 = st56;
      cinv46 = inv46;
      cinv48 = inv48;
      ckskr_sound = kskr_sound;
    }
  in
  [
    ("big-invariant", big_inv);
    ("inv-54@1", inv54 1);
    ("inv-61@0,0", inv61 0 0);
    ("inv-62@0", inv62 0);
    ("safety(34)", safety);
    ("window(i≤j≤i+1)", window);
    ("kskr-sound", kskr_sound);
    ("stable(55)@0", st55 0);
    ("stable(56)@0,0", st56 0 0);
  ]
  @ List.init n (fun k -> (Printf.sprintf "liveness(35)@%d" k, theorem39 ctx k))

(* ======================================================================== *)
(* The paper's proof of (37), replayed with its own margin notes.           *)
(* ======================================================================== *)

let inv37_paper_style (st : Seqtrans.abstract) =
  let open Seqtrans in
  let { n; a } = st.aparams in
  let prog = st.aprog in
  let m = Space.manager st.aspace in
  (* stable K_R x_k: Kbp-3 gives stability per value; the disjunction over
     the alphabet is stable by generalized disjunction (q.i = false). *)
  let stable_krx k =
    Proof.general_disjunction
      (List.init a (fun alpha -> Proof.stable_text prog (a_kr st ~k ~alpha)))
  in
  (* stable P.k = ⋀_{l<k} K_R x_l, by simple conjunction of stables *)
  let stable_p k =
    let tru_stable = Proof.stable_text prog (Bdd.tru m) in
    List.fold_left
      (fun acc l -> Proof.conj_unless_simple acc (stable_krx l))
      tru_stable
      (List.init k (fun l -> l))
  in
  let family =
    List.init (n + 1) (fun k ->
        let jeq = a_j_eq st k and jnext = a_j_eq st (k + 1) in
        (* j = k unless j = k+1                               {from text} *)
        let u1 = Proof.unless_text prog jeq jnext in
        (* conjunction with (Kbp-3):
           j = k ∧ K_Rx_k unless j = k+1 ∧ K_Rx_k *)
        let c1 =
          if k < n then Proof.conj_unless u1 (stable_krx k)
          else
            (* at the horizon there is no element k to know *)
            Proof.conj_unless u1 (Proof.stable_text prog (Bdd.tru m))
        in
        (* j = k unless j = k ∧ K_Rx_k                        {from text} *)
        let u2 =
          let q = Bdd.and_ m jeq (if k < n then a_krx st ~k else Bdd.tru m) in
          Proof.unless_text prog jeq q
        in
        (* cancellation: j = k unless j = k+1 ∧ K_Rx_k *)
        let c2 = Proof.cancellation u2 c1 in
        (* conjunction with stable P.k:
           j = k ∧ P.k unless j = k+1 ∧ P.(k+1) *)
        Proof.conj_unless c2 (stable_p k))
  in
  (* generalized disjunction: (∃k :: j = k ∧ P.k) unless … — and the
     right-hand side collapses to false, because the disjunct q.k that
     holds contradicts the conjunct for the new value of j. *)
  let gd = Proof.general_disjunction family in
  let stable37 =
    match Proof.judgment gd with
    | Proof.Unless (_, q) when Bdd.is_false q -> gd
    | Proof.Unless (p, q) ->
        (* make falsity explicit through consequence weakening if the BDD
           did not already normalise it away *)
        ignore p;
        if Bdd.is_false (Pred.normalize st.aspace q) then
          Proof.weaken_unless gd (Bdd.fls m)
        else Proof.weaken_unless gd q
    | _ -> assert false
  in
  Proof.invariant_from_stable stable37
