(** The Aho–Ullman–Yannakakis model [AUY79, AUWY82]: the sender and
    receiver communicate {e synchronously} over a channel that allows
    only {e one-bit} messages.

    We realise the smallest member of the family: a half-duplex
    alternating exchange in which the sender emits the bits of the
    current element (alphabet size must be a power of two so elements
    are bit strings), the receiver assembles them, and an implicit
    synchronous ack (the turn change) replaces sequence numbers — no
    loss, no duplication, so sequence numbers are unnecessary, which is
    exactly the AUY observation that synchrony buys protocol economy. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  bits_per_element : int;
  xs : Space.var array;
  ws : Space.var array;
  i : Space.var;   (** sender's element index *)
  j : Space.var;   (** receiver's element index *)
  bit : Space.var; (** bit position within the current element *)
  wire : Space.var;  (** the one-bit synchronous channel *)
  turn : Space.var;  (** 0 = sender may write the wire, 1 = receiver may read *)
  acc : Space.var;   (** receiver's partial element *)
}

val make : Seqtrans.params -> t
(** @raise Invalid_argument if the alphabet size is not a power of two. *)

val safety : t -> Bdd.t
(** Eq. 34 for the AUY instance. *)

val liveness_holds : t -> k:int -> bool
(** Eq. 35 instance; holds unconditionally (the channel is synchronous
    and reliable). *)

val messages_per_element : t -> int
(** Bits on the wire per delivered element — [log2 a], the AUY economy
    measure. *)
