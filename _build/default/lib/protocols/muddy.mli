(** The muddy children / cheating husbands case study ([MDH86], cited in
    §7 as a driver of the knowledge-based analysis the paper formalises),
    generalised to [n] children.

    Each child sees every forehead but its own; the father announces that
    at least one is muddy (encoded in [init]); in synchronous rounds every
    child that {e knows} it is muddy steps forward.  Classic theorem: with
    [m] muddy children nobody can move for [m-1] rounds, and that very
    silence lets exactly the muddy ones declare in round [m] — knowledge
    gained purely from the {e absence} of action.

    The program below is the standard instantiation (child [i] declares in
    round [r] iff it sees exactly [r] muddy children and nobody declared
    in an earlier round); the checks verify, with the genuine knowledge
    transformer, that this rule is {e epistemically sound} (children only
    declare what they know), truthful, complete, and correctly timed. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  children : int;
  muddy : Space.var array;     (** constant; init requires at least one *)
  declared : Space.var array;
  latched : Space.var array;   (** end-of-previous-round snapshot *)
  phase : Space.var;           (** whose turn within the round; [n] = round end *)
  round : Space.var;           (** 0-based round counter, capped at [n] *)
}

val make : children:int -> t
(** @raise Invalid_argument unless [2 ≤ children ≤ 4] (state space grows
    as [2^{3n}]). *)

val epistemically_sound : t -> bool
(** invariant: [declared_i ⇒ K_i(muddy_i)] for every child — declaring is
    knowing. *)

val truthful : t -> bool
(** invariant: [declared_i ⇒ muddy_i]. *)

val all_muddy_eventually_declare : t -> bool
(** [muddy_i ↦ declared_i] for every child (fair leads-to). *)

val clean_never_declare : t -> bool
(** invariant: [¬muddy_i ⇒ ¬declared_i]. *)

val silence_teaches : t -> child:int -> bool
(** The knowledge-from-silence effect: in every reachable state where all
    children are muddy, the first [children - 1] rounds have passed and
    nobody has declared, child [child] knows its own muddiness — although
    it still cannot see its own forehead. *)

val ignorance_before : t -> child:int -> bool
(** Conversely, with everyone muddy and the round counter still at zero,
    the child does {e not} know. *)
