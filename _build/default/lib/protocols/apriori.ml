open Kpt_predicate
open Kpt_unity

type verdict = {
  cand_implies_k : bool;
  k_implies_cand : bool;
  still_safe : bool;
  still_live : bool;
}

let pin_x0 (st : Seqtrans.standard) value =
  let sp = st.sspace in
  let m = Space.manager sp in
  let pinned =
    Bdd.and_ m (Program.init st.sprog)
      (Expr.compile_bool sp Expr.(var st.xs.(0) === nat value))
  in
  Program.make_with_init_pred sp
    ~name:(Program.name st.sprog ^ "_apriori")
    ~init:pinned
    ~processes:(Program.processes st.sprog)
    (Program.statements st.sprog)

let instantiation_breaks params ~known_value =
  let st = Seqtrans.standard ~lossy:false params in
  let sp = st.sspace in
  let m = Space.manager sp in
  let prog = pin_x0 st known_value in
  let si = Program.si prog in
  let cand = Seqtrans.cand_kr st ~k:0 ~alpha:known_value in
  let real =
    Kpt_core.Knowledge.knows sp ~si
      (Program.find_process prog "Receiver")
      (Expr.compile_bool sp Expr.(var st.xs.(0) === nat known_value))
  in
  let jlive k =
    Kpt_logic.Props.leads_to prog
      (Expr.compile_bool sp Expr.(var st.j === nat k))
      (Expr.compile_bool sp Expr.(var st.j >>> nat k))
  in
  {
    cand_implies_k = Bdd.implies m (Bdd.and_ m si cand) real;
    k_implies_cand = Bdd.implies m (Bdd.and_ m si real) cand;
    still_safe = Program.invariant prog (Seqtrans.spec_safety st);
    still_live = List.for_all (fun k -> jlive k) (List.init params.Seqtrans.n (fun k -> k));
  }

type counts = { steps_to_done : int; data_transmissions : int; ack_transmissions : int }

(* Build a concrete initial state directly (enumerating init states would
   traverse the whole space). *)
let initial_state (st : Seqtrans.standard) rng ~optimal =
  let sp = st.sspace in
  let { Seqtrans.n; a } = st.sparams in
  let nvars = List.length (Space.vars sp) in
  let state = Array.make nvars 0 in
  let set v value = state.(Space.idx v) <- value in
  Array.iter (fun x -> set x (Random.State.int rng a)) st.xs;
  let i0 = if optimal then 1 else 0 in
  set st.i i0;
  set st.y state.(Space.idx st.xs.(i0));
  set st.j (if optimal then 1 else 0);
  Array.iteri (fun k w -> set w (if optimal && k = 0 then state.(Space.idx st.xs.(0)) else 0)) st.ws;
  set st.z st.ack.Channel.codec.Channel.bot;
  set st.zp st.data.Channel.codec.Channel.bot;
  set st.data.Channel.slot st.data.Channel.codec.Channel.bot;
  set st.data.Channel.avail st.data.Channel.codec.Channel.bot;
  set st.ack.Channel.slot st.ack.Channel.codec.Channel.bot;
  set st.ack.Channel.avail st.ack.Channel.codec.Channel.bot;
  ignore n;
  state

let simulate (st : Seqtrans.standard) ~seed ~optimal =
  let sp = st.sspace in
  let { Seqtrans.n; _ } = st.sparams in
  let rng = Stdlib.Random.State.make [| seed |] in
  let stmts = Array.of_list (Program.statements st.sprog) in
  let state = ref (initial_state st rng ~optimal) in
  let steps = ref 0 and data = ref 0 and ack = ref 0 in
  let enabled s =
    match s.Stmt.guard with
    | Stmt.Gexpr e -> Expr.eval_bool e (fun v -> !state.(Space.idx v))
    | Stmt.Gpred p -> Space.holds_at sp p !state
  in
  while !state.(Space.idx st.j) < n && !steps < 1_000_000 do
    let s = stmts.(Stdlib.Random.State.int rng (Array.length stmts)) in
    if enabled s then begin
      match Stmt.name s with
      | "snd_tx" -> incr data
      | "rcv_ack" -> incr ack
      | _ -> ()
    end;
    state := Stmt.exec sp s !state;
    incr steps
  done;
  { steps_to_done = !steps; data_transmissions = !data; ack_transmissions = !ack }

let run_standard ?(seed = 1) params =
  simulate (Seqtrans.standard ~lossy:false params) ~seed ~optimal:false

let run_optimal ?(seed = 1) params =
  simulate (Seqtrans.standard ~lossy:false params) ~seed ~optimal:true

let average_counts run ~seeds =
  let totals = ref (0, 0, 0) in
  for seed = 1 to seeds do
    let c = run seed in
    let a, b, d = !totals in
    totals := (a + c.steps_to_done, b + c.data_transmissions, d + c.ack_transmissions)
  done;
  let a, b, d = !totals in
  let f x = float_of_int x /. float_of_int seeds in
  (f a, f b, f d)

let pp_counts fmt c =
  Format.fprintf fmt "steps=%d data_tx=%d ack_tx=%d" c.steps_to_done c.data_transmissions
    c.ack_transmissions

let si_of = Program.si
