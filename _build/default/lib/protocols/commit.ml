open Kpt_predicate
open Kpt_unity
open Kpt_core

type t = {
  prog : Program.t;
  space : Space.t;
  n : int;
  votes : Space.var array;
  responses : Space.var array;
  req : Space.var;
  decision : Space.var;
  adopted : Space.var array;
}

let coordinator = "C"
let participant i = Printf.sprintf "P%d" i

let build ~crashes ~participants =
  if participants < 2 || participants > 3 then
    invalid_arg "Commit.make: 2 ≤ participants ≤ 3";
  let n = participants in
  let sp = Space.create () in
  let votes = Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "vote%d" i)) in
  let crashed_v =
    if crashes then
      Some (Array.init n (fun i -> Space.bool_var sp (Printf.sprintf "crashed%d" i)))
    else None
  in
  let responses =
    Array.init n (fun i ->
        Space.enum_var sp (Printf.sprintf "resp%d" i) ~values:[| "none"; "yes"; "no" |])
  in
  let req = Space.bool_var sp "req" in
  let decision = Space.enum_var sp "decision" ~values:[| "undecided"; "commit"; "abort" |] in
  let adopted =
    Array.init n (fun i ->
        Space.enum_var sp (Printf.sprintf "adopted%d" i) ~values:[| "waiting"; "commit"; "abort" |])
  in
  let open Expr in
  let ask = Stmt.make ~name:"ask" [ (req, tru) ] in
  let alive i =
    match crashed_v with None -> tru | Some c -> not_ (var c.(i))
  in
  let respond i =
    Stmt.make
      ~name:(Printf.sprintf "respond%d" i)
      ~guard:(var req &&& (var responses.(i) === nat 0) &&& alive i)
      [ (responses.(i), Ite (var votes.(i), nat 1, nat 2)) ]
  in
  let crash_stmts =
    match crashed_v with
    | None -> []
    | Some c ->
        List.init n (fun i ->
            Stmt.make ~name:(Printf.sprintf "crash%d" i) [ (c.(i), tru) ])
  in
  let all_yes = conj (List.init n (fun i -> var responses.(i) === nat 1)) in
  let some_no = disj (List.init n (fun i -> var responses.(i) === nat 2)) in
  let decide_commit =
    Stmt.make ~name:"decide_commit"
      ~guard:(all_yes &&& (var decision === nat 0))
      [ (decision, nat 1) ]
  in
  let decide_abort =
    Stmt.make ~name:"decide_abort"
      ~guard:(some_no &&& (var decision === nat 0))
      [ (decision, nat 2) ]
  in
  let adopt i =
    Stmt.make
      ~name:(Printf.sprintf "adopt%d" i)
      ~guard:((var decision <<> nat 0) &&& (var adopted.(i) === nat 0) &&& alive i)
      [ (adopted.(i), var decision) ]
  in
  let init =
    conj
      (not_ (var req)
      :: (var decision === nat 0)
      :: List.init n (fun i -> var responses.(i) === nat 0)
      @ List.init n (fun i -> var adopted.(i) === nat 0)
      @ (match crashed_v with
        | None -> []
        | Some c -> List.init n (fun i -> not_ (var c.(i)))))
  in
  let processes =
    Process.make coordinator (req :: decision :: Array.to_list responses)
    :: List.init n (fun i ->
           Process.make (participant i) [ votes.(i); responses.(i); req; decision; adopted.(i) ])
  in
  let prog =
    Program.make sp
      ~name:(Printf.sprintf "two_phase_commit_%d%s" n (if crashes then "_crash" else ""))
      ~init ~processes
      ([ ask ]
      @ List.init n respond
      @ [ decide_commit; decide_abort ]
      @ List.init n adopt @ crash_stmts)
  in
  { prog; space = sp; n; votes; responses; req; decision; adopted }

let make ?(crashes = false) ~participants () = build ~crashes ~participants

let bp t e = Expr.compile_bool t.space e

let crashed t i = Space.find t.space (Printf.sprintf "crashed%d" i)

let blocking_witness t =
  let m = Space.manager t.space in
  let undecided = bp t Expr.(var t.decision === nat 0) in
  let stuck = Kpt_logic.Ctl.eg_fair t.prog undecided in
  match Space.states_of t.space (Bdd.and_ m (Program.si t.prog) stuck) with
  | [] -> None
  | st :: _ -> Some st
let unanimity t = bp t (Expr.conj (List.init t.n (fun i -> Expr.var t.votes.(i))))
let commit_guard t = bp t (Expr.conj (List.init t.n (fun i -> Expr.(var t.responses.(i) === nat 1))))

let safety_holds t =
  let m = Space.manager t.space in
  let open Expr in
  Program.invariant t.prog
    (Bdd.conj m
       [
         bp t ((var t.decision === nat 1) ==> conj (List.init t.n (fun i -> var t.votes.(i))));
         bp t
           ((var t.decision === nat 2)
           ==> disj (List.init t.n (fun i -> not_ (var t.votes.(i)))));
         bp t
           (conj
              (List.init t.n (fun i ->
                   (var t.adopted.(i) <<> nat 0) ==> (var t.adopted.(i) === var t.decision))));
       ])

let decision_live t =
  Kpt_logic.Props.leads_to t.prog
    (Bdd.tru (Space.manager t.space))
    (bp t Expr.(var t.decision <<> nat 0))

let guard_is_knowledge t =
  let m = Space.manager t.space in
  let si = Program.si t.prog in
  let k = Knowledge.knows_in t.prog coordinator (unanimity t) in
  Bdd.is_true (Bdd.imp m si (Bdd.iff m (commit_guard t) k))

let distributed_but_not_individual t =
  let m = Space.manager t.space in
  let si = Program.si t.prog in
  let init = Program.init t.prog in
  let group =
    Program.find_process t.prog coordinator
    :: List.init t.n (fun i -> Program.find_process t.prog (participant i))
  in
  let u = unanimity t in
  let d = Knowledge.distributed_knowledge t.space ~si group u in
  let d_ok = Bdd.implies m (Bdd.and_ m init u) d in
  let nobody =
    List.for_all
      (fun proc ->
        Bdd.is_false
          (Bdd.conj m [ init; Knowledge.knows t.space ~si proc u ]))
      group
  in
  d_ok && nobody

let adoption_teaches t ~i =
  let m = Space.manager t.space in
  let open Expr in
  let others =
    conj
      (List.filteri (fun j _ -> j <> i) (List.init t.n (fun j -> var t.votes.(j))))
  in
  Program.invariant t.prog
    (Bdd.imp m
       (bp t (var t.adopted.(i) === nat 1))
       (Knowledge.knows_in t.prog (participant i) (bp t others)))
