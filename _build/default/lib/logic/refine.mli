(** Refinement between UNITY programs, in the stuttering-simulation sense
    used for the paper's protocol refinements (§6.3's "refined to obtain
    several known protocols"; the method of [San90]).

    A {e concrete} program refines an {e abstract} one under an
    abstraction function [h] from concrete to abstract states when

    - every concrete initial state maps into an abstract initial state,
      and
    - every transition of the concrete program, from every reachable
      concrete state, maps to either a {e stutter} ([h] unchanged) or a
      transition of some abstract statement.

    Refinement transfers every invariant downwards: if [invariant p]
    holds of the abstract program then [invariant h⁻¹(p)] holds of the
    concrete one ({!pull_back}, {!transfers_invariant}).  (Liveness does
    {e not} transfer without further fairness conditions — exactly the
    subtlety the paper's mixed specifications are for.)

    The checker is explicit-state and complete on the bounded instances
    used throughout this reproduction. *)

open Kpt_predicate
open Kpt_unity

type mapping = Space.state -> Space.state
(** Abstraction function; must produce type-correct states of the
    abstract program's space. *)

type failure = {
  at : Space.state;         (** reachable concrete state *)
  statement : string;       (** concrete statement applied *)
  image_from : Space.state; (** h(at) *)
  image_to : Space.state;   (** h(successor) — not abstractly reachable in one step *)
}

type result = Simulates | Init_escapes of Space.state | Step_escapes of failure

val check : abstract:Program.t -> concrete:Program.t -> map:mapping -> result
(** Decide stuttering simulation by explicit traversal of the concrete
    reachable states. *)

val simulates : abstract:Program.t -> concrete:Program.t -> map:mapping -> bool

val pull_back : abstract:Program.t -> concrete:Program.t -> map:mapping -> Bdd.t -> Bdd.t
(** [h⁻¹(p)] as a predicate over the concrete space, computed over the
    concrete reachable states (elsewhere it is false). *)

val transfers_invariant :
  abstract:Program.t -> concrete:Program.t -> map:mapping -> Bdd.t -> bool
(** Soundness witness for a particular [p]: given that [check] says
    [Simulates] and [invariant p] holds abstractly, verify that
    [invariant h⁻¹(p)] indeed holds concretely. *)

val project : Space.t -> Space.t -> (string * (int -> int)) list -> mapping
(** Convenience mapping builder: the abstract value of variable [name] is
    [f (concrete value of the same-named variable)]; abstract variables
    not listed must share name and value with a concrete variable.
    @raise Not_found if an abstract variable cannot be resolved. *)
