(** LCF-style proof kernel for the UNITY logic.

    A {!thm} can only be produced by the constructors below, each of
    which is one of the paper's proof rules: the basic rules (eqs. 27–33),
    checked by actual [wp] calculation on the program text, and the
    metatheorems of appendix 8 (substitution, consequence weakening,
    conjunction, cancellation, generalized disjunction, PSP) plus the
    standard transitivity/disjunction/induction rules for [↦] used in §6.

    {b Mixed specifications} (§5, [San90]): {!assume} introduces a named
    property as a hypothesis.  Every theorem carries the set of assumption
    names it (transitively) depends on, so a derivation over a
    knowledge-based protocol — whose channel and stability properties
    (Kbp-1..4) cannot be proved from the text — yields a theorem whose
    assumption list is exactly the paper's "properties" section.  A
    theorem with no assumptions is unconditionally valid for its program.

    Soundness: each rule checks its side conditions semantically (on the
    program's state space) and raises {!Rule_violation} if they fail, so
    no invalid theorem can be built; validity of assumption-free theorems
    is additionally cross-checked in the test suite against the
    {!Props} model checker. *)

open Kpt_predicate
open Kpt_unity

type judgment =
  | Invariant of Bdd.t
  | Unless of Bdd.t * Bdd.t
  | Ensures of Bdd.t * Bdd.t
  | Leadsto of Bdd.t * Bdd.t

type thm

exception Rule_violation of string

val program : thm -> Program.t
val judgment : thm -> judgment
val assumptions : thm -> string list
(** Names of hypotheses the theorem depends on, sorted, without
    duplicates. *)

val stable_judgment : Bdd.manager -> Bdd.t -> judgment
(** [stable p] as sugar for [p unless false] (eq. 33). *)

val pp : Format.formatter -> thm -> unit

(** {1 Hypotheses (mixed specifications)} *)

val assume : Program.t -> name:string -> judgment -> thm

(** {1 Basic rules, checked against the program text} *)

val unless_text : Program.t -> Bdd.t -> Bdd.t -> thm
(** Eq. 27, discharged by [wp] calculation.
    @raise Rule_violation if some statement falsifies it. *)

val ensures_text : Program.t -> Bdd.t -> Bdd.t -> thm
(** Eq. 28. *)

val ensures_intro : thm -> thm
(** Eq. 28 split as the paper uses it in §6 ("we used a metatheorem …
    instead of proving the unless property directly from the text"): from
    a previously derived [p unless q] — possibly resting on assumptions —
    plus the {e existence} condition [(∃s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.q)])]
    checked on the text, conclude [p ensures q]. *)

val stable_text : Program.t -> Bdd.t -> thm
(** Eq. 33. *)

val invariant_text : ?using:thm -> Program.t -> Bdd.t -> thm
(** Rule 32: from [invariant I] (default [true]) conclude [invariant p]
    when [[init ⇒ p]] and [(∀s :: [(p ∧ I) ⇒ wp.s.p])]. *)

val invariant_from_stable : thm -> thm
(** From [stable p] (i.e. [p unless false]) and [[init ⇒ p]] conclude
    [invariant p] — how the paper closes the unless-chains of §6.2
    ("…unless false", then "initially …"). *)

(** {1 Leads-to introduction and composition} *)

val ensures_leadsto : thm -> thm
(** Rule 29. *)

val leadsto_trans : thm -> thm -> thm
(** Rule 30. *)

val leadsto_disj : thm list -> thm
(** Rule 31 (finite form): from [p.m ↦ q] for every [m] conclude
    [(∃m :: p.m) ↦ q].  All premises must share [q]. *)

val leadsto_implication : ?using:thm -> Program.t -> Bdd.t -> Bdd.t -> thm
(** The "leads-to implication" step used throughout §6: if
    [invariant I] and [[I ⇒ (p ⇒ q)]] then [p ↦ q]
    (an [ensures] whose [p ∧ ¬q] is unreachable). *)

val leadsto_induction : (int -> thm) -> metric:(int -> Bdd.t) -> bound:int -> q:Bdd.t -> thm
(** Well-founded induction over a bounded natural metric: from
    [∀k ≤ bound : (p.k = metric k) ↦ (∃k' < k : metric k') ∨ q]
    conclude [(∃k ≤ bound : metric k) ↦ q].  The [k]-th premise must have
    the shape [metric k ↦ (metric 0 ∨ … ∨ metric (k-1) ∨ q)] up to
    semantic equivalence. *)

val conj_invariant : thm list -> thm
(** From [invariant Iₖ] for each premise conclude [invariant (⋀ Iₖ)]
    (invariants are closed under conjunction). *)

val weaken_invariant : thm -> Bdd.t -> thm
(** From [invariant I] and [[I ⇒ p]] conclude [invariant p]. *)

val leadsto_model_checked : Program.t -> Bdd.t -> Bdd.t -> thm
(** Reflection rule: invoke the sound-and-complete finite-state fair
    leads-to decision procedure ({!Props.leads_to}) and admit [p ↦ q] if
    it holds.  By the relative completeness of the UNITY proof system
    over finite spaces this derives nothing the inference rules cannot,
    but it spares boilerplate [ensures] chains for environment
    properties (the St-3/St-4 channel obligations of §6.3).
    @raise Rule_violation if the property fails. *)

(** {1 Metatheorems (appendix 8)} *)

val substitution : thm -> thm -> judgment -> thm
(** Appendix 8.1: rewrite a judgment under a proven invariant.  From
    [invariant I] (first argument) and a theorem [J], conclude any
    judgment [J'] of the same kind whose predicates agree with [J]'s
    wherever [I] holds. *)

val weaken_unless : thm -> Bdd.t -> thm
(** Appendix 8.2 for [unless]: from [p unless q] and [[q ⇒ r]] conclude
    [p unless r]. *)

val weaken_leadsto : thm -> Bdd.t -> thm
(** Appendix 8.2 for [↦]: from [p ↦ q] and [[q ⇒ r]] conclude [p ↦ r]. *)

val strengthen_leadsto : Bdd.t -> thm -> thm
(** Antecedent strengthening: from [[p' ⇒ p]] and [p ↦ q] conclude
    [p' ↦ q] (derived: implication + transitivity). *)

val conj_unless_simple : thm -> thm -> thm
(** Appendix 8.3 first form: from [p unless q] and [p' unless q']
    conclude [(p ∧ p') unless (q ∨ q')]. *)

val conj_unless : thm -> thm -> thm
(** Appendix 8.3 second form: from [p unless q] and [p' unless q']
    conclude [(p ∧ p') unless ((p ∧ q') ∨ (p' ∧ q) ∨ (q ∧ q'))]. *)

val cancellation : thm -> thm -> thm
(** Appendix 8.4: from [p unless q] and [q unless r] conclude
    [(p ∨ q) unless r]. *)

val general_disjunction : thm list -> thm
(** Appendix 8.5 (finite form): from [p.i unless q.i] conclude
    [(∃i :: p.i) unless (∀i :: ¬p.i ∨ q.i) ∧ (∃i :: q.i)]. *)

val psp : thm -> thm -> thm
(** Appendix 8.6: from [p ↦ q] and [r unless b] conclude
    [(p ∧ r) ↦ ((q ∧ r) ∨ b)]. *)

val psp_stable : thm -> thm -> thm
(** The PSP corollary for stable contexts: from [p ↦ q] and [stable r]
    conclude [(p ∧ r) ↦ (q ∧ r)] — the form used repeatedly in §6.2. *)

val completion : (thm * thm) list -> thm
(** The Chandy–Misra completion theorem (finite form): from pairs
    [(p.i ↦ q.i ∨ b,  q.i unless b)] conclude
    [(⋀i p.i) ↦ (⋀i q.i) ∨ b].  All premises must share [b]. *)

(** {1 Derivations}

    Every theorem records the rule that built it and its premise theorems,
    so a finished proof can be rendered as the paper's calculational
    derivations and audited. *)

val rule : thm -> string
(** Name of the rule that concluded this theorem (e.g. ["PSP (8.6)"]). *)

val premises : thm -> thm list

val pp_derivation : Format.formatter -> thm -> unit
(** Indented derivation tree; predicates abbreviated by their state
    counts. *)

val derivation_size : thm -> int
(** Total number of rule applications in the tree. *)

val rules_used : thm -> string list
(** Sorted, de-duplicated rule names appearing in the derivation. *)

(** {1 Semantic escape hatch for tests} *)

val check : thm -> bool
(** Re-check the conclusion with the {!Props} model checker {e assuming
    nothing}: true iff the judgment holds semantically of the program.
    For theorems with assumptions this may legitimately return false on
    programs where the assumptions fail; it must return true whenever
    [assumptions t = []]. *)
