lib/logic/props.mli: Bdd Format Kpt_predicate Kpt_unity Program Space
