lib/logic/refine.mli: Bdd Kpt_predicate Kpt_unity Program Space
