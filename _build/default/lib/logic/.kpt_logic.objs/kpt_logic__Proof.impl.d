lib/logic/proof.ml: Bdd Format Kpt_predicate Kpt_unity List Pred Program Props Set Space Stmt String
