lib/logic/proof.mli: Bdd Format Kpt_predicate Kpt_unity Program
