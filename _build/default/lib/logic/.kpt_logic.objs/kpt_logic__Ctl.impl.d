lib/logic/ctl.ml: Bdd Kpt_predicate Kpt_unity List Pred Program Props Space Stmt
