lib/logic/ctl.mli: Bdd Kpt_predicate Kpt_unity Program
