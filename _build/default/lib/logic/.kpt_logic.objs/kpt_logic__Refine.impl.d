lib/logic/refine.ml: Array Bdd Hashtbl Kpt_predicate Kpt_unity List Program Queue Space Stmt
