lib/logic/props.ml: Array Bdd Format Hashtbl Kpt_predicate Kpt_unity List Logs Pred Program Queue Space Stmt
