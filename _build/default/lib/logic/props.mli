(** Semantic checkers for the UNITY specification language (§5).

    These decide, exactly, whether a finite-state program satisfies
    [unless] / [ensures] / [stable] / [invariant] (eqs. 27–33) and the
    fair [↦] (leads-to).  [unless] and [ensures] are literal
    transcriptions of the proof rules (which are sound and complete for
    them); leads-to is decided against the run semantics — every
    unconditionally-fair execution from a reachable [p]-state reaches
    [q] — by the "fair rounds" greatest fixpoint, which coincides with
    derivability in the UNITY proof system on finite spaces. *)

open Kpt_predicate
open Kpt_unity

type t =
  | Invariant of Bdd.t
  | Stable of Bdd.t
  | Unless of Bdd.t * Bdd.t
  | Ensures of Bdd.t * Bdd.t
  | Leadsto of Bdd.t * Bdd.t

val unless : Program.t -> Bdd.t -> Bdd.t -> bool
(** Eq. 27: [(∀s :: [SI ⇒ ((p ∧ ¬q) ⇒ wp.s.(p ∨ q))])]. *)

val ensures : Program.t -> Bdd.t -> Bdd.t -> bool
(** Eq. 28: [unless] plus one statement that establishes [q]. *)

val stable : Program.t -> Bdd.t -> bool
(** Eq. 33: [p unless false]. *)

val invariant : Program.t -> Bdd.t -> bool
(** Eq. 5: [[SI ⇒ p]]. *)

val fair_avoid : Program.t -> Bdd.t -> Bdd.t
(** States of [SI ∧ ¬q] from which some {e fair} infinite execution stays
    in [¬q] forever.  Greatest fixpoint of the round operator: a state
    survives iff it can schedule every statement at least once while
    remaining among survivors.  (Enumerates states: small spaces.) *)

val leads_to : Program.t -> Bdd.t -> Bdd.t -> bool
(** Fair leads-to: [p ↦ q] iff no reachable [p ∧ ¬q] state can fairly
    avoid [q] forever. *)

val wlt : Program.t -> Bdd.t -> Bdd.t
(** The {e weakest leads-to} predicate transformer: the weakest [W] such
    that [W ↦ q].  Characterises progress the way [wp] characterises one
    step: [p ↦ q ⟺ [SI ∧ p ⇒ wlt q]] — the progress analogue of the
    strongest-invariant characterisation (eq. 5).  Computed as
    [q ∨ ¬fair_avoid q]. *)

val holds : Program.t -> t -> bool

(** {1 Counterexample extraction}

    The checkers above answer yes/no; these return a witness state when
    the answer is no — reachable states the user can inspect. *)

val invariant_counterexample : Program.t -> Bdd.t -> Space.state option
(** A reachable state violating the predicate, if any. *)

val unless_counterexample :
  Program.t -> Bdd.t -> Bdd.t -> (Space.state * string * Space.state) option
(** A reachable [p ∧ ¬q] state, the offending statement's name, and the
    successor violating [p ∨ q]. *)

val leads_to_counterexample : Program.t -> Bdd.t -> Bdd.t -> Space.state option
(** A reachable [p ∧ ¬q] state from which a fair execution can avoid [q]
    forever. *)

val pp : Space.t -> Format.formatter -> t -> unit
