(** Branching-time operators over UNITY programs.

    UNITY's own specification language ([unless]/[ensures]/[↦]) is
    deliberately linear-time, but its semantic ingredients — preimages,
    reachability, the fair-rounds fixpoint — assemble into the standard
    CTL modalities, which the test-suite uses as an independent oracle
    for the §2/§5 machinery:

    - [ef q]: states with {e some} finite execution into [q]
      (least fixpoint of [q ∨ pre]);
    - [ag q]: states all of whose reachable successors satisfy [q]
      ([¬ef ¬q]);
    - [eg_fair q]: states with some {e fair} execution staying in [q]
      forever (the {!Props.fair_avoid} gfp, re-oriented);
    - [af_fair q]: states whose every fair execution reaches [q]
      ([¬eg_fair ¬q] — {!Props.wlt} without the reachability cut).

    The correspondences [invariant p ⟺ [init ⇒ ag p]] and
    [p ↦ q ⟺ [SI ∧ p ⇒ af_fair q]] are exercised in the tests.

    All operators quantify over type-correct states and are exact on the
    finite instances this library targets. *)

open Kpt_predicate
open Kpt_unity

val pre : Program.t -> Bdd.t -> Bdd.t
(** Existential preimage: states from which {e some} statement reaches
    the set in one step (skips included: a [q]-state with a disabled
    statement is its own predecessor). *)

val ef : Program.t -> Bdd.t -> Bdd.t
(** Possibly-eventually. *)

val ag : Program.t -> Bdd.t -> Bdd.t
(** Always-globally (along every execution). *)

val eg_fair : Program.t -> Bdd.t -> Bdd.t
(** Exists a fair execution remaining in [q]; computed within the
    reachable states (elsewhere false). *)

val af_fair : Program.t -> Bdd.t -> Bdd.t
(** All fair executions reach [q]; computed within the reachable states
    (elsewhere false). *)
