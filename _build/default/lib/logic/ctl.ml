open Kpt_predicate
open Kpt_unity

let pre prog q =
  let space = Program.space prog in
  let m = Space.manager space in
  let nxt = Space.all_next_bits space in
  let q' = Space.to_next space q in
  List.fold_left
    (fun acc s ->
      Bdd.or_ m acc
        (Bdd.and_exists m nxt (Space.to_next space (Space.domain space))
           (Bdd.and_ m (Stmt.trans space s) q')))
    (Bdd.fls m) (Program.statements prog)

let ef prog q =
  let space = Program.space prog in
  let m = Space.manager space in
  let q = Pred.normalize space q in
  let rec go x =
    let x' = Bdd.or_ m x (Pred.normalize space (pre prog x)) in
    if Bdd.equal x x' then x else go x'
  in
  go q

let ag prog q =
  let space = Program.space prog in
  let m = Space.manager space in
  Bdd.and_ m (Space.domain space) (Bdd.not_ m (ef prog (Bdd.not_ m q)))

let eg_fair prog q =
  let m = Space.manager (Program.space prog) in
  Props.fair_avoid prog (Bdd.not_ m q)

let af_fair prog q =
  let space = Program.space prog in
  let m = Space.manager space in
  Bdd.and_ m (Program.si prog) (Bdd.not_ m (eg_fair prog (Bdd.not_ m q)))
