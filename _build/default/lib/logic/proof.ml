open Kpt_predicate
open Kpt_unity

module S = Set.Make (String)

type judgment =
  | Invariant of Bdd.t
  | Unless of Bdd.t * Bdd.t
  | Ensures of Bdd.t * Bdd.t
  | Leadsto of Bdd.t * Bdd.t

type thm = {
  prog : Program.t;
  concl : judgment;
  assumps : S.t;
  rule : string;
  premises : thm list;
}

exception Rule_violation of string

let violation fmt = Format.kasprintf (fun s -> raise (Rule_violation s)) fmt

let program t = t.prog
let judgment t = t.concl
let assumptions t = S.elements t.assumps

let stable_judgment m p = Unless (p, Bdd.fls m)

let mk ?(rule = "?") ?(premises = []) prog concl assumps =
  { prog; concl; assumps; rule; premises }

let same_program a b =
  if not (a.prog == b.prog) then violation "premises refer to different programs"

let sp_of t = Program.space t.prog
let man_of t = Space.manager (sp_of t)

let pp fmt t =
  let space = sp_of t in
  let pr = Space.pp_pred space in
  (match t.concl with
  | Invariant p -> Format.fprintf fmt "invariant %a" pr p
  | Unless (p, q) when Bdd.is_false q -> Format.fprintf fmt "stable %a" pr p
  | Unless (p, q) -> Format.fprintf fmt "%a unless %a" pr p pr q
  | Ensures (p, q) -> Format.fprintf fmt "%a ensures %a" pr p pr q
  | Leadsto (p, q) -> Format.fprintf fmt "%a ↦ %a" pr p pr q);
  if not (S.is_empty t.assumps) then
    Format.fprintf fmt "  [assuming %s]" (String.concat ", " (S.elements t.assumps))

(* ---- hypotheses -------------------------------------------------------- *)

let assume prog ~name concl = mk ~rule:("assume " ^ name) prog concl (S.singleton name)

(* ---- basic rules ------------------------------------------------------- *)

let unless_text prog p q =
  if not (Props.unless prog p q) then
    violation "unless does not follow from the program text";
  mk ~rule:"unless (27), from text" prog (Unless (p, q)) S.empty

let ensures_text prog p q =
  if not (Props.ensures prog p q) then
    violation "ensures does not follow from the program text";
  mk ~rule:"ensures (28), from text" prog (Ensures (p, q)) S.empty

let ensures_intro t =
  match t.concl with
  | Unless (p, q) ->
      let prog = t.prog in
      let space = Program.space prog in
      let m = Space.manager space in
      let lhs = Bdd.conj m [ Program.si prog; p; Bdd.not_ m q ] in
      if
        not
          (List.exists
             (fun s -> Pred.holds_implies space lhs (Stmt.wp space s q))
             (Program.statements prog))
      then violation "ensures_intro: no statement establishes the consequent";
      mk ~rule:"ensures (28), existence from text" ~premises:[ t ] prog (Ensures (p, q))
        t.assumps
  | _ -> violation "ensures_intro expects an unless premise"

let stable_text prog p =
  let m = Space.manager (Program.space prog) in
  if not (Props.stable prog p) then violation "stable does not follow from the program text";
  mk ~rule:"stable (33), from text" prog (Unless (p, Bdd.fls m)) S.empty

let invariant_text ?using prog p =
  let space = Program.space prog in
  let m = Space.manager space in
  let i, assumps =
    match using with
    | None -> (Bdd.tru m, S.empty)
    | Some t ->
        if not (t.prog == prog) then violation "invariant_text: 'using' from another program";
        (match t.concl with
        | Invariant i -> (i, t.assumps)
        | _ -> violation "invariant_text: 'using' is not an invariant")
  in
  if not (Pred.holds_implies space (Program.init prog) p) then
    violation "invariant rule: init does not imply the predicate";
  List.iter
    (fun s ->
      if not (Pred.holds_implies space (Bdd.and_ m p i) (Stmt.wp space s p)) then
        violation "invariant rule: statement %s does not preserve the predicate" (Stmt.name s))
    (Program.statements prog);
  mk ~rule:"invariant (32)"
    ~premises:(match using with Some t -> [ t ] | None -> [])
    prog (Invariant p) assumps

let invariant_from_stable t =
  match t.concl with
  | Unless (p, q) when Bdd.is_false q ->
      let prog = t.prog in
      if not (Pred.holds_implies (Program.space prog) (Program.init prog) p) then
        violation "invariant_from_stable: init does not imply the predicate";
      mk ~rule:"invariant from stable + init" ~premises:[ t ] prog (Invariant p) t.assumps
  | _ -> violation "invariant_from_stable expects a stable premise"

(* ---- leads-to ---------------------------------------------------------- *)

let ensures_leadsto t =
  match t.concl with
  | Ensures (p, q) -> mk ~rule:"↦ intro (29)" ~premises:[ t ] t.prog (Leadsto (p, q)) t.assumps
  | _ -> violation "rule 29 expects an ensures premise"

let leadsto_trans a b =
  same_program a b;
  match (a.concl, b.concl) with
  | Leadsto (p, r), Leadsto (r', q) ->
      if not (Pred.equivalent (sp_of a) r r') then
        violation "transitivity: middle predicates differ";
      mk ~rule:"transitivity (30)" ~premises:[ a; b ] a.prog (Leadsto (p, q))
        (S.union a.assumps b.assumps)
  | _ -> violation "rule 30 expects two leads-to premises"

let leadsto_disj = function
  | [] -> violation "rule 31 needs at least one premise"
  | first :: rest as all ->
      List.iter (same_program first) rest;
      let space = sp_of first in
      let m = man_of first in
      let q0 =
        match first.concl with
        | Leadsto (_, q) -> q
        | _ -> violation "rule 31 expects leads-to premises"
      in
      let ps =
        List.map
          (fun t ->
            match t.concl with
            | Leadsto (p, q) ->
                if not (Pred.equivalent space q q0) then
                  violation "rule 31: premises have different consequents";
                p
            | _ -> violation "rule 31 expects leads-to premises")
          all
      in
      let assumps = List.fold_left (fun acc t -> S.union acc t.assumps) S.empty all in
      mk ~rule:"disjunction (31)" ~premises:all first.prog (Leadsto (Bdd.disj m ps, q0))
        assumps

let leadsto_implication ?using prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let i, assumps =
    match using with
    | None -> (Program.si prog, S.empty)
    | Some t ->
        if not (t.prog == prog) then violation "implication: 'using' from another program";
        (match t.concl with
        | Invariant i -> (i, t.assumps)
        | _ -> violation "implication: 'using' is not an invariant")
  in
  if not (Pred.holds_implies space (Bdd.and_ m i p) q) then
    violation "leads-to implication: the implication does not hold";
  mk ~rule:"↦ implication"
    ~premises:(match using with Some t -> [ t ] | None -> [])
    prog (Leadsto (p, q)) assumps

let leadsto_induction premise ~metric ~bound ~q =
  if bound < 0 then violation "induction: negative bound";
  let prems = List.init (bound + 1) premise in
  let t0 = List.hd prems in
  let prog = t0.prog in
  let space = sp_of t0 in
  let m = man_of t0 in
  let below k = Bdd.disj m (List.init k metric) in
  let assumps = ref S.empty in
  List.iteri
    (fun k t ->
      same_program t0 t;
      (match t.concl with
      | Leadsto (a, b) ->
          if not (Pred.equivalent space a (metric k)) then
            violation "induction: premise %d has the wrong antecedent" k;
          if not (Pred.holds_implies space b (Bdd.or_ m (below k) q)) then
            violation "induction: premise %d does not decrease the metric" k
      | _ -> violation "induction: premise %d is not a leads-to" k);
      assumps := S.union !assumps t.assumps)
    prems;
  mk ~rule:"induction" ~premises:prems prog (Leadsto (below (bound + 1), q)) !assumps

let conj_invariant = function
  | [] -> violation "conj_invariant needs at least one premise"
  | first :: rest as all ->
      List.iter (same_program first) rest;
      let m = man_of first in
      let preds =
        List.map
          (fun t ->
            match t.concl with
            | Invariant i -> i
            | _ -> violation "conj_invariant expects invariant premises")
          all
      in
      let assumps = List.fold_left (fun acc t -> S.union acc t.assumps) S.empty all in
      mk ~rule:"invariant conjunction" ~premises:all first.prog
        (Invariant (Bdd.conj m preds))
        assumps

let weaken_invariant t p =
  match t.concl with
  | Invariant i ->
      if not (Pred.holds_implies (sp_of t) i p) then
        violation "weaken_invariant: the invariant does not imply the predicate";
      mk ~rule:"invariant weakening" ~premises:[ t ] t.prog (Invariant p) t.assumps
  | _ -> violation "weaken_invariant expects an invariant premise"

let leadsto_model_checked prog p q =
  if not (Props.leads_to prog p q) then
    violation "leadsto_model_checked: the property fails on the model";
  mk ~rule:"model-checked (reflection)" prog (Leadsto (p, q)) S.empty

(* ---- metatheorems ------------------------------------------------------ *)

let substitution inv t target =
  same_program inv t;
  let space = sp_of t in
  let m = man_of t in
  let i =
    match inv.concl with
    | Invariant i -> i
    | _ -> violation "substitution: first premise must be an invariant"
  in
  let agree x x' =
    if not (Bdd.implies m (Bdd.and_ m (Space.domain space) i) (Bdd.iff m x x')) then
      violation "substitution: predicates differ where the invariant holds"
  in
  (match (t.concl, target) with
  | Invariant p, Invariant p' -> agree p p'
  | Unless (p, q), Unless (p', q') | Ensures (p, q), Ensures (p', q')
  | Leadsto (p, q), Leadsto (p', q') ->
      agree p p';
      agree q q'
  | _ -> violation "substitution: target judgment has a different shape");
  mk ~rule:"substitution (8.1)" ~premises:[ inv; t ] t.prog target
    (S.union inv.assumps t.assumps)

let weaken_unless t r =
  match t.concl with
  | Unless (p, q) ->
      if not (Pred.holds_implies (sp_of t) q r) then
        violation "consequence weakening: q does not imply r";
      mk ~rule:"consequence weakening (8.2)" ~premises:[ t ] t.prog (Unless (p, r)) t.assumps
  | _ -> violation "weaken_unless expects an unless premise"

let weaken_leadsto t r =
  match t.concl with
  | Leadsto (p, q) ->
      if not (Pred.holds_implies (sp_of t) q r) then
        violation "consequence weakening: q does not imply r";
      mk ~rule:"consequence weakening (8.2)" ~premises:[ t ] t.prog (Leadsto (p, r)) t.assumps
  | _ -> violation "weaken_leadsto expects a leads-to premise"

let strengthen_leadsto p' t =
  match t.concl with
  | Leadsto (p, q) ->
      if not (Pred.holds_implies (sp_of t) p' p) then
        violation "antecedent strengthening: p' does not imply p";
      mk ~rule:"antecedent strengthening" ~premises:[ t ] t.prog (Leadsto (p', q)) t.assumps
  | _ -> violation "strengthen_leadsto expects a leads-to premise"

let conj_unless_simple a b =
  same_program a b;
  let m = man_of a in
  match (a.concl, b.concl) with
  | Unless (p, q), Unless (p', q') ->
      mk ~rule:"simple conjunction (8.3)" ~premises:[ a; b ] a.prog
        (Unless (Bdd.and_ m p p', Bdd.or_ m q q'))
        (S.union a.assumps b.assumps)
  | _ -> violation "conjunction expects two unless premises"

let conj_unless a b =
  same_program a b;
  let m = man_of a in
  match (a.concl, b.concl) with
  | Unless (p, q), Unless (p', q') ->
      let rhs =
        Bdd.disj m [ Bdd.and_ m p q'; Bdd.and_ m p' q; Bdd.and_ m q q' ]
      in
      mk ~rule:"conjunction (8.3)" ~premises:[ a; b ] a.prog
        (Unless (Bdd.and_ m p p', rhs))
        (S.union a.assumps b.assumps)
  | _ -> violation "conjunction expects two unless premises"

let cancellation a b =
  same_program a b;
  let space = sp_of a in
  let m = man_of a in
  match (a.concl, b.concl) with
  | Unless (p, q), Unless (q', r) ->
      if not (Pred.equivalent space q q') then
        violation "cancellation: middle predicates differ";
      mk ~rule:"cancellation (8.4)" ~premises:[ a; b ] a.prog
        (Unless (Bdd.or_ m p q, r))
        (S.union a.assumps b.assumps)
  | _ -> violation "cancellation expects two unless premises"

let general_disjunction = function
  | [] -> violation "generalized disjunction needs at least one premise"
  | first :: rest as all ->
      List.iter (same_program first) rest;
      let m = man_of first in
      let pairs =
        List.map
          (fun t ->
            match t.concl with
            | Unless (p, q) -> (p, q)
            | _ -> violation "generalized disjunction expects unless premises")
          all
      in
      let lhs = Bdd.disj m (List.map fst pairs) in
      let side =
        Bdd.conj m (List.map (fun (p, q) -> Bdd.or_ m (Bdd.not_ m p) q) pairs)
      in
      let some_q = Bdd.disj m (List.map snd pairs) in
      let assumps = List.fold_left (fun acc t -> S.union acc t.assumps) S.empty all in
      mk ~rule:"generalized disjunction (8.5)" ~premises:all first.prog
        (Unless (lhs, Bdd.and_ m side some_q))
        assumps

let psp a b =
  same_program a b;
  let m = man_of a in
  match (a.concl, b.concl) with
  | Leadsto (p, q), Unless (r, bb) ->
      mk ~rule:"PSP (8.6)" ~premises:[ a; b ] a.prog
        (Leadsto (Bdd.and_ m p r, Bdd.or_ m (Bdd.and_ m q r) bb))
        (S.union a.assumps b.assumps)
  | _ -> violation "PSP expects a leads-to and an unless premise"

let rule t = t.rule
let premises t = t.premises

let rec pp_judgment_short space fmt = function
  | Invariant p ->
      Format.fprintf fmt "invariant ⟨%d states⟩" (Space.count_states_of space p)
  | Unless (p, q) when Bdd.is_false q ->
      Format.fprintf fmt "stable ⟨%d⟩" (Space.count_states_of space p)
  | Unless (p, q) ->
      Format.fprintf fmt "⟨%d⟩ unless ⟨%d⟩" (Space.count_states_of space p)
        (Space.count_states_of space q)
  | Ensures (p, q) ->
      Format.fprintf fmt "⟨%d⟩ ensures ⟨%d⟩" (Space.count_states_of space p)
        (Space.count_states_of space q)
  | Leadsto (p, q) ->
      Format.fprintf fmt "⟨%d⟩ ↦ ⟨%d⟩" (Space.count_states_of space p)
        (Space.count_states_of space q)

and pp_derivation fmt t =
  let space = sp_of t in
  let rec go indent t =
    Format.fprintf fmt "%s%a   {%s}@." indent (pp_judgment_short space) t.concl t.rule;
    List.iter (go (indent ^ "  ")) t.premises
  in
  go "" t

let derivation_size t =
  let rec go t = 1 + List.fold_left (fun acc p -> acc + go p) 0 t.premises in
  go t

let rules_used t =
  let acc = ref S.empty in
  let rec go t =
    acc := S.add t.rule !acc;
    List.iter go t.premises
  in
  go t;
  S.elements !acc

let psp_stable l u =
  match (u.concl, l.concl) with
  | Unless (r, bb), Leadsto (_, q) when Bdd.is_false bb ->
      (* psp already yields (q ∧ r) ∨ false = q ∧ r; the weaken validates
         and renames the step *)
      let m = man_of l in
      weaken_leadsto (psp l u) (Bdd.and_ m q r)
  | Unless (_, _), Leadsto (_, _) -> violation "psp_stable expects a stable second premise"
  | _ -> violation "psp_stable expects a leads-to and a stable premise"

let completion = function
  | [] -> violation "completion needs at least one premise pair"
  | ((l0, _) :: _ as pairs) ->
      let space = sp_of l0 in
      let m = man_of l0 in
      (* extract the shared b from the first unless premise *)
      let b =
        match (snd (List.hd pairs)).concl with
        | Unless (_, b) -> b
        | _ -> violation "completion: second components must be unless"
      in
      let ps, qs =
        List.split
          (List.map
             (fun (l, u) ->
               same_program l0 l;
               same_program l0 u;
               match (l.concl, u.concl) with
               | Leadsto (p, qb), Unless (q, b') ->
                   if not (Pred.equivalent space b b') then
                     violation "completion: premises disagree on b";
                   if not (Pred.equivalent space qb (Bdd.or_ m q b)) then
                     violation "completion: leads-to consequent is not q ∨ b";
                   (p, q)
               | _ -> violation "completion expects (leads-to, unless) pairs")
             pairs)
      in
      let assumps =
        List.fold_left
          (fun acc (l, u) -> S.union acc (S.union l.assumps u.assumps))
          S.empty pairs
      in
      mk ~rule:"completion" ~premises:(List.concat_map (fun (l, u) -> [ l; u ]) pairs)
        l0.prog
        (Leadsto (Bdd.conj m ps, Bdd.or_ m (Bdd.conj m qs) b))
        assumps

(* ---- semantic re-check ------------------------------------------------- *)

let check t =
  match t.concl with
  | Invariant p -> Props.invariant t.prog p
  | Unless (p, q) -> Props.unless t.prog p q
  | Ensures (p, q) -> Props.ensures t.prog p q
  | Leadsto (p, q) -> Props.leads_to t.prog p q
