open Kpt_predicate
open Kpt_unity

type mapping = Space.state -> Space.state

type failure = {
  at : Space.state;
  statement : string;
  image_from : Space.state;
  image_to : Space.state;
}

type result = Simulates | Init_escapes of Space.state | Step_escapes of failure

(* Explicit reachable states of a program (local copy to avoid a dependency
   cycle with kpt_runs). *)
let reachable prog =
  let space = Program.space prog in
  let vars = Array.of_list (Space.vars space) in
  let code st =
    let c = ref 0 in
    Array.iteri (fun k v -> c := (!c * Space.card v) + st.(k)) vars;
    !c
  in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let push st =
    if not (Hashtbl.mem seen (code st)) then begin
      Hashtbl.add seen (code st) (Array.copy st);
      Queue.add (Array.copy st) queue
    end
  in
  List.iter push (Space.states_of space (Program.init prog));
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    List.iter (fun s -> push (Stmt.exec space s st)) (Program.statements prog)
  done;
  (seen, code)

let check ~abstract ~concrete ~map =
  let csp = Program.space concrete in
  let asp = Program.space abstract in
  let creach, _ = reachable concrete in
  let cinit = Space.states_of csp (Program.init concrete) in
  let init_escape =
    List.find_opt (fun st -> not (Space.holds_at asp (Program.init abstract) (map st))) cinit
  in
  match init_escape with
  | Some st -> Init_escapes st
  | None ->
      let astmts = Program.statements abstract in
      let exception Found of failure in
      (try
         Hashtbl.iter
           (fun _ st ->
             let img = map st in
             List.iter
               (fun cs ->
                 let st' = Stmt.exec csp cs st in
                 let img' = map st' in
                 if img' <> img then
                   let matched =
                     List.exists (fun as_ -> Stmt.exec asp as_ img = img') astmts
                   in
                   if not (matched) then
                     raise
                       (Found
                          {
                            at = Array.copy st;
                            statement = Stmt.name cs;
                            image_from = img;
                            image_to = img';
                          }))
               (Program.statements concrete))
           creach;
         Simulates
       with Found f -> Step_escapes f)

let simulates ~abstract ~concrete ~map =
  match check ~abstract ~concrete ~map with Simulates -> true | _ -> false

let pull_back ~abstract ~concrete ~map p =
  let csp = Program.space concrete in
  let asp = Program.space abstract in
  let m = Space.manager csp in
  let creach, _ = reachable concrete in
  let acc = ref (Bdd.fls m) in
  Hashtbl.iter
    (fun _ st ->
      if Space.holds_at asp p (map st) then
        acc := Bdd.or_ m !acc (Space.pred_of_state csp st))
    creach;
  !acc

let transfers_invariant ~abstract ~concrete ~map p =
  simulates ~abstract ~concrete ~map
  && Program.invariant abstract p
  && Program.invariant concrete (pull_back ~abstract ~concrete ~map p)

let project csp asp renames st =
  let avars = Space.vars asp in
  let out = Array.make (List.length avars) 0 in
  List.iter
    (fun av ->
      let name = Space.name av in
      let value =
        match List.assoc_opt name renames with
        | Some f -> f st.(Space.idx (Space.find csp name))
        | None -> st.(Space.idx (Space.find csp name))
      in
      out.(Space.idx av) <- value)
    avars;
  out
