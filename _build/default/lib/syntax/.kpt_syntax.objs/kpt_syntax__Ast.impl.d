lib/syntax/ast.ml: Format List String
