lib/syntax/parser.ml: Ast Format List Printf Token
