lib/syntax/ast.mli: Format
