lib/syntax/token.ml: Format List Printf String
