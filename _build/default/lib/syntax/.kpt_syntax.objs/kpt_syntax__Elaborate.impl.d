lib/syntax/elaborate.ml: Array Ast Expr Format Hashtbl Kbp Kform Kpt_core Kpt_predicate Kpt_unity List Printf Process Space Stmt String
