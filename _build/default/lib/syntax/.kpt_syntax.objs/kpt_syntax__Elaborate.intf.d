lib/syntax/elaborate.mli: Ast Kbp Kpt_core Kpt_predicate Kpt_unity Space
