lib/syntax/parser.mli: Ast
