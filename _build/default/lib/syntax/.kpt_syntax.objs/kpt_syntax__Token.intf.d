lib/syntax/token.mli:
