(** Knowledge dynamics: how processes {e learn} — and {e forget}.

    §3 fixes the view to the projection of the {e current} state: "any
    function of the process's history may be included in the state by
    explicitly including appropriate history variables.  Thus it is
    possible, in the same framework, to reason about programs where
    processes must remember part or all of their history … and where
    they do not."

    The flip side is that without history variables knowledge is {e not}
    monotone along runs: overwriting the register that carried the
    evidence destroys the knowledge.  This module computes, per
    statement, where knowledge is gained and where it is lost — the
    state-based analogue of the [CM86] "how processes learn" analysis —
    and the test-suite experiment shows a concrete case in the Figure-4
    protocol: the sender {e forgets} [K_S(j ≥ k)] when a dropped ack
    overwrites [z], while the receiver never forgets [K_R(x_k = α)]
    because the delivered prefix [w] is precisely a history variable. *)

open Kpt_predicate
open Kpt_unity

val learns : Program.t -> string -> Bdd.t -> Stmt.t -> Bdd.t
(** Reachable states where the process does not know [p] but will after
    this statement executes. *)

val forgets : Program.t -> string -> Bdd.t -> Stmt.t -> Bdd.t
(** Reachable states where the process knows [p] and will not after this
    statement executes.  Non-empty ⇔ no perfect recall for this fact. *)

val knowledge_stable : Program.t -> string -> Bdd.t -> bool
(** No statement ever destroys [K_i p] — the semantic version of the
    paper's Kbp-3/Kbp-4 stability assumptions. *)

val learning_statements : Program.t -> string -> Bdd.t -> string list
(** Names of statements that can establish [K_i p] somewhere reachable. *)

val forgetting_statements : Program.t -> string -> Bdd.t -> string list
(** Names of statements that can destroy [K_i p] somewhere reachable. *)
