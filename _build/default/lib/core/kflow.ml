open Kpt_predicate
open Kpt_unity

let knows prog pname p = Knowledge.knows_in prog pname p

let transition prog pname p s ~before ~after =
  let space = Program.space prog in
  let m = Space.manager space in
  let k = knows prog pname p in
  let pre = if before then k else Bdd.not_ m k in
  let post = Stmt.wp space s (if after then k else Bdd.not_ m k) in
  Bdd.conj m [ Program.si prog; pre; post ]

let learns prog pname p s = transition prog pname p s ~before:false ~after:true
let forgets prog pname p s = transition prog pname p s ~before:true ~after:false

let knowledge_stable prog pname p =
  List.for_all (fun s -> Bdd.is_false (forgets prog pname p s)) (Program.statements prog)

let statements_where prog f =
  List.filter_map
    (fun s -> if Bdd.is_false (f s) then None else Some (Stmt.name s))
    (Program.statements prog)

let learning_statements prog pname p = statements_where prog (learns prog pname p)
let forgetting_statements prog pname p = statements_where prog (forgets prog pname p)
