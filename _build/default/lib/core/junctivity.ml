open Kpt_predicate

type failure = { inputs : Bdd.t list; note : string }

(* A pool of predicates to probe with: random ones, their pairwise meets
   and joins (so ⇒-related pairs are guaranteed to occur), plus the
   constants. *)
let pool sp rng samples =
  let m = Space.manager sp in
  let randoms = List.init samples (fun _ -> Pred.random rng sp) in
  let derived =
    List.concat_map
      (fun p -> List.concat_map (fun q -> [ Bdd.and_ m p q; Bdd.or_ m p q ]) randoms)
      randoms
  in
  Bdd.tru m :: Bdd.fls m :: (randoms @ derived)

let monotonic sp f ?(samples = 6) rng =
  let ps = pool sp rng samples in
  let rec search = function
    | [] -> None
    | p :: rest ->
        let bad =
          List.find_opt
            (fun q -> Pred.holds_implies sp p q && not (Pred.holds_implies sp (f p) (f q)))
            ps
        in
        (match bad with
        | Some q -> Some { inputs = [ p; q ]; note = "p ⇒ q but ¬(f.p ⇒ f.q)" }
        | None -> search rest)
  in
  search ps

let universally_conjunctive sp f ?(samples = 6) rng =
  let m = Space.manager sp in
  let ps = Array.of_list (pool sp rng samples) in
  let n = Array.length ps in
  let check family =
    let lhs = Bdd.conj m (List.map f family) in
    let rhs = f (Bdd.conj m family) in
    if Pred.equivalent sp lhs rhs then None
    else Some { inputs = family; note = "⋀ f.vᵢ ≠ f.(⋀ vᵢ)" }
  in
  (* empty family: ⋀ over ∅ is true on both sides *)
  match check [] with
  | Some w -> Some w
  | None ->
      let found = ref None in
      (try
         for i = 0 to n - 1 do
           for j = i to n - 1 do
             match check [ ps.(i); ps.(j) ] with
             | Some w ->
                 found := Some w;
                 raise Exit
             | None -> ()
           done
         done;
         for i = 0 to min 4 (n - 1) do
           for j = 0 to min 4 (n - 1) do
             for l = 0 to min 4 (n - 1) do
               match check [ ps.(i); ps.(j); ps.(l) ] with
               | Some w ->
                   found := Some w;
                   raise Exit
               | None -> ()
             done
           done
         done
       with Exit -> ());
      !found

let finitely_disjunctive sp f ?(samples = 6) rng =
  let m = Space.manager sp in
  let ps = Array.of_list (pool sp rng samples) in
  let n = Array.length ps in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i to n - 1 do
         let p = ps.(i) and q = ps.(j) in
         let lhs = Bdd.or_ m (f p) (f q) in
         let rhs = f (Bdd.or_ m p q) in
         if not (Pred.equivalent sp lhs rhs) then begin
           found := Some { inputs = [ p; q ]; note = "f.p ∨ f.q ≠ f.(p ∨ q)" };
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let and_over_chain_continuous sp f ?(samples = 6) rng =
  let m = Space.manager sp in
  let found = ref None in
  (try
     for _ = 1 to samples do
       (* build a random ⇒-chain v₀ ⇒ v₁ ⇒ v₂ by successive joins *)
       let v0 = Pred.random rng sp in
       let v1 = Bdd.or_ m v0 (Pred.random rng sp) in
       let v2 = Bdd.or_ m v1 (Pred.random rng sp) in
       let chain = [ v0; v1; v2 ] in
       let lhs = Bdd.disj m (List.map f chain) in
       let rhs = f (Bdd.disj m chain) in
       if not (Pred.equivalent sp lhs rhs) then begin
         found := Some { inputs = chain; note = "(∃i :: f.vᵢ) ≠ f.(∃i :: vᵢ)" };
         raise Exit
       end
     done
   with Exit -> ());
  !found
