lib/core/kflow.mli: Bdd Kpt_predicate Kpt_unity Program Stmt
