lib/core/kbp.ml: Array Bdd Expr Format Hashtbl Kform Kpt_predicate Kpt_unity List Logs Pred Printf Process Program Queue Space Stmt
