lib/core/wcyl.mli: Bdd Kpt_predicate Space
