lib/core/junctivity.ml: Array Bdd Kpt_predicate List Pred Space
