lib/core/knowledge.mli: Bdd Kpt_predicate Kpt_unity Process Program Space
