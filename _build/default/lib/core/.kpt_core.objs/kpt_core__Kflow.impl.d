lib/core/kflow.ml: Bdd Knowledge Kpt_predicate Kpt_unity List Program Space Stmt
