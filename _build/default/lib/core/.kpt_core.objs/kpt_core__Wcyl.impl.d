lib/core/wcyl.ml: Kpt_predicate Pred
