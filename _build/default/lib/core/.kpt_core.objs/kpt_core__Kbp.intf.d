lib/core/kbp.mli: Bdd Expr Format Kform Kpt_predicate Kpt_unity Process Program Space
