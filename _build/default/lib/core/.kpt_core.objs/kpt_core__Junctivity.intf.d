lib/core/junctivity.mli: Bdd Kpt_predicate Random Space
