lib/core/kform.ml: Bdd Expr Format Knowledge Kpt_predicate Kpt_unity List Space String
