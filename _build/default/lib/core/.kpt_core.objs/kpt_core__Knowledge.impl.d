lib/core/knowledge.ml: Bdd Kpt_predicate Kpt_unity List Pred Process Program Space Wcyl
