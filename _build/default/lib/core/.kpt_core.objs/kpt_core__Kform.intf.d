lib/core/kform.mli: Bdd Expr Format Kpt_predicate Kpt_unity Process Space
