open Kpt_predicate

let wcyl sp v p = Pred.forall_vars sp (Pred.complement_vars sp v) p
let is_cylinder sp v p = Pred.depends_only_on sp p v
