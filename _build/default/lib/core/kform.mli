(** Knowledge formulas: the guard language of knowledge-based protocols
    (§4).  A knowledge formula is a Boolean combination of ordinary
    expressions and knowledge operators [K_i φ] (which may nest, as in the
    sequence-transmission protocol's [K_S K_R x_k]).

    A knowledge formula only denotes a predicate {e relative to a
    strongest invariant}; [compile] performs that denotation.  This is
    exactly the circularity of §4: the program's [SP] depends on [SI]
    which depends on [SP]. *)

open Kpt_predicate
open Kpt_unity

type t =
  | Base of Expr.t  (** an ordinary Boolean expression *)
  | Knot of t
  | Kand of t * t
  | Kor of t * t
  | Kimp of t * t
  | K of string * t  (** [K process φ] *)
  | Ek of string list * t  (** everyone in the group knows φ *)
  | Ck of string list * t  (** common knowledge in the group (§3's extension) *)
  | Dk of string list * t  (** distributed knowledge in the group *)

val base : Expr.t -> t
val k : string -> t -> t
val ek : string list -> t -> t
val ck : string list -> t -> t
val dk : string list -> t -> t
val knot : t -> t
val ( &&. ) : t -> t -> t
val ( ||. ) : t -> t -> t
val ( ==>. ) : t -> t -> t

val is_standard : t -> bool
(** No [K] operator occurs: the formula is an ordinary guard. *)

val processes_of : t -> string list
(** Names of processes mentioned by [K] operators (sorted, unique). *)

val compile :
  Space.t -> lookup:(string -> Process.t) -> si:Bdd.t -> t -> Bdd.t
(** Denote the formula as a predicate, evaluating every [K_i] with
    {!Knowledge.knows} at the given candidate [SI].  Nested operators are
    evaluated inside-out. *)

val pp : Format.formatter -> t -> unit
