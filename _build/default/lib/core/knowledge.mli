(** The knowledge predicate transformer (§3).

    [K_i p ≝ p ∧ (wcyl.vars_i.(SI ⇒ p) ∨ ¬SI)]    (eq. 13)

    Process [i] knows [p] at a state iff [p] holds in every reachable
    state (state of [SI]) that [i] cannot distinguish from it — i.e. that
    agrees with it on [i]'s variables; on unreachable states [K_i p] is
    defined to coincide with [p] (the paper's technical convenience).

    The S5 laws (eqs. 14–18), the junctivity properties (19–22) and the
    invariant correspondences (23–24) all hold of this definition and are
    exercised in the test suite.

    Extensions mentioned at the end of §3: everyone-knows [E_G],
    common knowledge [C_G] (greatest fixpoint) and distributed knowledge
    [D_G] (the group pools its variables). *)

open Kpt_predicate
open Kpt_unity

val knows : Space.t -> si:Bdd.t -> Process.t -> Bdd.t -> Bdd.t
(** [K_i p] with an explicit strongest invariant. *)

val knows_in : Program.t -> string -> Bdd.t -> Bdd.t
(** [K_i p] in a program, by process name, with [SI] computed from the
    program.  @raise Not_found for an unknown process. *)

val everyone_knows : Space.t -> si:Bdd.t -> Process.t list -> Bdd.t -> Bdd.t
(** [E_G p = (∀i ∈ G :: K_i p)]. *)

val common_knowledge : Space.t -> si:Bdd.t -> Process.t list -> Bdd.t -> Bdd.t
(** [C_G p]: greatest fixpoint of [X ↦ E_G (p ∧ X)] — what everyone
    knows, everyone knows everyone knows, … *)

val distributed_knowledge : Space.t -> si:Bdd.t -> Process.t list -> Bdd.t -> Bdd.t
(** [D_G p]: knowledge of the "virtual" process that can access the union
    of the group's variables. *)
