(** Junctivity testers (§2): decide, for a predicate transformer on a
    {e small} space, the properties the paper's theory turns on —
    monotonicity, universal conjunctivity, finite disjunctivity,
    or-continuity — and produce counterexample witnesses.

    On a finite space, or-continuity of a monotonic transformer reduces
    to finite disjunctivity over chains; we test junctivity over random
    and exhaustive predicate families.  These testers are what turns the
    paper's central negative results (non-monotonicity of [ŜP], eq. 12's
    failure of disjunctivity for [wcyl]/[K_i]) into executable checks. *)

open Kpt_predicate

type failure = { inputs : Bdd.t list; note : string }
(** A witness family on which the property fails. *)

val monotonic :
  Space.t -> (Bdd.t -> Bdd.t) -> ?samples:int -> Random.State.t -> failure option
(** Search for [p ⇒ q] with [¬(f.p ⇒ f.q)].  [None] = no counterexample
    found (exhaustive over pairs drawn from [samples] random predicates
    plus their meets/joins). *)

val universally_conjunctive :
  Space.t -> (Bdd.t -> Bdd.t) -> ?samples:int -> Random.State.t -> failure option
(** Search for a finite family with [⋀ f.vᵢ ≠ f.(⋀ vᵢ)] (families of
    size 0, 2 and 3 are tried; universal conjunctivity over a finite
    space follows from these plus monotonicity). *)

val finitely_disjunctive :
  Space.t -> (Bdd.t -> Bdd.t) -> ?samples:int -> Random.State.t -> failure option
(** Search for [f.p ∨ f.q ≠ f.(p ∨ q)]. *)

val and_over_chain_continuous :
  Space.t -> (Bdd.t -> Bdd.t) -> ?samples:int -> Random.State.t -> failure option
(** Or-continuity witness search: a ⇒-chain [v₀ ⇒ v₁ ⇒ …] with
    [(∃i :: f.vᵢ) ≠ f.(∃i :: vᵢ)]. *)
