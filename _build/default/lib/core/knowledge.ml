open Kpt_predicate
open Kpt_unity

let knows sp ~si proc p =
  let m = Space.manager sp in
  let cyl = Wcyl.wcyl sp (Process.vars proc) (Bdd.imp m si p) in
  Bdd.and_ m p (Bdd.or_ m cyl (Bdd.not_ m si))

let knows_in prog pname p =
  let proc = Program.find_process prog pname in
  knows (Program.space prog) ~si:(Program.si prog) proc p

let everyone_knows sp ~si group p =
  let m = Space.manager sp in
  Bdd.conj m (List.map (fun proc -> knows sp ~si proc p) group)

(* Greatest fixpoint of x ↦ E(p ∧ x) (eq. 16).  The weakest cylinder is
   universally conjunctive, so wcyl_i(si ⇒ p ∧ x) splits into
   wcyl_i(si ⇒ p) ∧ wcyl_i(si ⇒ x) — identical BDDs by canonicity — and
   the p-cylinder of every process can be computed once, outside the
   fixpoint loop; each round only re-cylinders the shrinking x. *)
let common_knowledge sp ~si group p =
  let m = Space.manager sp in
  let not_si = Bdd.not_ m si in
  let per_proc =
    List.map
      (fun proc ->
        let vs = Process.vars proc in
        (vs, Wcyl.wcyl sp vs (Bdd.imp m si p)))
      group
  in
  let everyone_knows_p_and x =
    let q = Bdd.and_ m p x in
    Bdd.conj m
      (List.map
         (fun (vs, cyl_p) ->
           let cyl_x = Wcyl.wcyl sp vs (Bdd.imp m si x) in
           Bdd.and_ m q (Bdd.or_ m (Bdd.and_ m cyl_p cyl_x) not_si))
         per_proc)
  in
  let rec go x nx =
    let x' = everyone_knows_p_and x in
    let nx' = Pred.normalize sp x' in
    if Bdd.equal nx nx' then x' else go x' nx'
  in
  let x0 = Bdd.tru m in
  go x0 (Pred.normalize sp x0)

let distributed_knowledge sp ~si group p =
  let pooled =
    List.sort_uniq
      (fun a b -> compare (Space.idx a) (Space.idx b))
      (List.concat_map Process.vars group)
  in
  knows sp ~si (Process.make "⟨group⟩" pooled) p
