open Kpt_predicate
open Kpt_unity

let knows sp ~si proc p =
  let m = Space.manager sp in
  let cyl = Wcyl.wcyl sp (Process.vars proc) (Bdd.imp m si p) in
  Bdd.and_ m p (Bdd.or_ m cyl (Bdd.not_ m si))

let knows_in prog pname p =
  let proc = Program.find_process prog pname in
  knows (Program.space prog) ~si:(Program.si prog) proc p

let everyone_knows sp ~si group p =
  let m = Space.manager sp in
  Bdd.conj m (List.map (fun proc -> knows sp ~si proc p) group)

let common_knowledge sp ~si group p =
  let m = Space.manager sp in
  let rec go x =
    let x' = everyone_knows sp ~si group (Bdd.and_ m p x) in
    if Bdd.equal (Pred.normalize sp x) (Pred.normalize sp x') then x' else go x'
  in
  go (Bdd.tru m)

let distributed_knowledge sp ~si group p =
  let pooled =
    List.sort_uniq
      (fun a b -> compare (Space.idx a) (Space.idx b))
      (List.concat_map Process.vars group)
  in
  knows sp ~si (Process.make "⟨group⟩" pooled) p
