(** The weakest cylinder (§3, eq. 6):

    [wcyl.V.p ≝ (∀ V̄ :: p)]

    — the weakest predicate at most as strong as [p] which depends only on
    the variables in [V] ([V̄] is the complement of [V] in the program
    variables).  Properties 7–12 of the paper hold of this function and
    are exercised in the test suite; notably [wcyl] is universally
    conjunctive (11) but {e not} disjunctive (12). *)

open Kpt_predicate

val wcyl : Space.t -> Space.var list -> Bdd.t -> Bdd.t
(** [wcyl sp v p]: quantify [p] universally over every variable outside
    [v] (over type-correct values). *)

val is_cylinder : Space.t -> Space.var list -> Bdd.t -> bool
(** Does [p] depend only on the variables in [v]?  (Property 9's
    precondition.) *)
