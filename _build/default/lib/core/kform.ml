open Kpt_predicate
open Kpt_unity

type t =
  | Base of Expr.t
  | Knot of t
  | Kand of t * t
  | Kor of t * t
  | Kimp of t * t
  | K of string * t
  | Ek of string list * t
  | Ck of string list * t
  | Dk of string list * t

let base e = Base e
let k name f = K (name, f)
let ek group f = Ek (group, f)
let ck group f = Ck (group, f)
let dk group f = Dk (group, f)
let knot f = Knot f
let ( &&. ) a b = Kand (a, b)
let ( ||. ) a b = Kor (a, b)
let ( ==>. ) a b = Kimp (a, b)

let rec is_standard = function
  | Base _ -> true
  | Knot f -> is_standard f
  | Kand (a, b) | Kor (a, b) | Kimp (a, b) -> is_standard a && is_standard b
  | K _ | Ek _ | Ck _ | Dk _ -> false

let processes_of f =
  let rec go acc = function
    | Base _ -> acc
    | Knot f -> go acc f
    | Kand (a, b) | Kor (a, b) | Kimp (a, b) -> go (go acc a) b
    | K (name, f) -> go (name :: acc) f
    | Ek (group, f) | Ck (group, f) | Dk (group, f) -> go (group @ acc) f
  in
  List.sort_uniq compare (go [] f)

let rec compile sp ~lookup ~si = function
  | Base e -> Expr.compile_bool sp e
  | Knot f -> Bdd.not_ (Space.manager sp) (compile sp ~lookup ~si f)
  | Kand (a, b) ->
      Bdd.and_ (Space.manager sp) (compile sp ~lookup ~si a) (compile sp ~lookup ~si b)
  | Kor (a, b) ->
      Bdd.or_ (Space.manager sp) (compile sp ~lookup ~si a) (compile sp ~lookup ~si b)
  | Kimp (a, b) ->
      Bdd.imp (Space.manager sp) (compile sp ~lookup ~si a) (compile sp ~lookup ~si b)
  | K (name, f) -> Knowledge.knows sp ~si (lookup name) (compile sp ~lookup ~si f)
  | Ek (group, f) ->
      Knowledge.everyone_knows sp ~si (List.map lookup group) (compile sp ~lookup ~si f)
  | Ck (group, f) ->
      Knowledge.common_knowledge sp ~si (List.map lookup group) (compile sp ~lookup ~si f)
  | Dk (group, f) ->
      Knowledge.distributed_knowledge sp ~si (List.map lookup group) (compile sp ~lookup ~si f)

let rec pp fmt = function
  | Base e -> Expr.pp fmt e
  | Knot f -> Format.fprintf fmt "¬%a" pp_atom f
  | Kand (a, b) -> Format.fprintf fmt "%a ∧ %a" pp_atom a pp_atom b
  | Kor (a, b) -> Format.fprintf fmt "%a ∨ %a" pp_atom a pp_atom b
  | Kimp (a, b) -> Format.fprintf fmt "%a ⇒ %a" pp_atom a pp_atom b
  | K (name, f) -> Format.fprintf fmt "K_%s%a" name pp_atom f
  | Ek (group, f) -> Format.fprintf fmt "E_{%s}%a" (String.concat "," group) pp_atom f
  | Ck (group, f) -> Format.fprintf fmt "C_{%s}%a" (String.concat "," group) pp_atom f
  | Dk (group, f) -> Format.fprintf fmt "D_{%s}%a" (String.concat "," group) pp_atom f

and pp_atom fmt f =
  match f with
  | Base (Expr.Cbool _ | Expr.Cint _ | Expr.Var _) | Knot _ | K _ | Ek _ | Ck _ | Dk _ ->
      Format.fprintf fmt "%a" pp f
  | _ -> Format.fprintf fmt "(%a)" pp f
