(** Explicit-state reachability and run-based (Halpern–Moses style)
    knowledge.

    §3 argues that the predicate-transformer [K_i] coincides with the
    view-based definition of [HM90] when the view is the projection of
    the current global state onto the process's variables and the
    possible points are the reachable states.  This module computes that
    run-based knowledge {e directly} — enumerate reachable states by
    explicit BFS, group them by view, quantify over each group — so the
    test suite can confirm the two definitions agree, validating the BDD
    layer against the operational semantics. *)

open Kpt_predicate
open Kpt_unity

val reachable : Program.t -> Space.state list
(** Explicit breadth-first closure of the initial states under all
    statements. *)

val si_agrees : Program.t -> bool
(** Does the explicit reachable set coincide with the symbolic [SI]? *)

val view_knows :
  ?worlds:Space.state list ->
  Program.t -> Process.t -> (Space.state -> bool) -> Space.state -> bool
(** [view_knows prog i p st]: at reachable state [st], does process [i]
    know [p] in the run-based sense — i.e. does [p] hold at {e every}
    reachable state with the same projection onto [i]'s variables?
    Pass [worlds] (the precomputed reachable set) when calling in a loop;
    otherwise it is recomputed. *)

val knowledge_agrees : Program.t -> string -> Bdd.t -> bool
(** Compare {!Kpt_core.Knowledge.knows_in} with {!view_knows} on every
    reachable state. *)
