(** Concrete execution of UNITY programs: the paper's run semantics.

    "An execution of a program begins in a state satisfying init, then
    repeatedly executes, atomically, statements of the program.  The
    choice of the statement to execute at each step is non-deterministic
    with a fairness constraint that each statement must be attempted
    infinitely often." (§5)

    This module produces finite prefixes of such executions under several
    schedulers.  Unlike the symbolic layer it never builds BDDs, so it
    scales to the large instances used by the benchmarks. *)

open Kpt_predicate
open Kpt_unity

type scheduler =
  | Round_robin
      (** Statements in cyclic order — the canonical fair scheduler. *)
  | Random_fair of int
      (** Uniform random choice (seeded); fair with probability one, and
          every finite prefix requirement is met on long runs. *)
  | Weighted of (string * int) list * int
      (** Biased random choice by statement name (seeded); any statement
          absent from the list gets weight 1.  Fair iff all weights are
          positive — weight 0 models a {e broken} (unfair) scheduler for
          failure-injection tests. *)

type step = { index : int; statement : string; state : Space.state }

type trace = { initial : Space.state; steps : step list }
(** [steps] in execution order; [state] is the state {e after} the
    statement ran. *)

val random_init : Program.t -> Stdlib.Random.State.t -> Space.state
(** A uniformly random state satisfying the program's initial condition
    (by enumeration of init states — symbolic spaces only).
    @raise Invalid_argument if the initial predicate has no states. *)

val run :
  Program.t -> scheduler:scheduler -> steps:int -> init:Space.state -> trace
(** Execute [steps] statements from [init].
    @raise Invalid_argument if [init] fails the initial condition. *)

val states : trace -> Space.state list
(** All states visited, in order, starting with the initial one. *)

val final : trace -> Space.state

val statement_counts : trace -> (string * int) list
(** How often each statement ran (sorted by name) — used to check
    fairness of schedulers. *)

val pp : Space.t -> Format.formatter -> trace -> unit
