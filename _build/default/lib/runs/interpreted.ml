open Kpt_predicate
open Kpt_unity

type point = { states : Space.state array (* oldest first *) }

type system = { prog : Program.t; pts : point list }

let current_state pt = pt.states.(Array.length pt.states - 1)
let time pt = Array.length pt.states - 1

let encode_prefix space states =
  let buf = Buffer.create 64 in
  Array.iter
    (fun st ->
      Array.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ',') st;
      ignore space;
      Buffer.add_char buf ';')
    states;
  Buffer.contents buf

let build ?(depth = 6) prog =
  let space = Program.space prog in
  let stmts = Program.statements prog in
  let seen = Hashtbl.create 4096 in
  let acc = ref [] in
  let add pt =
    let key = encode_prefix space pt.states in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc := pt :: !acc;
      true
    end
    else false
  in
  let frontier = ref [] in
  List.iter
    (fun st ->
      let pt = { states = [| Array.copy st |] } in
      if add pt then frontier := pt :: !frontier)
    (Space.states_of space (Program.init prog));
  for _ = 1 to depth do
    let next = ref [] in
    List.iter
      (fun pt ->
        List.iter
          (fun s ->
            let st' = Stmt.exec space s (current_state pt) in
            let pt' = { states = Array.append pt.states [| st' |] } in
            if add pt' then next := pt' :: !next)
          stmts)
      !frontier;
    frontier := !next
  done;
  { prog; pts = List.rev !acc }

let points sys = sys.pts

type view = State_view | Perfect_recall | Oblivious

let projection proc st = List.map (fun v -> st.(Space.idx v)) (Process.vars proc)

(* HM90-style local history: the sequence of the process's views with
   consecutive stutters collapsed (the process has no clock). *)
let local_history proc pt =
  let out = ref [] in
  Array.iter
    (fun st ->
      let v = projection proc st in
      match !out with w :: _ when w = v -> () | _ -> out := v :: !out)
    pt.states;
  List.rev !out

let view_key view proc pt =
  match view with
  | State_view -> [ projection proc (current_state pt) ]
  | Perfect_recall -> local_history proc pt
  | Oblivious -> []

let knows_at sys ~view proc fact pt =
  let key = view_key view proc pt in
  List.for_all
    (fun pt' -> if view_key view proc pt' = key then fact (current_state pt') else true)
    sys.pts

let knowledge_pred sys ~view proc p pt =
  let space = Program.space sys.prog in
  knows_at sys ~view proc (fun st -> Space.holds_at space p st) pt

let state_view_matches_k sys prog pname p =
  let space = Program.space prog in
  let proc = Program.find_process prog pname in
  let symbolic = Kpt_core.Knowledge.knows_in prog pname p in
  List.for_all
    (fun pt ->
      knowledge_pred sys ~view:State_view proc p pt
      = Space.holds_at space symbolic (current_state pt))
    sys.pts

let recall_refines_state sys proc p prog =
  let space = Program.space prog in
  let fact st = Space.holds_at space p st in
  List.for_all
    (fun pt ->
      (not (knows_at sys ~view:State_view proc fact pt))
      || knows_at sys ~view:Perfect_recall proc fact pt)
    sys.pts

let recall_strictly_finer_somewhere sys proc p prog =
  let space = Program.space prog in
  let fact st = Space.holds_at space p st in
  List.find_opt
    (fun pt ->
      knows_at sys ~view:Perfect_recall proc fact pt
      && not (knows_at sys ~view:State_view proc fact pt))
    sys.pts
