(** The [HM90] interpreted-systems semantics, bounded: runs, points and
    {e view-based} knowledge for views other than the paper's.

    §3 situates the paper's definition inside Halpern–Moses's spectrum:
    "The notion of a view function is quite general, ranging from allowing
    processes to use their entire local histories to distinguish between
    points, to not being able to distinguish between points at all" — and
    the paper deliberately fixes the view to the projection of the
    {e current} state.

    This module makes the comparison executable.  It enumerates every run
    prefix of a program up to a depth bound (a {e point} is a prefix), and
    computes knowledge for three views:

    - {e state view}: the projection of the last state — this must agree
      with the paper's [K_i] wherever the bound has saturated reachability
      (tested);
    - {e perfect recall}: the full local history (sequence of projections,
      stuttering collapsed, as in [HM90]'s message-based histories) — at
      least as strong as the state view;
    - {e oblivious}: the constant view — knowledge collapses to validity
      over all points.

    Run prefixes are generated under the UNITY scheduler (any statement at
    each step), so points at depth [d] cover every length-≤d behaviour. *)

open Kpt_predicate
open Kpt_unity

type point
(** A run prefix together with its time (= its length). *)

type system
(** All points of a program up to the depth bound. *)

val build : ?depth:int -> Program.t -> system
(** Enumerate all points up to [depth] (default 6) scheduler steps.
    Exponential in [depth] × statements; intended for small programs.
    States are deduplicated per prefix, so the point count is bounded by
    the number of distinct local-history equivalence classes. *)

val points : system -> point list
val current_state : point -> Space.state
val time : point -> int

type view = State_view | Perfect_recall | Oblivious

val knows_at :
  system -> view:view -> Process.t -> (Space.state -> bool) -> point -> bool
(** [HM90] knowledge: the fact holds at every point of the system the
    process cannot distinguish from this one under the given view. *)

val knowledge_pred : system -> view:view -> Process.t -> Bdd.t -> point -> bool
(** Same, with the fact given as a predicate. *)

val state_view_matches_k :
  system -> Program.t -> string -> Bdd.t -> bool
(** Does state-view run knowledge coincide with the paper's [K_i] at
    every point whose current state it classifies?  True whenever the
    depth bound saturates reachability (tested in the suite). *)

val recall_refines_state : system -> Process.t -> Bdd.t -> Program.t -> bool
(** Perfect recall knows at least as much as the state view, at every
    point. *)

val recall_strictly_finer_somewhere :
  system -> Process.t -> Bdd.t -> Program.t -> point option
(** A point where perfect recall knows the fact and the state view does
    not — the separation §3 alludes to.  [None] if the views agree on
    this fact. *)
