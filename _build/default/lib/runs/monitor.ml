open Kpt_predicate

let states_array space t =
  ignore space;
  Array.of_list (Exec.states t)

let first_violation space p t =
  let sts = states_array space t in
  let n = Array.length sts in
  let rec go i =
    if i >= n then None else if not (Space.holds_at space p sts.(i)) then Some i else go (i + 1)
  in
  go 0

let check_unless space ~p ~q t =
  let sts = states_array space t in
  let n = Array.length sts in
  let sat pred i = Space.holds_at space pred sts.(i) in
  let rec go i =
    if i + 1 >= n then None
    else if sat p i && (not (sat q i)) && (not (sat p (i + 1))) && not (sat q (i + 1)) then
      Some i
    else go (i + 1)
  in
  go 0

let eventually space p t =
  let sts = states_array space t in
  let n = Array.length sts in
  let rec go i =
    if i >= n then None else if Space.holds_at space p sts.(i) then Some i else go (i + 1)
  in
  go 0

let response_times space ~p ~q t =
  let sts = states_array space t in
  let n = Array.length sts in
  let sat pred i = Space.holds_at space pred sts.(i) in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if sat p i && not (sat q i) then begin
      let rec seek j = if j >= n then None else if sat q j then Some (j - i) else seek (j + 1) in
      match seek i with Some d -> acc := d :: !acc | None -> ()
    end
  done;
  List.rev !acc

let count_where space p t =
  List.fold_left
    (fun c st -> if Space.holds_at space p st then c + 1 else c)
    0 (Exec.states t)
