(** Runtime property monitors: check UNITY properties {e along a concrete
    trace}.  A trace can only refute safety and measure liveness — these
    monitors complement the exact symbolic checkers on instances too large
    to model-check, and power the benchmark harness's latency metrics. *)

open Kpt_predicate

val first_violation : Space.t -> Bdd.t -> Exec.trace -> int option
(** Index (0 = initial state) of the first state violating a putative
    invariant, or [None]. *)

val check_unless : Space.t -> p:Bdd.t -> q:Bdd.t -> Exec.trace -> int option
(** First index where [p ∧ ¬q] held and the next state satisfied
    [¬p ∧ ¬q] — a witnessed [unless] violation. *)

val eventually : Space.t -> Bdd.t -> Exec.trace -> int option
(** Index of the first state satisfying the predicate. *)

val response_times : Space.t -> p:Bdd.t -> q:Bdd.t -> Exec.trace -> int list
(** For each state satisfying [p ∧ ¬q], the number of steps until the
    next state satisfying [q] (pending obligations at the end of the
    trace are dropped) — the trace-level view of [p ↦ q]. *)

val count_where : Space.t -> Bdd.t -> Exec.trace -> int
(** Number of trace states satisfying the predicate. *)
