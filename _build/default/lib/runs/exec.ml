open Kpt_predicate
open Kpt_unity

type scheduler =
  | Round_robin
  | Random_fair of int
  | Weighted of (string * int) list * int

type step = { index : int; statement : string; state : Space.state }
type trace = { initial : Space.state; steps : step list }

let random_init prog rng =
  let space = Program.space prog in
  let candidates = Space.states_of space (Program.init prog) in
  match candidates with
  | [] -> invalid_arg "Exec.random_init: empty initial condition"
  | _ ->
      let n = List.length candidates in
      List.nth candidates (Stdlib.Random.State.int rng n)

let picker prog scheduler =
  let stmts = Array.of_list (Program.statements prog) in
  let n = Array.length stmts in
  match scheduler with
  | Round_robin ->
      let k = ref (-1) in
      fun () ->
        k := (!k + 1) mod n;
        stmts.(!k)
  | Random_fair seed ->
      let rng = Stdlib.Random.State.make [| seed |] in
      fun () -> stmts.(Stdlib.Random.State.int rng n)
  | Weighted (weights, seed) ->
      let rng = Stdlib.Random.State.make [| seed |] in
      let weight s =
        match List.assoc_opt (Stmt.name s) weights with Some w -> w | None -> 1
      in
      let ws = Array.map weight stmts in
      let total = Array.fold_left ( + ) 0 ws in
      if total <= 0 then invalid_arg "Exec: all statement weights are zero";
      fun () ->
        let r = ref (Stdlib.Random.State.int rng total) in
        let chosen = ref stmts.(0) in
        (try
           for i = 0 to n - 1 do
             r := !r - ws.(i);
             if !r < 0 then begin
               chosen := stmts.(i);
               raise Exit
             end
           done
         with Exit -> ());
        !chosen

let run prog ~scheduler ~steps ~init =
  let space = Program.space prog in
  if not (Space.holds_at space (Program.init prog) init) then
    invalid_arg "Exec.run: state does not satisfy the initial condition";
  let next = picker prog scheduler in
  let rec go k state acc =
    if k > steps then List.rev acc
    else
      let s = next () in
      let state' = Stmt.exec space s state in
      go (k + 1) state' ({ index = k; statement = Stmt.name s; state = state' } :: acc)
  in
  { initial = Array.copy init; steps = go 1 init [] }

let states t = t.initial :: List.map (fun s -> s.state) t.steps

let final t =
  match List.rev t.steps with [] -> t.initial | last :: _ -> last.state

let statement_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let c = match Hashtbl.find_opt tbl s.statement with Some c -> c | None -> 0 in
      Hashtbl.replace tbl s.statement (c + 1))
    t.steps;
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) tbl [] |> List.sort compare

let pp space fmt t =
  Format.fprintf fmt "@[<v>%a" (Space.pp_state space) t.initial;
  List.iter
    (fun s -> Format.fprintf fmt "@,--%s--> %a" s.statement (Space.pp_state space) s.state)
    t.steps;
  Format.fprintf fmt "@]"
