lib/runs/interpreted.mli: Bdd Kpt_predicate Kpt_unity Process Program Space
