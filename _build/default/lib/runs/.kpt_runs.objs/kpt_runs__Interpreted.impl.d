lib/runs/interpreted.ml: Array Buffer Hashtbl Kpt_core Kpt_predicate Kpt_unity List Process Program Space Stmt
