lib/runs/monitor.mli: Bdd Exec Kpt_predicate Space
