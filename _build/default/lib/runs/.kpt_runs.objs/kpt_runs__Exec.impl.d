lib/runs/exec.ml: Array Format Hashtbl Kpt_predicate Kpt_unity List Program Space Stdlib Stmt
