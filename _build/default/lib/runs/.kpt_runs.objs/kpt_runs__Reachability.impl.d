lib/runs/reachability.ml: Array Hashtbl Kpt_core Kpt_predicate Kpt_unity List Process Program Queue Space Stmt
