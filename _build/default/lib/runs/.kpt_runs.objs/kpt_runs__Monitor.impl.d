lib/runs/monitor.ml: Array Exec Kpt_predicate List Space
