lib/runs/exec.mli: Format Kpt_predicate Kpt_unity Program Space Stdlib
