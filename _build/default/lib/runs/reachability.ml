open Kpt_predicate
open Kpt_unity

let coder space =
  let vars = Array.of_list (Space.vars space) in
  fun st ->
    let code = ref 0 in
    Array.iteri (fun k v -> code := (!code * Space.card v) + st.(k)) vars;
    !code

let reachable prog =
  let space = Program.space prog in
  let code = coder space in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let push st =
    let c = code st in
    if not (Hashtbl.mem seen c) then begin
      (* one copy, shared by the table and the queue — neither mutates it *)
      let copy = Array.copy st in
      Hashtbl.add seen c copy;
      Queue.add copy queue
    end
  in
  List.iter push (Space.states_of space (Program.init prog));
  let stmts = Program.statements prog in
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    List.iter (fun s -> push (Stmt.exec space s st)) stmts
  done;
  Hashtbl.fold (fun _ st acc -> st :: acc) seen []

let si_agrees prog =
  let space = Program.space prog in
  let si = Program.si prog in
  let explicit = reachable prog in
  List.length explicit = Space.count_states_of space si
  && List.for_all (Space.holds_at space si) explicit

let projection proc st =
  List.map (fun v -> st.(Space.idx v)) (Process.vars proc)

let view_knows ?worlds prog proc p st =
  let worlds = match worlds with Some w -> w | None -> reachable prog in
  let view = projection proc st in
  List.for_all (fun w -> if projection proc w = view then p w else true) worlds

let knowledge_agrees prog pname p =
  let space = Program.space prog in
  let proc = Program.find_process prog pname in
  let symbolic = Kpt_core.Knowledge.knows_in prog pname p in
  let worlds = reachable prog in
  (* group worlds by view so the check is O(R log R) rather than O(R²) *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun w ->
      let v = projection proc w in
      let holds = Space.holds_at space p w in
      let all = match Hashtbl.find_opt tbl v with Some b -> b | None -> true in
      Hashtbl.replace tbl v (all && holds))
    worlds;
  List.for_all
    (fun st ->
      let concrete = Hashtbl.find tbl (projection proc st) in
      Space.holds_at space symbolic st = concrete)
    worlds
