lib/experiments/experiments.mli: Format
