(** The per-experiment harness: one function per entry of DESIGN.md §3,
    each regenerating the corresponding paper artifact (figure /
    counterexample / derivation) and printing a table of
    paper-claim vs. measured outcome.  Each returns [true] iff every
    checked claim matches the paper.

    Used by both [bench/main.exe] (which runs them all before the
    performance benchmarks) and the [kpt experiments] CLI command. *)

val e1_figure1 : Format.formatter -> bool
(** Figure 1: the KBP with no solution — exhaustive solver finds zero
    fixpoints of Ĝ; chaotic iteration exhibits a 2-cycle. *)

val e2_figure2 : Format.formatter -> bool
(** Figure 2: SI not monotonic in the initial condition; [true ↦ z]
    holds under [init = ¬y] and fails under the stronger
    [init = ¬y ∧ x]. *)

val e3_figure3 : Format.formatter -> bool
(** Figure 3: the knowledge-based sequence transmission protocol —
    assumption-free kernel replay of the §6.2 derivation plus semantic
    model checking of (34)/(35). *)

val e4_figure4 : Format.formatter -> bool
(** Figure 4: the standard protocol — obligations (54),(55),(56),(61),
    (62), spec (34)/(35), liveness failing without St-3/St-4 on the lossy
    channel, and (50)/(51) being exactly the knowledge predicates. *)

val e5_laws : Format.formatter -> bool
(** Eqs. 7–24: wcyl and S5/junctivity laws, including the paper's own
    disjunctivity counterexample (12). *)

val e6_apriori : Format.formatter -> bool
(** §6.4: a priori knowledge of x₀ — the instantiation breaks while the
    protocol stays correct, and the knowledge-optimal variant transmits
    fewer messages. *)

val e7_sst : Format.formatter -> bool
(** Eqs. 2–4 vs §4: sst monotone for standard programs, Ĝ non-monotone
    for Figure 1's KBP. *)

val e8_crossval : Format.formatter -> bool
(** §3 vs [HM90]: the predicate-transformer K agrees with run-based view
    knowledge on the protocol programs. *)

val e9_refinements : Format.formatter -> bool
(** §6 family: ABP, Stenning and the AUY model meet the same
    specification; message economy of the synchronous model. *)

val e10_extensions : Format.formatter -> bool
(** Beyond the paper (documented as extensions in DESIGN.md): knowledge
    dynamics — the protocol text encodes its own recall while knowledge
    of the peer's counter is forgettable; the [HM90] view spectrum —
    perfect recall strictly refines the paper's state view; and a
    refinement check — the duplicating-only channel refines the lossy
    one, transferring safety. *)

val run_all : Format.formatter -> (string * bool) list
(** Run E1–E10 in order; returns the verdict per experiment. *)
