(** Lightweight observability for the symbolic engine — now domain-safe.

    Three orthogonal facilities:

    {ul
    {- {e monotone counters} — named integer cells the hot layers bump as
       they work (op-cache hits, fixpoint iterations, …).  Incrementing
       is an array store in the domain-local {e metric context}: no
       allocation, no locks, no branching on configuration, so counters
       are always on — and safe when several domains run engines
       concurrently, because no two domains ever share a context.}
    {- {e timing spans} — wall-clock intervals measured on the OS
       monotonic clock (the same clock the Bechamel toolkit benchmarks
       with), accumulated per span name in the same context.}
    {- {e a structured event sink} — an optional callback that streams
       per-iteration fixpoint events ([kpt … --trace]).  Off by default;
       emit sites must guard with {!enabled} so a disabled sink costs one
       load and no allocation.  The sink is part of the context, so
       worker domains never stream into the main domain's formatter.}}

    {b Storage model.}  Counter/span {e names} are interned in a
    process-global registry (so the key set reported by {!counters} is
    shared and stable); their {e values} live in a {!Ctx.t}.  The main
    domain runs on {!Ctx.root}; every other domain starts on a private
    context.  {!Ctx.use} scopes a context to a computation (how the
    parallel pool gives each task an isolated profile) and {!Ctx.merge}
    folds a finished worker's numbers into an aggregate after the join.

    The {!Gate} submodule is the consumer side: it diffs the
    [benchmarks_ns_per_run] section of two bench JSON files and flags
    regressions beyond a tolerance (the CI bench gate). *)

(** {1 Counters} *)

type counter
(** A named monotone counter.  Counters are interned: {!counter} returns
    the same slot for the same name, so modules can declare their
    counters at top level and share them.  The slot is just a name + an
    index — the value lives in the current domain's context. *)

val counter : string -> counter
(** [counter name] is the unique counter registered under [name]
    (created on first use, starting at 0 in every context). *)

val incr : counter -> unit
(** Add 1 (in the current domain's context). *)

val add : counter -> int -> unit
(** Add [n] (must be ≥ 0 — counters are monotone between resets). *)

val record_max : counter -> int -> unit
(** High-watermark update: [record_max c n] raises [c] to [n] if [n] is
    larger (used for peaks, e.g. live BDD nodes).  Counters touched by
    [record_max] are merged with [max] rather than [+] by {!Ctx.merge}. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Snapshot of every registered counter in the current context, sorted
    by name.  Counters that are still 0 are included: the key set is part
    of the interface (and is global — a counter declared by any module is
    listed in every context's snapshot). *)

(** {1 Monotonic clock and spans} *)

val now_ns : unit -> int64
(** Nanoseconds on the OS monotonic clock ([CLOCK_MONOTONIC]); the zero
    point is arbitrary, so only differences are meaningful.  Unlike
    [Sys.time] (CPU time) and [Unix.gettimeofday] (wall time, subject to
    adjustment) this is safe for measuring elapsed real time. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()], accumulating its elapsed time under span
    [name] in the current context.  Re-entrant: nested spans each record
    their own interval (so a parent span's total includes its
    children's). *)

val spans : unit -> (string * int64 * int) list
(** Snapshot of the spans with at least one finished call in the current
    context, sorted by name: (name, total ns, calls). *)

val reset : unit -> unit
(** Zero every counter and span of the {e current} context (the registry
    and the sink are kept).  Call before a measured workload to scope the
    numbers to it. *)

(** {1 Event sink} *)

val enabled : unit -> bool
(** Whether a sink is installed in the current context.  Emit sites must
    guard: [if Kpt_obs.enabled () then Kpt_obs.emit "sst.iter" [ ... ]] —
    the field list is then never built when tracing is off. *)

val set_sink : (string -> (string * int) list -> unit) option -> unit
(** Install ([Some f]) or remove ([None]) the sink of the current
    context. *)

val emit : string -> (string * int) list -> unit
(** Send one event (a name plus labelled integer fields) to the current
    context's sink; no-op without one.  Guard with {!enabled} — see
    above. *)

val trace_sink : Format.formatter -> string -> (string * int) list -> unit
(** The standard renderer used by [--trace]:
    [trace: name field=value field=value].  Install it with
    [set_sink (Some (trace_sink fmt))]. *)

(** {1 Metric contexts} *)

module Ctx : sig
  type t
  (** A metric context: one domain's (or one task's) counter and span
      values plus its event sink.  Contexts are single-owner mutable
      state — exactly one domain may be {e current} on a context at a
      time; hand-off between domains must be ordered (e.g. by
      [Domain.join]). *)

  val create : unit -> t
  (** A fresh context with every counter at 0 and no sink. *)

  val root : t
  (** The process root context — what the main domain uses unless
      {!use} overrides it, and the destination the parallel pool merges
      worker profiles into. *)

  val current : unit -> t
  (** The current domain's context. *)

  val use : t -> (unit -> 'a) -> 'a
  (** [use t f] makes [t] the current context of this domain for the
      duration of [f] (restoring the previous one afterwards, also on
      exceptions). *)

  val merge : into:t -> t -> unit
  (** [merge ~into src] folds [src]'s numbers into [into]: counters and
      span totals/calls add; high-watermark counters ({!record_max})
      combine with [max].  Both contexts must be quiescent — call it
      after [Domain.join], never while a domain is still writing [src]. *)

  val counters : t -> (string * int) list
  (** {!counters}, but of an explicit context. *)

  val spans : t -> (string * int64 * int) list
  (** {!spans}, but of an explicit context. *)

  val reset : t -> unit
  (** {!reset}, but of an explicit context: zero every counter and span
      of [t], keeping the registry and the sink.  The serve daemon calls
      this between requests so no counter or span value from one request
      is ever visible to the next. *)

  val set_sink : t -> (string -> (string * int) list -> unit) option -> unit
  (** Install or remove the sink of an explicit context — the way a
      request handler arranges event streaming for an engine it is about
      to run ({!use} + the global {!set_sink} would race nothing, but
      this spelling works before the context is current). *)
end

(** {1 The bench gate} *)

module Gate : sig
  type verdict = {
    name : string;
    baseline_ns : float;
    current_ns : float;
    ratio : float;  (** current / baseline; > 1 is a slowdown *)
  }

  type report = {
    verdicts : verdict list;  (** every benchmark present in both files *)
    regressions : verdict list;  (** verdicts beyond the tolerance *)
    missing : string list;  (** in the baseline but not the current run *)
  }

  val benchmarks_of_json : string -> (string * float) list
  (** Extract the ["benchmarks_ns_per_run"] object of a bench JSON file
      (the format {e this} repository writes; not a general JSON parser).
      @raise Failure if the section is absent or malformed. *)

  val counters_of_json : string -> (string * float) list
  (** Extract the cumulative ["counters"] object of a bench JSON file.
      @raise Failure if the section is absent or malformed. *)

  val scaling_of_json : string -> (string * int * int * float) list
  (** Extract the ["scaling_standard_protocol"] array as
      [(family, n, a, si_seconds)] rows.  Rows written before the
      [family] field existed read as ["seqtrans"].
      @raise Failure if the section is absent or malformed. *)

  val missing_section_message :
    file:string -> section:string -> ?benchmark:string -> unit -> string
  (** The one diagnostic an incomplete results file produces: names the
      file, the section, and (when given) the benchmark missing within
      it.  Pinned verbatim by the unit tests so CI logs stay
      greppable. *)

  val require_section :
    file:string -> section:string -> (string -> 'a) -> string -> 'a
  (** Run a section scanner ({!benchmarks_of_json}, {!counters_of_json},
      {!scaling_of_json}), converting its bare [Failure] into
      {!missing_section_message}.
      @raise Failure with the structured message. *)

  val check : ?tolerance:float -> baseline:string -> string -> report
  (** [check ~baseline current] compares two bench JSON {e contents}
      (not paths).  A benchmark
      regresses when [current > baseline * (1 + tolerance)]; the default
      [tolerance] is [0.25].  Renamed or removed benchmarks appear in
      [missing] — refresh the baseline rather than letting them rot. *)

  val pp_report : Format.formatter -> report -> unit
  (** Human-readable table of every verdict, slowest ratio first. *)
end
