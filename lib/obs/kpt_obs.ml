(* Observability with domain-safe storage.

   The *names* of counters and spans are process-global: an intern table
   (guarded by a mutex — interning is rare) assigns each name a fixed
   slot index, so the registered key set is shared by every domain and a
   snapshot always lists every counter the program has ever declared.

   The *values* live in a metric context ([Ctx.t]): plain int arrays
   indexed by slot, plus the event sink.  Exactly one context is current
   per domain (domain-local storage); the main domain starts on the
   process root context, and every freshly spawned domain starts on its
   own private context, so two domains never write the same cell — a
   counter bump stays a plain array store, unsynchronised and
   allocation-free, without being a data race.  A worker's context is
   merged into its parent's after the join ([Ctx.merge]), which is the
   only cross-domain hand-off and is ordered by [Domain.join] itself. *)

(* ---- the intern registry (process-global, mutex-guarded) ----------------- *)

type counter = {
  cname : string;
  cslot : int;
  mutable cmax : bool;
      (* a high-watermark counter ([record_max]): merged with max, not + .
         Flipped (idempotently) on first use; a racy write of [true] is
         benign under the OCaml memory model. *)
}

type span_id = { sname : string; sslot : int }

let reg_mutex = Mutex.create ()
let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let n_counter_slots = ref 0
let span_tbl : (string, span_id) Hashtbl.t = Hashtbl.create 16
let n_span_slots = ref 0

let locked f =
  Mutex.lock reg_mutex;
  match f () with
  | v ->
      Mutex.unlock reg_mutex;
      v
  | exception e ->
      Mutex.unlock reg_mutex;
      raise e

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_tbl name with
      | Some c -> c
      | None ->
          let c = { cname = name; cslot = !n_counter_slots; cmax = false } in
          incr n_counter_slots;
          Hashtbl.add counter_tbl name c;
          c)

let span_id name =
  locked (fun () ->
      match Hashtbl.find_opt span_tbl name with
      | Some s -> s
      | None ->
          let s = { sname = name; sslot = !n_span_slots } in
          incr n_span_slots;
          Hashtbl.add span_tbl name s;
          s)

(* Snapshots of the registry itself (cheap; taken outside hot paths). *)
let all_counters () = locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) counter_tbl [])
let all_spans () = locked (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) span_tbl [])

(* ---- metric contexts ------------------------------------------------------ *)

type ctx = {
  mutable cvals : int array; (* counter slot → value *)
  mutable stotal : int array; (* span slot → total ns (int ns: 292 years) *)
  mutable scalls : int array; (* span slot → call count *)
  mutable sink : (string -> (string * int) list -> unit) option;
}

let ctx_make () = { cvals = [||]; stotal = [||]; scalls = [||]; sink = None }
let root_ctx = ctx_make ()

(* The domain-local current context.  New domains default to a private
   context of their own, so code that runs in an unmanaged domain is safe
   by default (its numbers are simply lost unless someone merges them);
   the main domain is pointed at the root below, at module-init time. *)
let dls_key = Domain.DLS.new_key ctx_make
let () = Domain.DLS.set dls_key root_ctx
let current_ctx () = Domain.DLS.get dls_key

let grown a need =
  let n = Array.length a in
  let b = Array.make (max 16 (max need (2 * n))) 0 in
  Array.blit a 0 b 0 n;
  b

(* ---- counters ------------------------------------------------------------- *)

let[@inline] bump t slot delta =
  let a = t.cvals in
  if slot < Array.length a then a.(slot) <- a.(slot) + delta
  else begin
    t.cvals <- grown a (slot + 1);
    t.cvals.(slot) <- delta
  end

let incr c = bump (current_ctx ()) c.cslot 1
let add c n = bump (current_ctx ()) c.cslot n

let record_max c n =
  if not c.cmax then c.cmax <- true;
  let t = current_ctx () in
  let a = t.cvals in
  if c.cslot < Array.length a then begin
    if n > a.(c.cslot) then a.(c.cslot) <- n
  end
  else begin
    t.cvals <- grown a (c.cslot + 1);
    t.cvals.(c.cslot) <- max n 0
  end

let read t slot = if slot < Array.length t.cvals then t.cvals.(slot) else 0
let value c = read (current_ctx ()) c.cslot

let counters_of t =
  all_counters ()
  |> List.map (fun c -> (c.cname, read t c.cslot))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = counters_of (current_ctx ())

(* ---- monotonic clock and spans -------------------------------------------- *)

let now_ns = Monotonic_clock.now

let finish t s t0 =
  let slot = s.sslot in
  if slot >= Array.length t.stotal then begin
    t.stotal <- grown t.stotal (slot + 1);
    t.scalls <- grown t.scalls (slot + 1)
  end;
  t.stotal.(slot) <- t.stotal.(slot) + Int64.to_int (Int64.sub (now_ns ()) t0);
  t.scalls.(slot) <- t.scalls.(slot) + 1

let time name f =
  let s = span_id name in
  let t0 = now_ns () in
  match f () with
  | r ->
      finish (current_ctx ()) s t0;
      r
  | exception e ->
      finish (current_ctx ()) s t0;
      raise e

let spans_of t =
  all_spans ()
  |> List.filter_map (fun s ->
         if s.sslot < Array.length t.scalls && t.scalls.(s.sslot) > 0 then
           Some (s.sname, Int64.of_int t.stotal.(s.sslot), t.scalls.(s.sslot))
         else None)
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let spans () = spans_of (current_ctx ())

let reset_ctx t =
  Array.fill t.cvals 0 (Array.length t.cvals) 0;
  Array.fill t.stotal 0 (Array.length t.stotal) 0;
  Array.fill t.scalls 0 (Array.length t.scalls) 0

let reset () = reset_ctx (current_ctx ())

(* ---- event sink ------------------------------------------------------------ *)

let enabled () = (current_ctx ()).sink <> None
let set_sink f = (current_ctx ()).sink <- f

let emit name fields =
  match (current_ctx ()).sink with None -> () | Some f -> f name fields

let trace_sink fmt name fields =
  Format.fprintf fmt "trace: %s" name;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%d" k v) fields;
  Format.fprintf fmt "@."

(* ---- the context API -------------------------------------------------------- *)

module Ctx = struct
  type t = ctx

  let create () = ctx_make ()
  let root = root_ctx
  let current = current_ctx

  let use t f =
    let prev = Domain.DLS.get dls_key in
    Domain.DLS.set dls_key t;
    Fun.protect ~finally:(fun () -> Domain.DLS.set dls_key prev) f

  (* Both contexts must be quiescent: call after [Domain.join], never
     concurrently with a domain still writing [src]. *)
  let merge ~into src =
    if into != src then begin
      List.iter
        (fun c ->
          let v = read src c.cslot in
          if v <> 0 then
            if c.cmax then begin
              if v > read into c.cslot then begin
                if c.cslot >= Array.length into.cvals then
                  into.cvals <- grown into.cvals (c.cslot + 1);
                into.cvals.(c.cslot) <- v
              end
            end
            else bump into c.cslot v)
        (all_counters ());
      List.iter
        (fun s ->
          if s.sslot < Array.length src.scalls && src.scalls.(s.sslot) > 0 then begin
            if s.sslot >= Array.length into.stotal then begin
              into.stotal <- grown into.stotal (s.sslot + 1);
              into.scalls <- grown into.scalls (s.sslot + 1)
            end;
            into.stotal.(s.sslot) <- into.stotal.(s.sslot) + src.stotal.(s.sslot);
            into.scalls.(s.sslot) <- into.scalls.(s.sslot) + src.scalls.(s.sslot)
          end)
        (all_spans ())
    end

  let counters = counters_of
  let spans = spans_of
  let reset = reset_ctx
  let set_sink t f = t.sink <- f
end

(* ---- the bench gate -------------------------------------------------------- *)

module Gate = struct
  type verdict = { name : string; baseline_ns : float; current_ns : float; ratio : float }

  type report = {
    verdicts : verdict list;
    regressions : verdict list;
    missing : string list;
  }

  (* A pinhole scanner for the JSON this repository's bench harness
     writes: locate a named section and read its members.  Handles the
     escapes [json_escape] produces; anything structurally unexpected
     raises. *)
  let fail fmt = Printf.ksprintf failwith fmt

  let find_sub src sub from =
    let n = String.length src in
    let ls = String.length sub in
    let rec go i =
      if i + ls > n then fail "bench gate: %S not found in JSON" sub
      else if String.sub src i ls = sub then i + ls
      else go (i + 1)
    in
    go from

  let rec skip_ws src i =
    if
      i < String.length src
      && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r')
    then skip_ws src (i + 1)
    else i

  let expect src c i =
    let i = skip_ws src i in
    if i < String.length src && src.[i] = c then i + 1
    else fail "bench gate: expected %c at offset %d" c i

  let read_string src i =
    let n = String.length src in
    let b = Buffer.create 64 in
    let rec go i =
      if i >= n then fail "bench gate: unterminated string"
      else
        match src.[i] with
        | '"' -> (Buffer.contents b, i + 1)
        | '\\' when i + 1 < n ->
            (match src.[i + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if i + 5 < n then
                  Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub src (i + 2) 4) land 0xff))
                else fail "bench gate: truncated \\u escape"
            | c -> Buffer.add_char b c);
            go (i + if src.[i + 1] = 'u' then 6 else 2)
        | c ->
            Buffer.add_char b c;
            go (i + 1)
    in
    go i

  let read_number src i =
    let n = String.length src in
    let i = skip_ws src i in
    let stop = ref i in
    while
      !stop < n
      && (match src.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
    do
      Stdlib.incr stop
    done;
    if !stop = i then fail "bench gate: expected a number at offset %d" i;
    (float_of_string (String.sub src i (!stop - i)), !stop)

  (* "string": number members of a named top-level object *)
  let object_members section src =
    let n = String.length src in
    let i = find_sub src (Printf.sprintf "%S" section) 0 in
    let i = expect src ':' i in
    let i = expect src '{' i in
    let rec members acc i =
      let i = skip_ws src i in
      if i < n && src.[i] = '}' then List.rev acc
      else
        let i = expect src '"' i in
        let name, i = read_string src i in
        let i = expect src ':' i in
        let v, i = read_number src i in
        let i = skip_ws src i in
        if i < n && src.[i] = ',' then members ((name, v) :: acc) (i + 1)
        else members ((name, v) :: acc) i
    in
    members [] i

  let benchmarks_of_json src = object_members "benchmarks_ns_per_run" src
  let counters_of_json src = object_members "counters" src

  (* The one message an incomplete results file produces — structured
     enough to act on (which file, which section, optionally which
     benchmark within it), and pinned verbatim by the unit tests so the
     CI log stays greppable. *)
  let missing_section_message ~file ~section ?benchmark () =
    match benchmark with
    | None ->
        Printf.sprintf
          "%s is incomplete — section %S is missing or malformed; re-run the bench \
           suite to regenerate it"
          file section
    | Some b ->
        Printf.sprintf "%s is incomplete — benchmark %S is missing from section %S" file
          b section

  (* [require_section ~file ~section parse src]: run a section scanner,
     converting its bare [Failure] into the structured message above. *)
  let require_section ~file ~section parse src =
    try parse src
    with Failure _ -> failwith (missing_section_message ~file ~section ())

  let scaling_of_json src =
    let n = String.length src in
    let i = find_sub src "\"scaling_standard_protocol\"" 0 in
    let i = expect src ':' i in
    let i = expect src '[' i in
    let rec rows acc i =
      let i = skip_ws src i in
      if i >= n then fail "bench gate: unterminated scaling array"
      else if src.[i] = ']' then List.rev acc
      else if src.[i] = ',' then rows acc (i + 1)
      else begin
        let i = expect src '{' i in
        (* rows written before the family field default to the standard
           protocol, the only family the sweep had then *)
        let rec fields fam sz a si i =
          let i = skip_ws src i in
          if i < n && src.[i] = '}' then ((fam, sz, a, si), i + 1)
          else if i < n && src.[i] = ',' then fields fam sz a si (i + 1)
          else
            let i = expect src '"' i in
            let name, i = read_string src i in
            let i = expect src ':' i in
            let i = skip_ws src i in
            if i < n && src.[i] = '"' then begin
              let v, i = read_string src (i + 1) in
              fields (if name = "family" then v else fam) sz a si i
            end
            else
              let v, i = read_number src i in
              (match name with
              | "n" -> fields fam (int_of_float v) a si i
              | "a" -> fields fam sz (int_of_float v) si i
              | "si_s" -> fields fam sz a v i
              | _ -> fields fam sz a si i)
        in
        let row, i = fields "seqtrans" 0 0 0.0 i in
        rows (row :: acc) i
      end
    in
    rows [] i

  let check ?(tolerance = 0.25) ~baseline current =
    let base = benchmarks_of_json baseline in
    let cur = benchmarks_of_json current in
    let verdicts, missing =
      List.fold_left
        (fun (vs, miss) (name, baseline_ns) ->
          match List.assoc_opt name cur with
          | Some current_ns ->
              ({ name; baseline_ns; current_ns; ratio = current_ns /. baseline_ns } :: vs, miss)
          | None -> (vs, name :: miss))
        ([], []) base
    in
    let verdicts = List.sort (fun a b -> Float.compare b.ratio a.ratio) verdicts in
    let regressions = List.filter (fun v -> v.ratio > 1.0 +. tolerance) verdicts in
    { verdicts; regressions; missing = List.rev missing }

  let pp_report fmt r =
    List.iter
      (fun v ->
        Format.fprintf fmt "  %-62s %12.1f → %12.1f ns/run  ×%.2f%s@." v.name v.baseline_ns
          v.current_ns v.ratio
          (if List.memq v r.regressions then "  REGRESSION" else ""))
      r.verdicts;
    List.iter
      (fun name -> Format.fprintf fmt "  %-62s missing from the current run@." name)
      r.missing
end
