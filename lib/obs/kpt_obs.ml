(* Process-global observability: interned monotone counters, monotonic
   timing spans, and an optional structured event sink.  Everything here
   is deliberately boring — plain mutable cells behind string names — so
   the hot layers can afford to call it unconditionally. *)

(* ---- counters ------------------------------------------------------------ *)

type counter = { cname : string; mutable v : int }

(* Registration order is irrelevant (snapshots sort by name), so a plain
   table is enough; the handful of counters makes contention a non-issue. *)
let counter_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
      let c = { cname = name; v = 0 } in
      Hashtbl.add counter_tbl name c;
      c

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let record_max c n = if n > c.v then c.v <- n
let value c = c.v

let counters () =
  Hashtbl.fold (fun _ c acc -> (c.cname, c.v) :: acc) counter_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- monotonic clock and spans ------------------------------------------- *)

let now_ns = Monotonic_clock.now

type span = { sname : string; mutable total_ns : int64; mutable calls : int }

let span_tbl : (string, span) Hashtbl.t = Hashtbl.create 16

let span name =
  match Hashtbl.find_opt span_tbl name with
  | Some s -> s
  | None ->
      let s = { sname = name; total_ns = 0L; calls = 0 } in
      Hashtbl.add span_tbl name s;
      s

let finish s t0 =
  s.total_ns <- Int64.add s.total_ns (Int64.sub (now_ns ()) t0);
  s.calls <- s.calls + 1

let time name f =
  let s = span name in
  let t0 = now_ns () in
  match f () with
  | r ->
      finish s t0;
      r
  | exception e ->
      finish s t0;
      raise e

let spans () =
  Hashtbl.fold (fun _ s acc -> (s.sname, s.total_ns, s.calls) :: acc) span_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset () =
  Hashtbl.iter (fun _ c -> c.v <- 0) counter_tbl;
  Hashtbl.iter
    (fun _ s ->
      s.total_ns <- 0L;
      s.calls <- 0)
    span_tbl

(* ---- event sink ----------------------------------------------------------- *)

let sink : (string -> (string * int) list -> unit) option ref = ref None
let enabled () = !sink <> None
let set_sink f = sink := f
let emit name fields = match !sink with None -> () | Some f -> f name fields

let trace_sink fmt name fields =
  Format.fprintf fmt "trace: %s" name;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%d" k v) fields;
  Format.fprintf fmt "@."

(* ---- the bench gate -------------------------------------------------------- *)

module Gate = struct
  type verdict = { name : string; baseline_ns : float; current_ns : float; ratio : float }

  type report = {
    verdicts : verdict list;
    regressions : verdict list;
    missing : string list;
  }

  (* A pinhole scanner for the JSON this repository's bench harness
     writes: locate the "benchmarks_ns_per_run" object and read its
     "string": number members.  Handles the escapes [json_escape]
     produces; anything structurally unexpected raises. *)
  let benchmarks_of_json src =
    let fail fmt = Printf.ksprintf failwith fmt in
    let n = String.length src in
    let find_sub sub from =
      let ls = String.length sub in
      let rec go i =
        if i + ls > n then fail "bench gate: %S not found in JSON" sub
        else if String.sub src i ls = sub then i + ls
        else go (i + 1)
      in
      go from
    in
    let rec skip_ws i = if i < n && (src.[i] = ' ' || src.[i] = '\n' || src.[i] = '\t' || src.[i] = '\r') then skip_ws (i + 1) else i in
    let expect c i =
      let i = skip_ws i in
      if i < n && src.[i] = c then i + 1 else fail "bench gate: expected %c at offset %d" c i
    in
    let read_string i =
      let b = Buffer.create 64 in
      let rec go i =
        if i >= n then fail "bench gate: unterminated string"
        else
          match src.[i] with
          | '"' -> (Buffer.contents b, i + 1)
          | '\\' when i + 1 < n ->
              (match src.[i + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if i + 5 < n then
                    Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub src (i + 2) 4) land 0xff))
                  else fail "bench gate: truncated \\u escape"
              | c -> Buffer.add_char b c);
              go (i + if src.[i + 1] = 'u' then 6 else 2)
          | c ->
              Buffer.add_char b c;
              go (i + 1)
      in
      go i
    in
    let read_number i =
      let i = skip_ws i in
      let stop = ref i in
      while
        !stop < n
        && (match src.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
      do
        Stdlib.incr stop
      done;
      if !stop = i then fail "bench gate: expected a number at offset %d" i;
      (float_of_string (String.sub src i (!stop - i)), !stop)
    in
    let i = find_sub "\"benchmarks_ns_per_run\"" 0 in
    let i = expect ':' i in
    let i = expect '{' i in
    let rec members acc i =
      let i = skip_ws i in
      if i < n && src.[i] = '}' then List.rev acc
      else
        let i = expect '"' i in
        let name, i = read_string i in
        let i = expect ':' i in
        let v, i = read_number i in
        let i = skip_ws i in
        if i < n && src.[i] = ',' then members ((name, v) :: acc) (i + 1)
        else members ((name, v) :: acc) i
    in
    members [] i

  let check ?(tolerance = 0.25) ~baseline current =
    let base = benchmarks_of_json baseline in
    let cur = benchmarks_of_json current in
    let verdicts, missing =
      List.fold_left
        (fun (vs, miss) (name, baseline_ns) ->
          match List.assoc_opt name cur with
          | Some current_ns ->
              ({ name; baseline_ns; current_ns; ratio = current_ns /. baseline_ns } :: vs, miss)
          | None -> (vs, name :: miss))
        ([], []) base
    in
    let verdicts = List.sort (fun a b -> Float.compare b.ratio a.ratio) verdicts in
    let regressions = List.filter (fun v -> v.ratio > 1.0 +. tolerance) verdicts in
    { verdicts; regressions; missing = List.rev missing }

  let pp_report fmt r =
    List.iter
      (fun v ->
        Format.fprintf fmt "  %-62s %12.1f → %12.1f ns/run  ×%.2f%s@." v.name v.baseline_ns
          v.current_ns v.ratio
          (if List.memq v r.regressions then "  REGRESSION" else ""))
      r.verdicts;
    List.iter
      (fun name -> Format.fprintf fmt "  %-62s missing from the current run@." name)
      r.missing
end
