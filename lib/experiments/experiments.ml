open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_protocols

let row fmt label expected got =
  let ok = expected = got in
  Format.fprintf fmt "  %-58s paper:%-6b measured:%-6b %s@." label expected got
    (if ok then "✓" else "✗ MISMATCH");
  ok

let header fmt title = Format.fprintf fmt "@.── %s ──@." title

(* ---- shared model builders --------------------------------------------- *)

let figure1 () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ shared ] in
  let p1 = Process.make "P1" [ shared; x ] in
  let s0 =
    Kbp.kstmt ~name:"s0"
      ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
      [ (shared, Expr.tru) ]
  in
  let s1 =
    Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var shared))
      [ (x, Expr.tru); (shared, Expr.fls) ]
  in
  Kbp.make sp ~name:"figure1"
    ~init:Expr.(not_ (var shared) &&& not_ (var x))
    ~processes:[ p0; p1 ] [ s0; s1 ]

let figure2 strong =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let z = Space.bool_var sp "z" in
  let p0 = Process.make "P0" [ y ] in
  let p1 = Process.make "P1" [ z ] in
  let s0 = Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ] in
  let s1 =
    Kbp.kstmt ~name:"s1"
      ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
      [ (z, Expr.tru) ]
  in
  let init = if strong then Expr.(not_ (var y) &&& var x) else Expr.(not_ (var y)) in
  (sp, x, y, z, Kbp.make sp ~name:"figure2" ~init ~processes:[ p0; p1 ] [ s0; s1 ])

(* ---- E1 ----------------------------------------------------------------- *)

let e1_figure1 fmt =
  header fmt "E1 · Figure 1: a knowledge-based protocol with no solution";
  let kbp = figure1 () in
  let sols = Kbp.solutions kbp in
  let ok1 = row fmt "number of solutions of Ĝ(X) = X is zero" true (sols = []) in
  let cycle_len =
    match Kbp.iterate kbp with Kbp.Diverged { orbit; _ } -> List.length orbit | _ -> 0
  in
  let ok2 = row fmt "chaotic iteration enters a cycle (period 2)" true (cycle_len = 2) in
  ok1 && ok2

(* ---- E2 ----------------------------------------------------------------- *)

let e2_figure2 fmt =
  header fmt "E2 · Figure 2: SI not monotonic in the initial condition";
  let sp1, _, y1, z1, weak = figure2 false in
  let sp2, x2, _, z2, strong = figure2 true in
  let si1 = match Kbp.solutions weak with [ s ] -> s | _ -> Bdd.fls (Space.manager sp1) in
  let si2 = match Kbp.solutions strong with [ s ] -> s | _ -> Bdd.fls (Space.manager sp2) in
  let ok1 =
    row fmt "SI under init = ¬y is exactly ¬y" true
      (Pred.equivalent sp1 si1 (Expr.compile_bool sp1 Expr.(not_ (var y1))))
  in
  let ok2 =
    row fmt "SI under init = ¬y ∧ x is exactly x" true
      (Pred.equivalent sp2 si2 (Expr.compile_bool sp2 (Expr.var x2)))
  in
  let live sp kbp si z =
    Kpt_logic.Props.leads_to (Kbp.instantiate kbp ~si) (Bdd.tru (Space.manager sp))
      (Expr.compile_bool sp (Expr.var z))
  in
  let ok3 = row fmt "true ↦ z holds under the weak init" true (live sp1 weak si1 z1) in
  let ok4 = row fmt "true ↦ z FAILS under the stronger init" false (live sp2 strong si2 z2) in
  let sts sp si = List.map Array.to_list (Space.states_of sp si) in
  let ok5 =
    row fmt "SI₂ ⇏ SI₁ although init₂ ⇒ init₁ (non-monotonicity)" false
      (List.for_all (fun s -> List.mem s (sts sp1 si1)) (sts sp2 si2))
  in
  ok1 && ok2 && ok3 && ok4 && ok5

(* ---- E3 ----------------------------------------------------------------- *)

let e3_figure3 fmt =
  header fmt "E3 · Figure 3: knowledge-based sequence transmission (n=2, |A|=2)";
  let ab = Seqtrans.abstract_kbp { Seqtrans.n = 2; a = 2 } in
  let thms = Seqtrans_proofs.replay_abstract ab in
  let unconditional = List.for_all (fun (_, t) -> Kpt_logic.Proof.assumptions t = []) thms in
  let ok1 =
    row fmt
      (Printf.sprintf "kernel replay: %d theorems, all assumption-free" (List.length thms))
      true unconditional
  in
  let ok2 =
    row fmt "safety (34) holds semantically" true
      (Program.invariant ab.Seqtrans.aprog (Seqtrans.a_spec_safety ab))
  in
  let ok3 =
    row fmt "liveness (35) holds semantically (k = 0, 1)" true
      (Seqtrans.a_spec_liveness_holds ab ~k:0 && Seqtrans.a_spec_liveness_holds ab ~k:1)
  in
  ok1 && ok2 && ok3

(* ---- E4 ----------------------------------------------------------------- *)

let e4_figure4 fmt =
  header fmt "E4 · Figure 4: the standard protocol (n=2, |A|=2)";
  let lossy = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let dup = Seqtrans.standard ~lossy:false { Seqtrans.n = 2; a = 2 } in
  let prog = lossy.Seqtrans.sprog in
  let ok1 = row fmt "safety (34) on the lossy channel" true (Program.invariant prog (Seqtrans.spec_safety lossy)) in
  let ok2 =
    row fmt "invariants (54),(61),(62) hold" true
      (Program.invariant prog (Seqtrans.inv54 lossy ~k:1)
      && Program.invariant prog (Seqtrans.inv61 lossy ~k:0 ~alpha:1)
      && Program.invariant prog (Seqtrans.inv62 lossy ~k:0))
  in
  let ok3 =
    row fmt "stability (55),(56) hold" true
      (Seqtrans.stable55_holds lossy ~k:0 && Seqtrans.stable56_holds lossy ~k:0 ~alpha:1)
  in
  let ok4 =
    row fmt "liveness FAILS on the maximal lossy channel" false
      (Seqtrans.spec_liveness_holds lossy ~k:0)
  in
  let ok5 =
    row fmt "liveness holds once St-3/St-4 are satisfied (dup-only)" true
      (Seqtrans.spec_liveness_holds dup ~k:0 && Seqtrans.spec_liveness_holds dup ~k:1)
  in
  let thms = Seqtrans_proofs.replay_standard ~assume_channel:true lossy in
  let liveness_conditional =
    List.for_all
      (fun (name, t) ->
        let a = Kpt_logic.Proof.assumptions t in
        if String.length name >= 8 && String.sub name 0 8 = "liveness" then a = [ "St-3"; "St-4" ]
        else a = [])
      thms
  in
  let ok6 = row fmt "kernel replay: liveness assumes exactly St-3, St-4" true liveness_conditional in
  let m = Space.manager lossy.Seqtrans.sspace in
  let si = Program.si prog in
  let equal_k =
    List.for_all
      (fun (k, alpha) ->
        Bdd.is_true
          (Bdd.imp m si
             (Bdd.iff m (Seqtrans.cand_kr lossy ~k ~alpha) (Seqtrans.real_kr lossy ~k ~alpha))))
      [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    && List.for_all
         (fun k ->
           Bdd.is_true
             (Bdd.imp m si
                (Bdd.iff m (Seqtrans.cand_kskr lossy ~k) (Seqtrans.real_kskr lossy ~k))))
         [ 0; 1 ]
  in
  let ok7 = row fmt "(50)/(51) ≡ the knowledge predicates ([HZar] Prop 4.5)" true equal_k in
  ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7

(* ---- E5 ----------------------------------------------------------------- *)

let e5_laws fmt =
  header fmt "E5 · Laws (7)-(24): wcyl, S5 and junctivity";
  (* the paper's own counterexample to (12) *)
  let sp = Space.create () in
  let x = Space.nat_var sp "x" ~max:3 in
  let y = Space.nat_var sp "y" ~max:3 in
  let m = Space.manager sp in
  let gt0 v = Expr.compile_bool sp Expr.(var v >>> nat 0) in
  let f = Wcyl.wcyl sp [ x ] in
  let p = Bdd.and_ m (gt0 x) (gt0 y) in
  let q = Bdd.and_ m (gt0 x) (Bdd.not_ m (gt0 y)) in
  let ok1 =
    row fmt "(12) wcyl.x.(x>0∧y>0) = wcyl.x.(x>0∧y≤0) = false" true
      (Bdd.is_false (Pred.normalize sp (f p)) && Bdd.is_false (Pred.normalize sp (f q)))
  in
  let ok2 =
    row fmt "(12) while wcyl.x.(x>0) = x>0: disjunctivity fails" true
      (Pred.equivalent sp (f (Bdd.or_ m p q)) (gt0 x))
  in
  (* S5 on the standard protocol's receiver *)
  let st = Seqtrans.standard ~lossy:false { Seqtrans.n = 2; a = 2 } in
  let k pr = Kpt_core.Knowledge.knows_in st.Seqtrans.sprog "Receiver" pr in
  let fact = Expr.compile_bool st.Seqtrans.sspace Expr.(var st.Seqtrans.xs.(0) === nat 1) in
  let sp2 = st.Seqtrans.sspace in
  let ok3 =
    row fmt "(14) K p ⇒ p and (16) K p ≡ K K p on the protocol" true
      (Pred.holds_implies sp2 (k fact) fact && Pred.equivalent sp2 (k fact) (k (k fact)))
  in
  let m2 = Space.manager sp2 in
  let ok4 =
    row fmt "(17) ¬K p ≡ K ¬K p" true
      (Pred.equivalent sp2 (Bdd.not_ m2 (k fact)) (k (Bdd.not_ m2 (k fact))))
  in
  let ok5 =
    row fmt "(23) invariant p ≡ invariant K p" true
      (Program.invariant st.Seqtrans.sprog fact
      = Program.invariant st.Seqtrans.sprog (k fact))
  in
  ok1 && ok2 && ok3 && ok4 && ok5

(* ---- E6 ----------------------------------------------------------------- *)

let e6_apriori fmt =
  header fmt "E6 · §6.4: a priori knowledge of x₀";
  let v = Apriori.instantiation_breaks { Seqtrans.n = 2; a = 2 } ~known_value:1 in
  let ok1 = row fmt "(50) remains sound under pinned x₀" true v.Apriori.cand_implies_k in
  let ok2 = row fmt "(50) is NO LONGER the weakest predicate" false v.Apriori.k_implies_cand in
  let ok3 =
    row fmt "the standard protocol still meets the specification" true
      (v.Apriori.still_safe && v.Apriori.still_live)
  in
  let p = { Seqtrans.n = 4; a = 2 } in
  let _, data_std, _ = Apriori.average_counts (fun seed -> Apriori.run_standard ~seed p) ~seeds:10 in
  let _, data_opt, _ = Apriori.average_counts (fun seed -> Apriori.run_optimal ~seed p) ~seeds:10 in
  Format.fprintf fmt "  data transmissions (mean over 10 runs, n=4): standard %.1f vs optimal %.1f@."
    data_std data_opt;
  let ok4 = row fmt "knowledge-optimal variant sends fewer messages" true (data_opt < data_std) in
  ok1 && ok2 && ok3 && ok4

(* ---- E7 ----------------------------------------------------------------- *)

let e7_sst fmt =
  header fmt "E7 · sst monotone for standard programs; Ĝ non-monotone for KBPs";
  let rng = Stdlib.Random.State.make [| 17 |] in
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let s1 = Stmt.make ~name:"s1" ~guard:(Expr.var x) [ (y, Expr.tru) ] in
  let s2 = Stmt.make ~name:"s2" [ (x, Expr.(var x ||| var y)) ] in
  let prog = Program.make sp ~name:"std" ~init:Expr.tru [ s1; s2 ] in
  let ok1 =
    row fmt "sst of a standard program is monotone (eq. 4)" true
      (Junctivity.monotonic sp (Program.sst prog) ~samples:8 rng = None)
  in
  let kbp = figure1 () in
  let ok2 =
    row fmt "Ĝ of Figure 1's KBP is NOT monotone (§4)" false
      (Junctivity.monotonic (Kbp.space kbp) (Kbp.g_operator kbp) ~samples:8 rng = None)
  in
  ok1 && ok2

(* ---- E8 ----------------------------------------------------------------- *)

let e8_crossval fmt =
  header fmt "E8 · predicate-transformer K ≡ run-based view knowledge ([HM90])";
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let ok1 =
    row fmt "explicit reachable set = symbolic SI" true
      (Kpt_runs.Reachability.si_agrees st.Seqtrans.sprog)
  in
  let fact =
    Expr.compile_bool st.Seqtrans.sspace Expr.(var st.Seqtrans.xs.(0) === nat 1)
  in
  let ok2 =
    row fmt "K_Receiver(x₀ = 1) = view-based knowledge" true
      (Kpt_runs.Reachability.knowledge_agrees st.Seqtrans.sprog "Receiver" fact)
  in
  ok1 && ok2

(* ---- E9 ----------------------------------------------------------------- *)

let e9_refinements fmt =
  header fmt "E9 · the protocol family: ABP, Stenning, AUY";
  let params = { Seqtrans.n = 2; a = 2 } in
  let abp = Abp.make ~lossy:false params in
  let ok1 =
    row fmt "ABP meets the spec (safety + liveness, dup-only channel)" true
      (Program.invariant abp.Abp.prog (Abp.safety abp)
      && Abp.liveness_holds abp ~k:0 && Abp.liveness_holds abp ~k:1)
  in
  let abl = Abp.make ~lossy:true params in
  let ok2 =
    row fmt "ABP stays SAFE under loss+duplication, liveness fails" true
      (Program.invariant abl.Abp.prog (Abp.safety abl)
      && not (Abp.liveness_holds abl ~k:0))
  in
  let stn = Stenning.make ~lossy:false params in
  let ok3 =
    row fmt "Stenning meets the spec" true
      (Program.invariant stn.Stenning.prog (Stenning.safety stn)
      && Stenning.liveness_holds stn ~k:0 && Stenning.liveness_holds stn ~k:1)
  in
  let auy = Auy.make { Seqtrans.n = 2; a = 4 } in
  let ok4 =
    row fmt "AUY synchronous model meets the spec" true
      (Program.invariant auy.Auy.prog (Auy.safety auy) && Auy.liveness_holds auy ~k:0)
  in
  Format.fprintf fmt "  AUY economy: %d bits per element for |A| = 4 (no acks, no seq numbers)@."
    (Auy.messages_per_element auy);
  let win = Window.make ~lossy:false ~window:2 params in
  let ok5 =
    row fmt "sliding window (w=2) meets the spec" true
      (Program.invariant win.Window.prog (Window.safety win)
      && Window.liveness_holds win ~k:0 && Window.liveness_holds win ~k:1)
  in
  let steps w =
    let t = Window.make ~lossy:false ~window:w { Seqtrans.n = 4; a = 2 } in
    let total = ref 0 in
    for seed = 1 to 8 do total := !total + Window.simulate_steps ~seed t done;
    !total / 8
  in
  let s1 = steps 1 and s2 = steps 2 in
  Format.fprintf fmt "  pipelining: mean steps to deliver n=4 — window 1: %d, window 2: %d@." s1 s2;
  let ok6 = row fmt "wider window pipelines (fewer steps)" true (s2 < s1) in
  ok1 && ok2 && ok3 && ok4 && ok5 && ok6

(* ---- E10 ---------------------------------------------------------------- *)

let e10_extensions fmt =
  header fmt "E10 · extensions: knowledge dynamics, view spectrum, refinement";
  let st = Seqtrans.standard ~lossy:true { Seqtrans.n = 2; a = 2 } in
  let sp = st.Seqtrans.sspace in
  let prog = st.Seqtrans.sprog in
  let j_ge_1 = Expr.compile_bool sp Expr.(var st.Seqtrans.j >== nat 1) in
  let ok1 =
    row fmt "Figure 4 encodes its own recall: K_S(j ≥ 1) never forgotten" true
      (Kpt_core.Kflow.knowledge_stable prog "Sender" j_ge_1)
  in
  let i0 = Expr.compile_bool sp Expr.(var st.Seqtrans.i === nat 0) in
  let ok2 =
    row fmt "…while K_R(i = 0) is destroyed by the receiver's own steps" false
      (Kpt_core.Kflow.knowledge_stable prog "Receiver" i0)
  in
  (* view spectrum on the evidence-overwriting observer *)
  let osp = Space.create () in
  let secret = Space.bool_var osp "secret" in
  let r = Space.nat_var osp "r" ~max:2 in
  let oproc = Process.make "O" [ r ] in
  let obs =
    Program.make osp ~name:"observer" ~init:Expr.(var r === nat 0)
      ~processes:[ oproc; Process.make "S" [ secret ] ]
      [
        Stmt.make ~name:"observe" [ (r, Expr.(Ite (var secret, nat 2, nat 1))) ];
        Stmt.make ~name:"clear" [ (r, Expr.nat 0) ];
      ]
  in
  let sys = Kpt_runs.Interpreted.build ~depth:4 obs in
  let fact = Expr.compile_bool osp (Expr.var secret) in
  let ok3 =
    row fmt "perfect recall strictly refines the paper's state view" true
      (Kpt_runs.Interpreted.recall_strictly_finer_somewhere sys oproc fact obs <> None)
  in
  let dup = Seqtrans.standard ~lossy:false { Seqtrans.n = 2; a = 2 } in
  let map = Kpt_logic.Refine.project dup.Seqtrans.sspace sp [] in
  let ok4 =
    row fmt "dup-only channel refines the lossy one (safety transfers)" true
      (Kpt_logic.Refine.transfers_invariant ~abstract:prog ~concrete:dup.Seqtrans.sprog ~map
         (Seqtrans.spec_safety st))
  in
  let tpc = Commit.make ~participants:2 () in
  let ok5 =
    row fmt "2PC: the commit guard ≡ K_C(unanimity) (another Prop 4.5)" true
      (Commit.guard_is_knowledge tpc)
  in
  let ok6 =
    row fmt "2PC: distributed knowledge precedes individual knowledge" true
      (Commit.distributed_but_not_individual tpc)
  in
  let tpc_crash = Commit.make ~crashes:true ~participants:2 () in
  let ok7 =
    row fmt "2PC blocks under crash failures ([DM90] axis)" true
      (Commit.blocking_witness tpc_crash <> None
      && Commit.safety_holds tpc_crash
      && not (Commit.decision_live tpc_crash))
  in
  ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7

let run_all fmt =
  let all =
    [
      ("E1 figure 1", e1_figure1);
      ("E2 figure 2", e2_figure2);
      ("E3 figure 3", e3_figure3);
      ("E4 figure 4", e4_figure4);
      ("E5 laws 7-24", e5_laws);
      ("E6 a priori", e6_apriori);
      ("E7 sst/Ĝ", e7_sst);
      ("E8 crossval", e8_crossval);
      ("E9 refinements", e9_refinements);
      ("E10 extensions", e10_extensions);
    ]
  in
  List.map (fun (name, f) -> (name, f fmt)) all
