(** Parameterised protocol families for the generated corpus.

    Each family maps an instance size to a surface AST, covering the
    repo's behaviour classes: plain SI convergence ([ring], [transmit],
    [mutex]), deep fixpoints ([odometer]), converging KBPs ([relay]),
    cycling KBPs ([antiknow]) and random guarded soups ([soup]).  The
    PRNG is used only for verdict-neutral jitter — except in [soup],
    which is random throughout. *)

type built = {
  ast : Kpt_syntax.Ast.program;
  loss : Kpt_syntax.Ast.stmt list;
      (** Statements a lossy channel adds; [[]] means the family has no
          channel and the loss fault is inapplicable. *)
}

type t = {
  name : string;
  min_size : int;  (** sizes below this are clamped up *)
  build : n:int -> Rng.t -> built;
}

val all : t list
val find : string -> t option
val names : string list
