(** Seeded deterministic PRNG (SplitMix64) for the spec generator and
    the fuzz suites.

    Every random draw in the corpus pipeline flows from one of these, so
    a failure is replayable bit-for-bit from the printed seed: no
    dependence on [Random]'s unspecified evolution across OCaml
    releases, no dependence on generation order thanks to {!derive}. *)

type t

val make : int64 -> t
val of_int : int -> t
val copy : t -> t

val next : t -> int64
(** The raw 64-bit stream. *)

val int : t -> int -> int
(** [int t bound] draws from [\[0, bound)].  Raises [Invalid_argument]
    on [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** An independent child stream keyed by one draw of the parent. *)

val derive : int64 -> int -> t
(** [derive seed i] is the [i]-th derived stream of [seed],
    position-addressed: corpus instance [i] draws the same randomness
    whether it is generated alone or as part of a thousand. *)

val pick : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list

val random_state : t -> Random.State.t
(** A [Random.State.t] keyed from this stream, for library helpers
    ([Pred.random]) that want one — still fully determined by the
    seed. *)

val seed_of_string : string -> int64 option
(** Accepts decimal and (with or without the [0x] prefix) hex. *)

val seed_to_string : int64 -> string
(** Canonical [0x%Lx] rendering, accepted back by {!seed_of_string}. *)
