(** The corpus generator behind [kpt gen].

    {b Determinism contract.}  Instance [i] of a configuration is a
    function of [(seed, i, grid)] alone: its randomness comes from the
    position-addressed stream {!Rng.derive}[ seed i], never a shared
    cursor.  Same flags + same seed = byte-identical corpus, on any
    machine, at any count. *)

type fault = Fnone | Floss | Fstutter
type budget = Bnone | Bfuel of int

val fault_to_string : fault -> string
val fault_of_string : string -> fault option
val budget_to_string : budget -> string

val budget_of_string : string -> budget option
(** ["none"] or ["fuel:N"] with [N > 0]. *)

val envelope_limits : Kpt_predicate.Budget.limits
(** {!Kpt_analysis.Difftest.envelope_limits} — the generous,
    wall-clock-free budget expected envelopes are computed under (and
    difftest legs re-run under): deterministic exhaustion,
    machine-independent classes. *)

val limits_of_budget : budget -> Kpt_predicate.Budget.limits
(** [Bnone] maps to {!envelope_limits}; [Bfuel f] keeps the node ceiling
    but tightens fuel to [f]. *)

type expected = Kpt_analysis.Difftest.verdict = {
  failed : bool;
  codes : string list;  (** sorted, deduplicated diagnostic codes *)
  klass : string;
      (** ["standard"] | ["kbp_converged"] | ["kbp_cycle"] |
          ["exhausted"] | ["error"] *)
  exit_code : int;  (** [0] | [1] | [3], {!Kpt_analysis.Check.run_sources} semantics *)
}
(** The manifest stores the gen-time side of the gen-vs-run
    differential, so the envelope {e is} a difftest verdict. *)

type instance = {
  id : int;
  family : string;
  size : int;
  fault : fault;
  budget : budget;
  filename : string;
  source : string;  (** empty when parsed back from a manifest *)
  expected : expected;
}

type config = {
  families : string list;
  sizes : int list;
  faults : fault list;
  budgets : budget list;
  count : int;
  seed : int64;
}

val default_config : config

exception Bad_config of string

val validate : config -> unit
(** @raise Bad_config on empty axes, non-positive sizes/count or unknown
    family names. *)

val grid : config -> (string * int * fault * budget) list
(** The applicability-filtered combination grid (loss is skipped for
    families without a channel), family-major order. *)

val build_instance : config -> (string * int * fault * budget) list -> int -> instance
(** [build_instance config (grid config) i] — one instance, including
    its computed envelope; position-addressed, so independent of every
    other instance. *)

val generate : config -> instance list
(** Instances [0 .. count-1].  @raise Bad_config as {!validate}. *)

val manifest_json : config -> instance list -> Json.t

exception Bad_manifest of string

val instances_of_manifest : Json.t -> instance list
(** @raise Bad_manifest naming the missing/ill-typed field. *)

val write_corpus : dir:string -> config -> instance list
(** Generate, write every [.unity] file plus [manifest.json] into [dir]
    (created if missing), return the instances. *)

val config_of_manifest : Json.t -> config
(** The generation flags stored in a manifest — what a replay banner
    needs.  @raise Bad_manifest naming the missing/ill-typed field. *)

val read_manifest : string -> config * instance list
(** [read_manifest dir] parses [dir/manifest.json] back into the corpus
    configuration and its instances ([source] left empty).
    @raise Bad_manifest on absence or malformation. *)
