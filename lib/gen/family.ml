(* Parameterised protocol families for the generated corpus.

   Every builder constructs a surface AST ([Kpt_syntax.Ast.program]) —
   not library-level [Program.t]s — because the corpus deliverable is
   a directory of well-formed [.unity] files: the same bytes a user
   would feed the CLI, unparsed via [Mutate.to_source].

   The families cover the repo's behaviour classes on purpose:

   - [ring]      n-station token ring        — standard, converging SI
   - [transmit]  the §6 sequence transmission (transmit.unity scaled
                 to any horizon)             — standard, with a wire
   - [relay]     an m-hop knowledge relay (relay.unity generalised)
                 — a well-posed KBP whose Ĝ-iteration converges
   - [antiknow]  n disjoint copies of Figure 1 — the ill-posed KBP
                 whose chaotic iteration cycles
   - [mutex]     n-process turn mutex        — standard, shared turn
   - [odometer]  d-digit base-4 counter      — deep sst chain, and the
                 no-processes corner of the grammar
   - [soup]      random guarded programs over n variables (the
                 proplaws scenario shape, surfaced as text), sometimes
                 with a knowledge guard — the anything-goes diversity

   Builders take the instance's PRNG only for {e jitter} that must not
   change the verdict (statement order); [soup] is random through and
   through.  [loss] lists the fault-injection statements a lossy channel
   adds — empty when the family has no channel to lose. *)

open Kpt_syntax
open Ast

(* ---- tiny AST helpers ------------------------------------------------------- *)

let e node = Ast.mk node
let v x = e (Eident x)
let num k = e (Enum k)
let tru = e Etrue
let fls = e Efalse
let not_ a = e (Enot a)
let ( &&& ) a b = e (Eand (a, b))
let ( ||| ) a b = e (Eor (a, b))
let eq a b = e (Eeq (a, b))
let lt a b = e (Elt (a, b))
let le a b = e (Ele (a, b))
let gt a b = e (Egt (a, b))
let add a b = e (Eadd (a, b))
let sub a b = e (Esub (a, b))
let idx a i = e (Eindex (a, i))
let know p a = e (Eknow (p, a))
let conj = function [] -> tru | x :: xs -> List.fold_left ( &&& ) x xs

let stmt name targets exprs guard =
  {
    s_name = Some name;
    s_targets = List.map (fun t -> Tvar t) targets;
    s_exprs = exprs;
    s_guard = guard;
    s_span = Loc.dummy;
  }

let prog name vars processes init stmts =
  {
    p_name = name;
    p_vars = List.map (fun (ns, ty) -> (List.map (fun n -> (n, Loc.dummy)) ns, ty)) vars;
    p_processes = List.map (fun (n, vs) -> (n, vs, Loc.dummy)) processes;
    p_init = init;
    p_stmts = stmts;
  }

type built = {
  ast : program;
  loss : stmt list;
      (* statements a lossy channel adds; [] = no channel, loss inapplicable *)
}

(* ---- ring ------------------------------------------------------------------- *)

(* the token_ring.unity shape at any n: token circulates, a station only
   works while holding it, finished work hands it on; [done_] saturates
   so the program halts *)
let ring ~n _g =
  let n = max 2 n in
  let busy i = Printf.sprintf "busy%d" i in
  let stations = List.init n Fun.id in
  let vars =
    [ ([ "token" ], Tnat (n - 1)) ]
    @ [ (List.map busy stations, Tbool) ]
    @ [ ([ "work" ], Tnat n) ]
  in
  let processes =
    List.map (fun i -> (Printf.sprintf "S%d" i, [ "token"; busy i; "work" ])) stations
  in
  let init =
    conj
      ((eq (v "token") (num 0) :: List.map (fun i -> not_ (v (busy i))) stations)
      @ [ eq (v "work") (num 0) ])
  in
  let stmts =
    List.concat_map
      (fun i ->
        [
          stmt
            (Printf.sprintf "work%d" i)
            [ busy i ] [ tru ]
            (Some (eq (v "token") (num i) &&& not_ (v (busy i))));
          stmt
            (Printf.sprintf "rest%d" i)
            [ busy i; "token"; "work" ]
            [ fls; num ((i + 1) mod n); add (v "work") (num 1) ]
            (Some (v (busy i) &&& lt (v "work") (num n)));
        ])
      stations
  in
  { ast = prog "ring" vars processes init stmts; loss = [] }

(* ---- transmit --------------------------------------------------------------- *)

(* transmit.unity at horizon [n] (alphabet fixed at {0,1}): the sender
   publishes x[i] on a wire with its index, the receiver delivers in
   order.  The wire is the channel: loss clears it back to the empty
   mark [n]. *)
let transmit ~n _g =
  let n = max 2 n in
  let vars =
    [
      ([ "x" ], Tarray (Tnat 1, n));
      ([ "w" ], Tarray (Tnat 1, n));
      ([ "i"; "j" ], Tnat n);
      ([ "wire_idx" ], Tnat n);
      ([ "wire_val" ], Tnat 1);
    ]
  in
  let processes = [ ("Sender", [ "x"; "i" ]); ("Receiver", [ "w"; "j" ]) ] in
  let init =
    conj
      ([ eq (v "i") (num 0); eq (v "j") (num 0) ]
      @ List.init n (fun k -> eq (idx "w" (num k)) (num 0))
      @ [ eq (v "wire_idx") (num n); eq (v "wire_val") (num 0) ])
  in
  let stmts =
    [
      {
        (stmt "send" [] [] None) with
        s_targets = [ Tvar "wire_idx"; Tvar "wire_val" ];
        s_exprs = [ v "i"; idx "x" (v "i") ];
        s_guard = Some (lt (v "i") (num n) &&& le (v "i") (v "j"));
      };
      stmt "advance" [ "i" ]
        [ add (v "i") (num 1) ]
        (Some (conj [ lt (v "i") (num n); eq (v "wire_idx") (v "i"); gt (v "j") (v "i") ]));
      {
        (stmt "deliver" [] [] None) with
        s_targets = [ Tindex ("w", v "j"); Tvar "j" ];
        s_exprs = [ v "wire_val"; add (v "j") (num 1) ];
        s_guard = Some (eq (v "wire_idx") (v "j") &&& lt (v "j") (num n));
      };
    ]
  in
  {
    ast = prog "transmit" vars processes init stmts;
    loss =
      [ stmt "lose" [ "wire_idx" ] [ num n ] (Some (lt (v "wire_idx") (num n))) ];
  }

(* ---- relay ------------------------------------------------------------------ *)

(* relay.unity generalised to an m-hop chain: flag b0 is raised and
   published hop by hop; stage i copies once it KNOWS b_{i-1} (the wire
   w_i is only ever driven by a raised b_{i-1}, so the knowledge guard
   is locally implementable and Ĝ converges).  The wires are the
   channel. *)
let relay ~n:m _g =
  let m = max 1 m in
  let b i = Printf.sprintf "b%d" i in
  let w i = Printf.sprintf "w%d" i in
  let hops = List.init m (fun i -> i + 1) in
  let vars =
    [ (List.init (m + 1) b, Tbool); (List.map w hops, Tbool) ]
  in
  let processes =
    (* P0 drives b0 and the first wire; Pi sees its in-wire, its copy
       and (inner hops) the out-wire it drives *)
    ("P0", [ b 0; w 1 ])
    :: List.map
         (fun i ->
           ( Printf.sprintf "P%d" i,
             if i < m then [ w i; b i; w (i + 1) ] else [ w i; b i ] ))
         hops
  in
  let init =
    conj (List.init (m + 1) (fun i -> not_ (v (b i))) @ List.map (fun i -> not_ (v (w i))) hops)
  in
  let stmts =
    stmt "raise" [ b 0 ] [ tru ] (Some (not_ (v (b 0))))
    :: List.concat_map
         (fun i ->
           [
             stmt (Printf.sprintf "pub%d" i) [ w i ] [ tru ]
               (Some (v (b (i - 1)) &&& not_ (v (w i))));
             stmt
               (Printf.sprintf "copy%d" i)
               [ b i ] [ tru ]
               (Some (know (Printf.sprintf "P%d" i) (v (b (i - 1))) &&& not_ (v (b i))));
           ])
         hops
  in
  {
    ast = prog "relay" vars processes init stmts;
    loss =
      List.map
        (fun i -> stmt (Printf.sprintf "lose%d" i) [ w i ] [ fls ] (Some (v (w i))))
        hops;
  }

(* ---- antiknow --------------------------------------------------------------- *)

(* [n] disjoint copies of Figure 1 — the KBP with no solution: P0 only
   sees [shared], its guard asks whether it KNOWS x is still false, and
   the chaotic iteration enters a cycle instead of converging.  The
   shared flag doubles as the lossy channel. *)
let antiknow ~n _g =
  let n = max 1 n in
  let sh i = Printf.sprintf "shared%d" i in
  let x i = Printf.sprintf "x%d" i in
  let copies = List.init n Fun.id in
  let vars = [ (List.map sh copies, Tbool); (List.map x copies, Tbool) ] in
  let processes =
    List.concat_map
      (fun i ->
        [
          (Printf.sprintf "A%d" i, [ sh i ]);
          (Printf.sprintf "B%d" i, [ sh i; x i ]);
        ])
      copies
  in
  let init = conj (List.concat_map (fun i -> [ not_ (v (sh i)); not_ (v (x i)) ]) copies) in
  let stmts =
    List.concat_map
      (fun i ->
        [
          stmt (Printf.sprintf "ask%d" i) [ sh i ] [ tru ]
            (Some (know (Printf.sprintf "A%d" i) (not_ (v (x i)))));
          stmt
            (Printf.sprintf "take%d" i)
            [ x i; sh i ] [ tru; fls ]
            (Some (v (sh i)));
        ])
      copies
  in
  {
    ast = prog "antiknow" vars processes init stmts;
    loss =
      List.map
        (fun i -> stmt (Printf.sprintf "lose%d" i) [ sh i ] [ fls ] (Some (v (sh i))))
        copies;
  }

(* ---- mutex ------------------------------------------------------------------ *)

(* the mutex.unity shape at any n: try / enter (when it is your turn and
   nobody is critical) / exit passing the turn on *)
let mutex ~n _g =
  let n = max 2 n in
  let t i = Printf.sprintf "t%d" i in
  let c i = Printf.sprintf "c%d" i in
  let ps = List.init n Fun.id in
  let vars =
    [ (List.concat_map (fun i -> [ t i; c i ]) ps, Tbool); ([ "turn" ], Tnat (n - 1)) ]
  in
  let processes = List.map (fun i -> (Printf.sprintf "P%d" i, [ t i; c i; "turn" ])) ps in
  let init =
    conj
      (List.concat_map (fun i -> [ not_ (v (t i)); not_ (v (c i)) ]) ps
      @ [ eq (v "turn") (num 0) ])
  in
  let others i = List.filter (fun j -> j <> i) ps in
  let stmts =
    List.concat_map
      (fun i ->
        [
          stmt (Printf.sprintf "try%d" i) [ t i ] [ tru ]
            (Some (not_ (v (t i)) &&& not_ (v (c i))));
          stmt
            (Printf.sprintf "enter%d" i)
            [ c i; t i ] [ tru; fls ]
            (Some
               (conj
                  (v (t i) :: eq (v "turn") (num i)
                  :: List.map (fun j -> not_ (v (c j))) (others i))));
          stmt
            (Printf.sprintf "exit%d" i)
            [ c i; "turn" ]
            [ fls; num ((i + 1) mod n) ]
            (Some (v (c i)));
        ])
      ps
  in
  { ast = prog "mutex" vars processes init stmts; loss = [] }

(* ---- odometer --------------------------------------------------------------- *)

(* a [d]-digit base-4 odometer: one new state per tick, so sst walks a
   long frontier chain — the deep-fixpoint end of the corpus, and the
   processes-section-free corner of the grammar *)
let odometer ~n:d _g =
  let d = max 1 d in
  let dg i = Printf.sprintf "d%d" i in
  let digits = List.init d Fun.id in
  let vars = [ (List.map dg digits, Tnat 3) ] in
  let init = conj (List.map (fun i -> eq (v (dg i)) (num 0)) digits) in
  let full upto = List.init upto (fun i -> eq (v (dg i)) (num 3)) in
  let stmts =
    stmt "tick" [ dg 0 ] [ add (v (dg 0)) (num 1) ] (Some (lt (v (dg 0)) (num 3)))
    :: List.filter_map
         (fun i ->
           if i = 0 then None
           else
             Some
               (stmt
                  (Printf.sprintf "carry%d" i)
                  (List.init (i + 1) dg)
                  (List.init i (fun _ -> num 0) @ [ add (v (dg i)) (num 1) ])
                  (Some (conj (full i @ [ lt (v (dg i)) (num 3) ])))))
         digits
  in
  { ast = prog "odometer" vars [] init stmts; loss = [] }

(* ---- soup ------------------------------------------------------------------- *)

(* random guarded programs over [n] variables — the proplaws scenario
   shape, surfaced as text.  Guards and boolean right-hand sides are
   random formulas; nat assignments stay range-safe by pairing [+1]/[-1]
   with the matching bound in the guard (the Program.make totality check
   is guard-aware).  With two processes declared, an occasional
   knowledge guard turns the instance into a KBP whose class the
   envelope records. *)
let soup ~n g =
  let n = max 2 n in
  let vars = List.init n (fun i -> Printf.sprintf "v%d" i) in
  (* each variable: bool (2/3) or nat(1..2) (1/3) *)
  let tys = List.map (fun x -> (x, if Rng.int g 3 < 2 then Tbool else Tnat (1 + Rng.int g 2))) vars in
  let card x = match List.assoc x tys with Tbool -> 2 | Tnat k -> k + 1 | _ -> 2 in
  let is_bool x = List.assoc x tys = Tbool in
  let rec bexpr depth =
    let leaf () =
      let x = Rng.pick g vars in
      if is_bool x then if Rng.bool g then v x else not_ (v x)
      else
        let k = num (Rng.int g (card x)) in
        if Rng.bool g then eq (v x) k else le (v x) k
    in
    if depth = 0 then match Rng.int g 6 with 0 -> tru | 1 -> fls | _ -> leaf ()
    else
      match Rng.int g 5 with
      | 0 -> bexpr (depth - 1) &&& bexpr (depth - 1)
      | 1 -> bexpr (depth - 1) ||| bexpr (depth - 1)
      | 2 -> e (Eimp (bexpr (depth - 1), bexpr (depth - 1)))
      | 3 -> not_ (bexpr (depth - 1))
      | _ -> leaf ()
  in
  (* two processes over a random cover of the variables *)
  let side = List.map (fun x -> (x, Rng.int g 3)) vars in
  let view s =
    match List.filter_map (fun (x, k) -> if k = s || k = 2 then Some x else None) side with
    | [] -> [ Rng.pick g vars ]
    | vs -> vs
  in
  let processes = [ ("P0", view 0); ("P1", view 1) ] in
  let nstmts = 2 + Rng.int g 3 in
  let stmts =
    List.init nstmts (fun i ->
        let x = Rng.pick g vars in
        let base_guard = bexpr 2 in
        let rhs, guard =
          if is_bool x then
            ( (match Rng.int g 4 with
              | 0 -> tru
              | 1 -> fls
              | 2 -> not_ (v x)
              | _ -> bexpr 1),
              base_guard )
          else
            let top = card x - 1 in
            match Rng.int g 4 with
            | 0 -> (num (Rng.int g (card x)), base_guard)
            | 1 -> (v x, base_guard)
            | 2 -> (add (v x) (num 1), base_guard &&& lt (v x) (num top))
            | _ -> (sub (v x) (num 1), base_guard &&& gt (v x) (num 0))
        in
        (* an occasional knowledge guard makes this instance a KBP *)
        let guard =
          if Rng.int g 6 = 0 then
            know (if Rng.bool g then "P0" else "P1") guard
          else guard
        in
        stmt (Printf.sprintf "s%d" i) [ x ] [ rhs ] (Some guard))
  in
  (* group same-type variables in declaration order *)
  let decls =
    let bools = List.filter is_bool vars in
    let nats = List.filter (fun x -> not (is_bool x)) vars in
    (if bools = [] then [] else [ (bools, Tbool) ])
    @ List.map (fun x -> ([ x ], List.assoc x tys)) nats
  in
  let init =
    (* satisfiable by construction: at most one literal per variable,
       so the conjunction always has a model (unconstrained variables
       just widen the initial region) *)
    match
      List.filter_map
        (fun x ->
          if Rng.int g 3 = 0 then None
          else if is_bool x then Some (if Rng.bool g then v x else not_ (v x))
          else Some (eq (v x) (num (Rng.int g (card x)))))
        vars
    with
    | [] -> tru
    | ls -> conj ls
  in
  { ast = prog "soup" decls processes init stmts; loss = [] }

(* ---- the registry ------------------------------------------------------------ *)

type t = {
  name : string;
  min_size : int;
  build : n:int -> Rng.t -> built;
}

let all =
  [
    { name = "ring"; min_size = 2; build = (fun ~n g -> ring ~n g) };
    { name = "transmit"; min_size = 2; build = (fun ~n g -> transmit ~n g) };
    { name = "relay"; min_size = 1; build = (fun ~n g -> relay ~n g) };
    { name = "antiknow"; min_size = 1; build = (fun ~n g -> antiknow ~n g) };
    { name = "mutex"; min_size = 2; build = (fun ~n g -> mutex ~n g) };
    { name = "odometer"; min_size = 1; build = (fun ~n g -> odometer ~n g) };
    { name = "soup"; min_size = 2; build = (fun ~n g -> soup ~n g) };
  ]

let find name = List.find_opt (fun f -> f.name = name) all
let names = List.map (fun f -> f.name) all
