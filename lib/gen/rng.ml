(* SplitMix64 (Steele, Lea & Flood): a 64-bit counter sequence pushed
   through a finalizing mixer.  Passes BigCrush; two instructions of
   state.  Promoted from test/test_proplaws.ml so the spec generator,
   the difftest harness and the property suites all replay from the same
   seed discipline — no dependency on [Random]'s unspecified evolution
   across OCaml releases. *)

type t = { mutable state : int64 }

let make seed = { state = seed }
let of_int seed = make (Int64.of_int seed)

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

(* An independent stream: one draw of the parent keys a child generator.
   The derived seed is a mixer output, so sibling streams started from
   consecutive draws are statistically unrelated. *)
let split t = make (next t)

(* The [i]-th derived stream of [seed], position-addressed: instance
   [i] of a corpus draws from [derive seed i] no matter how many other
   instances were generated before it — the property that makes
   [--count 1] replay of one corpus member possible. *)
let derive seed i =
  let g = make seed in
  g.state <- Int64.add g.state (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L);
  split g

let pick t = function
  | [] -> invalid_arg "Rng.pick"
  | xs -> List.nth xs (int t (List.length xs))

(* Fisher-Yates on an array copy; deterministic in the stream. *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* a [Random.State.t] seeded from this stream, for library helpers
   ([Pred.random]) that want one — still fully determined by the seed *)
let random_state t = Random.State.make [| int t 0x3FFFFFFF; int t 0x3FFFFFFF |]

let seed_of_string s =
  match Int64.of_string_opt s with
  | Some v -> Some v
  | None -> Int64.of_string_opt ("0x" ^ s)

let seed_to_string s = Printf.sprintf "0x%Lx" s
