(* The corpus generator behind [kpt gen]: a seeded, deterministic walk
   over the (family × size × fault × budget) grid, emitting well-formed
   [.unity] sources plus a manifest recording each instance's expected
   envelope.

   Determinism contract: instance [i] of a given configuration is a
   function of [(config.seed, i, grid)] alone — its randomness comes
   from the position-addressed stream [Rng.derive seed i], never from a
   shared cursor — so the same flags and seed produce a byte-identical
   corpus on any machine, in any generation order, at any [--count]. *)

open Kpt_syntax

type fault = Fnone | Floss | Fstutter
type budget = Bnone | Bfuel of int

let fault_to_string = function Fnone -> "none" | Floss -> "loss" | Fstutter -> "stutter"

let fault_of_string = function
  | "none" -> Some Fnone
  | "loss" -> Some Floss
  | "stutter" -> Some Fstutter
  | _ -> None

let budget_to_string = function Bnone -> "none" | Bfuel f -> Printf.sprintf "fuel:%d" f

let budget_of_string s =
  if s = "none" then Some Bnone
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "fuel" -> (
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some f when f > 0 -> Some (Bfuel f)
        | _ -> None)
    | _ -> None

(* the envelope budget: generous, and — like [Budget.analysis_default] —
   wall-clock-free, so an instance's expected class is machine-independent.
   Shared with the difftest harness: what gen records, difftest re-derives. *)
let envelope_limits = Kpt_analysis.Difftest.envelope_limits

let limits_of_budget = function
  | Bnone -> envelope_limits
  | Bfuel f -> Kpt_predicate.Budget.limits ~fuel:f ~max_nodes:4_000_000 ()

(* the expected envelope IS a difftest verdict — the manifest stores the
   gen-time side of the gen-vs-run differential *)
type expected = Kpt_analysis.Difftest.verdict = {
  failed : bool;
  codes : string list;
  klass : string;
  exit_code : int;
}

type instance = {
  id : int;
  family : string;
  size : int;
  fault : fault;
  budget : budget;
  filename : string;
  source : string;
  expected : expected;
}

type config = {
  families : string list;
  sizes : int list;
  faults : fault list;
  budgets : budget list;
  count : int;
  seed : int64;
}

let default_config =
  {
    families = Family.names;
    sizes = [ 1; 2; 3; 4 ];
    faults = [ Fnone; Floss; Fstutter ];
    budgets = [ Bnone; Bfuel 8 ];
    count = 1000;
    seed = 1L;
  }

exception Bad_config of string

let validate config =
  if config.count <= 0 then raise (Bad_config "count must be positive");
  if config.families = [] then raise (Bad_config "no families selected");
  if config.sizes = [] then raise (Bad_config "no sizes selected");
  if config.faults = [] then raise (Bad_config "no faults selected");
  if config.budgets = [] then raise (Bad_config "no budgets selected");
  List.iter
    (fun f ->
      if Family.find f = None then
        raise (Bad_config (Printf.sprintf "unknown family %S (known: %s)" f
                             (String.concat ", " Family.names))))
    config.families;
  List.iter
    (fun s -> if s <= 0 then raise (Bad_config "sizes must be positive"))
    config.sizes

(* whether the loss fault applies: the family must have a channel.
   Applicability is a property of the family alone (loss statements are
   derived from the structure, not the jitter), so probing with a
   throwaway stream is sound. *)
let loss_applicable fam =
  (fam.Family.build ~n:fam.Family.min_size (Rng.of_int 0)).Family.loss <> []

(* the combination grid, applicability-filtered, in deterministic
   (family-major) order *)
let grid config =
  List.concat_map
    (fun fname ->
      let fam = Option.get (Family.find fname) in
      List.concat_map
        (fun size ->
          List.concat_map
            (fun fault ->
              if fault = Floss && not (loss_applicable fam) then []
              else List.map (fun b -> (fname, size, fault, b)) config.budgets)
            config.faults)
        config.sizes)
    config.families

let apply_fault g fault (built : Family.built) =
  let ast = built.Family.ast in
  match fault with
  | Fnone -> ast
  | Floss -> { ast with Ast.p_stmts = ast.Ast.p_stmts @ built.Family.loss }
  | Fstutter ->
      (* a self-assignment on a random scalar variable (arrays have no
         whole-array assignment form): a no-op the hygiene lint is
         expected to flag, never a verdict change *)
      let scalars =
        List.concat_map
          (fun (names, ty) ->
            match ty with Ast.Tarray _ -> [] | _ -> List.map fst names)
          ast.Ast.p_vars
      in
      let x = Rng.pick g scalars in
      let idle =
        {
          Ast.s_name = Some "idle";
          s_targets = [ Ast.Tvar x ];
          s_exprs = [ Ast.mk (Ast.Eident x) ];
          s_guard = None;
          s_span = Loc.dummy;
        }
      in
      { ast with Ast.p_stmts = ast.Ast.p_stmts @ [ idle ] }

(* the expected envelope: what one [kpt check] of this source, under the
   instance's budget, must report — computed exactly the way the
   difftest base leg recomputes it (fresh engine per task) *)
let envelope ~filename ~budget source =
  Kpt_analysis.Difftest.check_verdict ~limits:(limits_of_budget budget) ~file:filename
    source

(* instance [i]: pick the grid point round-robin, then derive its
   private stream — the only source of randomness in its construction *)
let build_instance config grid_points i =
  let fname, size, fault, budget = List.nth grid_points (i mod List.length grid_points) in
  let fam = Option.get (Family.find fname) in
  let g = Rng.derive config.seed i in
  let built = fam.Family.build ~n:(max fam.Family.min_size size) g in
  let ast = apply_fault g fault built in
  (* verdict-neutral jitter: UNITY statements are an unordered set *)
  let n = List.length ast.Ast.p_stmts in
  let ast = Mutate.permute_stmts (Rng.shuffle g (List.init n Fun.id)) ast in
  let source = Mutate.to_source ast in
  let filename =
    Printf.sprintf "%s-n%02d-%s-%s-%04d.unity" fname size (fault_to_string fault)
      (String.map (fun c -> if c = ':' then '-' else c) (budget_to_string budget))
      i
  in
  let expected = envelope ~filename ~budget source in
  { id = i; family = fname; size; fault; budget; filename; source; expected }

let generate config =
  validate config;
  let points = grid config in
  List.init config.count (build_instance config points)

(* ---- manifest --------------------------------------------------------------- *)

let manifest_version = 1

let expected_to_json e =
  Json.Obj
    [
      ("codes", Json.List (List.map (fun c -> Json.String c) e.codes));
      ("failed", Json.Bool e.failed);
      ("class", Json.String e.klass);
      ("exit", Json.Int e.exit_code);
    ]

let instance_to_json inst =
  Json.Obj
    [
      ("id", Json.Int inst.id);
      ("family", Json.String inst.family);
      ("size", Json.Int inst.size);
      ("fault", Json.String (fault_to_string inst.fault));
      ("budget", Json.String (budget_to_string inst.budget));
      ("file", Json.String inst.filename);
      ("expected", expected_to_json inst.expected);
    ]

let manifest_json config instances =
  Json.Obj
    [
      ("version", Json.Int manifest_version);
      ("seed", Json.String (Rng.seed_to_string config.seed));
      ("count", Json.Int config.count);
      ("families", Json.List (List.map (fun f -> Json.String f) config.families));
      ("sizes", Json.List (List.map (fun s -> Json.Int s) config.sizes));
      ("faults", Json.List (List.map (fun f -> Json.String (fault_to_string f)) config.faults));
      ( "budgets",
        Json.List (List.map (fun b -> Json.String (budget_to_string b)) config.budgets) );
      ("instances", Json.List (List.map instance_to_json instances));
    ]

exception Bad_manifest of string

let mfail fmt = Printf.ksprintf (fun s -> raise (Bad_manifest s)) fmt

let req ~what to_v key j =
  match Option.bind (Json.member key j) to_v with
  | Some v -> v
  | None -> mfail "manifest: missing or ill-typed %S (%s)" key what

let expected_of_json j =
  {
    codes =
      req ~what:"expected" Json.to_list "codes" j
      |> List.map (fun c ->
             match Json.to_str c with
             | Some s -> s
             | None -> mfail "manifest: non-string code in expected.codes");
    failed = req ~what:"expected" Json.to_bool "failed" j;
    klass = req ~what:"expected" Json.to_str "class" j;
    exit_code = req ~what:"expected" Json.to_int "exit" j;
  }

(* parse an instance entry back (the [source] field is not stored in
   the manifest — difftest reads the [.unity] file from the corpus
   directory) *)
let instance_of_json j =
  let str_field ~what k = req ~what Json.to_str k j in
  {
    id = req ~what:"instance" Json.to_int "id" j;
    family = str_field ~what:"instance" "family";
    size = req ~what:"instance" Json.to_int "size" j;
    fault =
      (match fault_of_string (str_field ~what:"instance" "fault") with
      | Some f -> f
      | None -> mfail "manifest: bad fault");
    budget =
      (match budget_of_string (str_field ~what:"instance" "budget") with
      | Some b -> b
      | None -> mfail "manifest: bad budget");
    filename = str_field ~what:"instance" "file";
    source = "";
    expected =
      (match Json.member "expected" j with
      | Some e -> expected_of_json e
      | None -> mfail "manifest: missing expected");
  }

let instances_of_manifest j =
  (match Option.bind (Json.member "version" j) Json.to_int with
  | Some v when v = manifest_version -> ()
  | Some v -> mfail "manifest: version %d (this build reads %d)" v manifest_version
  | None -> mfail "manifest: missing version");
  req ~what:"manifest" Json.to_list "instances" j |> List.map instance_of_json

(* parse the generation flags back — what a replay banner needs *)
let config_of_manifest j =
  let str_list ~what k =
    req ~what Json.to_list k j
    |> List.map (fun v ->
           match Json.to_str v with
           | Some s -> s
           | None -> mfail "manifest: non-string in %S" k)
  in
  {
    families = str_list ~what:"manifest" "families";
    sizes =
      req ~what:"manifest" Json.to_list "sizes" j
      |> List.map (fun v ->
             match Json.to_int v with
             | Some s -> s
             | None -> mfail "manifest: non-int size");
    faults =
      str_list ~what:"manifest" "faults"
      |> List.map (fun s ->
             match fault_of_string s with
             | Some f -> f
             | None -> mfail "manifest: bad fault %S" s);
    budgets =
      str_list ~what:"manifest" "budgets"
      |> List.map (fun s ->
             match budget_of_string s with
             | Some b -> b
             | None -> mfail "manifest: bad budget %S" s);
    count = req ~what:"manifest" Json.to_int "count" j;
    seed =
      (match Rng.seed_of_string (req ~what:"manifest" Json.to_str "seed" j) with
      | Some s -> s
      | None -> mfail "manifest: bad seed");
  }

(* ---- corpus directory ------------------------------------------------------- *)

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let write_corpus ~dir config =
  let instances = generate config in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter (fun i -> write_file (Filename.concat dir i.filename) i.source) instances;
  write_file
    (Filename.concat dir "manifest.json")
    (Json.to_string (manifest_json config instances) ^ "\n");
  instances

let read_manifest dir =
  let path = Filename.concat dir "manifest.json" in
  if not (Sys.file_exists path) then mfail "no manifest.json in %s (run kpt gen first)" dir;
  let ic = open_in_bin path in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let j = try Json.of_string content with Json.Parse_error m -> mfail "manifest: %s" m in
  (config_of_manifest j, instances_of_manifest j)
