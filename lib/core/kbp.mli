(** Knowledge-based protocols (§4): UNITY programs whose guards are
    knowledge formulas.

    A KBP does not directly denote a set of runs: its [SP] depends on the
    strongest invariant [SI], which depends on [SP] (eq. 25).  Following
    the paper we take a {e solution} of the KBP to be a predicate [X] such
    that instantiating every knowledge guard at [SI := X] yields a
    standard program whose strongest invariant is [X] itself — a fixpoint
    of the operator [Ĝ(X) = sst_{P[X]}.init].

    Because [ŜP] is not monotonic (§4), a KBP may have {e no} solution
    (Figure 1), several, and its solutions are not monotonic in the
    initial condition (Figure 2).  {!solutions} decides all of this
    exactly on small spaces by exhaustive enumeration over candidate
    invariants; {!iterate} is the cheap heuristic that finds the fixpoint
    when chaotic iteration happens to converge, and exhibits the cycle
    that witnesses non-existence when it does not. *)

open Kpt_predicate
open Kpt_unity

type kstmt = {
  kname : string;
  kguard : Kform.t;
  kassigns : (Space.var * Expr.t) list;
}

type t

exception Ill_formed of string

val kstmt : name:string -> guard:Kform.t -> (Space.var * Expr.t) list -> kstmt

val make :
  Space.t ->
  name:string ->
  init:Expr.t ->
  processes:Process.t list ->
  kstmt list ->
  t
(** Build a KBP.  Every process named in a guard's [K] must appear in
    [processes]; sorts are checked as for standard statements.
    @raise Ill_formed otherwise. *)

val sub : ?name:string -> t -> kstmt list -> t
(** The slicing constructor: the KBP over a subset of [t]'s own
    statements (same space, initial condition and processes; the
    validated statement bases are carried along).  The subset must
    consist of (physically) [t]'s statements.
    @raise Ill_formed on an empty subset or a foreign statement. *)

val space : t -> Space.t
val name : t -> string
val init : t -> Bdd.t
val processes : t -> Process.t list
val kstmts : t -> kstmt list

val is_standard : t -> bool
(** True iff no guard mentions knowledge: the KBP is an ordinary program. *)

val to_standard_program : t -> Program.t
(** For a KBP with no knowledge guards: the ordinary UNITY program it
    denotes.  @raise Ill_formed if some guard mentions knowledge. *)

val instantiate : t -> si:Bdd.t -> Program.t
(** The standard program obtained by replacing every knowledge guard by
    its value at the candidate invariant (§4).
    @raise Program.Ill_formed on a totality violation — an instantiation
    can be illegal for some candidates. *)

val g_operator : t -> Bdd.t -> Bdd.t
(** [Ĝ(X) = sst_{P[X]}.init] — the operator whose fixpoints are the
    solutions of eq. 25. *)

val solutions : ?max_states:int -> t -> Bdd.t list
(** All solutions, by exhaustive enumeration of candidate invariants over
    an over-approximation of the universe of ever-reachable states.
    Results are normalised predicates, strongest first (by state count).
    @raise Invalid_argument if the candidate space exceeds [2^max_states]
    (default [max_states = 22]). *)

val strongest_solution : ?max_states:int -> t -> Bdd.t option
(** The solution implied by every other solution, if one exists — the
    paper's [SI] when the KBP is well-posed with a unique strongest
    fixpoint. *)

type outcome =
  | Converged of { si : Bdd.t; steps : int }
      (** a genuine solution of eq. 25 and the number of Ĝ-steps *)
  | Diverged of { orbit : Bdd.t list; steps : int }
      (** the orbit of a non-trivial cycle of the candidate sequence —
          the oscillation witness certifying that chaotic iteration finds
          no solution (the paper's Figure 1 behaviour) *)
  | Budget_exhausted of { reason : Budget.reason; steps : int; candidate : Bdd.t }
      (** the armed {!Budget} ran out; [candidate] is the newest
          candidate invariant computed before exhaustion (only produced
          by {!solve} — {!iterate} lets the exception propagate) *)

val iterate : ?max_steps:int -> t -> outcome
(** Chaotic iteration [X₀ = init-closure-candidate, X_{k+1} = Ĝ(X_k)]
    with cycle detection.  Never returns [Budget_exhausted]: an ambient
    engine budget propagates as {!Budget.Exhausted}.
    @raise Invalid_argument if [max_steps] is exhausted without
    repetition (cannot happen on finite spaces with the default). *)

val solve : ?budget:Budget.limits -> ?max_steps:int -> t -> outcome
(** {!iterate} under a freshly armed budget on the current engine
    ({!Engine.with_budget}); exhaustion — whether raised from the
    iteration loop, [Program.sst] or the BDD allocator — degrades to
    [Budget_exhausted] with the newest candidate instead of escaping. *)

val pp : Format.formatter -> t -> unit
