open Kpt_predicate

(* The weakest-cylinder operator (eq. 6) is the workhorse under every
   K_i; its call count, against the space's quant-cache hit counters,
   shows how much cylinder computation is actually being amortised. *)
let c_wcyl = Kpt_obs.counter "wcyl.calls"

let wcyl sp v p =
  Kpt_obs.incr c_wcyl;
  Pred.forall_vars sp (Pred.complement_vars sp v) p

let is_cylinder sp v p = Pred.depends_only_on sp p v
