open Kpt_predicate
open Kpt_unity

let c_knows = Kpt_obs.counter "knowledge.knows.calls"
let c_ck_runs = Kpt_obs.counter "knowledge.ck.runs"
let c_ck_rounds = Kpt_obs.counter "knowledge.ck.rounds"

let knows sp ~si proc p =
  Kpt_obs.incr c_knows;
  let m = Space.manager sp in
  let cyl = Wcyl.wcyl sp (Process.vars proc) (Bdd.imp m si p) in
  Bdd.and_ m p (Bdd.or_ m cyl (Bdd.not_ m si))

let knows_in prog pname p =
  let proc = Program.find_process prog pname in
  knows (Program.space prog) ~si:(Program.si prog) proc p

let everyone_knows sp ~si group p =
  let m = Space.manager sp in
  Bdd.conj m (List.map (fun proc -> knows sp ~si proc p) group)

(* Greatest fixpoint of x ↦ E(p ∧ x) (eq. 16).  The weakest cylinder is
   universally conjunctive, so wcyl_i(si ⇒ p ∧ x) splits into
   wcyl_i(si ⇒ p) ∧ wcyl_i(si ⇒ x) — identical BDDs by canonicity — and
   the p-cylinder of every process can be computed once, outside the
   fixpoint loop; each round only re-cylinders the shrinking x. *)
let common_knowledge sp ~si group p =
  let m = Space.manager sp in
  let not_si = Bdd.not_ m si in
  let per_proc =
    List.map
      (fun proc ->
        let vs = Process.vars proc in
        (vs, Wcyl.wcyl sp vs (Bdd.imp m si p)))
      group
  in
  let everyone_knows_p_and x =
    let q = Bdd.and_ m p x in
    Bdd.conj m
      (List.map
         (fun (vs, cyl_p) ->
           let cyl_x = Wcyl.wcyl sp vs (Bdd.imp m si x) in
           Bdd.and_ m q (Bdd.or_ m (Bdd.and_ m cyl_p cyl_x) not_si))
         per_proc)
  in
  Kpt_obs.incr c_ck_runs;
  let rec go i x nx =
    Kpt_obs.incr c_ck_rounds;
    let x' = everyone_knows_p_and x in
    let nx' = Pred.normalize sp x' in
    if Kpt_obs.enabled () then
      Kpt_obs.emit "ck.round"
        [ ("round", i); ("states", Space.count_states_of sp nx') ];
    if Bdd.equal nx nx' then x' else go (i + 1) x' nx'
  in
  let x0 = Bdd.tru m in
  go 1 x0 (Pred.normalize sp x0)

let distributed_knowledge sp ~si group p =
  let pooled =
    List.sort_uniq
      (fun a b -> compare (Space.idx a) (Space.idx b))
      (List.concat_map Process.vars group)
  in
  knows sp ~si (Process.make "⟨group⟩" pooled) p
