open Kpt_predicate
open Kpt_unity

type kstmt = {
  kname : string;
  kguard : Kform.t;
  kassigns : (Space.var * Expr.t) list;
}

type t = {
  space : Space.t;
  name : string;
  init : Bdd.t;
  processes : Process.t list;
  kstmts : kstmt list;
  (* Validated guardless statements, one per kstmt, built once:
     [instantiate] derives each concrete statement via
     [Stmt.with_guard_pred], so the compiled assignment relations are
     physically shared across every Ĝ-iteration. *)
  bases : Stmt.t list;
}

exception Ill_formed of string

let log_src = Logs.Src.create "kpt.kbp" ~doc:"knowledge-based protocol solvers"

module Log = (val Logs.src_log log_src)

(* Eq. 25 observability: every application of the Ĝ operator is counted
   (both solvers funnel through it), the exhaustive solver counts the
   candidates it tries, and chaotic iteration reports its fixpoint depth
   — with per-step candidate sizes streamed to the trace sink. *)
let c_g_apps = Kpt_obs.counter "kbp.g_operator.applications"
let c_candidates = Kpt_obs.counter "kbp.solutions.candidates"
let c_iterate_steps = Kpt_obs.counter "kbp.iterate.steps"

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let kstmt ~name ~guard assigns = { kname = name; kguard = guard; kassigns = assigns }

let make space ~name ~init ~processes kstmts =
  if kstmts = [] then ill_formed "kbp %s: empty statement list" name;
  let known = List.map Process.name processes in
  let bases =
    List.map
      (fun s ->
        List.iter
          (fun pname ->
            if not (List.mem pname known) then
              ill_formed "kbp %s: statement %s mentions unknown process %s" name s.kname pname)
          (Kform.processes_of s.kguard);
        (* reuse the standard statement validation for targets and sorts *)
        try Stmt.make ~name:s.kname s.kassigns
        with Stmt.Ill_formed msg -> ill_formed "kbp %s: %s" name msg)
      kstmts
  in
  let init_pred = Pred.normalize space (Expr.compile_bool space init) in
  if Bdd.is_false init_pred then ill_formed "kbp %s: unsatisfiable initial condition" name;
  { space; name; init = init_pred; processes; kstmts; bases }

(* The slicing constructor, mirroring [Program.sub_program]: a KBP over a
   subset of an existing KBP's statements, with the validated bases (and
   their memoised assignment relations) carried along.  Requiring the
   statements to be [k]'s own (physically) is what makes skipping
   re-validation sound. *)
let sub ?name:(sname = "") k kept =
  if kept = [] then ill_formed "kbp %s: empty slice (no statement kept)" k.name;
  let pairs = List.combine k.kstmts k.bases in
  let bases =
    List.map
      (fun s ->
        match List.find_opt (fun (s', _) -> s' == s) pairs with
        | Some (_, base) -> base
        | None ->
            ill_formed "kbp %s: slice statement %s is not one of the kbp's statements"
              k.name s.kname)
      kept
  in
  let name = if sname = "" then k.name else sname in
  { k with name; kstmts = kept; bases }

let space k = k.space
let name k = k.name
let init k = k.init
let processes k = k.processes
let kstmts k = k.kstmts
let is_standard k = List.for_all (fun s -> Kform.is_standard s.kguard) k.kstmts

let lookup_process k pname =
  try List.find (fun p -> Process.name p = pname) k.processes
  with Not_found -> ill_formed "kbp %s: unknown process %s" k.name pname

(* Build the concrete statements for a candidate [si] from the pre-built
   bases: only the guards are compiled afresh; the assignment relations
   stay memoised inside the shared statement caches. *)
let concrete_statements k ~si =
  List.map2
    (fun s base ->
      let g = Kform.compile k.space ~lookup:(lookup_process k) ~si s.kguard in
      Stmt.with_guard_pred base g)
    k.kstmts k.bases

let to_standard_program k =
  if not (List.for_all (fun s -> Kform.is_standard s.kguard) k.kstmts) then
    ill_formed "kbp %s: knowledge guards present; use instantiate" k.name;
  let stmts = concrete_statements k ~si:(Bdd.tru (Space.manager k.space)) in
  Program.make_with_init_pred k.space ~name:k.name ~init:k.init ~processes:k.processes stmts

let instantiate k ~si =
  let stmts = concrete_statements k ~si in
  Program.make_with_init_pred k.space ~name:k.name ~init:k.init ~processes:k.processes stmts

let g_operator k x =
  Kpt_obs.incr c_g_apps;
  Pred.normalize k.space (Program.si (instantiate k ~si:x))

(* Over-approximation of every state any solution can contain: closure of
   the initial states under unconditional statement bodies.  States whose
   unconditional execution is ill-formed contribute no transition (the
   genuine guard would have to be false there in any legal instantiation). *)
let universe k =
  let sp = k.space in
  let stmts = k.bases in
  let vars = Array.of_list (Space.vars sp) in
  let code st =
    let c = ref 0 in
    Array.iteri (fun i v -> c := (!c * Space.card v) + st.(i)) vars;
    !c
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push st =
    let c = code st in
    if not (Hashtbl.mem seen c) then begin
      let copy = Array.copy st in
      Hashtbl.add seen c copy;
      Queue.add copy queue
    end
  in
  List.iter push (Space.states_of sp k.init);
  while not (Queue.is_empty queue) do
    Engine.checkpoint ();
    let st = Queue.pop queue in
    List.iter
      (fun s -> match Stmt.exec sp s st with st' -> push st' | exception Stmt.Ill_formed _ -> ())
      stmts
  done;
  Hashtbl.fold (fun _ st acc -> st :: acc) seen []

let solutions ?(max_states = 22) k =
  let sp = k.space in
  let m = Space.manager sp in
  let init_states = Space.states_of sp k.init in
  let init_codes =
    List.map (fun st -> Array.to_list st) init_states
  in
  let free =
    List.filter (fun st -> not (List.mem (Array.to_list st) init_codes)) (universe k)
  in
  let nfree = List.length free in
  Log.debug (fun f ->
      f "solutions: %d initial states, %d free candidate states (2^%d candidates)"
        (List.length init_states) nfree nfree);
  if nfree > max_states then
    invalid_arg
      (Printf.sprintf "Kbp.solutions: %d free candidate states exceed the 2^%d budget" nfree
         max_states);
  let free = Array.of_list free in
  let base = Bdd.disj m (List.map (Space.pred_of_state sp) init_states) in
  let found = ref [] in
  for mask = 0 to (1 lsl nfree) - 1 do
    Engine.checkpoint ();
    let x = ref base in
    for b = 0 to nfree - 1 do
      if (mask lsr b) land 1 = 1 then x := Bdd.or_ m !x (Space.pred_of_state sp free.(b))
    done;
    Kpt_obs.incr c_candidates;
    let candidate = Pred.normalize sp !x in
    match g_operator k candidate with
    | gx -> if Bdd.equal gx candidate then found := candidate :: !found
    | exception Program.Ill_formed _ -> ()
  done;
  List.sort
    (fun a b -> compare (Space.count_states_of sp a) (Space.count_states_of sp b))
    !found

let strongest_solution ?max_states k =
  let sols = solutions ?max_states k in
  let sp = k.space in
  List.find_opt (fun x -> List.for_all (fun y -> Pred.holds_implies sp x y) sols) sols

type outcome =
  | Converged of { si : Bdd.t; steps : int }
  | Diverged of { orbit : Bdd.t list; steps : int }
  | Budget_exhausted of { reason : Budget.reason; steps : int; candidate : Bdd.t }

(* The chaotic-iteration engine behind both [iterate] and [solve]:
   [progress] tracks the newest (steps, candidate) pair so a budget
   exhaustion — raised from anywhere inside the Ĝ application, down to
   the BDD allocator — can still be reported against a concrete partial
   result. *)
let run_iteration k ~max_steps ~progress =
  let sp = k.space in
  let seen = Hashtbl.create 64 in
  let rec go x steps trail =
    if steps > max_steps then invalid_arg "Kbp.iterate: step budget exhausted";
    Kpt_obs.incr c_iterate_steps;
    Engine.checkpoint ~fuel:1 ();
    let x' = g_operator k x in
    progress := (steps + 1, x');
    Log.debug (fun f ->
        f "iterate step %d: candidate has %d states" steps (Space.count_states_of sp x'));
    if Kpt_obs.enabled () then
      Kpt_obs.emit "kbp.iterate"
        [ ("step", steps); ("candidate_states", Space.count_states_of sp x') ];
    if Bdd.equal x' x then Converged { si = x; steps }
    else if Hashtbl.mem seen (Bdd.uid x') then begin
      (* [trail] is newest-first; the orbit runs from the previous
         occurrence of x' through the newest element (and back to x'). *)
      let rec upto acc = function
        | [] -> acc
        | y :: rest -> if Bdd.equal y x' then y :: acc else upto (y :: acc) rest
      in
      Diverged { orbit = upto [] trail; steps }
    end
    else begin
      Hashtbl.add seen (Bdd.uid x') ();
      go x' (steps + 1) (x' :: trail)
    end
  in
  let x0 = Pred.normalize sp k.init in
  progress := (0, x0);
  Hashtbl.add seen (Bdd.uid x0) ();
  go x0 0 [ x0 ]

let iterate ?(max_steps = 10_000) k =
  run_iteration k ~max_steps ~progress:(ref (0, k.init))

let solve ?(budget = Budget.unlimited) ?(max_steps = 10_000) k =
  let progress = ref (0, Pred.normalize k.space k.init) in
  try Engine.with_budget budget (fun () -> run_iteration k ~max_steps ~progress)
  with Budget.Exhausted reason ->
    let steps, candidate = !progress in
    Budget_exhausted { reason; steps; candidate }

let pp fmt k =
  Format.fprintf fmt "@[<v 2>knowledge-based protocol %s@," k.name;
  Format.fprintf fmt "processes ";
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Process.pp fmt
    k.processes;
  Format.fprintf fmt "@,assign@,";
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,⫿ ")
    (fun fmt s ->
      let pp_assign fmt (v, rhs) =
        Format.fprintf fmt "%s := %a" (Space.name v) Expr.pp rhs
      in
      Format.fprintf fmt "@[<hov 2>%s:@ %a@ if %a@]" s.kname
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∥@ ") pp_assign)
        s.kassigns Kform.pp s.kguard)
    fmt k.kstmts;
  Format.fprintf fmt "@]"
