open Kpt_predicate
open Kpt_unity
open Kpt_core

exception Elab_error of Loc.span option * string

let err fmt = Format.kasprintf (fun s -> raise (Elab_error (None, s))) fmt
let err_at span fmt = Format.kasprintf (fun s -> raise (Elab_error (Some span, s))) fmt

(* Enum literals visible in a space: value name → index.  Requires global
   uniqueness, checked at declaration time for parsed programs and lazily
   here for externally built spaces. *)
let literal_table sp =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      (* enum variables are those whose value names are not bool/numeric *)
      for k = 0 to Space.card v - 1 do
        let name = Space.value_name v k in
        if
          name <> "true" && name <> "false"
          && not (String.length name > 0 && name.[0] >= '0' && name.[0] <= '9')
        then
          match Hashtbl.find_opt tbl name with
          | Some k' when k' <> k -> err "enum literal %s is ambiguous" name
          | _ -> Hashtbl.replace tbl name k
      done)
    (Space.vars sp);
  tbl

type half = E of Expr.t | F of Kform.t

(* arrays in scope: surface name → element variables *)
type ctx = { sp : Space.t; literals : (string, int) Hashtbl.t; arrays : (string, Space.var array) Hashtbl.t }

let as_expr ~at = function
  | E e -> e
  | F _ -> err_at at "knowledge operators may only appear in guards, not in arithmetic or init"

let as_kform = function E e -> Kform.base e | F f -> f

let rec elab ctx (e : Ast.expr) =
  let at = e.Ast.espan in
  let sub a = as_expr ~at:a.Ast.espan (elab ctx a) in
  match e.Ast.expr with
  | Ast.Etrue -> E Expr.tru
  | Ast.Efalse -> E Expr.fls
  | Ast.Enum n -> E (Expr.nat n)
  | Ast.Eident name -> (
      if Hashtbl.mem ctx.arrays name then err_at at "array %s used without an index" name;
      match Space.find ctx.sp name with
      | v -> E (Expr.var v)
      | exception Not_found -> (
          match Hashtbl.find_opt ctx.literals name with
          | Some k -> E (Expr.nat k)
          | None -> err_at at "unknown identifier %s" name))
  | Ast.Eindex (name, idx) -> (
      match Hashtbl.find_opt ctx.arrays name with
      | Some arr -> E (Expr.select arr (sub idx))
      | None -> err_at at "%s is not an array" name)
  | Ast.Enot a -> (
      match elab ctx a with
      | E e -> E (Expr.not_ e)
      | F f -> F (Kform.knot f))
  | Ast.Eand (a, b) -> bool_op ctx a b (fun x y -> Expr.(x &&& y)) (fun x y -> Kform.(x &&. y))
  | Ast.Eor (a, b) -> bool_op ctx a b (fun x y -> Expr.(x ||| y)) (fun x y -> Kform.(x ||. y))
  | Ast.Eimp (a, b) -> bool_op ctx a b (fun x y -> Expr.(x ==> y)) (fun x y -> Kform.(x ==>. y))
  | Ast.Eiff (a, b) ->
      bool_op ctx a b
        (fun x y -> Expr.Iff (x, y))
        (fun x y -> Kform.((x ==>. y) &&. (y ==>. x)))
  | Ast.Eeq (a, b) -> E Expr.(sub a === sub b)
  | Ast.Ene (a, b) -> E Expr.(sub a <<> sub b)
  | Ast.Elt (a, b) -> E Expr.(sub a <<< sub b)
  | Ast.Ele (a, b) -> E Expr.(sub a <== sub b)
  | Ast.Egt (a, b) -> E Expr.(sub a >>> sub b)
  | Ast.Ege (a, b) -> E Expr.(sub a >== sub b)
  | Ast.Eadd (a, b) -> E Expr.(sub a +! sub b)
  | Ast.Esub (a, b) -> E Expr.(sub a -! sub b)
  | Ast.Eknow (p, a) -> F (Kform.k p (as_kform (elab ctx a)))
  | Ast.Egroup (kind, ps, a) ->
      let f = as_kform (elab ctx a) in
      F
        (match kind with
        | Ast.Geveryone -> Kform.ek ps f
        | Ast.Gcommon -> Kform.ck ps f
        | Ast.Gdistributed -> Kform.dk ps f)

and bool_op ctx a b on_expr on_kform =
  match (elab ctx a, elab ctx b) with
  | E x, E y -> E (on_expr x y)
  | x, y -> F (on_kform (as_kform x) (as_kform y))

(* Recover array structure from a space's element naming convention
   ("name[k]"), so standalone predicates can index arrays of an already
   elaborated program. *)
let arrays_of_space sp =
  let groups : (string, (int * Space.var) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let name = Space.name v in
      match String.index_opt name '[' with
      | Some i when String.length name > i + 1 && name.[String.length name - 1] = ']' ->
          let base = String.sub name 0 i in
          let idx_s = String.sub name (i + 1) (String.length name - i - 2) in
          (match int_of_string_opt idx_s with
          | Some k ->
              let cur = match Hashtbl.find_opt groups base with Some l -> l | None -> [] in
              Hashtbl.replace groups base ((k, v) :: cur)
          | None -> ())
      | _ -> ())
    (Space.vars sp);
  let arrays = Hashtbl.create 8 in
  Hashtbl.iter
    (fun base elems ->
      let sorted = List.sort compare elems in
      arrays |> fun t -> Hashtbl.replace t base (Array.of_list (List.map snd sorted)))
    groups;
  arrays

let expr sp ast =
  let ctx = { sp; literals = literal_table sp; arrays = arrays_of_space sp } in
  as_expr ~at:ast.Ast.espan (elab ctx ast)

let declare_scalar sp ~at name = function
  | Ast.Tbool -> ignore (Space.bool_var sp name)
  | Ast.Tnat k ->
      if k < 0 then err_at at "nat(%d): negative bound" k;
      ignore (Space.nat_var sp name ~max:k)
  | Ast.Tenum vs ->
      if vs = [] then err_at at "enum with no values";
      ignore (Space.enum_var sp name ~values:(Array.of_list vs))
  | Ast.Tarray _ -> err_at at "nested arrays are not supported"

let program (p : Ast.program) =
  let sp = Space.create () in
  let arrays = Hashtbl.create 8 in
  (* declare variables *)
  List.iter
    (fun (names, ty) ->
      List.iter
        (fun (name, at) ->
          match ty with
          | Ast.Tarray (elem, len) ->
              if len <= 0 then err_at at "array %s has non-positive length" name;
              let elems =
                Array.init len (fun k ->
                    let ename = Printf.sprintf "%s[%d]" name k in
                    declare_scalar sp ~at ename elem;
                    Space.find sp ename)
              in
              Hashtbl.replace arrays name elems
          | _ -> declare_scalar sp ~at name ty)
        names)
    p.Ast.p_vars;
  let ctx = { sp; literals = literal_table sp; arrays } in
  let resolve_var ~at name =
    match Space.find sp name with
    | v -> v
    | exception Not_found -> err_at at "unknown variable %s" name
  in
  (* a process naming an array gets all its elements *)
  let resolve_proc_var ~at name =
    match Hashtbl.find_opt arrays name with
    | Some arr -> Array.to_list arr
    | None -> [ resolve_var ~at name ]
  in
  let processes =
    List.map
      (fun (name, vars, at) ->
        Process.make name (List.concat_map (resolve_proc_var ~at) vars))
      p.Ast.p_processes
  in
  let init = as_expr ~at:p.Ast.p_init.Ast.espan (elab ctx p.Ast.p_init) in
  let stmts =
    List.mapi
      (fun i (s : Ast.stmt) ->
        let at = s.Ast.s_span in
        let name = match s.Ast.s_name with Some n -> n | None -> Printf.sprintf "s%d" i in
        if List.length s.Ast.s_targets <> List.length s.Ast.s_exprs then
          err_at at "statement %s: %d targets but %d expressions" name
            (List.length s.Ast.s_targets) (List.length s.Ast.s_exprs);
        let assigns =
          List.concat
            (List.map2
               (fun target rhs ->
                 let rhs_e = as_expr ~at:rhs.Ast.espan (elab ctx rhs) in
                 match target with
                 | Ast.Tvar tname ->
                     if Hashtbl.mem arrays tname then
                       err_at at "statement %s: array %s assigned without an index" name tname;
                     [ (resolve_var ~at tname, rhs_e) ]
                 | Ast.Tindex (tname, idx) -> (
                     match Hashtbl.find_opt arrays tname with
                     | Some arr ->
                         Stmt.array_write arr
                           ~index:(as_expr ~at:idx.Ast.espan (elab ctx idx))
                           rhs_e
                     | None -> err_at at "statement %s: %s is not an array" name tname))
               s.Ast.s_targets s.Ast.s_exprs)
        in
        let guard =
          match s.Ast.s_guard with
          | None -> Kform.base Expr.tru
          | Some g -> as_kform (elab ctx g)
        in
        Kbp.kstmt ~name ~guard assigns)
      p.Ast.p_stmts
  in
  let kbp =
    try Kbp.make sp ~name:p.Ast.p_name ~init ~processes stmts with
    | Kbp.Ill_formed msg -> err "%s" msg
    | Expr.Type_error msg -> err "type error: %s" msg
  in
  (sp, kbp)
