type span = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let known s = s.line > 0
let make ~line ~col = { line; col }
let compare a b = if a.line <> b.line then Int.compare a.line b.line else Int.compare a.col b.col
let pp fmt s = Format.fprintf fmt "line %d, col %d" s.line s.col
