(** Elaboration: surface {!Ast.program} → a state space plus a
    knowledge-based program ({!Kpt_core.Kbp.t}).

    A program with no knowledge operators elaborates to a KBP that
    {!Kpt_core.Kbp.is_standard} accepts; use
    {!Kpt_core.Kbp.to_standard_program} to obtain the plain UNITY
    program.

    Name resolution: identifiers denote program variables first; an
    unresolved identifier is looked up among enum literals (which must be
    globally unique across enum types).  [init] and assignment right-hand
    sides must be knowledge-free; guards may use [K[p](…)], [E], [C],
    [D]. *)

open Kpt_predicate
open Kpt_core

exception Elab_error of Loc.span option * string
(** Source position of the offending construct when one is known (errors
    raised while validating the assembled program have none) and a
    message without the position — callers prepend [file:line:col]. *)

val program : Ast.program -> Space.t * Kbp.t
(** @raise Elab_error on unknown identifiers, sort errors, duplicate
    declarations, arity mismatches, or knowledge operators outside
    guards. *)

val expr : Space.t -> Ast.expr -> Kpt_unity.Expr.t
(** Elaborate a knowledge-free expression against an existing space
    (enum literals resolved against its variables). *)
