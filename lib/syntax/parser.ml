open Token

exception Parse_error of Loc.span * string

type state = { mutable toks : located list }

let error (lt : located) fmt =
  Format.kasprintf (fun s -> raise (Parse_error (span_of lt, s))) fmt

let peek st = match st.toks with [] -> assert false | t :: _ -> t
let next st =
  match st.toks with
  | [] -> assert false
  | t :: rest ->
      if t.tok <> EOF then st.toks <- rest;
      t

let expect st tok =
  let t = next st in
  if t.tok <> tok then error t "expected %s but found %s" (describe tok) (describe t.tok)

let ident st =
  let t = next st in
  match t.tok with
  | IDENT s -> s
  | _ -> error t "expected an identifier, found %s" (describe t.tok)

let ident_sp st =
  let t = next st in
  match t.tok with
  | IDENT s -> (s, span_of t)
  | _ -> error t "expected an identifier, found %s" (describe t.tok)

let number st =
  let t = next st in
  match t.tok with
  | NUM n -> n
  | _ -> error t "expected a number, found %s" (describe t.tok)

let ident_list_sp st =
  let rec go acc =
    let name = ident_sp st in
    if (peek st).tok = COMMA then begin
      ignore (next st);
      go (name :: acc)
    end
    else List.rev (name :: acc)
  in
  go []

let ident_list st = List.map fst (ident_list_sp st)

(* ---- expressions --------------------------------------------------------- *)

(* Each parse function stamps its result with the span of the expression's
   first token; [at] abbreviates the wrapping. *)
let at (lt : located) node = Ast.mk ~span:(span_of lt) node

(* precedence climbing: iff < imp < or < and < not < cmp < additive < atom *)
let rec parse_iff st =
  let lhs = parse_imp st in
  if (peek st).tok = IFF then begin
    ignore (next st);
    Ast.mk ~span:lhs.Ast.espan (Ast.Eiff (lhs, parse_iff st))
  end
  else lhs

and parse_imp st =
  let lhs = parse_or st in
  if (peek st).tok = IMP then begin
    ignore (next st);
    Ast.mk ~span:lhs.Ast.espan (Ast.Eimp (lhs, parse_imp st))
  end
  else lhs

and parse_or st =
  let lhs = ref (parse_and st) in
  while (peek st).tok = OR do
    ignore (next st);
    lhs := Ast.mk ~span:!lhs.Ast.espan (Ast.Eor (!lhs, parse_and st))
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while (peek st).tok = AND do
    ignore (next st);
    lhs := Ast.mk ~span:!lhs.Ast.espan (Ast.Eand (!lhs, parse_not st))
  done;
  !lhs

and parse_not st =
  if (peek st).tok = NOT then begin
    let t = next st in
    at t (Ast.Enot (parse_not st))
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let t = peek st in
  let binop mk =
    ignore (next st);
    Ast.mk ~span:lhs.Ast.espan (mk lhs (parse_add st))
  in
  match t.tok with
  | EQDEF -> binop (fun a b -> Ast.Eeq (a, b))
  | NE -> binop (fun a b -> Ast.Ene (a, b))
  | LT -> binop (fun a b -> Ast.Elt (a, b))
  | LE -> binop (fun a b -> Ast.Ele (a, b))
  | GT -> binop (fun a b -> Ast.Egt (a, b))
  | GE -> binop (fun a b -> Ast.Ege (a, b))
  | _ -> lhs

and parse_add st =
  let lhs = ref (parse_atom st) in
  let rec go () =
    match (peek st).tok with
    | PLUS ->
        ignore (next st);
        lhs := Ast.mk ~span:!lhs.Ast.espan (Ast.Eadd (!lhs, parse_atom st));
        go ()
    | MINUS ->
        ignore (next st);
        lhs := Ast.mk ~span:!lhs.Ast.espan (Ast.Esub (!lhs, parse_atom st));
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_atom st =
  let t = next st in
  match t.tok with
  | KTRUE -> at t Ast.Etrue
  | KFALSE -> at t Ast.Efalse
  | NUM n -> at t (Ast.Enum n)
  | IDENT s ->
      if (peek st).tok = LBRACK then begin
        ignore (next st);
        let e = parse_iff st in
        expect st RBRACK;
        at t (Ast.Eindex (s, e))
      end
      else at t (Ast.Eident s)
  | LPAR ->
      let e = parse_iff st in
      expect st RPAR;
      e
  | KKNOW ->
      expect st LBRACK;
      let p = ident st in
      expect st RBRACK;
      expect st LPAR;
      let e = parse_iff st in
      expect st RPAR;
      at t (Ast.Eknow (p, e))
  | KEVERY | KCOMMON | KDISTR ->
      let kind =
        match t.tok with
        | KEVERY -> Ast.Geveryone
        | KCOMMON -> Ast.Gcommon
        | _ -> Ast.Gdistributed
      in
      expect st LBRACK;
      let ps = ident_list st in
      expect st RBRACK;
      expect st LPAR;
      let e = parse_iff st in
      expect st RPAR;
      at t (Ast.Egroup (kind, ps, e))
  | _ -> error t "expected an expression, found %s" (describe t.tok)

(* ---- declarations --------------------------------------------------------- *)

let parse_ty st =
  let t = next st in
  let base =
    match t.tok with
    | KBOOL -> Ast.Tbool
    | KNAT ->
        expect st LPAR;
        let k = number st in
        expect st RPAR;
        Ast.Tnat k
    | KENUM ->
        expect st LPAR;
        let vs = ident_list st in
        expect st RPAR;
        Ast.Tenum vs
    | _ -> error t "expected a type (bool, nat(k) or enum(..)), found %s" (describe t.tok)
  in
  (* optional array suffixes: ty[n][m]… *)
  let rec suffix ty =
    if (peek st).tok = LBRACK then begin
      ignore (next st);
      let n = number st in
      expect st RBRACK;
      suffix (Ast.Tarray (ty, n))
    end
    else ty
  in
  suffix base

let parse_stmt st =
  let start = peek st in
  (* optional label: IDENT ':' — requires lookahead of two tokens *)
  let name =
    match st.toks with
    | { tok = IDENT s; _ } :: { tok = COLON; _ } :: rest ->
        st.toks <- rest;
        Some s
    | _ -> None
  in
  let parse_target () =
    let name = ident st in
    if (peek st).tok = LBRACK then begin
      ignore (next st);
      let e = parse_iff st in
      expect st RBRACK;
      Ast.Tindex (name, e)
    end
    else Ast.Tvar name
  in
  let rec targets acc =
    let tgt = parse_target () in
    if (peek st).tok = COMMA then begin
      ignore (next st);
      targets (tgt :: acc)
    end
    else List.rev (tgt :: acc)
  in
  let targets = targets [] in
  expect st BECOMES;
  let rec exprs acc =
    let e = parse_iff st in
    if (peek st).tok = COMMA then begin
      ignore (next st);
      exprs (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let es = exprs [] in
  let guard =
    if (peek st).tok = KIF then begin
      ignore (next st);
      Some (parse_iff st)
    end
    else None
  in
  {
    Ast.s_name = name;
    s_targets = targets;
    s_exprs = es;
    s_guard = guard;
    s_span = span_of start;
  }

let parse_program st =
  expect st KPROGRAM;
  let name = ident st in
  let vars = ref [] in
  while (peek st).tok = KVAR do
    ignore (next st);
    let names = ident_list_sp st in
    expect st COLON;
    let ty = parse_ty st in
    vars := (names, ty) :: !vars
  done;
  let processes = ref [] in
  if (peek st).tok = KPROCESSES then begin
    ignore (next st);
    let rec go () =
      match st.toks with
      | ({ tok = IDENT p; _ } as pt) :: { tok = EQDEF; _ } :: rest ->
          st.toks <- rest;
          expect st LBRACE;
          let vs = ident_list st in
          expect st RBRACE;
          processes := (p, vs, span_of pt) :: !processes;
          go ()
      | _ -> ()
    in
    go ()
  end;
  expect st KINIT;
  let init = parse_iff st in
  expect st KASSIGN;
  let stmts = ref [ parse_stmt st ] in
  while (peek st).tok = BAR do
    ignore (next st);
    stmts := parse_stmt st :: !stmts
  done;
  let t = peek st in
  if t.tok <> EOF then error t "unexpected %s after the assign section" (describe t.tok);
  {
    Ast.p_name = name;
    p_vars = List.rev !vars;
    p_processes = List.rev !processes;
    p_init = init;
    p_stmts = List.rev !stmts;
  }

let program_of_string src =
  let st = { toks = tokenize src } in
  parse_program st

let expr_of_string src =
  let st = { toks = tokenize src } in
  let e = parse_iff st in
  let t = peek st in
  if t.tok <> EOF then error t "unexpected %s after the expression" (describe t.tok);
  e
