(** Source positions for the surface syntax.

    The lexer stamps every token with a [span]; the parser threads the
    stamps into the AST, elaboration carries them into its errors and the
    static analyser ({!Kpt_analysis.Diagnostic}) renders them as
    [file:line:col].  Columns and lines are 1-based; {!dummy} (0,0) marks
    synthesised nodes with no source position. *)

type span = { line : int; col : int }

val dummy : span
(** The position of nodes built programmatically rather than parsed. *)

val known : span -> bool
(** [true] iff the span points into real source (is not {!dummy}). *)

val make : line:int -> col:int -> span
val compare : span -> span -> int
(** Document order: by line, then column. *)

val pp : Format.formatter -> span -> unit
(** ["line 3, col 12"] — the phrasing used inside error messages. *)
