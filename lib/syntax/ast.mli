(** Surface abstract syntax for the concrete UNITY / KBP notation, plus a
    pretty-printer that round-trips through the parser.

    Every expression, statement, variable declaration and process
    declaration carries the {!Loc.span} of its first token, so
    elaboration errors and the {!Kpt_analysis} lint passes can point at
    the exact source position.  Programmatically built nodes (see {!mk})
    carry {!Loc.dummy}. *)

type ty =
  | Tbool
  | Tnat of int  (** [nat(k)] = values 0..k *)
  | Tenum of string list
  | Tarray of ty * int  (** [ty[n]]: an array of [n] scalar elements *)

type expr = { expr : enode; espan : Loc.span }

and enode =
  | Etrue
  | Efalse
  | Enum of int
  | Eident of string  (** variable or enum literal — resolved at elaboration *)
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Eimp of expr * expr
  | Eiff of expr * expr
  | Eeq of expr * expr
  | Ene of expr * expr
  | Elt of expr * expr
  | Ele of expr * expr
  | Egt of expr * expr
  | Ege of expr * expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Eindex of string * expr  (** [a[e]]: dynamic array indexing *)
  | Eknow of string * expr  (** [K[p](e)] — span points at the [K] *)
  | Egroup of gkind * string list * expr  (** [E[..](e)], [C[..](e)], [D[..](e)] *)

and gkind = Geveryone | Gcommon | Gdistributed

val mk : ?span:Loc.span -> enode -> expr
(** Annotate a node; defaults to {!Loc.dummy} for synthesised syntax. *)

type target = Tvar of string | Tindex of string * expr  (** [a[e] := …] *)

type stmt = {
  s_name : string option;
  s_targets : target list;
  s_exprs : expr list;
  s_guard : expr option;
  s_span : Loc.span;  (** first token of the statement *)
}

type program = {
  p_name : string;
  p_vars : ((string * Loc.span) list * ty) list;  (** in declaration order *)
  p_processes : (string * string list * Loc.span) list;
  p_init : expr;
  p_stmts : stmt list;
}

val equal_expr : expr -> expr -> bool
(** Structural equality ignoring spans. *)

val equal_stmt : stmt -> stmt -> bool
(** Structural equality of targets, right-hand sides and guard, ignoring
    spans and statement names — the duplicate-statement test. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
(** Prints valid surface syntax (parse ∘ print = id up to statement
    names). *)
