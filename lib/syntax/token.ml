type token =
  | IDENT of string
  | NUM of int
  | KPROGRAM
  | KVAR
  | KPROCESSES
  | KINIT
  | KASSIGN
  | KIF
  | KBOOL
  | KNAT
  | KENUM
  | KTRUE
  | KFALSE
  | KKNOW
  | KEVERY
  | KCOMMON
  | KDISTR
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | COMMA
  | COLON
  | EQDEF
  | BECOMES
  | BAR
  | NOT
  | AND
  | OR
  | IMP
  | IFF
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | EOF

type located = { tok : token; line : int; col : int }

let span_of (lt : located) = Loc.make ~line:lt.line ~col:lt.col

exception Lex_error of Loc.span * string

let lex_error line col fmt =
  Format.kasprintf (fun s -> raise (Lex_error (Loc.make ~line ~col, s))) fmt

let keyword = function
  | "program" -> Some KPROGRAM
  | "var" -> Some KVAR
  | "processes" -> Some KPROCESSES
  | "init" -> Some KINIT
  | "assign" -> Some KASSIGN
  | "if" -> Some KIF
  | "bool" -> Some KBOOL
  | "nat" -> Some KNAT
  | "enum" -> Some KENUM
  | "true" -> Some KTRUE
  | "false" -> Some KFALSE
  | "K" -> Some KKNOW
  | "E" -> Some KEVERY
  | "C" -> Some KCOMMON
  | "D" -> Some KDISTR
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit tok = out := { tok; line = !line; col = !col } :: !out in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      emit (NUM (int_of_string (String.sub src !i (!j - !i))));
      advance (!j - !i)
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      emit (match keyword word with Some k -> k | None -> IDENT word);
      advance (!j - !i)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      if three = "<=>" then (emit IFF; advance 3)
      else
        match two with
        | ":=" -> emit BECOMES; advance 2
        | "/\\" -> emit AND; advance 2
        | "\\/" -> emit OR; advance 2
        | "=>" -> emit IMP; advance 2
        | "!=" -> emit NE; advance 2
        | "<=" -> emit LE; advance 2
        | ">=" -> emit GE; advance 2
        | "[]" -> emit BAR; advance 2
        | _ -> (
            match c with
            | '(' -> emit LPAR; advance 1
            | ')' -> emit RPAR; advance 1
            | '{' -> emit LBRACE; advance 1
            | '}' -> emit RBRACE; advance 1
            | '[' -> emit LBRACK; advance 1
            | ']' -> emit RBRACK; advance 1
            | ',' -> emit COMMA; advance 1
            | ':' -> emit COLON; advance 1
            | '=' -> emit EQDEF; advance 1
            | '|' -> emit BAR; advance 1
            | '~' -> emit NOT; advance 1
            | '<' -> emit LT; advance 1
            | '>' -> emit GT; advance 1
            | '+' -> emit PLUS; advance 1
            | '-' -> emit MINUS; advance 1
            | _ -> lex_error !line !col "unexpected character %C" c)
    end
  done;
  out := { tok = EOF; line = !line; col = !col } :: !out;
  List.rev !out

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM n -> Printf.sprintf "number %d" n
  | KPROGRAM -> "'program'"
  | KVAR -> "'var'"
  | KPROCESSES -> "'processes'"
  | KINIT -> "'init'"
  | KASSIGN -> "'assign'"
  | KIF -> "'if'"
  | KBOOL -> "'bool'"
  | KNAT -> "'nat'"
  | KENUM -> "'enum'"
  | KTRUE -> "'true'"
  | KFALSE -> "'false'"
  | KKNOW -> "'K'"
  | KEVERY -> "'E'"
  | KCOMMON -> "'C'"
  | KDISTR -> "'D'"
  | LPAR -> "'('"
  | RPAR -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | COMMA -> "','"
  | COLON -> "':'"
  | EQDEF -> "'='"
  | BECOMES -> "':='"
  | BAR -> "'|'"
  | NOT -> "'~'"
  | AND -> "'/\\'"
  | OR -> "'\\/'"
  | IMP -> "'=>'"
  | IFF -> "'<=>'"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | EOF -> "end of input"
