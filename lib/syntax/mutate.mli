(** Surface-AST transformations for the corpus pipeline.

    The difftest harness checks that {!rename_vars} (with a
    {!fresh_renaming}) and {!permute_stmts} preserve every verdict; the
    shrinker minimises disagreements with {!drop_stmt}; {!to_source}
    closes the loop back to concrete [.unity] syntax ({!Ast.pp_program}
    output, which {!Parser.program_of_string} accepts — the round-trip
    is pinned by the syntax tests). *)

open Ast

val declared_vars : program -> string list
(** Declared variable names, in declaration order. *)

val all_idents : program -> string list
(** Every identifier a fresh name could collide with: variables,
    process names, enum literals. *)

val rename_vars : (string * string) list -> program -> program
(** Apply a renaming (identity where unmapped) to every variable
    occurrence — declarations, process views, init, guards, targets and
    right-hand sides.  Process names and enum literals are untouched. *)

val fresh_renaming : program -> (string * string) list
(** A total [v -> g<i>] renaming avoiding every identifier the program
    already mentions. *)

val permute_stmts : int list -> program -> program
(** Reorder the assign section by a permutation of [0 .. n-1].
    Raises [Invalid_argument] if the list is not a permutation. *)

val drop_stmt : int -> program -> program
(** Remove the [i]-th statement.  Raises [Invalid_argument] when only
    one statement remains (the grammar needs a non-empty assign
    section). *)

val to_source : program -> string
(** Parseable concrete syntax for a (transformed) program. *)
