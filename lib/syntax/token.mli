(** Lexer for the concrete UNITY / knowledge-based-protocol syntax.

    The surface language follows the paper's notation as closely as ASCII
    allows:

    {v
    program figure1
    var shared, x : bool
    processes
      P0 = { shared }
      P1 = { shared, x }
    init ~shared /\ ~x
    assign
      s0: shared := true          if K[P0](~x)
    | s1: x, shared := true, false if shared
    v}

    Comments run from [--] to the end of the line. *)

type token =
  | IDENT of string
  | NUM of int
  | KPROGRAM
  | KVAR
  | KPROCESSES
  | KINIT
  | KASSIGN
  | KIF
  | KBOOL
  | KNAT
  | KENUM
  | KTRUE
  | KFALSE
  | KKNOW       (** [K]  *)
  | KEVERY      (** [E]  *)
  | KCOMMON     (** [C]  *)
  | KDISTR      (** [D]  *)
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | COMMA
  | COLON
  | EQDEF       (** [=] in process declarations *)
  | BECOMES     (** [:=] *)
  | BAR         (** statement separator [|] or [[]] *)
  | NOT         (** [~] *)
  | AND         (** [/\] *)
  | OR          (** [\/] *)
  | IMP         (** [=>] *)
  | IFF         (** [<=>] *)
  | NE          (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | EOF

type located = { tok : token; line : int; col : int }

val span_of : located -> Loc.span

exception Lex_error of Loc.span * string
(** Position of the offending character and a message (without the
    position — callers prepend [file:line:col] as appropriate). *)

val tokenize : string -> located list
(** Lex a whole source file.  @raise Lex_error on unknown characters. *)

val describe : token -> string
(** For error messages. *)
