type ty = Tbool | Tnat of int | Tenum of string list | Tarray of ty * int

type expr = { expr : enode; espan : Loc.span }

and enode =
  | Etrue
  | Efalse
  | Enum of int
  | Eident of string
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Eimp of expr * expr
  | Eiff of expr * expr
  | Eeq of expr * expr
  | Ene of expr * expr
  | Elt of expr * expr
  | Ele of expr * expr
  | Egt of expr * expr
  | Ege of expr * expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Eindex of string * expr
  | Eknow of string * expr
  | Egroup of gkind * string list * expr

and gkind = Geveryone | Gcommon | Gdistributed

let mk ?(span = Loc.dummy) expr = { expr; espan = span }

type target = Tvar of string | Tindex of string * expr

type stmt = {
  s_name : string option;
  s_targets : target list;
  s_exprs : expr list;
  s_guard : expr option;
  s_span : Loc.span;
}

type program = {
  p_name : string;
  p_vars : ((string * Loc.span) list * ty) list;
  p_processes : (string * string list * Loc.span) list;
  p_init : expr;
  p_stmts : stmt list;
}

(* ---- span-insensitive equality ------------------------------------------- *)

let rec equal_expr a b =
  match (a.expr, b.expr) with
  | Etrue, Etrue | Efalse, Efalse -> true
  | Enum n, Enum m -> n = m
  | Eident x, Eident y -> x = y
  | Enot a, Enot b -> equal_expr a b
  | Eand (a1, a2), Eand (b1, b2)
  | Eor (a1, a2), Eor (b1, b2)
  | Eimp (a1, a2), Eimp (b1, b2)
  | Eiff (a1, a2), Eiff (b1, b2)
  | Eeq (a1, a2), Eeq (b1, b2)
  | Ene (a1, a2), Ene (b1, b2)
  | Elt (a1, a2), Elt (b1, b2)
  | Ele (a1, a2), Ele (b1, b2)
  | Egt (a1, a2), Egt (b1, b2)
  | Ege (a1, a2), Ege (b1, b2)
  | Eadd (a1, a2), Eadd (b1, b2)
  | Esub (a1, a2), Esub (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Eindex (x, a), Eindex (y, b) -> x = y && equal_expr a b
  | Eknow (p, a), Eknow (q, b) -> p = q && equal_expr a b
  | Egroup (k, ps, a), Egroup (l, qs, b) -> k = l && ps = qs && equal_expr a b
  | _ -> false

let equal_target a b =
  match (a, b) with
  | Tvar x, Tvar y -> x = y
  | Tindex (x, a), Tindex (y, b) -> x = y && equal_expr a b
  | _ -> false

let equal_stmt s1 s2 =
  List.length s1.s_targets = List.length s2.s_targets
  && List.for_all2 equal_target s1.s_targets s2.s_targets
  && List.length s1.s_exprs = List.length s2.s_exprs
  && List.for_all2 equal_expr s1.s_exprs s2.s_exprs
  &&
  match (s1.s_guard, s2.s_guard) with
  | None, None -> true
  | Some a, Some b -> equal_expr a b
  | _ -> false

(* Precedence levels for printing with minimal parentheses:
   1 iff, 2 imp, 3 or, 4 and, 5 not, 6 comparison, 7 additive, 8 atom. *)
let rec level e =
  match e.expr with
  | Eiff _ -> 1
  | Eimp _ -> 2
  | Eor _ -> 3
  | Eand _ -> 4
  | Enot _ -> 5
  | Eeq _ | Ene _ | Elt _ | Ele _ | Egt _ | Ege _ -> 6
  | Eadd _ | Esub _ -> 7
  | Etrue | Efalse | Enum _ | Eident _ | Eindex _ | Eknow _ | Egroup _ -> 8

and pp_expr fmt e = pp_at 0 fmt e

and pp_at min fmt e =
  let l = level e in
  let wrap = l < min in
  if wrap then Format.fprintf fmt "(";
  (match e.expr with
  | Etrue -> Format.fprintf fmt "true"
  | Efalse -> Format.fprintf fmt "false"
  | Enum n -> Format.fprintf fmt "%d" n
  | Eident s -> Format.fprintf fmt "%s" s
  | Eindex (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Enot a -> Format.fprintf fmt "~%a" (pp_at 5) a
  | Eand (a, b) -> Format.fprintf fmt "%a /\\ %a" (pp_at 4) a (pp_at 5) b
  | Eor (a, b) -> Format.fprintf fmt "%a \\/ %a" (pp_at 3) a (pp_at 4) b
  | Eimp (a, b) -> Format.fprintf fmt "%a => %a" (pp_at 3) a (pp_at 2) b
  | Eiff (a, b) -> Format.fprintf fmt "%a <=> %a" (pp_at 2) a (pp_at 1) b
  | Eeq (a, b) -> Format.fprintf fmt "%a = %a" (pp_at 7) a (pp_at 7) b
  | Ene (a, b) -> Format.fprintf fmt "%a != %a" (pp_at 7) a (pp_at 7) b
  | Elt (a, b) -> Format.fprintf fmt "%a < %a" (pp_at 7) a (pp_at 7) b
  | Ele (a, b) -> Format.fprintf fmt "%a <= %a" (pp_at 7) a (pp_at 7) b
  | Egt (a, b) -> Format.fprintf fmt "%a > %a" (pp_at 7) a (pp_at 7) b
  | Ege (a, b) -> Format.fprintf fmt "%a >= %a" (pp_at 7) a (pp_at 7) b
  | Eadd (a, b) -> Format.fprintf fmt "%a + %a" (pp_at 7) a (pp_at 8) b
  | Esub (a, b) -> Format.fprintf fmt "%a - %a" (pp_at 7) a (pp_at 8) b
  | Eknow (p, a) -> Format.fprintf fmt "K[%s](%a)" p pp_expr a
  | Egroup (kind, ps, a) ->
      let letter =
        match kind with Geveryone -> "E" | Gcommon -> "C" | Gdistributed -> "D"
      in
      Format.fprintf fmt "%s[%s](%a)" letter (String.concat ", " ps) pp_expr a);
  if wrap then Format.fprintf fmt ")"

let rec pp_ty fmt = function
  | Tbool -> Format.fprintf fmt "bool"
  | Tnat k -> Format.fprintf fmt "nat(%d)" k
  | Tenum vs -> Format.fprintf fmt "enum(%s)" (String.concat ", " vs)
  | Tarray (ty, n) -> Format.fprintf fmt "%a[%d]" pp_ty ty n

let pp_target fmt = function
  | Tvar s -> Format.fprintf fmt "%s" s
  | Tindex (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e

let pp_stmt fmt s =
  (match s.s_name with Some n -> Format.fprintf fmt "%s: " n | None -> ());
  Format.fprintf fmt "%s := %s"
    (String.concat ", " (List.map (Format.asprintf "%a" pp_target) s.s_targets))
    (String.concat ", " (List.map (Format.asprintf "%a" pp_expr) s.s_exprs));
  match s.s_guard with
  | Some g -> Format.fprintf fmt " if %a" pp_expr g
  | None -> ()

let pp_program fmt p =
  Format.fprintf fmt "@[<v>program %s@," p.p_name;
  List.iter
    (fun (names, ty) ->
      Format.fprintf fmt "var %s : %a@,"
        (String.concat ", " (List.map fst names))
        pp_ty ty)
    p.p_vars;
  if p.p_processes <> [] then begin
    Format.fprintf fmt "processes@,";
    List.iter
      (fun (name, vars, _) ->
        Format.fprintf fmt "  %s = { %s }@," name (String.concat ", " vars))
      p.p_processes
  end;
  Format.fprintf fmt "init %a@," pp_expr p.p_init;
  Format.fprintf fmt "assign@,";
  List.iteri
    (fun i s ->
      if i = 0 then Format.fprintf fmt "  %a@," pp_stmt s
      else Format.fprintf fmt "| %a@," pp_stmt s)
    p.p_stmts;
  Format.fprintf fmt "@]"
