(** Recursive-descent parser for the surface syntax (see {!Token} for the
    grammar sketch). *)

exception Parse_error of Loc.span * string
(** Position of the offending token and a message (without the position —
    callers prepend [file:line:col] as appropriate). *)

val program_of_string : string -> Ast.program
(** Parse a whole program.  @raise Parse_error / @raise Token.Lex_error. *)

val expr_of_string : string -> Ast.expr
(** Parse a standalone expression (useful for CLI predicates and tests). *)
