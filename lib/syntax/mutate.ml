(* Surface-AST transformations for the corpus pipeline: the metamorphic
   transforms the difftest harness checks verdict-preservation of
   (variable renaming, statement permutation), the shrinker's statement
   removal, and the unparser that turns a transformed AST back into
   concrete [.unity] syntax.

   Everything here is span-oblivious: transformed nodes keep (or dummy)
   their spans, and [to_source] goes through [Ast.pp_program], whose
   output the parser accepts back — pinned by the round-trip tests. *)

open Ast

let declared_vars p = List.concat_map (fun (names, _) -> List.map fst names) p.p_vars

(* every identifier the program mentions anywhere a fresh name could
   collide with: variables, process names, enum literals *)
let all_idents p =
  let enums =
    List.concat_map
      (fun (_, ty) ->
        let rec of_ty = function
          | Tenum vs -> vs
          | Tarray (ty, _) -> of_ty ty
          | Tbool | Tnat _ -> []
        in
        of_ty ty)
      p.p_vars
  in
  declared_vars p @ List.map (fun (n, _, _) -> n) p.p_processes @ enums

(* ---- variable renaming ------------------------------------------------------ *)

let rec rename_expr f e =
  let node =
    match e.expr with
    | (Etrue | Efalse | Enum _) as n -> n
    | Eident x -> Eident (f x)
    | Enot a -> Enot (rename_expr f a)
    | Eand (a, b) -> Eand (rename_expr f a, rename_expr f b)
    | Eor (a, b) -> Eor (rename_expr f a, rename_expr f b)
    | Eimp (a, b) -> Eimp (rename_expr f a, rename_expr f b)
    | Eiff (a, b) -> Eiff (rename_expr f a, rename_expr f b)
    | Eeq (a, b) -> Eeq (rename_expr f a, rename_expr f b)
    | Ene (a, b) -> Ene (rename_expr f a, rename_expr f b)
    | Elt (a, b) -> Elt (rename_expr f a, rename_expr f b)
    | Ele (a, b) -> Ele (rename_expr f a, rename_expr f b)
    | Egt (a, b) -> Egt (rename_expr f a, rename_expr f b)
    | Ege (a, b) -> Ege (rename_expr f a, rename_expr f b)
    | Eadd (a, b) -> Eadd (rename_expr f a, rename_expr f b)
    | Esub (a, b) -> Esub (rename_expr f a, rename_expr f b)
    | Eindex (a, i) -> Eindex (f a, rename_expr f i)
    | Eknow (p, a) -> Eknow (p, rename_expr f a)  (* process names survive *)
    | Egroup (k, ps, a) -> Egroup (k, ps, rename_expr f a)
  in
  { e with expr = node }

let rename_target f = function
  | Tvar x -> Tvar (f x)
  | Tindex (a, i) -> Tindex (f a, rename_expr f i)

let rename_stmt f s =
  {
    s with
    s_targets = List.map (rename_target f) s.s_targets;
    s_exprs = List.map (rename_expr f) s.s_exprs;
    s_guard = Option.map (rename_expr f) s.s_guard;
  }

(* [rename_vars map p]: apply a (total on declared variables, identity
   elsewhere) renaming everywhere a variable can occur.  Enum literals
   and process names are left alone — only identifiers that resolve to
   variables change. *)
let rename_vars map p =
  let vars = declared_vars p in
  let f x = if List.mem x vars then (try List.assoc x map with Not_found -> x) else x in
  {
    p with
    p_vars = List.map (fun (names, ty) -> (List.map (fun (n, sp) -> (f n, sp)) names, ty)) p.p_vars;
    p_processes = List.map (fun (n, vs, sp) -> (n, List.map f vs, sp)) p.p_processes;
    p_init = rename_expr f p.p_init;
    p_stmts = List.map (rename_stmt f) p.p_stmts;
  }

(* A total fresh renaming [v -> g<i>] (skipping any [g<i>] the program
   already mentions), in declaration order — the canonical metamorphic
   rename. *)
let fresh_renaming p =
  let taken = all_idents p in
  let next = ref 0 in
  List.map
    (fun v ->
      let rec fresh () =
        let cand = Printf.sprintf "g%d" !next in
        incr next;
        if List.mem cand taken then fresh () else cand
      in
      (v, fresh ()))
    (declared_vars p)

(* ---- statement-list surgery ------------------------------------------------- *)

(* [permute_stmts order p]: reorder the assign section by the given
   permutation of [0 .. n-1] (indices into the original list).  UNITY
   statements are an unordered set, so every verdict must survive. *)
let permute_stmts order p =
  let stmts = Array.of_list p.p_stmts in
  if List.sort compare order <> List.init (Array.length stmts) Fun.id then
    invalid_arg "Mutate.permute_stmts: not a permutation";
  { p with p_stmts = List.map (fun i -> stmts.(i)) order }

(* [drop_stmt i p]: remove the [i]-th statement — the shrinker's one
   move.  The parser requires a non-empty assign section, so dropping
   the last statement is refused. *)
let drop_stmt i p =
  if List.length p.p_stmts <= 1 then invalid_arg "Mutate.drop_stmt: last statement";
  { p with p_stmts = List.filteri (fun j _ -> j <> i) p.p_stmts }

(* ---- unparsing -------------------------------------------------------------- *)

(* Concrete syntax the parser accepts back; the round-trip
   [program_of_string (to_source p)] is span-insensitively equal to [p]
   (pinned in test_syntax). *)
let to_source p = Format.asprintf "%a@." Ast.pp_program p
