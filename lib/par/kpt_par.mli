(** A persistent [Domain] pool for embarrassingly parallel batches.

    Built for the `kpt check FILE...` shape: a handful of independent,
    seconds-long symbolic workloads.  No work stealing, no deques — an
    atomic task counter feeds a fixed set of worker domains (the calling
    domain is one of them, so [jobs = 1] wakes nobody).

    {b Residency.}  Worker domains are spawned lazily on the first batch
    that needs them and then parked on a condition variable between
    batches, so repeated [try_map] calls pay [Domain.spawn] once per
    process, not once per batch.  A batch's effective width is
    [min jobs (Domain.recommended_domain_count ())]: running more
    domains than cores adds stop-the-world GC rendezvous stalls without
    adding throughput, and parked domains are exempt from the
    rendezvous, so oversubscribed [-j] values cost nothing.  The
    resident domains are joined via [at_exit].

    {b Determinism.}  Results are ordered by {e input index}, never by
    completion order.  Each task runs under a fresh {!Engine.t} — its
    own {!Kpt_obs} metric context, and (because every {!Space.t} owns
    its BDD manager) its own symbolic tables — even at [jobs = 1], so
    per-task observable state is independent of the pool size {e and} of
    the hardware clamp.  After the batch drains, per-task metrics are
    merged into the caller's context in input order.

    {b Not} a general scheduler: tasks must not block on each other; a
    nested [try_map] from inside a task runs its items inline on the
    calling worker. *)

val recommended_jobs : unit -> int
(** The pool size to use when the user didn't say: the [KPT_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; clamped to [1..128]. *)

val try_map :
  ?jobs:int ->
  ?oversubscribe:bool ->
  ?task_budget:Kpt_predicate.Budget.limits ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) result list
(** [try_map ~jobs f items] applies [f] to every item on a pool of
    [jobs] domains (default {!recommended_jobs}; clamped to
    [1..min 128 (length items)]).  The result list is index-aligned with
    the input.  A task that raises yields [Error exn] in its own slot
    and does not disturb its siblings — the property the batch driver
    relies on for "one unparsable file must not poison the rest".

    {b Pool-width contract.}  The resident pool grows to the widest
    width any batch has requested and never shrinks: a batch whose
    (clamped) width exceeds the current {!pool_size} spawns the missing
    helper domains, and a narrower batch simply wakes fewer of them —
    [-j] is never silently frozen at the first batch's value.  The one
    width reduction applied is the hardware clamp
    [min jobs (Domain.recommended_domain_count ())]; pass
    [~oversubscribe:true] (or set [KPT_POOL_OVERSUBSCRIBE=1]) to lift
    it, accepting the GC-rendezvous tax — results are identical either
    way, which is how the growth contract stays testable on a
    single-core host.

    [task_budget] arms a {e fresh} budget on the task's engine when the
    task starts (so a [--timeout] deadline bounds each task, not the
    batch); exhaustion surfaces as
    [Error (Kpt_predicate.Budget.Exhausted _)] in that task's slot.

    [Sys.Break] (Ctrl-C) is not isolated: it cancels the remaining
    tasks cooperatively and re-raises after all workers have drained —
    {!progress} then reports how far the batch got. *)

val progress : unit -> int * int
(** [(completed, total)] of the most recent {!try_map} batch — what the
    CLI's interrupt handler prints as the partial summary.  [(0, 0)]
    before any batch has run. *)

val pool_size : unit -> int
(** Number of resident helper domains spawned so far (0 until a batch
    actually needs helpers; never decreases while the process runs).
    Exposed so tests can pin the spawn-once-per-process behaviour. *)

val mark_inline_worker : unit -> unit
(** Mark the calling domain as a worker for the pool's purposes: any
    {!try_map} it runs executes inline on this domain instead of
    dispatching to the shared generation machinery (which supports one
    concurrent dispatcher only).  The serve daemon calls this from each
    request-worker domain — request-level parallelism replaces
    batch-level there, and results are pool-size-independent by
    contract.  Irreversible for the domain's lifetime. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!try_map}, re-raising the first failure (by input order) after the
    whole batch has drained. *)
