(* A persistent domain pool for embarrassingly parallel batches.

   The shape is deliberately simpler than a work-stealing scheduler:
   tasks are an array, the only shared mutable word is an atomic "next
   task" index, and each worker loops [fetch_and_add] until the array is
   drained.  For our workloads (one spec file per task, each seconds of
   BDD work) contention on one atomic is unmeasurable, and the absence
   of stealing makes the execution trivially deterministic in
   everything that matters: results land in a slot chosen by the task's
   {e input index}, never by completion order.

   Two costs dominated the old spawn-per-batch design, and both scale
   with {e requested} jobs rather than with useful parallelism:
   [Domain.spawn] itself (fresh minor heap and domain state per worker
   per batch), and — much worse on small machines — every GC of every
   domain stalling on a stop-the-world rendezvous with [jobs] {e
   running} domains multiplexed onto fewer cores.  So the pool (a) keeps
   its worker domains alive across batches, parked in [Condition.wait]
   (a blocked domain does not delay the rendezvous), and (b) caps the
   workers actually woken for a batch at the hardware parallelism:
   [-j4] on a single-core host runs the batch on the calling domain
   alone — same results, same per-task budgets, none of the rendezvous
   tax.

   Isolation contract: every task runs under a {e fresh} [Engine.t]
   ([Engine.use] installs its private metric context for the duration),
   even at [jobs = 1].  So a task's counters never depend on which
   domain ran it, how many pool slots existed, or what ran before it on
   the same domain — the property the differential tests pin.  After
   the join the per-task metrics are folded into the caller's context in
   input order. *)

open Kpt_predicate

let max_jobs = 128

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let recommended_jobs () =
  match Sys.getenv_opt "KPT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> clamp_jobs j
      | _ -> clamp_jobs (Domain.recommended_domain_count ()))
  | None -> clamp_jobs (Domain.recommended_domain_count ())

(* Batch progress, for the CLI's Ctrl-C handler: completed/total of the
   most recent [try_map] batch.  Workers bump [batch_done] as each task
   publishes; the main domain reads both after a [Sys.Break]. *)
let batch_total = Atomic.make 0
let batch_done = Atomic.make 0
let progress () = (Atomic.get batch_done, Atomic.get batch_total)

(* ---- the resident pool ---------------------------------------------------

   Batches are generations: the dispatcher installs a job closure, bumps
   [generation] and broadcasts; each parked worker wakes, claims one of
   the batch's [slots] (workers beyond the batch's width go straight
   back to sleep) and runs the closure to completion.  The closure owns
   all task state, so the pool itself carries no per-batch typing.  The
   calling domain always participates inline and then blocks until the
   participants of the current generation have drained — [try_map] stays
   fully synchronous, only the domains persist. *)

let pool_mutex = Mutex.create ()
let work_cond = Condition.create () (* a new generation was published *)
let idle_cond = Condition.create () (* a generation fully drained *)
let generation = ref 0
let current_job : (unit -> unit) ref = ref (fun () -> ())
let slots = ref 0 (* unclaimed participant slots of the current generation *)
let active = ref 0 (* participants still running the current generation *)
let workers : unit Domain.t list ref = ref []
let shutting_down = ref false

(* Nested [try_map] from inside a pool task must not block on the pool
   (its own domain is one of the participants the dispatcher would wait
   for) — it degrades to inline execution instead. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* The serve daemon's request workers are domains of their own, and two
   of them dispatching batches onto the *same* generation machinery
   concurrently would corrupt [slots]/[active].  They mark themselves
   like pool workers, so any [try_map] they reach runs inline on their
   domain — request-level parallelism is the scaling axis there, and the
   results are pool-size-independent by contract anyway. *)
let mark_inline_worker () = Domain.DLS.set in_worker true

let worker_loop () =
  Domain.DLS.set in_worker true;
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool_mutex;
    while !generation = !my_gen && not !shutting_down do
      Condition.wait work_cond pool_mutex
    done;
    if !shutting_down then Mutex.unlock pool_mutex
    else begin
      my_gen := !generation;
      let participate = !slots > 0 in
      if participate then decr slots;
      let job = !current_job in
      Mutex.unlock pool_mutex;
      if participate then begin
        (try job () with _ -> ());
        Mutex.lock pool_mutex;
        decr active;
        if !active = 0 then Condition.broadcast idle_cond;
        Mutex.unlock pool_mutex
      end;
      loop ()
    end
  in
  loop ()

let shutdown_pool () =
  Mutex.lock pool_mutex;
  shutting_down := true;
  Condition.broadcast work_cond;
  Mutex.unlock pool_mutex;
  List.iter Domain.join !workers;
  workers := []

(* Grow the resident pool to [n] helper domains (never shrinks; spawns
   are the cost the pool exists to amortise).  First growth registers
   the at-exit join so the process never ends with parked domains. *)
let ensure_workers n =
  let have = List.length !workers in
  if have = 0 && n > 0 then at_exit shutdown_pool;
  for _ = have + 1 to n do
    workers := Domain.spawn worker_loop :: !workers
  done

let pool_size () = List.length !workers

(* The hardware clamp below is an escape-hatch away on purpose: the pool
   honours a wider request when [~oversubscribe:true] (or the
   [KPT_POOL_OVERSUBSCRIBE] env var) says so.  That is how the
   grow-on-mismatch contract — a later batch with a larger [-j] grows
   the resident pool instead of silently running at the first batch's
   width — stays testable on a single-core host, where the clamp would
   otherwise hide any growth. *)
let oversubscribe_env () =
  match Sys.getenv_opt "KPT_POOL_OVERSUBSCRIBE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let try_map ?jobs ?(oversubscribe = false) ?task_budget f items =
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let jobs =
      clamp_jobs (match jobs with Some j -> j | None -> recommended_jobs ())
    in
    let jobs = min jobs n in
    (* Running domains beyond the hardware parallelism only adds GC
       rendezvous stalls — never throughput — so the batch's width is
       additionally clamped to the core count (see the header note),
       unless the caller explicitly opts out of the clamp. *)
    let hw_limit =
      if oversubscribe || oversubscribe_env () then max_jobs
      else Domain.recommended_domain_count ()
    in
    let width = min jobs hw_limit in
    let helpers = if Domain.DLS.get in_worker then 0 else width - 1 in
    (* The caller's effective reorder policy travels with the batch: the
       per-task engines below are fresh (reorder [None]) and would
       otherwise fall back to the process-wide default, which belongs to
       the CLI's startup configuration — under a concurrent server each
       request pins its policy on its own engine instead. *)
    let reorder = Engine.reorder_mode (Engine.current ()) in
    Atomic.set batch_total n;
    Atomic.set batch_done 0;
    (* Slot [i] of both arrays belongs exclusively to the worker that
       won task [i]; publication to the caller is ordered by the drain
       barrier below (and, for the main domain's own tasks, by program
       order). *)
    let results : ('b, exn) result option array = Array.make n None in
    let engines : Engine.t option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let eng = Engine.create () in
          Engine.set_reorder_mode eng (Some reorder);
          let run () =
            (* The deadline is per task: armed when the task starts, not
               when the batch does, so [--timeout] bounds each file. *)
            match task_budget with
            | Some limits -> Engine.with_budget limits (fun () -> f tasks.(i))
            | None -> f tasks.(i)
          in
          let r =
            try Ok (Engine.use eng run) with
            | Sys.Break as b ->
                (* Ctrl-C: stop handing out tasks so every worker drains
                   promptly; the caller re-raises after the drain. *)
                Atomic.set next n;
                Error b
            | e -> Error e
          in
          results.(i) <- Some r;
          engines.(i) <- Some eng;
          Atomic.incr batch_done;
          loop ()
        end
      in
      loop ()
    in
    if helpers > 0 then begin
      ensure_workers helpers;
      Mutex.lock pool_mutex;
      current_job := worker;
      slots := helpers;
      active := helpers;
      incr generation;
      Condition.broadcast work_cond;
      Mutex.unlock pool_mutex
    end;
    let broke = ref false in
    (try worker () with Sys.Break -> Atomic.set next n; broke := true);
    if helpers > 0 then begin
      (* Drain barrier.  An asynchronous Sys.Break while parked here
         still must not abandon running helpers (they hold slots of the
         shared arrays): cancel the remaining tasks and keep waiting. *)
      Mutex.lock pool_mutex;
      let rec drain () =
        if !active > 0 then begin
          (try Condition.wait idle_cond pool_mutex with Sys.Break ->
            Atomic.set next n;
            broke := true);
          drain ()
        end
      in
      drain ();
      current_job := (fun () -> ());
      Mutex.unlock pool_mutex
    end;
    let into = Kpt_obs.Ctx.current () in
    Array.iter
      (function
        | Some eng -> Kpt_obs.Ctx.merge ~into (Engine.obs eng) | None -> ())
      engines;
    if
      !broke
      || Array.exists
           (function Some (Error Sys.Break) -> true | _ -> false)
           results
    then raise Sys.Break;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map ?jobs f items =
  let rs = try_map ?jobs f items in
  List.map (function Ok v -> v | Error e -> raise e) rs
