(* A fixed-size domain pool for embarrassingly parallel batches.

   The shape is deliberately simpler than a work-stealing scheduler:
   tasks are an array, the only shared mutable word is an atomic "next
   task" index, and each worker loops [fetch_and_add] until the array is
   drained.  For our workloads (one spec file per task, each seconds of
   BDD work) contention on one atomic is unmeasurable, and the absence
   of stealing makes the execution trivially deterministic in
   everything that matters: results land in a slot chosen by the task's
   {e input index}, never by completion order.

   Isolation contract: every task runs under a {e fresh} [Engine.t]
   ([Engine.use] installs its private metric context for the duration),
   even at [jobs = 1].  So a task's counters never depend on which
   domain ran it, how many pool slots existed, or what ran before it on
   the same domain — the property the differential tests pin.  After the
   join the per-task metrics are folded into the caller's context in
   input order. *)

open Kpt_predicate

let max_jobs = 128

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let recommended_jobs () =
  match Sys.getenv_opt "KPT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> clamp_jobs j
      | _ -> clamp_jobs (Domain.recommended_domain_count ()))
  | None -> clamp_jobs (Domain.recommended_domain_count ())

(* Batch progress, for the CLI's Ctrl-C handler: completed/total of the
   most recent [try_map] batch.  Workers bump [batch_done] as each task
   publishes; the main domain reads both after a [Sys.Break]. *)
let batch_total = Atomic.make 0
let batch_done = Atomic.make 0
let progress () = (Atomic.get batch_done, Atomic.get batch_total)

let try_map ?jobs ?task_budget f items =
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let jobs =
      clamp_jobs (match jobs with Some j -> j | None -> recommended_jobs ())
    in
    let jobs = min jobs n in
    Atomic.set batch_total n;
    Atomic.set batch_done 0;
    (* Slot [i] of both arrays belongs exclusively to the worker that
       won task [i]; publication to the caller is ordered by the joins
       below (and, for the main domain's own tasks, by program order). *)
    let results : ('b, exn) result option array = Array.make n None in
    let engines : Engine.t option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let eng = Engine.create () in
          let run () =
            (* The deadline is per task: armed when the task starts, not
               when the batch does, so [--timeout] bounds each file. *)
            match task_budget with
            | Some limits -> Engine.with_budget limits (fun () -> f tasks.(i))
            | None -> f tasks.(i)
          in
          let r =
            try Ok (Engine.use eng run) with
            | Sys.Break as b ->
                (* Ctrl-C: stop handing out tasks so every worker drains
                   promptly; the caller re-raises after the join. *)
                Atomic.set next n;
                Error b
            | e -> Error e
          in
          results.(i) <- Some r;
          engines.(i) <- Some eng;
          Atomic.incr batch_done;
          loop ()
        end
      in
      loop ()
    in
    let doms = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms;
    let into = Kpt_obs.Ctx.current () in
    Array.iter
      (function
        | Some eng -> Kpt_obs.Ctx.merge ~into (Engine.obs eng) | None -> ())
      engines;
    if
      Array.exists
        (function Some (Error Sys.Break) -> true | _ -> false)
        results
    then raise Sys.Break;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map ?jobs f items =
  let rs = try_map ?jobs f items in
  List.map (function Ok v -> v | Error e -> raise e) rs
