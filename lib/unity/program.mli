(** UNITY programs (§5): variable declarations (carried by the space), a
    predicate [init] characterising allowed initial states, and a non-empty
    set of guarded assignment statements, executed forever under
    unconditional fairness.

    This module also implements the semantic machinery of §2:
    [SP] (eq. 26), the strongest stable predicate [sst] (eqs. 1–3) and the
    strongest invariant [SI = sst.init] (eq. 5), all as exact BDD
    fixpoints. *)

open Kpt_predicate

type t

exception Ill_formed of string

val make :
  Space.t -> name:string -> init:Expr.t -> ?processes:Process.t list -> Stmt.t list -> t
(** Build and validate a program.
    @raise Ill_formed if the statement list is empty, some statement can
    drive a variable out of its range (a totality violation — the witness
    state is reported), or [init] is unsatisfiable. *)

val make_with_init_pred :
  Space.t -> name:string -> init:Bdd.t -> ?processes:Process.t list -> Stmt.t list -> t
(** Same with a pre-compiled initial predicate (used when instantiating
    knowledge-based protocols, whose [init] is already a BDD). *)

val space : t -> Space.t
val name : t -> string
val init : t -> Bdd.t
(** Initial-states predicate, normalised to the domain. *)

val statements : t -> Stmt.t list
val processes : t -> Process.t list
val find_process : t -> string -> Process.t
(** @raise Not_found *)

val sp_pred : t -> Bdd.t -> Bdd.t
(** [SP.p ≡ (∃s : s a statement : sp.s.p)] (eq. 26): the strongest
    predicate holding after one (any) transition from [p]. *)

val stable : t -> Bdd.t -> bool
(** [[SP.p ⇒ p]] on the domain: once true, [p] stays true (§2). *)

val sst : t -> Bdd.t -> Bdd.t
(** Strongest stable predicate weaker than [p] (eq. 1), computed by the
    Knaster–Tarski iteration of eq. 3: [(∃i :: fⁱ.false)] for
    [f.x = SP.x ∨ p].  Exact on finite spaces.  Implemented as a frontier
    (delta) iteration — each round images only the states added by the
    previous round — which reaches the same least fixpoint (and, BDDs
    being canonical, the identical predicate). *)

val si : t -> Bdd.t
(** Strongest invariant [sst.init] — the reachable states (cached). *)

val invariant : t -> Bdd.t -> bool
(** [invariant p ≝ [SI ⇒ p]] (eq. 5). *)

val fixed_points : t -> Bdd.t
(** States where no statement changes the state — UNITY's analogue of
    termination (§5). *)

val sub_program : ?name:string -> t -> Stmt.t list -> t
(** The slicing constructor: the program over a subset of [t]'s own
    statements (same space, initial condition and processes).  Validation
    is skipped — the statements were already proved total and [init]
    satisfiable when [t] was built — so the subset must consist of
    (physically) [t]'s statements.
    @raise Ill_formed on an empty subset or a foreign statement. *)

val union : ?name:string -> t -> t -> t
(** UNITY program composition [F ∥ G] (the union of Chandy–Misra):
    statements are unioned, initial conditions conjoined.  Both programs
    must live in the same space.  The classical union theorem —
    [p unless q] holds of [F ∥ G] iff it holds of both [F] and [G] — is
    exercised in the test suite.
    @raise Ill_formed if the spaces differ or the combined initial
    condition is unsatisfiable. *)

val pp : Format.formatter -> t -> unit
