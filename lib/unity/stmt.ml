open Kpt_predicate

type guard = Gexpr of Expr.t | Gpred of Bdd.t

(* Early-quantification observability: [images] counts statement images
   taken through the partitioned path, [steps] the relational-product
   steps they decomposed into. *)
let c_eq_images = Kpt_obs.counter "space.early_quant.images"
let c_eq_steps = Kpt_obs.counter "space.early_quant.steps"

(* A conjunctive partition of the fire branch of the transition relation,
   with its quantification schedule precomputed.  The update ∧ frame
   relation is a conjunction of one small equality per variable; keeping
   the conjuncts unmerged lets image computation quantify each current
   bit away as soon as the {e remaining} conjuncts no longer mention it
   (and dually each next bit in [wp]), so the intermediate products never
   carry the whole relation's support.  [q_parts] additionally folds each
   variable's range constraint into the {e last} conjunct that reads the
   variable — appending them at the end instead would keep every
   constrained bit alive through the whole product, defeating the
   schedule. *)
type schedule = {
  q_parts : (Bdd.t * int list) list;
      (* fire-branch conjunct · the current bits to ∃ right after it *)
  q_pre : Bdd.t; (* range constraints of variables no conjunct reads *)
  q_pre_bits : int list; (* current bits no conjunct reads *)
  q_wp_parts : (Bdd.t * int list) list;
      (* raw update/frame conjunct · the next bits it writes *)
}

(* Compiled-relation caches.  Each entry is keyed on the space it was
   compiled for (physical identity) so a statement reused against another
   space recompiles transparently.

   The [shared] part holds guard-independent data (the update ∧ frame
   relation, its partitioned schedule, and the range-overflow set of the
   assignments); [with_guard_pred] keeps it physically shared, so
   re-instantiating a knowledge-based protocol at a new candidate
   invariant — same assignments, new guard — reuses the compiled
   assignment relation across every Ĝ-iteration. *)
type shared_cache = {
  mutable s_update_frame : (Space.t * Bdd.t) option;
  mutable s_parts : (Space.t * schedule) option;
  mutable s_over : (Space.t * Bdd.t) option;
}

type cache = {
  shared : shared_cache;
  mutable c_guard : (Space.t * Bdd.t) option;
  mutable c_trans : (Space.t * Bdd.t) option;
}

type t = {
  sname : string;
  guard : guard;
  assigns : (Space.var * Expr.t) list;
  cache : cache;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let target_ty v = if Space.card v = 2 && Space.value_name v 0 = "false" then Expr.Tbool else Expr.Tnat

let fresh_cache () =
  {
    shared = { s_update_frame = None; s_parts = None; s_over = None };
    c_guard = None;
    c_trans = None;
  }

let make ~name ?(guard = Expr.tru) assigns =
  (match Expr.typeof guard with
  | Expr.Tbool -> ()
  | Expr.Tnat -> ill_formed "statement %s: guard is not boolean" name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (v, rhs) ->
      if Hashtbl.mem seen (Space.idx v) then
        ill_formed "statement %s: duplicate target %s" name (Space.name v);
      Hashtbl.add seen (Space.idx v) ();
      if Expr.typeof rhs <> target_ty v then
        ill_formed "statement %s: sort mismatch assigning to %s" name (Space.name v))
    assigns;
  { sname = name; guard = Gexpr guard; assigns; cache = fresh_cache () }

(* Keep the guard-independent shared cache; drop the guard-dependent
   entries of the new statement. *)
let with_guard_pred s p =
  { s with guard = Gpred p; cache = { shared = s.cache.shared; c_guard = None; c_trans = None } }

let array_write arr ~index rhs =
  Array.to_list
    (Array.mapi
       (fun k elem -> (elem, Expr.Ite (Expr.Eq (index, Expr.Cint k), rhs, Expr.Var elem)))
       arr)

let name s = s.sname

let cached slot space compute store =
  match slot with
  | Some (sp', r) when sp' == space -> r
  | _ ->
      let r = compute () in
      store (Some (space, r));
      r

let guard_pred sp s =
  match s.guard with
  | Gpred p -> p
  | Gexpr e ->
      cached s.cache.c_guard sp
        (fun () -> Expr.compile_bool sp e)
        (fun v -> s.cache.c_guard <- v)

let assigned_vars s = List.map fst s.assigns

(* Right-hand side of v as a symbolic bit-vector (booleans become 1-bit). *)
let rhs_vec sp rhs =
  match Expr.compile sp rhs with
  | Expr.Sint vec -> vec
  | Expr.Sbool b -> Bitvec.of_bits [| b |]

(* Guard-independent overflow set: states where some right-hand side falls
   outside its target's range. *)
let over_pred sp s =
  cached s.cache.shared.s_over sp
    (fun () ->
      let m = Space.manager sp in
      Bdd.disj m
        (List.map
           (fun (v, rhs) ->
             let vec = rhs_vec sp rhs in
             let bound =
               Bitvec.const m
                 ~width:(max (Bitvec.width vec) (Space.width v))
                 (Space.card v - 1)
             in
             Bdd.not_ m (Bitvec.le m vec bound))
           s.assigns))
    (fun v -> s.cache.shared.s_over <- v)

let totality_violation sp s =
  let m = Space.manager sp in
  Bdd.conj m [ Space.domain sp; guard_pred sp s; over_pred sp s ]

let identity sp = Space.identity sp

(* Guard-independent part of the transition relation: the simultaneous
   update of the assigned variables conjoined with the frame equalities of
   the untouched ones. *)
let update_frame sp s =
  cached s.cache.shared.s_update_frame sp
    (fun () ->
      let m = Space.manager sp in
      let assigned = assigned_vars s in
      let is_assigned v = List.exists (fun u -> Space.idx u = Space.idx v) assigned in
      let update =
        List.map (fun (v, rhs) -> Bitvec.eq m (Space.next_vec sp v) (rhs_vec sp rhs)) s.assigns
      in
      let frame =
        List.filter_map
          (fun v ->
            if is_assigned v then None
            else Some (Bitvec.eq m (Space.next_vec sp v) (Space.cur_vec sp v)))
          (Space.vars sp)
      in
      Bdd.conj m (update @ frame))
    (fun v -> s.cache.shared.s_update_frame <- v)

let trans sp s =
  cached s.cache.c_trans sp
    (fun () ->
      let m = Space.manager sp in
      let g = guard_pred sp s in
      Bdd.or_ m
        (Bdd.and_ m g (update_frame sp s))
        (Bdd.and_ m (Bdd.not_ m g) (identity sp)))
    (fun v -> s.cache.c_trans <- v)

(* Build the partitioned schedule.  One conjunct per variable — the
   update equality for assigned targets, the frame equality otherwise —
   in declaration order.  A current bit's quantification point is the
   last conjunct whose support reads it; range constraints are merged
   into that last reader per variable (see [schedule]), and a variable no
   conjunct reads is handled before the product starts ([q_pre]/
   [q_pre_bits]), so the fire-branch product ends with {e every} current
   bit of the space quantified regardless of the precondition's
   support. *)
let build_schedule sp s =
  let m = Space.manager sp in
  let conjuncts =
    List.map
      (fun v ->
        match List.find_opt (fun (u, _) -> Space.idx u = Space.idx v) s.assigns with
        | Some (_, rhs) -> (v, Bitvec.eq m (Space.next_vec sp v) (rhs_vec sp rhs))
        | None -> (v, Bitvec.eq m (Space.next_vec sp v) (Space.cur_vec sp v)))
      (Space.vars sp)
  in
  let parts = Array.of_list (List.map snd conjuncts) in
  let n = Array.length parts in
  let last = Hashtbl.create 64 in
  Array.iteri
    (fun i c ->
      List.iter (fun b -> if b land 1 = 0 then Hashtbl.replace last b i) (Bdd.support m c))
    parts;
  (* fold each variable's range constraint into its last reader *)
  let pre = ref [] in
  List.iter
    (fun v ->
      if Space.card v <> 1 lsl Space.width v then begin
        let bits = Space.current_bits v in
        let lv =
          List.fold_left
            (fun acc b -> match Hashtbl.find_opt last b with
              | Some i -> max acc i
              | None -> acc)
            (-1) bits
        in
        let rc =
          Bitvec.le m (Space.cur_vec sp v)
            (Bitvec.const m ~width:(Space.width v) (Space.card v - 1))
        in
        if lv < 0 then pre := rc :: !pre
        else begin
          parts.(lv) <- Bdd.and_ m parts.(lv) rc;
          List.iter (fun b -> Hashtbl.replace last b lv) bits
        end
      end)
    (Space.vars sp);
  let pre_bits =
    List.filter (fun b -> not (Hashtbl.mem last b)) (Space.all_current_bits sp)
  in
  let after = Array.make n [] in
  Hashtbl.iter (fun b i -> after.(i) <- b :: after.(i)) last;
  {
    q_parts = List.init n (fun i -> (parts.(i), List.sort compare after.(i)));
    q_pre = Bdd.conj m !pre;
    q_pre_bits = pre_bits;
    q_wp_parts = List.map (fun (v, c) -> (c, Space.next_bits v)) conjuncts;
  }

let schedule sp s =
  cached s.cache.shared.s_parts sp
    (fun () -> build_schedule sp s)
    (fun v -> s.cache.shared.s_parts <- v)

(* Image of [p] under the statement, over {e next} bits: the fire branch
   is the early-quantified conjunctive product; the skip branch
   [∃cur. p ∧ dom ∧ ¬g ∧ Id] collapses to a renaming, no product at
   all. *)
let image space s p =
  Kpt_obs.incr c_eq_images;
  let m = Space.manager space in
  let g = guard_pred space s in
  let sched = schedule space s in
  let acc = Bdd.and_ m (Bdd.and_ m p g) sched.q_pre in
  let acc = if sched.q_pre_bits = [] then acc else Bdd.exists m sched.q_pre_bits acc in
  let fire =
    List.fold_left
      (fun acc (c, bits) ->
        Kpt_obs.incr c_eq_steps;
        Bdd.and_exists m bits acc c)
      acc sched.q_parts
  in
  let skip =
    Space.to_next space (Bdd.conj m [ p; Bdd.not_ m g; Space.domain space ])
  in
  Bdd.or_ m fire skip

let sp_post space s p = Space.to_current space (image space s p)

let sp = sp_post

(* wp through the same partition.  With [x' = to_next x]:

     wp = ∀nxt. ((g ∧ UF) ∨ (¬g ∧ Id)) ⇒ x'
        = (g ⇒ ∀nxt. UF ⇒ x') ∧ (¬g ⇒ ∀nxt. Id ⇒ x')   (g has no next bits)
        = ite(g, ¬∃nxt. UF ∧ ¬x', x)                     (∀nxt. Id ⇒ x' = x)

   and the remaining ∃ is a conjunctive product in which each conjunct
   owns exactly its target's next bits — the schedule is per-variable. *)
let wp space s p =
  let m = Space.manager space in
  let g = guard_pred space s in
  let sched = schedule space s in
  let acc = Space.to_next space (Bdd.not_ m p) in
  let bad =
    List.fold_left
      (fun acc (c, nbits) ->
        Kpt_obs.incr c_eq_steps;
        Bdd.and_exists m nbits acc c)
      acc sched.q_wp_parts
  in
  Bdd.ite m g (Bdd.not_ m bad) p

let unchanged space s =
  let m = Space.manager space in
  let diag = Bdd.and_ m (trans space s) (identity space) in
  Bdd.exists m (Space.all_next_bits space) diag

let exec space s st =
  let env v = st.(Space.idx v) in
  let enabled =
    match s.guard with
    | Gexpr e -> Expr.eval_bool e env
    | Gpred p -> Space.holds_at space p st
  in
  let st' = Array.copy st in
  if enabled then
    List.iter
      (fun (v, rhs) ->
        let value = Expr.eval rhs env in
        if value < 0 || value >= Space.card v then
          ill_formed "statement %s drives %s out of range (%d)" s.sname (Space.name v) value;
        st'.(Space.idx v) <- value)
      s.assigns;
  st'

let pp fmt s =
  let pp_assign fmt (v, rhs) = Format.fprintf fmt "%s := %a" (Space.name v) Expr.pp rhs in
  Format.fprintf fmt "@[<hov 2>%s:@ %a" s.sname
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∥@ ") pp_assign)
    s.assigns;
  (match s.guard with
  | Gexpr (Expr.Cbool true) -> ()
  | Gexpr e -> Format.fprintf fmt "@ if %a" Expr.pp e
  | Gpred _ -> Format.fprintf fmt "@ if ⟨predicate⟩");
  Format.fprintf fmt "@]"
