open Kpt_predicate

(* Fixpoint observability (eqs. 1-5): every [sst] run and each of its
   frontier iterations is counted, and — when a trace sink is installed —
   streamed with the frontier/accumulator sizes of the round. *)
let c_sst_runs = Kpt_obs.counter "sst.runs"
let c_sst_iters = Kpt_obs.counter "sst.iterations"

type t = {
  space : Space.t;
  name : string;
  init : Bdd.t;
  statements : Stmt.t list;
  processes : Process.t list;
  mutable cached_si : Bdd.t option;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let validate space name init statements =
  if statements = [] then ill_formed "program %s: empty statement list" name;
  List.iter
    (fun s ->
      let bad = Stmt.totality_violation space s in
      if not (Bdd.is_false bad) then
        match Space.states_of space bad with
        | st :: _ ->
            ill_formed "program %s: statement %s is not total at %a" name (Stmt.name s)
              (Space.pp_state space) st
        | [] -> ())
    statements;
  if Bdd.is_false (Pred.normalize space init) then
    ill_formed "program %s: unsatisfiable initial condition" name

let make_with_init_pred space ~name ~init ?(processes = []) statements =
  let init = Pred.normalize space init in
  validate space name init statements;
  { space; name; init; statements; processes; cached_si = None }

let make space ~name ~init ?processes statements =
  make_with_init_pred space ~name ~init:(Expr.compile_bool space init) ?processes statements

let space p = p.space
let name p = p.name
let init p = p.init
let statements p = p.statements
let processes p = p.processes
let find_process p pname = List.find (fun pr -> Process.name pr = pname) p.processes

(* SP distributes over the statement union, and each statement image goes
   through the partitioned early-quantified product ({!Stmt.image}); the
   per-statement results are collected over next bits and renamed back
   once. *)
let sp_pred p pred =
  let m = Space.manager p.space in
  let images = List.map (fun s -> Stmt.image p.space s pred) p.statements in
  Space.to_current p.space (Bdd.disj m images)

let stable p pred = Pred.holds_implies p.space (sp_pred p pred) pred

(* Frontier (delta) iteration for the Knaster–Tarski fixpoint of eq. 3:
   because SP is an exact image it distributes over disjunction, so each
   round only needs the image of the {e newly added} states
   [frontier = x' ∧ ¬x] rather than of the whole accumulated set.  The
   result is the same least fixpoint (and, by canonicity, the same BDD)
   as the full-set Kleene iteration [x' = p ∨ x ∨ SP.x]. *)
let sst p pred =
  let m = Space.manager p.space in
  let pred = Pred.normalize p.space pred in
  Kpt_obs.incr c_sst_runs;
  let rec go i x frontier =
    if Bdd.is_false frontier then begin
      if Kpt_obs.enabled () then
        Kpt_obs.emit "sst.fixpoint"
          [
            ("iterations", i);
            ("states", Space.count_states_of p.space x);
            ("nodes", Bdd.size m x);
          ];
      x
    end
    else begin
      Kpt_obs.incr c_sst_iters;
      Engine.checkpoint ~fuel:1 ();
      if Kpt_obs.enabled () then
        Kpt_obs.emit "sst.iter"
          [
            ("iteration", i);
            ("frontier_states", Space.count_states_of p.space frontier);
            ("frontier_nodes", Bdd.size m frontier);
            ("total_states", Space.count_states_of p.space x);
          ];
      let image = sp_pred p frontier in
      let fresh = Bdd.and_ m image (Bdd.not_ m x) in
      go (i + 1) (Bdd.or_ m x fresh) fresh
    end
  in
  go 0 pred pred

let si p =
  match p.cached_si with
  | Some x -> x
  | None ->
      let x = sst p p.init in
      p.cached_si <- Some x;
      x

let invariant p pred = Pred.holds_implies p.space (si p) pred

let fixed_points p =
  let m = Space.manager p.space in
  List.fold_left
    (fun acc s -> Bdd.and_ m acc (Stmt.unchanged p.space s))
    (Space.domain p.space) p.statements

(* The slicing constructor: a program over a subset of an existing
   program's statements.  Space, init and processes are shared, and the
   expensive [make] validation is skipped — every kept statement was
   already proved total on this space and [init] satisfiable — so slicing
   costs nothing beyond the list filter.  Requiring the statements to be
   [p]'s own (physically) is what makes that skip sound. *)
let sub_program ?name:(sname = "") p kept =
  if kept = [] then ill_formed "program %s: empty slice (no statement kept)" p.name;
  List.iter
    (fun s ->
      if not (List.memq s p.statements) then
        ill_formed "program %s: slice statement %s is not one of the program's statements"
          p.name (Stmt.name s))
    kept;
  let name = if sname = "" then p.name else sname in
  { space = p.space; name; init = p.init; statements = kept;
    processes = p.processes; cached_si = None }

let union ?name:(uname = "") f g =
  if not (f.space == g.space) then
    ill_formed "union: %s and %s live in different spaces" f.name g.name;
  let m = Space.manager f.space in
  let name = if uname = "" then f.name ^ "∥" ^ g.name else uname in
  make_with_init_pred f.space ~name
    ~init:(Bdd.and_ m f.init g.init)
    ~processes:(f.processes @ g.processes)
    (f.statements @ g.statements)

let pp fmt p =
  Format.fprintf fmt "@[<v 2>program %s@," p.name;
  if p.processes <> [] then begin
    Format.fprintf fmt "processes ";
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
      Process.pp fmt p.processes;
    Format.fprintf fmt "@,"
  end;
  Format.fprintf fmt "assign@,";
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,⫿ ")
    Stmt.pp fmt p.statements;
  Format.fprintf fmt "@]"
