(** Guarded, multiple, deterministic, terminating assignment statements
    (§5): [x, y := f(x,y), g(x,y,z) if b].

    Execution semantics (paper §4): the guard is evaluated; if it holds,
    all right-hand sides are evaluated in the {e old} state and assigned
    simultaneously; otherwise the statement has no effect (skip).  Hence
    every statement is total and deterministic, and [wp = wlp].

    Guards are either expressions or pre-compiled predicates; the latter
    is how knowledge-based protocols are instantiated with a candidate
    strongest invariant (§4: "replacing all the knowledge predicates with
    the corresponding standard predicate"). *)

open Kpt_predicate

type guard = Gexpr of Expr.t | Gpred of Bdd.t

type cache
(** Memoised compiled relations (guard, update ∧ frame, overflow set,
    transition), keyed on the space they were compiled for.  The
    guard-independent part is shared across {!with_guard_pred} copies, so
    re-instantiating a knowledge-based protocol at a new candidate
    invariant recompiles only the guards.  Cached BDDs count as retained
    handles for {!Bdd.gc}: root them (e.g. via {!trans}) or rebuild the
    statements after a collection. *)

type t = private {
  sname : string;
  guard : guard;
  assigns : (Space.var * Expr.t) list;
  cache : cache;
}

exception Ill_formed of string

val make : name:string -> ?guard:Expr.t -> (Space.var * Expr.t) list -> t
(** A statement with an optional guard (default [true]).
    @raise Ill_formed on duplicate assignment targets or sort mismatches
    between a target and its right-hand side. *)

val with_guard_pred : t -> Bdd.t -> t
(** Replace the guard by a pre-compiled predicate over current bits. *)

val array_write : Space.var array -> index:Expr.t -> Expr.t -> (Space.var * Expr.t) list
(** Simultaneous assignments implementing [arr[index] := rhs]: every
    element [k] is assigned [if index = k then rhs else arr[k]]. *)

val name : t -> string
val guard_pred : Space.t -> t -> Bdd.t
(** The guard as a predicate over current bits. *)

val assigned_vars : t -> Space.var list

val totality_violation : Space.t -> t -> Bdd.t
(** States (within the domain) where the guard holds but some right-hand
    side falls outside its target's range.  Must be [false] for the
    statement to be a legal UNITY statement on this space; {!Program.make}
    enforces this. *)

val trans : Space.t -> t -> Bdd.t
(** Transition relation over current × next bits:
    [(g ∧ ⋀ v' = E_v ∧ frame) ∨ (¬g ∧ identity)].  Deterministic and total
    on the domain (given no totality violation).  Memoised per statement,
    so fixpoint loops compile each relation once. *)

val image : Space.t -> t -> Bdd.t -> Bdd.t
(** Exact image of [p] under the statement, {e over next bits}: the
    conjunctively-partitioned relational product with early
    quantification — each current bit is ∃-quantified as soon as the
    remaining conjuncts no longer mention it — rather than one monolithic
    [and_exists] against {!trans}.  [{!sp} = to_current ∘ image]. *)

val sp : Space.t -> t -> Bdd.t -> Bdd.t
(** Strongest postcondition of one statement ([sp.s.p], eq. 26's
    ingredient): the exact image of [p]. *)

val wp : Space.t -> t -> Bdd.t -> Bdd.t
(** Weakest precondition ([= wlp], §5): states whose unique successor
    satisfies the postcondition. *)

val unchanged : Space.t -> t -> Bdd.t
(** States the statement maps to themselves (used for fixed points). *)

val exec : Space.t -> t -> Space.state -> Space.state
(** Concrete execution (fresh state array).  Out-of-range results raise
    {!Ill_formed} — they indicate a totality violation. *)

val pp : Format.formatter -> t -> unit
