open Kpt_predicate

type config = { socket_path : string; cache_size : int }

let default_socket () =
  match Sys.getenv_opt "KPT_SOCKET" with
  | Some s when s <> "" -> s
  | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "kpt-serve-%d.sock" (Unix.getuid ()))

exception Shutdown_requested

(* ---- binding, with stale-socket recovery ----------------------------------- *)

(* A socket path can outlive its daemon (SIGKILL, power loss).  Probe
   before unlinking: if something accepts the connection a daemon is
   alive and starting a second one is an error; any connection failure
   (ECONNREFUSED for a dead socket, ENOTSOCK/EPROTOTYPE for a plain
   file) marks the path stale and we reclaim it. *)
let bind_socket path =
  let stale_or_live () =
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    live
  in
  if Sys.file_exists path && stale_or_live () then
    Error (Printf.sprintf "a kpt daemon is already listening on %s" path)
  else begin
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16
    with
    | () -> Ok sock
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))
  end

(* ---- the request loop ------------------------------------------------------ *)

let send oc frame =
  output_string oc (Json.to_string (Protocol.response_to_json frame));
  output_char oc '\n';
  flush oc

let daemon_fields handler =
  let c = Handler.cache_stats handler in
  [
    ("requests", Handler.requests handler);
    ("cache_entries", c.Cache.entries);
    ("cache_capacity", c.Cache.capacity);
    ("cache_hits", c.Cache.hits);
    ("cache_misses", c.Cache.misses);
    ("cache_evictions", c.Cache.evictions);
    ("pool_size", Kpt_par.pool_size ());
  ]

let handle_line handler oc line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
      send oc (Protocol.Error_frame { id = 0; exit_code = 2; message = "malformed request: " ^ msg })
  | j -> (
      match Protocol.request_of_json j with
      | Error msg ->
          let id =
            Option.value ~default:0 (Option.bind (Json.member "id" j) Json.to_int)
          in
          send oc (Protocol.Error_frame { id; exit_code = 2; message = "bad request: " ^ msg })
      | Ok req -> (
          match req.Protocol.cmd with
          | Protocol.Ping ->
              send oc
                (Protocol.Result
                   {
                     id = req.Protocol.id;
                     exit_code = 0;
                     cached = false;
                     out = "kpt-serve: alive\n";
                     err = "";
                     daemon = daemon_fields handler;
                   })
          | Protocol.Shutdown ->
              send oc
                (Protocol.Result
                   {
                     id = req.Protocol.id;
                     exit_code = 0;
                     cached = false;
                     out = "kpt-serve: shutting down\n";
                     err = "";
                     daemon = daemon_fields handler;
                   });
              raise Shutdown_requested
          | _ -> (
              let sink =
                if req.Protocol.opts.Kpt_analysis.Driver.trace then
                  Some
                    (fun name fields ->
                      send oc (Protocol.Event { id = req.Protocol.id; name; fields }))
                else None
              in
              match Handler.handle ?sink handler req with
              | outcome, cached ->
                  send oc
                    (Protocol.Result
                       {
                         id = req.Protocol.id;
                         exit_code = outcome.Kpt_analysis.Driver.code;
                         cached;
                         out = outcome.Kpt_analysis.Driver.out;
                         err = outcome.Kpt_analysis.Driver.err;
                         daemon = [];
                       })
              | exception Sys.Break ->
                  (* SIGINT mid-request: the pool has already drained its
                     in-flight tasks (try_map cancels and joins before
                     re-raising); tell this client with a structured
                     frame, then let the loop shut down. *)
                  (try
                     send oc
                       (Protocol.Error_frame
                          {
                            id = req.Protocol.id;
                            exit_code = 130;
                            message = "interrupted: the daemon is shutting down";
                          })
                   with Sys_error _ | Unix.Unix_error _ -> ());
                  raise Sys.Break)))

let serve_connection handler fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | line ->
        if String.trim line <> "" then handle_line handler oc line;
        loop ()
    | exception End_of_file -> ()
  in
  loop ()

let run ?(announce = true) cfg =
  (* a client hanging up mid-reply must surface as EPIPE on the write,
     not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match bind_socket cfg.socket_path with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok lsock ->
      if announce then
        Format.printf "kpt-serve: listening on %s (cache %d)@." cfg.socket_path
          cfg.cache_size;
      let handler = Handler.create ~cache_size:cfg.cache_size in
      let cleanup () =
        (try Unix.close lsock with Unix.Unix_error _ -> ());
        try Sys.remove cfg.socket_path with Sys_error _ -> ()
      in
      (* the daemon's numbers accumulate in a private engine context, not
         the process root — requests merge their metrics here *)
      let eng = Engine.create () in
      let rec accept_loop () =
        match Unix.accept lsock with
        | fd, _ ->
            (match serve_connection handler fd with
            | () -> ()
            | exception ((Shutdown_requested | Sys.Break) as e) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                raise e
            | exception (Sys_error _ | Unix.Unix_error _) ->
                (* this client broke; the daemon survives *)
                ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            accept_loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      (match Engine.use eng accept_loop with
      | () ->
          cleanup ();
          0 (* unreachable: the loop only ends by exception *)
      | exception Shutdown_requested ->
          cleanup ();
          0
      | exception Sys.Break ->
          cleanup ();
          130
      | exception e ->
          cleanup ();
          raise e)
