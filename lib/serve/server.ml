open Kpt_predicate

type config = {
  socket_path : string;
  cache_size : int;
  jobs : int;
  queue_capacity : int;
  request_timeout : float option;
}

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let config ?(jobs = 1) ?(queue_capacity = 64) ?request_timeout ~socket_path
    ~cache_size () =
  {
    socket_path;
    cache_size;
    jobs = clamp 1 64 jobs;
    queue_capacity = clamp 1 4096 queue_capacity;
    request_timeout =
      (match request_timeout with Some t when t > 0. -> Some t | _ -> None);
  }

let default_socket () =
  match Sys.getenv_opt "KPT_SOCKET" with
  | Some s when s <> "" -> s
  | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "kpt-serve-%d.sock" (Unix.getuid ()))

(* ---- observability ---------------------------------------------------------

   The ping reply reads the live atomics below (a counter interned in
   one domain's metric context is not visible from another's), but the
   same movements also land in Kpt_obs so `--trace` consumers and the
   bench harness see the serving layer like any other. *)

let c_requests = Kpt_obs.counter "serve.requests"
let c_sheds = Kpt_obs.counter "serve.sheds"
let c_io_timeouts = Kpt_obs.counter "serve.io_timeouts"
let c_queue_peak = Kpt_obs.counter "serve.queue.depth.max"
let c_inflight_peak = Kpt_obs.counter "serve.inflight.max"

(* ---- binding, with stale-socket recovery ----------------------------------- *)

(* A socket path can outlive its daemon (SIGKILL, power loss).  Probe
   before unlinking: if something accepts the connection a daemon is
   alive and starting a second one is an error; any connection failure
   (ECONNREFUSED for a dead socket, ENOTSOCK/EPROTOTYPE for a plain
   file) marks the path stale and we reclaim it. *)
let bind_socket path =
  let stale_or_live () =
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    live
  in
  if Sys.file_exists path && stale_or_live () then
    Error (Printf.sprintf "a kpt daemon is already listening on %s" path)
  else begin
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64
    with
    | () -> Ok sock
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))
  end

(* ---- shared server state ---------------------------------------------------

   One bounded queue of accepted connections between the accepting main
   domain and [cfg.jobs] worker domains.  [lock] guards the queue, the
   connection registry and its [busy] flags; the hot-path counters the
   ping reply reports are plain atomics.  [stop] is the one field a
   signal handler touches — everything else drains cooperatively from
   the main domain once it is set. *)

type stop_mode = Wire_shutdown | Signal_drain

type conn = { cfd : Unix.file_descr; mutable busy : bool }

type state = {
  cfg : config;
  handler : Handler.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable qdepth : int;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  stop : stop_mode option Atomic.t;
  in_flight : int Atomic.t;
  sheds : int Atomic.t;
  io_timeouts : int Atomic.t;
  workers_done : int Atomic.t;
}

let make_state cfg =
  {
    cfg;
    handler = Handler.create ~cache_size:cfg.cache_size;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    qdepth = 0;
    conns = Hashtbl.create 16;
    next_conn = 0;
    stop = Atomic.make None;
    in_flight = Atomic.make 0;
    sheds = Atomic.make 0;
    io_timeouts = Atomic.make 0;
    workers_done = Atomic.make 0;
  }

let locked st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let request_stop st mode =
  ignore (Atomic.compare_and_set st.stop None (Some mode))

let stopping st = Atomic.get st.stop <> None

let log fmt =
  Format.eprintf ("kpt-serve: " ^^ fmt ^^ "@.")

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- the deadline line reader ----------------------------------------------

   SO_RCVTIMEO alone cannot catch a slow-loris writer: the kernel timer
   restarts on every successful read, so a client dribbling one byte per
   interval is tolerated forever.  The reader instead holds an {e
   absolute} deadline for completing one request line, re-arming
   SO_RCVTIMEO with the remaining time before each read — a drip-feed
   client runs out of deadline no matter how regular the drip. *)

type reader = { rfd : Unix.file_descr; rbuf : Bytes.t; mutable pending : string }

let make_reader rfd = { rfd; rbuf = Bytes.create 65536; pending = "" }

let set_timeout fd opt seconds =
  try Unix.setsockopt_float fd opt seconds with Unix.Unix_error _ -> ()

let read_line r ~deadline =
  let rec go () =
    match String.index_opt r.pending '\n' with
    | Some i ->
        let line = String.sub r.pending 0 i in
        r.pending <-
          String.sub r.pending (i + 1) (String.length r.pending - i - 1);
        `Line line
    | None -> (
        let remaining =
          match deadline with
          | None -> None
          | Some d -> Some (d -. Unix.gettimeofday ())
        in
        match remaining with
        | Some t when t <= 0. -> `Timeout
        | _ -> (
            (match remaining with
            | Some t -> set_timeout r.rfd Unix.SO_RCVTIMEO t
            | None -> ());
            match Unix.read r.rfd r.rbuf 0 (Bytes.length r.rbuf) with
            | 0 -> `Eof
            | n ->
                r.pending <- r.pending ^ Bytes.sub_string r.rbuf 0 n;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                `Timeout
            | exception Unix.Unix_error (_, _, _) -> `Eof))
  in
  go ()

(* ---- request handling ------------------------------------------------------ *)

let daemon_fields st =
  let c = Handler.cache_stats st.handler in
  let looked_up = c.Cache.hits + c.Cache.misses in
  let hit_pct = if looked_up = 0 then 0 else 100 * c.Cache.hits / looked_up in
  [
    ("requests", Handler.requests st.handler);
    ("uptime_s", Handler.uptime_s st.handler);
    ("serve_jobs", st.cfg.jobs);
    ("queue_capacity", st.cfg.queue_capacity);
    ("queue_depth", locked st (fun () -> st.qdepth));
    ("in_flight", Atomic.get st.in_flight);
    ("sheds", Atomic.get st.sheds);
    ("io_timeouts", Atomic.get st.io_timeouts);
    ("cache_entries", c.Cache.entries);
    ("cache_capacity", c.Cache.capacity);
    ("cache_hits", c.Cache.hits);
    ("cache_misses", c.Cache.misses);
    ("cache_hit_pct", hit_pct);
    ("cache_evictions", c.Cache.evictions);
    ("pool_size", Kpt_par.pool_size ());
  ]

(* The server-side deadline rides the existing budget machinery: the
   request's own --timeout is kept when it is tighter, so a served
   request can never outlive the daemon's patience but may well ask for
   less of it. *)
let capped_limits cfg (l : Budget.limits) =
  match cfg.request_timeout with
  | None -> l
  | Some t ->
      let cap = Budget.timeout_of_seconds t in
      let timeout_ns =
        match l.Budget.timeout_ns with
        | Some own when own < cap -> Some own
        | _ -> Some cap
      in
      { l with Budget.timeout_ns }

let send fd frame = Protocol.write_frame fd frame

let handle_line st fd line =
  match Json.of_string line with
  | exception Json.Parse_error msg ->
      send fd
        (Protocol.Error_frame
           {
             id = 0;
             exit_code = 2;
             kind = Protocol.Generic;
             message = "malformed request: " ^ msg;
           });
      `Continue
  | j -> (
      let id =
        Option.value ~default:0 (Option.bind (Json.member "id" j) Json.to_int)
      in
      match Protocol.version_of_json j with
      | Some v when v <> Protocol.version ->
          send fd
            (Protocol.Error_frame
               {
                 id;
                 exit_code = 2;
                 kind = Protocol.Version_mismatch;
                 message =
                   Printf.sprintf
                     "protocol version mismatch: the client speaks v%d, this \
                      daemon speaks v%d"
                     v Protocol.version;
               });
          `Continue
      | _ -> (
          match Protocol.request_of_json j with
          | Error msg ->
              send fd
                (Protocol.Error_frame
                   {
                     id;
                     exit_code = 2;
                     kind = Protocol.Generic;
                     message = "bad request: " ^ msg;
                   });
              `Continue
          | Ok req -> (
              match req.Protocol.cmd with
              | Protocol.Ping ->
                  send fd
                    (Protocol.Result
                       {
                         id = req.Protocol.id;
                         exit_code = 0;
                         cached = false;
                         out = "kpt-serve: alive\n";
                         err = "";
                         daemon = daemon_fields st;
                       });
                  `Continue
              | Protocol.Shutdown ->
                  send fd
                    (Protocol.Result
                       {
                         id = req.Protocol.id;
                         exit_code = 0;
                         cached = false;
                         out = "kpt-serve: shutting down\n";
                         err = "";
                         daemon = daemon_fields st;
                       });
                  `Stop Wire_shutdown
              | _ -> (
                  let req =
                    {
                      req with
                      Protocol.opts =
                        {
                          req.Protocol.opts with
                          Kpt_analysis.Driver.limits =
                            capped_limits st.cfg
                              req.Protocol.opts.Kpt_analysis.Driver.limits;
                        };
                    }
                  in
                  let sink =
                    if req.Protocol.opts.Kpt_analysis.Driver.trace then
                      Some
                        (fun name fields ->
                          send fd
                            (Protocol.Event { id = req.Protocol.id; name; fields }))
                    else None
                  in
                  Kpt_obs.incr c_requests;
                  match
                    Kpt_obs.time "serve.request" (fun () ->
                        Handler.handle ?sink st.handler req)
                  with
                  | outcome, cached ->
                      send fd
                        (Protocol.Result
                           {
                             id = req.Protocol.id;
                             exit_code = outcome.Kpt_analysis.Driver.code;
                             cached;
                             out = outcome.Kpt_analysis.Driver.out;
                             err = outcome.Kpt_analysis.Driver.err;
                             daemon = [];
                           });
                      `Continue
                  | exception Sys.Break ->
                      (try
                         send fd
                           (Protocol.Error_frame
                              {
                                id = req.Protocol.id;
                                exit_code = Protocol.exit_interrupted;
                                kind = Protocol.Interrupted;
                                message =
                                  "interrupted: the daemon is shutting down";
                              })
                       with Sys_error _ | Unix.Unix_error _ -> ());
                      `Stop Signal_drain))))

(* ---- worker domains -------------------------------------------------------- *)

(* Pop the next accepted connection, or [None] once the server is
   stopping (queued connections left at that point belong to the drain,
   which answers them with exit-130 frames). *)
let pop st =
  locked st (fun () ->
      let rec wait () =
        if st.qdepth = 0 && not (stopping st) then begin
          Condition.wait st.nonempty st.lock;
          wait ()
        end
      in
      wait ();
      if stopping st || st.qdepth = 0 then None
      else begin
        st.qdepth <- st.qdepth - 1;
        Some (Queue.pop st.queue)
      end)

let register st fd =
  locked st (fun () ->
      let key = st.next_conn in
      st.next_conn <- key + 1;
      let c = { cfd = fd; busy = false } in
      Hashtbl.replace st.conns key c;
      (key, c))

let unregister st key = locked st (fun () -> Hashtbl.remove st.conns key)

let set_busy st c v = locked st (fun () -> c.busy <- v)

let serve_connection st c =
  let fd = c.cfd in
  (match st.cfg.request_timeout with
  | Some t -> set_timeout fd Unix.SO_SNDTIMEO t
  | None -> ());
  let r = make_reader fd in
  let rec loop () =
    set_busy st c false;
    if stopping st then ()
    else
      let deadline =
        Option.map (fun t -> Unix.gettimeofday () +. t) st.cfg.request_timeout
      in
      match read_line r ~deadline with
      | `Eof -> ()
      | `Timeout ->
          Atomic.incr st.io_timeouts;
          Kpt_obs.incr c_io_timeouts;
          let t = Option.value ~default:0. st.cfg.request_timeout in
          (try
             send fd
               (Protocol.Error_frame
                  {
                    id = 0;
                    exit_code = Protocol.exit_io_timeout;
                    kind = Protocol.Timeout;
                    message =
                      Printf.sprintf
                        "request deadline: no complete request line within %gs"
                        t;
                  })
           with Sys_error _ | Unix.Unix_error _ -> ())
      | `Line line when String.trim line = "" -> loop ()
      | `Line line -> (
          set_busy st c true;
          Atomic.incr st.in_flight;
          Kpt_obs.record_max c_inflight_peak (Atomic.get st.in_flight);
          let verdict =
            match handle_line st fd line with
            | v -> v
            | exception (Sys_error _ | Unix.Unix_error _) ->
                (* the client broke the connection mid-request or
                   mid-reply; the daemon survives and this worker moves
                   on to the next connection *)
                log "client disconnected mid-request; dropping the connection";
                `Close
          in
          Atomic.decr st.in_flight;
          match verdict with
          | `Continue -> loop ()
          | `Close -> ()
          | `Stop mode ->
              request_stop st mode;
              (* wake parked siblings promptly; the main domain's poll
                 loop notices [stop] within its poll interval anyway *)
              locked st (fun () -> Condition.broadcast st.nonempty))
  in
  loop ()

let worker st () =
  (* Serve workers look like pool workers to Kpt_par: any nested
     [try_map] a request reaches runs inline on this domain, because the
     pool's generation machinery supports one concurrent dispatcher
     only.  Results are pool-size-independent by contract, so the served
     bytes do not change — request-level parallelism is the axis that
     scales here. *)
  Kpt_par.mark_inline_worker ();
  let eng = Engine.create () in
  Engine.use eng (fun () ->
      let rec next () =
        match pop st with
        | None -> ()
        | Some fd ->
            let key, c = register st fd in
            (try serve_connection st c
             with e ->
               log "worker recovered from unexpected exception: %s"
                 (Printexc.to_string e));
            unregister st key;
            close_quiet fd;
            next ()
      in
      next ());
  Atomic.incr st.workers_done

(* ---- accepting, shedding, draining ----------------------------------------- *)

let shed st fd =
  Atomic.incr st.sheds;
  Kpt_obs.incr c_sheds;
  set_timeout fd Unix.SO_SNDTIMEO 1.0;
  (try
     send fd
       (Protocol.Error_frame
          {
            id = 0;
            exit_code = Protocol.exit_overloaded;
            kind = Protocol.Overloaded;
            message =
              Printf.sprintf
                "overloaded: the request queue is full (%d queued, %d in \
                 flight); retry with backoff"
                st.cfg.queue_capacity (Atomic.get st.in_flight);
          })
   with Sys_error _ | Unix.Unix_error _ -> ());
  close_quiet fd

let enqueue st fd =
  let accepted =
    locked st (fun () ->
        if st.qdepth >= st.cfg.queue_capacity then false
        else begin
          Queue.push fd st.queue;
          st.qdepth <- st.qdepth + 1;
          Kpt_obs.record_max c_queue_peak st.qdepth;
          Condition.signal st.nonempty;
          true
        end)
  in
  if not accepted then shed st fd

(* The accept loop polls at 100ms so a stop requested from anywhere — a
   signal handler's atomic write, a worker that answered [shutdown] —
   turns into a drain without any self-connect tricks, regardless of
   which domain the signal landed on. *)
let accept_loop st lsock =
  let rec go () =
    if not (stopping st) then begin
      (match Unix.select [ lsock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept lsock with
          | fd, _ -> enqueue st fd
          | exception
              Unix.Unix_error
                ( (Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED),
                  _,
                  _ ) ->
            ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* Drain: the accept loop has exited, so no new work arrives.  Answer
   everything still queued with a structured exit-130 frame, wake parked
   workers, and keep nudging idle connections with [shutdown] until
   every worker has come home — in-flight requests finish (bounded by
   their armed budgets when --request-timeout is set), blocked reads see
   EOF.  The nudge loop closes the race where a worker picks a
   connection up just as the drain scans the registry. *)
let drain st workers =
  locked st (fun () -> Condition.broadcast st.nonempty);
  let queued =
    locked st (fun () ->
        let q = Queue.fold (fun acc fd -> fd :: acc) [] st.queue in
        Queue.clear st.queue;
        st.qdepth <- 0;
        List.rev q)
  in
  List.iter
    (fun fd ->
      set_timeout fd Unix.SO_SNDTIMEO 1.0;
      (try
         send fd
           (Protocol.Error_frame
              {
                id = 0;
                exit_code = Protocol.exit_interrupted;
                kind = Protocol.Interrupted;
                message = "interrupted: the daemon is shutting down";
              })
       with Sys_error _ | Unix.Unix_error _ -> ());
      close_quiet fd)
    queued;
  let n = List.length workers in
  while Atomic.get st.workers_done < n do
    locked st (fun () ->
        Hashtbl.iter
          (fun _ c ->
            if not c.busy then
              try Unix.shutdown c.cfd Unix.SHUTDOWN_RECEIVE
              with Unix.Unix_error _ -> ())
          st.conns;
        Condition.broadcast st.nonempty);
    Unix.sleepf 0.02
  done;
  List.iter Domain.join workers

(* ---- the daemon ------------------------------------------------------------ *)

let run ?(announce = true) cfg =
  (* a client hanging up mid-reply must surface as EPIPE on the write,
     not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match bind_socket cfg.socket_path with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok lsock ->
      let st = make_state cfg in
      (* SIGINT/SIGTERM ask for a drain; the handlers only flip the
         atomic — every consequence runs cooperatively on the main
         domain, which notices within one poll interval. *)
      let on_signal _ = request_stop st Signal_drain in
      let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
      let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
      let restore () =
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigterm prev_term
      in
      if announce then
        Format.printf "kpt-serve: listening on %s (cache %d, jobs %d, queue %d%s)@."
          cfg.socket_path cfg.cache_size cfg.jobs cfg.queue_capacity
          (match cfg.request_timeout with
          | Some t -> Printf.sprintf ", deadline %gs" t
          | None -> "");
      let workers = List.init cfg.jobs (fun _ -> Domain.spawn (worker st)) in
      let cleanup () =
        restore ();
        (try Unix.close lsock with Unix.Unix_error _ -> ());
        try Sys.remove cfg.socket_path with Sys_error _ -> ()
      in
      (* the daemon's own numbers (sheds, queue peaks) accumulate in a
         private engine context, not the process root *)
      let eng = Engine.create () in
      (match Engine.use eng (fun () -> accept_loop st lsock) with
      | () ->
          drain st workers;
          cleanup ();
          if announce then log "drained; socket removed";
          (match Atomic.get st.stop with
          | Some Signal_drain -> 130
          | Some Wire_shutdown | None -> 0)
      | exception e ->
          (* an unexpected exception on the accept path: stop the
             workers before propagating, so the process does not hang on
             parked domains *)
          request_stop st Signal_drain;
          (try drain st workers with _ -> ());
          cleanup ();
          raise e)
