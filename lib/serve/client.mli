(** The client side of the wire protocol: connect, send one request,
    stream events, read the final frame.

    {!run_cli} is the [kpt client] command body: it prints the
    response's [stdout]/[stderr] bytes to the real streams (so a served
    answer is byte-identical to the direct command) and returns the
    daemon-reported exit code — the exit-code contract crosses the wire
    unchanged, including 3 (budget exhausted), 4 (I/O deadline), 75
    (overloaded) and 130 (daemon interrupted mid-request).

    {b Retries.}  [run_cli ~retries ~backoff] retries with decorrelated
    jitter (seeded from [KPT_RETRY_SEED] when set, so schedules replay
    deterministically) — but only on failures where the request
    demonstrably never produced an answer: a failed [connect], a
    connection that closed with no frame, or the daemon's structured
    [overloaded] shed.  A [result] or any other [error] frame means the
    request was definitely executed or definitely refused; those are
    never resent. *)

type connection

val connect : socket:string -> (connection, string) result
val close : connection -> unit

val send_request : connection -> Protocol.request -> unit
(** Ship one encoded request line through {!Protocol.write_all} — short
    writes resume, EINTR retries; a broken connection raises
    [Unix.Unix_error]. *)

val send_line : connection -> string -> unit
(** Ship one raw line (tests use this to exercise malformed-request
    handling). *)

type read_error =
  | Closed  (** EOF with no frame: the request may never have run *)
  | Malformed of string
      (** the daemon spoke, we could not decode it — not a transport
          failure, never retried *)

val read_error_to_string : read_error -> string

val read_response :
  ?on_event:(string -> (string * int) list -> unit) ->
  connection ->
  (Protocol.response, read_error) result
(** Read frames until a [result]/[error] frame arrives; [event] frames
    are fed to [on_event] (dropped by default). *)

val roundtrip :
  ?on_event:(string -> (string * int) list -> unit) ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** [connect] + {!send_request} + {!read_response} + {!close}; transport
    exceptions mid-exchange surface as [Error] rather than raising. *)

val default_backoff : float
(** 0.05s — the base of the jitter schedule. *)

val decorrelated_jitter : Kpt_gen.Rng.t -> base:float -> prev:float -> float
(** One step of the retry schedule: uniform over
    [[base, max base (3 * prev)]], capped at 5s.  Exposed so tests can
    pin the schedule's bounds and determinism. *)

val retryable_response : Protocol.response -> bool
(** [true] only for the structured [overloaded] error frame — the single
    reply a client may safely resend after. *)

val run_cli :
  socket:string ->
  serve_auto:bool ->
  ?retries:int ->
  ?backoff:float ->
  Protocol.request ->
  int
(** The [kpt client] body.  [retries] (default 0) bounds additional
    attempts; [backoff] (default {!default_backoff}) seeds the jitter
    schedule.  When no daemon is reachable after the last attempt:
    [~serve_auto:true] falls back to running the command locally
    ({!Handler.dispatch} — same driver, same bytes, same exit code);
    otherwise prints a hint and returns 2. *)
