(** The client side of the wire protocol: connect, send one request,
    stream events, read the final frame.

    {!run_cli} is the [kpt client] command body: it prints the
    response's [stdout]/[stderr] bytes to the real streams (so a served
    answer is byte-identical to the direct command) and returns the
    daemon-reported exit code — the exit-code contract crosses the wire
    unchanged, including 3 (budget exhausted) and 130 (daemon
    interrupted mid-request). *)

type connection

val connect : socket:string -> (connection, string) result
val close : connection -> unit

val send_request : connection -> Protocol.request -> unit

val send_line : connection -> string -> unit
(** Ship one raw line (tests use this to exercise malformed-request
    handling). *)

val read_response :
  ?on_event:(string -> (string * int) list -> unit) ->
  connection ->
  (Protocol.response, string) result
(** Read frames until a [result]/[error] frame arrives; [event] frames
    are fed to [on_event] (dropped by default).  [Error] on a closed
    connection or an undecodable frame. *)

val roundtrip :
  ?on_event:(string -> (string * int) list -> unit) ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** [connect] + {!send_request} + {!read_response} + {!close}. *)

val run_cli : socket:string -> serve_auto:bool -> Protocol.request -> int
(** The [kpt client] body.  When no daemon is reachable:
    [~serve_auto:true] falls back to running the command locally
    ({!Handler.dispatch} — same driver, same bytes, same exit code);
    otherwise prints a hint and returns 2. *)
