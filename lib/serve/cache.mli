(** A bounded LRU map from content-address keys to cached results.

    Not thread-safe — the daemon serves requests sequentially (the
    parallelism lives {e inside} a request, in the {!Kpt_par} pool). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] disables the cache: every {!find} misses and
    {!add} is a no-op (the stats still count the misses). *)

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : 'a t -> stats

val find : 'a t -> string -> 'a option
(** A hit refreshes the entry's recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) [key]; when the cache is full the
    least-recently-used entry is evicted first. *)
