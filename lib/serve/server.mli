(** The daemon loop: a Unix-domain-socket server speaking the
    newline-delimited JSON protocol ({!Protocol}) against one warm
    {!Handler}.

    {b Lifecycle.}  Binding recovers stale socket files (a leftover path
    nobody accepts on is unlinked and re-bound; a live daemon is a
    startup error).  Connections are served sequentially — a second
    client queues in the listen backlog; the parallelism budget belongs
    to the {!Kpt_par} pool {e inside} a request.  A [shutdown] request
    stops the loop cleanly (exit 0).  SIGINT ([Sys.Break], the CLI
    arms [Sys.catch_break]) drains the in-flight request cooperatively
    (the pool cancels remaining tasks and joins its workers), sends the
    client a structured [error] frame with exit 130, and shuts down —
    and the socket file is removed on {e every} exit path. *)

type config = { socket_path : string; cache_size : int }

val default_socket : unit -> string
(** [$KPT_SOCKET] when set and non-empty, else
    [<tmpdir>/kpt-serve-<uid>.sock]. *)

val run : ?announce:bool -> config -> int
(** Serve until [shutdown] (returns 0) or SIGINT (returns 130); a bind
    failure reports to stderr and returns 1.  [announce] (default true)
    prints one "listening on …" line to stdout once the socket is
    ready — what scripts wait for. *)
