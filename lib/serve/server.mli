(** The daemon loop: a Unix-domain-socket server speaking the
    newline-delimited JSON protocol ({!Protocol}) against one warm,
    thread-safe {!Handler}.

    {b Concurrency.}  The main domain accepts connections into a bounded
    queue; [jobs] worker domains pop and serve them, each request under
    the usual per-request {!Kpt_analysis.Driver} scoping (fresh engine,
    private metrics), so concurrent requests share no engine state and
    the served bytes stay identical to direct execution.  When the queue
    is full the daemon sheds immediately: the new connection gets a
    structured [overloaded] error frame (exit {!Protocol.exit_overloaded})
    and is closed — load never piles up invisibly in the listen backlog.

    {b Deadlines.}  [request_timeout] bounds each request twice over: a
    socket-level absolute deadline for reading one request line (a
    slow-loris client is disconnected with an exit
    {!Protocol.exit_io_timeout} frame, no matter how steadily it drips)
    and a {!Kpt_predicate.Budget} wall-clock cap on the verification
    work itself (surfacing as the usual exit 3 when it expires).

    {b Lifecycle.}  Binding recovers stale socket files (a leftover path
    nobody accepts on is unlinked and re-bound; a live daemon is a
    startup error).  SIGINT/SIGTERM — or a [shutdown] request — trigger
    a drain: stop accepting, answer queued connections with structured
    exit-130 frames, let in-flight requests finish (bounded by their
    armed budgets), wake idle keep-alive connections, join the workers,
    and unlink the socket.  The socket file is removed on {e every} exit
    path. *)

type config = {
  socket_path : string;
  cache_size : int;
  jobs : int;  (** worker domains serving requests concurrently *)
  queue_capacity : int;
      (** accepted connections waiting for a worker before the daemon
          sheds *)
  request_timeout : float option;
      (** per-request deadline in seconds: socket read/write deadline
          plus a budget cap on the verification work; [None] = wait
          forever *)
}

val config :
  ?jobs:int ->
  ?queue_capacity:int ->
  ?request_timeout:float ->
  socket_path:string ->
  cache_size:int ->
  unit ->
  config
(** Smart constructor: [jobs] defaults to 1 (clamped to 1..64),
    [queue_capacity] to 64 (clamped to 1..4096); a non-positive
    [request_timeout] means none. *)

val default_socket : unit -> string
(** [$KPT_SOCKET] when set and non-empty, else
    [<tmpdir>/kpt-serve-<uid>.sock]. *)

val run : ?announce:bool -> config -> int
(** Serve until [shutdown] (returns 0) or SIGINT/SIGTERM (drains, then
    returns 130); a bind failure reports to stderr and returns 1.
    [announce] (default true) prints one "listening on …" line to stdout
    once the socket is ready — what scripts wait for. *)
