open Kpt_analysis

type t = {
  cache : Driver.outcome Cache.t;
  lock : Mutex.t;
      (* The LRU's hashtable and stamps are mutated even by [find], and
         [requests] is a plain int — with the server's worker domains
         all handling requests at once, every touch goes under this
         lock.  The verification work itself runs outside it. *)
  mutable requests : int;
  started_ns : int64;
}

let create ~cache_size =
  {
    cache = Cache.create ~capacity:cache_size;
    lock = Mutex.create ();
    requests = 0;
    started_ns = Kpt_obs.now_ns ();
  }

let dispatch ?sink cmd opts files =
  match (cmd : Protocol.cmd) with
  | Check -> Driver.check ?sink opts files
  | Lint -> Driver.lint ?sink opts files
  | Stats -> Driver.stats ?sink opts files
  | Solve -> Driver.solve ?sink opts files
  | Slice -> Driver.slice ?sink opts files
  | Ping | Shutdown ->
      invalid_arg "Handler.dispatch: ping/shutdown are transport commands"

(* Cache only the deterministic outcomes: 0 (ok) and 1 (findings).
   Usage errors are cheap to recompute, and a budget-exhausted answer
   (exit 3) depends on machine state whenever --timeout is involved —
   a faster moment deserves a fresh run, not a replayed failure. *)
let cacheable (o : Driver.outcome) = o.code = 0 || o.code = 1

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let handle ?sink t (req : Protocol.request) =
  let key = Protocol.cache_key req in
  let hit =
    locked t (fun () ->
        t.requests <- t.requests + 1;
        Cache.find t.cache key)
  in
  match hit with
  | Some outcome -> (outcome, true)
  | None ->
      (* Compute outside the lock: two workers racing on the same fresh
         key at worst both compute — the answers are byte-identical by
         the driver's contract, so the second [add] is a no-op in
         substance. *)
      let outcome = dispatch ?sink req.cmd req.opts req.files in
      if cacheable outcome then
        locked t (fun () -> Cache.add t.cache key outcome);
      (outcome, false)

let requests t = locked t (fun () -> t.requests)
let cache_stats t = locked t (fun () -> Cache.stats t.cache)

let uptime_s t =
  Int64.to_int (Int64.div (Int64.sub (Kpt_obs.now_ns ()) t.started_ns) 1_000_000_000L)
