open Kpt_analysis

type t = { cache : Driver.outcome Cache.t; mutable requests : int }

let create ~cache_size = { cache = Cache.create ~capacity:cache_size; requests = 0 }

let dispatch ?sink cmd opts files =
  match (cmd : Protocol.cmd) with
  | Check -> Driver.check ?sink opts files
  | Lint -> Driver.lint ?sink opts files
  | Stats -> Driver.stats ?sink opts files
  | Solve -> Driver.solve ?sink opts files
  | Slice -> Driver.slice ?sink opts files
  | Ping | Shutdown ->
      invalid_arg "Handler.dispatch: ping/shutdown are transport commands"

(* Cache only the deterministic outcomes: 0 (ok) and 1 (findings).
   Usage errors are cheap to recompute, and a budget-exhausted answer
   (exit 3) depends on machine state whenever --timeout is involved —
   a faster moment deserves a fresh run, not a replayed failure. *)
let cacheable (o : Driver.outcome) = o.code = 0 || o.code = 1

let handle ?sink t (req : Protocol.request) =
  t.requests <- t.requests + 1;
  let key = Protocol.cache_key req in
  match Cache.find t.cache key with
  | Some outcome -> (outcome, true)
  | None ->
      let outcome = dispatch ?sink req.cmd req.opts req.files in
      if cacheable outcome then Cache.add t.cache key outcome;
      (outcome, false)

let requests t = t.requests
let cache_stats t = Cache.stats t.cache
