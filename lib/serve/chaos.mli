(** Chaos-injection harness for the serve daemon: replay a
    generated-corpus slice against a {e real} daemon process through
    injected transport faults, asserting the serving layer's invariants —
    the daemon never crashes or wedges (it answers a ping and a healthy
    request after every fault), every surviving client receives either a
    byte-identical result or a structured well-formed error frame, and
    the socket path is always reclaimed (unlinked on clean exits,
    rebindable when SIGKILL leaves it stale).

    The adversary is purely client-side: raw file descriptors against
    the daemon's Unix socket, so it can truncate frames, dribble bytes
    slower than the deadline, slam connections shut mid-request, hold
    every worker while overflowing the queue, and kill the daemon
    process outright. *)

type fault =
  | Truncate  (** send a prefix of a request frame, then hang up *)
  | Garbage  (** send undecodable bytes where a request belongs *)
  | Partial_write  (** deliver a valid request in dribbled chunks *)
  | Disconnect  (** send a full request, close before the reply *)
  | Slow_loris  (** drip bytes forever, never completing a line *)
  | Flood  (** hold every worker, overflow the queue, expect sheds *)
  | Kill  (** SIGKILL the daemon mid-request; restart over the stale socket *)
  | Drain  (** SIGTERM: graceful drain, exit 130, socket unlinked *)

val all_faults : fault list
val fault_name : fault -> string
val fault_of_name : string -> fault option

type config = {
  exe : string;  (** the kpt binary to spawn as the daemon *)
  dir : string;  (** corpus directory of [.unity] specs *)
  specs : int;  (** slice size: first N specs, sorted by filename *)
  seed : int64;  (** drives fault shapes and truncation points *)
  socket : string;
  jobs : int;  (** daemon worker domains *)
  queue : int;  (** daemon queue capacity *)
  request_timeout : float;  (** daemon per-request deadline, seconds *)
  faults : fault list;
}

val run : Format.formatter -> config -> int
(** Execute the sweep; narrates per-fault progress and a final summary
    to the formatter.  Returns 0 when every invariant held, 1 on any
    violation, 2 when the corpus directory holds no specs.  Always
    reaps the daemon process it spawned. *)

val noise : socket:string -> seed:int64 -> rounds:int -> int
(** In-process fault injection against a live socket — truncated frames,
    garbage lines, instant disconnects — for running {e alongside}
    well-behaved clients (the P12 bench's chaos leg).  Returns the
    number of connections injected. *)
