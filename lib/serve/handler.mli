(** In-process request handling: dispatch to {!Kpt_analysis.Driver}
    through the content-addressed result cache.  The daemon loop
    ({!Server}) and the benchmarks call this directly — the warm path is
    exactly one [handle] call, no socket required. *)

open Kpt_analysis

type t
(** A warm handler: the result cache plus request bookkeeping.  The
    engine pool is process-wide ({!Kpt_par}); the handler holds no
    engine state of its own — every request runs under a fresh
    {!Engine.t} inside the driver.  Thread-safe: cache lookups/inserts
    and the request counter are mutex-protected, so the server's worker
    domains share one handler; the verification work itself runs outside
    the lock. *)

val create : cache_size:int -> t

val dispatch : ?sink:Driver.sink -> Protocol.cmd -> Driver.options -> (string * string) list -> Driver.outcome
(** Run one verification command, bypassing the cache (also the client's
    [--serve-auto] local fallback).  @raise Invalid_argument on
    [Ping]/[Shutdown] — those are transport commands, answered by the
    server loop. *)

val handle : ?sink:Driver.sink -> t -> Protocol.request -> Driver.outcome * bool
(** [handle t req] answers [req] from the cache when possible; the
    boolean is [true] on a hit.  Only deterministic outcomes (exit codes
    0 and 1) are cached: usage errors and budget exhaustion (exit 3,
    wall-clock-dependent in general) are recomputed every time.  A hit
    streams no events regardless of [req.opts.trace]. *)

val requests : t -> int
(** Requests handled so far (cache hits included). *)

val cache_stats : t -> Cache.stats

val uptime_s : t -> int
(** Whole seconds since [create], on the monotonic bench clock — the
    [uptime_s] field of a [ping] reply. *)
