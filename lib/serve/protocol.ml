open Kpt_predicate
open Kpt_analysis

let version = 1

(* ---- exit codes the transport layer owns -----------------------------------

   The verification exit codes (0 ok / 1 findings / 2 usage / 3 budget)
   cross the wire unchanged; these two belong to the serving layer
   itself.  75 is sysexits' EX_TEMPFAIL — the canonical "try again
   later", which is exactly what a shed request is.  4 is the I/O
   deadline: the daemon cut the connection because the client was too
   slow to speak, which is neither a verification verdict nor a usage
   error. *)
let exit_overloaded = 75
let exit_io_timeout = 4
let exit_interrupted = 130

(* Machine-readable failure classes, so clients can decide what to do
   (retry, upgrade, give up) without parsing prose.  An absent kind on
   the wire decodes as [Generic] — frames from older daemons stay
   readable. *)
type error_kind = Generic | Overloaded | Timeout | Version_mismatch | Interrupted

let error_kind_to_string = function
  | Generic -> "generic"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Version_mismatch -> "version_mismatch"
  | Interrupted -> "interrupted"

let error_kind_of_string = function
  | "overloaded" -> Overloaded
  | "timeout" -> Timeout
  | "version_mismatch" -> Version_mismatch
  | "interrupted" -> Interrupted
  | _ -> Generic

type cmd = Check | Lint | Stats | Solve | Slice | Ping | Shutdown

let cmd_to_string = function
  | Check -> "check"
  | Lint -> "lint"
  | Stats -> "stats"
  | Solve -> "solve"
  | Slice -> "slice"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let cmd_of_string = function
  | "check" -> Some Check
  | "lint" -> Some Lint
  | "stats" -> Some Stats
  | "solve" -> Some Solve
  | "slice" -> Some Slice
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  id : int;
  cmd : cmd;
  files : (string * string) list;
  opts : Driver.options;
}

(* ---- options <-> JSON ------------------------------------------------------ *)

let reorder_to_string = function
  | Engine.Reorder_auto -> "auto"
  | Engine.Reorder_off -> "off"
  | Engine.Reorder_manual -> "manual"

let reorder_of_string = function
  | "auto" -> Some Engine.Reorder_auto
  | "off" -> Some Engine.Reorder_off
  | "manual" -> Some Engine.Reorder_manual
  | _ -> None

(* 0 = unset for the numeric options, so the encoding needs no nulls *)
let opts_to_json (o : Driver.options) =
  Json.Obj
    [
      ("jobs", Json.Int (match o.jobs with Some j -> j | None -> 0));
      ("json", Json.Bool o.json);
      ("warn_error", Json.Bool o.warn_error);
      ("quiet", Json.Bool o.quiet);
      ("slice", Json.Bool o.slice);
      ("semantic", Json.Bool o.semantic);
      ("timings", Json.Bool o.timings);
      ("trace", Json.Bool o.trace);
      ("wrt", Json.List (List.map (fun s -> Json.String s) o.wrt));
      ( "timeout_ns",
        Json.Int
          (match o.limits.Budget.timeout_ns with
          | Some t -> Int64.to_int t
          | None -> 0) );
      ("fuel", Json.Int (match o.limits.Budget.fuel with Some f -> f | None -> 0));
      ( "max_nodes",
        Json.Int (match o.limits.Budget.max_nodes with Some m -> m | None -> 0) );
      ("reorder", Json.String (reorder_to_string o.reorder));
    ]

let opts_of_json j : (Driver.options, string) result =
  let bool_f k = Option.bind (Json.member k j) Json.to_bool |> Option.value ~default:false in
  let int_f k = Option.bind (Json.member k j) Json.to_int |> Option.value ~default:0 in
  let pos i = if i > 0 then Some i else None in
  let wrt =
    match Option.bind (Json.member "wrt" j) Json.to_list with
    | Some l -> List.filter_map Json.to_str l
    | None -> []
  in
  let reorder_s =
    Option.bind (Json.member "reorder" j) Json.to_str |> Option.value ~default:"off"
  in
  match reorder_of_string reorder_s with
  | None -> Error (Printf.sprintf "unknown reorder mode %S" reorder_s)
  | Some reorder ->
      Ok
        {
          Driver.jobs = pos (int_f "jobs");
          json = bool_f "json";
          warn_error = bool_f "warn_error";
          quiet = bool_f "quiet";
          slice = bool_f "slice";
          semantic = bool_f "semantic";
          timings = bool_f "timings";
          trace = bool_f "trace";
          wrt;
          limits =
            Budget.limits
              ?timeout_ns:(Option.map Int64.of_int (pos (int_f "timeout_ns")))
              ?fuel:(pos (int_f "fuel"))
              ?max_nodes:(pos (int_f "max_nodes"))
              ();
          reorder;
        }

(* ---- requests -------------------------------------------------------------- *)

let files_to_json files =
  Json.List
    (List.map
       (fun (path, source) ->
         Json.Obj [ ("path", Json.String path); ("source", Json.String source) ])
       files)

let request_to_json r =
  Json.Obj
    [
      ("v", Json.Int version);
      ("id", Json.Int r.id);
      ("cmd", Json.String (cmd_to_string r.cmd));
      ("files", files_to_json r.files);
      ("opts", opts_to_json r.opts);
    ]

let version_of_json j = Option.bind (Json.member "v" j) Json.to_int

let request_of_json j : (request, string) result =
  let ( let* ) = Result.bind in
  let* () =
    match version_of_json j with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "protocol version %d, this daemon speaks %d" v version)
    | None -> Error "missing protocol version field \"v\""
  in
  let id = Option.bind (Json.member "id" j) Json.to_int |> Option.value ~default:0 in
  let* cmd =
    match Option.bind (Json.member "cmd" j) Json.to_str with
    | None -> Error "missing command field \"cmd\""
    | Some s -> (
        match cmd_of_string s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown command %S" s))
  in
  let* files =
    match Json.member "files" j with
    | None -> Ok []
    | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest -> (
              match
                ( Option.bind (Json.member "path" f) Json.to_str,
                  Option.bind (Json.member "source" f) Json.to_str )
              with
              | Some p, Some s -> go ((p, s) :: acc) rest
              | _ -> Error "malformed files entry: need string \"path\" and \"source\"")
        in
        go [] l
    | Some _ -> Error "malformed \"files\" field: expected a list"
  in
  let* opts =
    match Json.member "opts" j with
    | Some o -> opts_of_json o
    | None -> Ok Driver.default_options
  in
  Ok { id; cmd; files; opts }

(* ---- responses ------------------------------------------------------------- *)

type response =
  | Result of {
      id : int;
      exit_code : int;
      cached : bool;
      out : string;
      err : string;
      daemon : (string * int) list;
    }
  | Event of { id : int; name : string; fields : (string * int) list }
  | Error_frame of {
      id : int;
      exit_code : int;
      kind : error_kind;
      message : string;
    }

let response_to_json = function
  | Result { id; exit_code; cached; out; err; daemon } ->
      Json.Obj
        ([
           ("id", Json.Int id);
           ("type", Json.String "result");
           ("exit", Json.Int exit_code);
           ("cached", Json.Bool cached);
           ("stdout", Json.String out);
           ("stderr", Json.String err);
         ]
        @
        if daemon = [] then []
        else [ ("daemon", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) daemon)) ])
  | Event { id; name; fields } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("type", Json.String "event");
          ("name", Json.String name);
          ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) fields));
        ]
  | Error_frame { id; exit_code; kind; message } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("type", Json.String "error");
          ("exit", Json.Int exit_code);
          ("kind", Json.String (error_kind_to_string kind));
          ("error", Json.String message);
        ]

let response_of_json j : (response, string) result =
  let id = Option.bind (Json.member "id" j) Json.to_int |> Option.value ~default:0 in
  let int_fields k =
    match Option.bind (Json.member k j) (fun v -> match v with Json.Obj kvs -> Some kvs | _ -> None) with
    | Some kvs -> List.filter_map (fun (k, v) -> Option.map (fun i -> (k, i)) (Json.to_int v)) kvs
    | None -> []
  in
  match Option.bind (Json.member "type" j) Json.to_str with
  | Some "result" ->
      Ok
        (Result
           {
             id;
             exit_code =
               Option.bind (Json.member "exit" j) Json.to_int |> Option.value ~default:0;
             cached =
               Option.bind (Json.member "cached" j) Json.to_bool
               |> Option.value ~default:false;
             out =
               Option.bind (Json.member "stdout" j) Json.to_str |> Option.value ~default:"";
             err =
               Option.bind (Json.member "stderr" j) Json.to_str |> Option.value ~default:"";
             daemon = int_fields "daemon";
           })
  | Some "event" ->
      Ok
        (Event
           {
             id;
             name =
               Option.bind (Json.member "name" j) Json.to_str |> Option.value ~default:"";
             fields = int_fields "fields";
           })
  | Some "error" ->
      Ok
        (Error_frame
           {
             id;
             exit_code =
               Option.bind (Json.member "exit" j) Json.to_int |> Option.value ~default:1;
             kind =
               Option.bind (Json.member "kind" j) Json.to_str
               |> Option.value ~default:"generic" |> error_kind_of_string;
             message =
               Option.bind (Json.member "error" j) Json.to_str |> Option.value ~default:"";
           })
  | Some t -> Error (Printf.sprintf "unknown frame type %S" t)
  | None -> Error "missing frame type"

(* ---- the wire itself -------------------------------------------------------

   Both sides used to write through buffered out_channels, whose flush
   can drop bytes silently on a partial write to a socket.  Every frame
   now goes through one EINTR-safe loop over
   [Unix.single_write_substring]: a short write resumes at the unsent
   suffix, EINTR retries, and every other error (EPIPE from a vanished
   peer, EAGAIN from an armed SO_SNDTIMEO deadline) propagates to the
   caller — a frame is either delivered whole or the connection is known
   broken.  [single_write] (one write(2) call, true byte count) is the
   only safe primitive here: [Unix.write]'s internal chunking loop
   raises on EINTR even after partial progress, so retrying it from the
   old offset would duplicate bytes. *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.single_write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_line fd line = write_all fd (line ^ "\n")

let write_frame fd frame =
  write_line fd (Json.to_string (response_to_json frame))

(* ---- the content address --------------------------------------------------- *)

let cache_key r =
  (* transport bookkeeping ([id]), pool width ([jobs] — the output is
     pool-size-independent by contract) and [trace] (auxiliary event
     stream) do not address the answer *)
  let key_opts = { r.opts with Driver.jobs = None; trace = false } in
  let canonical =
    Json.Obj
      [
        ("v", Json.Int version);
        ("cmd", Json.String (cmd_to_string r.cmd));
        ("files", files_to_json r.files);
        ("opts", opts_to_json key_opts);
      ]
  in
  Digest.to_hex (Digest.string (Json.to_string canonical))
