(* Chaos harness: replay a generated-corpus slice against a *real*
   daemon process through injected transport faults, and assert the
   serving layer's three invariants:

   1. the daemon never crashes or wedges — after every fault it still
      answers a ping and serves a healthy request;
   2. every surviving client gets either a byte-identical result or a
      structured, well-formed error frame — never garbage;
   3. the socket path is always reclaimed: unlinked on clean exits,
      rebindable after a SIGKILL leaves it stale.

   The harness is deliberately a *client-side* adversary: it speaks to
   the daemon over the same Unix socket any client would, through raw
   fds so it can truncate frames, dribble bytes, slam connections shut
   and flood the queue — the faults a production deployment actually
   meets, the same spirit as the paper's lossy-channel protocols. *)

open Kpt_analysis

type fault =
  | Truncate  (** send a prefix of a request frame, then hang up *)
  | Garbage  (** send undecodable bytes where a request belongs *)
  | Partial_write  (** deliver a valid request in dribbled chunks *)
  | Disconnect  (** send a full request, close before the reply *)
  | Slow_loris  (** drip bytes forever, never completing a line *)
  | Flood  (** hold every worker, overflow the queue, expect sheds *)
  | Kill  (** SIGKILL the daemon mid-request; restart over the stale socket *)
  | Drain  (** SIGTERM: graceful drain, exit 130, socket unlinked *)

let all_faults =
  [ Truncate; Garbage; Partial_write; Disconnect; Slow_loris; Flood; Kill; Drain ]

let fault_name = function
  | Truncate -> "truncate"
  | Garbage -> "garbage"
  | Partial_write -> "partial-write"
  | Disconnect -> "disconnect"
  | Slow_loris -> "slow-loris"
  | Flood -> "flood"
  | Kill -> "kill"
  | Drain -> "drain"

let fault_of_name = function
  | "truncate" -> Some Truncate
  | "garbage" -> Some Garbage
  | "partial-write" -> Some Partial_write
  | "disconnect" -> Some Disconnect
  | "slow-loris" -> Some Slow_loris
  | "flood" -> Some Flood
  | "kill" -> Some Kill
  | "drain" -> Some Drain
  | _ -> None

type config = {
  exe : string;
  dir : string;
  specs : int;
  seed : int64;
  socket : string;
  jobs : int;
  queue : int;
  request_timeout : float;
  faults : fault list;
}

(* Deterministic, machine-independent budget for every replayed spec:
   fuel and nodes only, so heavy corpus instances answer exit 3 the same
   way everywhere instead of hanging the sweep. *)
let chaos_limits =
  Kpt_predicate.Budget.limits ~fuel:5_000 ~max_nodes:500_000 ()

type t = {
  cfg : config;
  fmt : Format.formatter;
  rng : Kpt_gen.Rng.t;
  mutable daemon : int option;  (* pid *)
  mutable violations : string list;
  mutable checks : int;
  expected : (string, Driver.outcome) Hashtbl.t;
}

let violation t fmt =
  Printf.ksprintf
    (fun msg ->
      t.violations <- msg :: t.violations;
      Format.fprintf t.fmt "chaos: VIOLATION: %s@." msg)
    fmt

(* ---- corpus ---------------------------------------------------------------- *)

let load_specs cfg =
  let entries = try Sys.readdir cfg.dir with Sys_error _ -> [||] in
  let unity =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".unity")
    |> List.sort String.compare
  in
  let take n l =
    let rec go n = function
      | x :: rest when n > 0 -> x :: go (n - 1) rest
      | _ -> []
    in
    go n l
  in
  take cfg.specs unity
  |> List.map (fun f ->
         let path = Filename.concat cfg.dir f in
         let ic = open_in_bin path in
         let src =
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         (f, src))

let req_of_spec id (name, src) =
  {
    Protocol.id;
    cmd = Protocol.Check;
    files = [ (name, src) ];
    opts = { Driver.default_options with Driver.limits = chaos_limits };
  }

let request_line spec =
  Json.to_string (Protocol.request_to_json (req_of_spec 1 spec))

(* What the daemon must serve, byte for byte: the same driver, the same
   options, computed in-process once per spec. *)
let expected t ((name, _) as spec) =
  match Hashtbl.find_opt t.expected name with
  | Some o -> o
  | None ->
      let req = req_of_spec 1 spec in
      let o = Handler.dispatch req.Protocol.cmd req.Protocol.opts req.Protocol.files in
      Hashtbl.replace t.expected name o;
      o

(* ---- raw-socket plumbing --------------------------------------------------- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      close_quiet fd;
      Error (Unix.error_message e)

(* Read one newline-terminated line with an absolute deadline; [None] on
   EOF, timeout, or a connection error. *)
let recv_line ?(timeout = 30.) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then None
    else begin
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO remaining
       with Unix.Unix_error _ -> ());
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n -> (
          let s = Bytes.sub_string chunk 0 n in
          match String.index_opt s '\n' with
          | Some i ->
              Buffer.add_string buf (String.sub s 0 i);
              Some (Buffer.contents buf)
          | None ->
              Buffer.add_string buf s;
              go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> None
    end
  in
  go ()

(* One request/one reply over a fresh connection, skipping event frames;
   bounded so a wedged daemon becomes a violation, not a hung sweep. *)
let exchange ?(timeout = 30.) socket line =
  match raw_connect socket with
  | Error e -> Error (Printf.sprintf "connect: %s" e)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> close_quiet fd)
        (fun () ->
          match Protocol.write_line fd line with
          | () -> (
              let rec read_frame () =
                match recv_line ~timeout fd with
                | None -> Error "no reply (connection closed or timed out)"
                | Some l -> (
                    match Protocol.response_of_json (Json.of_string l) with
                    | exception Json.Parse_error msg ->
                        Error (Printf.sprintf "malformed frame: %s" msg)
                    | Error msg -> Error (Printf.sprintf "malformed frame: %s" msg)
                    | Ok (Protocol.Event _) -> read_frame ()
                    | Ok frame -> Ok frame)
              in
              read_frame ())
          | exception (Unix.Unix_error _ | Sys_error _) ->
              Error "send failed (connection closed)")

(* ---- invariant checks ------------------------------------------------------ *)

let ping_alive t ~tag =
  t.checks <- t.checks + 1;
  let ping =
    Json.to_string
      (Protocol.request_to_json
         {
           Protocol.id = 99;
           cmd = Protocol.Ping;
           files = [];
           opts = Driver.default_options;
         })
  in
  match exchange t.cfg.socket ping with
  | Ok (Protocol.Result { exit_code = 0; daemon; _ }) when daemon <> [] -> true
  | Ok _ -> violation t "%s: ping answered with an unexpected frame" tag; false
  | Error e -> violation t "%s: daemon unresponsive to ping (%s)" tag e; false

let healthy t ~tag spec =
  t.checks <- t.checks + 1;
  match exchange t.cfg.socket (request_line spec) with
  | Error e -> violation t "%s: healthy request on %s failed: %s" tag (fst spec) e
  | Ok (Protocol.Error_frame { message; _ }) ->
      violation t "%s: healthy request on %s got an error frame: %s" tag
        (fst spec) message
  | Ok (Protocol.Event _) -> assert false
  | Ok (Protocol.Result { exit_code; out; err; _ }) ->
      if exit_code = 0 || exit_code = 1 then begin
        let e = expected t spec in
        if not (e.Driver.code = exit_code && e.Driver.out = out && e.Driver.err = err)
        then
          violation t "%s: served bytes for %s differ from direct execution" tag
            (fst spec)
      end
      else if exit_code <> 3 then
        violation t "%s: %s answered with unexpected exit %d" tag (fst spec)
          exit_code

(* ---- daemon lifecycle ------------------------------------------------------ *)

let wait_for_socket ?(timeout = 10.) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match raw_connect path with
    | Ok fd ->
        close_quiet fd;
        true
    | Error _ ->
        if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.02;
          go ()
        end
  in
  go ()

let start_daemon t =
  match t.daemon with
  | Some _ -> ()
  | None ->
      let cfg = t.cfg in
      let args =
        [|
          cfg.exe; "serve";
          "--socket"; cfg.socket;
          "--cache-size"; "128";
          "--serve-jobs"; string_of_int cfg.jobs;
          "--queue"; string_of_int cfg.queue;
          "--request-timeout"; string_of_float cfg.request_timeout;
        |]
      in
      let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
      let pid = Unix.create_process cfg.exe args Unix.stdin null null in
      close_quiet null;
      if not (wait_for_socket cfg.socket) then begin
        violation t "daemon did not come up on %s within 10s" cfg.socket;
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
      end
      else t.daemon <- Some pid

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Wire shutdown; asserts exit 0 and a reclaimed socket. *)
let stop_daemon t =
  match t.daemon with
  | None -> ()
  | Some pid ->
      t.daemon <- None;
      let line =
        Json.to_string
          (Protocol.request_to_json
             {
               Protocol.id = 0;
               cmd = Protocol.Shutdown;
               files = [];
               opts = Driver.default_options;
             })
      in
      (match exchange t.cfg.socket line with
      | Ok (Protocol.Result { exit_code = 0; _ }) -> ()
      | Ok _ | Error _ ->
          (* failing to answer the shutdown nicely is itself a violation;
             make sure the process dies regardless *)
          violation t "shutdown request was not answered cleanly";
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
      let _, status = waitpid_retry pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> violation t "daemon exited %d on shutdown (want 0)" n
      | Unix.WSIGNALED s -> violation t "daemon died on signal %d during shutdown" s
      | Unix.WSTOPPED _ -> violation t "daemon stopped instead of exiting");
      if Sys.file_exists t.cfg.socket then
        violation t "socket %s not reclaimed after shutdown" t.cfg.socket

let kill_daemon t =
  match t.daemon with
  | None -> ()
  | Some pid ->
      t.daemon <- None;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (waitpid_retry pid)

(* ---- fault scenarios ------------------------------------------------------- *)

let garbage_line rng =
  match Kpt_gen.Rng.int rng 4 with
  | 0 -> "this is not json"
  | 1 -> "{\"v\":\"one\",\"cmd\":42}"
  | 2 -> "{\"v\":1,\"cmd\":\"check\",\"files\":\"nope\"}"
  | _ ->
      String.init (16 + Kpt_gen.Rng.int rng 64) (fun _ ->
          Char.chr (33 + Kpt_gen.Rng.int rng 90))

let scenario_truncate t specs =
  List.iter
    (fun spec ->
      t.checks <- t.checks + 1;
      (match raw_connect t.cfg.socket with
      | Error e -> violation t "truncate: connect failed: %s" e
      | Ok fd ->
          let line = request_line spec in
          let k = 1 + Kpt_gen.Rng.int t.rng (String.length line - 1) in
          (try Protocol.write_all fd (String.sub line 0 k)
           with Unix.Unix_error _ | Sys_error _ -> ());
          close_quiet fd);
      healthy t ~tag:"truncate" spec)
    specs

let scenario_garbage t specs =
  List.iter
    (fun spec ->
      t.checks <- t.checks + 1;
      (match exchange t.cfg.socket (garbage_line t.rng) with
      | Ok (Protocol.Error_frame { exit_code = 2; _ }) -> ()
      | Ok _ -> violation t "garbage: expected a structured exit-2 error frame"
      | Error e -> violation t "garbage: %s" e);
      healthy t ~tag:"garbage" spec)
    specs

(* A valid request delivered in dribbled chunks must still produce the
   byte-identical answer — the reassembly path under test is the
   server's deadline reader. *)
let scenario_partial_write t specs =
  List.iter
    (fun spec ->
      t.checks <- t.checks + 1;
      match raw_connect t.cfg.socket with
      | Error e -> violation t "partial-write: connect failed: %s" e
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> close_quiet fd)
            (fun () ->
              let line = request_line spec ^ "\n" in
              let len = String.length line in
              let chunk = max 64 (len / 16) in
              let sent = ref true in
              let off = ref 0 in
              while !sent && !off < len do
                let n = min chunk (len - !off) in
                (match Protocol.write_all fd (String.sub line !off n) with
                | () -> off := !off + n
                | exception (Unix.Unix_error _ | Sys_error _) -> sent := false);
                Unix.sleepf 0.001
              done;
              if not !sent then
                violation t "partial-write: daemon dropped a live connection mid-send"
              else
                match recv_line fd with
                | None -> violation t "partial-write: no reply on %s" (fst spec)
                | Some l -> (
                    match Protocol.response_of_json (Json.of_string l) with
                    | exception Json.Parse_error msg ->
                        violation t "partial-write: malformed frame: %s" msg
                    | Error msg -> violation t "partial-write: malformed frame: %s" msg
                    | Ok (Protocol.Result { exit_code; out; err; _ }) ->
                        if exit_code = 0 || exit_code = 1 then begin
                          let e = expected t spec in
                          if
                            not
                              (e.Driver.code = exit_code && e.Driver.out = out
                             && e.Driver.err = err)
                          then
                            violation t
                              "partial-write: served bytes for %s differ from \
                               direct execution"
                              (fst spec)
                        end
                    | Ok _ ->
                        violation t "partial-write: unexpected frame on %s"
                          (fst spec))))
    specs

let scenario_disconnect t specs =
  List.iter
    (fun spec ->
      t.checks <- t.checks + 1;
      (match raw_connect t.cfg.socket with
      | Error e -> violation t "disconnect: connect failed: %s" e
      | Ok fd ->
          (try Protocol.write_line fd (request_line spec)
           with Unix.Unix_error _ | Sys_error _ -> ());
          (* hang up before the daemon can possibly have answered *)
          close_quiet fd);
      healthy t ~tag:"disconnect" spec)
    specs

let scenario_slow_loris t specs =
  let timeout = t.cfg.request_timeout in
  let budget = (3. *. timeout) +. 2. in
  List.iter
    (fun spec ->
      t.checks <- t.checks + 1;
      (match raw_connect t.cfg.socket with
      | Error e -> violation t "slow-loris: connect failed: %s" e
      | Ok fd ->
          Fun.protect
            ~finally:(fun () -> close_quiet fd)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let cut = ref false in
              let drip = min 0.1 (timeout /. 5.) in
              while (not !cut) && Unix.gettimeofday () -. t0 < budget do
                (* drip one byte of a request that never completes *)
                (match Protocol.write_all fd "{" with
                | () -> ()
                | exception (Unix.Unix_error _ | Sys_error _) -> cut := true);
                (match Unix.select [ fd ] [] [] 0. with
                | [ _ ], _, _ -> (
                    (* the daemon spoke (deadline frame) or hung up *)
                    match recv_line ~timeout:1. fd with
                    | None -> cut := true
                    | Some l -> (
                        match Protocol.response_of_json (Json.of_string l) with
                        | Ok (Protocol.Error_frame { kind = Protocol.Timeout; _ })
                          ->
                            cut := true
                        | Ok _ | Error _ ->
                            violation t
                              "slow-loris: expected a timeout error frame";
                            cut := true
                        | exception Json.Parse_error _ ->
                            violation t "slow-loris: malformed frame";
                            cut := true))
                | _ -> ()
                | exception Unix.Unix_error _ -> cut := true);
                if not !cut then Unix.sleepf drip
              done;
              if not !cut then
                violation t
                  "slow-loris: client still connected after %.1fs (deadline %gs)"
                  budget timeout));
      healthy t ~tag:"slow-loris" spec)
    specs

(* Hold every worker with silent connections, fill the queue, and demand
   that the surplus is shed promptly with structured overloaded frames —
   not parked in the backlog. *)
let scenario_flood t specs =
  t.checks <- t.checks + 1;
  (* The request deadline also covers silent connections, so the whole
     round — hold the workers, fill the queue, probe the surplus — must
     land inside the daemon's request_timeout window.  On a loaded box
     the timing can slip (a holder gets deadline-cut, a worker frees up,
     and a surplus probe sees a timeout frame instead of a shed), which
     is a miss but not a protocol violation; retry a few rounds and only
     report a violation when no round sheds the full surplus. *)
  let surplus = 5 in
  let hard = ref None in
  let note_hard msg = if !hard = None then hard := Some msg in
  let round () =
    let connect_n n =
      List.init n (fun _ ->
          match raw_connect t.cfg.socket with Ok fd -> Some fd | Error _ -> None)
      |> List.filter_map Fun.id
    in
    let holders = connect_n t.cfg.jobs in
    (* give the workers a moment to pick the holders up *)
    Unix.sleepf 0.1;
    let queued = connect_n t.cfg.queue in
    Unix.sleepf 0.05;
    let sheds = ref 0 in
    for _ = 1 to surplus do
      match raw_connect t.cfg.socket with
      | Error e -> note_hard (Printf.sprintf "flood: connect failed: %s" e)
      | Ok fd -> (
          Fun.protect
            ~finally:(fun () -> close_quiet fd)
            (fun () ->
              match recv_line ~timeout:5. fd with
              | None ->
                  note_hard "flood: surplus connection got no frame at all"
              | Some l -> (
                  match Protocol.response_of_json (Json.of_string l) with
                  | Ok
                      (Protocol.Error_frame
                         { kind = Protocol.Overloaded; exit_code; _ }) ->
                      if exit_code <> Protocol.exit_overloaded then
                        note_hard
                          (Printf.sprintf
                             "flood: overloaded frame carries exit %d (want %d)"
                             exit_code Protocol.exit_overloaded)
                      else incr sheds
                  | Ok _ ->
                      (* a worker freed up mid-round and the probe got a
                         deadline frame (or was served) — timing miss *)
                      ()
                  | Error msg | (exception Json.Parse_error msg) ->
                      note_hard
                        (Printf.sprintf "flood: malformed shed frame: %s" msg))))
    done;
    List.iter close_quiet queued;
    List.iter close_quiet holders;
    !sheds
  in
  let rec attempt n =
    let sheds = round () in
    if !hard = None && sheds < surplus then
      if n > 1 then (
        (* let the daemon's backlog drain before trying again *)
        Unix.sleepf (t.cfg.request_timeout +. 0.2);
        attempt (n - 1))
      else
        violation t "flood: only %d of %d surplus connections were shed"
          sheds surplus
  in
  attempt 4;
  (match !hard with Some msg -> violation t "%s" msg | None -> ());
  (* the daemon must come back to life once the flood recedes *)
  Unix.sleepf 0.2;
  (match specs with s :: _ -> healthy t ~tag:"flood" s | [] -> ());
  ignore (ping_alive t ~tag:"flood")

let scenario_kill t specs =
  match (t.daemon, specs) with
  | Some pid, spec :: _ ->
      t.checks <- t.checks + 1;
      (match raw_connect t.cfg.socket with
      | Error e -> violation t "kill: connect failed: %s" e
      | Ok fd ->
          (try Protocol.write_line fd (request_line spec)
           with Unix.Unix_error _ | Sys_error _ -> ());
          Unix.sleepf 0.02;
          t.daemon <- None;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (waitpid_retry pid);
          (* the client must see silence or a complete well-formed frame —
             never a decodable-looking line that isn't one *)
          (match recv_line ~timeout:2. fd with
          | None -> ()
          | Some l -> (
              match Protocol.response_of_json (Json.of_string l) with
              | Ok _ -> ()
              | Error msg | (exception Json.Parse_error msg) ->
                  violation t "kill: malformed frame after SIGKILL: %s" msg));
          close_quiet fd);
      if not (Sys.file_exists t.cfg.socket) then
        violation t "kill: SIGKILL should leave the socket file stale on disk";
      (* the restart must reclaim the stale socket *)
      start_daemon t;
      if t.daemon = None then violation t "kill: daemon failed to restart over the stale socket"
      else begin
        healthy t ~tag:"kill-restart" spec;
        ignore (ping_alive t ~tag:"kill-restart")
      end
  | _ -> ()

let scenario_drain t specs =
  match t.daemon with
  | None -> ()
  | Some pid -> (
      t.checks <- t.checks + 1;
      (* park one idle connection; the drain must wake it with EOF *)
      let idle =
        match raw_connect t.cfg.socket with Ok fd -> Some fd | Error _ -> None
      in
      Unix.sleepf 0.1;
      t.daemon <- None;
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      let _, status = waitpid_retry pid in
      (match status with
      | Unix.WEXITED 130 -> ()
      | Unix.WEXITED n -> violation t "drain: daemon exited %d on SIGTERM (want 130)" n
      | Unix.WSIGNALED s -> violation t "drain: daemon died on signal %d" s
      | Unix.WSTOPPED _ -> violation t "drain: daemon stopped instead of exiting");
      (match idle with
      | Some fd ->
          (match recv_line ~timeout:2. fd with
          | None -> () (* EOF: the drain hung us up, as documented *)
          | Some l -> (
              match Protocol.response_of_json (Json.of_string l) with
              | Ok _ -> ()
              | Error msg | (exception Json.Parse_error msg) ->
                  violation t "drain: malformed frame during drain: %s" msg));
          close_quiet fd
      | None -> ());
      if Sys.file_exists t.cfg.socket then
        violation t "drain: socket %s not unlinked by the drain" t.cfg.socket;
      (* bring the daemon back for whatever scenario follows *)
      start_daemon t;
      match specs with
      | s :: _ when t.daemon <> None -> healthy t ~tag:"drain-restart" s
      | _ -> ())

(* ---- in-process noise (the bench's chaos leg) ------------------------------ *)

let noise ~socket ~seed ~rounds =
  let rng = Kpt_gen.Rng.make seed in
  let injected = ref 0 in
  for _ = 1 to rounds do
    match raw_connect socket with
    | Error _ -> ()
    | Ok fd ->
        incr injected;
        (try
           match Kpt_gen.Rng.int rng 3 with
           | 0 -> Protocol.write_all fd "{\"v\":1,\"cmd\":\"che"
           | 1 -> Protocol.write_line fd (garbage_line rng)
           | _ -> () (* connect and slam shut *)
         with Unix.Unix_error _ | Sys_error _ -> ());
        close_quiet fd
  done;
  !injected

(* ---- the sweep ------------------------------------------------------------- *)

let run fmt cfg =
  (* writes into freshly-closed sockets must surface as EPIPE, not kill
     the chaos process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let specs = load_specs cfg in
  if specs = [] then begin
    Format.fprintf fmt "error: no .unity specs under %s@." cfg.dir;
    2
  end
  else begin
    let t =
      {
        cfg;
        fmt;
        rng = Kpt_gen.Rng.make cfg.seed;
        daemon = None;
        violations = [];
        checks = 0;
        expected = Hashtbl.create 64;
      }
    in
    Format.fprintf fmt
      "chaos: %d spec(s) from %s, %d fault kind(s), daemon %s (jobs %d, queue %d, deadline %gs)@."
      (List.length specs) cfg.dir (List.length cfg.faults) cfg.socket cfg.jobs
      cfg.queue cfg.request_timeout;
    Fun.protect
      ~finally:(fun () -> kill_daemon t)
      (fun () ->
        start_daemon t;
        if t.daemon = None then ()
        else
          List.iter
            (fun fault ->
              let before = List.length t.violations in
              (match fault with
              | Truncate -> scenario_truncate t specs
              | Garbage -> scenario_garbage t specs
              | Partial_write -> scenario_partial_write t specs
              | Disconnect -> scenario_disconnect t specs
              | Slow_loris ->
                  (* each iteration costs ~3x the deadline; a small slice
                     of the corpus exercises the path fully *)
                  let rec take n = function
                    | x :: rest when n > 0 -> x :: take (n - 1) rest
                    | _ -> []
                  in
                  scenario_slow_loris t (take 2 specs)
              | Flood -> scenario_flood t specs
              | Kill -> scenario_kill t specs
              | Drain -> scenario_drain t specs);
              ignore (ping_alive t ~tag:(fault_name fault));
              Format.fprintf fmt "chaos: fault=%s %s@." (fault_name fault)
                (if List.length t.violations = before then "ok"
                 else
                   Printf.sprintf "FAILED (%d violation(s))"
                     (List.length t.violations - before)))
            cfg.faults;
        stop_daemon t);
    let nv = List.length t.violations in
    Format.fprintf fmt
      "chaos: %d fault kind(s) x %d spec(s), %d client check(s), %d violation(s)@."
      (List.length cfg.faults) (List.length specs) t.checks nv;
    if nv = 0 then 0 else 1
  end
