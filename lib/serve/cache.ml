(* LRU by logical clock: every access stamps the entry with a fresh
   tick, eviction scans for the minimum stamp.  An O(entries) scan per
   eviction — entries is the configured bound (hundreds), evictions only
   happen on insert, and each cached value took milliseconds to compute,
   so a linked-list LRU would be complexity without a measurement. *)

type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create (max 16 capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats (t : 'a t) =
  {
    entries = Hashtbl.length t.tbl;
    capacity = t.capacity;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let touch (t : 'a t) e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find (t : 'a t) key =
  match Hashtbl.find_opt t.tbl key with
  | Some e when t.capacity > 0 ->
      touch t e;
      t.hits <- t.hits + 1;
      Some e.value
  | _ ->
      t.misses <- t.misses + 1;
      None

let evict_lru (t : 'a t) =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add (t : 'a t) key value =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        e.value <- value;
        touch t e
    | None ->
        if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
        let e = { value; stamp = 0 } in
        touch t e;
        Hashtbl.add t.tbl key e
