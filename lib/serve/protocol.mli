(** The serve wire protocol: newline-delimited JSON frames over a Unix
    domain socket.

    {b Requests} (client → daemon), one per line:
    {v
    {"v":1, "id":1, "cmd":"check",
     "files":[{"path":"transmit.unity", "source":"program …"}],
     "opts":{"jobs":0, "json":false, "warn_error":false, "quiet":false,
             "slice":false, "semantic":false, "timings":false,
             "trace":false, "wrt":[], "timeout_ns":0, "fuel":0,
             "max_nodes":0, "reorder":"off"}}
    v}
    Spec {e sources} travel in the request (the daemon never reads the
    filesystem), so the daemon may run in any directory and the cache
    key can cover the exact bytes verified.  [0] means "unset" for the
    numeric options.

    {b Responses} (daemon → client), one frame per line; [event] frames
    stream before the final [result]/[error] frame of the same [id]:
    {v
    {"id":1, "type":"result", "exit":0, "cached":false,
     "stdout":"…", "stderr":"…"}
    {"id":1, "type":"event", "name":"sst.iter", "fields":{"n":3}}
    {"id":1, "type":"error", "exit":2, "error":"malformed request: …"}
    v}

    The [exit] of a [result] is exactly the CLI exit code the direct
    command would have returned; [stdout]/[stderr] are byte-identical to
    the direct command's streams ({!Kpt_analysis.Driver} is the single
    implementation behind both). *)

open Kpt_analysis

val version : int

val exit_overloaded : int
(** 75 (sysexits EX_TEMPFAIL): the daemon shed this request because its
    bounded queue was full.  The one transport exit code a client may
    retry on. *)

val exit_io_timeout : int
(** 4: the daemon disconnected the client for blowing the socket-level
    read/write deadline (slow-loris protection). *)

val exit_interrupted : int
(** 130: the daemon is shutting down; queued and in-flight work is
    answered with this during a drain. *)

(** Machine-readable failure classes on [Error_frame]s.  An absent
    ["kind"] field decodes as [Generic], so frames from older daemons
    stay readable. *)
type error_kind = Generic | Overloaded | Timeout | Version_mismatch | Interrupted

val error_kind_to_string : error_kind -> string
val error_kind_of_string : string -> error_kind

type cmd = Check | Lint | Stats | Solve | Slice | Ping | Shutdown

val cmd_to_string : cmd -> string
val cmd_of_string : string -> cmd option

type request = {
  id : int;
  cmd : cmd;
  files : (string * string) list;  (** (path, source bytes) *)
  opts : Driver.options;
}

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val version_of_json : Json.t -> int option
(** The ["v"] field alone, so the server can distinguish a version skew
    (answer [Version_mismatch], naming both versions) from a frame that
    is merely malformed. *)

type response =
  | Result of {
      id : int;
      exit_code : int;
      cached : bool;
      out : string;
      err : string;
      daemon : (string * int) list;
          (** daemon introspection (requests served, cache stats, pool
              size); non-empty only on [ping] replies *)
    }
  | Event of { id : int; name : string; fields : (string * int) list }
  | Error_frame of {
      id : int;
      exit_code : int;
      kind : error_kind;
      message : string;
    }

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val write_all : Unix.file_descr -> string -> unit
(** Write every byte of the string: short writes resume at the unsent
    suffix, EINTR retries.  Any other [Unix.Unix_error] (EPIPE, or
    EAGAIN when an SO_SNDTIMEO deadline is armed) propagates — a frame
    is delivered whole or the connection is known broken. *)

val write_line : Unix.file_descr -> string -> unit
(** [write_all] of the line plus the frame-terminating newline. *)

val write_frame : Unix.file_descr -> response -> unit
(** Encode and [write_line] one response frame. *)

val cache_key : request -> string
(** The content address of a request's answer: an MD5 over a canonical
    encoding of (protocol version, command, ordered (path, source bytes)
    pairs, and every output-affecting option — budget limits and the
    reorder policy included, because they change the answer).

    Deliberately {e excluded}: [id] (transport bookkeeping), [jobs]
    (output is pool-size-independent by the batch driver's contract —
    a [-j 4] answer may serve a [-j 1] request), and [trace] (event
    frames are auxiliary; a cache hit simply streams none). *)
