open Kpt_analysis

type connection = { fd : Unix.file_descr; ic : in_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; ic = Unix.in_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Frames go out through the protocol's write_all loop — an out_channel
   flush can lose the tail of a short write to a socket silently; the
   loop cannot. *)
let send_line c line = Protocol.write_line c.fd line

let send_request c req = send_line c (Json.to_string (Protocol.request_to_json req))

type read_error = Closed | Malformed of string

let read_error_to_string = function
  | Closed -> "connection closed before a reply arrived"
  | Malformed msg -> msg

let read_response ?(on_event = fun _ _ -> ()) c =
  let rec loop () =
    match input_line c.ic with
    | exception End_of_file -> Error Closed
    | exception Sys_error _ -> Error Closed
    | line -> (
        match Protocol.response_of_json (Json.of_string line) with
        | exception Json.Parse_error msg -> Error (Malformed ("malformed frame: " ^ msg))
        | Error msg -> Error (Malformed msg)
        | Ok (Protocol.Event { name; fields; _ }) ->
            on_event name fields;
            loop ()
        | Ok frame -> Ok frame)
  in
  loop ()

(* The daemon sheds by replying and closing immediately — if that close
   wins the race against our request write, the write raises EPIPE.
   Without this, the default SIGPIPE disposition kills the client before
   the retry logic ever sees the failure. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let roundtrip ?on_event ~socket req =
  ignore_sigpipe ();
  match connect ~socket with
  | Error msg -> Error msg
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          match
            send_request c req;
            read_response ?on_event c
          with
          | Ok frame -> Ok frame
          | Error e -> Error (read_error_to_string e)
          | exception (Unix.Unix_error _ | Sys_error _) ->
              Error (read_error_to_string Closed))

(* ---- retry policy ----------------------------------------------------------

   Decorrelated jitter: each sleep is uniform over [base, 3 * previous],
   capped — the classic AWS-architecture-blog shape, which spreads a
   thundering herd apart faster than exponential-with-jitter while
   keeping the first retry cheap.  The randomness comes from a
   [Kpt_gen.Rng] stream, so a test (or a user chasing a heisenbug) can
   pin [KPT_RETRY_SEED] and replay the exact schedule. *)

let default_backoff = 0.05
let backoff_cap = 5.0

let decorrelated_jitter rng ~base ~prev =
  let lo = base in
  let hi = Float.max base (3. *. prev) in
  let u = float_of_int (Kpt_gen.Rng.int rng 1_000_000) /. 1_000_000. in
  Float.min backoff_cap (lo +. ((hi -. lo) *. u))

(* A reply in hand means the request was definitely executed (or
   definitely refused) — only the structured shed is worth retrying.
   Everything else retryable happens *before* a reply exists: a failed
   connect, or a connection that died with no frame. *)
let retryable_response = function
  | Protocol.Error_frame { kind = Protocol.Overloaded; _ } -> true
  | Protocol.Result _ | Protocol.Event _ | Protocol.Error_frame _ -> false

let retry_seed () =
  match Option.bind (Sys.getenv_opt "KPT_RETRY_SEED") Kpt_gen.Rng.seed_of_string with
  | Some s -> s
  | None ->
      Int64.logxor
        (Int64.of_int (Unix.getpid ()))
        (Int64.of_float (Unix.gettimeofday () *. 1e6))

(* ---- the CLI body ----------------------------------------------------------- *)

let emit_outcome (o : Driver.outcome) =
  print_string o.Driver.out;
  flush stdout;
  prerr_string o.Driver.err;
  flush stderr;
  o.Driver.code

(* events render exactly as the local --trace sink would, to stderr,
   live as they arrive *)
let render_event name fields =
  Kpt_obs.trace_sink Format.err_formatter name fields

let error_hint = function
  | Protocol.Version_mismatch ->
      Some "upgrade the older side: client and daemon must speak the same protocol version"
  | Protocol.Overloaded ->
      Some "the daemon shed this request under load; retry with --retries N --retry-backoff S"
  | Protocol.Generic | Protocol.Timeout | Protocol.Interrupted -> None

let run_cli ~socket ~serve_auto ?(retries = 0) ?(backoff = default_backoff)
    (req : Protocol.request) =
  ignore_sigpipe ();
  let rng = Kpt_gen.Rng.make (retry_seed ()) in
  let fallback reason =
    match req.Protocol.cmd with
    | Protocol.Check | Protocol.Lint | Protocol.Stats | Protocol.Solve
    | Protocol.Slice
      when serve_auto ->
        (* same driver the daemon would run: same bytes, same code *)
        emit_outcome
          (Handler.dispatch req.Protocol.cmd req.Protocol.opts req.Protocol.files)
    | _ ->
        Format.eprintf
          "error: cannot reach a kpt daemon at %s (%s); start one with `kpt serve`%s@."
          socket reason
          (if serve_auto then "" else " or pass --serve-auto");
        2
  in
  let rec attempt n prev_sleep =
    (* [Some sleep] when a retry budget remains: announce, sleep, go *)
    let retry_after what =
      if n >= retries then None
      else begin
        let s = decorrelated_jitter rng ~base:backoff ~prev:prev_sleep in
        Format.eprintf "kpt-client: %s; retrying in %.3fs (attempt %d of %d)@."
          what s (n + 2) (retries + 1);
        Unix.sleepf s;
        Some s
      end
    in
    match connect ~socket with
    | Error reason -> (
        match retry_after (Printf.sprintf "cannot reach the daemon (%s)" reason) with
        | Some s -> attempt (n + 1) s
        | None -> fallback reason)
    | Ok c -> (
        let reply =
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () ->
              match
                send_request c req;
                read_response ~on_event:render_event c
              with
              | r -> r
              | exception (Unix.Unix_error _ | Sys_error _) -> Error Closed)
        in
        match reply with
        | Ok (Protocol.Result { exit_code; out; err; daemon; _ }) ->
            let code = emit_outcome { Driver.code = exit_code; out; err } in
            if daemon <> [] then begin
              List.iter (fun (k, v) -> Format.printf "  %-16s %d@." k v) daemon;
              Format.pp_print_flush Format.std_formatter ()
            end;
            code
        | Ok (Protocol.Error_frame { exit_code; kind; message; _ } as frame) -> (
            match
              if retryable_response frame then retry_after message else None
            with
            | Some s -> attempt (n + 1) s
            | None ->
                Format.eprintf "error: %s@." message;
                (match error_hint kind with
                | Some hint -> Format.eprintf "hint: %s@." hint
                | None -> ());
                exit_code)
        | Ok (Protocol.Event _) -> assert false (* read_response consumes events *)
        | Error (Malformed msg) ->
            (* a decoded-but-undecipherable frame is not a connection
               failure: the daemon spoke, we did not understand — do not
               resend *)
            Format.eprintf "error: %s@." msg;
            2
        | Error Closed -> (
            match retry_after (read_error_to_string Closed) with
            | Some s -> attempt (n + 1) s
            | None ->
                Format.eprintf "error: %s@." (read_error_to_string Closed);
                2))
  in
  attempt 0 backoff
