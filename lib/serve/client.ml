open Kpt_analysis

type connection = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let send_request c req = send_line c (Json.to_string (Protocol.request_to_json req))

let read_response ?(on_event = fun _ _ -> ()) c =
  let rec loop () =
    match input_line c.ic with
    | exception End_of_file -> Error "connection closed before a reply arrived"
    | line -> (
        match Protocol.response_of_json (Json.of_string line) with
        | exception Json.Parse_error msg -> Error ("malformed frame: " ^ msg)
        | Error msg -> Error msg
        | Ok (Protocol.Event { name; fields; _ }) ->
            on_event name fields;
            loop ()
        | Ok frame -> Ok frame)
  in
  loop ()

let roundtrip ?on_event ~socket req =
  match connect ~socket with
  | Error msg -> Error msg
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          send_request c req;
          read_response ?on_event c)

(* ---- the CLI body ----------------------------------------------------------- *)

let emit_outcome (o : Driver.outcome) =
  print_string o.Driver.out;
  flush stdout;
  prerr_string o.Driver.err;
  flush stderr;
  o.Driver.code

(* events render exactly as the local --trace sink would, to stderr,
   live as they arrive *)
let render_event name fields =
  Kpt_obs.trace_sink Format.err_formatter name fields

let run_cli ~socket ~serve_auto (req : Protocol.request) =
  match connect ~socket with
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          send_request c req;
          match read_response ~on_event:render_event c with
          | Ok (Protocol.Result { exit_code; out; err; daemon; _ }) ->
              let code = emit_outcome { Driver.code = exit_code; out; err } in
              if daemon <> [] then begin
                List.iter
                  (fun (k, v) -> Format.printf "  %-16s %d@." k v)
                  daemon;
                Format.pp_print_flush Format.std_formatter ()
              end;
              code
          | Ok (Protocol.Error_frame { exit_code; message; _ }) ->
              Format.eprintf "error: %s@." message;
              exit_code
          | Ok (Protocol.Event _) -> assert false (* read_response consumes events *)
          | Error msg ->
              Format.eprintf "error: %s@." msg;
              2)
  | Error reason -> (
      match req.Protocol.cmd with
      | Protocol.Check | Protocol.Lint | Protocol.Stats | Protocol.Solve
      | Protocol.Slice
        when serve_auto ->
          (* same driver the daemon would run: same bytes, same code *)
          emit_outcome
            (Handler.dispatch req.Protocol.cmd req.Protocol.opts req.Protocol.files)
      | _ ->
          Format.eprintf
            "error: cannot reach a kpt daemon at %s (%s); start one with `kpt serve`%s@."
            socket reason
            (if serve_auto then "" else " or pass --serve-auto");
          2)
